package tass_test

// Benchmarks for the lazy census stack: cold-open latency of the
// indexed snapshot format vs the eager v1 decode, counting passes over
// a lazily-backed snapshot (first-touch decode cost and resident-set
// size), and the batch varint micro-kernel under the block decoder.
//
// The census size follows the bench tier: the default is a small
// fixture; `scripts/bench.sh -universe huge` sets TASS_BENCH_UNIVERSE=huge
// for a census approaching the paper's full-universe scale
// (TASS_HUGE_HOSTS overrides the host count).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"github.com/tass-scan/tass"
	"github.com/tass-scan/tass/internal/addrset"
)

// benchCensusHosts returns the synthetic census size for the active
// bench tier.
func benchCensusHosts() int {
	switch os.Getenv("TASS_BENCH_UNIVERSE") {
	case "huge":
		if s := os.Getenv("TASS_HUGE_HOSTS"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				return n
			}
		}
		return 50_000_000
	default:
		return 2_000_000
	}
}

var (
	benchCensusOnce sync.Once
	benchCensusErr  error
	benchV1Path     string // v1 stream (Snapshot.WriteTo bytes)
	benchV2Path     string // indexed TASSNAP2 file
	benchCensusLast tass.Addr
)

// benchCensusFiles writes the tier's synthetic census once per process,
// in both formats, and returns the two paths plus the highest address
// (for building counting partitions over the populated span).
func benchCensusFiles(b *testing.B) (v1, v2 string, last tass.Addr) {
	b.Helper()
	benchCensusOnce.Do(func() {
		hosts := benchCensusHosts()
		rng := rand.New(rand.NewSource(42))
		addrs := make([]tass.Addr, 0, hosts)
		v := uint32(0)
		for len(addrs) < hosts {
			// Census-shaped gaps: mostly 1–2 byte deltas, occasional
			// jumps over dark space.
			if rng.Intn(1000) == 0 {
				v += uint32(rng.Intn(1 << 18))
			}
			v += 1 + uint32(rng.Intn(120))
			addrs = append(addrs, tass.Addr(v))
		}
		benchCensusLast = addrs[len(addrs)-1]
		snap := tass.NewSnapshot("bench", 0, addrs)

		dir, err := os.MkdirTemp("", "tassbench")
		if err != nil {
			benchCensusErr = err
			return
		}
		benchV1Path = filepath.Join(dir, "census.v1")
		f, err := os.Create(benchV1Path)
		if err != nil {
			benchCensusErr = err
			return
		}
		w := bufio.NewWriterSize(f, 1<<20)
		if _, err := snap.WriteTo(w); err == nil {
			err = w.Flush()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			benchCensusErr = err
			return
		}
		benchV2Path = filepath.Join(dir, "census.snap2")
		benchCensusErr = tass.WriteSnapshotFile(benchV2Path, snap)
	})
	if benchCensusErr != nil {
		b.Fatal(benchCensusErr)
	}
	return benchV1Path, benchV2Path, benchCensusLast
}

// benchCensusPartition covers the census's populated span with /12s —
// the universe partition of the counting benchmarks.
func benchCensusPartition(b *testing.B, last tass.Addr) tass.Partition {
	b.Helper()
	var pfx []tass.Prefix
	for base := uint64(0); base <= uint64(last); base += 1 << 20 {
		p, err := tass.ParsePrefix(fmt.Sprintf("%v/12", tass.Addr(base)))
		if err != nil {
			b.Fatal(err)
		}
		pfx = append(pfx, p)
	}
	part, err := tass.NewPartition(pfx)
	if err != nil {
		b.Fatal(err)
	}
	return part
}

// BenchmarkOpenSnapshot is the headline of the lazy stack: opening the
// indexed format costs O(blocks) directory decode, against the eager v1
// path's O(hosts) full decode. The huge tier's acceptance bar is lazy
// ≥10× faster than eager.
func BenchmarkOpenSnapshot(b *testing.B) {
	v1Path, v2Path, _ := benchCensusFiles(b)
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snap, err := tass.OpenSnapshotFile(v2Path)
			if err != nil {
				b.Fatal(err)
			}
			snap.Close()
		}
	})
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := os.Open(v1Path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tass.ReadSnapshot(bufio.NewReaderSize(f, 1<<20)); err != nil {
				b.Fatal(err)
			}
			f.Close()
		}
	})
}

// BenchmarkLazyCount measures a full counting pass over the lazy
// snapshot: cold includes open plus every first-touch block decode
// (reported as block-decodes/op), warm re-counts against whatever the
// LRU kept resident (resident-blocks/op bounds the working set).
func BenchmarkLazyCount(b *testing.B) {
	_, v2Path, last := benchCensusFiles(b)
	part := benchCensusPartition(b, last)
	b.Run("cold", func(b *testing.B) {
		var decodes, resident float64
		for i := 0; i < b.N; i++ {
			snap, err := tass.OpenSnapshotFile(v2Path)
			if err != nil {
				b.Fatal(err)
			}
			counts, _ := snap.CountByPrefixSharded(part, 8)
			if len(counts) != part.Len() {
				b.Fatal("bad counts")
			}
			set := snap.Set()
			decodes = float64(set.Decodes())
			resident = float64(set.ResidentBlocks())
			snap.Close()
		}
		b.ReportMetric(decodes, "block-decodes/op")
		b.ReportMetric(resident, "resident-blocks")
	})
	b.Run("warm", func(b *testing.B) {
		snap, err := tass.OpenSnapshotFile(v2Path)
		if err != nil {
			b.Fatal(err)
		}
		defer snap.Close()
		snap.CountByPrefixSharded(part, 8) // fault everything touchable in
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			counts, _ := snap.CountByPrefixSharded(part, 8)
			if len(counts) != part.Len() {
				b.Fatal("bad counts")
			}
		}
		b.ReportMetric(float64(snap.Set().ResidentBlocks()), "resident-blocks")
	})
}

// BenchmarkVarintDecode pits the batch varint kernel under the block
// decoder against the straightforward binary.Uvarint loop, on the
// census wire shape (mostly 1–2 byte deltas).
func BenchmarkVarintDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, 4096)
	var enc []byte
	for i := range vals {
		vals[i] = uint64(1 + rng.Intn(170))
		enc = binary.AppendUvarint(enc, vals[i])
	}
	dst := make([]uint64, len(vals))
	b.Run("batch", func(b *testing.B) {
		b.SetBytes(int64(len(enc)))
		for i := 0; i < b.N; i++ {
			if addrset.DecodeUvarints(dst, enc) < 0 {
				b.Fatal("batch decode failed")
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(len(enc)))
		for i := 0; i < b.N; i++ {
			off := 0
			for j := range dst {
				v, n := binary.Uvarint(enc[off:])
				if n <= 0 {
					b.Fatal("scalar decode failed")
				}
				dst[j] = v
				off += n
			}
		}
	})
}
