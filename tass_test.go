package tass_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tass-scan/tass"
)

// TestPublicAPIEndToEnd drives the full public workflow: universe →
// simulate → table round trip → selection → evaluation.
func TestPublicAPIEndToEnd(t *testing.T) {
	u, err := tass.GenerateUniverse(tass.SmallUniverseConfig(5))
	if err != nil {
		t.Fatal(err)
	}

	// pfx2as round trip through the public API.
	var buf bytes.Buffer
	if err := tass.WritePfx2as(&buf, u.Table); err != nil {
		t.Fatal(err)
	}
	table, err := tass.ReadPfx2as(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != u.Table.Len() {
		t.Fatalf("table round trip: %d != %d", table.Len(), u.Table.Len())
	}

	series := tass.SimulateMonths(u, 6, 3)
	httpSeries := series["http"]
	if httpSeries.Months() != 4 {
		t.Fatalf("months: %d", httpSeries.Months())
	}

	// Snapshot round trip.
	buf.Reset()
	if _, err := httpSeries.At(0).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := tass.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Hosts() != httpSeries.At(0).Hosts() {
		t.Fatal("snapshot round trip host count")
	}

	// Selection and evaluation.
	sel, err := tass.Select(snap, table.Deaggregated(), tass.Options{Phi: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if sel.HostCoverage < 0.95 || sel.SpaceShare >= 1 {
		t.Fatalf("selection: coverage %v space %v", sel.HostCoverage, sel.SpaceShare)
	}
	if !strings.Contains(tass.Describe(sel), "host coverage") {
		t.Errorf("Describe: %q", tass.Describe(sel))
	}

	ev, err := tass.Evaluate(
		tass.TASSStrategy{Universe: table.Deaggregated(), Opts: tass.Options{Phi: 0.95}},
		httpSeries, table.AnnouncedSpace())
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Hitrate) != 4 || ev.Hitrate[0] < 0.95 {
		t.Fatalf("evaluation: %+v", ev)
	}
}

func TestPublicParsersAndDeaggregation(t *testing.T) {
	a, err := tass.ParseAddr("192.0.2.1")
	if err != nil || a.String() != "192.0.2.1" {
		t.Fatalf("ParseAddr: %v %v", a, err)
	}
	p, err := tass.ParsePrefix("100.0.0.0/8")
	if err != nil || p.Bits() != 8 {
		t.Fatalf("ParsePrefix: %v %v", p, err)
	}
	pieces := tass.Deaggregate([]tass.Prefix{
		tass.MustParsePrefix("100.0.0.0/8"),
		tass.MustParsePrefix("100.16.0.0/12"),
	})
	if len(pieces) != 5 {
		t.Fatalf("Deaggregate: %v", pieces)
	}
	ls := tass.LessSpecificOnly(pieces)
	if len(ls) != 5 {
		t.Fatalf("pieces are disjoint, LessSpecificOnly must keep all: %v", ls)
	}
	if _, err := tass.NewPartition([]tass.Prefix{
		tass.MustParsePrefix("10.0.0.0/8"),
		tass.MustParsePrefix("10.0.0.0/16"),
	}); err == nil {
		t.Error("overlapping partition accepted")
	}
}

func TestPublicExclusions(t *testing.T) {
	ex, err := tass.ParseExclusions(strings.NewReader("10.0.0.0/8\n192.0.2.1\n"))
	if err != nil || len(ex) != 2 {
		t.Fatalf("ParseExclusions: %v %v", ex, err)
	}
}

func TestScaledUniverseConfig(t *testing.T) {
	small := tass.ScaledUniverseConfig(1, 0.01)
	if len(small.Allocated) != 2 {
		t.Errorf("0.01 scale should allocate 2 /8 blocks, got %d", len(small.Allocated))
	}
	full := tass.ScaledUniverseConfig(1, 1.0)
	if full.Allocated != nil {
		t.Error("full scale should use the real allocated space")
	}
	if len(tass.DefaultProtocolProfiles(0.5)) != 4 {
		t.Error("expected 4 protocol profiles")
	}
}

func TestExtractMRTPublic(t *testing.T) {
	// ExtractMRT on garbage fails cleanly.
	if _, _, err := tass.ExtractMRT(strings.NewReader("not mrt data at all")); err == nil {
		t.Error("garbage MRT accepted")
	}
}
