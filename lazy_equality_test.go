package tass_test

import (
	"context"
	"fmt"
	"path/filepath"
	"slices"
	"testing"

	"github.com/tass-scan/tass"
	"github.com/tass-scan/tass/internal/mmapfile"
)

// snapshotBackings returns one census under the three storage backings
// of the lazy snapshot stack: the eager in-memory snapshot, a lazy
// snapshot whose blocks fault in by pread, and a lazy snapshot over a
// memory mapping. Everything downstream — counting, ranking, selection,
// campaigns — must be byte-identical across the three.
func snapshotBackings(t *testing.T, eager *tass.Snapshot) map[string]*tass.Snapshot {
	t.Helper()
	path := filepath.Join(t.TempDir(), "census.snap2")
	if err := tass.WriteSnapshotFile(path, eager); err != nil {
		t.Fatal(err)
	}
	if err := tass.VerifySnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	open := func(disableMmap bool) *tass.Snapshot {
		mmapfile.DisableMmap = disableMmap
		defer func() { mmapfile.DisableMmap = false }()
		snap, err := tass.OpenSnapshotFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !snap.Lazy() {
			t.Fatal("opened snapshot is not lazy")
		}
		t.Cleanup(func() { snap.Close() })
		return snap
	}
	return map[string]*tass.Snapshot{
		"eager": eager,
		"pread": open(true),
		"mmap":  open(false),
	}
}

// sameSelection compares every exported field of two selections,
// including the full ranked order.
func sameSelection(a, b *tass.Selection) bool {
	return a.K == b.K && a.SeedHosts == b.SeedHosts &&
		a.HostCoverage == b.HostCoverage && a.Space == b.Space &&
		a.SpaceBits == b.SpaceBits && a.SpaceShare == b.SpaceShare &&
		slices.Equal(a.Ranked, b.Ranked)
}

// TestLazyGoldenEquality is the acceptance suite of the lazy census
// stack: rank, select, and incremental-selector outputs are
// byte-identical across the eager, pread-lazy, and mmap-lazy backings,
// for seeds 1–3 and worker counts 1/2/8.
func TestLazyGoldenEquality(t *testing.T) {
	opts := tass.Options{Phi: 0.95}
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			u, err := tass.GenerateUniverse(tass.ScaledUniverseConfig(seed, 0.004))
			if err != nil {
				t.Fatal(err)
			}
			proto := u.Protocols()[0]
			series := tass.SimulateMonths(u, seed, 2)[proto]
			eager, next := series.At(0), series.At(1)
			universe := u.More
			backings := snapshotBackings(t, eager)

			wantRank := tass.Rank(eager, universe)
			wantDelta := tass.DeltaOf(eager, next)
			for name, snap := range backings {
				if got := tass.Rank(snap, universe); !slices.Equal(got, wantRank) {
					t.Errorf("%s: Rank diverges", name)
				}
				// Diff off a lazy backing (materializes a view internally).
				if d := tass.DeltaOf(snap, next); !slices.Equal(d.Born, wantDelta.Born) ||
					!slices.Equal(d.Died, wantDelta.Died) {
					t.Errorf("%s: DeltaOf diverges", name)
				}
			}

			for _, workers := range []int{1, 2, 8} {
				wantSel, err := tass.SelectCached(eager, universe, opts, workers, nil)
				if err != nil {
					t.Fatal(err)
				}
				for name, snap := range backings {
					sel, err := tass.SelectCached(snap, universe, opts, workers, tass.NewCountCache())
					if err != nil {
						t.Fatalf("%s workers=%d: %v", name, workers, err)
					}
					if !sameSelection(sel, wantSel) {
						t.Errorf("%s workers=%d: SelectCached diverges", name, workers)
					}

					// The incremental selector seeded from this backing must
					// select identically, before and after applying a delta.
					inc, err := tass.NewIncrementalSelector(snap, universe, workers, nil)
					if err != nil {
						t.Fatalf("%s workers=%d: %v", name, workers, err)
					}
					if sel0, err := inc.Select(opts); err != nil || !sameSelection(sel0, wantSel) {
						t.Errorf("%s workers=%d: seeded incremental select diverges (%v)", name, workers, err)
					}
					if err := inc.Apply(wantDelta); err != nil {
						t.Fatal(err)
					}
					wantNext, err := tass.SelectCached(next, universe, opts, workers, nil)
					if err != nil {
						t.Fatal(err)
					}
					if sel1, err := inc.Select(opts); err != nil || !sameSelection(sel1, wantNext) {
						t.Errorf("%s workers=%d: post-delta incremental select diverges (%v)", name, workers, err)
					}
				}
			}
		})
	}
}

// TestCampaignSeedSnapshotBackings runs the scan-in-the-loop campaign
// seeded from a census snapshot and checks that every cycle — plans,
// probe reports, snapshots, selections — is identical whichever backing
// the seed snapshot uses, at every worker count, on both the full and
// the incremental re-selection paths.
func TestCampaignSeedSnapshotBackings(t *testing.T) {
	var pfx []tass.Prefix
	for i := 0; i < 4; i++ {
		p, err := tass.ParsePrefix(fmt.Sprintf("10.0.%d.0/24", i))
		if err != nil {
			t.Fatal(err)
		}
		pfx = append(pfx, p)
	}
	universe, err := tass.NewPartition(pfx)
	if err != nil {
		t.Fatal(err)
	}
	var live, seedAddrs []tass.Addr
	base, _ := tass.ParseAddr("10.0.0.0")
	for i := 0; i < 100; i++ { // two dense /24s
		live = append(live, base+tass.Addr(i*2), base+tass.Addr(2<<8)+tass.Addr(i*2))
	}
	live = append(live, base+tass.Addr(1<<8)+77, base+tass.Addr(3<<8)+99)
	// The seed census saw most, not all, of the live set (and one host
	// that since died) — the realistic stale-archive seed.
	seedAddrs = append(seedAddrs, live[:150]...)
	seedAddrs = append(seedAddrs, base+tass.Addr(3<<8)+200)
	eagerSeed := tass.NewSnapshot("census", 0, seedAddrs)
	backings := snapshotBackings(t, eagerSeed)

	run := func(seed *tass.Snapshot, workers int, incremental bool) []tass.ScanCycle {
		prober, err := tass.NewSimProber(live, 0.1, 7) // deterministic loss
		if err != nil {
			t.Fatal(err)
		}
		c := &tass.ScanCampaign{
			Universe:     universe,
			SeedSnapshot: seed,
			Prober:       prober,
			Opts:         tass.Options{Phi: 0.9},
			Workers:      workers,
			Seed:         11,
			Cache:        tass.NewCountCache(),
			Incremental:  incremental,
			Protocol:     "t",
		}
		cycles, err := c.Run(context.Background(), 3)
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}

	for _, incremental := range []bool{false, true} {
		for _, workers := range []int{1, 2, 8} {
			want := run(backings["eager"], workers, incremental)
			// The seed selection replaced the cycle-0 full-universe scan.
			if want[0].Plan.AddressCount() >= universe.AddressCount() {
				t.Fatalf("seeded campaign still scanned the full universe (%d addrs)",
					want[0].Plan.AddressCount())
			}
			for _, name := range []string{"pread", "mmap"} {
				got := run(backings[name], workers, incremental)
				if len(got) != len(want) {
					t.Fatalf("%s: %d cycles, want %d", name, len(got), len(want))
				}
				for i := range got {
					g, w := got[i], want[i]
					if !slices.Equal(g.Plan.Prefixes(), w.Plan.Prefixes()) {
						t.Errorf("%s workers=%d inc=%v cycle %d: plan diverges", name, workers, incremental, i)
					}
					if !slices.Equal(g.Snapshot.Addrs, w.Snapshot.Addrs) {
						t.Errorf("%s workers=%d inc=%v cycle %d: snapshot diverges", name, workers, incremental, i)
					}
					if !sameSelection(g.Selection, w.Selection) {
						t.Errorf("%s workers=%d inc=%v cycle %d: selection diverges", name, workers, incremental, i)
					}
				}
			}
		}
	}
}
