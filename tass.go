// Package tass implements the Topology Aware Scanning Strategy (TASS) of
// Klick, Lau, Wählisch and Roth ("Towards Better Internet Citizenship:
// Reducing the Footprint of Internet-wide Scans by Topology Aware Prefix
// Selection", ACM IMC 2016), together with everything needed to use and
// evaluate it: announced-table handling (pfx2as and MRT inputs), prefix
// deaggregation, baseline strategies, a ZMap-style scanner engine, and a
// calibrated Internet simulator for offline evaluation.
//
// # The strategy in one paragraph
//
// Internet-wide scans mostly probe silence: hitrates of full IPv4 sweeps
// are typically below two percent. TASS amortizes one full seed scan over
// months of cheap periodic scans: it counts the seed's responsive
// addresses per announced prefix, ranks prefixes by host density, and
// selects the densest prefixes until a chosen fraction φ of all observed
// hosts is covered. Because hosts churn mostly *within* announced
// prefixes, the selection stays accurate for months (≈0.3 %/month decay)
// while scanning a fraction of the address space.
//
// # Quick start
//
//	table, _ := tass.ReadPfx2as(f)             // CAIDA prefix→AS table
//	universe := table.Deaggregated()           // m-prefix partition (fig. 2)
//	seed := tass.NewSnapshot("ftp", 0, addrs)  // month-0 full scan results
//	sel, _ := tass.Select(seed, universe, tass.Options{Phi: 0.95})
//	for _, p := range sel.Prefixes() {         // scan these each cycle
//	    fmt.Println(p)
//	}
//
// See examples/ for runnable end-to-end programs and DESIGN.md for the
// reproduction map of every table and figure in the paper.
package tass

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/churn"
	"github.com/tass-scan/tass/internal/cluster"
	"github.com/tass-scan/tass/internal/coord"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/fsck"
	"github.com/tass-scan/tass/internal/mrt"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/pfx2as"
	"github.com/tass-scan/tass/internal/rib"
	"github.com/tass-scan/tass/internal/scan"
	"github.com/tass-scan/tass/internal/sel6"
	"github.com/tass-scan/tass/internal/strategy"
	"github.com/tass-scan/tass/internal/topo"
	"github.com/tass-scan/tass/internal/trie"
)

// Core address and prefix types (see netaddr for full method sets).
type (
	// Addr is an IPv4 address as a 32-bit integer value.
	Addr = netaddr.Addr
	// Prefix is a canonical IPv4 CIDR prefix.
	Prefix = netaddr.Prefix
	// AddrRange is an inclusive IPv4 address range.
	AddrRange = netaddr.AddrRange
)

// Announced-table types.
type (
	// Table is an announced-prefix table (a RIB reduced to prefixes).
	Table = rib.Table
	// TableEntry is one announced prefix with its origin.
	TableEntry = rib.Entry
	// Partition is a sorted disjoint prefix set: a scanning universe.
	Partition = rib.Partition
	// Origin is a pfx2as origin-AS annotation.
	Origin = pfx2as.Origin
)

// Scan-data types.
type (
	// Snapshot is one full-scan observation (protocol, month, sorted
	// responsive addresses).
	Snapshot = census.Snapshot
	// Series is a monthly snapshot sequence for one protocol.
	Series = census.Series
	// DiffResult decomposes the churn between two snapshots.
	DiffResult = census.DiffResult
	// Delta is the churn between two snapshots as sorted born/died
	// address runs: the unit of the incremental selection pipeline.
	Delta = census.Delta
	// AddrSet is the immutable block-indexed sorted address set behind
	// Snapshot.Set(): sub-linear range counts, galloping intersection.
	AddrSet = addrset.Set
	// CountCache memoizes per-(snapshot, partition) host counts by
	// identity; share one across repeated selections of the same seeds.
	CountCache = census.CountCache
)

// NewCountCache returns an empty count cache (see SelectCached),
// LRU-bounded at a generous default entry cap.
func NewCountCache() *CountCache { return census.NewCountCache() }

// NewCountCacheCap returns a count cache evicting least-recently-used
// entries beyond maxEntries (<= 0 means unbounded) — size it to the
// working set of a long-running campaign.
func NewCountCacheCap(maxEntries int) *CountCache { return census.NewCountCacheCap(maxEntries) }

// NewAddrSet builds a block-indexed set from ascending addresses.
// blockSize 0 uses the package default.
func NewAddrSet(addrs []Addr, blockSize int) *AddrSet {
	return addrset.FromSorted(addrs, blockSize)
}

// SetAddrSetBlockSize tunes the default per-block address population of
// every subsequently built AddrSet (e.g. from a CLI flag, before any
// snapshots are loaded). It is not safe to call concurrently with set
// construction.
func SetAddrSetBlockSize(n int) {
	if n > 0 {
		addrset.DefaultBlockSize = n
	}
}

// DiffSnapshots compares two scans of one protocol: how many addresses
// persisted, disappeared and appeared (the §3.3 host-stability view).
func DiffSnapshots(earlier, later *Snapshot) DiffResult {
	return census.Diff(earlier, later)
}

// DeltaOf returns the full churn between two snapshots as sorted
// born/died runs; ApplyDelta(earlier, DeltaOf(earlier, later)) equals
// later exactly. (Equivalent to earlier.Diff(later).)
func DeltaOf(earlier, later *Snapshot) *Delta { return earlier.Diff(later) }

// ApplyDelta reconstructs a later snapshot from an earlier one plus
// the delta between them, reusing the earlier snapshot's block index
// through a copy-on-write overlay when the delta is sparse. Use
// Snapshot.Apply for the in-place variant (it advances the snapshot's
// generation so count caches invalidate precisely).
func ApplyDelta(earlier *Snapshot, d *Delta) (*Snapshot, error) {
	return census.ApplyDelta(earlier, d)
}

// ReadDelta parses a binary delta written with Delta.WriteTo.
func ReadDelta(r io.Reader) (*Delta, error) { return census.ReadDelta(r) }

// Selection types (the paper's algorithm).
type (
	// Options parameterizes Select: the φ target plus optional density
	// and size cuts.
	Options = core.Options
	// Selection is a TASS scan plan.
	Selection = core.Selection
	// PrefixStat is one ranked responsive prefix.
	PrefixStat = core.PrefixStat
	// CurvePoint is one point of the ranked density/coverage curves.
	CurvePoint = core.CurvePoint
	// IncrementalSelector maintains a TASS ranking across deltas:
	// seed it once, Apply a Delta per month or scan cycle, and Select
	// byte-identically to a full recompute at churn-proportional cost.
	IncrementalSelector = core.Ranker
)

// NewIncrementalSelector counts seed over universe once (sharded over
// workers goroutines, memoized in cache — both as in SelectCached) and
// returns the selector that keeps that ranking current under deltas.
// It errors for universes of 2^25 prefixes or more; fall back to
// SelectCached there.
func NewIncrementalSelector(seed *Snapshot, universe Partition, workers int, cache *CountCache) (*IncrementalSelector, error) {
	return core.NewRanker(seed, universe, workers, cache)
}

// Strategy types for head-to-head evaluation.
type (
	// Strategy builds a scan plan from a seed snapshot.
	Strategy = strategy.Strategy
	// Plan is a periodic scan with fixed cost.
	Plan = strategy.Plan
	// Evaluation is a hitrate-over-time record.
	Evaluation = strategy.Evaluation
	// FullScan probes the whole announced space every cycle.
	FullScan = strategy.Full
	// HitlistStrategy re-probes exactly the seed's responsive addresses.
	HitlistStrategy = strategy.Hitlist
	// TASSStrategy is density-ranked prefix selection.
	TASSStrategy = strategy.TASS
	// SampleStrategy is a Heidemann-style /24-block sample.
	SampleStrategy = strategy.RandomSample
)

// Simulation types (the offline evaluation substrate).
type (
	// Universe is a synthetic announced Internet with host populations.
	Universe = topo.Universe
	// UniverseConfig parameterizes universe generation.
	UniverseConfig = topo.Config
	// ProtocolProfile holds placement and churn parameters per protocol.
	ProtocolProfile = topo.ProtocolProfile
	// ChurnSimulator evolves universe populations month by month.
	ChurnSimulator = churn.Simulator
)

// Scanner-engine types.
type (
	// Scanner executes scan cycles over a target partition.
	Scanner = scan.Scanner
	// ScanConfig parameterizes a Scanner.
	ScanConfig = scan.Config
	// ScanReport summarizes a completed scan cycle.
	ScanReport = scan.Report
	// ScanResult is one probe outcome.
	ScanResult = scan.Result
	// Prober performs probes for the scanner.
	Prober = scan.Prober
	// SimProber probes an in-memory responsive set.
	SimProber = scan.SimProber
	// TCPProber performs real TCP connect probes with banner grabbing.
	TCPProber = scan.TCPProber
	// ScanCampaign runs the live feedback loop: scan, convert the results
	// into a census snapshot, re-select, and scan the tightened plan.
	ScanCampaign = scan.Campaign
	// ScanCycle is one completed scan-and-reselect campaign iteration.
	ScanCycle = scan.Cycle
	// ScanCheckpoint is the serialized cursor state of an interrupted
	// scan cycle (see Scanner.Checkpoint / Scanner.Resume).
	ScanCheckpoint = scan.Checkpoint
	// ScanShard is one worker's (or machine's) disjoint slice of a scan
	// permutation cycle.
	ScanShard = scan.Shard
	// ScanPoliteness configures the good-citizen layer: per-origin-AS and
	// per-prefix pacing under the global rate, adaptive backoff, per-AS
	// probe budgets and footprint telemetry.
	ScanPoliteness = scan.Politeness
	// ScanBackoff parameterizes adaptive per-AS backoff (error-burst
	// detection halves an AS's rate; successes restore it gradually).
	ScanBackoff = scan.BackoffConfig
	// ASStat is the per-origin-AS footprint of one scan cycle.
	ASStat = scan.ASStat
	// PolicyLimiter paces probes through global, per-AS and per-prefix
	// token buckets (see Scanner.Policy for the mid-cycle retune hook).
	PolicyLimiter = scan.PolicyLimiter
	// ExclusionReloader keeps a running scanner's exclusion list current
	// with an on-disk file by polling, ZMap-blocklist style.
	ExclusionReloader = scan.ExclusionReloader
)

// NewScanner validates cfg and builds a scanner.
func NewScanner(cfg ScanConfig) (*Scanner, error) { return scan.New(cfg) }

// NewSimProber builds a simulation prober over a responsive address set.
func NewSimProber(responsive []Addr, lossRate float64, seed int64) (*SimProber, error) {
	return scan.NewSimProber(responsive, lossRate, seed)
}

// ParseExclusions reads a ZMap-style exclusion list (one CIDR or address
// per line, '#' comments).
func ParseExclusions(r io.Reader) ([]Prefix, error) { return scan.ParseExclusions(r) }

// NewExclusionReloader builds a polling reloader feeding s from the
// exclusion file at path every interval (0 means the 5s default); run
// its Run method alongside Scanner.Run, or call Poll on a signal.
func NewExclusionReloader(s *Scanner, path string, interval time.Duration) *ExclusionReloader {
	return scan.NewExclusionReloader(s, path, interval)
}

// WriteFootprint renders a completed scan's per-origin-AS footprint
// table: plan size, probes, and politeness events per origin network.
// origins must be the mapping the scan ran with (Table.OriginsOf).
func WriteFootprint(w io.Writer, targets Partition, origins []uint32, rep *ScanReport) error {
	return scan.WriteFootprint(w, targets, origins, rep)
}

// ReadScanCheckpoint parses a checkpoint written by WriteScanCheckpoint.
func ReadScanCheckpoint(r io.Reader) (*ScanCheckpoint, error) { return scan.ReadCheckpoint(r) }

// WriteScanCheckpoint serializes an interrupted cycle's cursor state.
func WriteScanCheckpoint(w io.Writer, cp *ScanCheckpoint) error { return scan.WriteCheckpoint(w, cp) }

// ReadScanCheckpointFile loads a checkpoint file, verifying its format
// version and checksum: a torn or corrupt cursor is refused, never
// half-resumed.
func ReadScanCheckpointFile(path string) (*ScanCheckpoint, error) {
	return scan.ReadCheckpointFile(path)
}

// WriteScanCheckpointFile atomically persists a checkpoint (write to a
// temp file, fsync, rename): a crash mid-save leaves the previous
// cursor intact instead of a torn file.
func WriteScanCheckpointFile(path string, cp *ScanCheckpoint) error {
	return scan.WriteCheckpointFile(path, cp)
}

// Distributed-campaign types: a fault-tolerant coordinator owns the
// campaign state machine and hands time-bounded shard leases to a fleet
// of workers over HTTP+JSON (see internal/coord and DESIGN.md §13).
type (
	// Coordinator is the campaign state machine: it leases shards,
	// collects uploads, reseeds between cycles, and persists every
	// transition to its store.
	Coordinator = coord.Coordinator
	// CoordSpec configures one distributed campaign.
	CoordSpec = coord.CampaignSpec
	// CoordLease is one granted shard of one scan cycle.
	CoordLease = coord.Lease
	// CoordStatus is a campaign's externally visible state.
	CoordStatus = coord.Status
	// CoordStore is the coordinator's durable-state backend.
	CoordStore = coord.Store
	// CoordClient is the worker-side HTTP client with retries.
	CoordClient = coord.Client
	// CoordWorker runs leased shards against a coordinator until the
	// campaign completes.
	CoordWorker = coord.Worker
)

// Coordinator sentinel errors (see the coord package for semantics).
var (
	// ErrLeaseLost means a worker's lease expired or was superseded: its
	// buffered results must be discarded, not uploaded.
	ErrLeaseLost = coord.ErrLeaseLost
	// ErrUnknownCampaign means the campaign ID is not registered.
	ErrUnknownCampaign = coord.ErrUnknownCampaign
	// ErrCampaignExists rejects registering a duplicate campaign ID.
	ErrCampaignExists = coord.ErrCampaignExists
)

// NewCoordinator builds a campaign coordinator over store, reloading
// any state a previous process saved there (a torn or corrupt store is
// refused). now is the lease clock; nil means time.Now.
func NewCoordinator(store CoordStore, now func() time.Time) (*Coordinator, error) {
	return coord.NewCoordinator(store, now)
}

// NewCoordHandler exposes a coordinator over HTTP+JSON.
func NewCoordHandler(c *Coordinator) http.Handler { return coord.NewHandler(c) }

// NewCoordFileStore returns a file-backed coordinator store with
// atomic, checksummed saves.
func NewCoordFileStore(path string) CoordStore { return coord.NewFileStore(path) }

// NewCoordMemStore returns an in-memory coordinator store (tests,
// single-process demos).
func NewCoordMemStore() CoordStore { return coord.NewMemStore() }

// NewCoordClient returns a coordinator client with the default retry
// policy (jittered exponential backoff on transport failures).
func NewCoordClient(base string) *CoordClient { return coord.NewClient(base) }

// ExtractMRT reduces an MRT TABLE_DUMP_V2 RIB stream to an announced
// table with origin ASes (the CAIDA pfx2as reduction). skipped counts
// unparseable RIB entries.
func ExtractMRT(r io.Reader) (t *Table, skipped int, err error) {
	recs, skipped, err := mrt.ExtractPfx2as(r)
	if err != nil {
		return nil, skipped, err
	}
	return rib.FromRecords(recs), skipped, nil
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) { return netaddr.ParseAddr(s) }

// ParsePrefix parses CIDR notation with canonical (masked) address bits.
func ParsePrefix(s string) (Prefix, error) { return netaddr.ParsePrefix(s) }

// ReadPfx2as parses a CAIDA Routeviews prefix-to-AS table into a Table.
func ReadPfx2as(r io.Reader) (*Table, error) {
	recs, err := pfx2as.ParseAll(r)
	if err != nil {
		return nil, err
	}
	return rib.FromRecords(recs), nil
}

// WritePfx2as serializes a Table in CAIDA pfx2as notation.
func WritePfx2as(w io.Writer, t *Table) error {
	return pfx2as.Write(w, t.Records())
}

// NewTable builds an announced table from raw prefixes (origins unknown).
func NewTable(prefixes []Prefix) *Table {
	entries := make([]rib.Entry, len(prefixes))
	for i, p := range prefixes {
		entries[i] = rib.Entry{Prefix: p}
	}
	return rib.New(entries)
}

// Deaggregate decomposes announced prefixes into the paper's minimal
// disjoint m-prefix partition (Figure 2).
func Deaggregate(prefixes []Prefix) []Prefix { return trie.Deaggregate(prefixes) }

// LessSpecificOnly keeps only the maximal (l-) prefixes of a set.
func LessSpecificOnly(prefixes []Prefix) []Prefix { return trie.LessSpecificOnly(prefixes) }

// NewPartition validates and builds a scanning universe from disjoint
// prefixes.
func NewPartition(prefixes []Prefix) (Partition, error) { return rib.NewPartition(prefixes) }

// NewSnapshot builds a scan snapshot from (unsorted, possibly duplicate)
// responsive addresses.
func NewSnapshot(protocol string, month int, addrs []Addr) *Snapshot {
	return census.NewSnapshot(protocol, month, addrs)
}

// ReadSnapshot parses a binary snapshot written with Snapshot.WriteTo.
func ReadSnapshot(r io.Reader) (*Snapshot, error) { return census.ReadSnapshot(r) }

// OpenSnapshotFile opens a census snapshot file in O(index): an indexed
// TASSNAP2 file (see WriteSnapshotFile) yields a lazy snapshot whose
// blocks decode on demand from the mapped file, so a full 2^32-scale
// census opens in milliseconds and counting passes hold only a bounded
// working set resident. Plain v1 streams (Snapshot.WriteTo) are read
// eagerly as a fallback. Close the snapshot when done; Materialize
// detaches a fully in-memory copy.
func OpenSnapshotFile(path string) (*Snapshot, error) { return census.OpenSnapshotFile(path) }

// WriteSnapshotFile writes s in the indexed TASSNAP2 format that
// OpenSnapshotFile reads lazily. The write is atomic (temp file +
// rename) and streams block by block, so writing never needs the
// decoded address slice in memory.
func WriteSnapshotFile(path string, s *Snapshot) error { return census.WriteSnapshotFile(path, s) }

// VerifySnapshotFile deeply checks an indexed snapshot file: index and
// payload checksums plus a full decode of every block. Run it once on
// untrusted files before lazy use — OpenSnapshotFile verifies only the
// index, and trusts the payload bytes it faults in afterwards.
func VerifySnapshotFile(path string) error { return census.VerifySnapshotFile(path) }

// Storage-integrity surface: typed block faults, the degraded-read
// policy knob, and the scrub/repair entry points behind `tass fsck`.
type (
	// BlockError is the typed fault of one lazy block read: the damaged
	// block's index, its byte extent in the payload, and the cause.
	BlockError = addrset.BlockError
	// FaultPolicy selects what a lazy snapshot does when a block read
	// fails: FaultFailFast surfaces the fault to counting consumers,
	// FaultDegrade skips the block, records it, and keeps counting.
	FaultPolicy = addrset.FaultPolicy
	// SnapshotScrub is the block-by-block damage report of
	// ScrubSnapshotFile.
	SnapshotScrub = census.SnapshotScrub
	// SnapshotRepair reports what RepairSnapshotFile recovered, lost,
	// and quarantined.
	SnapshotRepair = census.SnapshotRepair
	// BlockDamage is one undecodable block in a SnapshotScrub.
	BlockDamage = census.BlockDamage
	// FsckResult is the outcome of one FsckCheck/FsckRepair over one
	// file of any tass artifact kind.
	FsckResult = fsck.Result
)

// Fault policies for lazy snapshots (Snapshot.SetFaultPolicy).
const (
	// FaultFailFast (the default) refuses results computed over damaged
	// blocks: selection and ranking return the typed *BlockError.
	FaultFailFast = addrset.FailFast
	// FaultDegrade keeps counting around damaged blocks: counts may
	// undershoot by the damaged blocks' populations, the faults are
	// recorded (Snapshot.StorageFaults), and the process survives.
	FaultDegrade = addrset.Degrade
)

// ScrubSnapshotFile verifies a snapshot file block by block, reporting
// every finding (index damage, payload CRC, per-block damage) instead
// of stopping at the first. It is the read-only half of `tass fsck`.
func ScrubSnapshotFile(path string) (*SnapshotScrub, error) { return census.ScrubSnapshotFile(path) }

// RepairSnapshotFile re-derives every intact block of a damaged
// snapshot file into a fresh verified file, atomically replacing path;
// damaged blocks' raw bytes are quarantined beside it first.
func RepairSnapshotFile(path string) (*SnapshotRepair, error) {
	return census.RepairSnapshotFile(path)
}

// FsckCheck scrubs any tass artifact (snapshot, scan checkpoint,
// coordinator state) read-only, sniffing the kind from the file.
func FsckCheck(path string) (*FsckResult, error) { return fsck.Check(path) }

// FsckRepair scrubs and repairs any tass artifact: snapshots are
// re-derived block by block, valid legacy checkpoints upgraded, and
// unrepairable files moved aside whole to a .quarantine sibling.
func FsckRepair(path string) (*FsckResult, error) { return fsck.Repair(path) }

// ConvertSnapshotFile streams a v1 snapshot (Snapshot.WriteTo bytes,
// e.g. a census archive) into an indexed TASSNAP2 file without ever
// materializing the address slice. It is the bulk-import path behind
// `tass convert`.
func ConvertSnapshotFile(r io.Reader, path string) error {
	return census.ConvertSnapshotFile[Addr](r, path)
}

// ReadSeries parses back-to-back snapshots of one protocol.
func ReadSeries(r io.Reader) (*Series, error) { return census.ReadSeries(r) }

// Select runs TASS prefix selection (the paper's steps 1–4) on a seed
// snapshot over a scanning universe.
func Select(seed *Snapshot, universe Partition, opts Options) (*Selection, error) {
	return core.Select(seed, universe, opts)
}

// SelectCached is Select with the counting walk sharded over workers
// goroutines (0 means GOMAXPROCS) and the per-prefix counts memoized in
// cache (nil computes every call). Results are identical to Select.
func SelectCached(seed *Snapshot, universe Partition, opts Options, workers int, cache *CountCache) (*Selection, error) {
	return core.SelectCached(seed, universe, opts, workers, cache)
}

// Rank returns every responsive prefix of the seed in density order.
func Rank(seed *Snapshot, universe Partition) []PrefixStat {
	return core.Rank(seed, universe)
}

// Evaluate seeds a strategy with month 0 of the series and measures its
// hitrate on every month. fullSpace normalizes the cost share (pass the
// announced address count).
func Evaluate(s Strategy, series *Series, fullSpace uint64) (Evaluation, error) {
	return strategy.Evaluate(s, series, fullSpace)
}

// GenerateUniverse builds a deterministic synthetic Internet for offline
// evaluation. Use DefaultUniverseConfig or SmallUniverseConfig as a base.
func GenerateUniverse(cfg UniverseConfig) (*Universe, error) { return topo.Generate(cfg) }

// DefaultUniverseConfig is the paper-scale simulation setup (≈3.7 B
// allocated addresses, ≈7 M hosts across FTP/HTTP/HTTPS/CWMP).
func DefaultUniverseConfig(seed int64) UniverseConfig { return topo.DefaultConfig(seed) }

// SmallUniverseConfig is a reduced setup for demos and tests.
func SmallUniverseConfig(seed int64) UniverseConfig { return topo.SmallConfig(seed) }

// ScaledUniverseConfig shrinks the paper-scale setup to the given scale
// in (0,1]: the allocated space becomes a proportional number of /8
// blocks and the host populations scale linearly. Scale 1.0 returns the
// full paper-scale configuration.
func ScaledUniverseConfig(seed int64, scale float64) UniverseConfig {
	if scale >= 1.0 {
		return topo.DefaultConfig(seed)
	}
	cfg := topo.DefaultConfig(seed)
	blocks := int(scale * 220)
	if blocks < 1 {
		blocks = 1
	}
	var alloc []Prefix
	for b := 0; b < blocks; b++ {
		alloc = append(alloc, netaddr.MustPrefixFrom(netaddr.AddrFrom4(byte(20+b), 0, 0, 0), 8))
	}
	cfg.Allocated = alloc
	cfg.Protocols = topo.DefaultProfiles(scale)
	// Suppress whole-/8 announcements that would dominate a small world.
	for l := 0; l <= 12; l++ {
		cfg.AnnounceProb[l] = 0
		cfg.HoleProb[l] = 0
	}
	return cfg
}

// DefaultProtocolProfiles returns the four calibrated paper protocols
// (FTP, HTTP, HTTPS, CWMP) with populations scaled by scale.
func DefaultProtocolProfiles(scale float64) []ProtocolProfile {
	return topo.DefaultProfiles(scale)
}

// MustParsePrefix is ParsePrefix for constants; it panics on error.
func MustParsePrefix(s string) Prefix { return netaddr.MustParsePrefix(s) }

// MustParseAddr is ParseAddr for constants; it panics on error.
func MustParseAddr(s string) Addr { return netaddr.MustParseAddr(s) }

// SimulateMonths evolves a universe and returns months+1 monthly
// snapshot series per protocol (month 0 is the unevolved seed state).
func SimulateMonths(u *Universe, seed int64, months int) map[string]*Series {
	return churn.Run(u, seed, months)
}

// SimulateMonthsWorkers is SimulateMonths with the churn evolution
// fanned out over up to workers goroutines (0 means GOMAXPROCS).
// Every (protocol, stripe, month) triple evolves on its own derived
// RNG substream, so the series are byte-identical at any worker count.
func SimulateMonthsWorkers(u *Universe, seed int64, months, workers int) map[string]*Series {
	return churn.RunWorkers(u, seed, months, workers)
}

// SimConfig parameterizes SimulateSeries beyond the universe and seed:
// worker budget, eager set prebuilding, and the incremental
// (delta-derived) snapshot pipeline. Every configuration produces
// byte-identical series.
type SimConfig = churn.RunConfig

// SimulateSeries is SimulateMonths under an explicit SimConfig.
func SimulateSeries(u *Universe, seed int64, months int, cfg SimConfig) map[string]*Series {
	return churn.RunSim(u, seed, months, cfg)
}

// SimulateSeriesDeltas simulates on the incremental pipeline and also
// returns the native per-month deltas: deltas[proto][m] carries month
// m -> m+1, and applying it to the month-m snapshot reproduces month
// m+1 exactly.
func SimulateSeriesDeltas(u *Universe, seed int64, months int, cfg SimConfig) (map[string]*Series, map[string][]*Delta) {
	return churn.RunSimDeltas(u, seed, months, cfg)
}

// NewChurnSimulator returns a month-by-month churn simulator for u
// seeded with seed; set its Workers field to fan each Step out over
// the population stripes (the evolution is byte-identical at any
// worker count).
func NewChurnSimulator(u *Universe, seed int64) *ChurnSimulator {
	return churn.New(u, seed)
}

// SelectMany evaluates a grid of selection options against one seed,
// ranking once and selecting each entry concurrently (0 workers means
// GOMAXPROCS). Entry i equals Select(seed, universe, grid[i]) exactly.
func SelectMany(seed *Snapshot, universe Partition, grid []Options, workers int) ([]*Selection, error) {
	return core.SelectMany(seed, universe, grid, workers)
}

// Extension types: the paper's §5 future-work directions.
type (
	// Campaign is the full periodic loop: select, scan, reseed every Δt.
	Campaign = strategy.Campaign
	// CampaignEval is a simulated campaign's cost/accuracy record.
	CampaignEval = strategy.CampaignEval
	// ClusterOptions bounds scan-driven prefix refinement.
	ClusterOptions = cluster.Options

	// Addr6 is a 128-bit IPv6 address.
	Addr6 = netaddr.Addr6
	// Prefix6 is an IPv6 CIDR prefix.
	Prefix6 = netaddr.Prefix6
	// Universe6 is a disjoint IPv6 prefix set.
	Universe6 = sel6.Universe6
	// Selection6 is an IPv6 TASS scan plan.
	Selection6 = sel6.Selection6
	// PrefixStat6 is one ranked responsive IPv6 prefix.
	PrefixStat6 = sel6.PrefixStat6
)

// EvaluateCampaign simulates a periodic TASS campaign (selection plus
// reseeding every Δt months) against a ground-truth series.
func EvaluateCampaign(c Campaign, series *Series, fullSpace uint64) (CampaignEval, error) {
	return strategy.EvaluateCampaign(c, series, fullSpace)
}

// RefinePartition applies Cai-Heidemann-style utilization clustering to
// a partition: prefixes are recursively bisected around the host
// concentrations observed in the seed scan (paper §5 future work).
func RefinePartition(seed *Snapshot, part Partition, opts ClusterOptions) (Partition, error) {
	return cluster.Refine(seed, part, opts)
}

// ParseAddr6 parses a textual IPv6 address.
func ParseAddr6(s string) (Addr6, error) { return netaddr.ParseAddr6(s) }

// ParsePrefix6 parses IPv6 CIDR notation with zero host bits.
func ParsePrefix6(s string) (Prefix6, error) { return netaddr.ParsePrefix6(s) }

// NewUniverse6 validates and builds an IPv6 scanning universe.
func NewUniverse6(ps []Prefix6) (Universe6, error) { return sel6.NewUniverse6(ps) }

// NewUniverse6FromAnnounced builds the universe from a raw announced
// IPv6 table, dropping covered more-specifics — the v6 analogue of the
// IPv4 l-prefix view.
func NewUniverse6FromAnnounced(ps []Prefix6) (Universe6, error) {
	return sel6.NewUniverse6FromAnnounced(ps)
}

// Select6 runs the TASS selection blueprint on IPv6 seed observations
// (passive measurements or hitlist probes — there is no full IPv6 scan).
func Select6(seeds []Addr6, u Universe6, phi float64) (*Selection6, error) {
	return sel6.Select6(seeds, u, phi)
}

// Rank6 ranks responsive IPv6 prefixes by density.
func Rank6(seeds []Addr6, u Universe6) []PrefixStat6 { return sel6.Rank6(seeds, u) }

// Version is the library version reported by the command-line tools.
const Version = "1.0.0"

// Describe renders a short human-readable summary of a selection.
func Describe(sel *Selection) string {
	return fmt.Sprintf("%d prefixes, %.1f%% host coverage, %d addresses (%.1f%% of universe), %.0f probes/host",
		sel.K, 100*sel.HostCoverage, sel.Space, 100*sel.SpaceShare, sel.Efficiency())
}

// Describe6 renders a short human-readable summary of an IPv6
// selection. Address counts are given as exponents: v6 plans routinely
// exceed 2^64 addresses, where Selection6.Space saturates.
func Describe6(sel *Selection6) string {
	return fmt.Sprintf("%d prefixes, %.1f%% host coverage, 2^%.1f addresses, %d seed hosts",
		sel.K, 100*sel.HostCoverage, sel.SpaceBits, sel.SeedHosts)
}
