#!/bin/sh
# bench.sh — run the benchmark suite and record the perf trajectory.
#
# Emits BENCH_<YYYY-MM-DD>.json in the repo root (or $1 if given): one
# JSON object per benchmark with name, iterations and ns/op, plus host
# metadata for comparing runs. Keep the JSON files out of git or check
# them in deliberately; EXPERIMENTS.md quotes the headline numbers.
#
# Usage: scripts/bench.sh [outfile]
#   BENCH=<regex>   benchmarks to run (default: the counting/selection core)
#   BENCHTIME=<n>   -benchtime value (default: go test's heuristic)
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%Y-%m-%d).json}"
bench="${BENCH:-BenchmarkSparseCount|BenchmarkIntersect|BenchmarkSelect$|BenchmarkRunAll$|BenchmarkAblationCounting}"
benchtime="${BENCHTIME:-}"

args="-run=^$ -bench=$bench -count=1"
if [ -n "$benchtime" ]; then
    args="$args -benchtime=$benchtime"
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# shellcheck disable=SC2086 # args are intentionally word-split
go test $args . | tee "$tmp"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "goos": "%s",\n' "$(go env GOOS)"
    printf '  "goarch": "%s",\n' "$(go env GOARCH)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "benchmarks": [\n'
    awk '$1 ~ /^Benchmark/ && $4 == "ns/op" {
        if (n++) printf ",\n"
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3
    }
    END { printf "\n" }' "$tmp"
    printf '  ]\n'
    printf '}\n'
} > "$out"

echo "wrote $out" >&2
