#!/bin/sh
# bench.sh — run the benchmark suite and record the perf trajectory.
#
# Emits BENCH_<YYYY-MM-DD>.<run>.json in the repo root (or $1 if
# given): one JSON object per benchmark with name, iterations, ns/op,
# bytes/op and allocs/op, plus host metadata for comparing runs. The
# run suffix is monotonic per day, so same-day re-runs never clash and
# "latest" is decided by the (date, run) in the name — not by mtime,
# which a git checkout flattens. If a previous BENCH_*.json exists, a
# report-only delta table against the latest one is printed after the
# run. Keep the JSON files out of git or check them in deliberately;
# EXPERIMENTS.md quotes the headline numbers.
#
# Usage: scripts/bench.sh [-universe huge] [outfile]
#        scripts/bench.sh -compare OLD.json NEW.json
#        scripts/bench.sh -gate [OLD.json] NEW.json
#        scripts/bench.sh -latest
#   BENCH=<regex>       benchmarks to run (default: the counting/selection core)
#   BENCHTIME=<n>       -benchtime value (default: go test's heuristic)
#   GATE_THRESHOLD=<p>  -gate failure threshold in percent (default: 15)
#
# -universe huge switches to the lazy-census tier: a ~50M-host synthetic
# census (TASS_HUGE_HOSTS overrides) measured by BenchmarkOpenSnapshot
# (cold-open latency, lazy vs eager), BenchmarkLazyCount (first-touch
# decode cost and resident block count) and BenchmarkVarintDecode. The
# tier writes the same JSON shape; records from different tiers simply
# share no benchmark names.
#
# -compare prints a report-only ns/op delta table. -gate prints the
# same table but exits non-zero when any benchmark present in both
# files regressed by more than GATE_THRESHOLD percent; with one
# argument the old side defaults to the latest committed BENCH_*.json.
# A tier absent from the baseline (no common benchmarks at all) is
# skipped with a warning, not failed — a new tier's first record has
# nothing to regress against. Absolute ns/op only means something on
# comparable hardware, so when the two records name different CPUs the
# gate downgrades itself to report-only instead of failing on the
# machine gap. -latest prints the name of the latest record and exits.
set -eu

cd "$(dirname "$0")/.."

# host_cpu: this machine's CPU model, for gate comparability checks.
host_cpu() {
    awk -F': *' '/model name/ { print $2; exit }' /proc/cpuinfo 2>/dev/null ||
        uname -m
}

# record_cpu FILE: the "cpu" field of a record ("" on older records).
record_cpu() {
    awk '/"cpu":/ { split($0, q, "\""); print q[4]; exit }' "$1"
}

# latest_bench: newest record by the (date, run) encoded in the name.
latest_bench() {
    ls -1 BENCH_*.json 2>/dev/null | awk '{
        d = $0
        sub(/^BENCH_/, "", d)
        sub(/\.json$/, "", d)
        n = 1
        if (match(d, /\.[0-9]+$/)) {
            n = substr(d, RSTART + 1) + 0
            d = substr(d, 1, RSTART - 1)
        }
        printf "%s.%09d %s\n", d, n, $0
    }' | sort | tail -n 1 | cut -d" " -f2
}

# delta OLD NEW THRESHOLD: print a ns/op delta table; exit 1 when
# THRESHOLD >= 0 and any common benchmark regressed past it, or when a
# threshold is set but no benchmark was comparable at all (a gate that
# compared nothing must not pass vacuously). Names are normalized by
# stripping go test's -GOMAXPROCS suffix, so records from hosts with
# different core counts still line up.
delta() {
    awk -v thr="$3" '
        FNR == 1 { fi++ }
        /"name":/ {
            split($0, q, "\"")
            name = q[4]
            sub(/-[0-9]+$/, "", name)
            if (match($0, /"ns_per_op": *[0-9.eE+-]+/)) {
                val = substr($0, RSTART, RLENGTH)
                sub(/.*: */, "", val)
                if (fi == 1) { old[name] = val }
                else if (!(name in new)) { new[name] = val; order[n++] = name }
            }
        }
        END {
            fail = 0
            compared = 0
            printf "%-55s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
            for (i = 0; i < n; i++) {
                name = order[i]
                if (name in old) {
                    compared++
                    d = (new[name] - old[name]) / old[name] * 100
                    flag = ""
                    if (thr >= 0 && d > thr) { flag = "  REGRESSION"; fail = 1 }
                    printf "%-55s %14.0f %14.0f %+8.1f%%%s\n", name, old[name], new[name], d, flag
                } else {
                    printf "%-55s %14s %14.0f %9s\n", name, "-", new[name], "(new)"
                }
            }
            if (thr >= 0 && compared == 0) {
                # A disjoint benchmark set means a different tier (e.g.
                # the first huge-tier record with only default-tier
                # baselines committed): nothing to regress against, so
                # skip rather than fail.
                print "gate: no benchmark of this tier in the baseline; skipping" > "/dev/stderr"
            }
            exit fail
        }' "$1" "$2"
}

tier=""
if [ "${1:-}" = "-universe" ]; then
    tier="${2:?bench.sh: -universe needs a tier name (huge)}"
    shift 2
fi

case "${1:-}" in
-compare)
    delta "$2" "$3" -1
    exit 0
    ;;
-gate)
    thr="${GATE_THRESHOLD:-15}"
    if [ $# -ge 3 ]; then
        old="$2" new="$3"
    else
        old=$(latest_bench)
        new="$2"
        if [ -z "$old" ]; then
            echo "bench.sh: -gate: no committed BENCH_*.json to compare against" >&2
            exit 0
        fi
    fi
    oldcpu=$(record_cpu "$old")
    newcpu=$(record_cpu "$new")
    # Downgrade only on a *proven* CPU mismatch. A record without the
    # field (pre-gate bench.sh, e.g. the base-commit side of the CI
    # A/B) stays gating: the comparison may well be same-machine, and
    # an unprovable one should fail closed, not pass vacuously.
    if [ -n "$oldcpu" ] && [ -n "$newcpu" ] && [ "$oldcpu" != "$newcpu" ]; then
        echo "gate: baseline CPU ($oldcpu) != this CPU ($newcpu); report-only" >&2
        delta "$old" "$new" -1 || true
        exit 0
    fi
    echo "gate: $old -> $new (fail above +$thr% ns/op)" >&2
    delta "$old" "$new" "$thr"
    exit $?
    ;;
-latest)
    latest_bench
    exit 0
    ;;
esac

# Default output name: a monotonic per-day run suffix, never clobbering
# or shadowing an existing record.
if [ -n "${1:-}" ]; then
    out="$1"
else
    day=$(date +%Y-%m-%d)
    run=$(ls -1 "BENCH_$day".json "BENCH_$day".*.json 2>/dev/null | awk '{
        d = $0
        sub(/^BENCH_[0-9-]*/, "", d)
        sub(/\.json$/, "", d)
        sub(/^\./, "", d)
        n = (d == "") ? 1 : d + 0
        if (n > max) max = n
    } END { print max + 1 }')
    out="BENCH_$day.$run.json"
fi
if [ "$tier" = "huge" ]; then
    export TASS_BENCH_UNIVERSE=huge
    bench="${BENCH:-BenchmarkOpenSnapshot|BenchmarkLazyCount|BenchmarkVarintDecode}"
elif [ -n "$tier" ]; then
    echo "bench.sh: unknown -universe tier \"$tier\" (want huge)" >&2
    exit 2
else
    bench="${BENCH:-BenchmarkSparseCount|BenchmarkIntersect|BenchmarkSelect$|BenchmarkSelect6$|BenchmarkRank$|BenchmarkRunAll$|BenchmarkBuildWorld$|BenchmarkChurnStep$|BenchmarkScanCycle|BenchmarkChurnToSelect|BenchmarkIncrementalRank|BenchmarkAblationCounting|BenchmarkPolicyLimiter|BenchmarkVarintDecode}"
fi
benchtime="${BENCHTIME:-}"

args="-run=^$ -bench=$bench -benchmem -count=1"
if [ -n "$benchtime" ]; then
    args="$args -benchtime=$benchtime"
fi

# The most recent previous record, for the post-run delta table.
prev=$(latest_bench | grep -Fxv "$out" || true)

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# shellcheck disable=SC2086 # args are intentionally word-split
go test $args . | tee "$tmp"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "goos": "%s",\n' "$(go env GOOS)"
    printf '  "goarch": "%s",\n' "$(go env GOARCH)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "cpu": "%s",\n' "$(host_cpu)"
    printf '  "benchmarks": [\n'
    awk '$1 ~ /^Benchmark/ && $4 == "ns/op" {
        if (n++) printf ",\n"
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", $1, $2, $3
        if ($6 == "B/op") printf ", \"bytes_per_op\": %s", $5
        if ($8 == "allocs/op") printf ", \"allocs_per_op\": %s", $7
        printf "}"
    }
    END { printf "\n" }' "$tmp"
    printf '  ]\n'
    printf '}\n'
} > "$out"

echo "wrote $out" >&2

if [ -n "$prev" ]; then
    echo "" >&2
    echo "delta vs $prev (report-only):" >&2
    delta "$prev" "$out" -1 >&2 || true
fi
