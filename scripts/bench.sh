#!/bin/sh
# bench.sh — run the benchmark suite and record the perf trajectory.
#
# Emits BENCH_<YYYY-MM-DD>.json in the repo root (or $1 if given): one
# JSON object per benchmark with name, iterations and ns/op, plus host
# metadata for comparing runs. If a previous BENCH_*.json exists, a
# report-only delta table against the most recent one is printed after
# the run (it never fails the build). Keep the JSON files out of git or
# check them in deliberately; EXPERIMENTS.md quotes the headline
# numbers.
#
# Usage: scripts/bench.sh [outfile]
#        scripts/bench.sh -compare OLD.json NEW.json
#   BENCH=<regex>   benchmarks to run (default: the counting/selection core)
#   BENCHTIME=<n>   -benchtime value (default: go test's heuristic)
set -eu

cd "$(dirname "$0")/.."

# compare OLD NEW: print a delta table of ns/op, report-only.
compare() {
    awk '
        FNR == 1 { fi++ }
        /"name":/ {
            split($0, q, "\"")
            name = q[4]
            if (match($0, /"ns_per_op": *[0-9.eE+-]+/)) {
                val = substr($0, RSTART, RLENGTH)
                sub(/.*: */, "", val)
                if (fi == 1) { old[name] = val }
                else if (!(name in new)) { new[name] = val; order[n++] = name }
            }
        }
        END {
            printf "%-45s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
            for (i = 0; i < n; i++) {
                name = order[i]
                if (name in old) {
                    d = (new[name] - old[name]) / old[name] * 100
                    printf "%-45s %14.0f %14.0f %+8.1f%%\n", name, old[name], new[name], d
                } else {
                    printf "%-45s %14s %14.0f %9s\n", name, "-", new[name], "(new)"
                }
            }
        }' "$1" "$2"
}

if [ "${1:-}" = "-compare" ]; then
    compare "$2" "$3"
    exit 0
fi

# Default output name; never clobber an existing record (same-day
# re-runs get a numeric suffix so the previous record stays diffable).
if [ -n "${1:-}" ]; then
    out="$1"
else
    out="BENCH_$(date +%Y-%m-%d).json"
    n=2
    while [ -e "$out" ]; do
        out="BENCH_$(date +%Y-%m-%d).$n.json"
        n=$((n + 1))
    done
fi
bench="${BENCH:-BenchmarkSparseCount|BenchmarkIntersect|BenchmarkSelect$|BenchmarkRank$|BenchmarkRunAll$|BenchmarkBuildWorld$|BenchmarkChurnStep$|BenchmarkScanCycle|BenchmarkAblationCounting}"
benchtime="${BENCHTIME:-}"

args="-run=^$ -bench=$bench -count=1"
if [ -n "$benchtime" ]; then
    args="$args -benchtime=$benchtime"
fi

# The most recent previous record (by mtime — lexicographic order
# misorders same-day suffixed records), for the post-run delta table.
prev=$(ls -1t BENCH_*.json 2>/dev/null | grep -Fxv "$out" | head -n 1 || true)

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# shellcheck disable=SC2086 # args are intentionally word-split
go test $args . | tee "$tmp"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "goos": "%s",\n' "$(go env GOOS)"
    printf '  "goarch": "%s",\n' "$(go env GOARCH)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "benchmarks": [\n'
    awk '$1 ~ /^Benchmark/ && $4 == "ns/op" {
        if (n++) printf ",\n"
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3
    }
    END { printf "\n" }' "$tmp"
    printf '  ]\n'
    printf '}\n'
} > "$out"

echo "wrote $out" >&2

if [ -n "$prev" ]; then
    echo "" >&2
    echo "delta vs $prev (report-only):" >&2
    compare "$prev" "$out" >&2
fi
