package tass_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/tass-scan/tass"
	"github.com/tass-scan/tass/internal/mrt"
	"github.com/tass-scan/tass/internal/pfx2as"
)

// worldFixture caches one small world for the extension tests.
var worldFixture *struct {
	u      *tass.Universe
	series map[string]*tass.Series
}

func fixture(t *testing.T) (*tass.Universe, map[string]*tass.Series) {
	t.Helper()
	if worldFixture == nil {
		u, err := tass.GenerateUniverse(tass.SmallUniverseConfig(77))
		if err != nil {
			t.Fatal(err)
		}
		worldFixture = &struct {
			u      *tass.Universe
			series map[string]*tass.Series
		}{u, tass.SimulateMonths(u, 78, 4)}
	}
	return worldFixture.u, worldFixture.series
}

func TestPublicCampaign(t *testing.T) {
	u, series := fixture(t)
	ev, err := tass.EvaluateCampaign(tass.Campaign{
		Universe:    u.More,
		Opts:        tass.Options{Phi: 0.95},
		ReseedEvery: 2,
	}, series["ftp"], u.Less.AddressCount())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Reseeds != 3 { // months 0, 2, 4
		t.Fatalf("reseeds %d", ev.Reseeds)
	}
	if ev.MeanHitrate < 0.9 || ev.MeanCostShare >= 1 {
		t.Errorf("campaign: %+v", ev)
	}
}

func TestPublicRefinePartition(t *testing.T) {
	u, series := fixture(t)
	seed := series["http"].At(0)
	refined, err := tass.RefinePartition(seed, u.Less, tass.ClusterOptions{Contrast: 2})
	if err != nil {
		t.Fatal(err)
	}
	if refined.AddressCount() != u.Less.AddressCount() {
		t.Error("refinement changed covered space")
	}
	if refined.Len() < u.Less.Len() {
		t.Error("refinement lost prefixes")
	}
}

func TestPublicRank(t *testing.T) {
	u, series := fixture(t)
	seed := series["ftp"].At(0)
	ranked := tass.Rank(seed, u.More)
	if len(ranked) == 0 {
		t.Fatal("empty ranking")
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Density > ranked[i-1].Density {
			t.Fatal("not density-sorted")
		}
	}
}

func TestPublicScanner(t *testing.T) {
	u, series := fixture(t)
	seed := series["ftp"].At(0)
	sel, err := tass.Select(seed, u.More, tass.Options{Phi: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	prober, err := tass.NewSimProber(seed.Addrs, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tass.NewScanner(tass.ScanConfig{
		Targets: sel.Partition(),
		Prober:  prober,
		Workers: 4,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	report, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The simulated scan of the selection must find exactly the seed
	// hosts inside it.
	if got, want := len(report.Responsive), seed.CountIn(sel.Partition()); got != want {
		t.Errorf("scan found %d, ground truth %d", got, want)
	}
}

func TestPublicIPv6(t *testing.T) {
	a, err := tass.ParseAddr6("2001:db8::1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := tass.ParsePrefix6("2001:db8::/32")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(a) {
		t.Error("containment")
	}
	u, err := tass.NewUniverse6([]tass.Prefix6{p})
	if err != nil {
		t.Fatal(err)
	}
	ranked := tass.Rank6([]tass.Addr6{a}, u)
	if len(ranked) != 1 || ranked[0].Hosts != 1 {
		t.Fatalf("Rank6: %+v", ranked)
	}
	sel, err := tass.Select6([]tass.Addr6{a}, u, 1)
	if err != nil || sel.K != 1 {
		t.Fatalf("Select6: %+v, %v", sel, err)
	}
}

func TestPublicExtractMRTHappyPath(t *testing.T) {
	peers := []mrt.Peer{{BGPID: 1, Addr: tass.MustParseAddr("198.51.100.1"), AS: 64500, AS4: true}}
	routes := []pfx2as.Record{
		{Prefix: tass.MustParsePrefix("100.0.0.0/8"), Origin: pfx2as.SingleOrigin(3356)},
	}
	var buf bytes.Buffer
	if err := mrt.SynthesizeRIB(&buf, 1, 1, peers, routes); err != nil {
		t.Fatal(err)
	}
	table, skipped, err := tass.ExtractMRT(&buf)
	if err != nil || skipped != 0 || table.Len() != 1 {
		t.Fatalf("ExtractMRT: %v, %d, %v", table, skipped, err)
	}
	if asn, _ := table.Entries()[0].Origin.Primary(); asn != 3356 {
		t.Errorf("origin %d", asn)
	}
}

func TestPublicNewTableAndVersion(t *testing.T) {
	tb := tass.NewTable([]tass.Prefix{
		tass.MustParsePrefix("10.0.0.0/8"),
		tass.MustParsePrefix("10.16.0.0/12"),
	})
	if tb.Len() != 2 || tb.LessSpecifics().Len() != 1 {
		t.Errorf("NewTable: %d, %d", tb.Len(), tb.LessSpecifics().Len())
	}
	if tass.Version == "" {
		t.Error("empty version")
	}
}

func TestPublicDiffSnapshots(t *testing.T) {
	_, series := fixture(t)
	s := series["cwmp"]
	d := tass.DiffSnapshots(s.At(0), s.At(1))
	if d.Kept+d.Lost != s.At(0).Hosts() {
		t.Errorf("diff does not partition the earlier snapshot: %+v", d)
	}
	// CWMP is the churniest protocol: a month must lose a visible share.
	if r := d.Retention(); r > 0.9 || r < 0.4 {
		t.Errorf("cwmp one-month retention %v implausible", r)
	}
}

func TestPublicReadSeries(t *testing.T) {
	_, series := fixture(t)
	var buf bytes.Buffer
	if _, err := series["cwmp"].WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := tass.ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Protocol != "cwmp" || back.Months() != series["cwmp"].Months() {
		t.Errorf("series round trip: %s %d", back.Protocol, back.Months())
	}
}
