package tass_test

// Benchmark harness: one bench per paper table/figure (regenerating the
// experiment on a reduced-scale world), plus ablation benches for the
// design choices called out in DESIGN.md §6. Run with:
//
//	go test -bench=. -benchmem
//
// The full paper-scale regeneration is `go run ./cmd/experiments`.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"

	"github.com/tass-scan/tass"
	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/experiment"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
	"github.com/tass-scan/tass/internal/scan"
	"github.com/tass-scan/tass/internal/trie"
)

var (
	benchWorldOnce sync.Once
	benchWorld     *experiment.World
	benchWorldErr  error
)

// world builds the shared reduced-scale world once per test binary.
func world(b *testing.B) *experiment.World {
	b.Helper()
	benchWorldOnce.Do(func() {
		benchWorld, benchWorldErr = experiment.BuildWorld(experiment.SmallConfig(1))
	})
	if benchWorldErr != nil {
		b.Fatal(benchWorldErr)
	}
	return benchWorld
}

func benchExperiment(b *testing.B, id string) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(w, id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (address-space coverage per φ).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFigure1 regenerates Figure 1 (scan-strategy scoping funnel).
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "figure1") }

// BenchmarkFigure2 regenerates Figure 2 (l-prefix deaggregation).
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "figure2") }

// BenchmarkFigure3 regenerates Figure 3 (hosts per prefix length over 7
// measurements).
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "figure3") }

// BenchmarkFigure4 regenerates Figure 4 (ranked density/coverage curves).
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "figure4") }

// BenchmarkFigure5 regenerates Figure 5 (hitlist hitrate decay).
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "figure5") }

// BenchmarkFigure6 regenerates Figure 6 (TASS hitrate over time, φ=1 and
// φ=0.95, l- and m-universes).
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "figure6") }

// BenchmarkSectionStats regenerates the §3.4 statistics.
func BenchmarkSectionStats(b *testing.B) { benchExperiment(b, "section34") }

// BenchmarkHeadline regenerates the §4.2 headline (FTP m-prefix TASS
// after six months).
func BenchmarkHeadline(b *testing.B) { benchExperiment(b, "headline") }

// BenchmarkEfficiency regenerates the 1.25–10x efficiency comparison.
func BenchmarkEfficiency(b *testing.B) { benchExperiment(b, "efficiency") }

// BenchmarkAblationRanking compares density ranking against host-count
// and random orderings (DESIGN.md §6).
func BenchmarkAblationRanking(b *testing.B) { benchExperiment(b, "ablation-ranking") }

// BenchmarkClustering regenerates the §5 Cai-Heidemann prefix-clustering
// extension.
func BenchmarkClustering(b *testing.B) { benchExperiment(b, "clustering") }

// BenchmarkReseed regenerates the Δt reseed-interval frontier.
func BenchmarkReseed(b *testing.B) { benchExperiment(b, "reseed") }

// BenchmarkVulnEstimate regenerates the §5 vulnerable-population
// estimator.
func BenchmarkVulnEstimate(b *testing.B) { benchExperiment(b, "vulnestimate") }

// BenchmarkMissed regenerates the missed-host distribution analysis.
func BenchmarkMissed(b *testing.B) { benchExperiment(b, "missed") }

// BenchmarkRunAll compares the parallel experiment engine against the
// serial loop: the whole experiment suite on the shared world at
// increasing worker counts. Output is byte-identical at every count
// (see experiment.TestRunAllGoldenEquality); only wall-clock changes.
func BenchmarkRunAll(b *testing.B) {
	w := world(b)
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			wc := *w
			wc.Cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiment.RunAll(context.Background(), &wc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildWorld measures world construction (universe generation
// plus striped churn simulation and snapshot extraction) at increasing
// worker counts. allocs/op keeps the extraction-arena work visible:
// the serial wall this PR removed must not silently regrow.
func BenchmarkBuildWorld(b *testing.B) {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiment.SmallConfig(1)
			cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiment.BuildWorld(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChurnStep measures one month of striped churn over every
// population of a reduced-scale universe — the per-host hot loop the
// stripe substreams parallelize.
func BenchmarkChurnStep(b *testing.B) {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			u, err := tass.GenerateUniverse(tass.ScaledUniverseConfig(1, 0.01))
			if err != nil {
				b.Fatal(err)
			}
			sim := tass.NewChurnSimulator(u, 2)
			sim.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Step()
			}
		})
	}
}

// BenchmarkRank measures the density ranking of one seed snapshot over
// the m-partition with a warm count cache: what remains is the
// key-packed sort plus stat construction.
func BenchmarkRank(b *testing.B) {
	w := world(b)
	seed := w.Series["http"].At(0)
	w.Rank(seed, w.U.More) // warm the count cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(w.Rank(seed, w.U.More)) == 0 {
			b.Fatal("empty ranking")
		}
	}
}

// BenchmarkSelect measures one TASS selection on the seed snapshot (the
// operation a reseeding scanner runs monthly).
func BenchmarkSelect(b *testing.B) {
	w := world(b)
	seed := w.Series["http"].At(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Select(seed, w.U.More, core.Options{Phi: 0.95}); err != nil {
			b.Fatal(err)
		}
	}
}

// v6Fixture is the IPv6 selection shape: an announced universe of 8K
// mixed-length prefixes and ~256K hitlist-style seed observations.
// Built once per binary, deterministically.
var (
	v6Once  sync.Once
	v6Seeds []netaddr.Addr6
	v6Uni   tass.Universe6
)

func v6Fixture(b *testing.B) ([]netaddr.Addr6, tass.Universe6) {
	b.Helper()
	v6Once.Do(func() {
		ps := make([]netaddr.Prefix6, 8192)
		x := uint64(7)
		for i := range ps {
			x = x*6364136223846793005 + 1442695040888963407
			bits := 32 + int(x>>60) // /32../47
			ps[i] = netaddr.MustPfxFrom(netaddr.Addr6{Hi: 0x2000_0000_0000_0000 + uint64(i)<<40}, bits)
		}
		var err error
		v6Uni, err = tass.NewUniverse6(ps)
		if err != nil {
			panic(err)
		}
		addrs := make([]netaddr.Addr6, 1<<18)
		for i := range addrs {
			x = x*6364136223846793005 + 1442695040888963407
			base := ps[(x>>43)%8192].Addr()
			addrs[i] = netaddr.Addr6{Hi: base.Hi | x&0xFF, Lo: x >> 20 & 0x3FF}
		}
		v6Seeds = addrs
	})
	return v6Seeds, v6Uni
}

// BenchmarkSelect6 measures one IPv6 TASS selection — the snapshot
// build (sort + dedup of the seed observations), the per-prefix count,
// and the generic rank/select — over the v6 fixture.
func BenchmarkSelect6(b *testing.B) {
	seeds, uni := v6Fixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel, err := tass.Select6(seeds, uni, 0.95)
		if err != nil {
			b.Fatal(err)
		}
		if sel.K == 0 {
			b.Fatal("empty selection")
		}
	}
}

// sparseBench is the paper-scale reseed counting shape: a large seed
// scan (N ≈ 1M responsive addresses), a /18 universe partition, and a
// small density-head selection (K prefixes, K << N/blocksize). Built
// once per binary, deterministically.
var (
	sparseOnce sync.Once
	sparseSnap *census.Snapshot
	sparseUni  rib.Partition
)

func sparseFixture(b *testing.B) (*census.Snapshot, rib.Partition) {
	b.Helper()
	sparseOnce.Do(func() {
		// 4096 /18 prefixes starting at 16.0.0.0.
		ps := make([]netaddr.Prefix, 4096)
		for i := range ps {
			ps[i] = netaddr.MustPrefixFrom(netaddr.Addr(1<<28+uint32(i)<<14), 18)
		}
		var err error
		sparseUni, err = tass.NewPartition(ps)
		if err != nil {
			panic(err)
		}
		// ~1M deterministic pseudo-random addresses across the span.
		addrs := make([]netaddr.Addr, 1<<20)
		x := uint64(99)
		for i := range addrs {
			x = x*6364136223846793005 + 1442695040888963407
			addrs[i] = netaddr.Addr(1<<28 + uint32((x>>33)%(4096<<14)))
		}
		sparseSnap = census.NewSnapshot("bench", 0, addrs)
	})
	return sparseSnap, sparseUni
}

// BenchmarkSparseCount measures counting a sparse selection against a
// large seed snapshot — the reseed and hitrate-evaluation shape (small
// K over large N). "merge" is the O(N+K) walk that re-touches every
// address; "set" is the block-index path behind Snapshot.CountIn
// (O(K log B) range counts, interior blocks answered from the
// cumulative index). Sub-benchmarks sweep the selection share of the
// 4096-prefix universe up to the 5% acceptance shape.
func BenchmarkSparseCount(b *testing.B) {
	seed, uni := sparseFixture(b)
	for _, share := range []struct {
		name string
		k    int
	}{
		{"K=0.8pct", uni.Len() / 128},
		{"K=5pct", uni.Len() / 20},
	} {
		idx := make([]int, share.k)
		for i := range idx {
			idx[i] = (i * uni.Len()) / share.k // spread across the universe
		}
		selPart := uni.Subset(idx)
		b.Run(share.name+"/merge", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				counts, _ := selPart.CountAddrs(seed.Addrs)
				total := 0
				for _, c := range counts {
					total += c
				}
				if total == 0 {
					b.Fatal("empty count")
				}
			}
		})
		b.Run(share.name+"/set", func(b *testing.B) {
			seed.Set() // build outside the timer; it is memoized anyway
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if seed.CountIn(selPart) == 0 {
					b.Fatal("empty count")
				}
			}
		})
	}
}

// BenchmarkIntersect measures |a ∩ b| — the hitlist hitrate
// computation — at the two shapes the adaptive Snapshot.IntersectWith
// distinguishes: "similar" sizes (adjacent months sharing most hosts,
// where the element-wise merge wins) and "lopsided" (a small set
// against a large one, where the galloping block-index intersection
// skips the large set's unique runs at block granularity).
func BenchmarkIntersect(b *testing.B) {
	seed, _ := sparseFixture(b)
	w := world(b)
	s0 := w.Series["http"].At(0)
	s6 := w.Series["http"].At(6)
	tiny := census.NewSnapshot("tiny", 0, seed.Addrs[len(seed.Addrs)/2:len(seed.Addrs)/2+4096])
	shapes := []struct {
		name string
		a, b *census.Snapshot
	}{
		{"similar", s0, s6},
		{"lopsided", tiny, seed},
	}
	for _, sh := range shapes {
		b.Run(sh.name+"/merge", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if census.IntersectCount(sh.a.Addrs, sh.b.Addrs) == 0 {
					b.Fatal("empty intersection")
				}
			}
		})
		b.Run(sh.name+"/set", func(b *testing.B) {
			sh.a.Set()
			sh.b.Set()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sh.a.Set().IntersectCount(sh.b.Set()) == 0 {
					b.Fatal("empty intersection")
				}
			}
		})
		b.Run(sh.name+"/adaptive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if sh.a.IntersectWith(sh.b) == 0 {
					b.Fatal("empty intersection")
				}
			}
		})
	}
}

// BenchmarkAblationCountingMerge measures per-prefix host counting with
// the sorted-merge walk the library uses.
func BenchmarkAblationCountingMerge(b *testing.B) {
	w := world(b)
	seed := w.Series["http"].At(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.U.More.CountAddrs(seed.Addrs)
	}
}

// BenchmarkAblationCountingTrie measures the alternative design: a
// longest-prefix-match trie lookup per address. The merge walk wins by a
// wide margin on sorted scan output, which is why Partition.CountAddrs
// exists.
func BenchmarkAblationCountingTrie(b *testing.B) {
	w := world(b)
	seed := w.Series["http"].At(0)
	tr := trie.New[int]()
	for i, p := range w.U.More.Prefixes() {
		tr.Insert(p, i)
	}
	counts := make([]int, w.U.More.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range counts {
			counts[j] = 0
		}
		for _, a := range seed.Addrs {
			if _, idx, ok := tr.Lookup(a); ok {
				counts[idx]++
			}
		}
	}
}

// BenchmarkAblationPermutation measures ZMap-style permuted target
// generation (what the scanner uses).
func BenchmarkAblationPermutation(b *testing.B) {
	pm, err := scan.NewPermutation(1<<24, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := pm.Next(); !ok {
			pm.Reset()
		}
	}
}

// BenchmarkAblationLinearSweep measures the naive alternative: linear
// index iteration. Linear is faster per address but concentrates probes
// on one network at a time — the burstiness the permutation exists to
// avoid (see scan.TestPermutationSpreads).
func BenchmarkAblationLinearSweep(b *testing.B) {
	var idx uint64
	const n = 1 << 24
	for i := 0; i < b.N; i++ {
		idx++
		if idx == n {
			idx = 0
		}
	}
	_ = idx
}

// noopProber answers every probe instantly with "closed": the scan-cycle
// benchmarks then measure the engine itself — permutation stepping,
// index→address mapping, accounting, result merging — not the prober.
type noopProber struct{}

func (noopProber) Probe(_ context.Context, addr netaddr.Addr) (scan.Result, error) {
	return scan.Result{Addr: addr}, nil
}

// scanCycleTargets is the shared scan plan of the cycle benchmarks: the
// φ=0.7 FTP selection of the reduced-scale world.
func scanCycleTargets(b *testing.B) rib.Partition {
	w := world(b)
	seed := w.Series["ftp"].At(0)
	sel, err := core.Select(seed, w.U.More, core.Options{Phi: 0.7})
	if err != nil {
		b.Fatal(err)
	}
	return sel.Partition()
}

// BenchmarkScanCycle measures a complete scan cycle of a TASS plan on
// the sharded engine at increasing worker counts, against the
// channel-fed baseline it replaced (one feeder goroutine walking the
// permutation, handing every address to workers through a channel,
// mutex-guarded report). The sharded engine gives each worker a private
// slice of the permutation cycle, so throughput scales with workers;
// the baseline is bound by the feeder and the channel handoff.
func BenchmarkScanCycle(b *testing.B) {
	targets := scanCycleTargets(b)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := scan.New(scan.Config{
					Targets: targets,
					Prober:  noopProber{},
					Workers: workers,
					Seed:    int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				report, err := s.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if report.Probed != targets.AddressCount() {
					b.Fatalf("probed %d of %d", report.Probed, targets.AddressCount())
				}
			}
		})
	}
	b.Run("baseline-channel/workers=8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			probed, err := channelFedCycle(targets, noopProber{}, 8, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if probed != targets.AddressCount() {
				b.Fatalf("probed %d of %d", probed, targets.AddressCount())
			}
		}
	})
}

// channelFedCycle reproduces the pre-sharding engine for the baseline
// benchmark: a single feeder goroutine walks the sequential permutation
// and pushes every address through a channel to the worker pool, with a
// mutex around the shared report state.
func channelFedCycle(targets rib.Partition, prober scan.Prober, workers int, seed int64) (uint64, error) {
	perm, err := scan.NewPermutation(targets.AddressCount(), seed)
	if err != nil {
		return 0, err
	}
	cum := make([]uint64, targets.Len())
	var c uint64
	for i := 0; i < targets.Len(); i++ {
		c += targets.Prefix(i).NumAddresses()
		cum[i] = c
	}
	addrAt := func(idx uint64) netaddr.Addr {
		i := sort.Search(len(cum), func(i int) bool { return cum[i] > idx })
		p := targets.Prefix(i)
		off := idx
		if i > 0 {
			off -= cum[i-1]
		}
		return p.First() + netaddr.Addr(off)
	}

	ch := make(chan netaddr.Addr, workers*2)
	var mu sync.Mutex
	var responsive []netaddr.Addr
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for addr := range ch {
				res, err := prober.Probe(context.Background(), addr)
				if err != nil {
					continue
				}
				if res.Open {
					mu.Lock()
					responsive = append(responsive, res.Addr)
					mu.Unlock()
				}
			}
		}()
	}
	var probed uint64
	for {
		idx, ok := perm.Next()
		if !ok {
			break
		}
		ch <- addrAt(idx)
		probed++
	}
	close(ch)
	wg.Wait()
	_ = responsive
	return probed, nil
}

// lowChurnUniverse builds the steady-state benchmark world: one
// protocol with ≈120 K hosts whose monthly address churn is ≈2.5 %
// (death 1 % + re-homing 0.4 % + dynamic re-rolls 1 %) — well inside
// the ≤5 % regime the incremental pipeline targets. Placement
// parameters follow the calibrated HTTP profile so densities stay
// paper-shaped.
func lowChurnUniverse(b *testing.B) *tass.Universe {
	b.Helper()
	cfg := tass.ScaledUniverseConfig(1, 0.05)
	prof := tass.DefaultProtocolProfiles(0.05)[1] // http-shaped placement
	prof.Name = "svc"
	prof.DynamicShare = 0.01
	prof.DeathRate = 0.010
	prof.MoveRate = 0.004
	// A heavier per-prefix intensity tail than the reduced-scale
	// default: the φ-selection then cuts at a dense head rather than
	// absorbing nearly every responsive prefix, matching the paper's
	// Figure 4 shape at full scale.
	prof.DensitySigma = 3.0
	cfg.Protocols = []tass.ProtocolProfile{prof}
	cfg.Workers = 1
	u, err := tass.GenerateUniverse(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return u
}

// BenchmarkChurnToSelect measures the steady state of the §3.1 loop on
// one vCPU: advance the world one month, derive the census snapshot,
// and draw a fresh φ=0.95 selection over the m-universe. "full" is the
// recompute pipeline (radix re-extract, count every address over every
// prefix, re-sort every responsive prefix); "incremental" is the delta
// pipeline (native churn delta, ApplyDelta merge, ranking repaired by
// a bounded re-sort, top-K selection). Selections are byte-identical —
// only the cost differs (the ≥3× acceptance bench of the delta PR).
func BenchmarkChurnToSelect(b *testing.B) {
	opts := core.Options{Phi: 0.95}
	b.Run("full", func(b *testing.B) {
		u := lowChurnUniverse(b)
		uni := u.More
		sim := tass.NewChurnSimulator(u, 2)
		sim.Workers = 1
		sim.ExtractSnapshot("svc") // warm the extraction arena
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.Step()
			snap := sim.ExtractSnapshot("svc")
			if _, err := core.SelectCached(snap, uni, opts, 1, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		u := lowChurnUniverse(b)
		uni := u.More
		sim := tass.NewChurnSimulator(u, 2)
		sim.Workers = 1
		prev := sim.ExtractSnapshot("svc")
		ranker, err := tass.NewIncrementalSelector(prev, uni, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := sim.StepDeltas()["svc"]
			// The census artifact: StepDeltas maintains it by applying
			// the delta (one block-copying merge) — same snapshot the
			// full path re-extracts and re-sorts from scratch.
			if sim.DeltaSnapshot("svc") == nil {
				b.Fatal("no snapshot")
			}
			if err := ranker.Apply(d); err != nil {
				b.Fatal(err)
			}
			if _, err := ranker.Select(opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIncrementalRank isolates the ranking repair: one ≈2.5 %
// monthly delta applied to a maintained ranking plus a top-K selection,
// against the full recount-and-re-sort selection of the same snapshot.
// The benchmark alternates a delta with its inverse so the ranker state
// is stationary across iterations.
func BenchmarkIncrementalRank(b *testing.B) {
	u := lowChurnUniverse(b)
	uni := u.More
	sim := tass.NewChurnSimulator(u, 2)
	sim.Workers = 1
	s0 := sim.ExtractSnapshot("svc")
	d := sim.StepDeltas()["svc"]
	s1, err := tass.ApplyDelta(s0, d)
	if err != nil {
		b.Fatal(err)
	}
	inv := &tass.Delta{Protocol: d.Protocol, FromMonth: d.ToMonth, ToMonth: d.FromMonth, Born: d.Died, Died: d.Born}
	opts := core.Options{Phi: 0.95}
	b.Run("incremental", func(b *testing.B) {
		ranker, err := tass.NewIncrementalSelector(s0, uni, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step := d
			if i%2 == 1 {
				step = inv
			}
			if err := ranker.Apply(step); err != nil {
				b.Fatal(err)
			}
			if _, err := ranker.Select(opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap := s1
			if i%2 == 1 {
				snap = s0
			}
			if _, err := core.SelectCached(snap, uni, opts, 1, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGenerateUniverse measures synthetic-Internet generation at the
// reduced benchmark scale.
func BenchmarkGenerateUniverse(b *testing.B) {
	cfg := tass.ScaledUniverseConfig(1, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tass.GenerateUniverse(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeaggregateTable measures Figure-2 deaggregation of the whole
// announced table.
func BenchmarkDeaggregateTable(b *testing.B) {
	w := world(b)
	prefixes := w.U.Table.Prefixes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trie.Deaggregate(prefixes)
	}
}

// BenchmarkPolicyLimiter measures the per-probe cost of the politeness
// hierarchy against the plain global limiter, on the fast path (tokens
// always available: the refill outruns the benchmark loop, so no sleep
// is ever taken — exactly the steady state of a scan running below its
// rate caps). The hierarchy folds the per-AS and per-prefix buckets
// under the global bucket's one mutex and one clock read, so layering
// must cost bucket arithmetic only: the acceptance bar is ≤10% per-probe
// overhead for global+AS+prefix versus global-only.
func BenchmarkPolicyLimiter(b *testing.B) {
	const (
		rate     = 1e9 // refill far above benchmark throughput: never blocks
		burst    = 1 << 16
		prefixes = 64
		ases     = 8
	)
	origins := make([]uint32, prefixes)
	for i := range origins {
		origins[i] = uint32(64500 + i%ases)
	}
	ctx := context.Background()

	b.Run("global-only", func(b *testing.B) {
		lim, err := scan.NewLimiter(rate, burst)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := lim.Wait(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("policy-global", func(b *testing.B) {
		p, err := scan.NewPolicyLimiter(scan.PolicyConfig{Rate: rate, Burst: burst})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.Wait(ctx, i%prefixes); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("policy-hierarchy", func(b *testing.B) {
		p, err := scan.NewPolicyLimiter(scan.PolicyConfig{
			Rate: rate, Burst: burst,
			ASRate: rate, ASBurst: burst,
			PrefixRate: rate, PrefixBurst: burst,
			Origins:  origins,
			Prefixes: prefixes,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.Wait(ctx, i%prefixes); err != nil {
				b.Fatal(err)
			}
		}
	})
}
