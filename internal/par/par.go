// Package par holds the one concurrency primitive the deterministic
// fan-out paths share: run an indexed job set on a bounded pool.
// Callers own determinism — results must be written to per-index slots
// and every RNG must be derived per index, never shared.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines (0 means GOMAXPROCS) and returns when all calls have
// finished. workers<=1 or n==1 degrades to a plain loop on the calling
// goroutine.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
