// Package par holds the one concurrency primitive the deterministic
// fan-out paths share: run an indexed job set on a bounded pool.
// Callers own determinism — results must be written to per-index slots
// and every RNG must be derived per index, never shared.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines (0 means GOMAXPROCS) and returns when all calls have
// finished. workers<=1 or n==1 degrades to a plain loop on the calling
// goroutine.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	// More goroutines than P's can never help here: every caller is
	// CPU-bound (no blocking I/O mid-job), so the surplus goroutines
	// only add scheduler churn and atomic contention. The clamp cannot
	// change results — workers only decides which goroutine claims
	// which index, never the work itself.
	if max := runtime.GOMAXPROCS(0); workers <= 0 || workers > max {
		workers = max
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachChunk runs fn(lo, hi) for every chunk-sized index range
// [lo, hi) partitioning [0, n) — lo = k*chunk, hi = min(lo+chunk, n) —
// on at most workers goroutines (0 means GOMAXPROCS). Every index in
// [0, n) belongs to exactly one chunk, chunk boundaries depend only on
// (n, chunk), and workers only changes which goroutine claims which
// chunk — never the chunks themselves. Use it instead of ForEach when
// the per-index work is so small that the per-index atomic.Add becomes
// measurable contention: the pool pays one atomic per chunk instead of
// one per index. workers<=1 degrades to a plain loop on the calling
// goroutine.
func ForEachChunk(n, workers, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	chunks := (n + chunk - 1) / chunk
	ForEach(chunks, workers, func(k int) {
		lo := k * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}
