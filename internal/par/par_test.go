package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		for _, n := range []int{0, 1, 7, 64, 1000} {
			hits := make([]atomic.Int32, n)
			ForEach(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestForEachChunkPartitions is the striping property test: the chunk
// ranges partition [0, n) exactly — every index in exactly one chunk —
// and the ranges depend only on (n, chunk), never on workers.
func TestForEachChunkPartitions(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		for _, n := range []int{0, 1, 7, 63, 64, 65, 1000} {
			for _, chunk := range []int{-1, 0, 1, 7, 64, 2000} {
				hits := make([]atomic.Int32, n)
				ForEachChunk(n, workers, chunk, func(lo, hi int) {
					if lo >= hi {
						t.Errorf("empty chunk [%d,%d)", lo, hi)
					}
					c := chunk
					if c <= 0 {
						c = 1
					}
					if lo%c != 0 {
						t.Errorf("chunk=%d: lo %d not aligned", chunk, lo)
					}
					if hi-lo > c {
						t.Errorf("chunk=%d: range [%d,%d) too wide", chunk, lo, hi)
					}
					for i := lo; i < hi; i++ {
						hits[i].Add(1)
					}
				})
				for i := range hits {
					if got := hits[i].Load(); got != 1 {
						t.Fatalf("workers=%d n=%d chunk=%d: index %d visited %d times",
							workers, n, chunk, i, got)
					}
				}
			}
		}
	}
}
