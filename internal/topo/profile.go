package topo

// ProtocolProfile holds both the placement parameters (where hosts of a
// protocol live at month 0) and the churn parameters (how the population
// evolves month over month). The defaults below are calibrated so that the
// experiment harness reproduces the bands of the paper's Table 1 and
// Figures 3–6; DESIGN.md §5 derives the values.
type ProtocolProfile struct {
	// Name is the protocol label ("ftp", "http", ...).
	Name string

	// TargetHosts is the approximate population size at month 0.
	TargetHosts int

	// Affinity maps PrefixKind to a relative weight: how strongly the
	// protocol concentrates on prefixes of that kind.
	Affinity [numKinds]float64

	// SizeExponent gamma makes the expected host count of a prefix grow
	// like size^gamma: sub-linear, so large prefixes are almost always
	// responsive yet have low density (the paper's sparse giants).
	SizeExponent float64

	// DensitySigma is the sigma of the per-prefix lognormal intensity
	// multiplier; it controls how heavy the density tail is (Figure 4).
	DensitySigma float64

	// UniformFloor is the share of the population scattered uniformly
	// over the announced address space, independent of prefix affinity.
	// It creates the paper's "sparse giants": large prefixes that are
	// responsive but have very low density, so that φ=1 requires much
	// more address space than φ=0.99 (Table 1).
	UniformFloor float64

	// MClusterWeight is the probability that a host of this protocol in a
	// parented l-prefix sits inside one of the announced more-specifics.
	// High values make m-prefix selection efficient (Table 1, lower half).
	MClusterWeight float64

	// DynamicShare is the fraction of hosts behind dynamic addressing;
	// they re-roll their address every month (within their prefix), which
	// breaks address hitlists but not prefix selection (Fig 5 vs Fig 6).
	DynamicShare float64

	// MLocality is the probability that a dynamic re-roll stays inside
	// the host's current m-partition piece rather than anywhere in its
	// l-prefix. Values below 1 are what make m-prefix TASS decay faster
	// than l-prefix TASS (Figure 6a).
	MLocality float64

	// DeathRate is the monthly probability that a host disappears; the
	// population is kept stationary by an equal birth flow.
	DeathRate float64

	// MoveRate is the monthly probability that a surviving host re-homes
	// to an unrelated announced address (provider change). This is the
	// dominant source of TASS accuracy decay.
	MoveRate float64

	// MoveColdShare is the fraction of re-homings that land in "cold"
	// space — l-prefixes that hosted nothing at seed time — rather than
	// uniformly in the announced space. Cold landings are lost to every
	// selection regardless of φ, which keeps the φ=0.95 decay rate close
	// to the φ=1 rate, as the paper observes (Figure 6b).
	MoveColdShare float64

	// BirthBackground is the fraction of births placed uniformly in the
	// announced space instead of proportionally to the existing
	// population; it seeds previously-empty prefixes.
	BirthBackground float64
}

// DefaultProfiles returns the four protocols the paper evaluates, with
// churn calibrated to the paper's measurements:
//
//   - hitlists keep ≈80 % of FTP/HTTP/HTTPS hosts after one month and
//     ≈71 % (HTTP) after six; CWMP collapses to ≈43 % (Figure 5);
//   - TASS at φ=1 loses ≈0.3 %/month on l-prefixes and up to
//     ≈0.7 %/month on m-prefixes (Figure 6a).
func DefaultProfiles(scale float64) []ProtocolProfile {
	n := func(base int) int { return int(float64(base) * scale) }
	return []ProtocolProfile{
		{
			Name:        "ftp",
			TargetHosts: n(1_200_000),
			// FTP: hosting and enterprise, a little residential NAS.
			Affinity:        [numKinds]float64{KindResidential: 0.30, KindHosting: 1.0, KindEnterprise: 0.60, KindInfrastructure: 0.25},
			SizeExponent:    0.80,
			DensitySigma:    2.2,
			UniformFloor:    0.062,
			MClusterWeight:  0.75,
			DynamicShare:    0.17,
			MLocality:       0.90,
			DeathRate:       0.012,
			MoveRate:        0.0060,
			MoveColdShare:   0.50,
			BirthBackground: 0.10,
		},
		{
			Name:            "http",
			TargetHosts:     n(2_400_000),
			Affinity:        [numKinds]float64{KindResidential: 0.50, KindHosting: 1.0, KindEnterprise: 0.75, KindInfrastructure: 0.35},
			SizeExponent:    0.75,
			DensitySigma:    2.1,
			UniformFloor:    0.040,
			MClusterWeight:  0.72,
			DynamicShare:    0.18,
			MLocality:       0.90,
			DeathRate:       0.012,
			MoveRate:        0.0050,
			MoveColdShare:   0.50,
			BirthBackground: 0.10,
		},
		{
			Name:            "https",
			TargetHosts:     n(2_100_000),
			Affinity:        [numKinds]float64{KindResidential: 0.45, KindHosting: 1.0, KindEnterprise: 0.75, KindInfrastructure: 0.35},
			SizeExponent:    0.78,
			DensitySigma:    2.1,
			UniformFloor:    0.050,
			MClusterWeight:  0.72,
			DynamicShare:    0.16,
			MLocality:       0.90,
			DeathRate:       0.011,
			MoveRate:        0.0048,
			MoveColdShare:   0.50,
			BirthBackground: 0.10,
		},
		{
			Name:        "cwmp",
			TargetHosts: n(1_600_000),
			// TR-069 remote management: residential gateways, full stop.
			Affinity:        [numKinds]float64{KindResidential: 1.0, KindHosting: 0.004, KindEnterprise: 0.02, KindInfrastructure: 0.004},
			SizeExponent:    0.74,
			DensitySigma:    2.0,
			UniformFloor:    0.0025,
			MClusterWeight:  0.80,
			DynamicShare:    0.30,
			MLocality:       0.92,
			DeathRate:       0.072,
			MoveRate:        0.0050,
			MoveColdShare:   0.50,
			BirthBackground: 0.06,
		},
	}
}

// ProfileByName returns the profile with the given name from ps.
func ProfileByName(ps []ProtocolProfile, name string) (ProtocolProfile, bool) {
	for _, p := range ps {
		if p.Name == name {
			return p, true
		}
	}
	return ProtocolProfile{}, false
}
