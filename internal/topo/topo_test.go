package topo

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
)

func testConfig(seed int64) Config {
	cfg := SmallConfig(seed)
	cfg.Allocated = []netaddr.Prefix{netaddr.MustParsePrefix("20.0.0.0/8")}
	cfg.Protocols = DefaultProfiles(0.004) // a few thousand hosts
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	u1, err := Generate(testConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Generate(testConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if u1.Table.Len() != u2.Table.Len() {
		t.Fatalf("tables differ: %d vs %d", u1.Table.Len(), u2.Table.Len())
	}
	for i := range u1.Table.Entries() {
		if u1.Table.Entries()[i].Prefix != u2.Table.Entries()[i].Prefix {
			t.Fatalf("prefix %d differs", i)
		}
	}
	p1 := u1.Pops["ftp"]
	p2 := u2.Pops["ftp"]
	if len(p1.Hosts) != len(p2.Hosts) {
		t.Fatalf("populations differ: %d vs %d", len(p1.Hosts), len(p2.Hosts))
	}
	for i := range p1.Hosts {
		if p1.Hosts[i] != p2.Hosts[i] {
			t.Fatalf("host %d differs", i)
		}
	}
}

func TestGenerateDifferentSeeds(t *testing.T) {
	u1, _ := Generate(testConfig(1))
	u2, _ := Generate(testConfig(2))
	if u1.Table.Len() == u2.Table.Len() && len(u1.Pops["ftp"].Hosts) == len(u2.Pops["ftp"].Hosts) {
		// Identical sizes on different seeds are suspicious but possible;
		// require at least one host placed differently.
		same := true
		for i := range u1.Pops["ftp"].Hosts {
			if u1.Pops["ftp"].Hosts[i].Addr != u2.Pops["ftp"].Hosts[i].Addr {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical universes")
		}
	}
}

func TestUniverseInvariants(t *testing.T) {
	u, err := Generate(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	// Announced space is contained in the allocated block.
	alloc := netaddr.MustParsePrefix("20.0.0.0/8")
	for _, p := range u.Less.Prefixes() {
		if !alloc.ContainsPrefix(p) {
			t.Fatalf("announced %v outside allocated block", p)
		}
	}
	// The two partitions cover the same space.
	if u.Less.AddressCount() != u.More.AddressCount() {
		t.Fatalf("l covers %d, m covers %d", u.Less.AddressCount(), u.More.AddressCount())
	}
	// Announced fraction in a plausible band (target ≈0.70 of allocated).
	frac := float64(u.Less.AddressCount()) / float64(alloc.NumAddresses())
	if frac < 0.45 || frac > 0.9 {
		t.Errorf("announced fraction %.2f outside [0.45,0.9]", frac)
	}
	// Kinds and children indexes are aligned with the l-partition.
	if len(u.Kinds) != u.Less.Len() {
		t.Fatalf("kinds %d, l-prefixes %d", len(u.Kinds), u.Less.Len())
	}
	for i := 0; i < u.Less.Len(); i++ {
		for _, c := range u.MChildren(i) {
			if !u.Less.Prefix(i).ContainsPrefix(c) {
				t.Fatalf("child %v outside parent %v", c, u.Less.Prefix(i))
			}
		}
	}
	// Every host lies inside its recorded l-prefix.
	for _, name := range u.Protocols() {
		for _, h := range u.Pops[name].Hosts {
			if !u.Less.Prefix(int(h.LIdx)).Contains(h.Addr) {
				t.Fatalf("%s host %v not in its l-prefix %v", name, h.Addr, u.Less.Prefix(int(h.LIdx)))
			}
		}
	}
}

func TestPopulationSizesNearTarget(t *testing.T) {
	u, err := Generate(testConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, prof := range u.Cfg.Protocols {
		got := len(u.Pops[prof.Name].Hosts)
		lo := int(0.5 * float64(prof.TargetHosts))
		hi := int(2.0 * float64(prof.TargetHosts))
		if got < lo || got > hi {
			t.Errorf("%s: %d hosts, target %d", prof.Name, got, prof.TargetHosts)
		}
	}
}

func TestCWMPConcentration(t *testing.T) {
	// CWMP is residential-only: the space share of its responsive
	// prefixes must be clearly below the web protocols'.
	u, err := Generate(testConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	share := func(name string) float64 {
		pop := u.Pops[name]
		counts, _ := u.Less.CountAddrs(pop.Addresses())
		var space uint64
		for i, c := range counts {
			if c > 0 {
				space += u.Less.Prefix(i).NumAddresses()
			}
		}
		return float64(space) / float64(u.Less.AddressCount())
	}
	if c, h := share("cwmp"), share("http"); c >= h {
		t.Errorf("cwmp space share %.3f should be below http %.3f", c, h)
	}
}

func TestRandomAnnouncedAddr(t *testing.T) {
	u, err := Generate(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a := u.RandomAnnouncedAddr(rng)
		if _, ok := u.Less.Find(a); !ok {
			t.Fatalf("sampled address %v outside announced space", a)
		}
	}
}

func TestRandomAddrIn(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := netaddr.MustParsePrefix("20.1.2.0/24")
	for i := 0; i < 1000; i++ {
		if a := RandomAddrIn(rng, p); !p.Contains(a) {
			t.Fatalf("address %v outside %v", a, p)
		}
	}
	single := netaddr.MustParsePrefix("20.1.2.3/32")
	if a := RandomAddrIn(rng, single); a != single.Addr() {
		t.Fatalf("/32 sample %v", a)
	}
}

func TestComplement(t *testing.T) {
	res := []netaddr.Prefix{
		netaddr.MustParsePrefix("0.0.0.0/8"),
		netaddr.MustParsePrefix("128.0.0.0/1"),
	}
	comp := complement(res)
	var total uint64
	for _, p := range comp {
		total += p.NumAddresses()
		for _, r := range res {
			if p.Overlaps(r) {
				t.Fatalf("complement %v overlaps reserved %v", p, r)
			}
		}
	}
	want := uint64(1<<32) - (1 << 24) - (1 << 31)
	if total != want {
		t.Fatalf("complement covers %d, want %d", total, want)
	}
}

func TestDefaultReservedSpace(t *testing.T) {
	var reserved uint64
	for _, p := range DefaultReserved() {
		reserved += p.NumAddresses()
	}
	allocated := uint64(1<<32) - reserved
	// The paper's Figure 1: ≈3.7 B allocated addresses.
	if allocated < 3_500_000_000 || allocated > 3_900_000_000 {
		t.Errorf("allocated space %d outside the paper's ≈3.7 B band", allocated)
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, lambda := range []float64{0, 0.5, 3, 25, 100, 5000} {
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, lambda))
		}
		mean := sum / float64(n)
		tol := 4 * math.Sqrt(lambda/float64(n)) // ≈4 standard errors
		if lambda == 0 {
			if mean != 0 {
				t.Errorf("poisson(0) mean %v", mean)
			}
			continue
		}
		if math.Abs(mean-lambda) > tol+0.05 {
			t.Errorf("poisson(%v) mean %v, tolerance %v", lambda, mean, tol)
		}
	}
}

func TestLognormalMeanOne(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += lognormal(rng, 1.0)
	}
	if mean := sum / float64(n); mean < 0.9 || mean > 1.1 {
		t.Errorf("lognormal mean %v, want ≈1", mean)
	}
}

func TestGenerateErrors(t *testing.T) {
	cfg := testConfig(1)
	cfg.Protocols = nil
	if _, err := Generate(cfg); err == nil {
		t.Error("no protocols must fail")
	}
	cfg = testConfig(1)
	cfg.MinLen, cfg.MaxLen = 24, 8
	if _, err := Generate(cfg); err == nil {
		t.Error("inverted length bounds must fail")
	}
	cfg = testConfig(1)
	cfg.Protocols = []ProtocolProfile{{Name: "x", TargetHosts: 0}}
	if _, err := Generate(cfg); err == nil {
		t.Error("zero target hosts must fail")
	}
	cfg = testConfig(1)
	dup := cfg.Protocols[0]
	cfg.Protocols = append(cfg.Protocols, dup)
	if _, err := Generate(cfg); err == nil {
		t.Error("duplicate protocol name must fail (would alias one population across churn workers)")
	}
}

func TestKindString(t *testing.T) {
	for k := PrefixKind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := testConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
