package topo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/par"
	"github.com/tass-scan/tass/internal/pfx2as"
	"github.com/tass-scan/tass/internal/rib"
)

// Config parameterizes universe generation. Zero-value fields are filled
// with defaults by Generate; DefaultConfig returns the paper-scale setup.
type Config struct {
	// Seed makes generation fully deterministic.
	Seed int64

	// Reserved lists never-allocated special-use space. Defaults to the
	// IANA special-use registry (≈0.6 B addresses, leaving the paper's
	// ≈3.7 B allocated).
	Reserved []netaddr.Prefix

	// Allocated optionally overrides the allocatable space (used by tests
	// and small examples). When nil it is computed as the complement of
	// Reserved.
	Allocated []netaddr.Prefix

	// MinLen/MaxLen bound announced prefix lengths (default 8 and 24,
	// matching the paper's "prefixes longer than /24 are negligible").
	MinLen, MaxLen int

	// AnnounceProb[l] / HoleProb[l] drive the recursive announcer: a
	// block of length l is announced whole with AnnounceProb[l], left as
	// an unannounced hole with HoleProb[l], and split into halves
	// otherwise. At MaxLen the block is announced with AnnounceProb[l]
	// and a hole otherwise.
	AnnounceProb, HoleProb [33]float64

	// MChildProb is the probability that an announced l-prefix shorter
	// than MaxLen also announces more-specific children.
	MChildProb float64
	// MMaxChildren caps the children per parent (draw is uniform 1..cap).
	MMaxChildren int
	// MDeltaWeights[d-1] weights a child being d bits longer than its
	// parent.
	MDeltaWeights []float64

	// KindWeights is the distribution of PrefixKind over l-prefixes.
	KindWeights [numKinds]float64

	// Protocols lists the host populations to place.
	Protocols []ProtocolProfile

	// Workers bounds the number of goroutines placing host populations
	// (one independent RNG stream per protocol, so the result is
	// identical at any worker count). Zero means GOMAXPROCS.
	Workers int
}

// ProtoSeed derives the independent RNG stream seed for one protocol:
// an FNV-1a hash of the name mixed with the base seed through a
// splitmix64 finalizer. Each (seed, protocol) pair owns its own stream,
// so populations can be placed and churned in any order — or
// concurrently — without changing a single draw.
func ProtoSeed(seed int64, name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	x := uint64(seed) ^ h
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// DefaultReserved returns the IANA special-use prefixes excluded from
// allocation (private, loopback, link-local, CGN, multicast, class E).
func DefaultReserved() []netaddr.Prefix {
	ss := []string{
		"0.0.0.0/8", "10.0.0.0/8", "100.64.0.0/10", "127.0.0.0/8",
		"169.254.0.0/16", "172.16.0.0/12", "192.0.0.0/24", "192.0.2.0/24",
		"192.88.99.0/24", "192.168.0.0/16", "198.18.0.0/15",
		"198.51.100.0/24", "203.0.113.0/24", "224.0.0.0/4", "240.0.0.0/4",
	}
	out := make([]netaddr.Prefix, len(ss))
	for i, s := range ss {
		out[i] = netaddr.MustParsePrefix(s)
	}
	return out
}

// DefaultConfig returns the paper-scale configuration: ≈3.7 B allocated
// addresses, ≈70 % of them announced in ≈600 K l-prefixes, with the four
// paper protocols scaled to ≈7 M hosts total.
func DefaultConfig(seed int64) Config {
	cfg := Config{
		Seed:          seed,
		Reserved:      DefaultReserved(),
		MinLen:        8,
		MaxLen:        24,
		MChildProb:    0.70,
		MMaxChildren:  5,
		MDeltaWeights: []float64{0.30, 0.30, 0.20, 0.10, 0.07, 0.03},
		KindWeights: [numKinds]float64{
			KindResidential:    0.30,
			KindHosting:        0.12,
			KindEnterprise:     0.38,
			KindInfrastructure: 0.20,
		},
		Protocols: DefaultProfiles(1.0),
	}
	setLen := func(from, to int, a, h float64) {
		for l := from; l <= to; l++ {
			cfg.AnnounceProb[l] = a
			cfg.HoleProb[l] = h
		}
	}
	setLen(8, 11, 0.01, 0.01)
	setLen(12, 14, 0.03, 0.02)
	setLen(15, 15, 0.06, 0.03)
	setLen(16, 16, 0.28, 0.05)
	setLen(17, 19, 0.15, 0.08)
	setLen(20, 22, 0.30, 0.12)
	setLen(23, 23, 0.35, 0.20)
	setLen(24, 24, 0.82, 0.18)
	return cfg
}

// SmallConfig returns a reduced universe (a handful of /8s, tens of
// thousands of hosts) that keeps the same statistical shape. Tests,
// examples and benchmarks use it for speed.
func SmallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Allocated = []netaddr.Prefix{
		netaddr.MustParsePrefix("20.0.0.0/6"),
		netaddr.MustParsePrefix("60.0.0.0/8"),
	}
	cfg.Protocols = DefaultProfiles(0.02) // ≈24 K FTP ... 48 K HTTP hosts
	// At this scale a single whole-/8 announcement (1 % per block at full
	// scale) would dominate the universe; force splitting down to /13.
	for l := 0; l <= 12; l++ {
		cfg.AnnounceProb[l] = 0
		cfg.HoleProb[l] = 0
	}
	return cfg
}

// Generate builds a deterministic synthetic universe from cfg.
func Generate(cfg Config) (*Universe, error) {
	if cfg.MinLen == 0 {
		cfg.MinLen = 8
	}
	if cfg.MaxLen == 0 {
		cfg.MaxLen = 24
	}
	if cfg.MinLen > cfg.MaxLen || cfg.MaxLen > 32 {
		return nil, fmt.Errorf("topo: bad length bounds [%d,%d]", cfg.MinLen, cfg.MaxLen)
	}
	if cfg.Reserved == nil {
		cfg.Reserved = DefaultReserved()
	}
	if len(cfg.Protocols) == 0 {
		return nil, errors.New("topo: no protocol profiles")
	}
	// Names key Pops and the per-protocol RNG streams; a duplicate would
	// alias one population across two concurrent churn workers.
	names := make(map[string]bool, len(cfg.Protocols))
	for _, p := range cfg.Protocols {
		if names[p.Name] {
			return nil, fmt.Errorf("topo: duplicate protocol name %q", p.Name)
		}
		names[p.Name] = true
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	allocated := cfg.Allocated
	if allocated == nil {
		allocated = complement(cfg.Reserved)
	} else {
		allocated = append([]netaddr.Prefix(nil), allocated...)
		netaddr.SortPrefixes(allocated) // keep l-prefix emission in address order
	}
	var allocSpace uint64
	for _, p := range allocated {
		allocSpace += p.NumAddresses()
	}

	// Pass 1: recursive announcer over every allocated block.
	var lPrefixes []netaddr.Prefix
	var rec func(p netaddr.Prefix)
	rec = func(p netaddr.Prefix) {
		l := p.Bits()
		if l >= cfg.MaxLen {
			if rng.Float64() < cfg.AnnounceProb[cfg.MaxLen] {
				lPrefixes = append(lPrefixes, p)
			}
			return
		}
		if l >= cfg.MinLen {
			r := rng.Float64()
			if r < cfg.AnnounceProb[l] {
				lPrefixes = append(lPrefixes, p)
				return
			}
			if r < cfg.AnnounceProb[l]+cfg.HoleProb[l] {
				return
			}
		}
		lo, hi, _ := p.Split()
		rec(lo)
		rec(hi)
	}
	for _, b := range allocated {
		rec(b)
	}
	if len(lPrefixes) == 0 {
		return nil, errors.New("topo: generation produced no announced prefixes")
	}

	// Pass 2: more-specific children, kinds, origins.
	type parented struct {
		children []netaddr.Prefix
	}
	parents := make([]parented, len(lPrefixes))
	kinds := make([]PrefixKind, len(lPrefixes))
	var entries []rib.Entry
	nextASN := uint32(1000)
	deltaTotal := 0.0
	for _, w := range cfg.MDeltaWeights {
		deltaTotal += w
	}
	for i, lp := range lPrefixes {
		kinds[i] = drawKind(rng, cfg.KindWeights)
		asn := nextASN
		nextASN++
		entries = append(entries, rib.Entry{Prefix: lp, Origin: pfx2as.SingleOrigin(asn)})

		if lp.Bits() >= cfg.MaxLen || rng.Float64() >= cfg.MChildProb {
			continue
		}
		n := 1 + rng.Intn(cfg.MMaxChildren)
		for c := 0; c < n; c++ {
			maxDelta := cfg.MaxLen - lp.Bits()
			d := drawDelta(rng, cfg.MDeltaWeights, deltaTotal)
			if d > maxDelta {
				d = maxDelta
			}
			childBits := lp.Bits() + d
			// Random aligned child inside the parent.
			slot := rng.Int63n(1 << uint(d))
			childAddr := lp.Addr() | netaddr.Addr(uint64(slot)<<(32-uint(childBits)))
			child := netaddr.MustPrefixFrom(childAddr, childBits)
			if overlapsAny(child, parents[i].children) {
				continue
			}
			parents[i].children = append(parents[i].children, child)
			childASN := asn
			if rng.Float64() < 0.25 {
				childASN = nextASN
				nextASN++
			}
			entries = append(entries, rib.Entry{Prefix: child, Origin: pfx2as.SingleOrigin(childASN)})
		}
	}

	table := rib.New(entries)
	u := &Universe{
		Cfg:       cfg,
		Table:     table,
		Less:      table.LessSpecifics(),
		More:      table.Deaggregated(),
		Reserved:  cfg.Reserved,
		Allocated: allocSpace,
		Pops:      make(map[string]*Population, len(cfg.Protocols)),
	}
	if u.Less.Len() != len(lPrefixes) {
		// The recursive announcer emits disjoint prefixes, so the table's
		// l-view must be exactly what we generated.
		return nil, fmt.Errorf("topo: internal: %d l-prefixes, table has %d",
			len(lPrefixes), u.Less.Len())
	}
	// lPrefixes were emitted in address order (depth-first over sorted
	// blocks), so indexes line up with the sorted partition.
	u.Kinds = kinds
	u.mChildren = make([][]netaddr.Prefix, len(lPrefixes))
	for i := range parents {
		u.mChildren[i] = parents[i].children
	}
	u.buildIndexes()

	// Pass 3: host populations. Each protocol draws from its own
	// ProtoSeed stream, so the populations are independent of placement
	// order and can be built concurrently without changing any draw.
	pops := make([]*Population, len(cfg.Protocols))
	errs := make([]error, len(cfg.Protocols))
	par.ForEach(len(cfg.Protocols), cfg.Workers, func(pi int) {
		prof := cfg.Protocols[pi]
		prng := rand.New(rand.NewSource(ProtoSeed(cfg.Seed, prof.Name)))
		pop, err := placeHosts(prng, u, prof)
		if err != nil {
			errs[pi] = err
			return
		}
		u.buildColdIndex(pop)
		pops[pi] = pop
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for pi, pop := range pops {
		u.Pops[cfg.Protocols[pi].Name] = pop
	}
	return u, nil
}

// placeHosts draws the per-prefix host counts from the heavy-tailed
// intensity model and materializes host records.
func placeHosts(rng *rand.Rand, u *Universe, prof ProtocolProfile) (*Population, error) {
	if prof.TargetHosts <= 0 {
		return nil, fmt.Errorf("topo: protocol %q: TargetHosts must be positive", prof.Name)
	}
	n := u.Less.Len()
	weights := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		p := u.Less.Prefix(i)
		aff := prof.Affinity[u.Kinds[i]]
		if aff == 0 {
			continue
		}
		w := aff * math.Pow(float64(p.NumAddresses()), prof.SizeExponent) *
			lognormal(rng, prof.DensitySigma)
		weights[i] = w
		sum += w
	}
	if sum == 0 {
		return nil, fmt.Errorf("topo: protocol %q: zero total intensity", prof.Name)
	}
	pop := &Population{Profile: prof}
	pop.Hosts = make([]Host, 0, prof.TargetHosts+prof.TargetHosts/8)
	target := float64(prof.TargetHosts)
	space := float64(u.Less.AddressCount())
	for i := 0; i < n; i++ {
		lp := u.Less.Prefix(i)
		size := lp.NumAddresses()
		// Affinity-driven host mass, clustered into m-children.
		clustered := 0
		if weights[i] != 0 {
			clustered = poisson(rng, target*(1-prof.UniformFloor)*weights[i]/sum)
		}
		// Background mass: the sparse-giant floor. A mild lognormal factor
		// turns the floor into a density gradient rather than a plateau,
		// so the ranked-density tail (Figure 4) falls off smoothly.
		scattered := 0
		if prof.UniformFloor > 0 {
			scattered = poisson(rng,
				target*prof.UniformFloor*float64(size)/space*lognormal(rng, 1.2))
		}
		// A prefix cannot hold more hosts than addresses.
		if uint64(clustered+scattered) > size {
			clustered = int(size)
			scattered = 0
		}
		for h := 0; h < clustered; h++ {
			pop.Hosts = append(pop.Hosts, Host{
				Addr:    u.PlaceHostAddr(rng, i, &prof),
				LIdx:    int32(i),
				Dynamic: rng.Float64() < prof.DynamicShare,
			})
		}
		for h := 0; h < scattered; h++ {
			pop.Hosts = append(pop.Hosts, Host{
				Addr:    RandomAddrIn(rng, lp),
				LIdx:    int32(i),
				Dynamic: rng.Float64() < prof.DynamicShare,
			})
		}
	}
	return pop, nil
}

// complement returns the minimal prefix set covering all of IPv4 space
// except the given (disjoint) prefixes.
func complement(reserved []netaddr.Prefix) []netaddr.Prefix {
	sorted := make([]netaddr.Prefix, len(reserved))
	copy(sorted, reserved)
	netaddr.SortPrefixes(sorted)
	var out []netaddr.Prefix
	cur := uint64(0)
	for _, p := range sorted {
		if uint64(p.First()) > cur {
			out = append(out, netaddr.SummarizeRange(netaddr.Addr(cur), p.First()-1)...)
		}
		if next := uint64(p.Last()) + 1; next > cur {
			cur = next
		}
	}
	if cur <= math.MaxUint32 {
		out = append(out, netaddr.SummarizeRange(netaddr.Addr(cur), netaddr.Addr(math.MaxUint32))...)
	}
	return out
}

func overlapsAny(p netaddr.Prefix, others []netaddr.Prefix) bool {
	for _, o := range others {
		if p.Overlaps(o) {
			return true
		}
	}
	return false
}

func drawKind(rng *rand.Rand, weights [numKinds]float64) PrefixKind {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	r := rng.Float64() * total
	for k, w := range weights {
		if r < w {
			return PrefixKind(k)
		}
		r -= w
	}
	return KindEnterprise
}

func drawDelta(rng *rand.Rand, weights []float64, total float64) int {
	r := rng.Float64() * total
	for i, w := range weights {
		if r < w {
			return i + 1
		}
		r -= w
	}
	return 1
}

// lognormal draws exp(N(-sigma^2/2, sigma^2)), a mean-1 heavy-tailed
// multiplier.
func lognormal(rng *rand.Rand, sigma float64) float64 {
	return math.Exp(rng.NormFloat64()*sigma - sigma*sigma/2)
}

// poisson draws a Poisson variate. Knuth's product method below 30,
// a rounded normal approximation above (exact enough for host counts).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}
