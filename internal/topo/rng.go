package topo

import "math/bits"

// Rand is the draw interface the universe sampling helpers need. Both
// math/rand.Rand (used during generation, where the draw schedule is
// frozen by the seed format) and the churn package's stripe streams
// (topo.RNG) satisfy it.
type Rand interface {
	Float64() float64
	Intn(n int) int
	Int63() int64
	Int63n(n int64) int64
}

// RNG is a splitmix64 stream: the fixed-algorithm generator behind the
// striped churn substreams. It exists because math/rand pays an
// interface call into its Source on every draw, which is measurable in
// the per-host churn loop; splitmix64 is a single add plus three
// xor-shift-multiplies, inlines fully, and passes BigCrush.
//
// The algorithm is part of the determinism contract: a (seed, scale,
// months) triple must reproduce byte-identical series across releases,
// so the constants and draw derivations below must never change.
type RNG struct {
	s uint64
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{s: uint64(seed)}
}

// Uint64 returns the next 64 uniform bits.
func (r *RNG) Uint64() uint64 {
	r.s += 0x9E3779B97F4A7C15
	x := r.s
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uint64n returns a uniform draw in [0, n). It uses the widening-
// multiply reduction (Lemire) without the rejection loop: the residual
// bias is below 2^-64+lg(n), invisible to any simulation statistic,
// and the draw stays branch-free and inlineable.
func (r *RNG) Uint64n(n uint64) uint64 {
	hi, _ := bits.Mul64(r.Uint64(), n)
	return hi
}

// Intn returns a uniform draw in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("topo: RNG.Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns 63 uniform bits as a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Int63n returns a uniform draw in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("topo: RNG.Int63n called with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// MixSeed derives an independent substream seed from a base seed and
// two lane indexes (e.g. stripe and month) through the splitmix64
// finalizer — the same construction ProtoSeed uses for protocol lanes.
// Distinct (base, a, b) triples yield decorrelated streams, so work
// split across lanes is a pure function of the lane coordinates, never
// of scheduling.
func MixSeed(base int64, a, b uint64) int64 {
	x := uint64(base) ^ (a * 0xA24BAED4963EE407) ^ (b * 0x9FB21C651E98DF25)
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}
