// Package topo synthesizes a calibrated model of the announced IPv4
// Internet: an announced-prefix table with the aggregation structure of a
// real BGP RIB (less-specifics with announced more-specifics inside), and
// per-protocol host populations whose per-prefix density follows the heavy
// tail that the TASS paper measures on censys.io data.
//
// The paper's input — 4.1 TB of censys.io full-IPv4 scans — is proprietary
// and unavailable offline, so this package is the substitute documented in
// DESIGN.md: it reproduces the statistical properties TASS depends on
// (density skew, aggregation shape, protocol concentration) rather than
// any particular host. Every consumer (selection, strategies, experiments)
// operates on the same types a real censys/zmap export would produce.
package topo

import (
	"fmt"
	"sort"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// PrefixKind classifies the dominant use of an announced prefix. The kind
// drives protocol affinity: CWMP (TR-069) lives almost exclusively on
// residential access networks, web protocols concentrate on hosting.
type PrefixKind uint8

// Prefix kinds, roughly following the access/hosting/enterprise/
// infrastructure split of the visible Internet.
const (
	KindResidential PrefixKind = iota
	KindHosting
	KindEnterprise
	KindInfrastructure
	numKinds
)

// String returns the kind name.
func (k PrefixKind) String() string {
	switch k {
	case KindResidential:
		return "residential"
	case KindHosting:
		return "hosting"
	case KindEnterprise:
		return "enterprise"
	case KindInfrastructure:
		return "infrastructure"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Host is one responsive service instance: an address plus the churn-
// relevant attributes. LIdx indexes the containing l-prefix in
// Universe.Less; Dynamic marks hosts behind dynamic address assignment
// (they re-roll their address every churn step).
type Host struct {
	Addr    netaddr.Addr
	LIdx    int32
	Dynamic bool
}

// Population is the set of hosts speaking one protocol.
type Population struct {
	Profile ProtocolProfile
	Hosts   []Host

	// cold indexes the l-prefixes that held no host of this protocol at
	// generation time, with cumulative sizes for space-uniform sampling.
	// Host churn prefers these "cold" prefixes as landing zones for
	// re-homed hosts: new deployments appear in previously-unused space,
	// which is what makes φ<1 selections decay at nearly the same rate
	// as φ=1 selections (paper Figure 6b vs 6a).
	cold    []int32
	coldCum []uint64
}

// Addresses returns the sorted, de-duplicated address set of the
// population — exactly what a full scan at this instant would report.
func (p *Population) Addresses() []netaddr.Addr {
	out := make([]netaddr.Addr, len(p.Hosts))
	for i, h := range p.Hosts {
		out[i] = h.Addr
	}
	census.SortAddrs(out)
	// De-duplicate: two hosts on one address answer as one.
	w := 0
	for i, a := range out {
		if i > 0 && out[w-1] == a {
			continue
		}
		out[w] = a
		w++
	}
	return out[:w]
}

// Universe is a synthetic announced Internet at one instant.
type Universe struct {
	Cfg Config

	Table *rib.Table    // announced prefixes with synthetic origins
	Less  rib.Partition // l-prefix view (maximal announced prefixes)
	More  rib.Partition // deaggregated m-prefix view (Figure 2)

	Reserved  []netaddr.Prefix // never-allocated space (IANA special use)
	Allocated uint64           // size of the allocated space

	Kinds []PrefixKind // kind of Less.Prefix(i), parallel to Less

	// mChildren[i] lists the announced more-specific prefixes inside
	// Less.Prefix(i); empty for unparented l-prefixes.
	mChildren [][]netaddr.Prefix

	// lessCum[i] is the cumulative address count of Less prefixes 0..i-1,
	// enabling O(log n) space-uniform sampling.
	lessCum []uint64

	Pops map[string]*Population
}

// Protocols returns the population names in deterministic (config) order.
func (u *Universe) Protocols() []string {
	out := make([]string, 0, len(u.Cfg.Protocols))
	for _, p := range u.Cfg.Protocols {
		out = append(out, p.Name)
	}
	return out
}

// RandomAnnouncedAddr draws an address uniformly from the announced space.
func (u *Universe) RandomAnnouncedAddr(rng Rand) netaddr.Addr {
	target := uint64(rng.Int63n(int64(u.Less.AddressCount())))
	i := sort.Search(len(u.lessCum), func(i int) bool { return u.lessCum[i] > target })
	p := u.Less.Prefix(i)
	off := target
	if i > 0 {
		off -= u.lessCum[i-1]
	}
	return p.First() + netaddr.Addr(off)
}

// LPrefixOf returns the index of the l-prefix containing a.
func (u *Universe) LPrefixOf(a netaddr.Addr) (int, bool) { return u.Less.Find(a) }

// PlaceHostAddr draws an address for a host homed in l-prefix lidx,
// honoring the m-prefix clustering weight of the profile: with
// probability prof.MClusterWeight the host lands in one of the announced
// more-specifics of the prefix (if any), otherwise anywhere in the
// l-prefix.
func (u *Universe) PlaceHostAddr(rng Rand, lidx int, prof *ProtocolProfile) netaddr.Addr {
	lp := u.Less.Prefix(lidx)
	children := u.mChildren[lidx]
	if len(children) > 0 && rng.Float64() < prof.MClusterWeight {
		c := children[rng.Intn(len(children))]
		return RandomAddrIn(rng, c)
	}
	return RandomAddrIn(rng, lp)
}

// RandomAddrIn draws an address uniformly from p.
func RandomAddrIn(rng Rand, p netaddr.Prefix) netaddr.Addr {
	return p.First() + netaddr.Addr(uint64(rng.Int63())%p.NumAddresses())
}

// MChildren returns the announced more-specifics inside l-prefix lidx.
func (u *Universe) MChildren(lidx int) []netaddr.Prefix { return u.mChildren[lidx] }

// RandomColdAddr draws an address uniformly from the population's cold
// space (l-prefixes with no host at generation time) and returns it with
// its l-prefix index. ok is false when the population has no cold space;
// callers should fall back to RandomAnnouncedAddr.
func (u *Universe) RandomColdAddr(rng Rand, pop *Population) (netaddr.Addr, int, bool) {
	if len(pop.cold) == 0 {
		return 0, 0, false
	}
	total := pop.coldCum[len(pop.coldCum)-1]
	target := uint64(rng.Int63n(int64(total)))
	i := sort.Search(len(pop.coldCum), func(i int) bool { return pop.coldCum[i] > target })
	lidx := int(pop.cold[i])
	off := target
	if i > 0 {
		off -= pop.coldCum[i-1]
	}
	return u.Less.Prefix(lidx).First() + netaddr.Addr(off), lidx, true
}

// buildColdIndex records the zero-host l-prefixes of a population.
func (u *Universe) buildColdIndex(pop *Population) {
	counts := make([]int32, u.Less.Len())
	for _, h := range pop.Hosts {
		counts[h.LIdx]++
	}
	var cum uint64
	for i, c := range counts {
		if c != 0 {
			continue
		}
		pop.cold = append(pop.cold, int32(i))
		cum += u.Less.Prefix(i).NumAddresses()
		pop.coldCum = append(pop.coldCum, cum)
	}
}

func (u *Universe) buildIndexes() {
	u.lessCum = make([]uint64, u.Less.Len())
	var cum uint64
	for i := 0; i < u.Less.Len(); i++ {
		cum += u.Less.Prefix(i).NumAddresses()
		u.lessCum[i] = cum
	}
}
