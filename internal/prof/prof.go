// Package prof wires runtime/pprof file profiles into the commands, so
// hot-path work on the simulation pipeline is measured instead of
// guessed. Both helpers are no-ops on an empty path, letting commands
// pass flag values straight through.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns the stop
// function to defer. An empty path returns a no-op stop.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: creating cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: starting cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes an allocation profile to path (after a GC, so the
// numbers reflect live state plus cumulative allocation sites). An
// empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: creating mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("prof: writing mem profile: %w", err)
	}
	return nil
}
