package cluster

import (
	"math/rand"
	"testing"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

func TestRefineIsolatesDenseCore(t *testing.T) {
	// A /16 whose hosts all live in the first /24: refinement must carve
	// out small dense pieces around that /24.
	part, err := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/16")})
	if err != nil {
		t.Fatal(err)
	}
	var addrs []netaddr.Addr
	for i := 0; i < 200; i++ {
		addrs = append(addrs, pfx("10.0.0.0/24").First()+netaddr.Addr(i))
	}
	seed := census.NewSnapshot("ftp", 0, addrs)
	refined, err := Refine(seed, part, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Len() <= 1 {
		t.Fatalf("refinement did not split: %v", refined.Prefixes())
	}
	if refined.AddressCount() != part.AddressCount() {
		t.Fatalf("refined space %d != original %d", refined.AddressCount(), part.AddressCount())
	}
	// The dense /24 must survive as its own piece (or finer).
	idx, ok := refined.Find(pfx("10.0.0.0/24").First())
	if !ok {
		t.Fatal("dense core not covered")
	}
	if got := refined.Prefix(idx); got.Bits() < 24 {
		t.Errorf("dense core still buried in %v", got)
	}
	// Selection on the refined universe needs less space for the same φ.
	selOrig, err := core.Select(seed, part, core.Options{Phi: 1})
	if err != nil {
		t.Fatal(err)
	}
	selRef, err := core.Select(seed, refined, core.Options{Phi: 1})
	if err != nil {
		t.Fatal(err)
	}
	if selRef.Space >= selOrig.Space {
		t.Errorf("refined selection space %d not below original %d", selRef.Space, selOrig.Space)
	}
}

func TestRefineLeavesUniformPrefixesAlone(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/20")})
	rng := rand.New(rand.NewSource(1))
	var addrs []netaddr.Addr
	for i := 0; i < 2000; i++ {
		addrs = append(addrs, pfx("10.0.0.0/20").First()+netaddr.Addr(rng.Intn(1<<12)))
	}
	seed := census.NewSnapshot("ftp", 0, addrs)
	refined, err := Refine(seed, part, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform fill: contrast never reaches 4x, so no splitting.
	if refined.Len() != 1 {
		t.Errorf("uniform prefix was split into %d pieces", refined.Len())
	}
}

func TestRefineRespectsBounds(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/22")})
	// All hosts on one address: maximal concentration.
	var addrs []netaddr.Addr
	for i := 0; i < 100; i++ {
		addrs = append(addrs, pfx("10.0.0.0/22").First())
	}
	seed := census.NewSnapshot("ftp", 0, addrs)
	refined, err := Refine(seed, part, Options{MaxLen: 24})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range refined.Prefixes() {
		if p.Bits() > 24 {
			t.Errorf("piece %v beyond MaxLen", p)
		}
	}
	// MinHosts blocks splitting of sparse prefixes.
	sparse := census.NewSnapshot("ftp", 0, addrs[:1])
	refined, err = Refine(sparse, part, Options{MinHosts: 16})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Len() != 1 {
		t.Errorf("sparse prefix split despite MinHosts: %d pieces", refined.Len())
	}
	if _, err := Refine(seed, part, Options{MaxLen: 40}); err == nil {
		t.Error("MaxLen 40 accepted")
	}
}

func TestRefinePreservesSpaceProperty(t *testing.T) {
	// Random universes: refined partition covers exactly the same space,
	// is disjoint (NewPartition validates), and never loses a host.
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 20; iter++ {
		var ps []netaddr.Prefix
		base := netaddr.Addr(uint32(iter) << 24)
		for i := 0; i < 8; i++ {
			ps = append(ps, netaddr.MustPrefixFrom(base+netaddr.Addr(i<<16), 16))
		}
		part, err := rib.NewPartition(ps)
		if err != nil {
			t.Fatal(err)
		}
		var addrs []netaddr.Addr
		for i := 0; i < 3000; i++ {
			p := ps[rng.Intn(len(ps))]
			// Concentrate half the population in the first /22 of each prefix.
			off := rng.Intn(1 << 16)
			if rng.Intn(2) == 0 {
				off = rng.Intn(1 << 10)
			}
			addrs = append(addrs, p.First()+netaddr.Addr(off))
		}
		seed := census.NewSnapshot("x", 0, addrs)
		refined, err := Refine(seed, part, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if refined.AddressCount() != part.AddressCount() {
			t.Fatalf("iter %d: space changed", iter)
		}
		wasIn := seed.CountIn(part)
		nowIn := seed.CountIn(refined)
		if wasIn != nowIn {
			t.Fatalf("iter %d: hosts in partition changed %d -> %d", iter, wasIn, nowIn)
		}
	}
}

func BenchmarkRefine(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var ps []netaddr.Prefix
	for i := 0; i < 256; i++ {
		ps = append(ps, netaddr.MustPrefixFrom(netaddr.Addr(uint32(i)<<16), 16))
	}
	part, err := rib.NewPartition(ps)
	if err != nil {
		b.Fatal(err)
	}
	var addrs []netaddr.Addr
	for i := 0; i < 100000; i++ {
		p := ps[rng.Intn(len(ps))]
		addrs = append(addrs, p.First()+netaddr.Addr(rng.Intn(1<<12)))
	}
	seed := census.NewSnapshot("bench", 0, addrs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Refine(seed, part, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
