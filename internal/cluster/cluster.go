// Package cluster implements the refinement the paper's §5 proposes as
// future work: applying the block-level utilization clustering of Cai &
// Heidemann ("Understanding Block-level Address Usage in the Visible
// Internet") to network prefixes.
//
// Given a seed scan, Refine recursively bisects prefixes whose host mass
// is strongly concentrated in one half, isolating dense cores from
// sparse remainders. The refined partition covers exactly the same
// address space but lets the density-ranked selection reach the same φ
// with less space — at the usual cost: finer prefixes age faster (the
// l- vs m-prefix trade-off of Figure 6, one step further).
package cluster

import (
	"fmt"
	"sort"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// Options bounds the refinement.
type Options struct {
	// MaxLen caps the refined prefix length (default 24, the paper's
	// "prefixes longer than /24 are negligible").
	MaxLen int
	// MinHosts stops splitting prefixes with fewer observed hosts
	// (default 16): tiny populations carry no reliable density signal.
	MinHosts int
	// Contrast is the density ratio between the denser and the sparser
	// half that justifies a split (default 4). A half with zero hosts
	// always satisfies it.
	Contrast float64
}

func (o *Options) fill() {
	if o.MaxLen == 0 {
		o.MaxLen = 24
	}
	if o.MinHosts == 0 {
		o.MinHosts = 16
	}
	if o.Contrast == 0 {
		o.Contrast = 4
	}
}

// Refine splits the partition's prefixes around the host concentrations
// observed in the seed snapshot and returns the refined partition. The
// result covers exactly the same address space.
func Refine(seed *census.Snapshot, part rib.Partition, opts Options) (rib.Partition, error) {
	opts.fill()
	if opts.MaxLen < 0 || opts.MaxLen > 32 {
		return rib.Partition{}, fmt.Errorf("cluster: bad MaxLen %d", opts.MaxLen)
	}
	addrs := seed.Addrs // sorted
	var out []netaddr.Prefix

	var split func(p netaddr.Prefix, lo, hi int)
	split = func(p netaddr.Prefix, lo, hi int) {
		count := hi - lo
		if p.Bits() >= opts.MaxLen || count < opts.MinHosts {
			out = append(out, p)
			return
		}
		left, right, ok := p.Split()
		if !ok {
			out = append(out, p)
			return
		}
		// Partition the address range at the half boundary.
		mid := lo + sort.Search(hi-lo, func(i int) bool {
			return addrs[lo+i] >= right.First()
		})
		lc, rc := mid-lo, hi-mid
		// Both halves populated and balanced: no concentration signal.
		if lc > 0 && rc > 0 {
			denser, sparser := float64(lc), float64(rc)
			if sparser > denser {
				denser, sparser = sparser, denser
			}
			if denser < opts.Contrast*sparser {
				out = append(out, p)
				return
			}
		}
		split(left, lo, mid)
		split(right, mid, hi)
	}

	for i := 0; i < part.Len(); i++ {
		p := part.Prefix(i)
		lo := sort.Search(len(addrs), func(j int) bool { return addrs[j] >= p.First() })
		hi := lo + sort.Search(len(addrs)-lo, func(j int) bool { return addrs[lo+j] > p.Last() })
		split(p, lo, hi)
	}
	netaddr.SortPrefixes(out)
	refined, err := rib.NewPartition(out)
	if err != nil {
		// Cannot happen: splitting disjoint prefixes keeps them disjoint.
		return rib.Partition{}, fmt.Errorf("cluster: internal: %w", err)
	}
	return refined, nil
}
