package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/stats"
	"github.com/tass-scan/tass/internal/strategy"
)

// SectionStats regenerates the §3.4 bullet statistics for FTP on
// l-prefixes: prefix counts and space shares at φ=1 and φ=0.95, the
// unresponsive remainder, and the dense-head concentration ("the first
// 20 K prefixes hold 64 % of the hosts in 2 % of the space"). The head
// size scales with the universe so reduced worlds stay comparable: the
// paper's 20 K is ≈13 % of its ≈150 K responsive FTP prefixes.
func SectionStats(w *World) (Result, error) {
	seed := w.Series["ftp"].At(0)
	part := w.U.Less

	sel1, err := w.Select(seed, part, core.Options{Phi: 1})
	if err != nil {
		return Result{}, err
	}
	sel95, err := w.Select(seed, part, core.Options{Phi: 0.95})
	if err != nil {
		return Result{}, err
	}
	head := int(0.133*float64(len(sel1.Ranked)) + 0.5)
	if head < 1 {
		head = 1
	}
	selHead, err := w.Select(seed, part, core.Options{Phi: 1, MaxPrefixes: head})
	if err != nil {
		return Result{}, err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "FTP, l-prefixes, month 0 (paper §3.4):\n")
	fmt.Fprintf(&sb, "  φ=1.00: %d prefixes, %.1f%% of announced space (paper: ~134 K, 76.2%%)\n",
		sel1.K, 100*sel1.SpaceShare)
	fmt.Fprintf(&sb, "  φ=0.95: %d prefixes, %.1f%% of announced space (paper: ~105 K, 27.3%%)\n",
		sel95.K, 100*sel95.SpaceShare)
	fmt.Fprintf(&sb, "  unresponsive space: %.1f%% (paper: 23.8%%)\n",
		100*(1-sel1.SpaceShare))
	fmt.Fprintf(&sb, "  dense head (top %d ranked prefixes, ρ≥%.3g): %.0f%% of hosts in %.1f%% of space (paper: 20 K prefixes, 64%%, 2%%)\n",
		head, selHead.Ranked[selHead.K-1].Density,
		100*selHead.HostCoverage, 100*selHead.SpaceShare)
	fmt.Fprintf(&sb, "  full-scan efficiency: %.0f probes/host; dense-head efficiency: %.0f probes/host\n",
		float64(part.AddressCount())/float64(sel1.SeedHosts), selHead.Efficiency())
	return Result{
		ID:    "section34",
		Title: "§3.4 prefix-density statistics (FTP, l-prefixes)",
		Text:  sb.String(),
	}, nil
}

// Headline regenerates the paper's §1/§4.2 headline result: FTP m-prefix
// TASS keeps ≈98 % of hosts after six months while scanning 57.4 % of the
// announced space, and 92.3 % at φ=0.95 for 20.6 %.
func Headline(w *World) (Result, error) {
	var tb stats.Table
	tb.AddRow("φ", "space share", "hitrate m6", "paper space", "paper m6")
	paper := map[float64][2]float64{
		1:    {0.574, 0.98},
		0.95: {0.206, 0.923},
	}
	series := w.Series["ftp"]
	last := w.Cfg.Months
	for _, phi := range []float64{1, 0.95} {
		s := w.TASS(w.U.More, core.Options{Phi: phi}, "")
		ev, err := strategy.Evaluate(s, series, w.U.Less.AddressCount())
		if err != nil {
			return Result{}, err
		}
		tb.AddRow(fmt.Sprintf("%.2f", phi),
			fmt.Sprintf("%.3f", ev.CostShare),
			fmt.Sprintf("%.3f", ev.Hitrate[last]),
			fmt.Sprintf("%.3f", paper[phi][0]),
			fmt.Sprintf("%.3f", paper[phi][1]))
	}
	return Result{
		ID:    "headline",
		Title: "FTP m-prefix TASS after six months (paper §1/§4.2)",
		Text:  tb.String(),
	}, nil
}

// Efficiency regenerates the paper's efficiency claim ("periodical TASS
// scans are 1.25 to 10 times more efficient"): probes per found host for
// the full scan versus TASS at each φ.
func Efficiency(w *World) (Result, error) {
	var tb stats.Table
	tb.AddRow("protocol", "φ", "probes/host full", "probes/host tass", "gain")
	for _, proto := range w.Protocols() {
		series := w.Series[proto]
		seed := series.At(0)
		fullEff := float64(w.U.Less.AddressCount()) / float64(seed.Hosts())
		for _, phi := range []float64{1, 0.99, 0.95} {
			sel, err := w.Select(seed, w.U.More, core.Options{Phi: phi})
			if err != nil {
				return Result{}, err
			}
			// Average the plan's yield over the whole period: probes are
			// constant, found hosts decay slowly.
			found := 0.0
			for m := 0; m <= w.Cfg.Months; m++ {
				found += float64(series.At(m).CountIn(sel.Partition()))
			}
			found /= float64(w.Cfg.Months + 1)
			eff := float64(sel.Space) / found
			tb.AddRow(proto, fmt.Sprintf("%.2f", phi),
				fmt.Sprintf("%.0f", fullEff),
				fmt.Sprintf("%.0f", eff),
				fmt.Sprintf("%.2fx", fullEff/eff))
		}
	}
	return Result{
		ID:    "efficiency",
		Title: "scan efficiency: full scan vs TASS (m-prefixes)",
		Text:  tb.String(),
	}, nil
}

// AblationRanking compares density ranking against two alternatives the
// paper implicitly rejects — ranking by absolute host count and random
// prefix order — by the space share each needs to reach φ=0.95.
func AblationRanking(w *World) (Result, error) {
	var tb stats.Table
	tb.AddRow("protocol", "density", "host-count", "random")
	for _, proto := range w.Protocols() {
		seed := w.Series[proto].At(0)
		ranked := w.Rank(seed, w.U.Less)
		total := 0
		for i := range ranked {
			total += ranked[i].Hosts
		}
		spaceFor := func(order []int) float64 {
			covered := 0
			var space uint64
			for _, idx := range order {
				covered += ranked[idx].Hosts
				space += ranked[idx].Prefix.NumAddresses()
				if float64(covered) > 0.95*float64(total) {
					break
				}
			}
			return float64(space) / float64(w.U.Less.AddressCount())
		}
		identity := make([]int, len(ranked))
		byHosts := make([]int, len(ranked))
		random := make([]int, len(ranked))
		for i := range ranked {
			identity[i], byHosts[i], random[i] = i, i, i
		}
		sort.Slice(byHosts, func(a, b int) bool {
			return ranked[byHosts[a]].Hosts > ranked[byHosts[b]].Hosts
		})
		rng := rand.New(rand.NewSource(w.Cfg.Seed + 7))
		rng.Shuffle(len(random), func(i, j int) { random[i], random[j] = random[j], random[i] })
		tb.AddRow(proto,
			fmt.Sprintf("%.3f", spaceFor(identity)),
			fmt.Sprintf("%.3f", spaceFor(byHosts)),
			fmt.Sprintf("%.3f", spaceFor(random)))
	}
	return Result{
		ID:    "ablation-ranking",
		Title: "space share needed for φ=0.95 under different prefix orderings (l-prefixes)",
		Text:  tb.String(),
	}, nil
}

// runners maps experiment IDs to their functions, in report order.
var runners = []struct {
	id  string
	run func(*World) (Result, error)
}{
	{"figure1", Figure1},
	{"figure2", func(*World) (Result, error) { return Figure2() }},
	{"table1", Table1},
	{"figure3", Figure3},
	{"figure4", Figure4},
	{"figure5", Figure5},
	{"figure6", Figure6},
	{"section34", SectionStats},
	{"headline", Headline},
	{"efficiency", Efficiency},
	{"ablation-ranking", AblationRanking},
	{"clustering", Clustering},
	{"reseed", Reseed},
	{"scanloop", ScanLoop},
	{"scanpolite", ScanPolite},
	{"vulnestimate", VulnEstimate},
	{"missed", Missed},
	{"v6select", V6Select},
}

// IDs lists all experiment IDs in report order.
func IDs() []string {
	out := make([]string, len(runners))
	for i, r := range runners {
		out[i] = r.id
	}
	return out
}

// Run executes one experiment by ID.
func Run(w *World, id string) (Result, error) {
	run, ok := lookup(id)
	if !ok {
		return Result{}, fmt.Errorf("experiment: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return run(w)
}

// All executes every experiment serially in report order. It is the
// reference path RunAll is golden-tested against.
func All(w *World) ([]Result, error) {
	out := make([]Result, 0, len(runners))
	for _, r := range runners {
		res, err := r.run(w)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", r.id, err)
		}
		out = append(out, res)
	}
	return out, nil
}
