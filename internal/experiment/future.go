package experiment

import (
	"fmt"
	"math"
	"sort"

	"github.com/tass-scan/tass/internal/cluster"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
	"github.com/tass-scan/tass/internal/stats"
	"github.com/tass-scan/tass/internal/strategy"
)

// Clustering evaluates the paper's §5 proposal of applying Cai &
// Heidemann's utilization clustering to prefixes: the l-prefix universe
// is refined around the host concentrations observed in the seed scan —
// no BGP more-specific information used — and compared on both axes the
// paper cares about: space at φ=0.95 (month 0) and hitrate at month 6.
// The interesting outcome is that scan-driven clustering rediscovers
// much of the efficiency the announced m-prefix structure provides,
// with the same aging trade-off.
func Clustering(w *World) (Result, error) {
	var tb stats.Table
	tb.AddRow("protocol", "universe", "pieces", "space@.95", "hitrate m6")
	last := w.Cfg.Months
	for _, proto := range w.Protocols() {
		series := w.Series[proto]
		seed := series.At(0)
		refined, err := cluster.Refine(seed, w.U.Less, cluster.Options{Contrast: 2.5, MinHosts: 12})
		if err != nil {
			return Result{}, err
		}
		for _, uni := range []struct {
			label string
			part  rib.Partition
		}{
			{"l", w.U.Less},
			{"m", w.U.More},
			{"clustered", refined},
		} {
			sel, err := w.Select(seed, uni.part, core.Options{Phi: 0.95})
			if err != nil {
				return Result{}, err
			}
			tb.AddRow(proto, uni.label,
				fmt.Sprintf("%d", uni.part.Len()),
				fmt.Sprintf("%.3f", sel.SpaceShare),
				fmt.Sprintf("%.3f", sel.Hitrate(series.At(last))))
		}
	}
	return Result{
		ID:    "clustering",
		Title: "§5 future work: Cai-Heidemann clustering of l-prefixes from scan data (φ=0.95)",
		Text:  tb.String(),
	}, nil
}

// Reseed quantifies the paper's open Δt parameter: how often must the
// full seed scan be repeated? The campaign simulator reruns TASS with
// reseed intervals from monthly to never and reports the cost/accuracy
// frontier.
func Reseed(w *World) (Result, error) {
	var tb stats.Table
	tb.AddRow("Δt (months)", "reseeds", "mean cost share", "mean hitrate", "min hitrate")
	series := w.Series["ftp"]
	for _, dt := range []int{1, 2, 3, 6, 0} {
		ev, err := strategy.EvaluateCampaign(strategy.Campaign{
			Universe:    w.U.More,
			Opts:        core.Options{Phi: 0.95},
			ReseedEvery: dt,
			// On an incrementally built world the campaign reseeds off
			// the delta-repaired ranking; the rows are byte-identical
			// either way (golden tested).
			Incremental: w.Cfg.Incremental,
			Deltas:      w.Deltas["ftp"],
		}, series, w.U.Less.AddressCount())
		if err != nil {
			return Result{}, err
		}
		min, _, _ := stats.MinMax(ev.Hitrate)
		label := fmt.Sprintf("%d", dt)
		if dt == 0 {
			label = "never"
		}
		tb.AddRow(label,
			fmt.Sprintf("%d", ev.Reseeds),
			fmt.Sprintf("%.3f", ev.MeanCostShare),
			fmt.Sprintf("%.3f", ev.MeanHitrate),
			fmt.Sprintf("%.3f", min))
	}
	return Result{
		ID:    "reseed",
		Title: "§3.1 step 5: choosing the reseed interval Δt (FTP, m-prefixes, φ=0.95)",
		Text:  tb.String(),
	}, nil
}

// VulnEstimate addresses the paper's §5 security-incident question: can
// a cheap low-φ TASS scan estimate the size of a vulnerable population?
// A synthetic vulnerability marks a fraction of month-0 hosts; the
// estimator extrapolates the count observed inside the selection by the
// selection's seed host coverage. Two placements are tested: uniform
// (every host equally likely vulnerable) and density-biased (hosts in
// sparse prefixes more likely vulnerable — the adversarial case the
// paper worries about).
func VulnEstimate(w *World) (Result, error) {
	var tb stats.Table
	tb.AddRow("placement", "φ", "space", "true", "estimate", "error")
	seed := w.Series["http"].At(0)
	ranked := w.Rank(seed, w.U.More)

	// Deterministic vulnerability marking per address.
	marked := func(a uint64, bias float64, density float64) bool {
		h := a*0x9E3779B97F4A7C15 + 12345
		h ^= h >> 33
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 33
		p := 0.10 // base vulnerability rate
		if bias > 0 {
			// Sparse prefixes (low density) carry more vulnerable hosts:
			// old unmaintained boxes live in the long tail.
			p *= 1 + bias*math.Exp(-density*1000)
		}
		return float64(h%1000000)/1000000 < p
	}

	for _, placement := range []struct {
		label string
		bias  float64
	}{
		{"uniform", 0},
		{"sparse-biased", 3},
	} {
		// Count true vulnerable population and per-prefix vulnerable counts.
		trueVuln := 0
		vulnByPrefix := make(map[int]int, len(ranked))
		for ri := range ranked {
			st := &ranked[ri]
			// Iterate this prefix's hosts via the snapshot slice.
			lo, hi := addrRange(seed.Addrs, st.Prefix)
			for _, a := range seed.Addrs[lo:hi] {
				if marked(uint64(a), placement.bias, st.Density) {
					trueVuln++
					vulnByPrefix[ri]++
				}
			}
		}
		for _, phi := range []float64{0.5, 0.95} {
			sel, err := w.Select(seed, w.U.More, core.Options{Phi: phi})
			if err != nil {
				return Result{}, err
			}
			observed := 0
			for ri := 0; ri < sel.K; ri++ {
				observed += vulnByPrefix[ri]
			}
			estimate := float64(observed) / sel.HostCoverage
			errPct := 100 * (estimate - float64(trueVuln)) / float64(trueVuln)
			tb.AddRow(placement.label,
				fmt.Sprintf("%.2f", phi),
				fmt.Sprintf("%.3f", sel.SpaceShare),
				fmt.Sprintf("%d", trueVuln),
				fmt.Sprintf("%.0f", estimate),
				fmt.Sprintf("%+.1f%%", errPct))
		}
	}
	return Result{
		ID:    "vulnestimate",
		Title: "§5 future work: estimating vulnerable populations from partial scans (HTTP, m-prefixes)",
		Text:  tb.String(),
	}, nil
}

// addrRange returns the index range [lo, hi) of the sorted addresses
// that lie inside p.
func addrRange(addrs []netaddr.Addr, p netaddr.Prefix) (lo, hi int) {
	lo = sort.Search(len(addrs), func(i int) bool { return addrs[i] >= p.First() })
	hi = lo + sort.Search(len(addrs)-lo, func(i int) bool { return addrs[lo+i] > p.Last() })
	return lo, hi
}

// Missed answers the paper's §1/§5 question "how are the missed hosts
// distributed in comparison to the other hosts?": at month 6 with a
// φ=0.95 month-0 selection, the missed hosts are broken down by the
// kind of l-prefix they live in and by prefix length.
func Missed(w *World) (Result, error) {
	var out string
	series := w.Series["ftp"]
	seed := series.At(0)
	sel, err := w.Select(seed, w.U.More, core.Options{Phi: 0.95})
	if err != nil {
		return Result{}, err
	}
	last := series.At(w.Cfg.Months)
	part := sel.Partition()

	type bucket struct{ found, missed int }
	byKind := make(map[string]*bucket)
	byLen := make(map[int]*bucket)
	for _, a := range last.Addrs {
		_, in := part.Find(a)
		li, ok := w.U.Less.Find(a)
		kind := "unannounced"
		plen := -1
		if ok {
			kind = w.U.Kinds[li].String()
			plen = w.U.Less.Prefix(li).Bits()
		}
		kb := byKind[kind]
		if kb == nil {
			kb = &bucket{}
			byKind[kind] = kb
		}
		lb := byLen[plen]
		if lb == nil {
			lb = &bucket{}
			byLen[plen] = lb
		}
		if in {
			kb.found++
			lb.found++
		} else {
			kb.missed++
			lb.missed++
		}
	}

	var tb stats.Table
	tb.AddRow("l-prefix kind", "found", "missed", "missed share")
	for _, kind := range []string{"residential", "hosting", "enterprise", "infrastructure", "unannounced"} {
		b := byKind[kind]
		if b == nil {
			continue
		}
		total := b.found + b.missed
		tb.AddRow(kind, fmt.Sprintf("%d", b.found), fmt.Sprintf("%d", b.missed),
			fmt.Sprintf("%.3f", float64(b.missed)/float64(total)))
	}
	out += tb.String() + "\n"

	var tl stats.Table
	tl.AddRow("l-prefix len", "found", "missed", "missed share")
	for l := 8; l <= 24; l++ {
		b := byLen[l]
		if b == nil {
			continue
		}
		total := b.found + b.missed
		tl.AddRow(fmt.Sprintf("/%d", l), fmt.Sprintf("%d", b.found), fmt.Sprintf("%d", b.missed),
			fmt.Sprintf("%.3f", float64(b.missed)/float64(total)))
	}
	out += tl.String()
	return Result{
		ID:    "missed",
		Title: "§1/§5 future work: where the missed hosts live (FTP, m-prefixes, φ=0.95, month 6)",
		Text:  out,
	}, nil
}
