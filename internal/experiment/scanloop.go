package experiment

import (
	"context"
	"fmt"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/churn"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/scan"
	"github.com/tass-scan/tass/internal/stats"
	"github.com/tass-scan/tass/internal/topo"
)

// scanLoopLoss is the probe loss rate of the simulated live scans: a few
// percent of live hosts don't answer a single SYN, the paper's reason
// real seed scans undercount (§2).
const scanLoopLoss = 0.03

// scanLoopRate paces the simulated scanner. It engages the token-bucket
// limiter on every probe without stretching the experiment's wall clock
// noticeably (the full mini-universe scan fits in well under a second).
const scanLoopRate = 10e6

// scanLoopWorld builds the dedicated mini-universe the scan-in-the-loop
// scenario probes. Unlike every other experiment it cannot share the
// World: a live scan touches every announced address, so its testbed
// must stay small no matter what scale the world was built at (at paper
// scale a simulated full scan would mean 2.8 B probe calls). The
// universe is a single /14 (256 K addresses) with the FTP profile scaled
// so the host density matches the paper's, churned over the world's
// month count; everything derives deterministically from the world seed.
func scanLoopWorld(w *World) (*topo.Universe, *census.Series, error) {
	tcfg := topo.DefaultConfig(w.Cfg.Seed + 77)
	tcfg.Allocated = []netaddr.Prefix{netaddr.MustParsePrefix("100.64.0.0/14")}
	tcfg.Protocols = topo.DefaultProfiles(0.0025)[:1] // ftp, ≈3 K hosts
	// Force announcements to split below the allocated block so the
	// universe has ranking structure (cf. topo.SmallConfig).
	for l := 0; l <= 15; l++ {
		tcfg.AnnounceProb[l] = 0
		tcfg.HoleProb[l] = 0
	}
	tcfg.Workers = w.Cfg.workers()
	u, err := topo.Generate(tcfg)
	if err != nil {
		return nil, nil, fmt.Errorf("scanloop universe: %w", err)
	}
	series := churn.RunSim(u, w.Cfg.Seed+78, w.Cfg.Months, churn.RunConfig{Workers: w.Cfg.workers()})
	return u, series[u.Protocols()[0]], nil
}

// ScanLoop closes the paper's loop (§3.1 step 5) with the scan engine in
// it: instead of seeding TASS from an oracle census snapshot, cycle 0
// runs a rate-limited, lossy simulated scan of the whole testbed
// universe, the selection is computed from whatever that scan found, and
// every following cycle re-scans the tightened plan against the churned
// ground truth and re-selects from its own results. The oracle column
// seeds one selection from the true month-0 snapshot (what every other
// experiment does) and keeps it fixed — the comparison quantifies how
// much selection quality a real, imperfect seed scan costs.
func ScanLoop(w *World) (Result, error) {
	u, truth, err := scanLoopWorld(w)
	if err != nil {
		return Result{}, err
	}
	universe := u.More
	opts := core.Options{Phi: 0.95}

	// The oracle arm: one selection from true month-0, never re-seeded.
	oracle, err := core.SelectCached(truth.At(0), universe, opts, w.Cfg.workers(), w.Cache)
	if err != nil {
		return Result{}, fmt.Errorf("scanloop oracle selection: %w", err)
	}

	// The live arm: scan → census → select, one cycle per month.
	c := &scan.Campaign{
		Universe: universe,
		ProberAt: func(cycle int) scan.Prober {
			// The prober seed advances per cycle: loss must be drawn
			// independently per scan, not pinned to the address — a fixed
			// seed would make the same 3% of hosts invisible in every
			// cycle instead of modeling transient packet loss.
			p, err := scan.NewSimProber(truth.At(cycle).Addrs, scanLoopLoss, w.Cfg.Seed+900+int64(cycle))
			if err != nil {
				panic(err) // loss rate is a package constant in [0,1)
			}
			return p
		},
		Opts:     opts,
		Rate:     scanLoopRate,
		Burst:    4096,
		Workers:  w.Cfg.workers(),
		Seed:     w.Cfg.Seed + 901,
		Cache:    w.Cache,
		Protocol: "ftp",
	}
	cycles, err := c.Run(context.Background(), truth.Months())
	if err != nil {
		return Result{}, fmt.Errorf("scanloop campaign: %w", err)
	}

	var tb stats.Table
	tb.AddRow("cycle", "plan", "probes", "found", "hitrate", "space", "oracle hr", "oracle space")
	for _, cy := range cycles {
		month := truth.At(cy.Index)
		planLabel := "sel"
		if cy.Index == 0 {
			planLabel = "full"
		}
		tb.AddRow(fmt.Sprintf("%d (%s)", cy.Index, planLabel),
			fmt.Sprintf("%d pfx", cy.Plan.Len()),
			fmt.Sprintf("%d", cy.Report.Probed),
			fmt.Sprintf("%d", cy.Snapshot.Hosts()),
			fmt.Sprintf("%.3f", cy.Hitrate(month)),
			fmt.Sprintf("%.3f", cy.CostShare(universe)),
			fmt.Sprintf("%.3f", oracle.Hitrate(month)),
			fmt.Sprintf("%.3f", float64(oracle.Space)/float64(universe.AddressCount())))
	}
	return Result{
		ID: "scanloop",
		Title: fmt.Sprintf("scan in the loop: feedback campaign vs oracle-seeded selection (ftp testbed, φ=%.2f, %.0f%% loss)",
			opts.Phi, 100*scanLoopLoss),
		Text: tb.String(),
	}, nil
}
