package experiment

import (
	"context"
	"testing"
)

// TestCountCacheGoldenEquality is the memoization contract: for seeds
// 1-3, every experiment run with the shared count cache produces
// byte-identical Results to the uncached path. The two runs share one
// world (universe and series are built once), differing only in the
// cache, so any divergence is the cache's fault.
func TestCountCacheGoldenEquality(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		w, err := BuildWorld(SmallConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if w.Cache == nil {
			t.Fatalf("seed %d: BuildWorld did not attach a count cache", seed)
		}
		wPlain := *w
		wPlain.Cache = nil

		golden, err := All(&wPlain)
		if err != nil {
			t.Fatalf("seed %d: uncached All: %v", seed, err)
		}
		got, err := RunAll(context.Background(), w)
		if err != nil {
			t.Fatalf("seed %d: cached RunAll: %v", seed, err)
		}
		if len(got) != len(golden) {
			t.Fatalf("seed %d: %d results, want %d", seed, len(got), len(golden))
		}
		for i := range golden {
			if got[i].ID != golden[i].ID {
				t.Errorf("seed %d result %d: id %q, want %q", seed, i, got[i].ID, golden[i].ID)
			}
			if got[i].Text != golden[i].Text {
				t.Errorf("seed %d %s: cached output differs from uncached:\n--- uncached\n%s\n--- cached\n%s",
					seed, golden[i].ID, golden[i].Text, got[i].Text)
			}
		}

		// The cache must actually have been exercised: the figures rank
		// the same (seed, universe) pairs repeatedly.
		if hits, misses := w.Cache.Stats(); misses == 0 || hits == 0 {
			t.Errorf("seed %d: cache saw %d hits / %d misses; expected traffic on both", seed, hits, misses)
		}
	}
}

// TestNoCountCacheConfig checks the config switch actually disables the
// cache.
func TestNoCountCacheConfig(t *testing.T) {
	cfg := SmallConfig(1)
	cfg.NoCountCache = true
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cache != nil {
		t.Fatal("NoCountCache world still has a cache")
	}
	// And the nil cache must run fine end to end.
	if _, err := RunAll(context.Background(), w, "table1", "section34"); err != nil {
		t.Fatal(err)
	}
}
