// Package experiment regenerates every table and figure of the TASS paper
// on the synthetic universe. Each experiment returns a Result holding the
// rendered rows/series the paper reports; cmd/experiments prints them and
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// The package is deliberately deterministic: a (seed, scale, months)
// triple fully determines every number in every Result.
package experiment

import (
	"fmt"
	"runtime"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/churn"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/topo"
)

// Config scopes an experiment run.
type Config struct {
	// Seed drives universe generation (Seed) and churn (Seed+1).
	Seed int64
	// Months is the number of churn steps; the paper observes months
	// 0..6 (7 snapshots).
	Months int
	// Scale selects the universe size: 1.0 is paper scale (≈3.7 B
	// allocated addresses, ≈7 M hosts), smaller values shrink the
	// allocated space and host counts proportionally for tests and
	// benchmarks.
	Scale float64
	// Workers bounds the goroutines used for world building and for
	// RunAll's experiment pool. Zero means GOMAXPROCS. Any worker count
	// produces byte-identical results: every parallel path is backed by
	// per-protocol RNG streams or pure read-only fan-out.
	Workers int
}

// workers resolves the effective worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultConfig is the paper-scale setup: full address space, 7 monthly
// snapshots.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Months: 6, Scale: 1.0}
}

// SmallConfig is a fast, reduced-scale setup for tests and benches.
func SmallConfig(seed int64) Config {
	return Config{Seed: seed, Months: 6, Scale: 0.01}
}

// World bundles the generated universe and its ground-truth snapshot
// series; all experiments share one World.
type World struct {
	Cfg    Config
	U      *topo.Universe
	Series map[string]*census.Series
}

// BuildWorld generates the universe and simulates the monthly series.
func BuildWorld(cfg Config) (*World, error) {
	if cfg.Months <= 0 {
		cfg.Months = 6
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	var tcfg topo.Config
	if cfg.Scale >= 1.0 {
		tcfg = topo.DefaultConfig(cfg.Seed)
	} else {
		// Shrink the allocated space to keep densities comparable:
		// pick a slice of /8 blocks matching the scale.
		tcfg = topo.DefaultConfig(cfg.Seed)
		blocks := int(cfg.Scale * 220)
		if blocks < 1 {
			blocks = 1
		}
		var alloc []netaddr.Prefix
		for b := 0; b < blocks; b++ {
			alloc = append(alloc, netaddr.MustPrefixFrom(
				netaddr.AddrFrom4(byte(20+b), 0, 0, 0), 8))
		}
		tcfg.Allocated = alloc
		tcfg.Protocols = topo.DefaultProfiles(cfg.Scale)
		// Suppress whole-/8 announcements that would dominate a small
		// universe (see topo.SmallConfig).
		for l := 0; l <= 12; l++ {
			tcfg.AnnounceProb[l] = 0
			tcfg.HoleProb[l] = 0
		}
	}
	tcfg.Workers = cfg.workers()
	u, err := topo.Generate(tcfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: generating universe: %w", err)
	}
	series := churn.RunWorkers(u, cfg.Seed+1, cfg.Months, cfg.workers())
	return &World{Cfg: cfg, U: u, Series: series}, nil
}

// Protocols returns the protocol names in canonical order.
func (w *World) Protocols() []string { return w.U.Protocols() }

// Result is one regenerated table or figure.
type Result struct {
	// ID matches the experiment index in DESIGN.md ("table1", "figure5").
	ID string
	// Title describes the experiment.
	Title string
	// Text is the rendered rows/series.
	Text string
}

// String renders the result with its header.
func (r Result) String() string {
	return fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Text)
}
