// Package experiment regenerates every table and figure of the TASS paper
// on the synthetic universe. Each experiment returns a Result holding the
// rendered rows/series the paper reports; cmd/experiments prints them and
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// The package is deliberately deterministic: a (seed, scale, months)
// triple fully determines every number in every Result.
package experiment

import (
	"fmt"
	"runtime"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/churn"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
	"github.com/tass-scan/tass/internal/strategy"
	"github.com/tass-scan/tass/internal/topo"
)

// Config scopes an experiment run.
type Config struct {
	// Seed drives universe generation (Seed) and churn (Seed+1).
	Seed int64
	// Months is the number of churn steps; the paper observes months
	// 0..6 (7 snapshots).
	Months int
	// Scale selects the universe size: 1.0 is paper scale (≈3.7 B
	// allocated addresses, ≈7 M hosts), smaller values shrink the
	// allocated space and host counts proportionally for tests and
	// benchmarks.
	Scale float64
	// Workers bounds the goroutines used for world building and for
	// RunAll's experiment pool. Zero means GOMAXPROCS. Any worker count
	// produces byte-identical results: every parallel path is backed by
	// per-protocol RNG streams or pure read-only fan-out.
	Workers int
	// NoCountCache disables the shared per-(snapshot, partition) count
	// cache. The cache never changes a digit of any result (golden
	// tested); the switch exists for benchmarking the uncached path and
	// for the -countcache=false CLI flag.
	NoCountCache bool
	// PrebuildSets builds every snapshot's block-indexed Set() view
	// eagerly during churn extraction instead of lazily on first count.
	// Results are byte-identical either way; prebuilding front-loads
	// the encode pass into the parallel world build, which pays off at
	// paper scale where most snapshots are counted through the index.
	PrebuildSets bool
	// Incremental builds the monthly series through the churn-native
	// delta pipeline (every post-seed snapshot derived from its
	// predecessor by ApplyDelta) and keeps the per-month deltas on the
	// World, so campaign experiments can reseed incrementally. Every
	// result is byte-identical either way (golden tested).
	Incremental bool
	// CountCacheCap overrides the count cache's LRU entry cap: 0 keeps
	// the default bound, negative makes it unbounded. Ignored when
	// NoCountCache is set.
	CountCacheCap int
}

// workers resolves the effective worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultConfig is the paper-scale setup: full address space, 7 monthly
// snapshots.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Months: 6, Scale: 1.0}
}

// SmallConfig is a fast, reduced-scale setup for tests and benches.
func SmallConfig(seed int64) Config {
	return Config{Seed: seed, Months: 6, Scale: 0.01}
}

// World bundles the generated universe and its ground-truth snapshot
// series; all experiments share one World.
type World struct {
	Cfg    Config
	U      *topo.Universe
	Series map[string]*census.Series

	// Deltas holds the native per-month churn deltas when the world was
	// built incrementally: Deltas[proto][m] carries month m -> m+1.
	// Nil on the full-rebuild path.
	Deltas map[string][]*census.Delta

	// Cache memoizes per-(snapshot, partition) host counts across every
	// experiment sharing the world: the phi grid and the figures all
	// rank the same seeds over the same two universes, so each pair is
	// counted exactly once per run. Nil when Cfg.NoCountCache is set —
	// a nil cache computes every request, so call sites need no checks.
	Cache *census.CountCache
}

// Rank ranks the seed over part, sharing the world's count cache and
// worker budget.
func (w *World) Rank(seed *census.Snapshot, part rib.Partition) []core.PrefixStat {
	return core.RankCached(seed, part, w.Cfg.workers(), w.Cache)
}

// Select runs a TASS selection, sharing the world's count cache and
// worker budget.
func (w *World) Select(seed *census.Snapshot, part rib.Partition, opts core.Options) (*core.Selection, error) {
	return core.SelectCached(seed, part, opts, w.Cfg.workers(), w.Cache)
}

// SelectPhis selects a φ grid, sharing the world's count cache and
// worker budget.
func (w *World) SelectPhis(seed *census.Snapshot, part rib.Partition, phis []float64) ([]*core.Selection, error) {
	return core.SelectPhisCached(seed, part, phis, w.Cfg.workers(), w.Cache)
}

// TASS builds the TASS strategy wired to the world's cache and workers.
func (w *World) TASS(part rib.Partition, opts core.Options, label string) strategy.TASS {
	return strategy.TASS{Universe: part, Opts: opts, Label: label, Workers: w.Cfg.workers(), Cache: w.Cache}
}

// BuildWorld generates the universe and simulates the monthly series.
func BuildWorld(cfg Config) (*World, error) {
	if cfg.Months <= 0 {
		cfg.Months = 6
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	var tcfg topo.Config
	if cfg.Scale >= 1.0 {
		tcfg = topo.DefaultConfig(cfg.Seed)
	} else {
		// Shrink the allocated space to keep densities comparable:
		// pick a slice of /8 blocks matching the scale.
		tcfg = topo.DefaultConfig(cfg.Seed)
		blocks := int(cfg.Scale * 220)
		if blocks < 1 {
			blocks = 1
		}
		var alloc []netaddr.Prefix
		for b := 0; b < blocks; b++ {
			alloc = append(alloc, netaddr.MustPrefixFrom(
				netaddr.AddrFrom4(byte(20+b), 0, 0, 0), 8))
		}
		tcfg.Allocated = alloc
		tcfg.Protocols = topo.DefaultProfiles(cfg.Scale)
		// Suppress whole-/8 announcements that would dominate a small
		// universe (see topo.SmallConfig).
		for l := 0; l <= 12; l++ {
			tcfg.AnnounceProb[l] = 0
			tcfg.HoleProb[l] = 0
		}
	}
	tcfg.Workers = cfg.workers()
	u, err := topo.Generate(tcfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: generating universe: %w", err)
	}
	rcfg := churn.RunConfig{
		Workers:      cfg.workers(),
		PrebuildSets: cfg.PrebuildSets,
		Incremental:  cfg.Incremental,
	}
	w := &World{Cfg: cfg, U: u}
	if cfg.Incremental {
		w.Series, w.Deltas = churn.RunSimDeltas(u, cfg.Seed+1, cfg.Months, rcfg)
	} else {
		w.Series = churn.RunSim(u, cfg.Seed+1, cfg.Months, rcfg)
	}
	if !cfg.NoCountCache {
		switch {
		case cfg.CountCacheCap > 0:
			w.Cache = census.NewCountCacheCap(cfg.CountCacheCap)
		case cfg.CountCacheCap < 0:
			w.Cache = census.NewCountCacheCap(0)
		default:
			w.Cache = census.NewCountCache()
		}
	}
	return w, nil
}

// NewRanker seeds an incremental ranker for seed over part, sharing
// the world's count cache and worker budget. Advance it with the
// world's Deltas (or Snapshot.Diff) and it selects byte-identically to
// w.Select on the evolved snapshot.
func (w *World) NewRanker(seed *census.Snapshot, part rib.Partition) (*core.Ranker, error) {
	return core.NewRanker(seed, part, w.Cfg.workers(), w.Cache)
}

// Protocols returns the protocol names in canonical order.
func (w *World) Protocols() []string { return w.U.Protocols() }

// Result is one regenerated table or figure.
type Result struct {
	// ID matches the experiment index in DESIGN.md ("table1", "figure5").
	ID string
	// Title describes the experiment.
	Title string
	// Text is the rendered rows/series.
	Text string
}

// String renders the result with its header.
func (r Result) String() string {
	return fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Text)
}
