package experiment

import (
	"context"
	"testing"
)

// buildWorldWorkers builds a SmallConfig world with the given worker
// count.
func buildWorldWorkers(t *testing.T, seed int64, workers int) *World {
	t.Helper()
	cfg := SmallConfig(seed)
	cfg.Workers = workers
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// assertSameSeries fails unless the two worlds carry byte-identical
// snapshot series.
func assertSameSeries(t *testing.T, a, b *World) {
	t.Helper()
	for _, proto := range a.Protocols() {
		sa, sb := a.Series[proto], b.Series[proto]
		if sa.Months() != sb.Months() {
			t.Fatalf("%s: %d vs %d months", proto, sa.Months(), sb.Months())
		}
		for m := 0; m < sa.Months(); m++ {
			na, nb := sa.At(m), sb.At(m)
			if len(na.Addrs) != len(nb.Addrs) {
				t.Fatalf("%s month %d: %d vs %d hosts", proto, m, len(na.Addrs), len(nb.Addrs))
			}
			for i := range na.Addrs {
				if na.Addrs[i] != nb.Addrs[i] {
					t.Fatalf("%s month %d addr %d: %v vs %v", proto, m, i, na.Addrs[i], nb.Addrs[i])
				}
			}
		}
	}
}

// TestRunAllGoldenEquality is the determinism contract of the parallel
// engine: for seeds 1-3, a world built and run with Workers=8 produces
// byte-identical Results to the sequential Workers=1 path.
func TestRunAllGoldenEquality(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		wSeq := buildWorldWorkers(t, seed, 1)
		wPar := buildWorldWorkers(t, seed, 8)
		assertSameSeries(t, wSeq, wPar)

		golden, err := All(wSeq)
		if err != nil {
			t.Fatalf("seed %d: sequential All: %v", seed, err)
		}
		got, err := RunAll(context.Background(), wPar)
		if err != nil {
			t.Fatalf("seed %d: RunAll: %v", seed, err)
		}
		if len(got) != len(golden) {
			t.Fatalf("seed %d: %d results, want %d", seed, len(got), len(golden))
		}
		for i := range golden {
			if got[i].ID != golden[i].ID {
				t.Errorf("seed %d result %d: id %q, want %q", seed, i, got[i].ID, golden[i].ID)
			}
			if got[i].Text != golden[i].Text {
				t.Errorf("seed %d %s: parallel output differs from sequential:\n--- sequential\n%s\n--- parallel\n%s",
					seed, golden[i].ID, golden[i].Text, got[i].Text)
			}
		}
	}
}

func TestRunAllSubsetKeepsOrder(t *testing.T) {
	w := world(t)
	ids := []string{"figure5", "table1", "figure2"}
	results, err := RunAll(context.Background(), w, ids...)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ids) {
		t.Fatalf("%d results, want %d", len(results), len(ids))
	}
	for i, id := range ids {
		if results[i].ID != id {
			t.Errorf("result %d: id %q, want %q", i, results[i].ID, id)
		}
	}
}

func TestStreamAllEmitsInOrder(t *testing.T) {
	w := world(t)
	var seen []string
	err := StreamAll(context.Background(), w, func(res Result) {
		seen = append(seen, res.ID)
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := IDs()
	if len(seen) != len(ids) {
		t.Fatalf("emitted %d results, want %d", len(seen), len(ids))
	}
	for i, id := range ids {
		if seen[i] != id {
			t.Errorf("emit %d: %q, want %q", i, seen[i], id)
		}
	}
}

func TestRunAllUnknownID(t *testing.T) {
	w := world(t)
	if _, err := RunAll(context.Background(), w, "table1", "nope"); err == nil {
		t.Error("unknown id must fail before running anything")
	}
}

func TestRunAllCanceledContext(t *testing.T) {
	w := world(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAll(ctx, w); err != context.Canceled {
		t.Errorf("RunAll on canceled context: %v, want context.Canceled", err)
	}
}
