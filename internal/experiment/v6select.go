package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/sel6"
	"github.com/tass-scan/tass/internal/stats"
)

// V6Select exercises the paper's closing argument end to end: TASS as
// the blueprint for IPv6, where brute-forcing the space is impossible
// and prefix selection is the only viable scoping. A synthetic
// announced table (allocations of mixed length plus covered
// more-specifics) is collapsed to its maximal prefixes, a
// hitlist-style seed set with skewed per-prefix density is drawn
// deterministically from the world seed, and the generic selection
// engine is run over the φ grid. The observable is the selection
// footprint in SpaceBits — for IPv6 the address count itself is
// astronomical, so the probe cost only makes sense as an exponent.
func V6Select(w *World) (Result, error) {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0x763673656c))

	// Announced table: 64 allocations of /32 to /44; every fourth slot
	// also announces two more-specifics one nibble longer, which the
	// l-prefix collapse must absorb into their covering allocation.
	var announced []netaddr.Prefix6
	for i := 0; i < 64; i++ {
		base := netaddr.Addr6{Hi: uint64(0x2001_0000+i*7) << 32}
		bits := 32 + 4*rng.Intn(4)
		p, err := netaddr.Prefix6From(base, bits)
		if err != nil {
			return Result{}, err
		}
		announced = append(announced, p)
		if i%4 == 0 {
			for j := 1; j <= 2; j++ {
				ms, err := netaddr.Prefix6From(netaddr.Addr6{Hi: base.Hi | uint64(j)<<(64-bits-8)}, bits+8)
				if err != nil {
					return Result{}, err
				}
				announced = append(announced, ms)
			}
		}
	}
	u, err := sel6.NewUniverse6FromAnnounced(announced)
	if err != nil {
		return Result{}, err
	}

	// Hitlist seeds: Zipf-ish host counts across the allocations, with
	// addresses concentrated in the top of each prefix and low
	// interface IDs — the structure passive sources and hitlists
	// actually show. Density now mixes host count and prefix length,
	// so the ranking is not simply the host-count order.
	order := rng.Perm(u.Len())
	seen := make(map[netaddr.Addr6]bool)
	var seeds []netaddr.Addr6
	for rank, idx := range order {
		hosts := 512 >> uint(rank/8) // 512, 256, ..., 4 per 8-prefix tier
		if hosts == 0 {
			hosts = 1
		}
		base := u.Prefix(idx).Addr()
		for h := 0; h < hosts; h++ {
			a := netaddr.Addr6{
				Hi: base.Hi | uint64(rng.Intn(1<<12)),
				Lo: uint64(1 + rng.Intn(1<<10)),
			}
			if !seen[a] {
				seen[a] = true
				seeds = append(seeds, a)
			}
		}
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].Compare(seeds[j]) < 0 })

	// The universe footprint as an exponent, accumulated the same way
	// the selection's SpaceBits is.
	uSpace := 0.0
	for i := 0; i < u.Len(); i++ {
		uSpace += math.Ldexp(1, 128-u.Prefix(i).Bits())
	}
	universeBits := math.Log2(uSpace)

	var tb stats.Table
	tb.AddRow("φ", "K", "coverage", "space bits", "universe bits")
	for _, phi := range Phis {
		sel, err := sel6.Select6(seeds, u, phi)
		if err != nil {
			return Result{}, err
		}
		tb.AddRow(
			fmt.Sprintf("%.2f", phi),
			fmt.Sprintf("%d", sel.K),
			fmt.Sprintf("%.3f", sel.HostCoverage),
			fmt.Sprintf("%.2f", sel.SpaceBits),
			fmt.Sprintf("%.2f", universeBits),
		)
	}
	return Result{
		ID:    "v6select",
		Title: "IPv6 TASS selection over an announced-prefix universe (hitlist seeds)",
		Text:  tb.String(),
	}, nil
}
