package experiment

import (
	"context"
	"testing"

	"github.com/tass-scan/tass/internal/core"
)

// TestIncrementalWorldGoldenEquality is the end-to-end acceptance
// property of the delta pipeline: a world built incrementally (native
// churn deltas, snapshots derived by ApplyDelta, reseed campaigns
// driven by a repaired ranking) regenerates every experiment
// byte-identically to the full-recompute world, for seeds 1–3 across
// worker counts 1/2/8.
func TestIncrementalWorldGoldenEquality(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		golden := buildWorldWorkers(t, seed, 1)
		ref, err := All(golden)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, workers := range []int{1, 2, 8} {
			cfg := SmallConfig(seed)
			cfg.Workers = workers
			cfg.Incremental = true
			w, err := BuildWorld(cfg)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			assertSameSeries(t, golden, w)
			if w.Deltas == nil {
				t.Fatalf("seed %d workers %d: incremental world has no deltas", seed, workers)
			}

			// Spot-check the delta-driven selection path against the
			// full recompute on the evolved months.
			for _, proto := range w.Protocols() {
				s := w.Series[proto]
				r, err := w.NewRanker(s.At(0), w.U.More)
				if err != nil {
					t.Fatal(err)
				}
				for m := 1; m < s.Months(); m++ {
					if err := r.Apply(w.Deltas[proto][m-1]); err != nil {
						t.Fatalf("seed %d %s month %d: %v", seed, proto, m, err)
					}
				}
				inc, err := r.Select(core.Options{Phi: 0.95})
				if err != nil {
					t.Fatal(err)
				}
				full, err := w.Select(s.At(s.Months()-1), w.U.More, core.Options{Phi: 0.95})
				if err != nil {
					t.Fatal(err)
				}
				if inc.K != full.K || inc.SeedHosts != full.SeedHosts || inc.Space != full.Space ||
					inc.HostCoverage != full.HostCoverage {
					t.Fatalf("seed %d %s: incremental selection diverged after %d deltas",
						seed, proto, s.Months()-1)
				}
			}

			got, err := RunAll(context.Background(), w)
			if err != nil {
				t.Fatalf("seed %d workers %d: RunAll: %v", seed, workers, err)
			}
			if len(got) != len(ref) {
				t.Fatalf("seed %d workers %d: %d results, want %d", seed, workers, len(got), len(ref))
			}
			for i := range ref {
				if got[i].ID != ref[i].ID || got[i].Text != ref[i].Text {
					t.Errorf("seed %d workers %d %s: incremental world output differs:\n--- full\n%s\n--- incremental\n%s",
						seed, workers, ref[i].ID, ref[i].Text, got[i].Text)
				}
			}
		}
	}
}
