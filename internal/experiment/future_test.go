package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func TestClusteringReducesSpace(t *testing.T) {
	w := world(t)
	res, err := Clustering(w)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseTable(t, res.Text)
	if len(rows) != 12 { // 4 protocols × 3 universes
		t.Fatalf("rows: %d", len(rows))
	}
	// Per protocol: scan-driven clustering of the l-universe must beat
	// the plain l-universe on space at φ=0.95 (it carves out the dense
	// cores), and its month-6 hitrate must not beat l's (finer prefixes
	// cannot age better).
	for i := 0; i < len(rows); i += 3 {
		l, m, c := rows[i], rows[i+1], rows[i+2]
		if l[1] != "l" || m[1] != "m" || c[1] != "clustered" {
			t.Fatalf("unexpected universe order: %v %v %v", l[1], m[1], c[1])
		}
		lSpace, _ := strconv.ParseFloat(l[3], 64)
		cSpace, _ := strconv.ParseFloat(c[3], 64)
		if cSpace >= lSpace {
			t.Errorf("%s: clustering did not reduce space: l=%v clustered=%v", l[0], lSpace, cSpace)
		}
		lHit, _ := strconv.ParseFloat(l[4], 64)
		cHit, _ := strconv.ParseFloat(c[4], 64)
		if cHit > lHit+0.005 {
			t.Errorf("%s: clustered hitrate %v should not beat l-universe %v", l[0], cHit, lHit)
		}
	}
}

func TestReseedFrontier(t *testing.T) {
	w := world(t)
	res, err := Reseed(w)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseTable(t, res.Text)
	if len(rows) != 5 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Monthly reseeding = all full scans: cost 1, hitrate 1.
	monthly := rows[0]
	if monthly[2] != "1.000" || monthly[3] != "1.000" {
		t.Errorf("monthly reseed row: %v", monthly)
	}
	// Cost decreases (weakly) as Δt grows; "never" is cheapest.
	var prev float64 = 2
	for _, row := range rows {
		c, _ := strconv.ParseFloat(row[2], 64)
		if c > prev+1e-9 {
			t.Errorf("cost share not decreasing with Δt: %v", res.Text)
		}
		prev = c
	}
	// Even "never" keeps min hitrate high over 6 months (the paper's
	// "at least 6 months" claim).
	never := rows[len(rows)-1]
	min, _ := strconv.ParseFloat(never[4], 64)
	if min < 0.85 {
		t.Errorf("never-reseed min hitrate %v", min)
	}
}

func TestVulnEstimate(t *testing.T) {
	w := world(t)
	res, err := VulnEstimate(w)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseTable(t, res.Text)
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, row := range rows {
		errPct, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(row[5], "+"), "%"), 64)
		if err != nil {
			t.Fatalf("error cell %q", row[5])
		}
		phi := row[1]
		placement := row[0]
		switch {
		case placement == "uniform":
			// Uniform placement: extrapolation must be nearly unbiased.
			if errPct < -10 || errPct > 10 {
				t.Errorf("uniform φ=%s estimate off by %v%%", phi, errPct)
			}
		case placement == "sparse-biased":
			// Adversarial placement: the estimate must UNDERcount (the
			// missed sparse prefixes carry extra vulnerable hosts) — the
			// effect the paper warns about.
			if errPct > 5 {
				t.Errorf("sparse-biased φ=%s should undercount, got %+v%%", phi, errPct)
			}
		}
	}
}

func TestMissedDistribution(t *testing.T) {
	w := world(t)
	res, err := Missed(w)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "residential") || !strings.Contains(res.Text, "/24") {
		t.Fatalf("missing breakdowns:\n%s", res.Text)
	}
	// Sanity: overall missed share at month 6 with φ=0.95 should be
	// modest (5-15%): parse the kind table rows.
	rows := parseTable(t, strings.Split(res.Text, "\n\n")[0])
	totalFound, totalMissed := 0, 0
	for _, row := range rows {
		f, _ := strconv.Atoi(row[len(row)-3])
		m, _ := strconv.Atoi(row[len(row)-2])
		totalFound += f
		totalMissed += m
	}
	share := float64(totalMissed) / float64(totalFound+totalMissed)
	if share < 0.02 || share > 0.3 {
		t.Errorf("overall missed share %v implausible", share)
	}
}

func TestNewExperimentsRegistered(t *testing.T) {
	ids := IDs()
	for _, want := range []string{"clustering", "reseed", "vulnestimate", "missed"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q not registered", want)
		}
	}
}
