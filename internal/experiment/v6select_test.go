package experiment

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestV6SelectGolden pins the seed-1 report byte for byte: the
// experiment must stay deterministic in its universe construction, its
// hitlist draw and the generic selection engine underneath. Run with
// -update to regenerate testdata/v6select_seed1.golden after an
// intentional change.
func TestV6SelectGolden(t *testing.T) {
	r, err := V6Select(&World{Cfg: Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "v6select" {
		t.Fatalf("ID = %q", r.ID)
	}
	path := filepath.Join("testdata", "v6select_seed1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(r.Text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Text != string(want) {
		t.Errorf("seed-1 report changed (rerun with -update if intended):\n--- want ---\n%s--- got ---\n%s", want, r.Text)
	}
	// Re-run: byte-identical (no hidden global state).
	again, err := V6Select(&World{Cfg: Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if again.Text != r.Text {
		t.Error("repeated run differs")
	}
}

func TestV6SelectSeedSensitivity(t *testing.T) {
	a, err := V6Select(&World{Cfg: Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := V6Select(&World{Cfg: Config{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Text == b.Text {
		t.Error("different world seeds produced identical v6 reports")
	}
	// Structure is stable across seeds: the φ=1 row always covers all
	// hosts over the same 64-allocation universe.
	if !strings.Contains(b.Text, "1.00  64  1.000") {
		t.Errorf("seed-2 report lost the φ=1 row:\n%s", b.Text)
	}
}
