package experiment

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// RunAll executes the given experiments (all of them when ids is empty)
// on a bounded worker pool sized by w.Cfg.Workers (0 means GOMAXPROCS).
// Results come back in the requested order and are byte-identical to
// running the same ids serially: every experiment is a pure function of
// the (read-only) World, so scheduling cannot change a single digit.
//
// Unknown ids fail before any experiment runs. On failure or
// cancellation no new experiments start, in-flight ones finish, and the
// returned slice still holds the longest completed prefix of the
// requested order (so callers can emit partial output); the error is
// the first failure in id order, or ctx.Err() on cancellation.
func RunAll(ctx context.Context, w *World, ids ...string) ([]Result, error) {
	var out []Result
	err := StreamAll(ctx, w, func(res Result) { out = append(out, res) }, ids...)
	return out, err
}

// StreamAll is RunAll with incremental delivery: emit is called with
// each Result as soon as it and every earlier result in the requested
// order have completed, so consumers see output stream in report order
// while later experiments are still running. emit is never called
// concurrently.
func StreamAll(ctx context.Context, w *World, emit func(Result), ids ...string) error {
	if len(ids) == 0 {
		ids = IDs()
	}
	runs := make([]func(*World) (Result, error), len(ids))
	for i, id := range ids {
		run, ok := lookup(id)
		if !ok {
			return fmt.Errorf("experiment: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
		}
		runs[i] = run
	}

	budget := w.Cfg.workers()
	workers := budget
	if workers > len(ids) {
		workers = len(ids)
	}
	// Keep Workers a global bound: experiments that fan out internally
	// (Table1's φ grid, the sharded counting walk) read Cfg.Workers, so
	// with `workers` experiments in flight each gets an equal share of
	// the budget. The share rounds up so a non-dividing budget is not
	// stranded (transient overshoot < workers goroutines, never the
	// W² of nesting the full budget). Results are identical at any
	// split — only scheduling changes.
	wInner := *w
	wInner.Cfg.Workers = (budget + workers - 1) / workers

	results := make([]Result, len(ids))
	errs := make([]error, len(ids))
	var failed atomic.Bool

	// Completed results are emitted as the contiguous done-prefix of
	// the requested order advances.
	var emitMu sync.Mutex
	done := make([]bool, len(ids))
	next := 0
	complete := func(i int) {
		emitMu.Lock()
		defer emitMu.Unlock()
		done[i] = true
		for next < len(ids) && done[next] {
			if emit != nil {
				emit(results[next])
			}
			next++
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := runs[i](&wInner)
				if err != nil {
					errs[i] = fmt.Errorf("experiment %s: %w", ids[i], err)
					failed.Store(true)
					continue
				}
				results[i] = res
				complete(i)
			}
		}()
	}
	canceled := false
dispatch:
	for i := range runs {
		if ctx.Err() != nil {
			canceled = true
			break
		}
		if failed.Load() {
			break
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			canceled = true
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if canceled {
		return ctx.Err()
	}
	return nil
}

// lookup resolves an experiment id to its runner.
func lookup(id string) (func(*World) (Result, error), bool) {
	for _, r := range runners {
		if r.id == id {
			return r.run, true
		}
	}
	return nil, false
}
