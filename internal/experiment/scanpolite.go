package experiment

import (
	"context"
	"fmt"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
	"github.com/tass-scan/tass/internal/scan"
	"github.com/tass-scan/tass/internal/stats"
)

// asErrorProber wraps a prober and fails every probe into one origin AS
// — the deterministic stand-in for a network answering a scan with a
// timeout storm (the "please stop" signal adaptive backoff reacts to).
type asErrorProber struct {
	inner    scan.Prober
	universe rib.Partition
	origins  []uint32
	as       uint32
}

func (p *asErrorProber) Probe(ctx context.Context, addr netaddr.Addr) (scan.Result, error) {
	if i, ok := p.universe.Find(addr); ok && p.origins[i] == p.as {
		return scan.Result{Addr: addr}, fmt.Errorf("scan: AS%d unreachable", p.as)
	}
	return p.inner.Probe(ctx, addr)
}

// ScanPolite exercises the good-citizen layer on the scanloop testbed:
// full scans of the mini-universe under per-AS probe budgets (how much
// coverage does a hard per-network cap cost?) and under adaptive backoff
// against an AS that errors on every probe (how fast does the engine
// throttle itself?). Workers is pinned to 1: which addresses fall beyond
// a budget — and where inside an error streak a halving lands — depends
// on probe order, so the table is only deterministic single-threaded.
// The per-AS rate is as high as the global one, so the politeness
// machinery engages on every probe without stretching wall-clock time.
func ScanPolite(w *World) (Result, error) {
	u, truth, err := scanLoopWorld(w)
	if err != nil {
		return Result{}, err
	}
	universe := u.More
	origins := u.Table.OriginsOf(universe)
	month0 := truth.At(0)

	newProber := func() scan.Prober {
		p, err := scan.NewSimProber(month0.Addrs, scanLoopLoss, w.Cfg.Seed+950)
		if err != nil {
			panic(err) // loss rate is a package constant in [0,1)
		}
		return p
	}
	run := func(prober scan.Prober, pol scan.Politeness) (*scan.Scanner, *scan.Report, error) {
		pol.Origins = origins
		s, err := scan.New(scan.Config{
			Targets:    universe,
			Prober:     prober,
			Rate:       scanLoopRate,
			Burst:      4096,
			Workers:    1,
			Seed:       w.Cfg.Seed + 951,
			Politeness: pol,
		})
		if err != nil {
			return nil, nil, err
		}
		rep, err := s.Run(context.Background())
		return s, rep, err
	}

	var tb stats.Table
	tb.AddRow("arm", "probed", "denied", "ASes capped", "found", "found share", "backoffs")

	// Budget arms: unlimited, then two per-AS caps. The unlimited arm's
	// found count is the denominator of the coverage-cost column.
	_, base, err := run(newProber(), scan.Politeness{Footprint: true})
	if err != nil {
		return Result{}, fmt.Errorf("scanpolite baseline: %w", err)
	}
	baseFound := len(base.Responsive)
	share := func(found int) float64 {
		if baseFound == 0 {
			return 0
		}
		return float64(found) / float64(baseFound)
	}
	tb.AddRow("no budget", fmt.Sprintf("%d", base.Probed), "0", "0",
		fmt.Sprintf("%d", baseFound), "1.000", "-")
	for _, budget := range []uint64{8192, 2048} {
		_, rep, err := run(newProber(), scan.Politeness{ASBudget: budget})
		if err != nil {
			return Result{}, fmt.Errorf("scanpolite budget %d: %w", budget, err)
		}
		capped := 0
		for _, st := range rep.PerAS {
			if st.BudgetDenied > 0 {
				capped++
			}
		}
		tb.AddRow(fmt.Sprintf("budget %d/AS", budget),
			fmt.Sprintf("%d", rep.Probed),
			fmt.Sprintf("%d", rep.BudgetDenied),
			fmt.Sprintf("%d/%d", capped, len(rep.PerAS)),
			fmt.Sprintf("%d", len(rep.Responsive)),
			fmt.Sprintf("%.3f", share(len(rep.Responsive))),
			"-")
	}

	// Backoff arm: the heaviest AS errors on every probe; its bucket
	// rate should be driven to the floor while every other AS scans at
	// full speed.
	flakyAS := heaviestAS(universe, origins)
	flaky := &asErrorProber{inner: newProber(), universe: universe, origins: origins, as: flakyAS}
	s, rep, err := run(flaky, scan.Politeness{
		ASRate:  scanLoopRate,
		ASBurst: 4096,
		Backoff: scan.BackoffConfig{Threshold: 8},
	})
	if err != nil {
		return Result{}, fmt.Errorf("scanpolite backoff: %w", err)
	}
	var backoffs uint64
	for _, st := range rep.PerAS {
		backoffs += st.Backoffs
	}
	rateShare := 0.0
	if r, ok := s.Policy().ASRateOf(flakyAS); ok {
		rateShare = r / scanLoopRate
	}
	tb.AddRow(fmt.Sprintf("backoff (AS%d errors)", flakyAS),
		fmt.Sprintf("%d", rep.Probed),
		"0",
		fmt.Sprintf("rate %.4fx", rateShare),
		fmt.Sprintf("%d", len(rep.Responsive)),
		fmt.Sprintf("%.3f", share(len(rep.Responsive))),
		fmt.Sprintf("%d (%d errors)", backoffs, rep.Errors))

	return Result{
		ID: "scanpolite",
		Title: fmt.Sprintf("good-citizen hardening: per-AS budgets and adaptive backoff (ftp testbed, %.0f%% loss, backoff threshold 8)",
			100*scanLoopLoss),
		Text: tb.String(),
	}, nil
}

// heaviestAS returns the origin AS owning the most addresses of the
// universe — the most visible victim for the backoff demonstration.
func heaviestAS(universe rib.Partition, origins []uint32) uint32 {
	space := make(map[uint32]uint64)
	for i := 0; i < universe.Len(); i++ {
		space[origins[i]] += universe.Prefix(i).NumAddresses()
	}
	var best uint32
	var bestSpace uint64
	for as, sp := range space {
		if sp > bestSpace || (sp == bestSpace && as < best) {
			best, bestSpace = as, sp
		}
	}
	return best
}
