package experiment

import (
	"fmt"
	"strings"

	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
	"github.com/tass-scan/tass/internal/stats"
	"github.com/tass-scan/tass/internal/strategy"
	"github.com/tass-scan/tass/internal/trie"
)

// Phis are the host-coverage targets of the paper's Table 1.
var Phis = []float64{1, 0.99, 0.95, 0.7, 0.5}

// Table1 regenerates the paper's Table 1: address-space coverage of the
// TASS selection at each φ, per protocol, for the l-prefix and m-prefix
// universes.
func Table1(w *World) (Result, error) {
	var tb stats.Table
	tb.AddRow(append([]string{"prefixes", "φ"}, w.Protocols()...)...)
	for _, uni := range []struct {
		label string
		part  rib.Partition
	}{
		{"less", w.U.Less},
		{"more", w.U.More},
	} {
		// One ranking per (universe, protocol), the φ grid selected
		// concurrently from it.
		byProto := make(map[string][]*core.Selection, len(w.Protocols()))
		for _, proto := range w.Protocols() {
			seed := w.Series[proto].At(0)
			sels, err := w.SelectPhis(seed, uni.part, Phis)
			if err != nil {
				return Result{}, fmt.Errorf("table1 %s/%s: %w", uni.label, proto, err)
			}
			byProto[proto] = sels
		}
		for pi, phi := range Phis {
			row := []string{uni.label, fmt.Sprintf("%.2f", phi)}
			for _, proto := range w.Protocols() {
				row = append(row, fmt.Sprintf("%.3f", byProto[proto][pi].SpaceShare))
			}
			tb.AddRow(row...)
		}
	}
	return Result{
		ID:    "table1",
		Title: "IPv4 address space coverage per φ (less/more specific prefixes)",
		Text:  tb.String(),
	}, nil
}

// Figure1 regenerates the scanning-strategy scoping funnel: /0 space,
// IANA-allocated space, BGP-announced space, and hitlist sizes.
func Figure1(w *World) (Result, error) {
	var tb stats.Table
	tb.AddRow("scope", "addresses", "share of /0")
	space := float64(uint64(1) << 32)
	row := func(label string, n uint64) {
		tb.AddRow(label, fmt.Sprintf("%d", n), fmt.Sprintf("%.3f", float64(n)/space))
	}
	row("IANA /0", 1<<32)
	row("allocated", w.U.Allocated)
	row("announced (BGP)", w.U.Less.AddressCount())
	for _, proto := range w.Protocols() {
		row("hitlist "+proto, uint64(w.Series[proto].At(0).Hosts()))
	}
	return Result{
		ID:    "figure1",
		Title: "scanning strategies and their scoping of the IPv4 space",
		Text:  tb.String(),
	}, nil
}

// Figure2 demonstrates the deaggregation of a less-specific prefix around
// an announced more-specific (the paper's /8 + /12 illustration).
func Figure2() (Result, error) {
	l := netaddr.MustParsePrefix("100.0.0.0/8")
	m := netaddr.MustParsePrefix("100.16.0.0/12")
	pieces := trie.Deaggregate([]netaddr.Prefix{l, m})
	var sb strings.Builder
	fmt.Fprintf(&sb, "announced: %v (l-prefix), %v (m-prefix)\n", l, m)
	fmt.Fprintf(&sb, "deaggregated partition (%d pieces):\n", len(pieces))
	var total uint64
	for _, p := range pieces {
		marker := ""
		if p == m {
			marker = "  <- announced m-prefix, kept intact"
		}
		fmt.Fprintf(&sb, "  %-18v /%d-sized%s\n", p, p.Bits(), marker)
		total += p.NumAddresses()
	}
	fmt.Fprintf(&sb, "partition covers %d addresses (= the /8: %v)\n",
		total, total == l.NumAddresses())
	return Result{
		ID:    "figure2",
		Title: "l-prefix decomposition around its m-prefix (minimal partition)",
		Text:  sb.String(),
	}, nil
}

// Figure3 regenerates the host-count distribution over prefix lengths
// /8../24, per measurement month, for both prefix universes. The paper
// plots FTP and HTTPS; we emit every protocol and report min/mean/max
// across the months, which is what the figure's clustered bars convey.
func Figure3(w *World) (Result, error) {
	var sb strings.Builder
	for _, uni := range []struct {
		label string
		part  rib.Partition
	}{
		{"less", w.U.Less},
		{"more", w.U.More},
	} {
		// Index prefix lengths once per universe.
		lenOf := make([]int, uni.part.Len())
		for i := 0; i < uni.part.Len(); i++ {
			lenOf[i] = uni.part.Prefix(i).Bits()
		}
		for _, proto := range w.Protocols() {
			series := w.Series[proto]
			// perLen[bits] collects one value per month.
			perLen := make(map[int][]float64)
			for m := 0; m < series.Months(); m++ {
				counts, _ := series.At(m).CountByPrefix(uni.part)
				byLen := make(map[int]int)
				for i, c := range counts {
					byLen[lenOf[i]] += c
				}
				for bits, c := range byLen {
					perLen[bits] = append(perLen[bits], float64(c))
				}
			}
			var tb stats.Table
			tb.AddRow("len", "min", "mean", "max")
			for bits := 8; bits <= 24; bits++ {
				vals := perLen[bits]
				if len(vals) == 0 {
					continue
				}
				min, max, _ := stats.MinMax(vals)
				tb.AddRow(fmt.Sprintf("/%d", bits),
					fmt.Sprintf("%.0f", min),
					fmt.Sprintf("%.0f", stats.Mean(vals)),
					fmt.Sprintf("%.0f", max))
			}
			fmt.Fprintf(&sb, "[%s prefixes, %s] hosts per prefix length over %d measurements\n%s\n",
				uni.label, proto, series.Months(), tb.String())
		}
	}
	return Result{
		ID:    "figure3",
		Title: "host distribution over prefix lengths (7 monthly measurements)",
		Text:  sb.String(),
	}, nil
}

// Figure4 regenerates the ranked-density curves: density, cumulative host
// coverage and cumulative address-space coverage by prefix rank.
func Figure4(w *World) (Result, error) {
	var sb strings.Builder
	for _, uni := range []struct {
		label string
		part  rib.Partition
	}{
		{"less", w.U.Less},
		{"more", w.U.More},
	} {
		for _, proto := range []string{"ftp", "http"} {
			if _, ok := w.Series[proto]; !ok {
				continue
			}
			seed := w.Series[proto].At(0)
			ranked := w.Rank(seed, uni.part)
			curve := core.CoverageCurve(ranked, uni.part.AddressCount(), 16)
			var tb stats.Table
			tb.AddRow("rank", "density", "hostCov", "spaceCov")
			for _, pt := range curve {
				tb.AddRow(fmt.Sprintf("%d", pt.Rank),
					fmt.Sprintf("%.2e", pt.Density),
					fmt.Sprintf("%.3f", pt.HostCov),
					fmt.Sprintf("%.3f", pt.SpaceShare))
			}
			fmt.Fprintf(&sb, "[%s prefixes, %s] %d responsive prefixes\n%s\n",
				uni.label, proto, len(ranked), tb.String())
		}
	}
	return Result{
		ID:    "figure4",
		Title: "prefixes ranked by density: density, host coverage, space coverage",
		Text:  sb.String(),
	}, nil
}

// Figure5 regenerates the hitlist accuracy-over-time simulation.
func Figure5(w *World) (Result, error) {
	var tb stats.Table
	header := []string{"protocol"}
	for m := 0; m <= w.Cfg.Months; m++ {
		header = append(header, fmt.Sprintf("m%d", m))
	}
	tb.AddRow(header...)
	for _, proto := range w.Protocols() {
		ev, err := strategy.Evaluate(strategy.Hitlist{}, w.Series[proto], w.U.Less.AddressCount())
		if err != nil {
			return Result{}, fmt.Errorf("figure5 %s: %w", proto, err)
		}
		row := []string{proto}
		for _, h := range ev.Hitrate {
			row = append(row, fmt.Sprintf("%.3f", h))
		}
		tb.AddRow(row...)
	}
	return Result{
		ID:    "figure5",
		Title: "hitrate of IP address hitlists over time",
		Text:  tb.String(),
	}, nil
}

// Figure6 regenerates TASS accuracy over time at φ=1 (panel a) and
// φ=0.95 (panel b), for both prefix universes, plus the fitted monthly
// decay slope the paper quotes (−0.3 %/month l, up to −0.7 %/month m).
func Figure6(w *World) (Result, error) {
	var sb strings.Builder
	months := make([]float64, w.Cfg.Months+1)
	for i := range months {
		months[i] = float64(i)
	}
	for _, phi := range []float64{1, 0.95} {
		var tb stats.Table
		header := []string{"variant"}
		for m := 0; m <= w.Cfg.Months; m++ {
			header = append(header, fmt.Sprintf("m%d", m))
		}
		header = append(header, "slope/mo")
		tb.AddRow(header...)
		for _, uni := range []struct {
			label string
			part  rib.Partition
		}{
			{"l", w.U.Less},
			{"m", w.U.More},
		} {
			for _, proto := range w.Protocols() {
				s := w.TASS(uni.part, core.Options{Phi: phi},
					fmt.Sprintf("%s-%s", proto, uni.label))
				ev, err := strategy.Evaluate(s, w.Series[proto], w.U.Less.AddressCount())
				if err != nil {
					return Result{}, fmt.Errorf("figure6 φ=%v %s/%s: %w", phi, uni.label, proto, err)
				}
				row := []string{ev.Strategy}
				for _, h := range ev.Hitrate {
					row = append(row, fmt.Sprintf("%.3f", h))
				}
				slope, _ := stats.LinearFit(months, ev.Hitrate)
				row = append(row, fmt.Sprintf("%+.4f", slope))
				tb.AddRow(row...)
			}
		}
		fmt.Fprintf(&sb, "φ = %g\n%s\n", phi, tb.String())
	}
	return Result{
		ID:    "figure6",
		Title: "hitrate of TASS compared to a full scan (φ=1 and φ=0.95)",
		Text:  sb.String(),
	}, nil
}
