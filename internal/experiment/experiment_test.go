package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// sharedWorld builds one small world for the whole test file (worlds are
// deterministic, so sharing is safe and keeps the suite fast).
var sharedWorld *World

func world(t testing.TB) *World {
	t.Helper()
	if sharedWorld == nil {
		w, err := BuildWorld(SmallConfig(41))
		if err != nil {
			t.Fatal(err)
		}
		sharedWorld = w
	}
	return sharedWorld
}

func TestBuildWorldShape(t *testing.T) {
	w := world(t)
	if len(w.Protocols()) != 4 {
		t.Fatalf("protocols: %v", w.Protocols())
	}
	for _, p := range w.Protocols() {
		if w.Series[p].Months() != 7 {
			t.Errorf("%s: %d snapshots, want 7", p, w.Series[p].Months())
		}
	}
}

func TestTable1Bands(t *testing.T) {
	w := world(t)
	res, err := Table1(w)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseTable(t, res.Text)
	if len(rows) != 10 {
		t.Fatalf("table1 has %d data rows, want 10 (5 φ × 2 universes)", len(rows))
	}
	// Structural invariants of Table 1 that must hold at any scale:
	// (a) coverage decreases monotonically as φ decreases, per column;
	// (b) the m-prefix universe needs no more space than the l-universe
	//     at the same φ;
	// (c) φ=1 coverage is strictly below 1 (unresponsive space exists).
	get := func(uni string, phiIdx, col int) float64 {
		base := 0
		if uni == "more" {
			base = 5
		}
		v, err := strconv.ParseFloat(rows[base+phiIdx][2+col], 64)
		if err != nil {
			t.Fatalf("parse %v: %v", rows[base+phiIdx], err)
		}
		return v
	}
	for col := 0; col < 4; col++ {
		for _, uni := range []string{"less", "more"} {
			for i := 1; i < 5; i++ {
				if get(uni, i, col) > get(uni, i-1, col)+1e-9 {
					t.Errorf("%s col %d: coverage not monotone in φ", uni, col)
				}
			}
			if get(uni, 0, col) >= 1 {
				t.Errorf("%s col %d: φ=1 coverage = %v, want < 1", uni, col, get(uni, 0, col))
			}
		}
		if get("more", 0, col) > get("less", 0, col)+1e-9 {
			t.Errorf("col %d: m-universe must not need more space than l at φ=1", col)
		}
	}
}

func TestFigure1Monotone(t *testing.T) {
	w := world(t)
	res, err := Figure1(w)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseTable(t, res.Text)
	// /0 ≥ allocated ≥ announced > any hitlist.
	val := func(i int) float64 {
		v, err := strconv.ParseFloat(rows[i][len(rows[i])-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if !(val(0) >= val(1) && val(1) >= val(2)) {
		t.Errorf("scoping funnel not monotone: %v", res.Text)
	}
	for i := 3; i < len(rows); i++ {
		if val(i) >= val(2) {
			t.Errorf("hitlist row %d not below announced space", i)
		}
	}
}

func TestFigure2(t *testing.T) {
	res, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"100.16.0.0/12", "100.128.0.0/9", "5 pieces", "true"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("figure2 output missing %q:\n%s", want, res.Text)
		}
	}
}

func TestFigure3CoversLengths(t *testing.T) {
	w := world(t)
	res, err := Figure3(w)
	if err != nil {
		t.Fatal(err)
	}
	// Sections for both universes and all four protocols.
	for _, want := range []string{"[less prefixes, ftp]", "[more prefixes, cwmp]"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("figure3 missing section %q", want)
		}
	}
	// m-prefix universe must show entries at longer lengths than /24's
	// parent range start (i.e. the table renders real length rows).
	if !strings.Contains(res.Text, "/24") {
		t.Error("figure3 has no /24 row")
	}
}

func TestFigure4CurveShape(t *testing.T) {
	w := world(t)
	res, err := Figure4(w)
	if err != nil {
		t.Fatal(err)
	}
	// Final cumulative host coverage must reach 1.000 in each section.
	if c := strings.Count(res.Text, "1.000"); c < 4 {
		t.Errorf("figure4: expected every section to reach full host coverage:\n%s", res.Text)
	}
}

func TestFigure5Decay(t *testing.T) {
	w := world(t)
	res, err := Figure5(w)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseTable(t, res.Text)
	for _, row := range rows {
		m0, _ := strconv.ParseFloat(row[1], 64)
		m6, _ := strconv.ParseFloat(row[len(row)-1], 64)
		if m0 != 1 {
			t.Errorf("%s: hitlist month-0 hitrate %v, want 1.000", row[0], m0)
		}
		if m6 >= m0 {
			t.Errorf("%s: hitlist must decay (m0=%v m6=%v)", row[0], m0, m6)
		}
	}
	// CWMP must decay hardest (the paper's contrast protocol).
	last := func(name string) float64 {
		for _, row := range rows {
			if row[0] == name {
				v, _ := strconv.ParseFloat(row[len(row)-1], 64)
				return v
			}
		}
		t.Fatalf("row %s missing", name)
		return 0
	}
	if !(last("cwmp") < last("ftp") && last("cwmp") < last("http")) {
		t.Errorf("cwmp should decay hardest: %s", res.Text)
	}
}

func TestFigure6TASSBeatsHitlist(t *testing.T) {
	w := world(t)
	res6, err := Figure6(w)
	if err != nil {
		t.Fatal(err)
	}
	// All TASS φ=1 hitrates stay above 0.9 through month 6 (the paper's
	// Figure 6 y-axis floor).
	sections := strings.Split(res6.Text, "φ = ")
	if len(sections) < 3 {
		t.Fatalf("figure6 sections: %d", len(sections))
	}
	phi1rows := parseTable(t, sections[1])
	for _, row := range phi1rows {
		m6, _ := strconv.ParseFloat(row[len(row)-2], 64)
		if m6 < 0.90 {
			t.Errorf("φ=1 %s: month-6 hitrate %v below the paper's 0.90 floor", row[0], m6)
		}
	}
}

func TestSectionStatsAndHeadline(t *testing.T) {
	w := world(t)
	res, err := SectionStats(w)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "φ=1.00") || !strings.Contains(res.Text, "dense head") {
		t.Errorf("section34 text:\n%s", res.Text)
	}
	hres, err := Headline(w)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseTable(t, hres.Text)
	if len(rows) != 2 {
		t.Fatalf("headline rows: %d", len(rows))
	}
	// φ=0.95 must be much cheaper than φ=1.
	s1, _ := strconv.ParseFloat(rows[0][1], 64)
	s95, _ := strconv.ParseFloat(rows[1][1], 64)
	if s95 >= s1 {
		t.Errorf("headline: φ=0.95 space %v not below φ=1 space %v", s95, s1)
	}
}

func TestEfficiencyGains(t *testing.T) {
	w := world(t)
	res, err := Efficiency(w)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseTable(t, res.Text)
	// Every TASS variant must be at least as efficient as the full scan
	// (gain ≥ 1), and φ=0.95 strictly better.
	for _, row := range rows {
		gain, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "x"), 64)
		if err != nil {
			t.Fatalf("gain cell %q", row[4])
		}
		if gain < 1 {
			t.Errorf("%s φ=%s: efficiency gain %v < 1", row[0], row[1], gain)
		}
		if row[1] == "0.95" && gain < 1.25 {
			t.Errorf("%s φ=0.95: gain %v below the paper's 1.25x lower bound", row[0], gain)
		}
	}
}

func TestAblationRankingDensityWins(t *testing.T) {
	w := world(t)
	res, err := AblationRanking(w)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseTable(t, res.Text)
	for _, row := range rows {
		density, _ := strconv.ParseFloat(row[1], 64)
		byHosts, _ := strconv.ParseFloat(row[2], 64)
		random, _ := strconv.ParseFloat(row[3], 64)
		if density > byHosts+1e-9 || density > random+1e-9 {
			t.Errorf("%s: density ranking (%v) must dominate host-count (%v) and random (%v)",
				row[0], density, byHosts, random)
		}
	}
}

func TestRunAndAll(t *testing.T) {
	w := world(t)
	if _, err := Run(w, "table1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(w, "nope"); err == nil {
		t.Error("unknown id must fail")
	}
	results, err := All(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("All returned %d results, want %d", len(results), len(IDs()))
	}
	for _, r := range results {
		if r.Text == "" {
			t.Errorf("%s: empty text", r.ID)
		}
		if !strings.Contains(r.String(), r.ID) {
			t.Errorf("%s: String() missing id", r.ID)
		}
	}
}

// parseTable splits a stats.Table rendering into data rows (skipping the
// header and separator).
func parseTable(t *testing.T, text string) [][]string {
	t.Helper()
	var rows [][]string
	lines := strings.Split(strings.TrimSpace(text), "\n")
	for i, ln := range lines {
		if i == 0 || strings.HasPrefix(ln, "---") || strings.TrimSpace(ln) == "" {
			continue
		}
		if !strings.Contains(lines[0], "  ") { // not a table section
			continue
		}
		fields := strings.Fields(ln)
		if len(fields) > 1 {
			rows = append(rows, fields)
		}
	}
	return rows
}
