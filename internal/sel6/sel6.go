// Package sel6 transfers the TASS blueprint to IPv6, the paper's closing
// argument: "When IPv6 becomes popular, brute forcing the address space
// becomes infeasible. ... Perhaps TASS can offer a blueprint for tackling
// that challenge as well."
//
// For IPv6 there is no full scan to amortize — the announced space is
// astronomically larger than any probe budget — so prefix selection is
// not an optimization but the only viable scoping. The algorithm is the
// same as internal/core's: count seed observations per announced prefix,
// rank by density, select to a coverage target. Seed observations come
// from passive sources (the Plonka & Berger direction the paper cites)
// or hitlist-driven probing rather than a sweep.
package sel6

import (
	"fmt"
	"math"
	"sort"

	"github.com/tass-scan/tass/internal/netaddr"
)

// Universe6 is a sorted set of pairwise-disjoint IPv6 prefixes: the
// announced space under study.
type Universe6 struct {
	prefixes []netaddr.Prefix6
}

// NewUniverse6 validates disjointness and builds a universe. The input
// is copied and sorted.
func NewUniverse6(ps []netaddr.Prefix6) (Universe6, error) {
	cp := make([]netaddr.Prefix6, len(ps))
	copy(cp, ps)
	sort.Slice(cp, func(i, j int) bool {
		if c := cp[i].Addr().Compare(cp[j].Addr()); c != 0 {
			return c < 0
		}
		return cp[i].Bits() < cp[j].Bits()
	})
	for i := 1; i < len(cp); i++ {
		if cp[i-1].ContainsPrefix(cp[i]) || cp[i].ContainsPrefix(cp[i-1]) {
			return Universe6{}, fmt.Errorf("sel6: %v and %v overlap", cp[i-1], cp[i])
		}
	}
	return Universe6{prefixes: cp}, nil
}

// Len returns the number of prefixes.
func (u Universe6) Len() int { return len(u.prefixes) }

// Prefix returns the i-th prefix in sorted order.
func (u Universe6) Prefix(i int) netaddr.Prefix6 { return u.prefixes[i] }

// Find locates the universe prefix containing a.
func (u Universe6) Find(a netaddr.Addr6) (int, bool) {
	// Rightmost prefix whose network address is <= a.
	i := sort.Search(len(u.prefixes), func(i int) bool {
		return u.prefixes[i].Addr().Compare(a) > 0
	})
	if i == 0 {
		return 0, false
	}
	i--
	if u.prefixes[i].Contains(a) {
		return i, true
	}
	return 0, false
}

// PrefixStat6 is one ranked responsive IPv6 prefix.
type PrefixStat6 struct {
	Prefix netaddr.Prefix6
	// Hosts is the number of seed observations inside the prefix.
	Hosts int
	// Density is Hosts / 2^(128-len). Unlike IPv4 the absolute value is
	// vanishingly small; only the ranking matters.
	Density float64
	// Coverage is Hosts / total observations.
	Coverage float64
}

// Rank6 counts seed observations per universe prefix and returns the
// responsive prefixes in descending density order.
func Rank6(seeds []netaddr.Addr6, u Universe6) []PrefixStat6 {
	counts := make([]int, u.Len())
	total := 0
	for _, a := range seeds {
		if i, ok := u.Find(a); ok {
			counts[i]++
			total++
		}
	}
	out := make([]PrefixStat6, 0, len(counts)/2)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		p := u.Prefix(i)
		out = append(out, PrefixStat6{
			Prefix:   p,
			Hosts:    c,
			Density:  float64(c) / math.Pow(2, float64(128-p.Bits())),
			Coverage: float64(c) / float64(total),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		sa, sb := &out[a], &out[b]
		if sa.Density != sb.Density {
			return sa.Density > sb.Density
		}
		if sa.Hosts != sb.Hosts {
			return sa.Hosts > sb.Hosts
		}
		return sa.Prefix.Addr().Compare(sb.Prefix.Addr()) < 0
	})
	return out
}

// Selection6 is an IPv6 scan plan.
type Selection6 struct {
	// Ranked lists every responsive prefix; the first K are selected.
	Ranked []PrefixStat6
	// K is the smallest prefix count exceeding the coverage target.
	K int
	// SeedHosts is the total number of seed observations in the universe.
	SeedHosts int
	// HostCoverage is the achieved coverage.
	HostCoverage float64
	// SpaceBits is log2 of the selected address space — the space itself
	// does not fit in a uint64 for typical IPv6 selections.
	SpaceBits float64
}

// Select6 runs the TASS selection on IPv6 seed observations.
func Select6(seeds []netaddr.Addr6, u Universe6, phi float64) (*Selection6, error) {
	if phi <= 0 || phi > 1 {
		return nil, fmt.Errorf("sel6: φ must be in (0,1], got %v", phi)
	}
	ranked := Rank6(seeds, u)
	total := 0
	for i := range ranked {
		total += ranked[i].Hosts
	}
	if total == 0 {
		return nil, fmt.Errorf("sel6: no seed observations inside the universe")
	}
	sel := &Selection6{Ranked: ranked, SeedHosts: total}
	covered := 0
	space := 0.0 // linear space in 2^0 units, accumulated in float64
	for i := range ranked {
		covered += ranked[i].Hosts
		space += math.Pow(2, float64(128-ranked[i].Prefix.Bits()))
		sel.K = i + 1
		if float64(covered) > phi*float64(total) || (phi == 1 && covered == total) {
			break
		}
	}
	sel.HostCoverage = float64(covered) / float64(total)
	sel.SpaceBits = math.Log2(space)
	return sel, nil
}

// Prefixes returns the selected prefixes in rank order.
func (s *Selection6) Prefixes() []netaddr.Prefix6 {
	out := make([]netaddr.Prefix6, s.K)
	for i := 0; i < s.K; i++ {
		out[i] = s.Ranked[i].Prefix
	}
	return out
}
