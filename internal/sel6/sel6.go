// Package sel6 transfers the TASS blueprint to IPv6, the paper's closing
// argument: "When IPv6 becomes popular, brute forcing the address space
// becomes infeasible. ... Perhaps TASS can offer a blueprint for tackling
// that challenge as well."
//
// For IPv6 there is no full scan to amortize — the announced space is
// astronomically larger than any probe budget — so prefix selection is
// not an optimization but the only viable scoping. Since the address
// engine went generic the package is a thin compatibility layer: a
// Universe6 is a rib partition of Addr6 prefixes, ranking and selection
// run through internal/core's family-generic engine, and the types here
// are aliases of its Addr6 instantiations. Seed observations come from
// passive sources (the Plonka & Berger direction the paper cites) or
// hitlist-driven probing rather than a sweep; they are treated as an
// address set, so duplicate observations count once, exactly like the
// IPv4 census path.
package sel6

import (
	"fmt"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
	"github.com/tass-scan/tass/internal/trie"
)

// Universe6 is a sorted set of pairwise-disjoint IPv6 prefixes: the
// announced space under study. It is a rib partition, so it carries the
// same point-location and bulk-counting operations as the IPv4
// universes.
type Universe6 = rib.PartOf[netaddr.Addr6]

// NewUniverse6 validates disjointness and builds a universe. The input
// is copied and sorted.
func NewUniverse6(ps []netaddr.Prefix6) (Universe6, error) {
	u, err := rib.NewPartition(ps)
	if err != nil {
		return Universe6{}, fmt.Errorf("sel6: %w", err)
	}
	return u, nil
}

// NewUniverse6FromAnnounced builds the universe from a raw announced
// IPv6 table: covered more-specifics are dropped, keeping only the
// maximal announced prefixes — the v6 analogue of the IPv4 l-prefix
// view (deaggregation is available through the same generic trie when
// an m-prefix universe is wanted).
func NewUniverse6FromAnnounced(ps []netaddr.Prefix6) (Universe6, error) {
	return NewUniverse6(trie.LessSpecificOnly(ps))
}

// PrefixStat6 is one ranked responsive IPv6 prefix: the Addr6
// instantiation of the generic ranking stat. Density is
// Hosts / 2^(128-len); unlike IPv4 the absolute value is vanishingly
// small and only the ranking matters.
type PrefixStat6 = core.StatOf[netaddr.Addr6]

// Selection6 is an IPv6 scan plan: the Addr6 instantiation of the
// generic selection. Space saturates for selections wider than 2^64
// addresses — SpaceBits is the meaningful cost figure here.
type Selection6 = core.SelectionOf[netaddr.Addr6]

// snapshotOf wraps seed observations as a census snapshot (copied,
// sorted, de-duplicated) for the generic engine.
func snapshotOf(seeds []netaddr.Addr6) *census.SnapshotOf[netaddr.Addr6] {
	return census.NewSnapshotOf("seed6", 0, seeds)
}

// Rank6 counts seed observations per universe prefix and returns the
// responsive prefixes in descending density order.
func Rank6(seeds []netaddr.Addr6, u Universe6) []PrefixStat6 {
	return core.Rank(snapshotOf(seeds), u)
}

// Select6 runs the TASS selection on IPv6 seed observations.
func Select6(seeds []netaddr.Addr6, u Universe6, phi float64) (*Selection6, error) {
	if phi <= 0 || phi > 1 {
		return nil, fmt.Errorf("sel6: φ must be in (0,1], got %v", phi)
	}
	sel, err := core.Select(snapshotOf(seeds), u, core.Options{Phi: phi})
	if err != nil {
		return nil, fmt.Errorf("sel6: no seed observations inside the universe")
	}
	return sel, nil
}
