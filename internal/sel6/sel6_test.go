package sel6

import (
	"math/rand"
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
)

func p6(s string) netaddr.Prefix6 {
	p, err := netaddr.ParsePrefix6(s)
	if err != nil {
		panic(err)
	}
	return p
}

func a6(s string) netaddr.Addr6 { return netaddr.MustParseAddr6(s) }

func TestNewUniverse6(t *testing.T) {
	u, err := NewUniverse6([]netaddr.Prefix6{
		p6("2001:db8::/32"), p6("2620:0:860::/46"), p6("2a00::/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 3 {
		t.Fatalf("Len = %d", u.Len())
	}
	// Sorted by address.
	if u.Prefix(0) != p6("2001:db8::/32") || u.Prefix(2) != p6("2a00::/24") {
		t.Errorf("order: %v %v %v", u.Prefix(0), u.Prefix(1), u.Prefix(2))
	}
	if _, err := NewUniverse6([]netaddr.Prefix6{
		p6("2001:db8::/32"), p6("2001:db8:1::/48"),
	}); err == nil {
		t.Error("nested prefixes accepted")
	}
}

func TestUniverse6Find(t *testing.T) {
	u, err := NewUniverse6([]netaddr.Prefix6{p6("2001:db8::/32"), p6("2a00::/16")})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr string
		idx  int
		ok   bool
	}{
		{"2001:db8::1", 0, true},
		{"2001:db8:ffff:ffff::1", 0, true},
		{"2001:db9::", 0, false},
		{"2a00:1450::1", 1, true},
		{"2a00:ffff:ffff::", 1, true},
		{"2a01::", 0, false},
		{"2b00::", 0, false},
		{"::1", 0, false},
	}
	for _, c := range cases {
		idx, ok := u.Find(a6(c.addr))
		if ok != c.ok || (ok && idx != c.idx) {
			t.Errorf("Find(%s) = %d, %v; want %d, %v", c.addr, idx, ok, c.idx, c.ok)
		}
	}
}

func TestRank6AndSelect6(t *testing.T) {
	u, err := NewUniverse6([]netaddr.Prefix6{
		p6("2001:db8::/32"),   // 8 hosts in a /32: denser
		p6("2a00::/24"),       // 8 hosts in a /24: sparser
		p6("2620:0:860::/46"), // empty
	})
	if err != nil {
		t.Fatal(err)
	}
	var seeds []netaddr.Addr6
	for i := 0; i < 8; i++ {
		seeds = append(seeds, netaddr.Addr6{Hi: 0x20010db8_00000000 + uint64(i)<<16, Lo: 1})
		seeds = append(seeds, netaddr.Addr6{Hi: 0x2a000000_00000000 + uint64(i)<<24, Lo: 2})
	}
	seeds = append(seeds, a6("9999::1")) // outside the universe

	ranked := Rank6(seeds, u)
	if len(ranked) != 2 {
		t.Fatalf("ranked: %+v", ranked)
	}
	if ranked[0].Prefix != p6("2001:db8::/32") {
		t.Errorf("densest should be the /32, got %v", ranked[0].Prefix)
	}
	if ranked[0].Hosts != 8 || ranked[0].Coverage != 0.5 {
		t.Errorf("rank0: %+v", ranked[0])
	}
	if ranked[0].Density <= ranked[1].Density {
		t.Error("density order wrong")
	}

	sel, err := Select6(seeds, u, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 1 || sel.HostCoverage != 0.5 {
		t.Fatalf("Select6(0.4): K=%d coverage=%v", sel.K, sel.HostCoverage)
	}
	if sel.SpaceBits != 96 { // one /32 = 2^96 addresses
		t.Errorf("SpaceBits = %v, want 96", sel.SpaceBits)
	}
	if got := sel.Prefixes(); len(got) != 1 || got[0] != p6("2001:db8::/32") {
		t.Errorf("Prefixes = %v", got)
	}

	sel, err = Select6(seeds, u, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 2 || sel.HostCoverage != 1 {
		t.Fatalf("Select6(1): K=%d coverage=%v", sel.K, sel.HostCoverage)
	}
}

func TestSelect6Errors(t *testing.T) {
	u, _ := NewUniverse6([]netaddr.Prefix6{p6("2001:db8::/32")})
	if _, err := Select6(nil, u, 0.9); err == nil {
		t.Error("no seeds accepted")
	}
	if _, err := Select6([]netaddr.Addr6{a6("2001:db8::1")}, u, 0); err == nil {
		t.Error("φ=0 accepted")
	}
	if _, err := Select6([]netaddr.Addr6{a6("9999::")}, u, 0.9); err == nil {
		t.Error("all seeds outside universe accepted")
	}
}

func TestSelect6CoverageInvariant(t *testing.T) {
	// Random universes: achieved coverage always exceeds φ.
	rng := rand.New(rand.NewSource(3))
	var ps []netaddr.Prefix6
	for i := 0; i < 64; i++ {
		a := netaddr.Addr6{Hi: 0x2000_0000_0000_0000 + uint64(i)<<40}
		p, err := netaddr.Prefix6From(a, 32)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	u, err := NewUniverse6(ps)
	if err != nil {
		t.Fatal(err)
	}
	var seeds []netaddr.Addr6
	for i := 0; i < 3000; i++ {
		base := ps[rng.Intn(len(ps))]
		seeds = append(seeds, netaddr.Addr6{
			Hi: base.Addr().Hi | uint64(rng.Intn(1<<30)),
			Lo: rng.Uint64(),
		})
	}
	for _, phi := range []float64{0.3, 0.5, 0.9, 0.99, 1} {
		sel, err := Select6(seeds, u, phi)
		if err != nil {
			t.Fatal(err)
		}
		if sel.HostCoverage < phi && !(phi == 1 && sel.HostCoverage == 1) {
			t.Errorf("φ=%v: coverage %v", phi, sel.HostCoverage)
		}
		for i := 1; i < len(sel.Ranked); i++ {
			if sel.Ranked[i].Density > sel.Ranked[i-1].Density {
				t.Fatal("ranking not by descending density")
			}
		}
	}
}
