package sel6

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
)

// This file preserves the pre-generic sel6 implementation verbatim (as
// legacyRank6 / legacySelect6) and pins the generic core path to it:
// on duplicate-free seeds the two must agree bit for bit — same
// ranking order, same densities, same K, coverage and SpaceBits. The
// one intended behavior change of the fold-in is duplicate handling
// (the generic path has set semantics), so fixtures here draw unique
// seeds.

type legacyUniverse struct {
	prefixes []netaddr.Prefix6
}

func legacyNewUniverse(ps []netaddr.Prefix6) legacyUniverse {
	cp := make([]netaddr.Prefix6, len(ps))
	copy(cp, ps)
	sort.Slice(cp, func(i, j int) bool {
		if c := cp[i].Addr().Compare(cp[j].Addr()); c != 0 {
			return c < 0
		}
		return cp[i].Bits() < cp[j].Bits()
	})
	return legacyUniverse{prefixes: cp}
}

func (u legacyUniverse) find(a netaddr.Addr6) (int, bool) {
	i := sort.Search(len(u.prefixes), func(i int) bool {
		return u.prefixes[i].Addr().Compare(a) > 0
	})
	if i == 0 {
		return 0, false
	}
	i--
	if u.prefixes[i].Contains(a) {
		return i, true
	}
	return 0, false
}

func legacyRank6(seeds []netaddr.Addr6, u legacyUniverse) []PrefixStat6 {
	counts := make([]int, len(u.prefixes))
	total := 0
	for _, a := range seeds {
		if i, ok := u.find(a); ok {
			counts[i]++
			total++
		}
	}
	out := make([]PrefixStat6, 0, len(counts)/2)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		p := u.prefixes[i]
		out = append(out, PrefixStat6{
			Prefix:   p,
			Hosts:    c,
			Density:  float64(c) / math.Pow(2, float64(128-p.Bits())),
			Coverage: float64(c) / float64(total),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		sa, sb := &out[a], &out[b]
		if sa.Density != sb.Density {
			return sa.Density > sb.Density
		}
		if sa.Hosts != sb.Hosts {
			return sa.Hosts > sb.Hosts
		}
		return sa.Prefix.Addr().Compare(sb.Prefix.Addr()) < 0
	})
	return out
}

type legacySelection struct {
	ranked       []PrefixStat6
	k            int
	seedHosts    int
	hostCoverage float64
	spaceBits    float64
}

func legacySelect6(seeds []netaddr.Addr6, u legacyUniverse, phi float64) *legacySelection {
	ranked := legacyRank6(seeds, u)
	total := 0
	for i := range ranked {
		total += ranked[i].Hosts
	}
	if total == 0 {
		return nil
	}
	sel := &legacySelection{ranked: ranked, seedHosts: total}
	covered := 0
	space := 0.0
	for i := range ranked {
		covered += ranked[i].Hosts
		space += math.Pow(2, float64(128-ranked[i].Prefix.Bits()))
		sel.k = i + 1
		if float64(covered) > phi*float64(total) || (phi == 1 && covered == total) {
			break
		}
	}
	sel.hostCoverage = float64(covered) / float64(total)
	sel.spaceBits = math.Log2(space)
	return sel
}

// equivFixture builds a random disjoint universe and unique in- and
// out-of-universe seeds.
func equivFixture(rng *rand.Rand, nPrefixes, nSeeds int) ([]netaddr.Prefix6, []netaddr.Addr6) {
	var ps []netaddr.Prefix6
	for i := 0; i < nPrefixes; i++ {
		a := netaddr.Addr6{Hi: 0x2000_0000_0000_0000 + uint64(i)<<40}
		bits := 24 + rng.Intn(41) // /24 .. /64, all inside the /24 slots
		p, err := netaddr.Prefix6From(a, bits)
		if err != nil {
			panic(err)
		}
		ps = append(ps, p)
	}
	seen := make(map[netaddr.Addr6]bool)
	var seeds []netaddr.Addr6
	for len(seeds) < nSeeds {
		var a netaddr.Addr6
		if rng.Intn(8) == 0 {
			// Occasionally outside the universe.
			a = netaddr.Addr6{Hi: 0x3000_0000_0000_0000 | rng.Uint64()>>4, Lo: rng.Uint64()}
		} else {
			base := ps[rng.Intn(len(ps))]
			a = netaddr.Addr6{
				Hi: base.Addr().Hi | uint64(rng.Intn(1<<30)),
				Lo: rng.Uint64(),
			}
		}
		if seen[a] {
			continue
		}
		seen[a] = true
		seeds = append(seeds, a)
	}
	return ps, seeds
}

func TestGenericMatchesLegacyRank(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		ps, seeds := equivFixture(rng, 48, 2000)
		u, err := NewUniverse6(ps)
		if err != nil {
			t.Fatal(err)
		}
		got := Rank6(seeds, u)
		want := legacyRank6(seeds, legacyNewUniverse(ps))
		if len(got) != len(want) {
			t.Fatalf("trial %d: ranked %d prefixes, legacy %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Prefix != want[i].Prefix || got[i].Hosts != want[i].Hosts {
				t.Fatalf("trial %d rank %d: got %v/%d, legacy %v/%d",
					trial, i, got[i].Prefix, got[i].Hosts, want[i].Prefix, want[i].Hosts)
			}
			// Bit-exact: Ldexp and the Pow division agree on powers of two.
			if got[i].Density != want[i].Density || got[i].Coverage != want[i].Coverage {
				t.Fatalf("trial %d rank %d: density %v vs %v, coverage %v vs %v",
					trial, i, got[i].Density, want[i].Density, got[i].Coverage, want[i].Coverage)
			}
		}
	}
}

func TestGenericMatchesLegacySelect(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 6; trial++ {
		ps, seeds := equivFixture(rng, 48, 2000)
		u, err := NewUniverse6(ps)
		if err != nil {
			t.Fatal(err)
		}
		lu := legacyNewUniverse(ps)
		for _, phi := range []float64{0.3, 0.5, 0.9, 0.99, 1} {
			got, err := Select6(seeds, u, phi)
			if err != nil {
				t.Fatal(err)
			}
			want := legacySelect6(seeds, lu, phi)
			if want == nil {
				t.Fatal("legacy found no seeds in universe")
			}
			if got.K != want.k || got.SeedHosts != want.seedHosts {
				t.Fatalf("trial %d φ=%v: K=%d/%d seedHosts=%d/%d",
					trial, phi, got.K, want.k, got.SeedHosts, want.seedHosts)
			}
			if got.HostCoverage != want.hostCoverage {
				t.Fatalf("trial %d φ=%v: coverage %v vs legacy %v", trial, phi, got.HostCoverage, want.hostCoverage)
			}
			if got.SpaceBits != want.spaceBits {
				t.Fatalf("trial %d φ=%v: SpaceBits %v vs legacy %v", trial, phi, got.SpaceBits, want.spaceBits)
			}
		}
	}
}
