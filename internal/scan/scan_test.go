package scan

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

func TestPermutationVisitsAllOnce(t *testing.T) {
	for _, n := range []uint64{1, 2, 7, 100, 4096, 100000} {
		pm, err := NewPermutation(n, 42)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		count := uint64(0)
		for {
			idx, ok := pm.Next()
			if !ok {
				break
			}
			if idx >= n {
				t.Fatalf("n=%d: index %d out of range", n, idx)
			}
			if seen[idx] {
				t.Fatalf("n=%d: index %d visited twice", n, idx)
			}
			seen[idx] = true
			count++
		}
		if count != n {
			t.Fatalf("n=%d: visited %d indexes", n, count)
		}
		// Exhausted permutations stay exhausted.
		if _, ok := pm.Next(); ok {
			t.Fatalf("n=%d: Next after exhaustion", n)
		}
		// Reset replays the same order.
		pm.Reset()
		first, _ := pm.Next()
		pm.Reset()
		again, _ := pm.Next()
		if first != again {
			t.Fatalf("n=%d: reset changed order", n)
		}
	}
}

func TestPermutationSeedsDiffer(t *testing.T) {
	order := func(seed int64) []uint64 {
		pm, err := NewPermutation(1000, seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []uint64
		for {
			idx, ok := pm.Next()
			if !ok {
				return out
			}
			out = append(out, idx)
		}
	}
	a, b := order(1), order(2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Errorf("seeds 1 and 2 agree on %d/%d positions", same, len(a))
	}
}

func TestPermutationSpreads(t *testing.T) {
	// ZMap's point: early probes must not hammer one /16. Check that the
	// first 1% of a 2^20 permutation never hits any 1/16th bucket more
	// than 5x its fair share.
	const n = 1 << 20
	pm, err := NewPermutation(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	const window = n / 100
	buckets := make([]int, 16)
	for i := 0; i < window; i++ {
		idx, ok := pm.Next()
		if !ok {
			t.Fatal("exhausted early")
		}
		buckets[idx/(n/16)]++
	}
	fair := window / 16
	for b, c := range buckets {
		if c > 5*fair {
			t.Errorf("bucket %d got %d of first %d probes (fair share %d)", b, c, window, fair)
		}
	}
}

func TestMulmodPowmod(t *testing.T) {
	if got := mulmod(1<<62, 3, 1000003); got != ((1<<62)%1000003*3)%1000003 {
		t.Errorf("mulmod big: %d", got)
	}
	if got := powmod(2, 10, 1<<61); got != 1024 {
		t.Errorf("powmod = %d", got)
	}
}

func TestMillerRabin(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 11, 104729, 4294967311, 2147483659}
	for _, p := range primes {
		if !millerRabin(p) {
			t.Errorf("%d reported composite", p)
		}
	}
	composites := []uint64{0, 1, 4, 9, 561, 104730, 4294967295, 3215031751}
	for _, c := range composites {
		if millerRabin(c) {
			t.Errorf("%d reported prime", c)
		}
	}
}

func TestNextSafePrime(t *testing.T) {
	p, q := nextSafePrime(100)
	if p != 107 || q != 53 {
		t.Errorf("nextSafePrime(100) = %d, %d", p, q)
	}
	if !millerRabin(p) || !millerRabin(q) || p != 2*q+1 {
		t.Error("not a safe prime")
	}
}

func TestLimiter(t *testing.T) {
	lim, err := NewLimiter(1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Burst drains immediately.
	for i := 0; i < 10; i++ {
		if !lim.Allow() {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if lim.Allow() {
		t.Error("11th immediate token allowed")
	}
	// Wait refills at ~1000/s.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	for i := 0; i < 20; i++ {
		if err := lim.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("20 tokens at 1000/s took only %v", elapsed)
	}
	// Canceled context aborts the wait.
	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	slow, _ := NewLimiter(0.001, 1)
	slow.Allow() // drain
	if err := slow.Wait(canceled); !errors.Is(err, context.Canceled) {
		t.Errorf("Wait on canceled context: %v", err)
	}
	if _, err := NewLimiter(0, 1); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestSimProber(t *testing.T) {
	live := []netaddr.Addr{pfx("10.0.0.0/24").First() + 5, pfx("10.0.0.0/24").First() + 9}
	p, err := NewSimProber(live, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Probe(context.Background(), live[0])
	if err != nil || !res.Open || res.RTT == 0 {
		t.Errorf("live probe: %+v, %v", res, err)
	}
	res, err = p.Probe(context.Background(), live[0]+1)
	if err != nil || res.Open {
		t.Errorf("dead probe: %+v, %v", res, err)
	}
	if _, err := NewSimProber(nil, 1.5, 1); err == nil {
		t.Error("bad loss rate accepted")
	}
}

func TestSimProberLossDeterministic(t *testing.T) {
	var live []netaddr.Addr
	for i := 0; i < 2000; i++ {
		live = append(live, netaddr.Addr(0x0A000000+i))
	}
	p, _ := NewSimProber(live, 0.3, 7)
	open := 0
	for _, a := range live {
		r1, _ := p.Probe(context.Background(), a)
		r2, _ := p.Probe(context.Background(), a)
		if r1.Open != r2.Open {
			t.Fatal("loss not deterministic per address")
		}
		if r1.Open {
			open++
		}
	}
	// ≈70% should survive 30% loss.
	if open < 1200 || open > 1600 {
		t.Errorf("%d of 2000 open under 30%% loss", open)
	}
}

func TestScannerFindsAllHosts(t *testing.T) {
	part, err := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/24"), pfx("10.0.2.0/23")})
	if err != nil {
		t.Fatal(err)
	}
	live := []netaddr.Addr{
		netaddr.MustParseAddr("10.0.0.17"),
		netaddr.MustParseAddr("10.0.2.1"),
		netaddr.MustParseAddr("10.0.3.255"),
		netaddr.MustParseAddr("99.99.99.99"), // outside targets
	}
	prober, _ := NewSimProber(live, 0, 1)
	s, err := New(Config{Targets: part, Prober: prober, Workers: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.Probed != part.AddressCount() {
		t.Errorf("probed %d, want %d", report.Probed, part.AddressCount())
	}
	want := []string{"10.0.0.17", "10.0.2.1", "10.0.3.255"}
	if len(report.Responsive) != len(want) {
		t.Fatalf("responsive %v", report.Responsive)
	}
	for i, w := range want {
		if report.Responsive[i].String() != w {
			t.Errorf("responsive[%d] = %v, want %s", i, report.Responsive[i], w)
		}
	}
	if hr := report.Hitrate(); hr <= 0 || hr >= 0.01 {
		t.Errorf("hitrate %v implausible", hr)
	}
}

func TestScannerExclusions(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/24")})
	live := []netaddr.Addr{netaddr.MustParseAddr("10.0.0.5")}
	prober, _ := NewSimProber(live, 0, 1)
	s, err := New(Config{
		Targets: part,
		Prober:  prober,
		Seed:    1,
		Exclude: []netaddr.Prefix{pfx("10.0.0.0/28")},
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.Excluded != 16 {
		t.Errorf("excluded %d, want 16", report.Excluded)
	}
	if report.Probed != 240 {
		t.Errorf("probed %d, want 240", report.Probed)
	}
	if len(report.Responsive) != 0 {
		t.Errorf("excluded host was probed: %v", report.Responsive)
	}
}

func TestScannerMaxProbesAndCancel(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/16")})
	prober, _ := NewSimProber(nil, 0, 1)
	s, err := New(Config{Targets: part, Prober: prober, Seed: 1, MaxProbes: 100})
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.Probed != 100 {
		t.Errorf("probed %d, want 100", report.Probed)
	}

	// Cancellation mid-scan surfaces the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s2, _ := New(Config{Targets: part, Prober: prober, Seed: 1, Rate: 10, Burst: 1})
	if _, err := s2.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled run: %v", err)
	}
}

func TestScannerErrorAccounting(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/26")})
	inner, _ := NewSimProber(nil, 0, 1)
	s, err := New(Config{
		Targets: part,
		Prober:  &FlakyProber{Inner: inner, FailEvery: 4},
		Workers: 1,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 16 {
		t.Errorf("errors %d, want 16 (64 probes / 4)", report.Errors)
	}
}

// ctxProber models a real network prober: handed a dead context it
// fails, as any socket operation would. It cancels the run after n
// successful probes.
type ctxProber struct {
	n      *int
	limit  int
	cancel context.CancelFunc
}

func (p ctxProber) Probe(ctx context.Context, addr netaddr.Addr) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{Addr: addr}, err
	}
	*p.n++
	if *p.n == p.limit {
		p.cancel()
	}
	return Result{Addr: addr}, nil
}

// TestScannerCancelNoSpuriousErrors is the cancellation-accounting
// regression test: once the run error is set, no further target may be
// probed with a dead context. The channel-fed engine kept probing every
// enqueued target after cancellation, inflating Report.Errors by up to
// Workers*2 spurious failures; the sharded engine stops each worker at
// its next draw, so a canceled run reports Errors == 0.
func TestScannerCancelNoSpuriousErrors(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/24")})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	s, err := New(Config{
		Targets: part,
		Prober:  ctxProber{n: &n, limit: 40, cancel: cancel},
		Workers: 1, // single worker: the stop is observed deterministically
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v", err)
	}
	if report.Errors != 0 {
		t.Errorf("canceled run reported %d spurious errors", report.Errors)
	}
	if report.Probed != 40 {
		t.Errorf("probed %d targets, want exactly 40 (none after cancellation)", report.Probed)
	}
}

// TestScannerPreCanceledRunProbesNothing: a context canceled before Run
// must not transmit a single probe, even with burst tokens available.
func TestScannerPreCanceledRunProbesNothing(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/24")})
	prober, _ := NewSimProber(nil, 0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := New(Config{Targets: part, Prober: prober, Workers: 4, Seed: 1, Rate: 1000, Burst: 64})
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run returned %v", err)
	}
	if report.Probed != 0 || report.Errors != 0 {
		t.Errorf("pre-canceled run probed %d, errored %d; want 0, 0", report.Probed, report.Errors)
	}
}

// TestScannerExclusionsConsumeNothing proves excluded targets consume
// neither rate tokens nor the Probed counter: with every non-excluded
// target covered by the burst, the limiter never sleeps.
func TestScannerExclusionsConsumeNothing(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/26")}) // 64 addrs
	prober, _ := NewSimProber(nil, 0, 1)
	s, err := New(Config{
		Targets: part,
		Prober:  prober,
		Workers: 2,
		Seed:    4,
		Rate:    1, // one token per second: any excess token use would sleep
		Burst:   16,
		Exclude: []netaddr.Prefix{pfx("10.0.0.16/28"), pfx("10.0.0.32/27")}, // 48 of 64
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	var sleeps atomic.Int64
	s.limiter.now = clock.now
	s.limiter.sleep = func(ctx context.Context, d time.Duration) error {
		sleeps.Add(1)
		clock.advance(d)
		return nil
	}
	report, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.Excluded != 48 || report.Probed != 16 {
		t.Fatalf("excluded %d probed %d, want 48 and 16", report.Excluded, report.Probed)
	}
	if n := sleeps.Load(); n != 0 {
		t.Errorf("limiter slept %d times: excluded targets consumed rate tokens", n)
	}
}

func TestScannerOnResultCallback(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/28")})
	prober, _ := NewSimProber([]netaddr.Addr{netaddr.MustParseAddr("10.0.0.3")}, 0, 1)
	var mu struct {
		n    int
		open int
		m    chan struct{}
	}
	results := make(chan Result, 16)
	s, err := New(Config{
		Targets:  part,
		Prober:   prober,
		Seed:     1,
		OnResult: func(r Result) { results <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(results)
	for r := range results {
		mu.n++
		if r.Open {
			mu.open++
		}
	}
	if mu.n != 16 || mu.open != 1 {
		t.Errorf("callback saw %d results, %d open", mu.n, mu.open)
	}
}

func TestScannerConfigErrors(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/24")})
	prober, _ := NewSimProber(nil, 0, 1)
	if _, err := New(Config{Prober: prober}); err == nil {
		t.Error("no targets accepted")
	}
	if _, err := New(Config{Targets: part}); err == nil {
		t.Error("no prober accepted")
	}
}

func TestTCPProberAgainstLocalListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			fmt.Fprint(conn, "220 synthetic FTP ready\r\n")
			conn.Close()
		}
	}()
	port := ln.Addr().(*net.TCPAddr).Port
	prober := &TCPProber{Port: port, Timeout: 2 * time.Second, BannerBytes: 64}
	addr := netaddr.MustParseAddr("127.0.0.1")

	res, err := prober.Probe(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Open {
		t.Fatal("local listener reported closed")
	}
	if !strings.HasPrefix(string(res.Banner), "220") {
		t.Errorf("banner %q", res.Banner)
	}

	// A port with (almost certainly) no listener reports closed, not error.
	closedProber := &TCPProber{Port: 1, Timeout: 200 * time.Millisecond}
	res, err = closedProber.Probe(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Open {
		t.Skip("something actually listens on port 1; skipping closed-port assertion")
	}
}

func TestScannerWithTCPProberEndToEnd(t *testing.T) {
	// Full engine over loopback: a /30 target partition where exactly one
	// address (127.0.0.1) has a listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	port := ln.Addr().(*net.TCPAddr).Port
	part, err := rib.NewPartition([]netaddr.Prefix{pfx("127.0.0.0/30")})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Targets: part,
		Prober:  &TCPProber{Port: port, Timeout: 300 * time.Millisecond},
		Workers: 4,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range report.Responsive {
		if a == netaddr.MustParseAddr("127.0.0.1") {
			found = true
		}
	}
	if !found {
		t.Errorf("scanner missed the loopback listener: %v", report.Responsive)
	}
}

func TestParseExclusions(t *testing.T) {
	input := `# operator blocklist
10.0.0.0/8
192.0.2.1      # single address

198.51.100.0/24	# trailing comment`
	got, err := ParseExclusions(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"10.0.0.0/8", "192.0.2.1/32", "198.51.100.0/24"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i, w := range want {
		if got[i].String() != w {
			t.Errorf("exclusion %d = %v, want %s", i, got[i], w)
		}
	}
	if _, err := ParseExclusions(strings.NewReader("not-a-prefix")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestParseExclusionsEdgeCases(t *testing.T) {
	t.Run("comment-only and blank lines", func(t *testing.T) {
		got, err := ParseExclusions(strings.NewReader("# only comments\n\n   \n#another\n"))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("comment-only input produced %v", got)
		}
	})
	t.Run("bare addresses become /32", func(t *testing.T) {
		got, err := ParseExclusions(strings.NewReader("192.0.2.7\n  10.1.2.3  \n"))
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"192.0.2.7/32", "10.1.2.3/32"}
		if len(got) != len(want) {
			t.Fatalf("got %v", got)
		}
		for i, w := range want {
			if got[i].String() != w {
				t.Errorf("exclusion %d = %v, want %s", i, got[i], w)
			}
		}
	})
	t.Run("CRLF line endings", func(t *testing.T) {
		got, err := ParseExclusions(strings.NewReader("10.0.0.0/8\r\n192.0.2.1\r\n# comment\r\n"))
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"10.0.0.0/8", "192.0.2.1/32"}
		if len(got) != len(want) {
			t.Fatalf("got %v", got)
		}
		for i, w := range want {
			if got[i].String() != w {
				t.Errorf("exclusion %d = %v, want %s", i, got[i], w)
			}
		}
	})
	t.Run("invalid CIDR reports its line number", func(t *testing.T) {
		input := "# header\n10.0.0.0/8\n\n10.0.0.0/33\n"
		_, err := ParseExclusions(strings.NewReader(input))
		if err == nil {
			t.Fatal("invalid CIDR accepted")
		}
		if !strings.Contains(err.Error(), "line 4") {
			t.Errorf("error %q does not name line 4", err)
		}
	})
	t.Run("empty input", func(t *testing.T) {
		got, err := ParseExclusions(strings.NewReader(""))
		if err != nil || len(got) != 0 {
			t.Errorf("empty input: %v, %v", got, err)
		}
	})
}

func TestRateLimitedScanDuration(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/28")}) // 16 addrs
	prober, _ := NewSimProber(nil, 0, 1)
	s, err := New(Config{Targets: part, Prober: prober, Rate: 200, Burst: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	report, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if report.Probed != 16 {
		t.Fatalf("probed %d", report.Probed)
	}
	// 16 probes at 200/s with burst 1 needs ≥ ~70ms.
	if elapsed < 50*time.Millisecond {
		t.Errorf("rate-limited scan finished in %v", elapsed)
	}
}

func BenchmarkPermutationNext(b *testing.B) {
	pm, err := NewPermutation(1<<30, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := pm.Next(); !ok {
			pm.Reset()
		}
	}
}

func BenchmarkScannerSim(b *testing.B) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/16")})
	var live []netaddr.Addr
	for i := 0; i < 1000; i++ {
		live = append(live, netaddr.Addr(0x0A000000+i*17))
	}
	prober, _ := NewSimProber(live, 0.02, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(Config{Targets: part, Prober: prober, Workers: 8, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
