package scan

import (
	"context"
	"testing"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// campaignFixture: a universe of four /24s where hosts live almost
// entirely in two of them — the shape TASS exploits.
func campaignFixture(t *testing.T) (rib.Partition, []netaddr.Addr) {
	t.Helper()
	uni, err := rib.NewPartition([]netaddr.Prefix{
		pfx("10.0.0.0/24"), pfx("10.0.1.0/24"), pfx("10.0.2.0/24"), pfx("10.0.3.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var live []netaddr.Addr
	for i := 0; i < 100; i++ { // dense /24s
		live = append(live, netaddr.MustParseAddr("10.0.0.0")+netaddr.Addr(i*2))
		live = append(live, netaddr.MustParseAddr("10.0.2.0")+netaddr.Addr(i*2))
	}
	live = append(live, netaddr.MustParseAddr("10.0.1.77")) // stragglers
	live = append(live, netaddr.MustParseAddr("10.0.3.99"))
	return uni, live
}

// TestCampaignFeedbackTightensPlan runs the scan→census→select loop and
// checks that cycle 0's full scan seeds a selection that shrinks the
// plan, and that later cycles keep finding the covered hosts.
func TestCampaignFeedbackTightensPlan(t *testing.T) {
	uni, live := campaignFixture(t)
	prober, err := NewSimProber(live, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := &Campaign{
		Universe: uni,
		Prober:   prober,
		Opts:     core.Options{Phi: 0.9},
		Workers:  4,
		Seed:     5,
		Cache:    census.NewCountCache(),
		Protocol: "test",
	}
	cycles, err := c.Run(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 3 {
		t.Fatalf("%d cycles, want 3", len(cycles))
	}

	c0 := cycles[0]
	if c0.Plan.AddressCount() != uni.AddressCount() {
		t.Errorf("cycle 0 scanned %d addresses, want the full universe %d",
			c0.Plan.AddressCount(), uni.AddressCount())
	}
	if c0.Report.Probed != uni.AddressCount() {
		t.Errorf("cycle 0 probed %d, want %d", c0.Report.Probed, uni.AddressCount())
	}
	if c0.Snapshot.Hosts() != len(live) {
		t.Errorf("lossless seed scan found %d hosts, want %d", c0.Snapshot.Hosts(), len(live))
	}

	// The feedback: cycles 1+ scan the tightened selection (the two
	// dense /24s cover 200/202 hosts > φ=0.9).
	for _, cy := range cycles[1:] {
		if cy.Plan.AddressCount() >= uni.AddressCount() {
			t.Errorf("cycle %d plan did not tighten: %d addresses", cy.Index, cy.Plan.AddressCount())
		}
		if cy.Plan.Len() != 2 {
			t.Errorf("cycle %d plan has %d prefixes, want the 2 dense /24s", cy.Index, cy.Plan.Len())
		}
		if cy.Report.Probed != cy.Plan.AddressCount() {
			t.Errorf("cycle %d probed %d of a %d-address plan", cy.Index, cy.Report.Probed, cy.Plan.AddressCount())
		}
		if cy.Snapshot.Hosts() != 200 {
			t.Errorf("cycle %d found %d hosts inside the selection, want 200", cy.Index, cy.Snapshot.Hosts())
		}
	}

	// Evaluation helpers.
	truth := census.NewSnapshot("test", 0, live)
	if hr := cycles[1].Hitrate(truth); hr < 0.98*200/202.0 || hr > 1 {
		t.Errorf("cycle 1 hitrate vs truth = %v", hr)
	}
	if cs := cycles[1].CostShare(uni); cs != 0.5 {
		t.Errorf("cycle 1 cost share = %v, want 0.5 (2 of 4 /24s)", cs)
	}
}

// TestCampaignDeterministicAcrossWorkers: the cycles' snapshots and
// selections are identical at any worker count — the golden-equality
// property the scan-in-the-loop experiment relies on.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	uni, live := campaignFixture(t)
	run := func(workers int) []Cycle {
		prober, err := NewSimProber(live, 0.2, 11) // lossy, deterministic per address
		if err != nil {
			t.Fatal(err)
		}
		c := &Campaign{
			Universe: uni,
			Prober:   prober,
			Opts:     core.Options{Phi: 0.95},
			Workers:  workers,
			Seed:     13,
		}
		cycles, err := c.Run(context.Background(), 3)
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	golden := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range golden {
			g, h := golden[i], got[i]
			if len(g.Snapshot.Addrs) != len(h.Snapshot.Addrs) {
				t.Fatalf("workers=%d cycle %d: %d vs %d hosts", workers, i, len(h.Snapshot.Addrs), len(g.Snapshot.Addrs))
			}
			for j := range g.Snapshot.Addrs {
				if g.Snapshot.Addrs[j] != h.Snapshot.Addrs[j] {
					t.Fatalf("workers=%d cycle %d addr %d differs", workers, i, j)
				}
			}
			if g.Selection.K != h.Selection.K || g.Selection.Space != h.Selection.Space {
				t.Fatalf("workers=%d cycle %d: selection K=%d space=%d, want K=%d space=%d",
					workers, i, h.Selection.K, h.Selection.Space, g.Selection.K, g.Selection.Space)
			}
		}
	}
}

// TestCampaignIncrementalGoldenEquality: an incremental campaign
// (ranking repaired by each cycle's scan-result delta) produces cycle
// outputs byte-identical to the full per-cycle recompute — snapshots,
// complete rankings and plans — including under probe loss, which makes
// every cycle's responsive set churn.
func TestCampaignIncrementalGoldenEquality(t *testing.T) {
	uni, live := campaignFixture(t)
	run := func(incremental bool, loss float64, workers int) []Cycle {
		prober, err := NewSimProber(live, loss, 17)
		if err != nil {
			t.Fatal(err)
		}
		c := &Campaign{
			Universe:    uni,
			Prober:      prober,
			Opts:        core.Options{Phi: 0.9},
			Workers:     workers,
			Seed:        23,
			Cache:       census.NewCountCache(),
			Incremental: incremental,
		}
		cycles, err := c.Run(context.Background(), 4)
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	for _, loss := range []float64{0, 0.25} {
		for _, workers := range []int{1, 2, 8} {
			full := run(false, loss, workers)
			inc := run(true, loss, workers)
			for i := range full {
				f, g := full[i], inc[i]
				if len(f.Snapshot.Addrs) != len(g.Snapshot.Addrs) {
					t.Fatalf("loss=%v workers=%d cycle %d: %d vs %d hosts", loss, workers, i,
						len(g.Snapshot.Addrs), len(f.Snapshot.Addrs))
				}
				for j := range f.Snapshot.Addrs {
					if f.Snapshot.Addrs[j] != g.Snapshot.Addrs[j] {
						t.Fatalf("loss=%v workers=%d cycle %d: snapshot addr %d differs", loss, workers, i, j)
					}
				}
				fs, gs := f.Selection, g.Selection
				if fs.K != gs.K || fs.SeedHosts != gs.SeedHosts || fs.Space != gs.Space ||
					fs.HostCoverage != gs.HostCoverage || fs.SpaceShare != gs.SpaceShare {
					t.Fatalf("loss=%v workers=%d cycle %d: selection header diverged", loss, workers, i)
				}
				if len(fs.Ranked) != len(gs.Ranked) {
					t.Fatalf("loss=%v workers=%d cycle %d: ranking length %d vs %d",
						loss, workers, i, len(gs.Ranked), len(fs.Ranked))
				}
				for j := range fs.Ranked {
					if fs.Ranked[j] != gs.Ranked[j] {
						t.Fatalf("loss=%v workers=%d cycle %d: rank %d diverged", loss, workers, i, j)
					}
				}
				fp, gp := f.Plan.Prefixes(), g.Plan.Prefixes()
				if len(fp) != len(gp) {
					t.Fatalf("loss=%v workers=%d cycle %d: plan sizes diverge", loss, workers, i)
				}
				for j := range fp {
					if fp[j] != gp[j] {
						t.Fatalf("loss=%v workers=%d cycle %d: plan prefix %d diverged", loss, workers, i, j)
					}
				}
			}
		}
	}
}

// TestCampaignProberAt steps the prober per cycle (the churning-truth
// hook the experiment uses).
func TestCampaignProberAt(t *testing.T) {
	uni, live := campaignFixture(t)
	calls := make([]int, 0, 2)
	c := &Campaign{
		Universe: uni,
		ProberAt: func(cycle int) Prober {
			calls = append(calls, cycle)
			p, _ := NewSimProber(live, 0, int64(cycle+1))
			return p
		},
		Opts: core.Options{Phi: 0.9},
		Seed: 2,
	}
	if _, err := c.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != 0 || calls[1] != 1 {
		t.Errorf("ProberAt called with %v, want [0 1]", calls)
	}
}

func TestCampaignValidation(t *testing.T) {
	uni, live := campaignFixture(t)
	prober, _ := NewSimProber(live, 0, 1)
	if _, err := (&Campaign{Prober: prober}).Run(context.Background(), 1); err == nil {
		t.Error("campaign without universe accepted")
	}
	if _, err := (&Campaign{Universe: uni}).Run(context.Background(), 1); err == nil {
		t.Error("campaign without prober accepted")
	}
	if _, err := (&Campaign{Universe: uni, Prober: prober}).Run(context.Background(), 0); err == nil {
		t.Error("zero cycles accepted")
	}

	// A scan that finds nothing cannot seed a selection: the campaign
	// surfaces the error with the cycles completed so far.
	dead, _ := NewSimProber(nil, 0, 1)
	cycles, err := (&Campaign{Universe: uni, Prober: dead, Opts: core.Options{Phi: 0.9}}).Run(context.Background(), 2)
	if err == nil {
		t.Error("empty scan seeded a selection")
	}
	if len(cycles) != 0 {
		t.Errorf("%d cycles returned from a failed seed scan", len(cycles))
	}
}
