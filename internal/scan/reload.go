package scan

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"
)

// ExclusionReloader keeps a running scanner's exclusion list current
// with an on-disk file — the operational loop behind abuse handling: an
// opt-out or complaint lands in the exclusion file and takes effect
// mid-cycle, without restarting (or re-checkpointing) the scan.
//
// The reloader polls by mtime/size (no inotify dependency) and swaps the
// parsed list into the scanner atomically via Scanner.SetExclusions;
// in-flight workers pick it up on their next draw. A file that fails to
// parse — or briefly disappears during an atomic rename — keeps the
// previous list: reloads only ever move forward to a fully parsed file.
type ExclusionReloader struct {
	// OnReload, when set, observes every completed reload: n is the
	// number of exclusion prefixes now active. It also observes reload
	// failures (err != nil, n < 0). Calls are serialized.
	OnReload func(n int, err error)

	s        *Scanner
	path     string
	interval time.Duration
	sleep    func(ctx context.Context, d time.Duration) error // injectable for tests

	mu     sync.Mutex
	loaded bool
	mtime  time.Time
	size   int64
}

// NewExclusionReloader builds a reloader feeding s from path every
// interval (default 5s). Run starts the polling loop; Poll performs a
// single check (e.g. on SIGHUP).
func NewExclusionReloader(s *Scanner, path string, interval time.Duration) *ExclusionReloader {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	return &ExclusionReloader{s: s, path: path, interval: interval, sleep: timerSleep}
}

// Poll checks the file once and swaps the exclusion list in if it
// changed since the last successful load. It reports whether a reload
// happened. A missing or unparseable file leaves the current list
// untouched and returns the error.
func (r *ExclusionReloader) Poll() (reloaded bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fi, err := os.Stat(r.path)
	if err != nil {
		return false, err
	}
	if r.loaded && fi.ModTime().Equal(r.mtime) && fi.Size() == r.size {
		return false, nil
	}
	f, err := os.Open(r.path)
	if err != nil {
		return false, err
	}
	ps, err := ParseExclusions(f)
	f.Close()
	if err != nil {
		return false, fmt.Errorf("scan: reloading %s: %w", r.path, err)
	}
	r.s.SetExclusions(ps)
	r.loaded, r.mtime, r.size = true, fi.ModTime(), fi.Size()
	return true, nil
}

// Run polls until the context is canceled, reporting each reload (and
// each failed poll) to OnReload. It returns the context's error.
func (r *ExclusionReloader) Run(ctx context.Context) error {
	for {
		if err := r.sleep(ctx, r.interval); err != nil {
			return err
		}
		reloaded, err := r.Poll()
		if r.OnReload != nil {
			if err != nil {
				r.OnReload(-1, err)
			} else if reloaded {
				r.OnReload(r.s.ExclusionCount(), nil)
			}
		}
	}
}
