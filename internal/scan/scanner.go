package scan

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
	"github.com/tass-scan/tass/internal/trie"
)

// Config parameterizes a scan run.
type Config struct {
	// Targets is the scan plan: a disjoint prefix set (a TASS selection,
	// or the full announced space).
	Targets rib.Partition
	// Prober performs the probes.
	Prober Prober
	// Rate, when positive, caps probes per second.
	Rate float64
	// Burst is the limiter burst size (default 64).
	Burst int
	// Workers is the number of concurrent probe workers (default 16).
	Workers int
	// Seed drives the target permutation.
	Seed int64
	// Shard and Shards split the permutation cycle across scanner
	// instances, ZMap-style: an instance configured as shard i of n
	// probes exactly the cycle positions ≡ i (mod n), so n instances (on
	// one machine or many) cover the target space exactly once with no
	// coordination beyond agreeing on (Seed, Shards). Defaults to the
	// whole cycle (Shard 0 of 1). Within an instance, its shard is
	// subdivided again so every worker owns a private slice.
	Shard, Shards int
	// Exclude lists prefixes never to probe (operator blocklist).
	Exclude []netaddr.Prefix
	// MaxProbes, when positive, stops the scan after that many probes
	// (sampling mode).
	MaxProbes uint64
	// OnResult, when set, receives every result (including closed ones)
	// from worker goroutines; it must be safe for concurrent calls.
	OnResult func(Result)
}

// Report summarizes a completed scan cycle.
type Report struct {
	// Probed counts transmitted probes (exclusion hits don't count).
	Probed uint64
	// Excluded counts targets skipped by the exclusion list.
	Excluded uint64
	// Errors counts probe invocations that failed outright.
	Errors uint64
	// Responsive is the sorted set of addresses with successful
	// handshakes.
	Responsive []netaddr.Addr
	// Elapsed is the wall-clock scan duration.
	Elapsed time.Duration
}

// Hitrate returns successful handshakes per probe, the efficiency metric
// of the paper.
func (r *Report) Hitrate() float64 {
	if r.Probed == 0 {
		return 0
	}
	return float64(len(r.Responsive)) / float64(r.Probed)
}

// Scanner executes scan cycles over a fixed target set.
//
// Run gives every worker a private shard of the target permutation
// (Permutation.Shard), so there is no feeder goroutine and no channel
// handoff: each worker iterates, probes and buffers results locally, and
// the per-worker buffers are merged once at the end. Counter updates are
// atomic; nothing on the per-probe path takes a lock beyond the optional
// rate limiter.
type Scanner struct {
	cfg     Config
	cum     []uint64 // cumulative target sizes for index→address mapping
	exclude *trie.Trie[struct{}]
	limiter *Limiter

	mu     sync.Mutex
	shards []*Shard    // worker shards of the most recent Run
	resume *Checkpoint // pending cursor state for the next Run
}

// New validates the configuration and builds a Scanner.
func New(cfg Config) (*Scanner, error) {
	if cfg.Targets.Len() == 0 {
		return nil, fmt.Errorf("scan: no targets")
	}
	if cfg.Prober == nil {
		return nil, fmt.Errorf("scan: no prober")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 64
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
		return nil, fmt.Errorf("scan: shard %d of %d out of range", cfg.Shard, cfg.Shards)
	}
	s := &Scanner{cfg: cfg}
	s.cum = make([]uint64, cfg.Targets.Len())
	var cum uint64
	for i := 0; i < cfg.Targets.Len(); i++ {
		cum += cfg.Targets.Prefix(i).NumAddresses()
		s.cum[i] = cum
	}
	if len(cfg.Exclude) > 0 {
		s.exclude = trie.New[struct{}]()
		for _, p := range cfg.Exclude {
			s.exclude.Insert(p, struct{}{})
		}
	}
	if cfg.Rate > 0 {
		lim, err := NewLimiter(cfg.Rate, cfg.Burst)
		if err != nil {
			return nil, err
		}
		s.limiter = lim
	}
	return s, nil
}

// addrAt maps a permutation index to the target address space. It runs
// once per probe on every worker, so the binary search is hand-rolled:
// sort.Search's closure call costs more than the whole loop here.
func (s *Scanner) addrAt(idx uint64) netaddr.Addr {
	cum := s.cum
	lo, hi := 0, len(cum) // first i with cum[i] > idx
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cum[mid] > idx {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	p := s.cfg.Targets.Prefix(lo)
	off := idx
	if lo > 0 {
		off -= cum[lo-1]
	}
	return p.First() + netaddr.Addr(off)
}

// Run executes one scan cycle: every target address owned by the
// configured shard is probed exactly once, in permuted order, honoring
// rate limit, exclusions and context cancellation. A canceled run stops
// probing immediately — addresses not yet probed are left for a resumed
// cycle (see Checkpoint) and never probed with a dead context.
func (s *Scanner) Run(ctx context.Context) (*Report, error) {
	perm, err := NewPermutation(s.cfg.Targets.AddressCount(), s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	workers := s.cfg.Workers
	// Worker w owns global shard (Shard + w·Shards) of (Shards·Workers):
	// sub-sharding composes, so the union over this instance's workers is
	// exactly the instance's top-level shard of the cycle.
	shards := make([]*Shard, workers)
	for w := 0; w < workers; w++ {
		sh, err := perm.Shard(s.cfg.Shard+w*s.cfg.Shards, s.cfg.Shards*workers)
		if err != nil {
			return nil, err
		}
		shards[w] = sh
	}
	s.mu.Lock()
	if cp := s.resume; cp != nil {
		s.resume = nil
		s.mu.Unlock()
		if err := cp.validate(s.cfg, perm.N()); err != nil {
			return nil, err
		}
		for w := range shards {
			if err := shards[w].Skip(cp.Consumed[w]); err != nil {
				return nil, err
			}
		}
		s.mu.Lock()
	}
	s.shards = shards
	s.mu.Unlock()

	start := time.Now()
	var (
		probed, excluded, errors atomic.Uint64
		stop                     atomic.Bool // set on the first run error
		errOnce                  sync.Once
		runErr                   error
	)
	fail := func(err error) {
		errOnce.Do(func() { runErr = err })
		stop.Store(true)
	}

	responsive := make([][]netaddr.Addr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := shards[w]
			var local []netaddr.Addr
			// Per-worker tallies, flushed into the shared atomics once at
			// exit: the per-probe path touches no shared cache line. Only
			// the MaxProbes budget needs a live shared counter.
			var nProbed, nExcluded, nErrors uint64
			for !stop.Load() {
				idx, ok := sh.Next()
				if !ok {
					break
				}
				addr := s.addrAt(idx)
				if s.exclude != nil {
					if _, _, hit := s.exclude.Lookup(addr); hit {
						// Exclusion hits consume neither a rate token nor
						// a probe: only transmitted probes are accounted.
						nExcluded++
						continue
					}
				}
				if err := ctx.Err(); err != nil {
					sh.rewind() // drawn but not probed
					fail(err)
					break
				}
				if s.limiter != nil {
					if err := s.limiter.Wait(ctx); err != nil {
						sh.rewind()
						fail(err)
						break
					}
				}
				if s.cfg.MaxProbes > 0 && !reserveProbe(&probed, s.cfg.MaxProbes) {
					sh.rewind()
					break
				}
				res, err := s.cfg.Prober.Probe(ctx, addr)
				if s.cfg.MaxProbes == 0 {
					nProbed++
				}
				if err != nil {
					nErrors++
					continue
				}
				if s.cfg.OnResult != nil {
					s.cfg.OnResult(res)
				}
				if res.Open {
					local = append(local, res.Addr)
				}
			}
			probed.Add(nProbed)
			excluded.Add(nExcluded)
			errors.Add(nErrors)
			responsive[w] = local
		}(w)
	}
	wg.Wait()

	report := &Report{
		Probed:   probed.Load(),
		Excluded: excluded.Load(),
		Errors:   errors.Load(),
	}
	total := 0
	for _, buf := range responsive {
		total += len(buf)
	}
	report.Responsive = make([]netaddr.Addr, 0, total)
	for _, buf := range responsive {
		report.Responsive = append(report.Responsive, buf...)
	}
	sort.Slice(report.Responsive, func(i, j int) bool {
		return report.Responsive[i] < report.Responsive[j]
	})
	report.Elapsed = time.Since(start)
	return report, runErr
}

// reserveProbe claims one probe slot under the max budget; it reports
// false once the budget is spent, without ever overshooting.
func reserveProbe(probed *atomic.Uint64, max uint64) bool {
	for {
		cur := probed.Load()
		if cur >= max {
			return false
		}
		if probed.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// ParseExclusions reads a ZMap-style exclusion file: one CIDR prefix or
// bare address per line, '#' comments and blank lines ignored.
func ParseExclusions(r io.Reader) ([]netaddr.Prefix, error) {
	sc := bufio.NewScanner(r)
	var out []netaddr.Prefix
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if !strings.ContainsRune(text, '/') {
			text += "/32"
		}
		p, err := netaddr.ParsePrefix(text)
		if err != nil {
			return nil, fmt.Errorf("scan: exclusion line %d: %w", line, err)
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan: reading exclusions: %w", err)
	}
	return out, nil
}
