package scan

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
	"github.com/tass-scan/tass/internal/trie"
)

// Config parameterizes a scan run.
type Config struct {
	// Targets is the scan plan: a disjoint prefix set (a TASS selection,
	// or the full announced space).
	Targets rib.Partition
	// Prober performs the probes.
	Prober Prober
	// Rate, when positive, caps probes per second.
	Rate float64
	// Burst is the limiter burst size (default 64).
	Burst int
	// Workers is the number of concurrent probe workers (default 16).
	Workers int
	// Seed drives the target permutation.
	Seed int64
	// Exclude lists prefixes never to probe (operator blocklist).
	Exclude []netaddr.Prefix
	// MaxProbes, when positive, stops the scan after that many probes
	// (sampling mode).
	MaxProbes uint64
	// OnResult, when set, receives every result (including closed ones)
	// from worker goroutines; it must be safe for concurrent calls.
	OnResult func(Result)
}

// Report summarizes a completed scan cycle.
type Report struct {
	// Probed counts transmitted probes (exclusion hits don't count).
	Probed uint64
	// Excluded counts targets skipped by the exclusion list.
	Excluded uint64
	// Errors counts probe invocations that failed outright.
	Errors uint64
	// Responsive is the sorted set of addresses with successful
	// handshakes.
	Responsive []netaddr.Addr
	// Elapsed is the wall-clock scan duration.
	Elapsed time.Duration
}

// Hitrate returns successful handshakes per probe, the efficiency metric
// of the paper.
func (r *Report) Hitrate() float64 {
	if r.Probed == 0 {
		return 0
	}
	return float64(len(r.Responsive)) / float64(r.Probed)
}

// Scanner executes scan cycles over a fixed target set.
type Scanner struct {
	cfg     Config
	cum     []uint64 // cumulative target sizes for index→address mapping
	exclude *trie.Trie[struct{}]
	limiter *Limiter
}

// New validates the configuration and builds a Scanner.
func New(cfg Config) (*Scanner, error) {
	if cfg.Targets.Len() == 0 {
		return nil, fmt.Errorf("scan: no targets")
	}
	if cfg.Prober == nil {
		return nil, fmt.Errorf("scan: no prober")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 64
	}
	s := &Scanner{cfg: cfg}
	s.cum = make([]uint64, cfg.Targets.Len())
	var cum uint64
	for i := 0; i < cfg.Targets.Len(); i++ {
		cum += cfg.Targets.Prefix(i).NumAddresses()
		s.cum[i] = cum
	}
	if len(cfg.Exclude) > 0 {
		s.exclude = trie.New[struct{}]()
		for _, p := range cfg.Exclude {
			s.exclude.Insert(p, struct{}{})
		}
	}
	if cfg.Rate > 0 {
		lim, err := NewLimiter(cfg.Rate, cfg.Burst)
		if err != nil {
			return nil, err
		}
		s.limiter = lim
	}
	return s, nil
}

// addrAt maps a permutation index to the target address space.
func (s *Scanner) addrAt(idx uint64) netaddr.Addr {
	i := sort.Search(len(s.cum), func(i int) bool { return s.cum[i] > idx })
	p := s.cfg.Targets.Prefix(i)
	off := idx
	if i > 0 {
		off -= s.cum[i-1]
	}
	return p.First() + netaddr.Addr(off)
}

// Run executes one full scan cycle: every target address is probed
// exactly once, in permuted order, honoring rate limit, exclusions and
// context cancellation.
func (s *Scanner) Run(ctx context.Context) (*Report, error) {
	perm, err := NewPermutation(s.cfg.Targets.AddressCount(), s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	report := &Report{}

	targets := make(chan netaddr.Addr, s.cfg.Workers*2)
	var mu sync.Mutex // guards report.Responsive / Errors
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for addr := range targets {
				res, err := s.cfg.Prober.Probe(ctx, addr)
				if err != nil {
					mu.Lock()
					report.Errors++
					mu.Unlock()
					continue
				}
				if s.cfg.OnResult != nil {
					s.cfg.OnResult(res)
				}
				if res.Open {
					mu.Lock()
					report.Responsive = append(report.Responsive, res.Addr)
					mu.Unlock()
				}
			}
		}()
	}

	var runErr error
feed:
	for {
		idx, ok := perm.Next()
		if !ok {
			break
		}
		addr := s.addrAt(idx)
		if s.exclude != nil {
			if _, _, hit := s.exclude.Lookup(addr); hit {
				report.Excluded++
				continue
			}
		}
		if s.limiter != nil {
			if err := s.limiter.Wait(ctx); err != nil {
				runErr = err
				break feed
			}
		} else if ctx.Err() != nil {
			runErr = ctx.Err()
			break feed
		}
		select {
		case targets <- addr:
			report.Probed++
		case <-ctx.Done():
			runErr = ctx.Err()
			break feed
		}
		if s.cfg.MaxProbes > 0 && report.Probed >= s.cfg.MaxProbes {
			break feed
		}
	}
	close(targets)
	wg.Wait()

	sort.Slice(report.Responsive, func(i, j int) bool {
		return report.Responsive[i] < report.Responsive[j]
	})
	report.Elapsed = time.Since(start)
	return report, runErr
}

// ParseExclusions reads a ZMap-style exclusion file: one CIDR prefix or
// bare address per line, '#' comments and blank lines ignored.
func ParseExclusions(r io.Reader) ([]netaddr.Prefix, error) {
	sc := bufio.NewScanner(r)
	var out []netaddr.Prefix
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if !strings.ContainsRune(text, '/') {
			text += "/32"
		}
		p, err := netaddr.ParsePrefix(text)
		if err != nil {
			return nil, fmt.Errorf("scan: exclusion line %d: %w", line, err)
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan: reading exclusions: %w", err)
	}
	return out, nil
}
