package scan

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
	"github.com/tass-scan/tass/internal/trie"
)

// Config parameterizes a scan run.
type Config struct {
	// Targets is the scan plan: a disjoint prefix set (a TASS selection,
	// or the full announced space).
	Targets rib.Partition
	// Prober performs the probes.
	Prober Prober
	// Rate, when positive, caps probes per second.
	Rate float64
	// Burst is the limiter burst size (default 64).
	Burst int
	// Workers is the number of concurrent probe workers (default 16).
	Workers int
	// Seed drives the target permutation.
	Seed int64
	// Shard and Shards split the permutation cycle across scanner
	// instances, ZMap-style: an instance configured as shard i of n
	// probes exactly the cycle positions ≡ i (mod n), so n instances (on
	// one machine or many) cover the target space exactly once with no
	// coordination beyond agreeing on (Seed, Shards). Defaults to the
	// whole cycle (Shard 0 of 1). Within an instance, its shard is
	// subdivided again so every worker owns a private slice.
	Shard, Shards int
	// Exclude lists prefixes never to probe (operator blocklist). The
	// list can be swapped while a cycle runs (SetExclusions, or an
	// ExclusionReloader polling the file): addresses drawn after the
	// swap — including ones re-drawn by a resumed cycle — are counted
	// as Excluded and never probed.
	Exclude []netaddr.Prefix
	// MaxProbes, when positive, stops the scan after that many probes
	// (sampling mode).
	MaxProbes uint64
	// Politeness layers per-origin-AS and per-prefix pacing, adaptive
	// backoff, probe budgets and footprint telemetry under the global
	// rate. The zero value changes nothing.
	Politeness Politeness
	// OnResult, when set, receives every result (including closed ones)
	// from worker goroutines; it must be safe for concurrent calls.
	OnResult func(Result)
}

// Report summarizes a completed scan cycle.
type Report struct {
	// Probed counts transmitted probes (exclusion hits don't count).
	Probed uint64
	// Excluded counts targets skipped by the exclusion list.
	Excluded uint64
	// Errors counts probe invocations that failed outright.
	Errors uint64
	// BudgetDenied counts targets skipped because their origin AS had
	// exhausted its probe budget (Politeness.ASBudget).
	BudgetDenied uint64
	// Responsive is the sorted set of addresses with successful
	// handshakes.
	Responsive []netaddr.Addr
	// PerAS is the per-origin-AS footprint breakdown, keyed by AS
	// number; nil unless the scan ran with per-AS accounting. Probed is
	// cumulative across the interrupted runs of one cycle (it rides in
	// the checkpoint to enforce budgets); the other fields count this
	// run only.
	PerAS map[uint32]ASStat
	// Elapsed is the wall-clock scan duration.
	Elapsed time.Duration
}

// Hitrate returns successful handshakes per probe, the efficiency metric
// of the paper.
func (r *Report) Hitrate() float64 {
	if r.Probed == 0 {
		return 0
	}
	return float64(len(r.Responsive)) / float64(r.Probed)
}

// Scanner executes scan cycles over a fixed target set.
//
// Run gives every worker a private shard of the target permutation
// (Permutation.Shard), so there is no feeder goroutine and no channel
// handoff: each worker iterates, probes and buffers results locally, and
// the per-worker buffers are merged once at the end. Counter updates are
// atomic; nothing on the per-probe path takes a lock beyond the optional
// rate limiter.
type Scanner struct {
	cfg Config
	cum []uint64 // cumulative target sizes for index→address mapping
	// exclude is swapped atomically by SetExclusions, so a reloaded
	// list takes effect mid-cycle without pausing the workers.
	exclude   atomic.Pointer[trie.Trie[struct{}]]
	excludeN  atomic.Int64
	limiter   *Limiter
	policy    *PolicyLimiter // hierarchical pacing (nil without AS/prefix rates)
	fp        *footprint     // per-AS accounting (nil without per-AS features)
	backoffOn bool

	mu     sync.Mutex
	shards []*Shard    // worker shards of the most recent Run
	resume *Checkpoint // pending cursor state for the next Run
}

// New validates the configuration and builds a Scanner.
func New(cfg Config) (*Scanner, error) {
	if cfg.Targets.Len() == 0 {
		return nil, fmt.Errorf("scan: no targets")
	}
	if cfg.Prober == nil {
		return nil, fmt.Errorf("scan: no prober")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 64
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
		return nil, fmt.Errorf("scan: shard %d of %d out of range", cfg.Shard, cfg.Shards)
	}
	pol := &cfg.Politeness
	// A NaN rate fails every `> 0` gate below and would silently disable
	// the politeness layer instead of erroring; reject it up front.
	for _, r := range []float64{pol.ASRate, pol.PrefixRate} {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("scan: politeness rates must be finite, got %v", r)
		}
	}
	if pol.perAS() && len(pol.Origins) != cfg.Targets.Len() {
		return nil, fmt.Errorf("scan: politeness origins cover %d prefixes, targets have %d (rib.Table.OriginsOf builds the mapping)", len(pol.Origins), cfg.Targets.Len())
	}
	s := &Scanner{cfg: cfg}
	s.cum = make([]uint64, cfg.Targets.Len())
	var cum uint64
	for i := 0; i < cfg.Targets.Len(); i++ {
		cum += cfg.Targets.Prefix(i).NumAddresses()
		s.cum[i] = cum
	}
	s.SetExclusions(cfg.Exclude)
	switch {
	case pol.layered():
		// Per-AS or per-prefix pacing: the global rate folds into the
		// PolicyLimiter so every probe takes one lock, not two.
		pl, err := NewPolicyLimiter(PolicyConfig{
			Rate:        cfg.Rate,
			Burst:       cfg.Burst,
			ASRate:      pol.ASRate,
			ASBurst:     pol.ASBurst,
			PrefixRate:  pol.PrefixRate,
			PrefixBurst: pol.PrefixBurst,
			Origins:     pol.Origins,
			Prefixes:    cfg.Targets.Len(),
			Backoff:     pol.Backoff,
		})
		if err != nil {
			return nil, err
		}
		s.policy = pl
	case pol.Backoff.Threshold > 0:
		return nil, fmt.Errorf("scan: backoff needs a per-AS rate to halve")
	case cfg.Rate > 0:
		lim, err := NewLimiter(cfg.Rate, cfg.Burst)
		if err != nil {
			return nil, err
		}
		s.limiter = lim
	}
	s.backoffOn = pol.Backoff.Threshold > 0
	if pol.perAS() {
		s.fp = newFootprint(pol.Origins, pol.ASBudget)
	}
	return s, nil
}

// SetExclusions atomically replaces the exclusion list. Safe to call
// while Run is in flight: workers see the new list on their next draw,
// and addresses a resumed cycle re-draws under a grown list are counted
// as Excluded, never probed. A nil or empty list clears all exclusions.
func (s *Scanner) SetExclusions(ps []netaddr.Prefix) {
	if len(ps) == 0 {
		s.exclude.Store(nil)
		s.excludeN.Store(0)
		return
	}
	tr := trie.New[struct{}]()
	for _, p := range ps {
		tr.Insert(p, struct{}{})
	}
	s.exclude.Store(tr)
	s.excludeN.Store(int64(len(ps)))
}

// ExclusionCount returns the number of exclusion prefixes currently
// active.
func (s *Scanner) ExclusionCount() int {
	return int(s.excludeN.Load())
}

// Policy exposes the hierarchical limiter (nil unless Politeness set a
// per-AS or per-prefix rate) — the hook for external feeds to retune a
// single AS mid-cycle via SetASRate.
func (s *Scanner) Policy() *PolicyLimiter {
	return s.policy
}

// addrAt maps a permutation index to the target address space, returning
// the address and the index of the target prefix containing it (the key
// into the politeness layer's origin mapping). It runs once per probe on
// every worker, so the binary search is hand-rolled: sort.Search's
// closure call costs more than the whole loop here.
func (s *Scanner) addrAt(idx uint64) (netaddr.Addr, int) {
	cum := s.cum
	lo, hi := 0, len(cum) // first i with cum[i] > idx
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cum[mid] > idx {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	p := s.cfg.Targets.Prefix(lo)
	off := idx
	if lo > 0 {
		off -= cum[lo-1]
	}
	return p.First() + netaddr.Addr(off), lo
}

// Run executes one scan cycle: every target address owned by the
// configured shard is probed exactly once, in permuted order, honoring
// rate limit, exclusions and context cancellation. A canceled run stops
// probing immediately — addresses not yet probed are left for a resumed
// cycle (see Checkpoint) and never probed with a dead context.
func (s *Scanner) Run(ctx context.Context) (*Report, error) {
	perm, err := NewPermutation(s.cfg.Targets.AddressCount(), s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	workers := s.cfg.Workers
	// Worker w owns global shard (Shard + w·Shards) of (Shards·Workers):
	// sub-sharding composes, so the union over this instance's workers is
	// exactly the instance's top-level shard of the cycle.
	shards := make([]*Shard, workers)
	for w := 0; w < workers; w++ {
		sh, err := perm.Shard(s.cfg.Shard+w*s.cfg.Shards, s.cfg.Shards*workers)
		if err != nil {
			return nil, err
		}
		shards[w] = sh
	}
	s.mu.Lock()
	resumed := s.resume
	s.resume = nil
	s.mu.Unlock()
	if cp := resumed; cp != nil {
		if err := cp.validate(s.cfg, perm.N()); err != nil {
			return nil, err
		}
		for w := range shards {
			if err := shards[w].Skip(cp.Consumed[w]); err != nil {
				return nil, err
			}
		}
	}
	if s.fp != nil {
		// A fresh Run is a fresh cycle: per-AS counters start at zero. A
		// resumed Run seeds the probed counters from the checkpoint, so AS
		// budgets hold across the interrupted runs of one cycle.
		s.fp.reset()
		if resumed != nil {
			s.fp.seed(resumed.ASProbed)
		}
	}
	s.mu.Lock()
	s.shards = shards
	s.mu.Unlock()

	start := time.Now()
	var (
		probed, excluded, errors, denied atomic.Uint64
		stop                             atomic.Bool // set on the first run error
		errOnce                          sync.Once
		runErr                           error
	)
	fail := func(err error) {
		errOnce.Do(func() { runErr = err })
		stop.Store(true)
	}

	responsive := make([][]netaddr.Addr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := shards[w]
			var local []netaddr.Addr
			// Per-worker tallies, flushed into the shared atomics once at
			// exit: the per-probe path touches no shared cache line. Only
			// the MaxProbes budget needs a live shared counter.
			var nProbed, nExcluded, nErrors, nDenied uint64
			for !stop.Load() {
				idx, ok := sh.Next()
				if !ok {
					break
				}
				addr, pi := s.addrAt(idx)
				if tr := s.exclude.Load(); tr != nil {
					if _, _, hit := tr.Lookup(addr); hit {
						// Exclusion hits consume neither a rate token nor
						// a probe: only transmitted probes are accounted.
						nExcluded++
						if s.fp != nil {
							s.fp.at(pi).excluded.Add(1)
						}
						continue
					}
				}
				if err := ctx.Err(); err != nil {
					sh.rewind() // drawn but not probed
					fail(err)
					break
				}
				var fpc *asCounter
				if s.fp != nil {
					fpc = s.fp.at(pi)
					if !s.fp.reserve(fpc) {
						// AS budget spent: the draw is consumed — the cap
						// is a deliberate skip for this cycle, not a
						// deferral — and no token or probe is used.
						nDenied++
						fpc.denied.Add(1)
						continue
					}
				}
				if s.policy != nil {
					if err := s.policy.Wait(ctx, pi); err != nil {
						if fpc != nil {
							s.fp.unreserve(fpc)
						}
						sh.rewind()
						fail(err)
						break
					}
				} else if s.limiter != nil {
					if err := s.limiter.Wait(ctx); err != nil {
						if fpc != nil {
							s.fp.unreserve(fpc)
						}
						sh.rewind()
						fail(err)
						break
					}
				}
				if s.cfg.MaxProbes > 0 && !reserveProbe(&probed, s.cfg.MaxProbes) {
					if fpc != nil {
						s.fp.unreserve(fpc)
					}
					sh.rewind()
					break
				}
				res, err := s.cfg.Prober.Probe(ctx, addr)
				if s.cfg.MaxProbes == 0 {
					nProbed++
				}
				if err != nil {
					nErrors++
					if fpc != nil {
						fpc.errors.Add(1)
					}
					if s.backoffOn && s.policy.Observe(pi, false) {
						fpc.backoffs.Add(1)
					}
					continue
				}
				if s.backoffOn {
					s.policy.Observe(pi, true)
				}
				if s.cfg.OnResult != nil {
					s.cfg.OnResult(res)
				}
				if res.Open {
					local = append(local, res.Addr)
					if fpc != nil {
						fpc.responsive.Add(1)
					}
				}
			}
			probed.Add(nProbed)
			excluded.Add(nExcluded)
			errors.Add(nErrors)
			denied.Add(nDenied)
			responsive[w] = local
		}(w)
	}
	wg.Wait()

	report := &Report{
		Probed:       probed.Load(),
		Excluded:     excluded.Load(),
		Errors:       errors.Load(),
		BudgetDenied: denied.Load(),
	}
	if s.fp != nil {
		report.PerAS = s.fp.report()
	}
	total := 0
	for _, buf := range responsive {
		total += len(buf)
	}
	report.Responsive = make([]netaddr.Addr, 0, total)
	for _, buf := range responsive {
		report.Responsive = append(report.Responsive, buf...)
	}
	sort.Slice(report.Responsive, func(i, j int) bool {
		return report.Responsive[i] < report.Responsive[j]
	})
	report.Elapsed = time.Since(start)
	return report, runErr
}

// reserveProbe claims one probe slot under the max budget; it reports
// false once the budget is spent, without ever overshooting.
func reserveProbe(probed *atomic.Uint64, max uint64) bool {
	for {
		cur := probed.Load()
		if cur >= max {
			return false
		}
		if probed.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// ParseExclusions reads a ZMap-style exclusion file: one CIDR prefix or
// bare address per line, '#' comments and blank lines ignored.
func ParseExclusions(r io.Reader) ([]netaddr.Prefix, error) {
	sc := bufio.NewScanner(r)
	var out []netaddr.Prefix
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if !strings.ContainsRune(text, '/') {
			text += "/32"
		}
		p, err := netaddr.ParsePrefix(text)
		if err != nil {
			return nil, fmt.Errorf("scan: exclusion line %d: %w", line, err)
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan: reading exclusions: %w", err)
	}
	return out, nil
}
