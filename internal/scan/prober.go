package scan

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/tass-scan/tass/internal/netaddr"
)

// Result is the outcome of probing one address.
type Result struct {
	Addr netaddr.Addr
	// Open reports a successful protocol handshake.
	Open bool
	// RTT is the observed (or simulated) round-trip time.
	RTT time.Duration
	// Banner holds the first bytes the service sent, when banner
	// grabbing is enabled.
	Banner []byte
}

// Prober performs one probe. Implementations must be safe for concurrent
// use by multiple scanner workers.
type Prober interface {
	Probe(ctx context.Context, addr netaddr.Addr) (Result, error)
}

// SimProber answers probes from an in-memory responsive-address set: the
// offline stand-in for 2.8 billion real SYN packets. Loss and latency are
// drawn deterministically per address so repeated scans are reproducible.
type SimProber struct {
	addrs []netaddr.Addr // sorted
	// LossRate is the probability that a probe to a live host is dropped.
	LossRate float64
	// BaseRTT and JitterRTT shape the simulated latency.
	BaseRTT, JitterRTT time.Duration
	seed               int64
}

// NewSimProber builds a simulation prober for the given responsive set.
func NewSimProber(responsive []netaddr.Addr, lossRate float64, seed int64) (*SimProber, error) {
	if lossRate < 0 || lossRate >= 1 {
		return nil, fmt.Errorf("scan: loss rate %v outside [0,1)", lossRate)
	}
	cp := make([]netaddr.Addr, len(responsive))
	copy(cp, responsive)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return &SimProber{
		addrs:     cp,
		LossRate:  lossRate,
		BaseRTT:   20 * time.Millisecond,
		JitterRTT: 30 * time.Millisecond,
		seed:      seed,
	}, nil
}

// Probe implements Prober.
func (s *SimProber) Probe(_ context.Context, addr netaddr.Addr) (Result, error) {
	res := Result{Addr: addr}
	i := sort.Search(len(s.addrs), func(i int) bool { return s.addrs[i] >= addr })
	live := i < len(s.addrs) && s.addrs[i] == addr
	// Deterministic per-address randomness: hash the address with the
	// seed (splitmix64 finalizer).
	h := uint64(addr) + uint64(s.seed)*0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	if live {
		if s.LossRate > 0 && float64(h%1000000)/1000000 < s.LossRate {
			return res, nil // dropped
		}
		res.Open = true
		res.RTT = s.BaseRTT + time.Duration(h%uint64(s.JitterRTT+1))
	}
	return res, nil
}

// TCPProber performs real TCP connect scans with optional banner
// grabbing — the live-network backend for the scan engine. It is used by
// the examples against local listeners; pointing it at networks you do
// not own is exactly the footprint this library exists to reduce.
type TCPProber struct {
	// Port is the destination TCP port.
	Port int
	// Timeout bounds the connect (and banner read) per probe.
	Timeout time.Duration
	// BannerBytes, when positive, reads up to this many bytes after
	// connecting.
	BannerBytes int
	// Dialer overrides the default dialer (tests use it to stub DNS-free
	// local dialing).
	Dialer *net.Dialer
}

// Probe implements Prober.
func (t *TCPProber) Probe(ctx context.Context, addr netaddr.Addr) (Result, error) {
	res := Result{Addr: addr}
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	dialer := t.Dialer
	if dialer == nil {
		dialer = &net.Dialer{}
	}
	dctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	start := time.Now()
	conn, err := dialer.DialContext(dctx, "tcp", net.JoinHostPort(addr.String(), strconv.Itoa(t.Port)))
	if err != nil {
		// A dial that failed because the parent context died is not a
		// scan outcome at all: surface ctx.Err() so Report.Errors and the
		// engine's abort paths stay honest under cancellation and
		// deadline storms. The per-probe timeout (dctx expiring on its
		// own) stays a normal closed/filtered result.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return res, ctxErr
		}
		// Closed/filtered ports are a normal scan outcome, not an error.
		return res, nil
	}
	defer conn.Close()
	res.Open = true
	res.RTT = time.Since(start)
	if t.BannerBytes > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(timeout))
		buf := make([]byte, t.BannerBytes)
		n, _ := conn.Read(buf)
		res.Banner = buf[:n]
	}
	return res, nil
}

// FlakyProber wraps a Prober and injects failures: every failEvery-th
// probe returns an error. It exists for failure-injection tests of the
// engine's error accounting.
type FlakyProber struct {
	Inner     Prober
	FailEvery int

	mu sync.Mutex
	n  int
}

// Probe implements Prober.
func (f *FlakyProber) Probe(ctx context.Context, addr netaddr.Addr) (Result, error) {
	f.mu.Lock()
	f.n++
	fail := f.FailEvery > 0 && f.n%f.FailEvery == 0
	f.mu.Unlock()
	if fail {
		return Result{Addr: addr}, fmt.Errorf("scan: injected failure for %v", addr)
	}
	return f.Inner.Probe(ctx, addr)
}
