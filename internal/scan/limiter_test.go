package scan

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a mutex-protected virtual clock shared by the limiter's
// now() and the injected sleeper, so Wait's blocking path runs entirely
// on virtual time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// virtualLimiter builds a limiter whose clock and sleeper both run on a
// fake clock: every sleep request advances virtual time by the requested
// duration instead of blocking.
func virtualLimiter(t *testing.T, rate float64, burst int) (*Limiter, *fakeClock, *atomic.Int64) {
	t.Helper()
	lim, err := NewLimiter(rate, burst)
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	var sleeps atomic.Int64
	lim.now = clock.now
	lim.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		sleeps.Add(1)
		clock.advance(d)
		return nil
	}
	return lim, clock, &sleeps
}

func TestWaitBlockingPathDeterministic(t *testing.T) {
	lim, clock, sleeps := virtualLimiter(t, 100, 2)
	start := clock.now()

	// Burst drains without sleeping.
	for i := 0; i < 2; i++ {
		if err := lim.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if n := sleeps.Load(); n != 0 {
		t.Fatalf("burst tokens slept %d times", n)
	}

	// The next token must sleep exactly one refill interval (10ms at
	// 100/s) of virtual time.
	if err := lim.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := sleeps.Load(); n != 1 {
		t.Fatalf("third token slept %d times, want 1", n)
	}
	if got := clock.now().Sub(start); got != 10*time.Millisecond {
		t.Fatalf("virtual time advanced %v, want 10ms", got)
	}
}

func TestWaitUnderContention(t *testing.T) {
	const (
		rate    = 100.0
		burst   = 5
		workers = 8
		perG    = 5
	)
	lim, clock, _ := virtualLimiter(t, rate, burst)
	start := clock.now()

	var wg sync.WaitGroup
	var granted atomic.Int64
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := lim.Wait(context.Background()); err != nil {
					t.Errorf("Wait: %v", err)
					return
				}
				granted.Add(1)
			}
		}()
	}
	wg.Wait()

	if got := granted.Load(); got != workers*perG {
		t.Fatalf("granted %d tokens, want %d", got, workers*perG)
	}
	// 40 tokens at 100/s with a 5-token burst needs at least 350ms of
	// virtual time; concurrent sleepers may overshoot but never undercut.
	need := time.Duration(float64(workers*perG-burst) / rate * float64(time.Second))
	if elapsed := clock.now().Sub(start); elapsed < need {
		t.Fatalf("virtual elapsed %v below the token budget %v", elapsed, need)
	}
}

func TestWaitCancellationInBlockingPath(t *testing.T) {
	lim, _, _ := virtualLimiter(t, 1, 1)
	if !lim.Allow() {
		t.Fatal("burst token denied")
	}

	// The sleeper cancels the context instead of advancing the clock:
	// Wait must surface context.Canceled without granting a token.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lim.sleep = func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}
	if err := lim.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if lim.Allow() {
		t.Error("canceled Wait still granted a token")
	}
}
