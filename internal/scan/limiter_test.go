package scan

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a mutex-protected virtual clock shared by the limiter's
// now() and the injected sleeper, so Wait's blocking path runs entirely
// on virtual time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// virtualLimiter builds a limiter whose clock and sleeper both run on a
// fake clock: every sleep request advances virtual time by the requested
// duration instead of blocking.
func virtualLimiter(t *testing.T, rate float64, burst int) (*Limiter, *fakeClock, *atomic.Int64) {
	t.Helper()
	lim, err := NewLimiter(rate, burst)
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	var sleeps atomic.Int64
	lim.now = clock.now
	lim.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		sleeps.Add(1)
		clock.advance(d)
		return nil
	}
	return lim, clock, &sleeps
}

func TestWaitBlockingPathDeterministic(t *testing.T) {
	lim, clock, sleeps := virtualLimiter(t, 100, 2)
	start := clock.now()

	// Burst drains without sleeping.
	for i := 0; i < 2; i++ {
		if err := lim.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if n := sleeps.Load(); n != 0 {
		t.Fatalf("burst tokens slept %d times", n)
	}

	// The next token must sleep exactly one refill interval (10ms at
	// 100/s) of virtual time.
	if err := lim.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := sleeps.Load(); n != 1 {
		t.Fatalf("third token slept %d times, want 1", n)
	}
	if got := clock.now().Sub(start); got != 10*time.Millisecond {
		t.Fatalf("virtual time advanced %v, want 10ms", got)
	}
}

func TestWaitUnderContention(t *testing.T) {
	const (
		rate    = 100.0
		burst   = 5
		workers = 8
		perG    = 5
	)
	lim, clock, _ := virtualLimiter(t, rate, burst)
	start := clock.now()

	var wg sync.WaitGroup
	var granted atomic.Int64
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := lim.Wait(context.Background()); err != nil {
					t.Errorf("Wait: %v", err)
					return
				}
				granted.Add(1)
			}
		}()
	}
	wg.Wait()

	if got := granted.Load(); got != workers*perG {
		t.Fatalf("granted %d tokens, want %d", got, workers*perG)
	}
	// 40 tokens at 100/s with a 5-token burst needs at least 350ms of
	// virtual time; concurrent sleepers may overshoot but never undercut.
	need := time.Duration(float64(workers*perG-burst) / rate * float64(time.Second))
	if elapsed := clock.now().Sub(start); elapsed < need {
		t.Fatalf("virtual elapsed %v below the token budget %v", elapsed, need)
	}
}

// TestWaitSingleWakeupAtContention is the thundering-herd regression
// test: 8 workers all block on an empty bucket *before* any time
// passes, forced by a gate in the injected sleeper. Under the old
// sleep-and-retry loop every worker computed the same refill delay,
// woke simultaneously, and fought over one token — losers slept again,
// so the total sleep count exceeded the worker count. Reservation
// serialization gives each waiter exactly one sleep, with strictly
// later slots: sleep durations must be exactly {1, 2, …, 8} refill
// intervals, one per worker.
func TestWaitSingleWakeupAtContention(t *testing.T) {
	const workers = 8
	lim, err := NewLimiter(100, 1) // refill interval 10ms
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	lim.now = clock.now

	var mu sync.Mutex
	var durations []time.Duration
	gate := make(chan struct{})
	lim.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		durations = append(durations, d)
		ready := len(durations) == workers
		mu.Unlock()
		if ready {
			close(gate) // all workers asleep: release everyone
		}
		<-gate
		clock.advance(d)
		return nil
	}

	if !lim.Allow() {
		t.Fatal("burst token denied")
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := lim.Wait(context.Background()); err != nil {
				t.Errorf("Wait: %v", err)
			}
		}()
	}
	wg.Wait()

	if len(durations) != workers {
		t.Fatalf("%d sleeps for %d blocked workers, want exactly one each", len(durations), workers)
	}
	// Each successive waiter reserved the next 10ms slot: the duration
	// multiset is exactly {10ms, 20ms, …, 80ms} — a herd would have
	// computed identical delays.
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	for i, d := range durations {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if d != want {
			t.Errorf("sleep %d lasted %v, want %v", i, d, want)
		}
	}
}

func TestWaitCancellationInBlockingPath(t *testing.T) {
	lim, _, _ := virtualLimiter(t, 1, 1)
	if !lim.Allow() {
		t.Fatal("burst token denied")
	}

	// The sleeper cancels the context instead of advancing the clock:
	// Wait must surface context.Canceled without granting a token.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lim.sleep = func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}
	if err := lim.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if lim.Allow() {
		t.Error("canceled Wait still granted a token")
	}
}
