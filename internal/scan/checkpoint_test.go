package scan

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testCheckpoint() *Checkpoint {
	return &Checkpoint{
		N:        4096,
		Seed:     42,
		Shard:    1,
		Shards:   2,
		Workers:  3,
		Consumed: []uint64{10, 20, 30},
		ASProbed: map[uint32]uint64{64500: 7},
	}
}

func TestCheckpointEnvelopeRoundTrip(t *testing.T) {
	cp := testCheckpoint()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, cp) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, cp)
	}
}

// TestCheckpointLegacyAccepted keeps one release of compatibility with
// checksum-less cursor files written by the old WriteCheckpoint.
func TestCheckpointLegacyAccepted(t *testing.T) {
	cp := testCheckpoint()
	legacy, err := json.Marshal(cp) // the old format: bare fields, no envelope
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	if !reflect.DeepEqual(back, cp) {
		t.Fatalf("legacy round trip mismatch: %+v vs %+v", back, cp)
	}
}

// TestLegacyCheckpointWarning pins the deprecation surface: loading a
// checksum-less legacy file warns exactly once through the swappable
// hook, loading an enveloped file never does.
func TestLegacyCheckpointWarning(t *testing.T) {
	var warnings []string
	defer func(f func(string)) { LegacyCheckpointWarn = f }(LegacyCheckpointWarn)
	LegacyCheckpointWarn = func(msg string) { warnings = append(warnings, msg) }

	cp := testCheckpoint()
	legacy, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(bytes.NewReader(legacy)); err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	if len(warnings) != 1 {
		t.Fatalf("%d warnings for a legacy load, want 1: %q", len(warnings), warnings)
	}
	if !strings.Contains(warnings[0], "deprecated") || !strings.Contains(warnings[0], "fsck") {
		t.Fatalf("warning does not name the deprecation or the fix: %q", warnings[0])
	}

	warnings = nil
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("enveloped load warned: %q", warnings)
	}
}

// TestCheckpointCorruptionRefused covers the torn-file matrix: every
// corruption must surface as a load error, never as a silently wrong
// resume cursor.
func TestCheckpointCorruptionRefused(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := []struct {
		name string
		data string
	}{
		{"empty file", ""},
		{"whitespace only", "  \n\t\n"},
		{"torn JSON (truncated mid-envelope)", good[:len(good)/2]},
		{"torn JSON (first byte only)", good[:1]},
		{"wrong CRC (flipped body byte)", flipInBody(t, good)},
		{"wrong format marker", strings.Replace(good, "tass-checkpoint", "mass-checkpoint", 1)},
		{"future version", strings.Replace(good, `"v":1`, `"v":99`, 1)},
		{"invalid version", strings.Replace(good, `"v":1`, `"v":0`, 1)},
		{"garbage", "not json at all"},
		// A corrupted envelope must not fall back to the lax legacy
		// path: "format" gone but envelope keys present.
		{"envelope posing as legacy", strings.Replace(good, `"format"`, `"fxrmat"`, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp, err := ReadCheckpoint(strings.NewReader(tc.data))
			if err == nil {
				t.Fatalf("corrupt checkpoint accepted: %+v", cp)
			}
		})
	}
}

// flipInBody flips one digit inside the envelope's body so the payload
// changes but the JSON stays syntactically valid.
func flipInBody(t *testing.T, s string) string {
	t.Helper()
	i := strings.Index(s, `"n":`)
	if i < 0 {
		t.Fatal("no body field found")
	}
	b := []byte(s)
	c := b[i+4]
	if c >= '0' && c <= '8' {
		b[i+4] = c + 1
	} else {
		b[i+4] = '1'
	}
	return string(b)
}

// TestCheckpointFileAtomicSave proves the file helper round-trips and
// that a failed save (injected or environmental) leaves the previous
// cursor intact — the anti-os.Create property.
func TestCheckpointFileAtomicSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cursor.json")
	cp := testCheckpoint()
	if err := WriteCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, cp) {
		t.Fatalf("file round trip mismatch: %+v vs %+v", back, cp)
	}

	// A save that cannot complete (unwritable directory) must not
	// destroy the existing cursor.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	cp2 := testCheckpoint()
	cp2.Consumed = []uint64{99, 99, 99}
	if err := WriteCheckpointFile(path, cp2); err == nil {
		if os.Getuid() == 0 {
			t.Skip("running as root: read-only directory not enforced")
		}
		t.Fatal("save into read-only directory succeeded")
	}
	back, err = ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("previous cursor destroyed by failed save: %v", err)
	}
	if !reflect.DeepEqual(back, cp) {
		t.Fatalf("previous cursor changed by failed save: %+v", back)
	}
}

// TestCheckpointFileTornOnDisk corrupts the file on disk (the crash the
// atomic rename is supposed to prevent at write time, simulated at rest)
// and checks the loader refuses it.
func TestCheckpointFileTornOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cursor.json")
	if err := WriteCheckpointFile(path, testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if cp, err := ReadCheckpointFile(path); err == nil {
		t.Fatalf("torn on-disk checkpoint accepted: %+v", cp)
	}
}
