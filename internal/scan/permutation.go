// Package scan implements the probing engine that executes TASS scan
// plans: ZMap-style address permutation (so probes spread evenly over
// target networks instead of hammering one prefix), token-bucket rate
// limiting, a worker pool, exclusion lists, and pluggable probe backends
// (an in-memory simulation prober and a real TCP connect prober).
package scan

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Permutation iterates 0..n-1 in a pseudorandom order with O(1) state,
// the trick popularized by ZMap: iterate the multiplicative group of
// integers modulo a safe prime p > n with a random generator g, emitting
// x-1 and skipping values ≥ n. Every index is visited exactly once per
// cycle, no bitmap required.
type Permutation struct {
	p, g  uint64 // safe prime and group generator
	first uint64 // starting element
	cur   uint64
	n     uint64 // target count
	done  bool
	emits uint64
}

// NewPermutation builds a permutation of [0, n). Generation is
// deterministic in seed.
func NewPermutation(n uint64, seed int64) (*Permutation, error) {
	if n == 0 {
		return nil, fmt.Errorf("scan: empty permutation")
	}
	if n >= 1<<62 {
		return nil, fmt.Errorf("scan: permutation size %d too large", n)
	}
	rng := rand.New(rand.NewSource(seed))
	// The group covers 1..p-1; need p-1 >= n, i.e. p >= n+1.
	p, q := nextSafePrime(n + 1)
	// In a safe-prime group (p = 2q+1), g generates the full group iff
	// g^2 != 1 and g^q != 1 (mod p).
	var g uint64
	for {
		g = 2 + uint64(rng.Int63n(int64(p-3)))
		if mulmod(g, g, p) != 1 && powmod(g, q, p) != 1 {
			break
		}
	}
	first := 1 + uint64(rng.Int63n(int64(p-1)))
	return &Permutation{p: p, g: g, first: first, cur: first, n: n}, nil
}

// N returns the permutation size.
func (pm *Permutation) N() uint64 { return pm.n }

// Next returns the next index of the permutation; ok is false once all n
// indexes have been emitted.
func (pm *Permutation) Next() (idx uint64, ok bool) {
	if pm.done {
		return 0, false
	}
	for {
		v := pm.cur
		pm.cur = mulmod(pm.cur, pm.g, pm.p)
		wrapped := pm.cur == pm.first
		if v-1 < pm.n {
			pm.emits++
			if wrapped || pm.emits == pm.n {
				pm.done = true
			}
			return v - 1, true
		}
		if wrapped {
			pm.done = true
			return 0, false
		}
	}
}

// Reset restarts the permutation from its first element.
func (pm *Permutation) Reset() {
	pm.cur = pm.first
	pm.done = false
	pm.emits = 0
}

// Shard is a disjoint slice of a permutation cycle, the ZMap sharding
// scheme: the full cycle visits the group elements first·g^0, first·g^1,
// …, first·g^(p-2); shard i of n owns the cycle positions ≡ i (mod n),
// so it starts at first·g^i and strides by g^n. The union of the n
// shards is exactly the sequential permutation (as a set), shards share
// no state, and each can run on its own goroutine — or its own machine.
type Shard struct {
	p, n      uint64 // modulus and target count (copied from the parent)
	stride    uint64 // g^shards mod p
	cur, prev uint64 // current and previous group element (prev backs rewind)
	remaining uint64 // cycle positions left to visit
	total     uint64 // cycle positions this shard owns in a full cycle
	index     int    // shard index i
	shards    int    // shard count n
}

// Shard returns slice i of n of the permutation cycle. Shards are
// independent of the parent's Next/Reset state; the parent can hand out
// all n shards up front. i must be in [0, n).
func (pm *Permutation) Shard(i, n int) (*Shard, error) {
	if n <= 0 || i < 0 || i >= n {
		return nil, fmt.Errorf("scan: shard %d of %d out of range", i, n)
	}
	// Cycle positions are 0..p-2; shard i owns positions i, i+n, i+2n, …
	cycle := pm.p - 1
	var total uint64
	if uint64(i) < cycle {
		total = (cycle - uint64(i) + uint64(n) - 1) / uint64(n)
	}
	return &Shard{
		p:         pm.p,
		n:         pm.n,
		stride:    powmod(pm.g, uint64(n), pm.p),
		cur:       mulmod(pm.first, powmod(pm.g, uint64(i), pm.p), pm.p),
		remaining: total,
		total:     total,
		index:     i,
		shards:    n,
	}, nil
}

// Next returns the shard's next permutation index; ok is false once the
// shard's slice of the cycle is exhausted.
func (s *Shard) Next() (idx uint64, ok bool) {
	for s.remaining > 0 {
		v := s.cur
		s.prev = v
		s.cur = mulmod(s.cur, s.stride, s.p)
		s.remaining--
		if v-1 < s.n {
			return v - 1, true
		}
	}
	return 0, false
}

// rewind un-consumes the most recently emitted index so a resumed cycle
// revisits it: the scanner calls it when an address was drawn from the
// shard but not probed (rate-limit wait aborted, probe budget exhausted).
// Only the last emission can be rewound.
func (s *Shard) rewind() {
	if s.prev == 0 {
		return
	}
	s.cur = s.prev
	s.prev = 0
	s.remaining++
}

// Consumed returns how many cycle positions the shard has visited; it is
// the shard's checkpoint cursor.
func (s *Shard) Consumed() uint64 { return s.total - s.remaining }

// Skip fast-forwards the shard past the first k cycle positions (the
// resume path: k is a Consumed value from a checkpoint). Skipping costs
// one modular exponentiation, not k iterations.
func (s *Shard) Skip(k uint64) error {
	if s.remaining != s.total {
		return fmt.Errorf("scan: shard %d/%d: Skip on a partially consumed shard", s.index, s.shards)
	}
	if k > s.total {
		return fmt.Errorf("scan: shard %d/%d: skip %d exceeds %d positions",
			s.index, s.shards, k, s.total)
	}
	// k positions ahead of the shard start is k·shards ahead on the cycle.
	s.cur = mulmod(s.cur, powmod(s.stride, k, s.p), s.p)
	s.prev = 0
	s.remaining = s.total - k
	return nil
}

// mulmod computes a*b mod m without overflow via a 128-bit product.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a%m, b%m)
	// hi < m always holds (hi ≤ m²/2^64 < m), so Div64 cannot panic.
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

// powmod computes a^e mod m.
func powmod(a, e, m uint64) uint64 {
	res := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			res = mulmod(res, a, m)
		}
		a = mulmod(a, a, m)
		e >>= 1
	}
	return res
}

// millerRabin reports whether n is prime. The witness set is
// deterministic for all 64-bit integers.
func millerRabin(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	d := n - 1
	r := 0
	for d%2 == 0 {
		d /= 2
		r++
	}
witness:
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := powmod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < r-1; i++ {
			x = mulmod(x, x, n)
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

// nextSafePrime returns the smallest safe prime p ≥ min (p = 2q+1 with q
// prime) and its Sophie Germain half q.
func nextSafePrime(min uint64) (p, q uint64) {
	if min < 5 {
		min = 5
	}
	// Safe primes are ≡ 3 (mod 4) for p > 5 (q odd); walk candidates.
	for c := min; ; c++ {
		if c%2 == 0 {
			continue
		}
		if !millerRabin(c) {
			continue
		}
		half := (c - 1) / 2
		if millerRabin(half) {
			return c, half
		}
	}
}
