package scan

import (
	"encoding/json"
	"fmt"
	"io"
)

// Checkpoint is the serialized cursor state of an interrupted scan
// cycle: one consumed-position count per worker shard. Together with the
// scan configuration (N, Seed, Shard/Shards, Workers) it pins down the
// exact set of addresses already visited, so a resumed cycle probes each
// remaining address exactly once and re-probes none. The format is plain
// JSON: small (one integer per worker) and inspectable.
type Checkpoint struct {
	// N is the permutation size (the target partition's address count).
	N uint64 `json:"n"`
	// Seed is the permutation seed.
	Seed int64 `json:"seed"`
	// Shard and Shards identify this instance's slice of the cycle.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Workers is the worker count the cursors were taken under; a resume
	// must use the same count (the sub-shard layout depends on it).
	Workers int `json:"workers"`
	// Consumed[w] is how many cycle positions worker w's shard visited.
	Consumed []uint64 `json:"consumed"`
	// ASProbed carries the per-origin-AS probe counters when the cycle
	// ran with per-AS politeness, so a resumed run enforces the probe
	// budget across the whole cycle, not per run. (JSON encodes the
	// uint32 keys as strings; Go's decoder maps them back.)
	ASProbed map[uint32]uint64 `json:"as_probed,omitempty"`
}

// validate checks that the checkpoint matches the scanner configuration
// it is being resumed under.
func (c *Checkpoint) validate(cfg Config, n uint64) error {
	switch {
	case c.N != n:
		return fmt.Errorf("scan: checkpoint for %d addresses, scanner has %d", c.N, n)
	case c.Seed != cfg.Seed:
		return fmt.Errorf("scan: checkpoint seed %d, scanner seed %d", c.Seed, cfg.Seed)
	case c.Shard != cfg.Shard || c.Shards != cfg.Shards:
		return fmt.Errorf("scan: checkpoint is shard %d/%d, scanner is %d/%d",
			c.Shard, c.Shards, cfg.Shard, cfg.Shards)
	case c.Workers != cfg.Workers || len(c.Consumed) != cfg.Workers:
		return fmt.Errorf("scan: checkpoint has %d worker cursors, scanner has %d workers",
			len(c.Consumed), cfg.Workers)
	}
	return nil
}

// Checkpoint captures the per-shard cursors of the most recent Run. Call
// it after Run returns (typically with a context error) to persist where
// the cycle stopped; hand the result to Resume on a fresh or existing
// scanner with the same configuration to continue. Before any Run it
// returns nil.
func (s *Scanner) Checkpoint() *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shards == nil {
		return nil
	}
	cp := &Checkpoint{
		N:        s.cfg.Targets.AddressCount(),
		Seed:     s.cfg.Seed,
		Shard:    s.cfg.Shard,
		Shards:   s.cfg.Shards,
		Workers:  s.cfg.Workers,
		Consumed: make([]uint64, len(s.shards)),
	}
	for i, sh := range s.shards {
		cp.Consumed[i] = sh.Consumed()
	}
	if s.fp != nil {
		cp.ASProbed = s.fp.probedByAS()
	}
	return cp
}

// Resume arms the scanner to continue an interrupted cycle: the next Run
// fast-forwards every worker shard past the checkpointed cursor before
// probing. The checkpoint must match the scanner's configuration
// (validated when Run starts).
func (s *Scanner) Resume(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("scan: nil checkpoint")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resume = cp
	return nil
}

// WriteCheckpoint serializes a checkpoint as JSON.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	enc := json.NewEncoder(w)
	return enc.Encode(cp)
}

// ReadCheckpoint parses a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("scan: reading checkpoint: %w", err)
	}
	return &cp, nil
}
