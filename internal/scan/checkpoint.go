package scan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/tass-scan/tass/internal/atomicfile"
)

// Checkpoint is the serialized cursor state of an interrupted scan
// cycle: one consumed-position count per worker shard. Together with the
// scan configuration (N, Seed, Shard/Shards, Workers) it pins down the
// exact set of addresses already visited, so a resumed cycle probes each
// remaining address exactly once and re-probes none. The format is plain
// JSON: small (one integer per worker) and inspectable.
type Checkpoint struct {
	// N is the permutation size (the target partition's address count).
	N uint64 `json:"n"`
	// Seed is the permutation seed.
	Seed int64 `json:"seed"`
	// Shard and Shards identify this instance's slice of the cycle.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Workers is the worker count the cursors were taken under; a resume
	// must use the same count (the sub-shard layout depends on it).
	Workers int `json:"workers"`
	// Consumed[w] is how many cycle positions worker w's shard visited.
	Consumed []uint64 `json:"consumed"`
	// ASProbed carries the per-origin-AS probe counters when the cycle
	// ran with per-AS politeness, so a resumed run enforces the probe
	// budget across the whole cycle, not per run. (JSON encodes the
	// uint32 keys as strings; Go's decoder maps them back.)
	ASProbed map[uint32]uint64 `json:"as_probed,omitempty"`
}

// validate checks that the checkpoint matches the scanner configuration
// it is being resumed under.
func (c *Checkpoint) validate(cfg Config, n uint64) error {
	switch {
	case c.N != n:
		return fmt.Errorf("scan: checkpoint for %d addresses, scanner has %d", c.N, n)
	case c.Seed != cfg.Seed:
		return fmt.Errorf("scan: checkpoint seed %d, scanner seed %d", c.Seed, cfg.Seed)
	case c.Shard != cfg.Shard || c.Shards != cfg.Shards:
		return fmt.Errorf("scan: checkpoint is shard %d/%d, scanner is %d/%d",
			c.Shard, c.Shards, cfg.Shard, cfg.Shards)
	case c.Workers != cfg.Workers || len(c.Consumed) != cfg.Workers:
		return fmt.Errorf("scan: checkpoint has %d worker cursors, scanner has %d workers",
			len(c.Consumed), cfg.Workers)
	}
	return nil
}

// Checkpoint captures the per-shard cursors of the most recent Run. Call
// it after Run returns (typically with a context error) to persist where
// the cycle stopped; hand the result to Resume on a fresh or existing
// scanner with the same configuration to continue. Before any Run it
// returns nil.
func (s *Scanner) Checkpoint() *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shards == nil {
		return nil
	}
	cp := &Checkpoint{
		N:        s.cfg.Targets.AddressCount(),
		Seed:     s.cfg.Seed,
		Shard:    s.cfg.Shard,
		Shards:   s.cfg.Shards,
		Workers:  s.cfg.Workers,
		Consumed: make([]uint64, len(s.shards)),
	}
	for i, sh := range s.shards {
		cp.Consumed[i] = sh.Consumed()
	}
	if s.fp != nil {
		cp.ASProbed = s.fp.probedByAS()
	}
	return cp
}

// Resume arms the scanner to continue an interrupted cycle: the next Run
// fast-forwards every worker shard past the checkpointed cursor before
// probing. The checkpoint must match the scanner's configuration
// (validated when Run starts).
func (s *Scanner) Resume(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("scan: nil checkpoint")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resume = cp
	return nil
}

// The checkpoint wire format is a small JSON envelope around the
// checkpoint body: a format marker (so corruption of the envelope is
// never mistaken for a legacy file), a format version (readers reject
// files from the future instead of resuming from misparsed state), and
// a CRC-32 over the exact body bytes (torn writes and bit flips are
// detected before a single address is skipped or re-probed).
const (
	checkpointFormat  = "tass-checkpoint"
	checkpointVersion = 1
)

type checkpointEnvelope struct {
	Format  string          `json:"format"`
	Version int             `json:"v"`
	CRC     uint32          `json:"crc"`
	Body    json.RawMessage `json:"body"`
}

// LegacyCheckpointWarn receives the deprecation notice emitted when a
// legacy checksum-less checkpoint file is loaded. The un-enveloped
// format was accepted for one release of grace; re-saving under a
// current binary upgrades the file. Tests (and embedders with their own
// logging) may swap it; the default writes to standard error.
var LegacyCheckpointWarn = func(msg string) { fmt.Fprintln(os.Stderr, msg) }

// WriteCheckpoint serializes a checkpoint: a versioned JSON envelope
// whose body is the checkpoint fields and whose crc field checksums the
// body bytes. ReadCheckpoint refuses anything that does not round-trip.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	body, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("scan: encoding checkpoint: %w", err)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(checkpointEnvelope{
		Format:  checkpointFormat,
		Version: checkpointVersion,
		CRC:     crc32.ChecksumIEEE(body),
		Body:    body,
	})
}

// ReadCheckpoint parses a checkpoint written by WriteCheckpoint,
// verifying the format version and body checksum: truncated, corrupted
// or future-version files are rejected with a clear error instead of
// silently resuming a cycle from garbage cursors. Checksum-less files
// from before the envelope format are still accepted (one release of
// grace for cursors written by old binaries).
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("scan: reading checkpoint: %w", err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("scan: reading checkpoint: file is empty (torn save?)")
	}
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("scan: reading checkpoint: truncated or corrupt: %w", err)
	}
	if env.Format == "" {
		// Legacy checksum-less checkpoint: the body fields at top level.
		// Decode strictly — a corrupted envelope (extra "crc"/"body"
		// keys) must not slip through the compatibility path unchecked.
		var cp Checkpoint
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cp); err != nil {
			return nil, fmt.Errorf("scan: reading checkpoint: not a checkpoint file: %w", err)
		}
		LegacyCheckpointWarn("scan: deprecated: loaded a legacy checksum-less checkpoint; corruption in this file cannot be detected — re-save it (or run `tass fsck -repair`) to upgrade to the enveloped format")
		return &cp, nil
	}
	if env.Format != checkpointFormat {
		return nil, fmt.Errorf("scan: reading checkpoint: format %q is not %q", env.Format, checkpointFormat)
	}
	if env.Version > checkpointVersion {
		return nil, fmt.Errorf("scan: reading checkpoint: version %d is newer than this binary's %d — refuse to guess at its layout", env.Version, checkpointVersion)
	}
	if env.Version < 1 {
		return nil, fmt.Errorf("scan: reading checkpoint: invalid version %d", env.Version)
	}
	if sum := crc32.ChecksumIEEE(env.Body); sum != env.CRC {
		return nil, fmt.Errorf("scan: reading checkpoint: checksum mismatch (crc %08x, body %08x) — file is torn or corrupt, not resuming", env.CRC, sum)
	}
	var cp Checkpoint
	if err := json.Unmarshal(env.Body, &cp); err != nil {
		return nil, fmt.Errorf("scan: reading checkpoint: %w", err)
	}
	return &cp, nil
}

// WriteCheckpointFile atomically persists a checkpoint to path: the
// envelope is written to a temporary file in the same directory, synced,
// and renamed over the destination, so an interrupt mid-save never
// destroys the only copy of the cursor.
func WriteCheckpointFile(path string, cp *Checkpoint) error {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		return err
	}
	return atomicfile.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadCheckpointFile loads a checkpoint persisted by WriteCheckpointFile
// (or a legacy checksum-less cursor file).
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}
