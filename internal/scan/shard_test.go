package scan

import (
	"context"
	"strings"
	"sync"
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// drain collects every index a shard emits.
func drain(t *testing.T, sh *Shard) []uint64 {
	t.Helper()
	var out []uint64
	for {
		idx, ok := sh.Next()
		if !ok {
			return out
		}
		if idx >= sh.n {
			t.Fatalf("shard %d/%d emitted %d outside [0,%d)", sh.index, sh.shards, idx, sh.n)
		}
		out = append(out, idx)
	}
}

// TestShardUnionEqualsSequential is the sharding golden test: for every
// shard count n, the multiset union of the n shards' emissions equals
// the sequential permutation output for the same seed — same elements,
// each exactly once.
func TestShardUnionEqualsSequential(t *testing.T) {
	for _, size := range []uint64{1, 2, 7, 100, 4096, 100000} {
		pm, err := NewPermutation(size, 42)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[uint64]int, size)
		for {
			idx, ok := pm.Next()
			if !ok {
				break
			}
			want[idx]++
		}
		for _, n := range []int{1, 2, 4, 8} {
			got := make(map[uint64]int, size)
			for i := 0; i < n; i++ {
				sh, err := pm.Shard(i, n)
				if err != nil {
					t.Fatal(err)
				}
				for _, idx := range drain(t, sh) {
					got[idx]++
				}
			}
			if len(got) != len(want) {
				t.Fatalf("size=%d n=%d: union has %d indexes, sequential %d", size, n, len(got), len(want))
			}
			for idx, c := range got {
				if c != 1 {
					t.Fatalf("size=%d n=%d: index %d emitted %d times", size, n, idx, c)
				}
				if want[idx] != 1 {
					t.Fatalf("size=%d n=%d: index %d not in sequential output", size, n, idx)
				}
			}
		}
	}
}

// TestShardSingleEqualsSequentialOrder proves shard 0 of 1 is the
// sequential permutation exactly, order included.
func TestShardSingleEqualsSequentialOrder(t *testing.T) {
	pm, err := NewPermutation(5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var seq []uint64
	for {
		idx, ok := pm.Next()
		if !ok {
			break
		}
		seq = append(seq, idx)
	}
	sh, err := pm.Shard(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, sh)
	if len(got) != len(seq) {
		t.Fatalf("shard emitted %d, sequential %d", len(got), len(seq))
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("position %d: shard %d, sequential %d", i, got[i], seq[i])
		}
	}
}

// TestShardComposition proves two-level sharding composes: sub-shard j
// of w inside top-level shard i of n equals flat shard i+j·n of n·w.
// Scanner.Run relies on this to give each worker a flat shard while
// -shard/-shards split work across instances.
func TestShardComposition(t *testing.T) {
	pm, err := NewPermutation(10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n, w = 3, 4
	for i := 0; i < n; i++ {
		// Top-level shard i emissions, round-robin split across w workers
		// would require stride bookkeeping; instead check the flat union.
		union := make(map[uint64]bool)
		for j := 0; j < w; j++ {
			sh, err := pm.Shard(i+j*n, n*w)
			if err != nil {
				t.Fatal(err)
			}
			for _, idx := range drain(t, sh) {
				if union[idx] {
					t.Fatalf("i=%d j=%d: duplicate %d across sub-shards", i, j, idx)
				}
				union[idx] = true
			}
		}
		top, err := pm.Shard(i, n)
		if err != nil {
			t.Fatal(err)
		}
		topIdx := drain(t, top)
		if len(topIdx) != len(union) {
			t.Fatalf("i=%d: sub-shards emit %d, top shard %d", i, len(union), len(topIdx))
		}
		for _, idx := range topIdx {
			if !union[idx] {
				t.Fatalf("i=%d: top-shard index %d missing from sub-shards", i, idx)
			}
		}
	}
}

func TestShardArgumentValidation(t *testing.T) {
	pm, err := NewPermutation(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]int{{-1, 4}, {4, 4}, {0, 0}, {0, -1}} {
		if _, err := pm.Shard(bad[0], bad[1]); err == nil {
			t.Errorf("Shard(%d, %d) accepted", bad[0], bad[1])
		}
	}
}

func TestShardSkipAndConsumed(t *testing.T) {
	pm, err := NewPermutation(5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pm.Shard(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	all := drain(t, ref)
	consumedAll := ref.Consumed()

	// Replay half on a fresh shard, checkpoint, resume on another.
	half, _ := pm.Shard(1, 4)
	var firstHalf []uint64
	for uint64(len(firstHalf)) < uint64(len(all)/2) {
		idx, ok := half.Next()
		if !ok {
			break
		}
		firstHalf = append(firstHalf, idx)
	}
	cursor := half.Consumed()

	resumed, _ := pm.Shard(1, 4)
	if err := resumed.Skip(cursor); err != nil {
		t.Fatal(err)
	}
	rest := drain(t, resumed)
	if got := append(firstHalf, rest...); len(got) != len(all) {
		t.Fatalf("split replay emitted %d, want %d", len(got), len(all))
	} else {
		for i := range all {
			if got[i] != all[i] {
				t.Fatalf("position %d: split replay %d, uninterrupted %d", i, got[i], all[i])
			}
		}
	}
	if resumed.Consumed() != consumedAll {
		t.Errorf("resumed consumed %d, want %d", resumed.Consumed(), consumedAll)
	}

	// Skip on a partially consumed shard and oversized skips are rejected.
	if err := resumed.Skip(0); err == nil {
		t.Error("Skip on a consumed shard accepted")
	}
	fresh, _ := pm.Shard(1, 4)
	if err := fresh.Skip(fresh.total + 1); err == nil {
		t.Error("oversized Skip accepted")
	}
}

func TestShardRewind(t *testing.T) {
	pm, err := NewPermutation(1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	sh, _ := pm.Shard(0, 2)
	a, ok := sh.Next()
	if !ok {
		t.Fatal("empty shard")
	}
	c := sh.Consumed()
	sh.rewind()
	if sh.Consumed() >= c {
		t.Fatalf("rewind did not release the cursor: %d → %d", c, sh.Consumed())
	}
	b, ok := sh.Next()
	if !ok || b != a {
		t.Fatalf("rewound shard re-emitted %d, want %d", b, a)
	}
	// Only the last emission can be rewound: a second rewind is a no-op.
	sh.rewind()
	c = sh.Consumed()
	sh.rewind()
	if sh.Consumed() != c {
		t.Error("double rewind moved the cursor twice")
	}
}

// TestScannerShardInstancesCoverSpace runs n scanner instances
// configured as shards 0..n-1 of n (the multi-machine deployment) and
// checks their probe sets partition the target space exactly.
func TestScannerShardInstancesCoverSpace(t *testing.T) {
	part, err := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/24"), pfx("10.0.2.0/23")})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		seen := make(map[netaddr.Addr]int)
		var totalProbed uint64
		for i := 0; i < n; i++ {
			var probes []netaddr.Addr
			prober := probeRecorder{record: &probes}
			s, err := New(Config{
				Targets: part,
				Prober:  prober,
				Workers: 3,
				Seed:    11,
				Shard:   i,
				Shards:  n,
			})
			if err != nil {
				t.Fatal(err)
			}
			report, err := s.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			totalProbed += report.Probed
			for _, a := range probes {
				seen[a]++
			}
		}
		if totalProbed != part.AddressCount() {
			t.Fatalf("n=%d: %d probes across instances, want %d", n, totalProbed, part.AddressCount())
		}
		if uint64(len(seen)) != part.AddressCount() {
			t.Fatalf("n=%d: %d distinct addresses probed, want %d", n, len(seen), part.AddressCount())
		}
		for a, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: %v probed %d times", n, a, c)
			}
		}
	}
}

// probeRecorder appends every probed address to record. The scanner
// serializes calls per worker; the slice is shared across workers via
// the mutex.
type probeRecorder struct {
	record *[]netaddr.Addr
}

func (p probeRecorder) Probe(_ context.Context, addr netaddr.Addr) (Result, error) {
	recorderMu.Lock()
	*p.record = append(*p.record, addr)
	recorderMu.Unlock()
	return Result{Addr: addr}, nil
}

// TestScannerCheckpointResumeExactlyOnce interrupts a rate-limited run
// mid-cycle, checkpoints it, resumes on a fresh scanner, and proves the
// union of the two runs probes each address exactly once.
func TestScannerCheckpointResumeExactlyOnce(t *testing.T) {
	part, err := rib.NewPartition([]netaddr.Prefix{pfx("10.1.0.0/22")}) // 1024 addrs
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Targets: part,
		Workers: 4,
		Seed:    21,
	}

	// First run: cancel after ~300 probes via the prober.
	var probes1 []netaddr.Addr
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Prober = cancelAfterProber{record: &probes1, n: 300, cancel: cancel}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report1, err := s1.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if report1.Probed == 0 || report1.Probed == part.AddressCount() {
		t.Fatalf("interruption did not land mid-cycle: %d probed", report1.Probed)
	}

	cp := s1.Checkpoint()
	if cp == nil {
		t.Fatal("no checkpoint after Run")
	}
	if len(cp.Consumed) != cfg.Workers {
		t.Fatalf("checkpoint has %d cursors, want %d", len(cp.Consumed), cfg.Workers)
	}

	// Second run: fresh scanner, resumed from the checkpoint.
	var probes2 []netaddr.Addr
	cfg.Prober = probeRecorder{record: &probes2}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Resume(cp); err != nil {
		t.Fatal(err)
	}
	report2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report1.Probed+report2.Probed != part.AddressCount() {
		t.Fatalf("%d + %d probes across interrupted+resumed runs, want %d",
			report1.Probed, report2.Probed, part.AddressCount())
	}
	seen := make(map[netaddr.Addr]int, part.AddressCount())
	for _, a := range probes1 {
		seen[a]++
	}
	for _, a := range probes2 {
		seen[a]++
	}
	if uint64(len(seen)) != part.AddressCount() {
		t.Fatalf("%d distinct addresses probed, want %d", len(seen), part.AddressCount())
	}
	for a, c := range seen {
		if c != 1 {
			t.Fatalf("%v probed %d times across interrupted+resumed cycle", a, c)
		}
	}
}

// cancelAfterProber records probes and cancels the run's context after
// the n-th probe (counted across workers).
type cancelAfterProber struct {
	record *[]netaddr.Addr
	n      int64
	cancel context.CancelFunc
}

var recorderMu sync.Mutex

func (p cancelAfterProber) Probe(_ context.Context, addr netaddr.Addr) (Result, error) {
	recorderMu.Lock()
	*p.record = append(*p.record, addr)
	n := int64(len(*p.record))
	recorderMu.Unlock()
	if n == p.n {
		p.cancel()
	}
	return Result{Addr: addr}, nil
}

// TestScannerCheckpointValidation rejects checkpoints whose geometry
// does not match the resuming scanner.
func TestScannerCheckpointValidation(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/26")})
	prober, _ := NewSimProber(nil, 0, 1)
	mk := func(cfg Config) *Scanner {
		cfg.Targets = part
		cfg.Prober = prober
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := mk(Config{Workers: 2, Seed: 5})
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cp := s.Checkpoint()

	for name, cfg := range map[string]Config{
		"seed":    {Workers: 2, Seed: 6},
		"workers": {Workers: 4, Seed: 5},
		"shards":  {Workers: 2, Seed: 5, Shard: 1, Shards: 2},
	} {
		s2 := mk(cfg)
		if err := s2.Resume(cp); err != nil {
			t.Fatal(err)
		}
		if _, err := s2.Run(context.Background()); err == nil {
			t.Errorf("%s mismatch accepted on resume", name)
		}
	}
	if err := s.Resume(nil); err == nil {
		t.Error("nil checkpoint accepted")
	}

	// Round-trip through the wire format.
	var buf strings.Builder
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N != cp.N || back.Seed != cp.Seed || back.Workers != cp.Workers ||
		len(back.Consumed) != len(cp.Consumed) {
		t.Errorf("checkpoint round-trip mismatch: %+v vs %+v", back, cp)
	}
}
