package scan

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// virtualPolicy puts a PolicyLimiter fully on a fake clock: every sleep
// request advances virtual time instead of blocking, exactly like
// virtualLimiter.
func virtualPolicy(t *testing.T, cfg PolicyConfig) (*PolicyLimiter, *fakeClock, *atomic.Int64) {
	t.Helper()
	p, err := NewPolicyLimiter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	var sleeps atomic.Int64
	p.now = clock.now
	p.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		sleeps.Add(1)
		clock.advance(d)
		return nil
	}
	return p, clock, &sleeps
}

func TestPolicyLimiterValidation(t *testing.T) {
	origins := []uint32{1, 2}
	bad := []PolicyConfig{
		{Rate: math.NaN()},
		{Rate: math.Inf(1)},
		{ASRate: math.NaN(), Origins: origins},
		{PrefixRate: math.Inf(-1), Prefixes: 2},
		{Rate: -1},
		{Backoff: BackoffConfig{Threshold: 3}}, // backoff without a per-AS rate
		{ASRate: 10},                           // per-AS rate without origins
		{PrefixRate: 10},                       // per-prefix rate without prefix count
		{ASRate: 10, Origins: origins, Backoff: BackoffConfig{Threshold: -1, MinRateShare: 2}},
	}
	// The last entry is actually fine (threshold <= 0 disables backoff);
	// drop it from the reject list and check it separately.
	ok := bad[len(bad)-1]
	bad = bad[:len(bad)-1]
	for i, cfg := range bad {
		if _, err := NewPolicyLimiter(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewPolicyLimiter(ok); err != nil {
		t.Errorf("disabled backoff rejected: %v", err)
	}
}

// TestPolicyLimiterSlowestLevelGoverns: with a fast global rate and a
// slow per-AS rate, sustained probing into one AS paces at the AS rate,
// while a second AS still has its own full allowance.
func TestPolicyLimiterSlowestLevelGoverns(t *testing.T) {
	p, clock, sleeps := virtualPolicy(t, PolicyConfig{
		Rate: 1000, Burst: 1,
		ASRate: 10, ASBurst: 1,
		Origins: []uint32{100, 200}, // prefix 0 -> AS100, prefix 1 -> AS200
	})
	ctx := context.Background()
	start := clock.now()
	const n = 20
	for i := 0; i < n; i++ {
		if err := p.Wait(ctx, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Burst 1 absorbs the first probe; the remaining n-1 pace at 10/s.
	elapsed := clock.now().Sub(start).Seconds()
	want := float64(n-1) / 10
	if elapsed < want*0.999 || elapsed > want*1.001 {
		t.Fatalf("%d probes into one AS took %.3fs of virtual time, want ~%.3fs", n, elapsed, want)
	}
	if sleeps.Load() == 0 {
		t.Fatal("no sleeps recorded for a paced scan")
	}
	// The other AS's bucket is untouched: its first probe is free.
	before := sleeps.Load()
	if err := p.Wait(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if sleeps.Load() != before {
		t.Fatal("first probe into a fresh AS slept")
	}
}

// TestPolicyLimiterReservationSerialized mirrors the Limiter contract:
// k concurrent waiters reserve strictly later slots — total virtual time
// k/rate, one sleep each, no thundering herd.
func TestPolicyLimiterReservationSerialized(t *testing.T) {
	p, clock, _ := virtualPolicy(t, PolicyConfig{
		ASRate: 10, ASBurst: 1,
		Origins: []uint32{7},
	})
	ctx := context.Background()
	start := clock.now()
	const k = 8
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Wait(ctx, 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	elapsed := clock.now().Sub(start).Seconds()
	want := float64(k-1) / 10
	if elapsed < want*0.999 {
		t.Fatalf("%d concurrent waiters advanced %.3fs of virtual time, want >= %.3fs", k, elapsed, want)
	}
}

func TestPolicyLimiterCancelRefundsAllLevels(t *testing.T) {
	p, _, _ := virtualPolicy(t, PolicyConfig{
		Rate: 100, Burst: 1,
		ASRate: 10, ASBurst: 1,
		PrefixRate: 5, PrefixBurst: 1,
		Origins:  []uint32{1},
		Prefixes: 1,
	})
	// Drain the bursts.
	if err := p.Wait(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	// A canceled wait must return its reservation at every level.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Wait(canceled, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Wait returned %v", err)
	}
	p.mu.Lock()
	g, a, x := p.global.tokens, p.as[1].tokens, p.pfx[0].tokens
	p.mu.Unlock()
	// All three buckets were at 0 after the draining probe; the refund
	// must restore the canceled take exactly (modulo refill credit,
	// which is 0 on the fake clock since no time passed).
	if g < -1e-9 || a < -1e-9 || x < -1e-9 {
		t.Fatalf("reservation not refunded: global %.3f as %.3f pfx %.3f", g, a, x)
	}
}

func TestPolicyLimiterObserveBackoffAndRecovery(t *testing.T) {
	p, _, _ := virtualPolicy(t, PolicyConfig{
		ASRate: 64, ASBurst: 1,
		Origins: []uint32{42},
		Backoff: BackoffConfig{Threshold: 3, MinRateShare: 1.0 / 8, Recovery: 0.25},
	})
	// Two errors: below threshold, no event.
	if p.Observe(0, false) || p.Observe(0, false) {
		t.Fatal("backoff fired below threshold")
	}
	// Third consecutive error: halve 64 -> 32.
	if !p.Observe(0, false) {
		t.Fatal("no backoff at threshold")
	}
	if r, _ := p.ASRateOf(42); r != 32 {
		t.Fatalf("rate after one halving = %v, want 32", r)
	}
	// Two more halvings: 32 -> 16 -> 8 (the floor, 64/8).
	for i := 0; i < 6; i++ {
		p.Observe(0, false)
	}
	if r, _ := p.ASRateOf(42); r != 8 {
		t.Fatalf("rate at floor = %v, want 8", r)
	}
	// At the floor further streaks are not events.
	for i := 0; i < 3; i++ {
		if p.Observe(0, false) && i == 2 {
			t.Fatal("backoff event at the floor")
		}
	}
	// A success restores Recovery (0.25) of the base per call, capped at
	// the base.
	p.Observe(0, true)
	if r, _ := p.ASRateOf(42); r != 8+0.25*64 {
		t.Fatalf("rate after one success = %v, want %v", r, 8+0.25*64)
	}
	for i := 0; i < 10; i++ {
		p.Observe(0, true)
	}
	if r, _ := p.ASRateOf(42); r != 64 {
		t.Fatalf("rate after full recovery = %v, want 64", r)
	}
	// A success also resets the streak: two errors, one success, two
	// errors must not trigger.
	p.Observe(0, false)
	p.Observe(0, false)
	p.Observe(0, true)
	if p.Observe(0, false) || p.Observe(0, false) {
		t.Fatal("streak not reset by success")
	}
}

func TestPolicyLimiterSetASRate(t *testing.T) {
	p, _, _ := virtualPolicy(t, PolicyConfig{
		ASRate:  100,
		Origins: []uint32{5},
	})
	if err := p.SetASRate(5, math.NaN()); err == nil {
		t.Fatal("NaN rate accepted")
	}
	if err := p.SetASRate(5, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	if err := p.SetASRate(5, 3); err != nil {
		t.Fatal(err)
	}
	if r, ok := p.ASRateOf(5); !ok || r != 3 {
		t.Fatalf("ASRateOf = %v, %v", r, ok)
	}
	// Untouched ASes report the configured rate.
	if r, ok := p.ASRateOf(999); !ok || r != 100 {
		t.Fatalf("untouched ASRateOf = %v, %v", r, ok)
	}
	// Without per-AS pacing both calls reject/deny.
	bare, _, _ := virtualPolicy(t, PolicyConfig{Rate: 10})
	if err := bare.SetASRate(1, 5); err == nil {
		t.Fatal("SetASRate without per-AS pacing accepted")
	}
	if _, ok := bare.ASRateOf(1); ok {
		t.Fatal("ASRateOf reported ok without per-AS pacing")
	}
}

func TestNewLimiterRejectsNonFinite(t *testing.T) {
	for _, rate := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -3} {
		if _, err := NewLimiter(rate, 4); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
	if _, err := NewLimiter(10, 0); err == nil {
		t.Error("zero burst accepted")
	}
}

func TestLimiterSetRate(t *testing.T) {
	lim, clock, _ := virtualLimiter(t, 10, 1)
	ctx := context.Background()
	if err := lim.SetRate(math.NaN()); err == nil {
		t.Fatal("NaN rate accepted")
	}
	if err := lim.SetRate(math.Inf(1)); err == nil {
		t.Fatal("Inf rate accepted")
	}
	if got := lim.Rate(); got != 10 {
		t.Fatalf("Rate after rejected SetRate = %v, want 10", got)
	}
	// Drain the burst, then halve the rate: the next wait takes 1/5 s.
	if err := lim.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := lim.SetRate(5); err != nil {
		t.Fatal(err)
	}
	start := clock.now()
	if err := lim.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if d := clock.now().Sub(start).Seconds(); d < 0.199 || d > 0.201 {
		t.Fatalf("wait after SetRate(5) took %.3fs, want ~0.2s", d)
	}
}

// politenessFixture: four /26 target prefixes across two origin ASes.
func politenessFixture(t *testing.T) (rib.Partition, []uint32) {
	t.Helper()
	part, err := rib.NewPartition([]netaddr.Prefix{
		pfx("10.0.0.0/26"), pfx("10.0.0.64/26"), // AS 64500
		pfx("10.0.0.128/26"), pfx("10.0.0.192/26"), // AS 64501
	})
	if err != nil {
		t.Fatal(err)
	}
	return part, []uint32{64500, 64500, 64501, 64501}
}

// asOf maps a probed address back to its origin AS through the fixture.
func asOf(t *testing.T, part rib.Partition, origins []uint32, a netaddr.Addr) uint32 {
	t.Helper()
	i, ok := part.Find(a)
	if !ok {
		t.Fatalf("probed address %v outside the target partition", a)
	}
	return origins[i]
}

func TestScannerPolitenessValidation(t *testing.T) {
	part, origins := politenessFixture(t)
	prober, _ := NewSimProber(nil, 0, 1)
	if _, err := New(Config{Targets: part, Prober: prober,
		Politeness: Politeness{ASBudget: 10}}); err == nil {
		t.Fatal("per-AS budget without origins accepted")
	}
	if _, err := New(Config{Targets: part, Prober: prober,
		Politeness: Politeness{Footprint: true, Origins: origins[:2]}}); err == nil {
		t.Fatal("short origin mapping accepted")
	}
	if _, err := New(Config{Targets: part, Prober: prober,
		Politeness: Politeness{Backoff: BackoffConfig{Threshold: 3}, Origins: origins}}); err == nil {
		t.Fatal("backoff without a per-AS rate accepted")
	}
	if _, err := New(Config{Targets: part, Prober: prober,
		Politeness: Politeness{ASRate: math.NaN(), Origins: origins}}); err == nil {
		t.Fatal("NaN per-AS rate accepted")
	}
}

func TestScannerBudgetCapsPerAS(t *testing.T) {
	part, origins := politenessFixture(t)
	var mu sync.Mutex
	perAS := map[uint32]int{}
	prober := proberFunc(func(_ context.Context, a netaddr.Addr) (Result, error) {
		mu.Lock()
		defer mu.Unlock()
		perAS[asOfQuiet(part, origins, a)]++
		return Result{Addr: a}, nil
	})
	const budget = 40
	s, err := New(Config{
		Targets: part,
		Prober:  prober,
		Workers: 4,
		Seed:    9,
		Politeness: Politeness{
			Origins:  origins,
			ASBudget: budget,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for as, n := range perAS {
		if n != budget {
			t.Errorf("AS%d received %d probes, want exactly the budget %d", as, n, budget)
		}
	}
	// 128 addresses per AS, 40 probed: 88 denied each.
	if want := part.AddressCount() - 2*budget; rep.BudgetDenied != want {
		t.Errorf("BudgetDenied = %d, want %d", rep.BudgetDenied, want)
	}
	if rep.Probed != 2*budget {
		t.Errorf("Probed = %d, want %d", rep.Probed, 2*budget)
	}
	for as, st := range rep.PerAS {
		if st.Probed != budget {
			t.Errorf("PerAS[%d].Probed = %d, want %d", as, st.Probed, budget)
		}
		if st.BudgetDenied != 128-budget {
			t.Errorf("PerAS[%d].BudgetDenied = %d, want %d", as, st.BudgetDenied, 128-budget)
		}
	}
}

// asOfQuiet is asOf without the testing.T plumbing (for use inside
// prober callbacks).
func asOfQuiet(part rib.Partition, origins []uint32, a netaddr.Addr) uint32 {
	if i, ok := part.Find(a); ok {
		return origins[i]
	}
	return ^uint32(0)
}

type proberFunc func(ctx context.Context, addr netaddr.Addr) (Result, error)

func (f proberFunc) Probe(ctx context.Context, addr netaddr.Addr) (Result, error) {
	return f(ctx, addr)
}

// TestScannerBudgetHoldsAcrossResume is the acceptance criterion: an
// interrupted-and-resumed budget scan probes no AS beyond its cap,
// with the per-AS counters carried through the checkpoint.
func TestScannerBudgetHoldsAcrossResume(t *testing.T) {
	part, origins := politenessFixture(t)
	const budget = 50
	cfg := Config{
		Targets: part,
		Workers: 4,
		Seed:    13,
		Politeness: Politeness{
			Origins:  origins,
			ASBudget: budget,
		},
	}

	// Run 1: cancel mid-cycle.
	var probes1 []netaddr.Addr
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Prober = cancelAfterProber{record: &probes1, n: 60, cancel: cancel}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v", err)
	}
	cp := s1.Checkpoint()
	if cp == nil {
		t.Fatal("no checkpoint")
	}
	if len(cp.ASProbed) == 0 {
		t.Fatal("checkpoint carries no per-AS probe counters")
	}

	// Round-trip the checkpoint through its JSON encoding, as a real
	// interrupted deployment would.
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	cp2, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp2.ASProbed) != len(cp.ASProbed) {
		t.Fatalf("ASProbed lost in serialization: %v vs %v", cp2.ASProbed, cp.ASProbed)
	}
	for as, n := range cp.ASProbed {
		if cp2.ASProbed[as] != n {
			t.Fatalf("ASProbed[%d] = %d after round-trip, want %d", as, cp2.ASProbed[as], n)
		}
	}

	// Run 2: fresh scanner resumed from the checkpoint.
	var probes2 []netaddr.Addr
	cfg.Prober = probeRecorder{record: &probes2}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Resume(cp2); err != nil {
		t.Fatal(err)
	}
	rep2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// The budget holds across the whole cycle, and no address repeats.
	totals := map[uint32]int{}
	seen := map[netaddr.Addr]int{}
	for _, a := range append(append([]netaddr.Addr{}, probes1...), probes2...) {
		totals[asOf(t, part, origins, a)]++
		seen[a]++
	}
	for as, n := range totals {
		if n > budget {
			t.Errorf("AS%d received %d probes across interrupted+resumed runs, budget %d", as, n, budget)
		}
	}
	for a, c := range seen {
		if c != 1 {
			t.Errorf("%v probed %d times", a, c)
		}
	}
	// With ample remaining targets every AS should also reach its cap.
	for as, st := range rep2.PerAS {
		if st.Probed != budget {
			t.Errorf("resumed cycle ended with PerAS[%d].Probed = %d, want the full budget %d", as, st.Probed, budget)
		}
	}
}

// TestScannerMidCycleExclusionReloadHonored is the acceptance criterion:
// an exclusion list swapped while the cycle runs takes effect before the
// next draw (single worker: the very next address).
func TestScannerMidCycleExclusionReloadHonored(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/24")})
	blocked := pfx("10.0.0.128/25")
	var s *Scanner
	var n int
	var late []netaddr.Addr // probes after the swap
	prober := proberFunc(func(_ context.Context, a netaddr.Addr) (Result, error) {
		n++
		if n == 10 {
			// The "reload": from now on the upper half is off-limits.
			s.SetExclusions([]netaddr.Prefix{blocked})
		}
		if n > 10 {
			late = append(late, a)
		}
		return Result{Addr: a}, nil
	})
	s = mustScanner(t, Config{Targets: part, Prober: prober, Workers: 1, Seed: 77})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range late {
		if blocked.Contains(a) {
			t.Fatalf("probed %v after it was excluded mid-cycle", a)
		}
	}
	if rep.Excluded == 0 {
		t.Fatal("no addresses counted as excluded after the mid-cycle swap")
	}
	if rep.Probed+rep.Excluded != part.AddressCount() {
		t.Fatalf("probed %d + excluded %d != %d targets", rep.Probed, rep.Excluded, part.AddressCount())
	}
	if s.ExclusionCount() != 1 {
		t.Fatalf("ExclusionCount = %d, want 1", s.ExclusionCount())
	}
}

func mustScanner(t *testing.T, cfg Config) *Scanner {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestScannerResumedDrawsHonorGrownExclusions: addresses left unprobed
// by an interrupted cycle and excluded before the resume are counted as
// Excluded by the resumed run, never probed — reload and checkpoint
// compose.
func TestScannerResumedDrawsHonorGrownExclusions(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/24")})
	cfg := Config{Targets: part, Workers: 2, Seed: 31}

	var probes1 []netaddr.Addr
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Prober = cancelAfterProber{record: &probes1, n: 64, cancel: cancel}
	s1 := mustScanner(t, cfg)
	if _, err := s1.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatal("expected an interrupted run")
	}
	cp := s1.Checkpoint()

	blocked := pfx("10.0.0.0/25")
	var probes2 []netaddr.Addr
	cfg.Prober = probeRecorder{record: &probes2}
	cfg.Exclude = []netaddr.Prefix{blocked}
	s2 := mustScanner(t, cfg)
	if err := s2.Resume(cp); err != nil {
		t.Fatal(err)
	}
	rep2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range probes2 {
		if blocked.Contains(a) {
			t.Fatalf("resumed run probed excluded %v", a)
		}
	}
	// Every blocked address not already probed before the interruption
	// must surface as Excluded.
	already := 0
	for _, a := range probes1 {
		if blocked.Contains(a) {
			already++
		}
	}
	if want := blocked.NumAddresses() - uint64(already); rep2.Excluded != want {
		t.Fatalf("resumed run excluded %d, want %d (%d of %d blocked addresses were probed pre-reload)",
			rep2.Excluded, want, already, blocked.NumAddresses())
	}
}

// TestScannerFlakyProberAcrossResume: FlakyProber's injected errors are
// counted exactly once across an interrupted-and-resumed cycle — no
// double counting, no loss — and erroring draws are not re-probed.
func TestScannerFlakyProberAcrossResume(t *testing.T) {
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/24")})
	cfg := Config{Targets: part, Workers: 2, Seed: 3}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var probes1 []netaddr.Addr
	cfg.Prober = &FlakyProber{
		Inner:     cancelAfterProber{record: &probes1, n: 100, cancel: cancel},
		FailEvery: 5,
	}
	s1 := mustScanner(t, cfg)
	rep1, err := s1.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v", err)
	}
	cp := s1.Checkpoint()

	var probes2 []netaddr.Addr
	cfg.Prober = &FlakyProber{
		Inner:     probeRecorder{record: &probes2},
		FailEvery: 5,
	}
	s2 := mustScanner(t, cfg)
	if err := s2.Resume(cp); err != nil {
		t.Fatal(err)
	}
	rep2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Probed+rep2.Probed != part.AddressCount() {
		t.Fatalf("probed %d + %d across runs, want %d", rep1.Probed, rep2.Probed, part.AddressCount())
	}
	// Every FailEvery-th call of each run's prober errored; the reports
	// must account each injected error exactly once.
	if want := rep1.Probed / 5; rep1.Errors != want {
		t.Fatalf("run 1 reported %d errors, injected %d", rep1.Errors, want)
	}
	if want := rep2.Probed / 5; rep2.Errors != want {
		t.Fatalf("run 2 reported %d errors, injected %d", rep2.Errors, want)
	}
}

// TestCampaignAllErrorCycleNoPanic: a cycle whose probes all fail yields
// an empty snapshot; re-selection must fail gracefully (no hosts to
// cover), not panic — in both the full and incremental paths.
func TestCampaignAllErrorCycleNoPanic(t *testing.T) {
	uni, _ := campaignFixture(t)
	dead := proberFunc(func(_ context.Context, a netaddr.Addr) (Result, error) {
		return Result{Addr: a}, fmt.Errorf("network unplugged")
	})
	for _, incremental := range []bool{false, true} {
		c := &Campaign{
			Universe:    uni,
			Prober:      dead,
			Opts:        core.Options{Phi: 0.9},
			Workers:     2,
			Seed:        5,
			Incremental: incremental,
		}
		done, err := c.Run(context.Background(), 2)
		if err == nil {
			t.Fatalf("incremental=%v: all-error campaign succeeded", incremental)
		}
		if !strings.Contains(err.Error(), "selection") {
			t.Errorf("incremental=%v: error %q does not point at the selection step", incremental, err)
		}
		if len(done) != 0 {
			t.Errorf("incremental=%v: %d cycles completed on an all-error campaign", incremental, len(done))
		}
	}
}

// TestCampaignPolitenessNeedsOriginsOf: per-AS politeness without the
// plan→origins mapping is a configuration error, caught on cycle 0.
func TestCampaignPolitenessNeedsOriginsOf(t *testing.T) {
	uni, live := campaignFixture(t)
	prober, _ := NewSimProber(live, 0, 3)
	c := &Campaign{
		Universe:   uni,
		Prober:     prober,
		Opts:       core.Options{Phi: 0.9},
		Seed:       5,
		Politeness: Politeness{ASBudget: 100},
	}
	if _, err := c.Run(context.Background(), 1); err == nil || !strings.Contains(err.Error(), "OriginsOf") {
		t.Fatalf("campaign without OriginsOf returned %v", err)
	}
}

// TestCampaignBudgetedFootprint: the campaign threads politeness through
// every cycle, remapping origins to each cycle's plan.
func TestCampaignBudgetedFootprint(t *testing.T) {
	uni, live := campaignFixture(t)
	prober, err := NewSimProber(live, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// One origin AS per /24 of the fixture.
	originsOf := func(plan rib.Partition) []uint32 {
		out := make([]uint32, plan.Len())
		for i := 0; i < plan.Len(); i++ {
			out[i] = 64500 + uint32(plan.Prefix(i).First()>>8&0xff)
		}
		return out
	}
	c := &Campaign{
		Universe:   uni,
		Prober:     prober,
		Opts:       core.Options{Phi: 0.9},
		Workers:    2,
		Seed:       5,
		Politeness: Politeness{Footprint: true},
		OriginsOf:  originsOf,
	}
	cycles, err := c.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cycles[0].Report.PerAS); got != 4 {
		t.Fatalf("cycle 0 footprint covers %d ASes, want 4", got)
	}
	// Cycle 1 scans the 2-prefix selection: its footprint must be keyed
	// by that plan's origins, not cycle 0's.
	if got := len(cycles[1].Report.PerAS); got != 2 {
		t.Fatalf("cycle 1 footprint covers %d ASes, want 2", got)
	}
	var probed uint64
	for _, st := range cycles[1].Report.PerAS {
		probed += st.Probed
	}
	if probed != cycles[1].Report.Probed {
		t.Fatalf("cycle 1 per-AS probes sum to %d, report says %d", probed, cycles[1].Report.Probed)
	}
}

func TestWriteFootprintTable(t *testing.T) {
	part, origins := politenessFixture(t)
	prober, _ := NewSimProber([]netaddr.Addr{netaddr.MustParseAddr("10.0.0.5")}, 0, 1)
	s := mustScanner(t, Config{
		Targets:    part,
		Prober:     prober,
		Workers:    2,
		Seed:       4,
		Politeness: Politeness{Origins: origins, Footprint: true},
	})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFootprint(&buf, part, origins, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"AS64500", "AS64501", "total", "100.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("footprint table missing %q:\n%s", want, out)
		}
	}
	// Reports without per-AS accounting are rejected, as are mismatched
	// origin mappings.
	if err := WriteFootprint(&buf, part, origins, &Report{}); err == nil {
		t.Error("footprint accepted a report without per-AS accounting")
	}
	if err := WriteFootprint(&buf, part, origins[:1], rep); err == nil {
		t.Error("footprint accepted a short origin mapping")
	}
}

func TestExclusionReloaderPoll(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "exclude.conf")
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/24")})
	prober, _ := NewSimProber(nil, 0, 1)
	s := mustScanner(t, Config{Targets: part, Prober: prober})

	r := NewExclusionReloader(s, path, time.Second)
	// Missing file: an error, list untouched.
	if _, err := r.Poll(); !os.IsNotExist(err) {
		t.Fatalf("Poll on a missing file returned %v", err)
	}
	if err := os.WriteFile(path, []byte("10.0.0.0/25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reloaded, err := r.Poll()
	if err != nil || !reloaded {
		t.Fatalf("first Poll = %v, %v", reloaded, err)
	}
	if s.ExclusionCount() != 1 {
		t.Fatalf("ExclusionCount = %d, want 1", s.ExclusionCount())
	}
	// Unchanged file: no reload.
	if reloaded, err := r.Poll(); err != nil || reloaded {
		t.Fatalf("unchanged Poll = %v, %v", reloaded, err)
	}
	// Grown file (size changes even if mtime granularity hides the
	// rewrite): reload.
	if err := os.WriteFile(path, []byte("10.0.0.0/25\n10.0.0.128/26\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if reloaded, err := r.Poll(); err != nil || !reloaded {
		t.Fatalf("grown Poll = %v, %v", reloaded, err)
	}
	if s.ExclusionCount() != 2 {
		t.Fatalf("ExclusionCount = %d, want 2", s.ExclusionCount())
	}
	// Unparseable file: error, previous list kept.
	if err := os.WriteFile(path, []byte("not a prefix at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if reloaded, err := r.Poll(); err == nil || reloaded {
		t.Fatalf("garbage Poll = %v, %v", reloaded, err)
	}
	if s.ExclusionCount() != 2 {
		t.Fatalf("ExclusionCount after failed reload = %d, want 2", s.ExclusionCount())
	}
}

func TestExclusionReloaderRun(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "exclude.conf")
	if err := os.WriteFile(path, []byte("192.0.2.0/24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	part, _ := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/24")})
	prober, _ := NewSimProber(nil, 0, 1)
	s := mustScanner(t, Config{Targets: part, Prober: prober})

	r := NewExclusionReloader(s, path, time.Hour)
	var polls atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Deterministic loop: the injected sleeper "waits" instantly three
	// times, then cancels — no wall-clock time passes.
	r.sleep = func(ctx context.Context, d time.Duration) error {
		if d != time.Hour {
			t.Errorf("sleep %v, want the configured interval", d)
		}
		if polls.Add(1) > 3 {
			cancel()
		}
		return ctx.Err()
	}
	var reloads atomic.Int64
	r.OnReload = func(n int, err error) {
		if err != nil {
			t.Errorf("OnReload error: %v", err)
			return
		}
		if n != 1 {
			t.Errorf("OnReload n = %d, want 1", n)
		}
		reloads.Add(1)
	}
	if err := r.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
	if reloads.Load() != 1 {
		t.Fatalf("%d reloads, want 1 (later polls see an unchanged file)", reloads.Load())
	}
	if s.ExclusionCount() != 1 {
		t.Fatalf("ExclusionCount = %d, want 1", s.ExclusionCount())
	}
}

// TestScannerConcurrentReloadScanBackoff is the race-detector smoke
// test: a politeness-enabled scan runs while the exclusion list is
// swapped, per-AS rates are retuned and a reloader polls — all
// concurrently. Run under -race in CI.
func TestScannerConcurrentReloadScanBackoff(t *testing.T) {
	part, origins := politenessFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "exclude.conf")
	if err := os.WriteFile(path, []byte("# empty\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	flaky := proberFunc(func(_ context.Context, a netaddr.Addr) (Result, error) {
		if a%7 == 0 {
			return Result{Addr: a}, fmt.Errorf("flap")
		}
		return Result{Addr: a, Open: a%3 == 0}, nil
	})
	s := mustScanner(t, Config{
		Targets: part,
		Prober:  flaky,
		Rate:    1e7,
		Workers: 4,
		Seed:    8,
		Politeness: Politeness{
			Origins:  origins,
			ASRate:   1e7,
			ASBudget: 100,
			Backoff:  BackoffConfig{Threshold: 2},
		},
	})
	r := NewExclusionReloader(s, path, time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		r.Run(ctx)
	}()
	go func() {
		defer wg.Done()
		for i := 0; ctx.Err() == nil; i++ {
			if i%2 == 0 {
				s.SetExclusions([]netaddr.Prefix{pfx("10.0.0.192/26")})
			} else {
				s.SetExclusions(nil)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 1; ctx.Err() == nil; i++ {
			_ = s.Policy().SetASRate(64500, float64(i%100+1))
			_, _ = s.Policy().ASRateOf(64501)
		}
	}()
	rep, err := s.Run(context.Background())
	cancel()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probed+rep.Excluded+rep.BudgetDenied != part.AddressCount() {
		t.Fatalf("probed %d + excluded %d + denied %d != %d targets",
			rep.Probed, rep.Excluded, rep.BudgetDenied, part.AddressCount())
	}
}

// TestTCPProberContextError: a dial that failed because the parent
// context died surfaces ctx.Err() instead of masquerading as a closed
// port; a per-probe timeout stays a normal closed-port outcome.
func TestTCPProberContextError(t *testing.T) {
	p := &TCPProber{Port: 9, Timeout: 50 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Probe(ctx, netaddr.MustParseAddr("127.0.0.1")); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled probe returned %v, want context.Canceled", err)
	}
	deadCtx, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := p.Probe(deadCtx, netaddr.MustParseAddr("127.0.0.1")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline-dead probe returned %v, want context.DeadlineExceeded", err)
	}
	// A refused connection (closed port, live context): a normal
	// closed-port outcome, not an error. Grab a port that was just
	// listening and no longer is.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	closedPort := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	pc := &TCPProber{Port: closedPort, Timeout: 50 * time.Millisecond}
	res, err := pc.Probe(context.Background(), netaddr.MustParseAddr("127.0.0.1"))
	if err != nil {
		t.Fatalf("closed-port probe returned error %v", err)
	}
	if res.Open {
		t.Fatal("closed-port probe reported an open port")
	}
}
