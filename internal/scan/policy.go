package scan

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tass-scan/tass/internal/rib"
)

// Politeness configures the good-citizen layer of a scan: hierarchical
// per-origin-AS and per-prefix pacing under the global rate, adaptive
// per-AS backoff, per-AS probe budgets, and per-AS footprint telemetry.
// The zero value disables everything (the scanner behaves exactly as
// before). Any per-AS feature needs Origins.
type Politeness struct {
	// Origins maps each target prefix (by Config.Targets index) to its
	// origin AS — rib.Table.OriginsOf builds it from an announced table.
	// Origin 0 groups prefixes with no known origin.
	Origins []uint32
	// ASRate, when positive, caps probes per second into any single
	// origin AS (a token bucket per AS, lazily created on first probe).
	ASRate float64
	// ASBurst is the per-AS bucket burst (default 16).
	ASBurst int
	// PrefixRate, when positive, caps probes per second into any single
	// target prefix.
	PrefixRate float64
	// PrefixBurst is the per-prefix bucket burst (default 8).
	PrefixBurst int
	// ASBudget, when positive, caps total probes per origin AS for the
	// whole cycle — including across interrupted and resumed runs: the
	// per-AS counters ride in the Checkpoint. Targets drawn beyond the
	// cap are skipped (counted in ASStat.BudgetDenied), never probed.
	ASBudget uint64
	// Backoff enables adaptive per-AS backoff (requires ASRate > 0).
	Backoff BackoffConfig
	// Footprint enables per-AS accounting (Report.PerAS) even when no
	// per-AS rate or budget is configured.
	Footprint bool
}

// perAS reports whether any per-AS feature is on (and Origins required).
func (p *Politeness) perAS() bool {
	return p.ASRate > 0 || p.ASBudget > 0 || p.Backoff.Threshold > 0 || p.Footprint
}

// layered reports whether probes must pass through a PolicyLimiter
// instead of the plain global Limiter.
func (p *Politeness) layered() bool {
	return p.ASRate > 0 || p.PrefixRate > 0
}

// BackoffConfig parameterizes complaint-driven adaptive backoff: an AS
// answering with an error burst (timeout storm, ICMP unreachable flood —
// the classic "please stop" signals) gets its bucket rate halved, and
// earns it back gradually as probes succeed again.
type BackoffConfig struct {
	// Threshold is the consecutive-error streak within one AS that
	// triggers a rate halving. 0 disables backoff.
	Threshold int
	// MinRateShare floors the backed-off rate at this fraction of the
	// configured ASRate (default 1/64): an AS never stops entirely, it
	// just trickles until probes succeed again.
	MinRateShare float64
	// Recovery is the fraction of the base rate restored per successful
	// probe after a backoff (default 0.05, i.e. ~20 successes to climb
	// one halving back).
	Recovery float64
}

func (b *BackoffConfig) withDefaults() BackoffConfig {
	out := *b
	if out.MinRateShare <= 0 || out.MinRateShare > 1 {
		out.MinRateShare = 1.0 / 64
	}
	if out.Recovery <= 0 || out.Recovery > 1 {
		out.Recovery = 0.05
	}
	return out
}

// bucket is one token-bucket level of a PolicyLimiter. Unlike Limiter it
// carries no lock: all buckets of one PolicyLimiter share the owner's
// mutex, so layering per-AS and per-prefix pacing under the global rate
// costs arithmetic, not extra lock acquisitions. Timestamps are int64
// nanoseconds, not time.Time: a probe refills up to three buckets, and
// the integer subtraction keeps the per-bucket cost to a few ns (the
// ≤10% hierarchy-overhead budget of BenchmarkPolicyLimiter).
type bucket struct {
	rate     float64 // current refill rate (backoff moves it)
	base     float64 // configured rate (recovery target)
	burst    float64
	tokens   float64
	lastNs   int64  // UnixNano of the last refill; 0 = never refilled
	streak   int    // consecutive errors (backoff detection)
	backoffs uint64 // rate-halving events
}

func newBucket(rate float64, burst int) *bucket {
	return &bucket{rate: rate, base: rate, burst: float64(burst), tokens: float64(burst)}
}

func (b *bucket) refill(nowNs int64) {
	if b.lastNs != 0 {
		b.tokens += float64(nowNs-b.lastNs) * b.rate * 1e-9
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.lastNs = nowNs
}

// take reserves one token (driving the bucket negative, exactly like
// Limiter.Wait) and returns the seconds until the refill covers the debt
// — 0 when the token was immediately available.
func (b *bucket) take(nowNs int64) float64 {
	b.refill(nowNs)
	b.tokens--
	if b.tokens >= 0 {
		return 0
	}
	return -b.tokens / b.rate
}

// untake returns a canceled reservation.
func (b *bucket) untake() {
	b.tokens++
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// PolicyLimiter paces probes through a hierarchy of token buckets:
// global, per-origin-AS, and per-target-prefix. A probe must clear every
// configured level; the wait is the maximum of the levels' debts.
//
// Waiters are reservation-serialized exactly like Limiter.Wait — each
// waiter takes its tokens immediately (driving the buckets negative) and
// sleeps once for the longest debt, so concurrent waiters wake one at a
// time in reservation order at every level. All levels share one mutex:
// the global bucket serializes every probe anyway, so the per-AS and
// per-prefix levels add bucket arithmetic under the already-taken lock
// rather than extra lock traffic.
//
// Per-AS buckets are created lazily on first probe into the AS (a 2^32
// scan over ~70 k ASes allocates only what it touches), and per-prefix
// buckets likewise. SetASRate and the Observe backoff path retune a
// single AS's rate while a cycle runs.
type PolicyLimiter struct {
	mu       sync.Mutex
	now      func() time.Time
	sleep    func(ctx context.Context, d time.Duration) error
	global   *bucket // nil when no global rate
	asRate   float64
	asBurst  int
	pfxRate  float64
	pfxBurst int
	origins  []uint32
	backoff  BackoffConfig
	as       map[uint32]*bucket
	asByPfx  []*bucket // per-prefix cache of the owning AS bucket
	pfx      []*bucket
}

// PolicyConfig parameterizes NewPolicyLimiter. Rate/Burst are the global
// level (0 disables it); ASRate and PrefixRate the lower levels. Origins
// is required when ASRate or Backoff is set; Prefixes sizes the
// per-prefix level and must cover every index passed to Wait.
type PolicyConfig struct {
	Rate        float64
	Burst       int
	ASRate      float64
	ASBurst     int
	PrefixRate  float64
	PrefixBurst int
	Origins     []uint32
	Prefixes    int
	Backoff     BackoffConfig
}

// NewPolicyLimiter validates cfg and builds the hierarchy.
func NewPolicyLimiter(cfg PolicyConfig) (*PolicyLimiter, error) {
	for _, r := range []struct {
		name string
		v    float64
	}{{"rate", cfg.Rate}, {"as-rate", cfg.ASRate}, {"prefix-rate", cfg.PrefixRate}} {
		if math.IsNaN(r.v) || math.IsInf(r.v, 0) || r.v < 0 {
			return nil, fmt.Errorf("scan: policy %s must be finite and non-negative, got %v", r.name, r.v)
		}
	}
	if cfg.Backoff.Threshold > 0 && cfg.ASRate <= 0 {
		return nil, fmt.Errorf("scan: backoff needs a per-AS rate to halve")
	}
	if cfg.ASRate > 0 && len(cfg.Origins) == 0 {
		return nil, fmt.Errorf("scan: per-AS rate needs an origin mapping")
	}
	if cfg.PrefixRate > 0 && cfg.Prefixes <= 0 {
		return nil, fmt.Errorf("scan: per-prefix rate needs the target prefix count")
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 64
	}
	if cfg.ASBurst <= 0 {
		cfg.ASBurst = 16
	}
	if cfg.PrefixBurst <= 0 {
		cfg.PrefixBurst = 8
	}
	p := &PolicyLimiter{
		now:      time.Now,
		sleep:    timerSleep,
		asRate:   cfg.ASRate,
		asBurst:  cfg.ASBurst,
		pfxRate:  cfg.PrefixRate,
		pfxBurst: cfg.PrefixBurst,
		origins:  cfg.Origins,
		backoff:  cfg.Backoff.withDefaults(),
	}
	if cfg.Rate > 0 {
		p.global = newBucket(cfg.Rate, cfg.Burst)
	}
	if cfg.ASRate > 0 || cfg.Backoff.Threshold > 0 {
		p.as = make(map[uint32]*bucket)
		p.asByPfx = make([]*bucket, len(cfg.Origins))
	}
	if cfg.PrefixRate > 0 {
		p.pfx = make([]*bucket, cfg.Prefixes)
	}
	return p, nil
}

// asBucketFor resolves (lazily creating) the AS bucket owning target
// prefix pfxIdx. Callers hold p.mu.
func (p *PolicyLimiter) asBucketFor(pfxIdx int) *bucket {
	if b := p.asByPfx[pfxIdx]; b != nil {
		return b
	}
	as := p.origins[pfxIdx]
	b := p.as[as]
	if b == nil {
		b = newBucket(p.asRate, p.asBurst)
		p.as[as] = b
	}
	p.asByPfx[pfxIdx] = b
	return b
}

// Wait blocks until a probe of target prefix pfxIdx may be sent, or the
// context is canceled (the reservations are returned). One sleep covers
// the deepest debt across all configured levels.
func (p *PolicyLimiter) Wait(ctx context.Context, pfxIdx int) error {
	p.mu.Lock()
	now := p.now().UnixNano()
	var need float64
	var taken [3]*bucket
	n := 0
	if p.global != nil {
		if d := p.global.take(now); d > need {
			need = d
		}
		taken[n] = p.global
		n++
	}
	if p.asRate > 0 {
		b := p.asBucketFor(pfxIdx)
		if d := b.take(now); d > need {
			need = d
		}
		taken[n] = b
		n++
	}
	if p.pfx != nil {
		b := p.pfx[pfxIdx]
		if b == nil {
			b = newBucket(p.pfxRate, p.pfxBurst)
			p.pfx[pfxIdx] = b
		}
		if d := b.take(now); d > need {
			need = d
		}
		taken[n] = b
		n++
	}
	p.mu.Unlock()
	if need <= 0 {
		return nil
	}
	d := time.Duration(need * float64(time.Second))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	if err := p.sleep(ctx, d); err != nil {
		p.mu.Lock()
		for i := 0; i < n; i++ {
			taken[i].untake()
		}
		p.mu.Unlock()
		return err
	}
	return nil
}

// Observe feeds one probe outcome into the backoff detector and reports
// whether it triggered a rate halving for the target's AS. A streak of
// Backoff.Threshold consecutive errors inside one AS halves that AS's
// bucket rate (floored at MinRateShare of the base); each success resets
// the streak and restores Recovery of the base rate. A no-op when
// backoff is disabled.
func (p *PolicyLimiter) Observe(pfxIdx int, ok bool) bool {
	if p.backoff.Threshold <= 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.asBucketFor(pfxIdx)
	now := p.now().UnixNano()
	if ok {
		b.streak = 0
		if b.rate < b.base {
			// Credit accrual at the old rate before raising it.
			b.refill(now)
			b.rate += b.base * p.backoff.Recovery
			if b.rate > b.base {
				b.rate = b.base
			}
		}
		return false
	}
	b.streak++
	if b.streak < p.backoff.Threshold {
		return false
	}
	b.streak = 0
	floor := b.base * p.backoff.MinRateShare
	next := b.rate / 2
	if next < floor {
		next = floor
	}
	if next >= b.rate {
		return false // already at the floor: no further event
	}
	b.refill(now)
	b.rate = next
	b.backoffs++
	return true
}

// SetASRate retunes one AS's current bucket rate mid-cycle — the hook
// for external abuse/complaint feeds. The configured base rate (the
// recovery target) is unchanged. It errors when per-AS pacing is off or
// the rate is not a finite positive number.
func (p *PolicyLimiter) SetASRate(as uint32, rate float64) error {
	if math.IsNaN(rate) || math.IsInf(rate, 0) || rate <= 0 {
		return fmt.Errorf("scan: per-AS rate must be finite and positive, got %v", rate)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.as == nil {
		return fmt.Errorf("scan: per-AS pacing is not configured")
	}
	b := p.as[as]
	if b == nil {
		b = newBucket(p.asRate, p.asBurst)
		p.as[as] = b
	}
	b.refill(p.now().UnixNano())
	b.rate = rate
	return nil
}

// ASRateOf returns the current bucket rate of an AS (the configured
// ASRate when the AS has not been touched yet); ok is false when per-AS
// pacing is off.
func (p *PolicyLimiter) ASRateOf(as uint32) (rate float64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.as == nil {
		return 0, false
	}
	if b := p.as[as]; b != nil {
		return b.rate, true
	}
	return p.asRate, true
}

// ASStat is the per-origin-AS footprint of one scan cycle.
type ASStat struct {
	// Probed counts transmitted probes. Under a resumed cycle it is
	// cumulative across the interrupted runs (the budget rides in the
	// checkpoint), unlike the run-scoped Report.Probed.
	Probed uint64 `json:"probed"`
	// Excluded counts targets skipped by the exclusion list.
	Excluded uint64 `json:"excluded,omitempty"`
	// Errors counts failed probe invocations.
	Errors uint64 `json:"errors,omitempty"`
	// Responsive counts successful handshakes.
	Responsive uint64 `json:"responsive,omitempty"`
	// BudgetDenied counts targets skipped because the AS exhausted its
	// probe budget.
	BudgetDenied uint64 `json:"budget_denied,omitempty"`
	// Backoffs counts adaptive rate halvings.
	Backoffs uint64 `json:"backoffs,omitempty"`
}

// asCounter is the live (atomic) accounting behind one AS's ASStat.
// Probed doubles as the budget reservation counter.
type asCounter struct {
	probed, excluded, errors, responsive, denied, backoffs atomic.Uint64
}

// footprint tracks per-origin-AS accounting for one scan cycle. Counter
// resolution is lock-free after an AS's first touch: each target prefix
// caches a pointer to its AS's counter.
type footprint struct {
	origins []uint32
	budget  uint64 // max probes per AS per cycle (0 = unlimited)

	mu    sync.Mutex
	m     map[uint32]*asCounter
	byPfx []atomic.Pointer[asCounter]
}

func newFootprint(origins []uint32, budget uint64) *footprint {
	return &footprint{
		origins: origins,
		budget:  budget,
		m:       make(map[uint32]*asCounter),
		byPfx:   make([]atomic.Pointer[asCounter], len(origins)),
	}
}

// at returns the counter of the AS owning target prefix pfxIdx.
func (f *footprint) at(pfxIdx int) *asCounter {
	if c := f.byPfx[pfxIdx].Load(); c != nil {
		return c
	}
	f.mu.Lock()
	as := f.origins[pfxIdx]
	c := f.m[as]
	if c == nil {
		c = &asCounter{}
		f.m[as] = c
	}
	f.mu.Unlock()
	f.byPfx[pfxIdx].Store(c)
	return c
}

// reserve claims one probe slot under the AS budget; it reports false
// once the AS's budget is spent, without overshooting. With no budget
// it just counts.
func (f *footprint) reserve(c *asCounter) bool {
	if f.budget == 0 {
		c.probed.Add(1)
		return true
	}
	return reserveProbe(&c.probed, f.budget)
}

// unreserve returns a claimed slot (rewind paths: the address was drawn
// and reserved but never probed).
func (f *footprint) unreserve(c *asCounter) {
	c.probed.Add(^uint64(0))
}

// reset zeroes every counter for a fresh cycle. The AS map and the
// per-prefix caches survive: cached pointers stay valid.
func (f *footprint) reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.m {
		c.probed.Store(0)
		c.excluded.Store(0)
		c.errors.Store(0)
		c.responsive.Store(0)
		c.denied.Store(0)
		c.backoffs.Store(0)
	}
}

// seed preloads per-AS probed counts from a checkpoint, so a resumed
// cycle's budgets pick up where the interrupted runs left off.
func (f *footprint) seed(probed map[uint32]uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for as, n := range probed {
		c := f.m[as]
		if c == nil {
			c = &asCounter{}
			f.m[as] = c
		}
		c.probed.Store(n)
	}
}

// probedByAS snapshots the per-AS probed counters (the checkpoint
// payload).
func (f *footprint) probedByAS() map[uint32]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[uint32]uint64, len(f.m))
	for as, c := range f.m {
		if n := c.probed.Load(); n > 0 {
			out[as] = n
		}
	}
	return out
}

// report converts the counters into the Report.PerAS map.
func (f *footprint) report() map[uint32]ASStat {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[uint32]ASStat, len(f.m))
	for as, c := range f.m {
		out[as] = ASStat{
			Probed:       c.probed.Load(),
			Excluded:     c.excluded.Load(),
			Errors:       c.errors.Load(),
			Responsive:   c.responsive.Load(),
			BudgetDenied: c.denied.Load(),
			Backoffs:     c.backoffs.Load(),
		}
	}
	return out
}

// WriteFootprint renders a per-origin-AS footprint table for a completed
// scan: how many addresses of each AS were in the plan, how many probes
// it actually received (the paper's footprint claim, measured per
// network), and the politeness events — exclusions, errors, backoff
// halvings, budget denials. Rows are sorted by probe count, heaviest
// first; a totals row closes the table. origins must be the mapping the
// scan ran with (rib.Table.OriginsOf over targets).
func WriteFootprint(w io.Writer, targets rib.Partition, origins []uint32, rep *Report) error {
	if rep.PerAS == nil {
		return fmt.Errorf("scan: report has no per-AS accounting (set Politeness.Footprint)")
	}
	if len(origins) != targets.Len() {
		return fmt.Errorf("scan: origins cover %d prefixes, targets have %d", len(origins), targets.Len())
	}
	// Plan size per AS: the denominator of the per-network footprint.
	plan := make(map[uint32]uint64)
	for i := 0; i < targets.Len(); i++ {
		plan[origins[i]] += targets.Prefix(i).NumAddresses()
	}
	ases := make([]uint32, 0, len(plan))
	for as := range plan {
		ases = append(ases, as)
	}
	sort.Slice(ases, func(i, j int) bool {
		pi, pj := rep.PerAS[ases[i]].Probed, rep.PerAS[ases[j]].Probed
		if pi != pj {
			return pi > pj
		}
		return ases[i] < ases[j]
	})
	if _, err := fmt.Fprintf(w, "%-10s %12s %12s %9s %9s %8s %9s %8s %8s\n",
		"origin", "plan-addrs", "probed", "probed%", "excluded", "errors", "respons.", "backoffs", "denied"); err != nil {
		return err
	}
	var tot ASStat
	var totPlan uint64
	for _, as := range ases {
		st := rep.PerAS[as]
		pct := 0.0
		if plan[as] > 0 {
			pct = 100 * float64(st.Probed) / float64(plan[as])
		}
		name := fmt.Sprintf("AS%d", as)
		if as == 0 {
			name = "(none)"
		}
		if _, err := fmt.Fprintf(w, "%-10s %12d %12d %8.2f%% %9d %8d %9d %8d %8d\n",
			name, plan[as], st.Probed, pct, st.Excluded, st.Errors, st.Responsive, st.Backoffs, st.BudgetDenied); err != nil {
			return err
		}
		totPlan += plan[as]
		tot.Probed += st.Probed
		tot.Excluded += st.Excluded
		tot.Errors += st.Errors
		tot.Responsive += st.Responsive
		tot.Backoffs += st.Backoffs
		tot.BudgetDenied += st.BudgetDenied
	}
	totPct := 0.0
	if totPlan > 0 {
		totPct = 100 * float64(tot.Probed) / float64(totPlan)
	}
	_, err := fmt.Fprintf(w, "%-10s %12d %12d %8.2f%% %9d %8d %9d %8d %8d\n",
		"total", totPlan, tot.Probed, totPct, tot.Excluded, tot.Errors, tot.Responsive, tot.Backoffs, tot.BudgetDenied)
	return err
}
