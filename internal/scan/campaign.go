package scan

import (
	"context"
	"fmt"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// Campaign runs the paper's full loop (§3.1) live, with real probes
// instead of an oracle census: scan the current plan, convert the
// responsive addresses into a census snapshot, re-rank and re-select
// over the universe (steps 1–4), and scan the tightened plan on the
// next cycle. Cycle 0 scans Targets (by default the whole universe —
// the seed scan); every later cycle scans the previous cycle's
// selection. This is what distinguishes a TASS deployment from a TASS
// simulation: the seed is whatever a rate-limited, lossy scan actually
// observed, not ground truth.
type Campaign struct {
	// Universe is the prefix partition selections are drawn from
	// (required).
	Universe rib.Partition
	// Targets, when non-empty, is the cycle-0 scan plan; it defaults to
	// Universe (a full seed scan).
	Targets rib.Partition
	// SeedSnapshot, when set (and Targets is empty), replaces the
	// cycle-0 full-universe seed scan: the first cycle scans the TASS
	// selection computed from this snapshot over Universe, exactly as
	// the paper seeds from a census archive instead of scanning 2^32
	// first. Lazy snapshots (census.OpenSnapshotFile) work unchanged —
	// the selection counts off the block index, so a multi-gigabyte
	// census seeds a campaign without ever being resident in full.
	SeedSnapshot *census.Snapshot
	// DegradedReads opts the seed selection into surviving storage
	// corruption in a lazy SeedSnapshot: damaged blocks are skipped
	// (their hosts drop out of the counts), each fault is reported
	// through OnStorageFault, and the campaign runs on. The default
	// (false) fails the seed selection with a typed
	// *addrset.BlockError instead — a coordinator would rather alert
	// than plan from a silently short census.
	DegradedReads bool
	// OnStorageFault, when set, receives every damaged-block fault the
	// seed selection recorded (only possible with a lazy SeedSnapshot;
	// only survivable with DegradedReads).
	OnStorageFault func(addrset.BlockError)
	// Prober performs the probes (required unless ProberAt is set).
	Prober Prober
	// ProberAt, when set, supplies the prober per cycle — the hook for
	// evaluating against a churning ground truth, one simulated month
	// per cycle.
	ProberAt func(cycle int) Prober
	// Opts carries φ and the optional density/size cuts for the
	// re-selection after every cycle.
	Opts core.Options
	// Rate, Burst, Workers, Seed and Exclude parameterize each cycle's
	// scanner exactly as in Config. The permutation seed advances by one
	// per cycle so consecutive cycles use different probe orders. A
	// campaign is deliberately single-instance (no Shard/Shards): each
	// re-selection needs the complete responsive set, so a sharded
	// deployment would have to merge the instances' scan results before
	// re-selecting — per-instance re-selection from a shard's partial
	// seed would silently diverge the plans.
	Rate    float64
	Burst   int
	Workers int
	Seed    int64
	Exclude []netaddr.Prefix
	// Politeness parameterizes each cycle's good-citizen layer (per-AS
	// pacing, backoff, budgets, footprint). Its Origins field is ignored:
	// the plan changes every cycle, so set OriginsOf instead, which is
	// called with each cycle's plan.
	Politeness Politeness
	// OriginsOf maps a cycle plan to per-prefix origin ASes (typically
	// rib.Table.OriginsOf on the announced table behind Universe).
	// Required when Politeness enables any per-AS feature.
	OriginsOf func(plan rib.Partition) []uint32
	// Cache, when non-nil, memoizes the per-(snapshot, partition) counts
	// behind each re-selection.
	Cache *census.CountCache
	// Incremental re-selects by applying each cycle's scan-result delta
	// (previous cycle's snapshot diffed against this cycle's) to a
	// maintained ranking instead of re-counting the whole snapshot over
	// the universe every cycle. Selections — and therefore every later
	// cycle's plan — are byte-identical to the full recompute (golden
	// tested); the steady-state reseed cost becomes proportional to the
	// cycle-over-cycle churn.
	Incremental bool
	// Protocol names the snapshots built from scan results (default
	// "scan").
	Protocol string
	// OnResult, when set, receives every probe result of every cycle.
	OnResult func(Result)
}

// Cycle is one completed scan-and-reselect iteration of a campaign.
type Cycle struct {
	// Index is the cycle number, starting at 0 (the seed scan).
	Index int
	// Plan is the partition this cycle scanned.
	Plan rib.Partition
	// Report is the cycle's scan outcome.
	Report *Report
	// Snapshot is Report.Responsive as a census snapshot (month = Index),
	// the seed of the next cycle's selection.
	Snapshot *census.Snapshot
	// Selection is the TASS selection computed from Snapshot over the
	// campaign universe; the next cycle scans Selection.Partition().
	Selection *core.Selection
}

// Run executes the given number of scan cycles, feeding each cycle's
// results into the next cycle's selection. It returns the completed
// cycles; on error (including context cancellation) the cycles finished
// so far are returned alongside it.
func (c *Campaign) Run(ctx context.Context, cycles int) ([]Cycle, error) {
	if cycles <= 0 {
		return nil, fmt.Errorf("scan: campaign needs at least one cycle")
	}
	if c.Universe.Len() == 0 {
		return nil, fmt.Errorf("scan: campaign needs a universe")
	}
	if c.Prober == nil && c.ProberAt == nil {
		return nil, fmt.Errorf("scan: campaign needs a prober")
	}
	protocol := c.Protocol
	if protocol == "" {
		protocol = "scan"
	}
	// Selection workers: SelectCached reads 0 as GOMAXPROCS, matching
	// the scanner's own parallel default.
	workers := c.Workers
	if workers < 0 {
		workers = 0
	}
	plan := c.Targets
	if plan.Len() == 0 {
		plan = c.Universe
	}
	var out []Cycle
	var (
		ranker   *core.Ranker
		prevSnap *census.Snapshot
	)
	// selectFrom computes the selection seeding the next plan. The first
	// call counts the snapshot over the universe (keeping the ranking
	// when Incremental); later incremental calls repair the ranking with
	// the snapshot-over-snapshot delta. Selections are byte-identical
	// across the paths and across snapshot backings (eager or lazy).
	selectFrom := func(snap *census.Snapshot) (*core.Selection, error) {
		switch {
		case c.Incremental && ranker == nil:
			// First selection (or a universe too large for the packed
			// ranking, which falls through to the full path below):
			// count once, keep the ranking.
			r, err := core.NewRanker(snap, c.Universe, workers, c.Cache)
			if err == nil {
				ranker = r
				return ranker.Select(c.Opts)
			}
			return core.SelectCached(snap, c.Universe, c.Opts, workers, c.Cache)
		case c.Incremental:
			// Steady state: the scan-result delta repairs the ranking.
			if err := ranker.Apply(prevSnap.Diff(snap)); err != nil {
				return nil, err
			}
			return ranker.Select(c.Opts)
		default:
			return core.SelectCached(snap, c.Universe, c.Opts, workers, c.Cache)
		}
	}
	if c.SeedSnapshot != nil && c.Targets.Len() == 0 {
		if c.DegradedReads {
			c.SeedSnapshot.SetFaultPolicy(addrset.Degrade)
		}
		sel, err := selectFrom(c.SeedSnapshot)
		if faults := c.SeedSnapshot.StorageFaults(); len(faults) > 0 && c.OnStorageFault != nil {
			for _, f := range faults {
				c.OnStorageFault(f)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("scan: campaign seed selection: %w", err)
		}
		prevSnap = c.SeedSnapshot
		plan = sel.Partition()
	}
	for i := 0; i < cycles; i++ {
		prober := c.Prober
		if c.ProberAt != nil {
			prober = c.ProberAt(i)
		}
		pol := c.Politeness
		pol.Origins = nil
		if pol.perAS() {
			if c.OriginsOf == nil {
				return out, fmt.Errorf("scan: campaign cycle %d: politeness needs OriginsOf to map each cycle's plan", i)
			}
			pol.Origins = c.OriginsOf(plan)
		}
		s, err := New(Config{
			Targets:    plan,
			Prober:     prober,
			Rate:       c.Rate,
			Burst:      c.Burst,
			Workers:    c.Workers,
			Seed:       c.Seed + int64(i),
			Exclude:    c.Exclude,
			Politeness: pol,
			OnResult:   c.OnResult,
		})
		if err != nil {
			return out, fmt.Errorf("scan: campaign cycle %d: %w", i, err)
		}
		report, err := s.Run(ctx)
		if err != nil {
			return out, fmt.Errorf("scan: campaign cycle %d: %w", i, err)
		}
		snap := census.NewSnapshot(protocol, i, report.Responsive)
		sel, err := selectFrom(snap)
		if err != nil {
			return out, fmt.Errorf("scan: campaign cycle %d selection: %w", i, err)
		}
		prevSnap = snap
		out = append(out, Cycle{
			Index:     i,
			Plan:      plan,
			Report:    report,
			Snapshot:  snap,
			Selection: sel,
		})
		plan = sel.Partition()
	}
	return out, nil
}

// Hitrate returns the cycle's scan hitrate against a ground-truth
// responsive set: the fraction of truth's hosts the cycle found. It is
// the evaluation metric of the scan-in-the-loop experiment; live
// campaigns have no truth to compare against.
func (cy *Cycle) Hitrate(truth *census.Snapshot) float64 {
	if truth.Hosts() == 0 {
		return 0
	}
	return float64(cy.Snapshot.IntersectWith(truth)) / float64(truth.Hosts())
}

// CostShare returns the cycle's probe cost relative to scanning the
// whole universe once.
func (cy *Cycle) CostShare(universe rib.Partition) float64 {
	if universe.AddressCount() == 0 {
		return 0
	}
	return float64(cy.Plan.AddressCount()) / float64(universe.AddressCount())
}
