package scan

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"
)

// Limiter is a token-bucket rate limiter gating probe transmission, the
// politeness mechanism every responsible scanner runs (the paper's whole
// point is sending fewer probes; the limiter makes the ones we do send
// smooth instead of bursty).
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for tests
	// sleep blocks for d or until ctx is canceled. Injectable so Wait's
	// blocking path is testable without real timers; the default sleeps
	// on a time.Timer.
	sleep func(ctx context.Context, d time.Duration) error
}

// NewLimiter builds a limiter refilling at rate tokens/second with the
// given burst capacity. The bucket starts full. The rate must be a
// finite positive number: NaN and ±Inf are rejected explicitly, since
// `NaN <= 0` is false and a NaN rate would otherwise pass validation and
// poison every sleep computation in Wait.
func NewLimiter(rate float64, burst int) (*Limiter, error) {
	if math.IsNaN(rate) || math.IsInf(rate, 0) || rate <= 0 || burst <= 0 {
		return nil, fmt.Errorf("scan: limiter needs finite positive rate and burst, got rate %v burst %d", rate, burst)
	}
	return &Limiter{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		now:    time.Now,
		sleep:  timerSleep,
	}, nil
}

// timerSleep is the production sleeper: a real timer racing the context.
func timerSleep(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// SetRate retargets the refill rate mid-flight (the backoff hook).
// Tokens accrued at the old rate are credited first. Waiters already
// sleeping keep their old-rate reservation; only later waiters see the
// new rate.
func (l *Limiter) SetRate(rate float64) error {
	if math.IsNaN(rate) || math.IsInf(rate, 0) || rate <= 0 {
		return fmt.Errorf("scan: limiter rate must be finite and positive, got %v", rate)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refill()
	l.rate = rate
	return nil
}

// Rate returns the current refill rate in tokens per second.
func (l *Limiter) Rate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

func (l *Limiter) refill() {
	now := l.now()
	if !l.last.IsZero() {
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
}

// Allow consumes one token if available, without blocking.
func (l *Limiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refill()
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// Wait blocks until a token is available or the context is canceled.
//
// Waiters are serialized by reservation, not by sleep-and-retry: a
// blocked waiter takes its token immediately — driving the bucket
// negative — and sleeps exactly once, until the refill covers its debt.
// Concurrent waiters therefore reserve strictly later slots and wake one
// at a time in reservation order; there is no thundering herd of workers
// waking together to fight over a single refilled token. A canceled wait
// returns its reserved token to the bucket.
func (l *Limiter) Wait(ctx context.Context) error {
	l.mu.Lock()
	l.refill()
	l.tokens--
	if l.tokens >= 0 {
		l.mu.Unlock()
		return nil
	}
	// The bucket is in debt: this waiter's token arrives once the refill
	// has produced -tokens more, i.e. after -tokens/rate seconds.
	need := -l.tokens / l.rate
	l.mu.Unlock()

	d := time.Duration(need * float64(time.Second))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	if err := l.sleep(ctx, d); err != nil {
		// Return the reservation so later waiters shift earlier.
		l.mu.Lock()
		l.tokens++
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.mu.Unlock()
		return err
	}
	return nil
}
