package fsck_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/coord"
	"github.com/tass-scan/tass/internal/fsck"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/scan"
)

func writeSnapshot(t *testing.T, dir string) (string, *census.Snapshot) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	addrs := make([]netaddr.Addr, 0, 3000)
	v := uint32(1 << 20)
	for len(addrs) < 3000 {
		v += 1 + uint32(rng.Intn(250))
		addrs = append(addrs, netaddr.Addr(v))
	}
	snap := census.NewSnapshot("ssh", 3, addrs)
	path := filepath.Join(dir, "census.snap")
	if err := census.WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	return path, snap
}

func flip(t *testing.T, path string, off int64, mask byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= mask
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func TestFsckSnapshot(t *testing.T) {
	path, snap := writeSnapshot(t, t.TempDir())

	res, err := fsck.Check(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || res.Kind != fsck.KindSnapshot {
		t.Fatalf("clean snapshot: %+v", res)
	}

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	flip(t, path, st.Size()-12, 0x08)
	res, err = fsck.Check(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean || len(res.Findings) == 0 {
		t.Fatalf("damage missed: %+v", res)
	}
	if res.Repaired {
		t.Fatal("read-only Check repaired")
	}

	res, err = fsck.Repair(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Repaired || res.QuarantinePath == "" {
		t.Fatalf("repair: %+v", res)
	}
	if res.RecoveredHosts+res.LostAddrs != snap.Hosts() {
		t.Fatalf("recovered %d + lost %d != %d", res.RecoveredHosts, res.LostAddrs, snap.Hosts())
	}
	if err := census.VerifySnapshotFile(path); err != nil {
		t.Fatalf("repaired snapshot fails verify: %v", err)
	}
	if _, err := os.Stat(res.QuarantinePath); err != nil {
		t.Fatalf("quarantine sidecar missing: %v", err)
	}
}

func TestFsckSnapshotIndexDamage(t *testing.T) {
	path, _ := writeSnapshot(t, t.TempDir())
	flip(t, path, 14, 0x01) // inside the directory: index CRC fails

	res, err := fsck.Repair(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Repaired || res.QuarantinePath == "" {
		t.Fatalf("unusable index not moved aside: %+v", res)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("damaged file still in place")
	}
	if _, err := os.Stat(res.QuarantinePath); err != nil {
		t.Fatal("quarantined bytes missing")
	}
}

func TestFsckCheckpoint(t *testing.T) {
	defer func(f func(string)) { scan.LegacyCheckpointWarn = f }(scan.LegacyCheckpointWarn)
	var warned int
	scan.LegacyCheckpointWarn = func(string) { warned++ }

	dir := t.TempDir()
	cp := &scan.Checkpoint{N: 500, Seed: 1, Shards: 1, Workers: 1, Consumed: []uint64{7}}
	path := filepath.Join(dir, "scan.checkpoint")
	if err := scan.WriteCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	res, err := fsck.Check(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || res.Kind != fsck.KindCheckpoint {
		t.Fatalf("clean checkpoint: %+v", res)
	}

	// Legacy file: a finding, and -repair upgrades it in place.
	legacy, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	lpath := filepath.Join(dir, "legacy.checkpoint")
	if err := os.WriteFile(lpath, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = fsck.Check(lpath)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean || !strings.Contains(strings.Join(res.Findings, " "), "legacy") {
		t.Fatalf("legacy not flagged: %+v", res)
	}
	if warned != 0 {
		t.Fatal("fsck leaked the deprecation warning while reporting legacy itself")
	}
	res, err = fsck.Repair(lpath)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Repaired {
		t.Fatalf("legacy not upgraded: %+v", res)
	}
	warned = 0
	back, err := scan.ReadCheckpointFile(lpath)
	if err != nil {
		t.Fatalf("upgraded checkpoint unreadable: %v", err)
	}
	if warned != 0 {
		t.Fatal("upgraded checkpoint still loads through the legacy path")
	}
	if back.N != cp.N || back.Consumed[0] != cp.Consumed[0] {
		t.Fatalf("upgrade changed the cursor: %+v", back)
	}

	// Corrupt file: moved aside whole.
	flip(t, path, int64(len("{\"format\":\"tass-checkpoint\",\"v\":1,\"crc\":1")), 0x04)
	res, err = fsck.Repair(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Repaired || res.QuarantinePath == "" {
		t.Fatalf("corrupt checkpoint kept in place: %+v", res)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt checkpoint still at path")
	}
}

func TestFsckCoordState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "coord.state")
	if err := coord.NewFileStore(path).Save([]byte(`{"cycle":1}`)); err != nil {
		t.Fatal(err)
	}
	res, err := fsck.Check(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || res.Kind != fsck.KindCoordState {
		t.Fatalf("clean coord state: %+v", res)
	}

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	flip(t, path, st.Size()-2, 0x02)
	res, err = fsck.Check(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Fatalf("corrupt coord state passed: %+v", res)
	}
	res, err = fsck.Repair(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Repaired || res.QuarantinePath == "" {
		t.Fatalf("corrupt coord state kept in place: %+v", res)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt coord state still at path")
	}
}

func TestFsckUnknown(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(path, []byte("not an artifact\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := fsck.Check(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != fsck.KindUnknown || res.Clean {
		t.Fatalf("unknown file: %+v", res)
	}
	// Check never touches the file; Repair quarantines it (fsck is only
	// handed paths that are supposed to be artifacts).
	if _, err := os.Stat(path); err != nil {
		t.Fatal("read-only Check moved the file")
	}
	res, err = fsck.Repair(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Repaired || res.QuarantinePath == "" {
		t.Fatalf("unknown file not quarantined: %+v", res)
	}
	if _, err := fsck.Check(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file produced a result")
	}
}
