// Package fsck verifies and repairs the scanner's on-disk artifacts:
// census snapshot files (TASSNAP2/3 and the v1 stream), scan checkpoint
// files, and coordinator state files. It is the library behind
// `tass fsck` — Check is the read-only scrub, Repair additionally
// salvages what it can and quarantines what it cannot, never deleting
// damaged bytes.
//
// Repair semantics by kind:
//
//   - Snapshot (TASSNAP2/3): intact blocks are re-derived into a fresh
//     file of the current format; damaged blocks' raw bytes go to a
//     .quarantine sidecar. A file whose index itself is damaged cannot
//     be repaired in place and is moved aside whole.
//   - Checkpoint: a valid legacy checksum-less file is upgraded to the
//     enveloped format; a corrupt file is moved aside whole (resume
//     state cannot be partially salvaged — a wrong cursor re-probes or
//     skips addresses).
//   - Coordinator state: a corrupt file is moved aside whole, so a
//     restarted coordinator starts a fresh campaign instead of
//     refusing to boot.
package fsck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/coord"
	"github.com/tass-scan/tass/internal/scan"
)

// Kind is the sniffed artifact type of a file.
type Kind string

const (
	KindSnapshot   Kind = "snapshot"
	KindCheckpoint Kind = "checkpoint"
	KindCoordState Kind = "coord-state"
	KindUnknown    Kind = "unknown"
)

// Result is the outcome of one Check or Repair over one file.
type Result struct {
	Path string
	Kind Kind

	// Clean reports that no damage (and no deprecated format) was
	// found; Findings lists what was, one human-readable line each.
	Clean    bool
	Findings []string

	// Repair outcome (Repair only).
	Repaired       bool
	QuarantinePath string
	// RecoveredHosts and LostAddrs describe a snapshot repair: the
	// addresses carried into the fresh file vs. lost with quarantined
	// blocks.
	RecoveredHosts int
	LostAddrs      int
}

// Sniff identifies what kind of artifact the file at path holds by its
// leading bytes: a TASSNAP/TASSCNS magic, the coord state header, or a
// JSON object shaped like a (legacy or enveloped) checkpoint.
func Sniff(path string) (Kind, error) {
	f, err := os.Open(path)
	if err != nil {
		return KindUnknown, err
	}
	defer f.Close()
	head := make([]byte, 64)
	n, _ := f.Read(head)
	head = head[:n]
	switch {
	case bytes.HasPrefix(head, []byte("TASSNAP2")),
		bytes.HasPrefix(head, []byte("TASSNAP3")),
		bytes.HasPrefix(head, []byte("TASSCNS\x01")),
		bytes.HasPrefix(head, []byte("TASSCN6\x01")):
		return KindSnapshot, nil
	case bytes.HasPrefix(head, []byte("tass-coord-state ")):
		return KindCoordState, nil
	}
	if len(bytes.TrimSpace(head)) > 0 && bytes.TrimSpace(head)[0] == '{' {
		// A JSON object: enveloped checkpoints carry "format", legacy
		// ones the checkpoint body fields. Either way it is checkpoint
		// shaped — Check decides whether it parses.
		return KindCheckpoint, nil
	}
	return KindUnknown, nil
}

// Check scrubs the file at path read-only, reporting every finding.
// The error return is reserved for the environment (file unreadable);
// damage is reported in the Result, not as an error.
func Check(path string) (*Result, error) {
	return run(path, false)
}

// Repair scrubs the file at path and fixes what Check would report:
// see the package comment for the per-kind semantics. The Result
// records what was salvaged and where damaged bytes were quarantined.
func Repair(path string) (*Result, error) {
	return run(path, true)
}

func run(path string, repair bool) (*Result, error) {
	kind, err := Sniff(path)
	if err != nil {
		return nil, err
	}
	res := &Result{Path: path, Kind: kind}
	switch kind {
	case KindSnapshot:
		err = runSnapshot(res, repair)
	case KindCheckpoint:
		err = runCheckpoint(res, repair)
	case KindCoordState:
		err = runCoordState(res, repair)
	default:
		res.Findings = append(res.Findings, "not a recognized tass artifact (snapshot, checkpoint, or coordinator state)")
		// Under repair, quarantine it: fsck is handed paths that are
		// supposed to be tass artifacts, so an unrecognizable file is a
		// header so damaged even the magic is gone — moving it aside
		// unblocks whatever refused to load it, destroying nothing.
		if repair {
			qpath, err := moveAside(path)
			if err != nil {
				return res, err
			}
			res.QuarantinePath = qpath
			res.Repaired = true
			res.Findings = append(res.Findings, "file moved aside whole (unrecognizable header)")
		}
	}
	if err != nil {
		return res, err
	}
	res.Clean = len(res.Findings) == 0
	return res, nil
}

func runSnapshot(res *Result, repair bool) error {
	scrub, err := census.ScrubSnapshotFile(res.Path)
	if err != nil {
		return err
	}
	res.RecoveredHosts = scrub.Hosts
	if scrub.IndexErr != nil {
		res.Findings = append(res.Findings, fmt.Sprintf("index unusable: %v", scrub.IndexErr))
		if repair {
			qpath, err := moveAside(res.Path)
			if err != nil {
				return err
			}
			res.QuarantinePath = qpath
			res.Repaired = true
			res.Findings = append(res.Findings, "file moved aside whole (no trusted directory to localize damage with)")
		}
		return nil
	}
	if !scrub.PayloadCRCOK {
		res.Findings = append(res.Findings, "payload CRC mismatch")
	}
	for _, d := range scrub.Damage {
		res.Findings = append(res.Findings, fmt.Sprintf("block %d (bytes [%d,%d), %d addresses): %v", d.Block, d.Off, d.Off+d.Len, d.Lost, d.Err))
	}
	if len(res.Findings) == 0 || !repair {
		return nil
	}
	rep, err := census.RepairSnapshotFile(res.Path)
	if err != nil {
		return err
	}
	res.Repaired = rep.Repaired
	res.QuarantinePath = rep.QuarantinePath
	res.RecoveredHosts = rep.RecoveredHosts
	res.LostAddrs = rep.LostAddrs
	return nil
}

func runCheckpoint(res *Result, repair bool) error {
	data, err := os.ReadFile(res.Path)
	if err != nil {
		return err
	}
	var env struct {
		Format string `json:"format"`
	}
	legacy := json.Unmarshal(data, &env) == nil && env.Format == ""
	warn := scan.LegacyCheckpointWarn
	scan.LegacyCheckpointWarn = func(string) {} // fsck reports legacy itself
	cp, readErr := scan.ReadCheckpoint(bytes.NewReader(data))
	scan.LegacyCheckpointWarn = warn
	switch {
	case readErr != nil:
		res.Findings = append(res.Findings, fmt.Sprintf("unreadable: %v", readErr))
		if repair {
			qpath, err := moveAside(res.Path)
			if err != nil {
				return err
			}
			res.QuarantinePath = qpath
			res.Repaired = true
			res.Findings = append(res.Findings, "file moved aside whole (a wrong cursor would skip or re-probe addresses)")
		}
	case legacy:
		res.Findings = append(res.Findings, "legacy checksum-less format (corruption undetectable)")
		if repair {
			if err := scan.WriteCheckpointFile(res.Path, cp); err != nil {
				return err
			}
			res.Repaired = true
			res.Findings = append(res.Findings, "upgraded to the enveloped format")
		}
	}
	return nil
}

func runCoordState(res *Result, repair bool) error {
	_, err := coord.NewFileStore(res.Path).Load()
	if err == nil {
		return nil
	}
	res.Findings = append(res.Findings, fmt.Sprintf("unreadable: %v", err))
	if repair {
		qpath, err := moveAside(res.Path)
		if err != nil {
			return err
		}
		res.QuarantinePath = qpath
		res.Repaired = true
		res.Findings = append(res.Findings, "file moved aside whole (a restarted coordinator starts fresh)")
	}
	return nil
}

// moveAside renames the damaged file to a .quarantine sibling, keeping
// its bytes for forensics while unblocking whatever refused to load it.
func moveAside(path string) (string, error) {
	qpath := path + ".quarantine"
	if err := os.Rename(path, qpath); err != nil {
		return "", err
	}
	return qpath, nil
}
