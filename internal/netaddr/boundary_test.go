package netaddr

import "testing"

// The top of the address space is where masked arithmetic likes to go
// wrong: 1<<32 overflows uint32, Width-bits hits 64-bit shift limits,
// and +1 wraps. These tests pin every boundary operation at
// 255.255.255.255 and ff…ff explicitly.

func TestKeyMaxValues(t *testing.T) {
	if got := KeyMax[Addr](); got != MustParseAddr("255.255.255.255") {
		t.Errorf("KeyMax[Addr] = %v", got)
	}
	want6 := Addr6{Hi: ^uint64(0), Lo: ^uint64(0)}
	if got := KeyMax[Addr6](); got != want6 {
		t.Errorf("KeyMax[Addr6] = %v", got)
	}
	if got := KeyMax[Addr6]().String(); got != "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff" {
		t.Errorf("KeyMax[Addr6].String() = %q", got)
	}
}

func TestKeyIncDecWrap(t *testing.T) {
	var z4 Addr
	if got := KeyInc(KeyMax[Addr]()); got != z4 {
		t.Errorf("KeyInc(max4) = %v, want 0", got)
	}
	if got := KeyDec(z4); got != KeyMax[Addr]() {
		t.Errorf("KeyDec(0) = %v, want max", got)
	}
	var z6 Addr6
	if got := KeyInc(KeyMax[Addr6]()); got != z6 {
		t.Errorf("KeyInc(max6) = %v, want 0", got)
	}
	if got := KeyDec(z6); got != KeyMax[Addr6]() {
		t.Errorf("KeyDec(0) = %v, want max", got)
	}
	// The Lo-half carry: …:ffff:ffff:ffff:ffff + 1 must ripple into Hi.
	carry := Addr6{Hi: 5, Lo: ^uint64(0)}
	if got := KeyInc(carry); got != (Addr6{Hi: 6}) {
		t.Errorf("KeyInc(%v) = %v", carry, got)
	}
	if got := KeyDec(Addr6{Hi: 6}); got != carry {
		t.Errorf("KeyDec(6::) = %v", got)
	}
}

func TestPrefixZeroCoversEverything(t *testing.T) {
	var root4 Prefix // zero value is 0.0.0.0/0
	if got := root4.Last(); got != KeyMax[Addr]() {
		t.Errorf("(/0).Last() = %v", got)
	}
	if got := root4.NumAddresses(); got != 1<<32 {
		t.Errorf("(/0).NumAddresses() = %d", got)
	}
	if !root4.Contains(KeyMax[Addr]()) {
		t.Error("(/0) does not contain 255.255.255.255")
	}
	var root6 Prefix6
	if got := root6.Last(); got != KeyMax[Addr6]() {
		t.Errorf("v6 (/0).Last() = %v", got)
	}
	// Wider than 64 bits: must saturate, not shift-overflow.
	if got := root6.NumAddresses(); got != ^uint64(0) {
		t.Errorf("v6 (/0).NumAddresses() = %d", got)
	}
	if got := MustPfxFrom(Addr6{}, 64).NumAddresses(); got != ^uint64(0) {
		t.Errorf("v6 (/64).NumAddresses() = %d, want saturated", got)
	}
	if got := MustPfxFrom(Addr6{}, 65).NumAddresses(); got != 1<<63 {
		t.Errorf("v6 (/65).NumAddresses() = %d", got)
	}
}

func TestSplitAtFullWidth(t *testing.T) {
	// /31 -> two /32s at the very top of IPv4.
	p := MustParsePrefix("255.255.255.254/31")
	lo, hi, ok := p.Split()
	if !ok {
		t.Fatal("(/31).Split() not ok")
	}
	if lo.Addr() != MustParseAddr("255.255.255.254") || lo.Bits() != 32 {
		t.Errorf("lo = %v", lo)
	}
	if hi.Addr() != KeyMax[Addr]() || hi.Bits() != 32 {
		t.Errorf("hi = %v", hi)
	}
	if _, _, ok := lo.Split(); ok {
		t.Error("(/32).Split() ok, want refusal")
	}

	// /127 -> two /128s at the very top of IPv6.
	p6 := MustPfxFrom(KeyMax[Addr6](), 127)
	lo6, hi6, ok := p6.Split()
	if !ok {
		t.Fatal("(/127).Split() not ok")
	}
	if lo6.Addr() != (Addr6{Hi: ^uint64(0), Lo: ^uint64(0) - 1}) || lo6.Bits() != 128 {
		t.Errorf("lo6 = %v", lo6)
	}
	if hi6.Addr() != KeyMax[Addr6]() || hi6.Bits() != 128 {
		t.Errorf("hi6 = %v", hi6)
	}
	if _, _, ok := hi6.Split(); ok {
		t.Error("(/128).Split() ok, want refusal")
	}
	// The bit flipped by Split at /64 sits exactly on the halves seam.
	seam := MustPfxFrom(Addr6{Hi: 8}, 64)
	lo6, hi6, ok = seam.Split()
	if !ok || lo6.Addr() != (Addr6{Hi: 8}) || hi6.Addr() != (Addr6{Hi: 8, Lo: 1 << 63}) {
		t.Errorf("seam split = %v, %v, %v", lo6, hi6, ok)
	}
}

func TestSeekAtTopOfSpace(t *testing.T) {
	max := KeyMax[Addr]()
	// Slice long enough that the target sits past the 32-entry linear
	// window, forcing the gallop + binary phases to handle max.
	var addrs []Addr
	for i := 0; i < 100; i++ {
		addrs = append(addrs, Addr(i*1000))
	}
	addrs = append(addrs, max)
	if got := SeekAddrs(addrs, 0, max); got != 100 {
		t.Errorf("SeekAddrs(max present) = %d, want 100", got)
	}
	if got := SeekAddrs(addrs[:100], 0, max); got != 100 {
		t.Errorf("SeekAddrs(max absent) = %d, want len", got)
	}
	// Generic path at the v6 all-ones.
	max6 := KeyMax[Addr6]()
	var addrs6 []Addr6
	for i := 0; i < 100; i++ {
		addrs6 = append(addrs6, Addr6{Hi: uint64(i)})
	}
	addrs6 = append(addrs6, max6)
	if got := SeekKeys(addrs6, 0, max6); got != 100 {
		t.Errorf("SeekKeys(max6 present) = %d, want 100", got)
	}
	if got := SeekKeys(addrs6[:100], 0, max6); got != 100 {
		t.Errorf("SeekKeys(max6 absent) = %d, want len", got)
	}
}
