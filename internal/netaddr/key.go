package netaddr

import (
	"errors"
	"io"
	"slices"
)

// Key is the constraint every address family satisfies: a fixed-width
// unsigned integer exposed as two 64-bit halves. Addr (32-bit IPv4) and
// Addr6 (128-bit IPv6) implement it, and everything built on addresses
// — prefixes, block-indexed sets, census snapshots, partitions, the
// ranking core — is generic over it, so one engine serves both
// families.
//
// The method set is deliberately tiny: Compare for ordering, the
// Halves/FromHalves pair for arithmetic, Width for the bit width and
// String for diagnostics. All bit manipulation (masks, shifts, wrapping
// add/sub, varint coding) lives in the generic helpers of this file,
// written once against uint64 halves, so per-family code is limited to
// parsing and formatting.
type Key[A any] interface {
	comparable
	// Compare orders values numerically and returns -1, 0 or +1.
	Compare(A) int
	// Halves returns the value as (hi, lo) 64-bit halves. Families
	// narrower than 64 bits return hi == 0 and the value in lo.
	Halves() (hi, lo uint64)
	// FromHalves assembles a value from halves, discarding bits above
	// the family width. The receiver is ignored (call it on the zero
	// value); it exists because Go constraints cannot express
	// constructors.
	FromHalves(hi, lo uint64) A
	// Width returns the family's address width in bits (32 or 128).
	Width() int
	String() string
}

// Halves implements Key; the IPv4 value lives in the low half.
func (a Addr) Halves() (hi, lo uint64) { return 0, uint64(a) }

// FromHalves implements Key, truncating to 32 bits.
func (Addr) FromHalves(hi, lo uint64) Addr { return Addr(uint32(lo)) }

// Width implements Key: IPv4 addresses are 32 bits wide.
func (Addr) Width() int { return 32 }

// Compare orders addresses numerically and returns -1, 0 or +1.
func (a Addr) Compare(b Addr) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Compare orders addresses numerically and returns -1, 0 or +1.
func (a Addr6) Compare(b Addr6) int {
	switch {
	case a.Hi < b.Hi:
		return -1
	case a.Hi > b.Hi:
		return 1
	case a.Lo < b.Lo:
		return -1
	case a.Lo > b.Lo:
		return 1
	}
	return 0
}

// Halves implements Key.
func (a Addr6) Halves() (hi, lo uint64) { return a.Hi, a.Lo }

// FromHalves implements Key.
func (Addr6) FromHalves(hi, lo uint64) Addr6 { return Addr6{Hi: hi, Lo: lo} }

// Width implements Key: IPv6 addresses are 128 bits wide.
func (Addr6) Width() int { return 128 }

// widthMask returns the (hi, lo) mask selecting the low w value bits.
func widthMask(w int) (hi, lo uint64) {
	switch {
	case w >= 128:
		return ^uint64(0), ^uint64(0)
	case w >= 64:
		if w == 64 {
			return 0, ^uint64(0)
		}
		return 1<<uint(w-64) - 1, ^uint64(0)
	default:
		return 0, 1<<uint(w) - 1
	}
}

// maskHalves returns the w-bit netmask of the given prefix length as
// (hi, lo) halves: the top `bits` value bits set, the rest clear.
func maskHalves(w, bits int) (hi, lo uint64) {
	if bits <= 0 {
		return 0, 0
	}
	if bits > w {
		bits = w
	}
	wh, wl := widthMask(w)
	if w <= 64 {
		return 0, wl &^ (1<<uint(w-bits) - 1)
	}
	// 128-bit family.
	if bits <= 64 {
		if bits == 64 {
			return wh, 0
		}
		return wh &^ (1<<uint(64-bits) - 1), 0
	}
	if bits >= 128 {
		return wh, wl
	}
	return wh, wl &^ (1<<uint(128-bits) - 1)
}

// KeyAdd returns a+b wrapping at the family width.
func KeyAdd[A Key[A]](a, b A) A {
	ah, al := a.Halves()
	bh, bl := b.Halves()
	lo := al + bl
	hi := ah + bh
	if lo < al {
		hi++
	}
	var z A
	return z.FromHalves(hi, lo)
}

// KeySub returns a-b wrapping at the family width.
func KeySub[A Key[A]](a, b A) A {
	ah, al := a.Halves()
	bh, bl := b.Halves()
	lo := al - bl
	hi := ah - bh
	if al < bl {
		hi--
	}
	var z A
	return z.FromHalves(hi, lo)
}

// KeyDec returns a-1 wrapping at the family width.
func KeyDec[A Key[A]](a A) A {
	var z A
	return KeySub(a, z.FromHalves(0, 1))
}

// KeyInc returns a+1 wrapping at the family width.
func KeyInc[A Key[A]](a A) A {
	var z A
	return KeyAdd(a, z.FromHalves(0, 1))
}

// KeyMax returns the all-ones value of the family (the top of the key
// space: 255.255.255.255, or ff…ff for IPv6).
func KeyMax[A Key[A]]() A {
	var z A
	return z.FromHalves(widthMask(z.Width()))
}

// KeyLess reports a < b.
func KeyLess[A Key[A]](a, b A) bool { return a.Compare(b) < 0 }

// SortKeys sorts addresses ascending with a comparator sort. The IPv4
// census path keeps its radix SortAddrs; this is the generic fallback
// for families without a specialized sort.
func SortKeys[A Key[A]](s []A) {
	slices.SortFunc(s, func(a, b A) int { return a.Compare(b) })
}

// SeekKeys is SeekAddrs for any address family: the first index at or
// after from whose address is >= target, found by a short linear scan,
// then a gallop, then a binary search. IPv4 slices are routed to the
// concrete SeekAddrs (inlined uint32 compares on the delta-merge hot
// path); the results are identical.
func SeekKeys[A Key[A]](addrs []A, from int, target A) int {
	if v4, ok := any(addrs).([]Addr); ok {
		return SeekAddrs(v4, from, any(target).(Addr))
	}
	n := len(addrs)
	lim := from + 32
	if lim > n {
		lim = n
	}
	for ; from < lim; from++ {
		if addrs[from].Compare(target) >= 0 {
			return from
		}
	}
	if from >= n || addrs[from].Compare(target) >= 0 {
		return from
	}
	step := 1
	lo := from
	hi := from + 1
	for hi < n && addrs[hi].Compare(target) < 0 {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > n {
		hi = n
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if addrs[mid].Compare(target) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// ErrOverflow reports a varint-decoded value that does not fit the
// family width.
var ErrOverflow = errors.New("netaddr: varint value overflows address width")

// AppendKeyUvarint appends the LEB128 encoding of a to dst. For values
// below 2^64 the bytes are identical to encoding/binary's PutUvarint,
// so the IPv4 wire and block formats are unchanged by the generic
// codec; 128-bit values extend the same scheme to at most 19 bytes.
func AppendKeyUvarint[A Key[A]](dst []byte, a A) []byte {
	hi, lo := a.Halves()
	for hi != 0 || lo >= 0x80 {
		dst = append(dst, byte(lo)|0x80)
		lo = lo>>7 | hi<<57
		hi >>= 7
	}
	return append(dst, byte(lo))
}

// DecodeKeyUvarint decodes one LEB128 value from src and returns it
// with the number of bytes read, mirroring binary.Uvarint: n == 0 means
// src was truncated, n < 0 an encoding wider than 128 bits (the value
// is meaningless in both cases). Bits above the family width are
// discarded — block streams are trusted; wire decoding validates with
// ReadKeyUvarint instead.
func DecodeKeyUvarint[A Key[A]](src []byte) (A, int) {
	var z A
	var hi, lo uint64
	var shift uint
	for i, b := range src {
		v := uint64(b & 0x7f)
		switch {
		case shift < 64:
			lo |= v << shift
			if shift > 57 {
				hi |= v >> (64 - shift)
			}
		case shift < 128:
			hi |= v << (shift - 64)
		default:
			return z, -(i + 1)
		}
		if b < 0x80 {
			return z.FromHalves(hi, lo), i + 1
		}
		shift += 7
	}
	return z, 0
}

// ReadKeyUvarint reads one LEB128 value from r and validates that it
// fits the family width, returning ErrOverflow otherwise. It is the
// codec-side counterpart of DecodeKeyUvarint: wire input is untrusted,
// so a 64-bit-overflowing delta in an IPv4 stream must error, not wrap.
func ReadKeyUvarint[A Key[A]](r io.ByteReader) (A, error) {
	var z A
	var hi, lo uint64
	var shift uint
	for {
		b, err := r.ReadByte()
		if err != nil {
			return z, err
		}
		v := uint64(b & 0x7f)
		switch {
		case shift < 64:
			lo |= v << shift
			if shift > 57 && v>>(64-shift) != 0 {
				hi |= v >> (64 - shift)
			}
		case shift < 128:
			if shift > 121 && v>>(128-shift) != 0 {
				return z, ErrOverflow
			}
			hi |= v << (shift - 64)
		default:
			return z, ErrOverflow
		}
		if b < 0x80 {
			break
		}
		shift += 7
	}
	w := z.Width()
	wh, wl := widthMask(w)
	if hi&^wh != 0 || lo&^wl != 0 {
		return z, ErrOverflow
	}
	return z.FromHalves(hi, lo), nil
}
