package netaddr

import (
	"fmt"
	"sort"
	"strconv"
)

// Pfx is a canonical CIDR prefix over any address family: the address
// has all bits below the prefix length cleared. The zero value is the
// family's full /0 prefix. Prefix and Prefix6 are its IPv4 and IPv6
// instantiations; all prefix machinery (tries, partitions, ranking) is
// written against Pfx so the two families share one implementation.
type Pfx[A Key[A]] struct {
	addr A
	bits uint8
}

// PfxFrom returns the canonical prefix of length bits containing a.
// Host bits of a are masked off. bits must be in [0, Width].
func PfxFrom[A Key[A]](a A, bits int) (Pfx[A], error) {
	w := a.Width()
	if bits < 0 || bits > w {
		return Pfx[A]{}, fmt.Errorf("%w: length %d", ErrBadPrefix, bits)
	}
	mh, ml := maskHalves(w, bits)
	ah, al := a.Halves()
	var z A
	return Pfx[A]{addr: z.FromHalves(ah&mh, al&ml), bits: uint8(bits)}, nil
}

// MustPfxFrom is PfxFrom for tests and constants; it panics on error.
func MustPfxFrom[A Key[A]](a A, bits int) Pfx[A] {
	p, err := PfxFrom(a, bits)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the netmask of p as an address value.
func (p Pfx[A]) Mask() A {
	var z A
	return z.FromHalves(maskHalves(z.Width(), int(p.bits)))
}

// Addr returns the (canonical) network address of p.
func (p Pfx[A]) Addr() A { return p.addr }

// Bits returns the prefix length of p.
func (p Pfx[A]) Bits() int { return int(p.bits) }

// String formats p in CIDR notation.
func (p Pfx[A]) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// NumAddresses returns the number of addresses covered by p
// (2^(Width-bits)), saturating at the maximum uint64 for IPv6 prefixes
// shorter than /65, whose sizes exceed 64 bits. Space accounting for
// wide families uses SpaceBits instead.
func (p Pfx[A]) NumAddresses() uint64 {
	var z A
	shift := z.Width() - int(p.bits)
	if shift >= 64 {
		return ^uint64(0)
	}
	return 1 << uint(shift)
}

// SpaceBits returns log2 of the prefix's address count: Width - bits.
func (p Pfx[A]) SpaceBits() int {
	var z A
	return z.Width() - int(p.bits)
}

// First returns the lowest address in p (its network address).
func (p Pfx[A]) First() A { return p.addr }

// Last returns the highest address in p (its broadcast address).
func (p Pfx[A]) Last() A {
	var z A
	w := z.Width()
	mh, ml := maskHalves(w, int(p.bits))
	wh, wl := widthMask(w)
	ah, al := p.addr.Halves()
	return z.FromHalves(ah|(^mh&wh), al|(^ml&wl))
}

// Contains reports whether a lies inside p.
func (p Pfx[A]) Contains(a A) bool {
	var z A
	mh, ml := maskHalves(z.Width(), int(p.bits))
	ah, al := a.Halves()
	ph, pl := p.addr.Halves()
	return ah&mh == ph && al&ml == pl
}

// ContainsPrefix reports whether q is fully inside p (q at least as
// specific as p and sharing p's prefix bits). A prefix contains itself.
func (p Pfx[A]) ContainsPrefix(q Pfx[A]) bool {
	return q.bits >= p.bits && p.Contains(q.addr)
}

// Overlaps reports whether p and q share any address. For prefixes this
// is equivalent to one containing the other.
func (p Pfx[A]) Overlaps(q Pfx[A]) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// oneAt returns the value with only the i-th most significant value bit
// set (0-based from the top of the family width).
func oneAt[A Key[A]](i int) A {
	var z A
	pos := z.Width() - 1 - i
	if pos >= 64 {
		return z.FromHalves(1<<uint(pos-64), 0)
	}
	return z.FromHalves(0, 1<<uint(pos))
}

// Split returns the two halves of p. ok is false when p is a full-width
// prefix and cannot be split.
func (p Pfx[A]) Split() (lo, hi Pfx[A], ok bool) {
	var z A
	if int(p.bits) >= z.Width() {
		return Pfx[A]{}, Pfx[A]{}, false
	}
	b := p.bits + 1
	lo = Pfx[A]{addr: p.addr, bits: b}
	ah, al := p.addr.Halves()
	oh, ol := oneAt[A](int(p.bits)).Halves()
	hi = Pfx[A]{addr: z.FromHalves(ah|oh, al|ol), bits: b}
	return lo, hi, true
}

// Parent returns the prefix one bit shorter that contains p. ok is
// false for the /0 root.
func (p Pfx[A]) Parent() (Pfx[A], bool) {
	if p.bits == 0 {
		return Pfx[A]{}, false
	}
	var z A
	b := int(p.bits) - 1
	mh, ml := maskHalves(z.Width(), b)
	ah, al := p.addr.Halves()
	return Pfx[A]{addr: z.FromHalves(ah&mh, al&ml), bits: uint8(b)}, true
}

// Sibling returns the other half of p's parent. ok is false for the /0
// root.
func (p Pfx[A]) Sibling() (Pfx[A], bool) {
	if p.bits == 0 {
		return Pfx[A]{}, false
	}
	var z A
	ah, al := p.addr.Halves()
	oh, ol := oneAt[A](int(p.bits) - 1).Halves()
	return Pfx[A]{addr: z.FromHalves(ah^oh, al^ol), bits: p.bits}, true
}

// Bit returns the i-th most significant bit (0-based) of p's address as
// 0 or 1. It is the branching bit at depth i in a binary trie.
func (p Pfx[A]) Bit(i int) int {
	var z A
	pos := z.Width() - 1 - i
	ah, al := p.addr.Halves()
	if pos >= 64 {
		return int(ah>>uint(pos-64)) & 1
	}
	return int(al>>uint(pos)) & 1
}

// Compare orders prefixes by network address, then by length (shorter
// first). It returns -1, 0 or +1. The induced order places a covering
// prefix immediately before the prefixes it contains, which the
// partition and trie code relies on.
func (p Pfx[A]) Compare(q Pfx[A]) int {
	if c := p.addr.Compare(q.addr); c != 0 {
		return c
	}
	switch {
	case p.bits < q.bits:
		return -1
	case p.bits > q.bits:
		return 1
	}
	return 0
}

// Range returns p as an inclusive address range.
func (p Pfx[A]) Range() KeyRange[A] {
	return KeyRange[A]{First: p.First(), Last: p.Last()}
}

// SortPfx sorts ps in Compare order in place. IPv4 slices are routed to
// the key-packed SortPrefixes (integer keys, no comparator calls); other
// families fall back to a comparator sort.
func SortPfx[A Key[A]](ps []Pfx[A]) {
	if v4, ok := any(ps).([]Prefix); ok {
		SortPrefixes(v4)
		return
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })
}

// KeyRange is an inclusive address range, used for exclusion lists and
// space accounting. AddrRange is its IPv4 instantiation.
type KeyRange[A Key[A]] struct {
	First, Last A
}

// Size returns the number of addresses in r, saturating at the maximum
// uint64 for IPv6 ranges wider than 2^64.
func (r KeyRange[A]) Size() uint64 {
	d := KeySub(r.Last, r.First)
	hi, lo := d.Halves()
	if hi != 0 || lo == ^uint64(0) {
		return ^uint64(0)
	}
	return lo + 1
}

// Contains reports whether a lies in r.
func (r KeyRange[A]) Contains(a A) bool {
	return r.First.Compare(a) <= 0 && a.Compare(r.Last) <= 0
}
