package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParseAddr6(t *testing.T) {
	cases := []struct {
		in   string
		want Addr6
		ok   bool
	}{
		{"::", Addr6{}, true},
		{"::1", Addr6{Lo: 1}, true},
		{"2001:db8::", Addr6{Hi: 0x20010db800000000}, true},
		{"2001:db8::1", Addr6{Hi: 0x20010db800000000, Lo: 1}, true},
		{"ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff",
			Addr6{Hi: ^uint64(0), Lo: ^uint64(0)}, true},
		{"1:2:3:4:5:6:7:8",
			Addr6{Hi: 0x0001000200030004, Lo: 0x0005000600070008}, true},
		{"1:2:3:4:5:6:7", Addr6{}, false},
		{"1:2:3:4:5:6:7:8:9", Addr6{}, false},
		{"::1::", Addr6{}, false},
		{"12345::", Addr6{}, false},
		{"g::", Addr6{}, false},
	}
	for _, c := range cases {
		got, err := ParseAddr6(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAddr6(%q) = %+v, %v; want %+v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAddr6(%q) succeeded, want error", c.in)
		}
	}
}

func TestAddr6StringRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := Addr6{Hi: hi, Lo: lo}
		back, err := ParseAddr6(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Compression corner cases.
	for _, s := range []string{"::", "::1", "1::", "2001:db8::1:0:0:1"} {
		a := MustParseAddr6(s)
		back, err := ParseAddr6(a.String())
		if err != nil || back != a {
			t.Errorf("round trip %q via %q: %+v, %v", s, a.String(), back, err)
		}
	}
}

func TestPrefix6(t *testing.T) {
	p, err := ParsePrefix6("2001:db8::/32")
	if err != nil {
		t.Fatal(err)
	}
	if p.Bits() != 32 {
		t.Errorf("Bits = %d", p.Bits())
	}
	if !p.Contains(MustParseAddr6("2001:db8::1")) {
		t.Error("should contain 2001:db8::1")
	}
	if p.Contains(MustParseAddr6("2001:db9::")) {
		t.Error("should not contain 2001:db9::")
	}
	q, _ := ParsePrefix6("2001:db8:1::/48")
	if !p.ContainsPrefix(q) || q.ContainsPrefix(p) {
		t.Error("containment between /32 and /48 wrong")
	}
	if _, err := ParsePrefix6("2001:db8::1/32"); err == nil {
		t.Error("host bits set must be rejected")
	}
	if _, err := ParsePrefix6("2001:db8::/129"); err == nil {
		t.Error("length 129 must be rejected")
	}
	long, _ := Prefix6From(MustParseAddr6("2001:db8::ffff"), 112)
	if got, want := long.String(), "2001:db8::/112"; got != want {
		t.Errorf("masking: got %s want %s", got, want)
	}
}

func TestPrefix6String(t *testing.T) {
	for _, s := range []string{"::/0", "2001:db8::/32", "ff00::/8", "::1/128"} {
		p, err := ParsePrefix6(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if p.String() != s {
			t.Errorf("String = %q, want %q", p.String(), s)
		}
	}
}
