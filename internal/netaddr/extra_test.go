package netaddr

import (
	"testing"
	"testing/quick"
)

func TestMaskAndOctets(t *testing.T) {
	cases := []struct {
		prefix string
		mask   string
	}{
		{"0.0.0.0/0", "0.0.0.0"},
		{"10.0.0.0/8", "255.0.0.0"},
		{"100.64.0.0/10", "255.192.0.0"},
		{"192.0.2.0/24", "255.255.255.0"},
		{"192.0.2.1/32", "255.255.255.255"},
	}
	for _, c := range cases {
		p := MustParsePrefix(c.prefix)
		if got := p.Mask().String(); got != c.mask {
			t.Errorf("%s mask = %s, want %s", c.prefix, got, c.mask)
		}
	}
	o := MustParseAddr("1.2.3.4").Octets()
	if o != [4]byte{1, 2, 3, 4} {
		t.Errorf("Octets = %v", o)
	}
}

func TestContainsPrefixTransitive(t *testing.T) {
	// If a ⊇ b and b ⊇ c then a ⊇ c: derive nested prefixes and check.
	f := func(v uint32, b1, b2, b3 uint8) bool {
		l1 := int(b1 % 11)    // 0..10
		l2 := l1 + int(b2%11) // l1..l1+10
		l3 := l2 + int(b3%11) // l2..l2+10
		if l3 > 32 {
			return true
		}
		a := MustPrefixFrom(Addr(v), l1)
		b := MustPrefixFrom(Addr(v), l2)
		c := MustPrefixFrom(Addr(v), l3)
		return a.ContainsPrefix(b) && b.ContainsPrefix(c) && a.ContainsPrefix(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContainsMatchesRange(t *testing.T) {
	// Contains(a) must agree with First() <= a <= Last().
	f := func(v, probe uint32, bitsRaw uint8) bool {
		p := MustPrefixFrom(Addr(v), int(bitsRaw%33))
		a := Addr(probe)
		inRange := a >= p.First() && a <= p.Last()
		return p.Contains(a) == inRange
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	f := func(v1, v2 uint32, b1, b2 uint8) bool {
		p := MustPrefixFrom(Addr(v1), int(b1%33))
		q := MustPrefixFrom(Addr(v2), int(b2%33))
		pq, qp := p.Compare(q), q.Compare(p)
		if p == q {
			return pq == 0 && qp == 0
		}
		return pq == -qp && pq != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixFromRejectsBadBits(t *testing.T) {
	if _, err := PrefixFrom(0, 33); err == nil {
		t.Error("bits 33 accepted")
	}
	if _, err := PrefixFrom(0, -1); err == nil {
		t.Error("bits -1 accepted")
	}
}

func TestMustPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MustParseAddr":   func() { MustParseAddr("bogus") },
		"MustParsePrefix": func() { MustParsePrefix("bogus") },
		"MustPrefixFrom":  func() { MustPrefixFrom(0, 99) },
		"MustParseAddr6":  func() { MustParseAddr6("bogus") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSummarizeRangeAdjacentMerges(t *testing.T) {
	// Two adjacent /25s summarize to one /24.
	got := SummarizeRange(MustParseAddr("10.0.0.0"), MustParseAddr("10.0.0.255"))
	if len(got) != 1 || got[0].String() != "10.0.0.0/24" {
		t.Errorf("SummarizeRange = %v", got)
	}
	// Unaligned start forces a split.
	got = SummarizeRange(MustParseAddr("10.0.0.128"), MustParseAddr("10.0.1.255"))
	want := []string{"10.0.0.128/25", "10.0.1.0/24"}
	if len(got) != 2 || got[0].String() != want[0] || got[1].String() != want[1] {
		t.Errorf("SummarizeRange = %v, want %v", got, want)
	}
}
