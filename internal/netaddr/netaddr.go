// Package netaddr provides compact address and prefix arithmetic for
// scan-strategy computations, generic over the address family.
//
// IPv4 addresses are represented as host-order uint32 values (the integer
// value of the dotted quad), which makes range arithmetic, sorting and set
// operations on hundreds of millions of addresses cheap; IPv6 addresses
// are two 64-bit halves (ipv6.go). Both families implement the Key
// constraint (key.go), and prefixes are one generic type, Pfx[A]
// (prefix.go), of which Prefix and Prefix6 are instantiations. Prefixes
// are always canonical: host bits below the prefix length are zero.
package netaddr

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
)

// Addr is an IPv4 address stored as its 32-bit integer value
// (192.0.2.1 == 0xC0000201).
type Addr uint32

// AddrFrom4 assembles an Addr from four dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// Octets returns the four dotted-quad octets of a.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// String formats a in dotted-quad notation.
func (a Addr) String() string {
	o := a.Octets()
	// Hand-rolled to avoid fmt overhead in hot logging paths.
	buf := make([]byte, 0, 15)
	for i, b := range o {
		if i > 0 {
			buf = append(buf, '.')
		}
		buf = strconv.AppendUint(buf, uint64(b), 10)
	}
	return string(buf)
}

// ErrBadAddr is returned by ParseAddr for malformed dotted quads.
var ErrBadAddr = errors.New("netaddr: invalid IPv4 address")

// ErrBadPrefix is returned by ParsePrefix and PrefixFrom for malformed or
// out-of-range prefixes.
var ErrBadPrefix = errors.New("netaddr: invalid IPv4 prefix")

// ParseAddr parses a dotted-quad IPv4 address such as "192.0.2.1".
// Leading zeros, empty octets and out-of-range octets are rejected.
func ParseAddr(s string) (Addr, error) {
	var v uint32
	octet := uint32(0)
	digits := 0
	dots := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9':
			if digits > 0 && octet == 0 {
				return 0, fmt.Errorf("%w: leading zero in %q", ErrBadAddr, s)
			}
			octet = octet*10 + uint32(c-'0')
			if octet > 255 {
				return 0, fmt.Errorf("%w: octet out of range in %q", ErrBadAddr, s)
			}
			digits++
		case c == '.':
			if digits == 0 {
				return 0, fmt.Errorf("%w: empty octet in %q", ErrBadAddr, s)
			}
			v = v<<8 | octet
			octet, digits = 0, 0
			dots++
			if dots > 3 {
				return 0, fmt.Errorf("%w: too many octets in %q", ErrBadAddr, s)
			}
		default:
			return 0, fmt.Errorf("%w: unexpected character %q in %q", ErrBadAddr, c, s)
		}
	}
	if dots != 3 || digits == 0 {
		return 0, fmt.Errorf("%w: %q", ErrBadAddr, s)
	}
	return Addr(v<<8 | octet), nil
}

// MustParseAddr is ParseAddr for tests and constants; it panics on error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Prefix is a canonical IPv4 CIDR prefix: the IPv4 instantiation of the
// generic Pfx. The zero value is the full /0 prefix.
type Prefix = Pfx[Addr]

// PrefixFrom returns the canonical prefix of length bits containing a.
// Host bits of a are masked off. bits must be in [0, 32].
func PrefixFrom(a Addr, bits int) (Prefix, error) {
	if bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("%w: length %d", ErrBadPrefix, bits)
	}
	return Prefix{addr: a & maskOf(bits), bits: uint8(bits)}, nil
}

// MustPrefixFrom is PrefixFrom for tests and constants; it panics on error.
func MustPrefixFrom(a Addr, bits int) Prefix {
	p, err := PrefixFrom(a, bits)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation such as "100.64.0.0/10". The address
// part must be the canonical network address (no host bits set); this
// strictness catches data errors in routing-table inputs early.
func ParsePrefix(s string) (Prefix, error) {
	slash := -1
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			slash = i
			break
		}
	}
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: missing '/' in %q", ErrBadPrefix, s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %v", ErrBadPrefix, err)
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("%w: bad length in %q", ErrBadPrefix, s)
	}
	if a&^maskOf(bits) != 0 {
		return Prefix{}, fmt.Errorf("%w: host bits set in %q", ErrBadPrefix, s)
	}
	return Prefix{addr: a, bits: uint8(bits)}, nil
}

// MustParsePrefix is ParsePrefix for tests and constants; it panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func maskOf(bits int) Addr {
	if bits <= 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - uint(bits)))
}

// SeekAddrs returns the first index at or after from whose address is
// >= target, galloping forward before the binary search. For cursors
// that advance through a sorted slice in many small steps (delta
// merges, sorted-run mapping) the gallop costs O(log gap) instead of
// O(log n) per seek. It is the IPv4 specialization of SeekKeys, kept
// concrete because the inlined uint32 compares matter on the delta
// merge hot path.
func SeekAddrs(addrs []Addr, from int, target Addr) int {
	n := len(addrs)
	// Short forward scan first: delta cursors mostly advance a few
	// dozen elements, where a sequential (prefetched) compare loop
	// beats the gallop's scattered probes.
	lim := from + 32
	if lim > n {
		lim = n
	}
	for ; from < lim; from++ {
		if addrs[from] >= target {
			return from
		}
	}
	if from >= n || addrs[from] >= target {
		return from
	}
	// Gallop keeping addrs[lo] < target; stop once hi clears the target.
	step := 1
	lo := from
	hi := from + 1
	for hi < n && addrs[hi] < target {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > n {
		hi = n
	}
	// Plain binary search in (lo, hi]: cheaper than sort.Search on this
	// many-small-seeks hot path.
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if addrs[mid] < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// SortPrefixes sorts ps in Compare order in place. Compare order is
// (address, length) lexicographic, so a prefix packs losslessly into
// the uint64 addr<<8|bits and the sort runs on integer keys — no
// comparator calls, no reflection swaps — which matters on the
// selection hot path (every Select sorts its K chosen prefixes into a
// partition). Small inputs skip the key buffer.
func SortPrefixes(ps []Prefix) {
	if len(ps) < 32 {
		sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })
		return
	}
	keys := make([]uint64, len(ps))
	for i, p := range ps {
		keys[i] = uint64(p.addr)<<8 | uint64(p.bits)
	}
	slices.Sort(keys)
	for i, k := range keys {
		ps[i] = Prefix{addr: Addr(k >> 8), bits: uint8(k)}
	}
}

// SummarizeRange returns the minimal list of prefixes that exactly covers
// the inclusive address range [first, last], in ascending order. It is the
// classic CIDR range-summarization algorithm and the building block of
// prefix deaggregation (Figure 2 of the paper).
func SummarizeRange(first, last Addr) []Prefix {
	if first > last {
		return nil
	}
	var out []Prefix
	cur := uint64(first)
	end := uint64(last)
	for cur <= end {
		// Largest power-of-two block that starts aligned at cur ...
		size := cur & (^cur + 1) // lowest set bit of cur
		if size == 0 {
			size = 1 << 32 // cur == 0 is aligned for any block size
		}
		// ... shrunk until it also fits in the remaining span.
		for cur+size-1 > end {
			size >>= 1
		}
		bits := 32
		for s := size; s > 1; s >>= 1 {
			bits--
		}
		out = append(out, Prefix{addr: Addr(cur), bits: uint8(bits)})
		cur += size
	}
	return out
}

// AddrRange is an inclusive IPv4 address range: the IPv4 instantiation
// of the generic KeyRange.
type AddrRange = KeyRange[Addr]
