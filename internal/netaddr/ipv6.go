package netaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr6 is a 128-bit IPv6 address stored as two 64-bit halves. It is
// the second Key implementation: every data structure in this
// repository — prefixes, block-indexed sets, census snapshots,
// partitions, the ranking core — instantiates over it, which is the
// TASS paper's explicit future-work direction: when brute-forcing the
// address space is impossible, prefix selection is the only viable scan
// scoping.
type Addr6 struct {
	Hi, Lo uint64
}

// String formats a per RFC 5952: lower-case hexadecimal groups,
// zero-run compression for the single leftmost longest run (of length
// at least two), and dotted-quad notation for the low 32 bits of
// IPv4-mapped addresses (::ffff:a.b.c.d).
func (a Addr6) String() string {
	if a.Hi == 0 && a.Lo>>32 == 0xffff {
		return "::ffff:" + Addr(uint32(a.Lo)).String()
	}
	var groups [8]uint16
	for i := 0; i < 4; i++ {
		groups[i] = uint16(a.Hi >> (48 - 16*uint(i)))
		groups[i+4] = uint16(a.Lo >> (48 - 16*uint(i)))
	}
	// Longest run of zero groups (must be >1 to compress, per RFC 5952).
	best, bestLen := -1, 1
	for i := 0; i < 8; {
		if groups[i] != 0 {
			i++
			continue
		}
		j := i
		for j < 8 && groups[j] == 0 {
			j++
		}
		if j-i > bestLen {
			best, bestLen = i, j-i
		}
		i = j
	}
	var sb strings.Builder
	for i := 0; i < 8; i++ {
		if i == best {
			sb.WriteString("::")
			i += bestLen - 1
			continue
		}
		if i > 0 && !(best >= 0 && i == best+bestLen) {
			sb.WriteByte(':')
		}
		sb.WriteString(strconv.FormatUint(uint64(groups[i]), 16))
	}
	s := sb.String()
	if s == "" {
		return "::"
	}
	return s
}

// ParseAddr6 parses an RFC 4291 textual IPv6 address: hexadecimal
// groups with optional "::" compression, optionally ending in an
// embedded dotted-quad IPv4 address ("::ffff:192.0.2.1"). Zone
// suffixes ("%eth0") and any other trailing garbage are rejected.
func ParseAddr6(s string) (Addr6, error) {
	if strings.IndexByte(s, '%') >= 0 {
		return Addr6{}, fmt.Errorf("%w: zone suffix in %q", ErrBadAddr, s)
	}
	var head, tail []uint16
	parts := strings.Split(s, "::")
	if len(parts) > 2 {
		return Addr6{}, fmt.Errorf("%w: multiple '::' in %q", ErrBadAddr, s)
	}
	// parse decodes one colon-separated segment. last marks the segment
	// holding the end of the address, where the final group may be an
	// embedded dotted-quad IPv4 address (two 16-bit groups).
	parse := func(seg string, last bool) ([]uint16, error) {
		if seg == "" {
			return nil, nil
		}
		var out []uint16
		gs := strings.Split(seg, ":")
		for i, g := range gs {
			if strings.IndexByte(g, '.') >= 0 {
				if !last || i != len(gs)-1 {
					return nil, fmt.Errorf("%w: embedded IPv4 not at end of %q", ErrBadAddr, s)
				}
				v4, err := ParseAddr(g)
				if err != nil {
					return nil, fmt.Errorf("%w: bad embedded IPv4 %q in %q", ErrBadAddr, g, s)
				}
				return append(out, uint16(v4>>16), uint16(v4)), nil
			}
			if g == "" || len(g) > 4 {
				return nil, fmt.Errorf("%w: bad group %q in %q", ErrBadAddr, g, s)
			}
			v, err := strconv.ParseUint(g, 16, 16)
			if err != nil {
				return nil, fmt.Errorf("%w: bad group %q in %q", ErrBadAddr, g, s)
			}
			out = append(out, uint16(v))
		}
		return out, nil
	}
	var err error
	if head, err = parse(parts[0], len(parts) == 1); err != nil {
		return Addr6{}, err
	}
	if len(parts) == 2 {
		if tail, err = parse(parts[1], true); err != nil {
			return Addr6{}, err
		}
		if len(head)+len(tail) > 7 {
			return Addr6{}, fmt.Errorf("%w: '::' with 8 groups in %q", ErrBadAddr, s)
		}
	} else if len(head) != 8 {
		return Addr6{}, fmt.Errorf("%w: %d groups in %q", ErrBadAddr, len(head), s)
	}
	var groups [8]uint16
	copy(groups[:], head)
	copy(groups[8-len(tail):], tail)
	var a Addr6
	for i := 0; i < 4; i++ {
		a.Hi |= uint64(groups[i]) << (48 - 16*uint(i))
		a.Lo |= uint64(groups[i+4]) << (48 - 16*uint(i))
	}
	return a, nil
}

// MustParseAddr6 is ParseAddr6 for tests and constants; it panics on error.
func MustParseAddr6(s string) Addr6 {
	a, err := ParseAddr6(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Prefix6 is a canonical IPv6 CIDR prefix: the IPv6 instantiation of
// the generic Pfx. The zero value is the full ::/0 prefix.
type Prefix6 = Pfx[Addr6]

// Prefix6From returns the canonical prefix of length bits containing a.
func Prefix6From(a Addr6, bits int) (Prefix6, error) {
	return PfxFrom(a, bits)
}

// ParsePrefix6 parses IPv6 CIDR notation such as "2001:db8::/32". Host
// bits must be zero.
func ParsePrefix6(s string) (Prefix6, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix6{}, fmt.Errorf("%w: missing '/' in %q", ErrBadPrefix, s)
	}
	a, err := ParseAddr6(s[:slash])
	if err != nil {
		return Prefix6{}, fmt.Errorf("%w: %v", ErrBadPrefix, err)
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 128 {
		return Prefix6{}, fmt.Errorf("%w: bad length in %q", ErrBadPrefix, s)
	}
	mh, ml := maskHalves(128, bits)
	if a.Hi&^mh != 0 || a.Lo&^ml != 0 {
		return Prefix6{}, fmt.Errorf("%w: host bits set in %q", ErrBadPrefix, s)
	}
	return Prefix6{addr: a, bits: uint8(bits)}, nil
}

// MustParsePrefix6 is ParsePrefix6 for tests and constants; it panics
// on error.
func MustParsePrefix6(s string) Prefix6 {
	p, err := ParsePrefix6(s)
	if err != nil {
		panic(err)
	}
	return p
}
