package netaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr6 is a 128-bit IPv6 address stored as two 64-bit halves. It exists so
// the prefix machinery in this repository has a forward path to IPv6
// scanning, the explicit future-work direction of the TASS paper: when
// brute-forcing the address space is impossible, prefix selection is the
// only viable scan scoping, and all selection code here is width-agnostic.
type Addr6 struct {
	Hi, Lo uint64
}

// Compare orders addresses numerically and returns -1, 0 or +1.
func (a Addr6) Compare(b Addr6) int {
	switch {
	case a.Hi < b.Hi:
		return -1
	case a.Hi > b.Hi:
		return 1
	case a.Lo < b.Lo:
		return -1
	case a.Lo > b.Lo:
		return 1
	}
	return 0
}

// String formats a in full (uncompressed) RFC 5952 hexadecimal groups.
// Zero-run compression is applied for the single longest run.
func (a Addr6) String() string {
	var groups [8]uint16
	for i := 0; i < 4; i++ {
		groups[i] = uint16(a.Hi >> (48 - 16*uint(i)))
		groups[i+4] = uint16(a.Lo >> (48 - 16*uint(i)))
	}
	// Longest run of zero groups (must be >1 to compress, per RFC 5952).
	best, bestLen := -1, 1
	for i := 0; i < 8; {
		if groups[i] != 0 {
			i++
			continue
		}
		j := i
		for j < 8 && groups[j] == 0 {
			j++
		}
		if j-i > bestLen {
			best, bestLen = i, j-i
		}
		i = j
	}
	var sb strings.Builder
	for i := 0; i < 8; i++ {
		if i == best {
			sb.WriteString("::")
			i += bestLen - 1
			continue
		}
		if i > 0 && !(best >= 0 && i == best+bestLen) {
			sb.WriteByte(':')
		}
		sb.WriteString(strconv.FormatUint(uint64(groups[i]), 16))
	}
	s := sb.String()
	if s == "" {
		return "::"
	}
	return s
}

// ParseAddr6 parses an RFC 4291 textual IPv6 address (with optional "::"
// compression). Embedded IPv4 notation is not supported.
func ParseAddr6(s string) (Addr6, error) {
	var head, tail []uint16
	parts := strings.Split(s, "::")
	if len(parts) > 2 {
		return Addr6{}, fmt.Errorf("%w: multiple '::' in %q", ErrBadAddr, s)
	}
	parse := func(seg string) ([]uint16, error) {
		if seg == "" {
			return nil, nil
		}
		var out []uint16
		for _, g := range strings.Split(seg, ":") {
			if g == "" || len(g) > 4 {
				return nil, fmt.Errorf("%w: bad group %q in %q", ErrBadAddr, g, s)
			}
			v, err := strconv.ParseUint(g, 16, 16)
			if err != nil {
				return nil, fmt.Errorf("%w: bad group %q in %q", ErrBadAddr, g, s)
			}
			out = append(out, uint16(v))
		}
		return out, nil
	}
	var err error
	if head, err = parse(parts[0]); err != nil {
		return Addr6{}, err
	}
	if len(parts) == 2 {
		if tail, err = parse(parts[1]); err != nil {
			return Addr6{}, err
		}
		if len(head)+len(tail) > 7 {
			return Addr6{}, fmt.Errorf("%w: '::' with 8 groups in %q", ErrBadAddr, s)
		}
	} else if len(head) != 8 {
		return Addr6{}, fmt.Errorf("%w: %d groups in %q", ErrBadAddr, len(head), s)
	}
	var groups [8]uint16
	copy(groups[:], head)
	copy(groups[8-len(tail):], tail)
	var a Addr6
	for i := 0; i < 4; i++ {
		a.Hi |= uint64(groups[i]) << (48 - 16*uint(i))
		a.Lo |= uint64(groups[i+4]) << (48 - 16*uint(i))
	}
	return a, nil
}

// MustParseAddr6 is ParseAddr6 for tests and constants; it panics on error.
func MustParseAddr6(s string) Addr6 {
	a, err := ParseAddr6(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Prefix6 is a canonical IPv6 CIDR prefix.
type Prefix6 struct {
	addr Addr6
	bits uint8
}

// Prefix6From returns the canonical prefix of length bits containing a.
func Prefix6From(a Addr6, bits int) (Prefix6, error) {
	if bits < 0 || bits > 128 {
		return Prefix6{}, fmt.Errorf("%w: length %d", ErrBadPrefix, bits)
	}
	hi, lo := mask6(bits)
	return Prefix6{addr: Addr6{Hi: a.Hi & hi, Lo: a.Lo & lo}, bits: uint8(bits)}, nil
}

// ParsePrefix6 parses IPv6 CIDR notation such as "2001:db8::/32". Host
// bits must be zero.
func ParsePrefix6(s string) (Prefix6, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix6{}, fmt.Errorf("%w: missing '/' in %q", ErrBadPrefix, s)
	}
	a, err := ParseAddr6(s[:slash])
	if err != nil {
		return Prefix6{}, fmt.Errorf("%w: %v", ErrBadPrefix, err)
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 128 {
		return Prefix6{}, fmt.Errorf("%w: bad length in %q", ErrBadPrefix, s)
	}
	hi, lo := mask6(bits)
	if a.Hi&^hi != 0 || a.Lo&^lo != 0 {
		return Prefix6{}, fmt.Errorf("%w: host bits set in %q", ErrBadPrefix, s)
	}
	return Prefix6{addr: a, bits: uint8(bits)}, nil
}

func mask6(bits int) (hi, lo uint64) {
	switch {
	case bits <= 0:
		return 0, 0
	case bits <= 64:
		return ^uint64(0) << (64 - uint(bits)), 0
	case bits >= 128:
		return ^uint64(0), ^uint64(0)
	default:
		return ^uint64(0), ^uint64(0) << (128 - uint(bits))
	}
}

// Addr returns the network address of p.
func (p Prefix6) Addr() Addr6 { return p.addr }

// Bits returns the prefix length of p.
func (p Prefix6) Bits() int { return int(p.bits) }

// String formats p in CIDR notation.
func (p Prefix6) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// Contains reports whether a lies inside p.
func (p Prefix6) Contains(a Addr6) bool {
	hi, lo := mask6(int(p.bits))
	return a.Hi&hi == p.addr.Hi && a.Lo&lo == p.addr.Lo
}

// ContainsPrefix reports whether q is fully inside p.
func (p Prefix6) ContainsPrefix(q Prefix6) bool {
	return q.bits >= p.bits && p.Contains(q.addr)
}
