package netaddr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xFFFFFFFF, true},
		{"192.0.2.1", 0xC0000201, true},
		{"10.0.0.1", 0x0A000001, true},
		{"1.2.3.4", AddrFrom4(1, 2, 3, 4), true},
		{"256.0.0.0", 0, false},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"1..3.4", 0, false},
		{"01.2.3.4", 0, false},
		{"1.2.3.4 ", 0, false},
		{"", 0, false},
		{"a.b.c.d", 0, false},
		{"-1.2.3.4", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAddr(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", c.in)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixParseAndFormat(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"0.0.0.0/0", true},
		{"10.0.0.0/8", true},
		{"100.64.0.0/10", true},
		{"192.0.2.0/24", true},
		{"192.0.2.1/32", true},
		{"192.0.2.1/24", false}, // host bits set
		{"10.0.0.0/33", false},
		{"10.0.0.0/-1", false},
		{"10.0.0.0", false},
		{"10.0.0.0/x", false},
	}
	for _, c := range cases {
		p, err := ParsePrefix(c.in)
		if c.ok {
			if err != nil {
				t.Errorf("ParsePrefix(%q): %v", c.in, err)
				continue
			}
			if p.String() != c.in {
				t.Errorf("ParsePrefix(%q).String() = %q", c.in, p.String())
			}
		} else if err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", c.in)
		}
	}
}

func TestPrefixFromMasksHostBits(t *testing.T) {
	p := MustPrefixFrom(MustParseAddr("192.0.2.77"), 24)
	if got, want := p.String(), "192.0.2.0/24"; got != want {
		t.Fatalf("got %s, want %s", got, want)
	}
	if p.NumAddresses() != 256 {
		t.Fatalf("NumAddresses = %d, want 256", p.NumAddresses())
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("100.64.0.0/10")
	if !p.Contains(MustParseAddr("100.64.0.0")) ||
		!p.Contains(MustParseAddr("100.127.255.255")) {
		t.Error("prefix should contain its own range endpoints")
	}
	if p.Contains(MustParseAddr("100.128.0.0")) || p.Contains(MustParseAddr("100.63.255.255")) {
		t.Error("prefix contains addresses outside its range")
	}
	if got := p.First(); got != MustParseAddr("100.64.0.0") {
		t.Errorf("First = %v", got)
	}
	if got := p.Last(); got != MustParseAddr("100.127.255.255") {
		t.Errorf("Last = %v", got)
	}
}

func TestContainsPrefixAndOverlaps(t *testing.T) {
	l := MustParsePrefix("100.0.0.0/8")
	m := MustParsePrefix("100.16.0.0/12")
	other := MustParsePrefix("101.0.0.0/8")
	if !l.ContainsPrefix(m) {
		t.Error("/8 should contain its /12")
	}
	if m.ContainsPrefix(l) {
		t.Error("/12 should not contain its /8")
	}
	if !l.ContainsPrefix(l) {
		t.Error("prefix should contain itself")
	}
	if !l.Overlaps(m) || !m.Overlaps(l) {
		t.Error("nested prefixes overlap")
	}
	if l.Overlaps(other) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestSplitParentSibling(t *testing.T) {
	p := MustParsePrefix("100.0.0.0/8")
	lo, hi, ok := p.Split()
	if !ok || lo.String() != "100.0.0.0/9" || hi.String() != "100.128.0.0/9" {
		t.Fatalf("Split = %v, %v, %v", lo, hi, ok)
	}
	if parent, ok := lo.Parent(); !ok || parent != p {
		t.Errorf("Parent(%v) = %v, %v", lo, parent, ok)
	}
	if sib, ok := lo.Sibling(); !ok || sib != hi {
		t.Errorf("Sibling(%v) = %v, %v", lo, sib, ok)
	}
	if _, _, ok := MustParsePrefix("1.2.3.4/32").Split(); ok {
		t.Error("splitting a /32 must fail")
	}
	root := MustParsePrefix("0.0.0.0/0")
	if _, ok := root.Parent(); ok {
		t.Error("/0 has no parent")
	}
	if _, ok := root.Sibling(); ok {
		t.Error("/0 has no sibling")
	}
}

func TestSplitPropertyPartition(t *testing.T) {
	// Splitting any prefix yields two disjoint halves whose union is the
	// original prefix.
	f := func(v uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw % 32) // 0..31 so Split always succeeds
		p := MustPrefixFrom(Addr(v), bits)
		lo, hi, ok := p.Split()
		if !ok {
			return false
		}
		return lo.First() == p.First() &&
			hi.Last() == p.Last() &&
			uint64(lo.Last())+1 == uint64(hi.First()) &&
			lo.NumAddresses()+hi.NumAddresses() == p.NumAddresses() &&
			!lo.Overlaps(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBit(t *testing.T) {
	p := MustParsePrefix("128.0.0.0/1")
	if p.Bit(0) != 1 {
		t.Error("MSB of 128.0.0.0 should be 1")
	}
	q := MustParsePrefix("64.0.0.0/2")
	if q.Bit(0) != 0 || q.Bit(1) != 1 {
		t.Errorf("bits of 64.0.0.0: %d %d", q.Bit(0), q.Bit(1))
	}
}

func TestCompareOrdering(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("10.0.0.0/9"),
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("9.0.0.0/8"),
		MustParsePrefix("10.128.0.0/9"),
	}
	SortPrefixes(ps)
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/9", "10.128.0.0/9"}
	for i, w := range want {
		if ps[i].String() != w {
			t.Fatalf("sorted[%d] = %s, want %s", i, ps[i], w)
		}
	}
}

func TestSummarizeRangeExact(t *testing.T) {
	cases := []struct {
		first, last string
		want        []string
	}{
		{"10.0.0.0", "10.255.255.255", []string{"10.0.0.0/8"}},
		{"10.0.0.0", "10.0.0.0", []string{"10.0.0.0/32"}},
		{"10.0.0.1", "10.0.0.2", []string{"10.0.0.1/32", "10.0.0.2/32"}},
		// The Figure 2 remainder: /8 minus its first /12 leaves /12,/11,/10,/9.
		{"100.16.0.0", "100.255.255.255",
			[]string{"100.16.0.0/12", "100.32.0.0/11", "100.64.0.0/10", "100.128.0.0/9"}},
		{"0.0.0.0", "255.255.255.255", []string{"0.0.0.0/0"}},
	}
	for _, c := range cases {
		got := SummarizeRange(MustParseAddr(c.first), MustParseAddr(c.last))
		if len(got) != len(c.want) {
			t.Errorf("SummarizeRange(%s, %s) = %v, want %v", c.first, c.last, got, c.want)
			continue
		}
		for i := range got {
			if got[i].String() != c.want[i] {
				t.Errorf("SummarizeRange(%s, %s)[%d] = %v, want %v", c.first, c.last, i, got[i], c.want[i])
			}
		}
	}
	if got := SummarizeRange(5, 2); got != nil {
		t.Errorf("inverted range should summarize to nil, got %v", got)
	}
}

func TestSummarizeRangeProperty(t *testing.T) {
	// The summarized prefixes tile [first,last] exactly: consecutive,
	// in order, no gaps, no overlap, covering the full span.
	f := func(a, b uint32) bool {
		first, last := Addr(a), Addr(b)
		if first > last {
			first, last = last, first
		}
		ps := SummarizeRange(first, last)
		if len(ps) == 0 {
			return false
		}
		if ps[0].First() != first || ps[len(ps)-1].Last() != last {
			return false
		}
		var total uint64
		for i, p := range ps {
			total += p.NumAddresses()
			if i > 0 && uint64(ps[i-1].Last())+1 != uint64(p.First()) {
				return false
			}
		}
		return total == uint64(last)-uint64(first)+1
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeRangeMinimality(t *testing.T) {
	// A range that is exactly one prefix must summarize to that prefix.
	f := func(v uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw % 33)
		p := MustPrefixFrom(Addr(v), bits)
		ps := SummarizeRange(p.First(), p.Last())
		return len(ps) == 1 && ps[0] == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrRange(t *testing.T) {
	r := MustParsePrefix("192.0.2.0/24").Range()
	if r.Size() != 256 {
		t.Errorf("Size = %d", r.Size())
	}
	if !r.Contains(MustParseAddr("192.0.2.128")) || r.Contains(MustParseAddr("192.0.3.0")) {
		t.Error("Contains wrong")
	}
}

func BenchmarkParseAddr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseAddr("203.119.45.17"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummarizeRange(b *testing.B) {
	first := MustParseAddr("10.0.0.1")
	last := MustParseAddr("10.255.255.254")
	for i := 0; i < b.N; i++ {
		SummarizeRange(first, last)
	}
}
