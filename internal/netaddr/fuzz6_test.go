package netaddr

import (
	"net/netip"
	"testing"
)

// FuzzParseAddr6 differentially tests the IPv6 parser and formatter
// against net/netip. The repository's parser is deliberately narrower
// than the stdlib in exactly two ways — zone suffixes ("%eth0") and
// pure dotted-quad IPv4 are rejected — so those inputs are out of
// scope for the accept/reject comparison; everything else must agree
// on acceptance, on the parsed bytes, and on the RFC 5952 string form.
func FuzzParseAddr6(f *testing.F) {
	for _, s := range []string{
		"::",
		"::1",
		"2001:db8::1",
		"::ffff:192.0.2.1",
		"::ffff:0.0.0.0",
		"1:2:3:4:5:6:7:8",
		"1:2:3:4:5:6:1.2.3.4",
		"fe80::1%eth0",
		"1::2::3",
		"2001:db8::g",
		"::1.2.3.4",
		"1.2.3.4",
		"cafe:BABE::",
		"0:0:0:0:0:0:0:0",
		"1:2:3:4:5:6:7::",
		"::ffff:255.255.255.256",
		"ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr6(s)
		std, stdErr := netip.ParseAddr(s)
		if err != nil {
			// Everything we reject the stdlib rejects too, except the
			// two intentional scope cuts above.
			if stdErr == nil && std.Is6() && std.Zone() == "" {
				t.Fatalf("ParseAddr6(%q) = %v, but netip accepts %v", s, err, std)
			}
			return
		}
		if stdErr != nil {
			t.Fatalf("ParseAddr6(%q) = %v, but netip rejects: %v", s, a, stdErr)
		}
		want := std.As16()
		var got [16]byte
		for i := 0; i < 8; i++ {
			got[i] = byte(a.Hi >> (56 - 8*uint(i)))
			got[i+8] = byte(a.Lo >> (56 - 8*uint(i)))
		}
		if got != want {
			t.Fatalf("ParseAddr6(%q) = %v, netip parses %v", s, got, want)
		}
		// The formatter must match the stdlib's RFC 5952 output and
		// round-trip through the parser.
		out := a.String()
		if stdOut := std.String(); out != stdOut {
			t.Fatalf("Addr6(%q).String() = %q, netip formats %q", s, out, stdOut)
		}
		back, err := ParseAddr6(out)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", out, s, err)
		}
		if back != a {
			t.Fatalf("round-trip %q -> %q -> %v, want %v", s, out, back, a)
		}
	})
}
