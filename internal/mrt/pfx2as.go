package mrt

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/tass-scan/tass/internal/bgp"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/pfx2as"
)

// ExtractPfx2as walks a TABLE_DUMP_V2 stream and derives the prefix→
// origin-AS mapping, the same reduction CAIDA applies to Routeviews RIBs
// to produce the pfx2as datasets the paper uses. For each prefix, origins
// are collected across all peers; multiple distinct origins yield a MOAS
// record (origins sorted by descending peer support, then numerically).
// Unparseable entries are skipped and counted, not fatal: real RIB dumps
// always contain a few damaged paths.
func ExtractPfx2as(r io.Reader) (records []pfx2as.Record, skipped int, err error) {
	rd := NewReader(r)
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return records, skipped, err
		}
		if rec.Header.Type != TypeTableDumpV2 || rec.Header.Subtype != SubtypeRIBIPv4Unicast {
			continue // peer index tables, IPv6 RIBs, ...
		}
		rib, err := rec.AsRIB()
		if err != nil {
			skipped++
			continue
		}
		support := make(map[uint32]int)
		for _, e := range rib.Entries {
			attrs, err := bgp.ParseAttributes(e.Attrs, true)
			if err != nil {
				skipped++
				continue
			}
			if origin, ok := attrs.OriginAS(); ok {
				support[origin]++
			}
		}
		if len(support) == 0 {
			skipped++
			continue
		}
		origins := make([]uint32, 0, len(support))
		for asn := range support {
			origins = append(origins, asn)
		}
		sort.Slice(origins, func(i, j int) bool {
			if support[origins[i]] != support[origins[j]] {
				return support[origins[i]] > support[origins[j]]
			}
			return origins[i] < origins[j]
		})
		o := pfx2as.Origin{}
		for _, asn := range origins {
			o.Groups = append(o.Groups, []uint32{asn})
		}
		records = append(records, pfx2as.Record{Prefix: rib.Prefix, Origin: o})
	}
	sort.Slice(records, func(i, j int) bool {
		return records[i].Prefix.Compare(records[j].Prefix) < 0
	})
	return records, skipped, nil
}

// SynthesizeRIB writes a TABLE_DUMP_V2 stream announcing the given
// (prefix, origin) pairs: one PEER_INDEX_TABLE with the given peers and
// one RIB_IPV4_UNICAST record per prefix, with every peer carrying a
// plausible AS path ending at the prefix's origin. It is the test and
// demo generator standing in for a Routeviews archive download.
func SynthesizeRIB(w io.Writer, timestamp uint32, collectorID uint32,
	peers []Peer, routes []pfx2as.Record) error {

	if len(peers) == 0 {
		return fmt.Errorf("mrt: synthesize needs at least one peer")
	}
	mw := NewWriter(w)
	pit := &PeerIndexTable{CollectorBGPID: collectorID, ViewName: "synthetic"}
	pit.Peers = append(pit.Peers, peers...)
	if err := mw.WriteRecord(pit.Record(timestamp)); err != nil {
		return err
	}
	origin := uint8(bgp.OriginIGP)
	for seq, route := range routes {
		primary, ok := route.Origin.Primary()
		if !ok {
			return fmt.Errorf("mrt: route %v has no origin", route.Prefix)
		}
		rib := &RIB{SequenceNo: uint32(seq), Prefix: route.Prefix}
		for pi, peer := range peers {
			// Path: peer AS, a stable middle hop, then the origin(s).
			// MOAS routes alternate origins across peers.
			asn := primary
			if groups := route.Origin.Groups; len(groups) > 1 {
				g := groups[pi%len(groups)]
				if len(g) > 0 {
					asn = g[0]
				}
			}
			nh := netaddr.Addr(peer.Addr)
			attrs := &bgp.Attributes{
				Origin: &origin,
				ASPath: bgp.ASPath{{
					Type: bgp.SegmentASSequence,
					ASNs: []uint32{peer.AS, 64512 + uint32(pi), asn},
				}},
				NextHop: &nh,
			}
			rib.Entries = append(rib.Entries, RIBEntry{
				PeerIndex:      uint16(pi),
				OriginatedTime: timestamp,
				Attrs:          attrs.Serialize(true),
			})
		}
		if err := mw.WriteRecord(rib.Record(timestamp)); err != nil {
			return err
		}
	}
	return mw.Flush()
}
