package mrt

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/tass-scan/tass/internal/bgp"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/pfx2as"
)

func testPeers() []Peer {
	return []Peer{
		{BGPID: 0x01010101, Addr: netaddr.MustParseAddr("198.51.100.1"), AS: 64500, AS4: true},
		{BGPID: 0x02020202, Addr: netaddr.MustParseAddr("198.51.100.2"), AS: 64501, AS4: true},
		{BGPID: 0x03030303, Addr6: netaddr.MustParseAddr6("2001:db8::1"), IPv6: true, AS: 397212, AS4: true},
		{BGPID: 0x04040404, Addr: netaddr.MustParseAddr("198.51.100.4"), AS: 65010, AS4: false},
	}
}

func TestPeerIndexTableRoundTrip(t *testing.T) {
	in := &PeerIndexTable{CollectorBGPID: 0xC0C0C0C0, ViewName: "rv2", Peers: testPeers()}
	rec := in.Record(1234567890)
	if rec.Header.Type != TypeTableDumpV2 || rec.Header.Subtype != SubtypePeerIndexTable {
		t.Fatalf("header %+v", rec.Header)
	}
	out, err := rec.AsPeerIndexTable()
	if err != nil {
		t.Fatal(err)
	}
	if out.CollectorBGPID != in.CollectorBGPID || out.ViewName != "rv2" {
		t.Errorf("table header %+v", out)
	}
	if len(out.Peers) != len(in.Peers) {
		t.Fatalf("peers %d", len(out.Peers))
	}
	for i := range in.Peers {
		if out.Peers[i] != in.Peers[i] {
			t.Errorf("peer %d: %+v != %+v", i, out.Peers[i], in.Peers[i])
		}
	}
}

func TestRIBRoundTrip(t *testing.T) {
	origin := uint8(bgp.OriginIGP)
	nh := netaddr.MustParseAddr("198.51.100.1")
	attrs := (&bgp.Attributes{
		Origin:  &origin,
		ASPath:  bgp.ASPath{{Type: bgp.SegmentASSequence, ASNs: []uint32{64500, 13335}}},
		NextHop: &nh,
	}).Serialize(true)
	in := &RIB{
		SequenceNo: 42,
		Prefix:     netaddr.MustParsePrefix("100.64.0.0/10"),
		Entries: []RIBEntry{
			{PeerIndex: 0, OriginatedTime: 111, Attrs: attrs},
			{PeerIndex: 1, OriginatedTime: 222, Attrs: attrs},
		},
	}
	out, err := in.Record(99).AsRIB()
	if err != nil {
		t.Fatal(err)
	}
	if out.SequenceNo != 42 || out.Prefix != in.Prefix || len(out.Entries) != 2 {
		t.Fatalf("rib %+v", out)
	}
	if out.Entries[1].OriginatedTime != 222 || !bytes.Equal(out.Entries[1].Attrs, attrs) {
		t.Errorf("entry 1 %+v", out.Entries[1])
	}
	// The embedded attributes parse back to the same origin AS.
	parsed, err := bgp.ParseAttributes(out.Entries[0].Attrs, true)
	if err != nil {
		t.Fatal(err)
	}
	if asn, ok := parsed.OriginAS(); !ok || asn != 13335 {
		t.Errorf("origin %d, %v", asn, ok)
	}
}

func TestReaderWriterStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	pit := &PeerIndexTable{CollectorBGPID: 1, ViewName: "x", Peers: testPeers()[:1]}
	if err := w.WriteRecord(pit.Record(10)); err != nil {
		t.Fatal(err)
	}
	rib := &RIB{Prefix: netaddr.MustParsePrefix("10.0.0.0/8")}
	if err := w.WriteRecord(rib.Record(11)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	r1, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Header.Timestamp != 10 || r1.Header.Subtype != SubtypePeerIndexTable {
		t.Errorf("record 1 header %+v", r1.Header)
	}
	r2, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Header.Timestamp != 11 || r2.Header.Subtype != SubtypeRIBIPv4Unicast {
		t.Errorf("record 2 header %+v", r2.Header)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	pit := &PeerIndexTable{ViewName: "x"}
	rec := pit.Record(1)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(rec); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()
	for _, cut := range []int{3, 11, len(full) - 1} {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) && cut > 0 {
			// A cut inside the header or body must be an error, except a
			// clean cut at 0 bytes which is EOF.
			if cut != 0 {
				t.Errorf("cut=%d: got %v", cut, err)
			}
		}
	}
}

func TestWrongSubtypeDecodes(t *testing.T) {
	pit := (&PeerIndexTable{ViewName: "x"}).Record(1)
	if _, err := pit.AsRIB(); err == nil {
		t.Error("peer index decoded as RIB")
	}
	rib := (&RIB{Prefix: netaddr.MustParsePrefix("10.0.0.0/8")}).Record(1)
	if _, err := rib.AsPeerIndexTable(); err == nil {
		t.Error("RIB decoded as peer index")
	}
	if _, err := rib.AsBGP4MP(); err == nil {
		t.Error("RIB decoded as BGP4MP")
	}
}

func TestBGP4MPRoundTrip(t *testing.T) {
	origin := uint8(bgp.OriginIGP)
	update := &bgp.Update{
		Attributes: &bgp.Attributes{
			Origin: &origin,
			ASPath: bgp.ASPath{{Type: bgp.SegmentASSequence, ASNs: []uint32{64500, 13335}}},
		},
		NLRI: []netaddr.Prefix{netaddr.MustParsePrefix("203.0.113.0/24")},
	}
	for _, as4 := range []bool{true, false} {
		in := &BGP4MP{
			PeerAS: 64500, LocalAS: 64501, InterfaceIndex: 7,
			PeerIP:  netaddr.MustParseAddr("198.51.100.1"),
			LocalIP: netaddr.MustParseAddr("198.51.100.2"),
			AS4:     as4,
			Message: WrapUpdate(update, as4),
		}
		out, err := in.Record(77).AsBGP4MP()
		if err != nil {
			t.Fatalf("as4=%v: %v", as4, err)
		}
		if out.PeerAS != 64500 || out.LocalAS != 64501 || out.AS4 != as4 {
			t.Errorf("as4=%v header %+v", as4, out)
		}
		u, err := out.Update()
		if err != nil {
			t.Fatalf("as4=%v update: %v", as4, err)
		}
		if len(u.NLRI) != 1 || u.NLRI[0] != update.NLRI[0] {
			t.Errorf("as4=%v nlri %v", as4, u.NLRI)
		}
		if asn, ok := u.Attributes.OriginAS(); !ok || asn != 13335 {
			t.Errorf("as4=%v origin %d", as4, asn)
		}
	}
}

func TestBGP4MPUpdateErrors(t *testing.T) {
	m := &BGP4MP{Message: []byte{1, 2, 3}}
	if _, err := m.Update(); err == nil {
		t.Error("short message accepted")
	}
	msg := WrapUpdate(&bgp.Update{}, true)
	msg[18] = 1 // OPEN, not UPDATE
	m = &BGP4MP{Message: msg}
	if _, err := m.Update(); err == nil {
		t.Error("non-UPDATE accepted")
	}
}

func TestExtractPfx2as(t *testing.T) {
	routes := []pfx2as.Record{
		{Prefix: netaddr.MustParsePrefix("100.0.0.0/8"), Origin: pfx2as.SingleOrigin(3356)},
		{Prefix: netaddr.MustParsePrefix("100.16.0.0/12"), Origin: pfx2as.SingleOrigin(13335)},
		{Prefix: netaddr.MustParsePrefix("203.0.112.0/23"),
			Origin: pfx2as.Origin{Groups: [][]uint32{{64500}, {64501}}}}, // MOAS
	}
	var buf bytes.Buffer
	if err := SynthesizeRIB(&buf, 1000, 0xAA, testPeers()[:2], routes); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := ExtractPfx2as(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped %d", skipped)
	}
	if len(recs) != 3 {
		t.Fatalf("extracted %d records", len(recs))
	}
	if asn, _ := recs[0].Origin.Primary(); recs[0].Prefix != routes[0].Prefix || asn != 3356 {
		t.Errorf("rec 0: %v %v", recs[0].Prefix, recs[0].Origin)
	}
	if asn, _ := recs[1].Origin.Primary(); asn != 13335 {
		t.Errorf("rec 1 origin %v", recs[1].Origin)
	}
	if !recs[2].Origin.MOAS() {
		t.Errorf("rec 2 should be MOAS, got %v", recs[2].Origin)
	}
}

func TestExtractPfx2asSkipsGarbage(t *testing.T) {
	// A RIB whose attributes do not parse must be skipped, not fatal.
	rib := &RIB{
		Prefix:  netaddr.MustParsePrefix("10.0.0.0/8"),
		Entries: []RIBEntry{{PeerIndex: 0, Attrs: []byte{0xFF}}},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(rib.Record(1)); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	recs, skipped, err := ExtractPfx2as(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || skipped == 0 {
		t.Errorf("recs=%d skipped=%d", len(recs), skipped)
	}
}

func TestSynthesizeRIBNeedsPeers(t *testing.T) {
	var buf bytes.Buffer
	err := SynthesizeRIB(&buf, 1, 1, nil, nil)
	if err == nil {
		t.Error("no peers accepted")
	}
}

func BenchmarkExtractPfx2as(b *testing.B) {
	var routes []pfx2as.Record
	for i := 0; i < 1000; i++ {
		routes = append(routes, pfx2as.Record{
			Prefix: netaddr.MustPrefixFrom(netaddr.Addr(uint32(i)<<16), 16),
			Origin: pfx2as.SingleOrigin(uint32(1000 + i)),
		})
	}
	var buf bytes.Buffer
	if err := SynthesizeRIB(&buf, 1, 1, testPeers()[:2], routes); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ExtractPfx2as(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
