// Package mrt reads and writes MRT routing-information records (RFC 6396)
// — the archive format of Routeviews and RIPE RIS collectors, and the raw
// input behind the CAIDA pfx2as tables the TASS paper consumes.
//
// Supported record types:
//
//   - TABLE_DUMP_V2 / PEER_INDEX_TABLE and RIB_IPV4_UNICAST, enough to
//     walk a full RIB snapshot and derive prefix→origin-AS mappings,
//   - BGP4MP / BGP4MP_MESSAGE and BGP4MP_MESSAGE_AS4 (UPDATE streams).
//
// Reading and writing are symmetric and round-trip tested, so synthetic
// RIBs can be generated, archived and re-consumed without external data.
package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/tass-scan/tass/internal/bgp"
	"github.com/tass-scan/tass/internal/netaddr"
)

// MRT record types (RFC 6396 §4).
const (
	TypeTableDumpV2 = 13
	TypeBGP4MP      = 16
)

// TABLE_DUMP_V2 subtypes (RFC 6396 §4.3).
const (
	SubtypePeerIndexTable = 1
	SubtypeRIBIPv4Unicast = 2
)

// BGP4MP subtypes (RFC 6396 §4.4).
const (
	SubtypeBGP4MPMessage    = 1
	SubtypeBGP4MPMessageAS4 = 4
)

// ErrFormat reports malformed MRT data.
var ErrFormat = errors.New("mrt: malformed record")

// Header is the fixed 12-byte MRT record header.
type Header struct {
	Timestamp uint32
	Type      uint16
	Subtype   uint16
	Length    uint32 // body length in bytes
}

// Record is one raw MRT record: header plus undecoded body. Decode into
// typed records with AsPeerIndexTable, AsRIB or AsBGP4MP.
type Record struct {
	Header Header
	Body   []byte
}

// Peer is one collector peer from a PEER_INDEX_TABLE.
type Peer struct {
	BGPID uint32
	// Addr is the peer's IPv4 address (IPv6 peers are preserved raw in
	// Addr6 and flagged).
	Addr  netaddr.Addr
	Addr6 netaddr.Addr6
	IPv6  bool
	AS    uint32
	// AS4 records whether the AS was encoded in 4 bytes.
	AS4 bool
}

// PeerIndexTable is the TABLE_DUMP_V2 peer directory; RIB entries refer
// to peers by index into it.
type PeerIndexTable struct {
	CollectorBGPID uint32
	ViewName       string
	Peers          []Peer
}

// RIBEntry is one peer's path for a RIB prefix.
type RIBEntry struct {
	PeerIndex      uint16
	OriginatedTime uint32
	// Attrs is the raw BGP path-attribute block (4-byte AS encoding per
	// RFC 6396 §4.3.4). Decode with bgp.ParseAttributes(attrs, true).
	Attrs []byte
}

// RIB is a TABLE_DUMP_V2 RIB_IPV4_UNICAST record: one prefix with every
// peer's path.
type RIB struct {
	SequenceNo uint32
	Prefix     netaddr.Prefix
	Entries    []RIBEntry
}

// BGP4MP is a BGP4MP_MESSAGE(_AS4) record: one BGP message observed on a
// collector session.
type BGP4MP struct {
	PeerAS, LocalAS uint32
	InterfaceIndex  uint16
	PeerIP, LocalIP netaddr.Addr
	// AS4 reports the BGP4MP_MESSAGE_AS4 subtype (4-byte AS header).
	AS4 bool
	// Message is the raw BGP message including its 19-byte header.
	Message []byte
}

// Reader decodes MRT records from a stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader returns a Reader consuming r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next raw record, or io.EOF at end of stream.
func (r *Reader) Next() (*Record, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("mrt: reading header: %w", err)
	}
	rec := &Record{Header: Header{
		Timestamp: binary.BigEndian.Uint32(hdr[0:4]),
		Type:      binary.BigEndian.Uint16(hdr[4:6]),
		Subtype:   binary.BigEndian.Uint16(hdr[6:8]),
		Length:    binary.BigEndian.Uint32(hdr[8:12]),
	}}
	if rec.Header.Length > 1<<24 {
		return nil, fmt.Errorf("%w: body length %d", ErrFormat, rec.Header.Length)
	}
	rec.Body = make([]byte, rec.Header.Length)
	if _, err := io.ReadFull(r.br, rec.Body); err != nil {
		return nil, fmt.Errorf("mrt: reading %d-byte body: %w", rec.Header.Length, err)
	}
	return rec, nil
}

// Writer encodes MRT records to a stream.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter returns a Writer emitting to w. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// WriteRecord emits one record, fixing up the header length.
func (w *Writer) WriteRecord(rec *Record) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], rec.Header.Timestamp)
	binary.BigEndian.PutUint16(hdr[4:6], rec.Header.Type)
	binary.BigEndian.PutUint16(hdr[6:8], rec.Header.Subtype)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(rec.Body)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("mrt: %w", err)
	}
	if _, err := w.bw.Write(rec.Body); err != nil {
		return fmt.Errorf("mrt: %w", err)
	}
	return nil
}

// Flush drains buffered output.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("mrt: %w", err)
	}
	return nil
}

// AsPeerIndexTable decodes a TABLE_DUMP_V2/PEER_INDEX_TABLE record.
func (rec *Record) AsPeerIndexTable() (*PeerIndexTable, error) {
	if rec.Header.Type != TypeTableDumpV2 || rec.Header.Subtype != SubtypePeerIndexTable {
		return nil, fmt.Errorf("%w: not a PEER_INDEX_TABLE (%d/%d)",
			ErrFormat, rec.Header.Type, rec.Header.Subtype)
	}
	b := rec.Body
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: peer index header", ErrFormat)
	}
	t := &PeerIndexTable{CollectorBGPID: binary.BigEndian.Uint32(b[0:4])}
	nameLen := int(binary.BigEndian.Uint16(b[4:6]))
	b = b[6:]
	if len(b) < nameLen+2 {
		return nil, fmt.Errorf("%w: view name", ErrFormat)
	}
	t.ViewName = string(b[:nameLen])
	b = b[nameLen:]
	peerCount := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	for i := 0; i < peerCount; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("%w: peer %d type", ErrFormat, i)
		}
		ptype := b[0]
		b = b[1:]
		p := Peer{IPv6: ptype&0x01 != 0, AS4: ptype&0x02 != 0}
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: peer %d BGP ID", ErrFormat, i)
		}
		p.BGPID = binary.BigEndian.Uint32(b)
		b = b[4:]
		if p.IPv6 {
			if len(b) < 16 {
				return nil, fmt.Errorf("%w: peer %d IPv6", ErrFormat, i)
			}
			p.Addr6 = netaddr.Addr6{
				Hi: binary.BigEndian.Uint64(b[0:8]),
				Lo: binary.BigEndian.Uint64(b[8:16]),
			}
			b = b[16:]
		} else {
			if len(b) < 4 {
				return nil, fmt.Errorf("%w: peer %d IPv4", ErrFormat, i)
			}
			p.Addr = netaddr.Addr(binary.BigEndian.Uint32(b))
			b = b[4:]
		}
		if p.AS4 {
			if len(b) < 4 {
				return nil, fmt.Errorf("%w: peer %d AS4", ErrFormat, i)
			}
			p.AS = binary.BigEndian.Uint32(b)
			b = b[4:]
		} else {
			if len(b) < 2 {
				return nil, fmt.Errorf("%w: peer %d AS2", ErrFormat, i)
			}
			p.AS = uint32(binary.BigEndian.Uint16(b))
			b = b[2:]
		}
		t.Peers = append(t.Peers, p)
	}
	return t, nil
}

// Record encodes the table as an MRT record.
func (t *PeerIndexTable) Record(timestamp uint32) *Record {
	body := binary.BigEndian.AppendUint32(nil, t.CollectorBGPID)
	body = binary.BigEndian.AppendUint16(body, uint16(len(t.ViewName)))
	body = append(body, t.ViewName...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(t.Peers)))
	for _, p := range t.Peers {
		var ptype byte
		if p.IPv6 {
			ptype |= 0x01
		}
		if p.AS4 {
			ptype |= 0x02
		}
		body = append(body, ptype)
		body = binary.BigEndian.AppendUint32(body, p.BGPID)
		if p.IPv6 {
			body = binary.BigEndian.AppendUint64(body, p.Addr6.Hi)
			body = binary.BigEndian.AppendUint64(body, p.Addr6.Lo)
		} else {
			body = binary.BigEndian.AppendUint32(body, uint32(p.Addr))
		}
		if p.AS4 {
			body = binary.BigEndian.AppendUint32(body, p.AS)
		} else {
			body = binary.BigEndian.AppendUint16(body, uint16(p.AS))
		}
	}
	return &Record{
		Header: Header{Timestamp: timestamp, Type: TypeTableDumpV2, Subtype: SubtypePeerIndexTable},
		Body:   body,
	}
}

// AsRIB decodes a TABLE_DUMP_V2/RIB_IPV4_UNICAST record.
func (rec *Record) AsRIB() (*RIB, error) {
	if rec.Header.Type != TypeTableDumpV2 || rec.Header.Subtype != SubtypeRIBIPv4Unicast {
		return nil, fmt.Errorf("%w: not a RIB_IPV4_UNICAST (%d/%d)",
			ErrFormat, rec.Header.Type, rec.Header.Subtype)
	}
	b := rec.Body
	if len(b) < 5 {
		return nil, fmt.Errorf("%w: RIB header", ErrFormat)
	}
	rib := &RIB{SequenceNo: binary.BigEndian.Uint32(b[0:4])}
	bits := int(b[4])
	if bits > 32 {
		return nil, fmt.Errorf("%w: prefix length %d", ErrFormat, bits)
	}
	b = b[5:]
	nbytes := (bits + 7) / 8
	if len(b) < nbytes+2 {
		return nil, fmt.Errorf("%w: prefix bytes", ErrFormat)
	}
	var v uint32
	for i := 0; i < nbytes; i++ {
		v |= uint32(b[i]) << (24 - 8*uint(i))
	}
	p, err := netaddr.PrefixFrom(netaddr.Addr(v), bits)
	if err != nil || p.Addr() != netaddr.Addr(v) {
		return nil, fmt.Errorf("%w: non-canonical prefix", ErrFormat)
	}
	rib.Prefix = p
	b = b[nbytes:]
	entryCount := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	for i := 0; i < entryCount; i++ {
		if len(b) < 8 {
			return nil, fmt.Errorf("%w: RIB entry %d header", ErrFormat, i)
		}
		e := RIBEntry{
			PeerIndex:      binary.BigEndian.Uint16(b[0:2]),
			OriginatedTime: binary.BigEndian.Uint32(b[2:6]),
		}
		alen := int(binary.BigEndian.Uint16(b[6:8]))
		b = b[8:]
		if len(b) < alen {
			return nil, fmt.Errorf("%w: RIB entry %d attributes", ErrFormat, i)
		}
		e.Attrs = append([]byte(nil), b[:alen]...)
		b = b[alen:]
		rib.Entries = append(rib.Entries, e)
	}
	return rib, nil
}

// Record encodes the RIB entry as an MRT record.
func (rib *RIB) Record(timestamp uint32) *Record {
	body := binary.BigEndian.AppendUint32(nil, rib.SequenceNo)
	bits := rib.Prefix.Bits()
	body = append(body, byte(bits))
	v := uint32(rib.Prefix.Addr())
	for i := 0; i < (bits+7)/8; i++ {
		body = append(body, byte(v>>(24-8*uint(i))))
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(rib.Entries)))
	for _, e := range rib.Entries {
		body = binary.BigEndian.AppendUint16(body, e.PeerIndex)
		body = binary.BigEndian.AppendUint32(body, e.OriginatedTime)
		body = binary.BigEndian.AppendUint16(body, uint16(len(e.Attrs)))
		body = append(body, e.Attrs...)
	}
	return &Record{
		Header: Header{Timestamp: timestamp, Type: TypeTableDumpV2, Subtype: SubtypeRIBIPv4Unicast},
		Body:   body,
	}
}

// AsBGP4MP decodes a BGP4MP_MESSAGE or BGP4MP_MESSAGE_AS4 record.
func (rec *Record) AsBGP4MP() (*BGP4MP, error) {
	if rec.Header.Type != TypeBGP4MP ||
		(rec.Header.Subtype != SubtypeBGP4MPMessage && rec.Header.Subtype != SubtypeBGP4MPMessageAS4) {
		return nil, fmt.Errorf("%w: not a BGP4MP message (%d/%d)",
			ErrFormat, rec.Header.Type, rec.Header.Subtype)
	}
	m := &BGP4MP{AS4: rec.Header.Subtype == SubtypeBGP4MPMessageAS4}
	b := rec.Body
	asLen := 2
	if m.AS4 {
		asLen = 4
	}
	if len(b) < 2*asLen+4 {
		return nil, fmt.Errorf("%w: BGP4MP header", ErrFormat)
	}
	if m.AS4 {
		m.PeerAS = binary.BigEndian.Uint32(b[0:4])
		m.LocalAS = binary.BigEndian.Uint32(b[4:8])
	} else {
		m.PeerAS = uint32(binary.BigEndian.Uint16(b[0:2]))
		m.LocalAS = uint32(binary.BigEndian.Uint16(b[2:4]))
	}
	b = b[2*asLen:]
	m.InterfaceIndex = binary.BigEndian.Uint16(b[0:2])
	afi := binary.BigEndian.Uint16(b[2:4])
	b = b[4:]
	if afi != 1 {
		return nil, fmt.Errorf("%w: unsupported AFI %d", ErrFormat, afi)
	}
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: BGP4MP addresses", ErrFormat)
	}
	m.PeerIP = netaddr.Addr(binary.BigEndian.Uint32(b[0:4]))
	m.LocalIP = netaddr.Addr(binary.BigEndian.Uint32(b[4:8]))
	m.Message = append([]byte(nil), b[8:]...)
	return m, nil
}

// Record encodes the message as an MRT record.
func (m *BGP4MP) Record(timestamp uint32) *Record {
	var body []byte
	subtype := uint16(SubtypeBGP4MPMessage)
	if m.AS4 {
		subtype = SubtypeBGP4MPMessageAS4
		body = binary.BigEndian.AppendUint32(body, m.PeerAS)
		body = binary.BigEndian.AppendUint32(body, m.LocalAS)
	} else {
		body = binary.BigEndian.AppendUint16(body, uint16(m.PeerAS))
		body = binary.BigEndian.AppendUint16(body, uint16(m.LocalAS))
	}
	body = binary.BigEndian.AppendUint16(body, m.InterfaceIndex)
	body = binary.BigEndian.AppendUint16(body, 1) // AFI IPv4
	body = binary.BigEndian.AppendUint32(body, uint32(m.PeerIP))
	body = binary.BigEndian.AppendUint32(body, uint32(m.LocalIP))
	body = append(body, m.Message...)
	return &Record{
		Header: Header{Timestamp: timestamp, Type: TypeBGP4MP, Subtype: subtype},
		Body:   body,
	}
}

// Update extracts the BGP UPDATE body from the wrapped message (skipping
// the 19-byte BGP header) and parses it.
func (m *BGP4MP) Update() (*bgp.Update, error) {
	if len(m.Message) < 19 {
		return nil, fmt.Errorf("%w: BGP message header", ErrFormat)
	}
	msgType := m.Message[18]
	if msgType != 2 {
		return nil, fmt.Errorf("%w: BGP message type %d is not UPDATE", ErrFormat, msgType)
	}
	msgLen := int(binary.BigEndian.Uint16(m.Message[16:18]))
	if msgLen != len(m.Message) {
		return nil, fmt.Errorf("%w: BGP message length %d, record carries %d",
			ErrFormat, msgLen, len(m.Message))
	}
	return bgp.ParseUpdate(m.Message[19:], m.AS4)
}

// WrapUpdate builds the wire form of a BGP UPDATE message (19-byte header
// plus body) for embedding in a BGP4MP record.
func WrapUpdate(u *bgp.Update, as4 bool) []byte {
	body := u.Serialize(as4)
	msg := make([]byte, 19, 19+len(body))
	for i := 0; i < 16; i++ {
		msg[i] = 0xFF
	}
	binary.BigEndian.PutUint16(msg[16:18], uint16(19+len(body)))
	msg[18] = 2 // UPDATE
	return append(msg, body...)
}
