package strategy

import (
	"fmt"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/rib"
)

// Campaign is the paper's full periodic-scanning loop (§3.1 step 5): run
// the TASS selection until t0+Δt, then reseed with a fresh full scan and
// start over. It quantifies the choice of Δt the paper leaves open
// ("an adjustable time period Δt").
type Campaign struct {
	// Universe is the prefix partition selections are drawn from.
	Universe rib.Partition
	// Opts carries φ and the optional cuts.
	Opts core.Options
	// ReseedEvery is Δt in months: a full scan is taken (and the
	// selection rebuilt) every ReseedEvery months. 0 means never reseed
	// after the initial full scan.
	ReseedEvery int
	// Workers bounds the counting-walk goroutines per reseed (0 means
	// a single worker, matching plain core.Select); results are
	// identical at any count.
	Workers int
	// Cache, when non-nil, memoizes per-(snapshot, universe) counts
	// across reseeds and across campaigns sharing the series.
	Cache *census.CountCache
	// Incremental reseeds through a core.Ranker advanced by per-month
	// deltas instead of re-counting and re-sorting every reseed from
	// zero: steady-state work proportional to the churn. Selections are
	// byte-identical to the full recompute (golden tested).
	Incremental bool
	// Deltas optionally supplies the native per-month deltas of the
	// series (Deltas[m] carries month m -> m+1, as produced by
	// churn.RunSimDeltas); without them the incremental path derives
	// each month's delta with a Snapshot.Diff merge walk.
	Deltas []*census.Delta
}

// CampaignEval is the outcome of simulating a campaign against a
// ground-truth series.
type CampaignEval struct {
	// Hitrate[m] is the fraction of month-m hosts found: 1.0 in reseed
	// months (those run a full scan), the selection's hitrate otherwise.
	Hitrate []float64
	// CostShare[m] is the month's probe cost relative to a full scan.
	CostShare []float64
	// MeanHitrate and MeanCostShare average over all months.
	MeanHitrate, MeanCostShare float64
	// Reseeds counts full scans taken (including month 0).
	Reseeds int
}

// EvaluateCampaign simulates the campaign over the series. Month 0 is
// always a full scan (the initial seed).
func EvaluateCampaign(c Campaign, series *census.Series, fullSpace uint64) (CampaignEval, error) {
	if series.Months() == 0 {
		return CampaignEval{}, fmt.Errorf("strategy: empty series")
	}
	if fullSpace == 0 {
		return CampaignEval{}, fmt.Errorf("strategy: campaign needs the full-scan cost")
	}
	workers := c.Workers
	if workers <= 0 {
		workers = 1
	}
	var (
		ev     CampaignEval
		sel    *core.Selection
		ranker *core.Ranker
	)
	if c.Incremental && c.ReseedEvery > 0 {
		// Seed the ranker once on month 0; every later month applies
		// that month's delta, so any reseed is a top-K selection off the
		// repaired ranking. A never-reseeding campaign selects only at
		// month 0 and would pay the monthly repairs for nothing, and a
		// universe too large for the packed ranking cannot use it —
		// both fall back to the full recompute.
		r, err := core.NewRanker(series.At(0), c.Universe, workers, c.Cache)
		if err == nil {
			ranker = r
		}
	}
	for m := 0; m < series.Months(); m++ {
		if ranker != nil && m > 0 {
			d := c.delta(series, m)
			if err := ranker.Apply(d); err != nil {
				return CampaignEval{}, fmt.Errorf("strategy: delta at month %d: %w", m, err)
			}
		}
		reseed := m == 0 || (c.ReseedEvery > 0 && m%c.ReseedEvery == 0)
		if reseed {
			var err error
			if ranker != nil {
				sel, err = ranker.Select(c.Opts)
			} else {
				sel, err = core.SelectCached(series.At(m), c.Universe, c.Opts, workers, c.Cache)
			}
			if err != nil {
				return CampaignEval{}, fmt.Errorf("strategy: reseed at month %d: %w", m, err)
			}
			ev.Reseeds++
			// The reseed month itself runs the full scan that seeds the
			// selection: perfect coverage, full cost.
			ev.Hitrate = append(ev.Hitrate, 1.0)
			ev.CostShare = append(ev.CostShare, 1.0)
			continue
		}
		ev.Hitrate = append(ev.Hitrate, sel.Hitrate(series.At(m)))
		ev.CostShare = append(ev.CostShare, float64(sel.Space)/float64(fullSpace))
	}
	for m := range ev.Hitrate {
		ev.MeanHitrate += ev.Hitrate[m]
		ev.MeanCostShare += ev.CostShare[m]
	}
	n := float64(len(ev.Hitrate))
	ev.MeanHitrate /= n
	ev.MeanCostShare /= n
	return ev, nil
}

// delta returns the churn from month m-1 to m: the supplied native
// delta when the campaign has one, a merge-walk Diff otherwise.
func (c Campaign) delta(series *census.Series, m int) *census.Delta {
	if m-1 < len(c.Deltas) && c.Deltas[m-1] != nil {
		return c.Deltas[m-1]
	}
	return series.At(m - 1).Diff(series.At(m))
}
