package strategy

import (
	"fmt"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/rib"
)

// Campaign is the paper's full periodic-scanning loop (§3.1 step 5): run
// the TASS selection until t0+Δt, then reseed with a fresh full scan and
// start over. It quantifies the choice of Δt the paper leaves open
// ("an adjustable time period Δt").
type Campaign struct {
	// Universe is the prefix partition selections are drawn from.
	Universe rib.Partition
	// Opts carries φ and the optional cuts.
	Opts core.Options
	// ReseedEvery is Δt in months: a full scan is taken (and the
	// selection rebuilt) every ReseedEvery months. 0 means never reseed
	// after the initial full scan.
	ReseedEvery int
	// Workers bounds the counting-walk goroutines per reseed (0 means
	// a single worker, matching plain core.Select); results are
	// identical at any count.
	Workers int
	// Cache, when non-nil, memoizes per-(snapshot, universe) counts
	// across reseeds and across campaigns sharing the series.
	Cache *census.CountCache
}

// CampaignEval is the outcome of simulating a campaign against a
// ground-truth series.
type CampaignEval struct {
	// Hitrate[m] is the fraction of month-m hosts found: 1.0 in reseed
	// months (those run a full scan), the selection's hitrate otherwise.
	Hitrate []float64
	// CostShare[m] is the month's probe cost relative to a full scan.
	CostShare []float64
	// MeanHitrate and MeanCostShare average over all months.
	MeanHitrate, MeanCostShare float64
	// Reseeds counts full scans taken (including month 0).
	Reseeds int
}

// EvaluateCampaign simulates the campaign over the series. Month 0 is
// always a full scan (the initial seed).
func EvaluateCampaign(c Campaign, series *census.Series, fullSpace uint64) (CampaignEval, error) {
	if series.Months() == 0 {
		return CampaignEval{}, fmt.Errorf("strategy: empty series")
	}
	if fullSpace == 0 {
		return CampaignEval{}, fmt.Errorf("strategy: campaign needs the full-scan cost")
	}
	var (
		ev  CampaignEval
		sel *core.Selection
	)
	for m := 0; m < series.Months(); m++ {
		reseed := m == 0 || (c.ReseedEvery > 0 && m%c.ReseedEvery == 0)
		if reseed {
			workers := c.Workers
			if workers <= 0 {
				workers = 1
			}
			var err error
			sel, err = core.SelectCached(series.At(m), c.Universe, c.Opts, workers, c.Cache)
			if err != nil {
				return CampaignEval{}, fmt.Errorf("strategy: reseed at month %d: %w", m, err)
			}
			ev.Reseeds++
			// The reseed month itself runs the full scan that seeds the
			// selection: perfect coverage, full cost.
			ev.Hitrate = append(ev.Hitrate, 1.0)
			ev.CostShare = append(ev.CostShare, 1.0)
			continue
		}
		ev.Hitrate = append(ev.Hitrate, sel.Hitrate(series.At(m)))
		ev.CostShare = append(ev.CostShare, float64(sel.Space)/float64(fullSpace))
	}
	for m := range ev.Hitrate {
		ev.MeanHitrate += ev.Hitrate[m]
		ev.MeanCostShare += ev.CostShare[m]
	}
	n := float64(len(ev.Hitrate))
	ev.MeanHitrate /= n
	ev.MeanCostShare /= n
	return ev, nil
}
