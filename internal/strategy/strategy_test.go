package strategy

import (
	"strings"
	"testing"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/churn"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
	"github.com/tass-scan/tass/internal/topo"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

func smallWorld(t testing.TB, seed int64) (*topo.Universe, map[string]*census.Series) {
	t.Helper()
	cfg := topo.SmallConfig(seed)
	cfg.Allocated = []netaddr.Prefix{pfx("20.0.0.0/8")}
	cfg.Protocols = topo.DefaultProfiles(0.004)
	u, err := topo.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u, churn.Run(u, seed+1, 6)
}

func TestFullScanIsPerfect(t *testing.T) {
	u, series := smallWorld(t, 31)
	ev, err := Evaluate(Full{Universe: u.Less}, series["ftp"], u.Less.AddressCount())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Cost != u.Less.AddressCount() || ev.CostShare != 1 {
		t.Errorf("full scan cost %d share %v", ev.Cost, ev.CostShare)
	}
	for m, h := range ev.Hitrate {
		if h != 1 {
			t.Errorf("month %d: full-scan hitrate %v, want 1 (all hosts live in announced space)", m, h)
		}
	}
}

func TestHitlistDecaysTASSHolds(t *testing.T) {
	u, series := smallWorld(t, 32)
	s := series["http"]

	hl, err := Evaluate(Hitlist{}, s, u.Less.AddressCount())
	if err != nil {
		t.Fatal(err)
	}
	tassL, err := Evaluate(TASS{Universe: u.Less, Opts: core.Options{Phi: 1}}, s, u.Less.AddressCount())
	if err != nil {
		t.Fatal(err)
	}

	if hl.Hitrate[0] != 1 {
		t.Errorf("hitlist month 0 hitrate %v, want 1", hl.Hitrate[0])
	}
	if tassL.Hitrate[0] != 1 {
		t.Errorf("tass φ=1 month 0 hitrate %v, want 1", tassL.Hitrate[0])
	}
	// The paper's core contrast: after 6 months the hitlist has lost a
	// large fraction, TASS only a few percent.
	if hl.Hitrate[6] > 0.90 {
		t.Errorf("hitlist at month 6 = %v, expected clear decay", hl.Hitrate[6])
	}
	if tassL.Hitrate[6] < 0.93 {
		t.Errorf("tass-l at month 6 = %v, expected > 0.93", tassL.Hitrate[6])
	}
	if tassL.Hitrate[6] <= hl.Hitrate[6] {
		t.Errorf("tass (%v) must beat hitlist (%v) at month 6", tassL.Hitrate[6], hl.Hitrate[6])
	}
	// And the hitlist is far cheaper but that's its only virtue.
	if hl.Cost >= tassL.Cost {
		t.Errorf("hitlist cost %d should be below tass cost %d", hl.Cost, tassL.Cost)
	}
}

func TestTASSCoverageCostTradeoff(t *testing.T) {
	u, series := smallWorld(t, 33)
	s := series["ftp"]
	full := u.Less.AddressCount()

	phi1, err := Evaluate(TASS{Universe: u.Less, Opts: core.Options{Phi: 1}}, s, full)
	if err != nil {
		t.Fatal(err)
	}
	phi95, err := Evaluate(TASS{Universe: u.Less, Opts: core.Options{Phi: 0.95}}, s, full)
	if err != nil {
		t.Fatal(err)
	}
	if phi95.Cost >= phi1.Cost {
		t.Errorf("φ=0.95 cost %d must be below φ=1 cost %d", phi95.Cost, phi1.Cost)
	}
	if phi1.CostShare >= 1 {
		t.Errorf("TASS φ=1 must still be cheaper than a full scan (share %v)", phi1.CostShare)
	}
	if phi95.Hitrate[0] < 0.95 {
		t.Errorf("φ=0.95 must cover ≥95%% at seed month, got %v", phi95.Hitrate[0])
	}
}

func TestTASSMoreSpecificCheaperButDecaysFaster(t *testing.T) {
	u, series := smallWorld(t, 34)
	s := series["http"]
	full := u.Less.AddressCount()

	l, err := Evaluate(TASS{Universe: u.Less, Opts: core.Options{Phi: 1}, Label: "tass-l"}, s, full)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(TASS{Universe: u.More, Opts: core.Options{Phi: 1}, Label: "tass-m"}, s, full)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cost >= l.Cost {
		t.Errorf("m-prefix cost %d must be below l-prefix cost %d (paper §3.4)", m.Cost, l.Cost)
	}
	if m.Hitrate[6] > l.Hitrate[6]+1e-9 {
		t.Errorf("m-prefix hitrate %v should not beat l-prefix %v at month 6 (paper §4.2)",
			m.Hitrate[6], l.Hitrate[6])
	}
}

func TestRandomSample(t *testing.T) {
	u, series := smallWorld(t, 35)
	s := series["ftp"]
	r := RandomSample{Universe: u.Less, Blocks: 200, Seed: 5}
	ev, err := Evaluate(r, s, u.Less.AddressCount())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Cost == 0 || ev.Cost > 200*256 {
		t.Errorf("sample cost %d", ev.Cost)
	}
	// A 200-block sample of a /8 universe sees only a sliver of hosts.
	if ev.Hitrate[0] <= 0 || ev.Hitrate[0] >= 0.9 {
		t.Errorf("sample hitrate %v implausible", ev.Hitrate[0])
	}
	if _, err := (RandomSample{Universe: u.Less}).Plan(s.At(0)); err == nil {
		t.Error("zero blocks must fail")
	}
}

func TestRandomSampleDeterministic(t *testing.T) {
	u, series := smallWorld(t, 36)
	s := series["ftp"]
	r := RandomSample{Universe: u.Less, Blocks: 100, Seed: 9}
	p1, err := r.Plan(s.At(0))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Plan(s.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Cost() != p2.Cost() || p1.Found(s.At(3)) != p2.Found(s.At(3)) {
		t.Error("same seed produced different sample plans")
	}
}

func TestHitlistEmptySeed(t *testing.T) {
	if _, err := (Hitlist{}).Plan(census.NewSnapshot("x", 0, nil)); err == nil {
		t.Error("empty hitlist seed must fail")
	}
}

func TestEvaluateEmptySeries(t *testing.T) {
	if _, err := Evaluate(Hitlist{}, &census.Series{Protocol: "x"}, 1); err == nil {
		t.Error("empty series must fail")
	}
}

func TestNames(t *testing.T) {
	if (Full{}).Name() != "full" || (Hitlist{}).Name() != "hitlist" {
		t.Error("names")
	}
	if got := (TASS{Opts: core.Options{Phi: 0.95}}).Name(); !strings.Contains(got, "0.95") {
		t.Errorf("TASS name %q", got)
	}
	if got := (TASS{Label: "custom"}).Name(); got != "custom" {
		t.Errorf("TASS label %q", got)
	}
	if (RandomSample{}).Name() != "sample24" {
		t.Error("sample name")
	}
}

func TestPartitionPlanAgainstHandData(t *testing.T) {
	part, err := rib.NewPartition([]netaddr.Prefix{pfx("10.0.0.0/24"), pfx("20.0.0.0/24")})
	if err != nil {
		t.Fatal(err)
	}
	plan := partitionPlan{part: part}
	if plan.Cost() != 512 {
		t.Errorf("Cost = %d", plan.Cost())
	}
	snap := census.NewSnapshot("x", 0, []netaddr.Addr{
		netaddr.MustParseAddr("10.0.0.5"),
		netaddr.MustParseAddr("20.0.0.9"),
		netaddr.MustParseAddr("30.0.0.1"),
	})
	if got := plan.Found(snap); got != 2 {
		t.Errorf("Found = %d", got)
	}
	if h := Hitrate(plan, snap); h < 0.66 || h > 0.67 {
		t.Errorf("Hitrate = %v", h)
	}
	if Hitrate(plan, census.NewSnapshot("x", 0, nil)) != 0 {
		t.Error("Hitrate on empty snapshot")
	}
}
