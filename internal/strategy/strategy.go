// Package strategy places the paper's scanning strategies behind one
// interface so the evaluation harness can compare them head to head:
//
//   - Full: re-scan the whole announced space every cycle (the baseline
//     every other strategy's accuracy is measured against),
//   - Hitlist: re-scan exactly the addresses responsive at seed time
//     (Fan & Heidemann-style address hitlists, Figure 5),
//   - RandomSample: Heidemann-style /24-block sample (50 % random, 25 %
//     previously-responsive, 25 % densest blocks, §2 "IP hitlists and
//     samples"),
//   - TASS: the paper's density-ranked prefix selection (Figure 6).
//
// A Strategy consumes the seed scan and produces a Plan; a Plan knows its
// per-cycle probe cost and, given a later ground-truth snapshot, how many
// of that month's hosts it would have found.
package strategy

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// Plan is a concrete periodic scan: a target set with a fixed cost.
type Plan interface {
	// Cost is the number of probes one scan cycle sends.
	Cost() uint64
	// Found returns how many of snap's hosts one cycle would find.
	Found(snap *census.Snapshot) int
}

// Strategy builds a Plan from the seed (month-0) full scan.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Plan consumes the seed snapshot.
	Plan(seed *census.Snapshot) (Plan, error)
}

// Hitrate is the accuracy metric of the paper: found / available.
func Hitrate(p Plan, snap *census.Snapshot) float64 {
	if snap.Hosts() == 0 {
		return 0
	}
	return float64(p.Found(snap)) / float64(snap.Hosts())
}

// ---- Full scan ----

// Full scans the entire announced space every cycle.
type Full struct {
	// Universe is the announced space (any disjoint partition of it).
	Universe rib.Partition
}

// Name implements Strategy.
func (Full) Name() string { return "full" }

// Plan implements Strategy.
func (f Full) Plan(*census.Snapshot) (Plan, error) {
	return partitionPlan{part: f.Universe}, nil
}

type partitionPlan struct{ part rib.Partition }

func (p partitionPlan) Cost() uint64 { return p.part.AddressCount() }

func (p partitionPlan) Found(snap *census.Snapshot) int { return snap.CountIn(p.part) }

// ---- Address hitlist ----

// Hitlist re-scans exactly the addresses that responded at seed time.
type Hitlist struct{}

// Name implements Strategy.
func (Hitlist) Name() string { return "hitlist" }

// Plan implements Strategy.
func (Hitlist) Plan(seed *census.Snapshot) (Plan, error) {
	if seed.Hosts() == 0 {
		return nil, fmt.Errorf("strategy: hitlist seed is empty")
	}
	return hitlistPlan{seed: seed}, nil
}

type hitlistPlan struct{ seed *census.Snapshot }

func (p hitlistPlan) Cost() uint64 { return uint64(p.seed.Hosts()) }

func (p hitlistPlan) Found(snap *census.Snapshot) int {
	return p.seed.IntersectWith(snap)
}

// ---- TASS ----

// TASS selects prefixes by density rank until the φ host-coverage target
// is met (the paper's contribution; see internal/core).
type TASS struct {
	// Universe is the prefix partition to select from: the l-prefix view
	// or the deaggregated m-prefix view of the announced table.
	Universe rib.Partition
	// Opts carries φ and the optional density/size cuts.
	Opts core.Options
	// Label distinguishes variants in reports ("tass-l φ=0.95", ...).
	Label string
	// Workers bounds the counting-walk goroutines (0 means a single
	// worker, matching plain core.Select). Results are identical at
	// any count.
	Workers int
	// Cache, when non-nil, memoizes per-(snapshot, universe) counts so
	// repeated selections over the same seed rank without re-counting.
	Cache *census.CountCache
}

// Name implements Strategy.
func (t TASS) Name() string {
	if t.Label != "" {
		return t.Label
	}
	return fmt.Sprintf("tass φ=%g", t.Opts.Phi)
}

// Plan implements Strategy.
func (t TASS) Plan(seed *census.Snapshot) (Plan, error) {
	sel, err := t.Select(seed)
	if err != nil {
		return nil, err
	}
	return partitionPlan{part: sel.Partition()}, nil
}

// Select exposes the full TASS selection (with ranking metadata), not
// just the Plan facade.
func (t TASS) Select(seed *census.Snapshot) (*core.Selection, error) {
	workers := t.Workers
	if workers <= 0 {
		workers = 1
	}
	return core.SelectCached(seed, t.Universe, t.Opts, workers, t.Cache)
}

// ---- Heidemann-style random /24 sample ----

// RandomSample approximates the census/survey sampling of Heidemann et
// al.: a fixed number of /24 blocks, half chosen uniformly at random,
// a quarter from previously-responsive blocks, a quarter by a density
// policy (the densest blocks of the seed scan).
type RandomSample struct {
	// Universe is the announced space to sample from.
	Universe rib.Partition
	// Blocks is the number of /24 blocks to scan per cycle.
	Blocks int
	// Seed makes the random half reproducible.
	Seed int64
}

// Name implements Strategy.
func (RandomSample) Name() string { return "sample24" }

// Plan implements Strategy.
func (r RandomSample) Plan(seed *census.Snapshot) (Plan, error) {
	if r.Blocks <= 0 {
		return nil, fmt.Errorf("strategy: sample needs a positive block count")
	}
	rng := rand.New(rand.NewSource(r.Seed))
	chosen := make(map[netaddr.Prefix]struct{}, r.Blocks)

	// 25 %: previously-responsive blocks (uniformly from the seed's
	// responsive /24s).
	respBlocks := responsive24s(seed)
	quarter := r.Blocks / 4
	for i := 0; i < quarter && len(respBlocks) > 0; i++ {
		chosen[respBlocks[rng.Intn(len(respBlocks))]] = struct{}{}
	}

	// 25 %: policy — densest responsive /24 blocks first.
	counts := make(map[netaddr.Prefix]int, len(respBlocks))
	for _, a := range seed.Addrs {
		counts[netaddr.MustPrefixFrom(a, 24)]++
	}
	sort.Slice(respBlocks, func(i, j int) bool {
		ci, cj := counts[respBlocks[i]], counts[respBlocks[j]]
		if ci != cj {
			return ci > cj
		}
		return respBlocks[i].Compare(respBlocks[j]) < 0
	})
	for i := 0; i < quarter && i < len(respBlocks); i++ {
		chosen[respBlocks[i]] = struct{}{}
	}

	// Remainder (≈50 %): uniform random /24s inside the announced space.
	for guard := 0; len(chosen) < r.Blocks && guard < 50*r.Blocks; guard++ {
		i := rng.Intn(r.Universe.Len())
		p := r.Universe.Prefix(i)
		base := netaddr.MustPrefixFrom(topoRandomAddr(rng, p), 24)
		// Clip: a /24 straddling the partition prefix boundary would
		// leak outside announced space for prefixes longer than /24.
		if !p.ContainsPrefix(base) {
			continue
		}
		chosen[base] = struct{}{}
	}

	ps := make([]netaddr.Prefix, 0, len(chosen))
	for p := range chosen {
		ps = append(ps, p)
	}
	netaddr.SortPrefixes(ps)
	part, err := rib.NewPartition(ps)
	if err != nil {
		return nil, fmt.Errorf("strategy: sample blocks overlap: %w", err)
	}
	return partitionPlan{part: part}, nil
}

func topoRandomAddr(rng *rand.Rand, p netaddr.Prefix) netaddr.Addr {
	return p.First() + netaddr.Addr(uint64(rng.Int63())%p.NumAddresses())
}

func responsive24s(seed *census.Snapshot) []netaddr.Prefix {
	var out []netaddr.Prefix
	for _, a := range seed.Addrs {
		b := netaddr.MustPrefixFrom(a, 24)
		if n := len(out); n == 0 || out[n-1] != b {
			out = append(out, b)
		}
	}
	return out
}

// ---- Evaluation ----

// Evaluation is the hitrate-over-time record of one strategy on one
// protocol series, plus its per-cycle cost.
type Evaluation struct {
	Strategy string
	Protocol string
	// Cost is probes per scan cycle; CostShare normalizes by the full
	// announced space.
	Cost      uint64
	CostShare float64
	// Hitrate[m] is found/available at month m (Hitrate[0] is the seed
	// month itself).
	Hitrate []float64
}

// Evaluate seeds the strategy with series month 0 and measures hitrate on
// every month of the series. fullSpace is the announced address count
// used to normalize cost.
func Evaluate(s Strategy, series *census.Series, fullSpace uint64) (Evaluation, error) {
	if series.Months() == 0 {
		return Evaluation{}, fmt.Errorf("strategy: empty series")
	}
	plan, err := s.Plan(series.At(0))
	if err != nil {
		return Evaluation{}, fmt.Errorf("strategy %s: %w", s.Name(), err)
	}
	ev := Evaluation{
		Strategy: s.Name(),
		Protocol: series.Protocol,
		Cost:     plan.Cost(),
	}
	if fullSpace > 0 {
		ev.CostShare = float64(plan.Cost()) / float64(fullSpace)
	}
	for m := 0; m < series.Months(); m++ {
		ev.Hitrate = append(ev.Hitrate, Hitrate(plan, series.At(m)))
	}
	return ev, nil
}
