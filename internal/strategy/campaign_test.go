package strategy

import (
	"testing"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/core"
)

func TestCampaignNeverReseed(t *testing.T) {
	u, series := smallWorld(t, 51)
	s := series["http"]
	ev, err := EvaluateCampaign(Campaign{
		Universe: u.More,
		Opts:     core.Options{Phi: 0.95},
	}, s, u.Less.AddressCount())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Reseeds != 1 {
		t.Fatalf("reseeds = %d, want 1", ev.Reseeds)
	}
	if ev.Hitrate[0] != 1 || ev.CostShare[0] != 1 {
		t.Errorf("month 0 must be the full seed scan: %v %v", ev.Hitrate[0], ev.CostShare[0])
	}
	// After month 0, cost is the selection's share and hitrate ≥ ~0.9.
	for m := 1; m < len(ev.Hitrate); m++ {
		if ev.CostShare[m] >= 1 {
			t.Errorf("month %d cost share %v", m, ev.CostShare[m])
		}
		if ev.Hitrate[m] < 0.85 {
			t.Errorf("month %d hitrate %v", m, ev.Hitrate[m])
		}
	}
}

func TestCampaignReseedRestoresAccuracy(t *testing.T) {
	u, series := smallWorld(t, 52)
	s := series["cwmp"] // fastest-decaying protocol
	never, err := EvaluateCampaign(Campaign{Universe: u.More, Opts: core.Options{Phi: 0.95}},
		s, u.Less.AddressCount())
	if err != nil {
		t.Fatal(err)
	}
	every3, err := EvaluateCampaign(Campaign{Universe: u.More, Opts: core.Options{Phi: 0.95}, ReseedEvery: 3},
		s, u.Less.AddressCount())
	if err != nil {
		t.Fatal(err)
	}
	if every3.Reseeds != 3 { // months 0, 3, 6
		t.Fatalf("reseeds = %d, want 3", every3.Reseeds)
	}
	if every3.MeanHitrate <= never.MeanHitrate {
		t.Errorf("reseeding must raise accuracy: %v vs %v", every3.MeanHitrate, never.MeanHitrate)
	}
	if every3.MeanCostShare <= never.MeanCostShare {
		t.Errorf("reseeding must cost more: %v vs %v", every3.MeanCostShare, never.MeanCostShare)
	}
	// Hitrate is fully restored at the reseed month...
	if every3.Hitrate[3] != 1 {
		t.Errorf("month 3 (reseed) hitrate %v", every3.Hitrate[3])
	}
	// ...and the month after a reseed beats the same month without one.
	if every3.Hitrate[4] <= never.Hitrate[4] {
		t.Errorf("post-reseed month 4: %v vs %v", every3.Hitrate[4], never.Hitrate[4])
	}
}

// TestCampaignIncrementalGoldenEquality: the delta-driven campaign
// (ranker repaired per month, reseeds off the repaired ranking) and the
// full per-reseed recompute produce bit-identical evaluations — with
// per-month diffs derived on the fly and with supplied native deltas.
func TestCampaignIncrementalGoldenEquality(t *testing.T) {
	u, series := smallWorld(t, 53)
	for _, proto := range []string{"http", "cwmp"} {
		s := series[proto]
		var native []*census.Delta
		for m := 1; m < s.Months(); m++ {
			native = append(native, s.At(m-1).Diff(s.At(m)))
		}
		for _, dt := range []int{0, 1, 2, 3} {
			base := Campaign{Universe: u.More, Opts: core.Options{Phi: 0.95}, ReseedEvery: dt}
			want, err := EvaluateCampaign(base, s, u.Less.AddressCount())
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range []Campaign{
				{Universe: u.More, Opts: base.Opts, ReseedEvery: dt, Incremental: true},
				{Universe: u.More, Opts: base.Opts, ReseedEvery: dt, Incremental: true, Deltas: native},
				{Universe: u.More, Opts: base.Opts, ReseedEvery: dt, Incremental: true, Workers: 8, Cache: census.NewCountCache()},
			} {
				got, err := EvaluateCampaign(c, s, u.Less.AddressCount())
				if err != nil {
					t.Fatal(err)
				}
				if got.Reseeds != want.Reseeds || got.MeanHitrate != want.MeanHitrate ||
					got.MeanCostShare != want.MeanCostShare {
					t.Fatalf("%s Δt=%d: incremental eval diverged: %+v vs %+v", proto, dt, got, want)
				}
				for m := range want.Hitrate {
					if got.Hitrate[m] != want.Hitrate[m] || got.CostShare[m] != want.CostShare[m] {
						t.Fatalf("%s Δt=%d month %d: hitrate/cost diverged", proto, dt, m)
					}
				}
			}
		}
	}
}

func TestCampaignErrors(t *testing.T) {
	u, series := smallWorld(t, 53)
	if _, err := EvaluateCampaign(Campaign{Universe: u.More, Opts: core.Options{Phi: 0.95}},
		&census.Series{Protocol: "x"}, 1); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := EvaluateCampaign(Campaign{Universe: u.More, Opts: core.Options{Phi: 0.95}},
		series["ftp"], 0); err == nil {
		t.Error("zero full-scan cost accepted")
	}
	if _, err := EvaluateCampaign(Campaign{Universe: u.More, Opts: core.Options{Phi: -1}},
		series["ftp"], u.Less.AddressCount()); err == nil {
		t.Error("bad φ accepted")
	}
}
