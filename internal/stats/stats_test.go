package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	if _, _, ok := MinMax(nil); ok {
		t.Error("MinMax(nil) ok")
	}
	min, max, ok := MinMax([]float64{3, -1, 7, 0})
	if !ok || min != -1 || max != 7 {
		t.Errorf("MinMax = %v, %v, %v", min, max, ok)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("Percentile(nil)")
	}
}

func TestLinearFit(t *testing.T) {
	// y = -0.003x + 1 exactly.
	xs := []float64{0, 1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 - 0.003*x
	}
	slope, intercept := LinearFit(xs, ys)
	if math.Abs(slope+0.003) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Errorf("fit = %v, %v", slope, intercept)
	}
	if s, i := LinearFit(nil, nil); s != 0 || i != 0 {
		t.Error("LinearFit(nil)")
	}
	// Degenerate x: slope 0, intercept mean.
	if s, i := LinearFit([]float64{2, 2}, []float64{1, 3}); s != 0 || i != 2 {
		t.Errorf("degenerate fit = %v, %v", s, i)
	}
}

func TestHistogram(t *testing.T) {
	bounds := []float64{0, 10, 20}
	got := Histogram([]float64{0, 5, 10, 15, 25, -1}, bounds)
	// [0,10): 0,5 → 2; [10,20): 10,15 → 2; [20,∞): 25 → 1; -1 below
	// bounds[0] is dropped.
	want := []int{2, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Histogram = %v, want %v", got, want)
		}
	}
}

// TestHistogramBoundaries is the regression test for the documented
// [bounds[i], bounds[i+1]) semantics: values below bounds[0] must be
// dropped, not folded into the first bucket, and every boundary value
// belongs to the bucket it opens.
func TestHistogramBoundaries(t *testing.T) {
	bounds := []float64{1, 2, 4}
	cases := []struct {
		x    float64
		want []int
	}{
		{0.999, []int{0, 0, 0}}, // below the first bound: dropped
		{-5, []int{0, 0, 0}},
		{1, []int{1, 0, 0}}, // exactly on a bound: opens that bucket
		{1.5, []int{1, 0, 0}},
		{2, []int{0, 1, 0}},
		{3.999, []int{0, 1, 0}},
		{4, []int{0, 0, 1}},
		{1e9, []int{0, 0, 1}}, // final bucket is open-ended
	}
	for _, c := range cases {
		got := Histogram([]float64{c.x}, bounds)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("Histogram(%v) = %v, want %v", c.x, got, c.want)
				break
			}
		}
	}
	// A mixed batch sums the per-value placements; total counted = total
	// values minus the below-range ones.
	got := Histogram([]float64{-1, 0, 1, 2, 3, 4, 5}, bounds)
	total := 0
	for _, c := range got {
		total += c
	}
	if total != 5 {
		t.Errorf("mixed batch counted %d values (%v), want 5 (two below range)", total, got)
	}
}

func TestTable(t *testing.T) {
	var tb Table
	tb.AddRow("proto", "φ", "space")
	tb.AddRowf("ftp", 0.95, 0.206)
	tb.AddRowf("http", 1, "x")
	out := tb.String()
	if !strings.Contains(out, "proto") || !strings.Contains(out, "0.950") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines", len(lines))
	}
	var empty Table
	if empty.String() != "" {
		t.Error("empty table should render empty")
	}
}
