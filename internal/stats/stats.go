// Package stats provides the small numeric helpers the experiment harness
// uses to summarize results: means, percentiles, linear decay fits and
// fixed-width table rendering.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MinMax returns the extremes of xs. ok is false for empty input.
func MinMax(xs []float64) (min, max float64, ok bool) {
	if len(xs) == 0 {
		return 0, 0, false
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, true
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 1 {
		return cp[len(cp)-1]
	}
	pos := p * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// LinearFit returns slope and intercept of the least-squares line through
// (xs[i], ys[i]). It is used to estimate monthly hitrate decay slopes
// (Figure 6). Inputs must have equal nonzero length.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	if n == 0 || len(xs) != len(ys) {
		return 0, 0
	}
	mx, my := Mean(xs), Mean(ys)
	var num, den float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0, my
	}
	slope = num / den
	return slope, my - slope*mx
}

// Histogram counts values into the given bucket boundaries: result[i]
// counts xs in [bounds[i], bounds[i+1]); the final bucket is open-ended.
// Values below bounds[0] fall outside every bucket and are dropped.
func Histogram(xs []float64, bounds []float64) []int {
	out := make([]int, len(bounds))
	for _, x := range xs {
		// idx is the first bound > x, so x belongs to bucket idx-1; an
		// idx of 0 means x sits below the first bound.
		idx := sort.SearchFloat64s(bounds, x)
		if idx < len(bounds) && bounds[idx] == x {
			idx++
		}
		if idx == 0 {
			continue
		}
		out[idx-1]++
	}
	return out
}

// Table renders rows as an aligned fixed-width text table. The first row
// is the header; a separator line follows it.
type Table struct {
	rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row where each cell is formatted with fmt.Sprint.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteString("\n")
	}
	writeRow(t.rows[0])
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.rows[1:] {
		writeRow(row)
	}
	return sb.String()
}
