package census

import "github.com/tass-scan/tass/internal/netaddr"

// SortAddrs sorts an address slice ascending with a byte-wise LSD radix
// sort: ~5× faster than comparison sorting on the multi-million-address
// sets full scans produce, and the dominant cost of snapshot
// construction. Falls back to insertion sort for small inputs.
func SortAddrs(addrs []netaddr.Addr) {
	if len(addrs) < 64 {
		insertionSort(addrs)
		return
	}
	buf := make([]netaddr.Addr, len(addrs))
	src, dst := addrs, buf
	for shift := uint(0); shift < 32; shift += 8 {
		var counts [256]int
		for _, a := range src {
			counts[(a>>shift)&0xFF]++
		}
		sum := 0
		for i := range counts {
			counts[i], sum = sum, sum+counts[i]
		}
		for _, a := range src {
			b := (a >> shift) & 0xFF
			dst[counts[b]] = a
			counts[b]++
		}
		src, dst = dst, src
	}
	// Four passes: the result is back in the original slice (src==addrs).
}

func insertionSort(addrs []netaddr.Addr) {
	for i := 1; i < len(addrs); i++ {
		for j := i; j > 0 && addrs[j] < addrs[j-1]; j-- {
			addrs[j], addrs[j-1] = addrs[j-1], addrs[j]
		}
	}
}

// Diff compares two snapshots of one protocol and returns the churn
// decomposition the paper's §3.3 host-stability analysis needs: how many
// addresses persisted, disappeared and appeared between the scans.
type DiffResult struct {
	// Kept counts addresses responsive in both snapshots.
	Kept int
	// Lost counts addresses responsive only in the earlier snapshot.
	Lost int
	// New counts addresses responsive only in the later snapshot.
	New int
}

// Retention returns Kept / earlier-total: the per-address stability the
// hitlist strategy depends on.
func (d DiffResult) Retention() float64 {
	if d.Kept+d.Lost == 0 {
		return 0
	}
	return float64(d.Kept) / float64(d.Kept+d.Lost)
}

// Diff computes the address-level churn between two snapshots.
func Diff(earlier, later *Snapshot) DiffResult {
	var d DiffResult
	i, j := 0, 0
	a, b := earlier.Addrs, later.Addrs
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			d.Lost++
			i++
		case a[i] > b[j]:
			d.New++
			j++
		default:
			d.Kept++
			i++
			j++
		}
	}
	d.Lost += len(a) - i
	d.New += len(b) - j
	return d
}
