package census

import "github.com/tass-scan/tass/internal/netaddr"

// SortAddrs sorts an address slice ascending with a byte-wise LSD radix
// sort: ~5× faster than comparison sorting on the multi-million-address
// sets full scans produce, and the dominant cost of snapshot
// construction. Falls back to insertion sort for small inputs.
func SortAddrs(addrs []netaddr.Addr) {
	if len(addrs) < 64 {
		insertionSort(addrs)
		return
	}
	SortAddrsScratch(addrs, make([]netaddr.Addr, len(addrs)))
}

// SortAddrsScratch is SortAddrs with a caller-owned scratch buffer of
// at least len(addrs), for callers that sort many sets of similar size
// (the monthly snapshot extraction loop) and want to pay the buffer
// allocation once. On return addrs is sorted; the scratch contents are
// unspecified.
//
// All four byte histograms are gathered in one pass, and permutation
// passes whose byte is constant across the input are skipped entirely —
// on a reduced-scale universe confined to a few /8s that removes a
// quarter to half of the data movement.
func SortAddrsScratch(addrs, scratch []netaddr.Addr) {
	if len(addrs) < 64 {
		insertionSort(addrs)
		return
	}
	if len(scratch) < len(addrs) {
		panic("census: SortAddrsScratch: scratch smaller than input")
	}
	var counts [4][256]int
	for _, a := range addrs {
		counts[0][a&0xFF]++
		counts[1][(a>>8)&0xFF]++
		counts[2][(a>>16)&0xFF]++
		counts[3][a>>24]++
	}
	src, dst := addrs, scratch[:len(addrs)]
	for pass := 0; pass < 4; pass++ {
		shift := uint(pass * 8)
		c := &counts[pass]
		// A pass whose byte is constant is the identity permutation.
		if c[(src[0]>>shift)&0xFF] == len(src) {
			continue
		}
		sum := 0
		for i := range c {
			c[i], sum = sum, sum+c[i]
		}
		for _, a := range src {
			b := (a >> shift) & 0xFF
			dst[c[b]] = a
			c[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &addrs[0] {
		copy(addrs, src)
	}
}

func insertionSort(addrs []netaddr.Addr) {
	for i := 1; i < len(addrs); i++ {
		for j := i; j > 0 && addrs[j] < addrs[j-1]; j-- {
			addrs[j], addrs[j-1] = addrs[j-1], addrs[j]
		}
	}
}

// Diff compares two snapshots of one protocol and returns the churn
// decomposition the paper's §3.3 host-stability analysis needs: how many
// addresses persisted, disappeared and appeared between the scans.
type DiffResult struct {
	// Kept counts addresses responsive in both snapshots.
	Kept int
	// Lost counts addresses responsive only in the earlier snapshot.
	Lost int
	// New counts addresses responsive only in the later snapshot.
	New int
}

// Retention returns Kept / earlier-total: the per-address stability the
// hitlist strategy depends on.
func (d DiffResult) Retention() float64 {
	if d.Kept+d.Lost == 0 {
		return 0
	}
	return float64(d.Kept) / float64(d.Kept+d.Lost)
}

// Diff computes the address-level churn between two snapshots.
func Diff(earlier, later *Snapshot) DiffResult {
	var d DiffResult
	i, j := 0, 0
	a, b := earlier.Addrs, later.Addrs
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			d.Lost++
			i++
		case a[i] > b[j]:
			d.New++
			j++
		default:
			d.Kept++
			i++
			j++
		}
	}
	d.Lost += len(a) - i
	d.New += len(b) - j
	return d
}
