package census

import (
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// shardFixture builds a partition large enough to engage the sharded
// path (thousands of /24s with gaps) and a sorted address set that hits
// prefixes, gaps and space outside the partition.
func shardFixture(t testing.TB) (rib.Partition, []netaddr.Addr) {
	t.Helper()
	var ps []netaddr.Prefix
	for i := 0; i < 1<<13; i++ {
		if i%7 == 3 {
			continue // leave gaps inside the covered range
		}
		base := netaddr.Addr(0x0A000000 + uint32(i)<<8) // 10.x.y.0/24
		ps = append(ps, netaddr.MustPrefixFrom(base, 24))
	}
	part, err := rib.NewPartition(ps)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic pseudo-random addresses: some below, inside (both
	// covered /24s and gap /24s), and above the partition range.
	var addrs []netaddr.Addr
	x := uint64(12345)
	for i := 0; i < 200000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		addrs = append(addrs, netaddr.Addr(uint32(0x09F00000+(x>>33)%0x00400000)))
	}
	SortAddrs(addrs)
	return part, addrs
}

func TestCountAddrsShardedMatchesSerial(t *testing.T) {
	part, addrs := shardFixture(t)
	wantCounts, wantOutside := part.CountAddrs(addrs)
	inside := 0
	for _, c := range wantCounts {
		inside += c
	}
	if inside == 0 || wantOutside == 0 {
		t.Fatalf("degenerate fixture: %d inside, %d outside", inside, wantOutside)
	}
	for _, workers := range []int{0, 1, 2, 3, 4, 8, 64} {
		counts, outside := CountAddrsSharded(addrs, part, workers)
		if outside != wantOutside {
			t.Errorf("workers=%d: outside %d, want %d", workers, outside, wantOutside)
		}
		for i := range wantCounts {
			if counts[i] != wantCounts[i] {
				t.Fatalf("workers=%d: counts[%d] = %d, want %d", workers, i, counts[i], wantCounts[i])
			}
		}
	}
}

func TestCountAddrsShardedEdgeCases(t *testing.T) {
	part, addrs := shardFixture(t)
	// Empty address set.
	counts, outside := CountAddrsSharded(nil, part, 8)
	if outside != 0 || len(counts) != part.Len() {
		t.Errorf("empty addrs: outside=%d len=%d", outside, len(counts))
	}
	// Empty partition: everything is outside.
	empty := rib.Partition{}
	counts, outside = CountAddrsSharded(addrs, empty, 8)
	if len(counts) != 0 || outside != len(addrs) {
		t.Errorf("empty partition: counts=%d outside=%d, want 0 and %d", len(counts), outside, len(addrs))
	}
	// Snapshot method agrees.
	snap := &Snapshot{Protocol: "t", Addrs: addrs}
	sc, so := snap.CountByPrefixSharded(part, 4)
	wc, wo := snap.CountByPrefix(part)
	if so != wo {
		t.Errorf("snapshot sharded outside %d, want %d", so, wo)
	}
	for i := range wc {
		if sc[i] != wc[i] {
			t.Fatalf("snapshot sharded counts[%d] = %d, want %d", i, sc[i], wc[i])
		}
	}
}

func BenchmarkCountAddrsSharded(b *testing.B) {
	part, addrs := shardFixture(b)
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "workers=1", 4: "workers=4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				CountAddrsSharded(addrs, part, workers)
			}
		})
	}
}
