package census

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/mmapfile"
	"github.com/tass-scan/tass/internal/netaddr"
)

// TASSNAP2 — the indexed snapshot file format.
//
// Format v1 (TASSCNS/TASSCN6, census.go) is one long delta stream:
// reading it costs O(addresses) in time and memory before the first
// count can run. v2 prefixes the same delta-coded payload with a block
// directory, so opening costs O(blocks): the index is parsed and
// checksummed, the payload is mapped (or left on disk for pread) and
// blocks decode on first touch through the addrset lazy cache.
//
//	magic      [8]byte "TASSNAP2"
//	family     byte: 4 or 6
//	proto      uvarint length + bytes
//	month      uvarint
//	count      uvarint  total addresses
//	blockSize  uvarint  addresses per block (last block may hold fewer)
//	nblocks    uvarint
//	payloadLen uvarint
//	dirLen     uvarint  directory length in bytes
//	payloadCRC [4]byte  CRC-32 (IEEE) of the payload, little endian
//	directory  dirLen bytes: per block,
//	             minDelta  key uvarint (block 0 absolute, then delta
//	                       from the previous block's min)
//	             span      key uvarint (max - min)
//	             count_i   uvarint
//	             bytes_i   uvarint (encoded stream length)
//	indexCRC   [4]byte  CRC-32 (IEEE) of everything above, little endian
//	payload    payloadLen bytes: per block, count_i-1 key-uvarint deltas
//
// The index CRC is verified at open (still O(blocks)); the payload CRC
// is only read by VerifySnapshotFile, keeping cold opens free of any
// O(addresses) work. A block payload corrupted after a successful
// verify surfaces as a panic at first decode — the pread analogue of an
// mmap SIGBUS on a truncated file.
var magic2 = [8]byte{'T', 'A', 'S', 'S', 'N', 'A', 'P', '2'}

func familyByte(width int) byte {
	if width == 32 {
		return 4
	}
	return 6
}

// snapFileIndex is a parsed v2 header + directory.
type snapFileIndex[A netaddr.Key[A]] struct {
	proto      string
	month      int
	count      int
	blockSize  int
	payloadCRC uint32
	payloadOff int
	payloadLen int

	mins, maxs    []A
	counts, blens []int
}

// parseSnapFileIndex reads and validates the header, directory and
// index CRC of an open v2 file. It touches only the index prefix of the
// file — O(blocks) bytes — never the payload.
func parseSnapFileIndex[A netaddr.Key[A]](m *mmapfile.File) (*snapFileIndex[A], error) {
	size := int(m.Size())
	// The fixed header fits well under 4 KiB (proto <= 255 bytes, seven
	// uvarints, one CRC); grab that much, or the whole file if smaller.
	headLen := 4096
	if headLen > size {
		headLen = size
	}
	head := m.Bytes(0, headLen)
	if len(head) < len(magic2)+1 || !bytes.Equal(head[:8], magic2[:]) {
		return nil, fmt.Errorf("%w: not a TASSNAP2 file", ErrFormat)
	}
	var zero A
	if fam := head[8]; fam != familyByte(zero.Width()) {
		return nil, fmt.Errorf("%w: family %d, want %d", ErrFormat, head[8], familyByte(zero.Width()))
	}
	pos := 9
	next := func(what string) (uint64, error) {
		v, n := binary.Uvarint(head[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated header at %s", ErrFormat, what)
		}
		pos += n
		return v, nil
	}
	protoLen, err := next("proto length")
	if err != nil {
		return nil, err
	}
	if protoLen > 255 || pos+int(protoLen) > len(head) {
		return nil, fmt.Errorf("%w: protocol name length %d", ErrFormat, protoLen)
	}
	proto := string(head[pos : pos+int(protoLen)])
	pos += int(protoLen)
	month, err := next("month")
	if err != nil {
		return nil, err
	}
	count, err := next("count")
	if err != nil {
		return nil, err
	}
	blockSize, err := next("block size")
	if err != nil {
		return nil, err
	}
	nblocks, err := next("block count")
	if err != nil {
		return nil, err
	}
	payloadLen, err := next("payload length")
	if err != nil {
		return nil, err
	}
	dirLen, err := next("directory length")
	if err != nil {
		return nil, err
	}
	if pos+4 > len(head) {
		return nil, fmt.Errorf("%w: truncated header at payload CRC", ErrFormat)
	}
	payloadCRC := binary.LittleEndian.Uint32(head[pos:])
	pos += 4
	hdrEnd := pos

	if count > 1<<33 || blockSize == 0 || blockSize > 1<<20 {
		return nil, fmt.Errorf("%w: implausible count %d / block size %d", ErrFormat, count, blockSize)
	}
	// Every directory record is at least 4 bytes (four 1-byte fields),
	// so nblocks is bounded by the directory it claims to describe —
	// checked before any nblocks-sized allocation.
	idxEnd := hdrEnd + int(dirLen)
	payloadOff := idxEnd + 4
	if dirLen > uint64(size) || payloadOff+int(payloadLen) != size {
		return nil, fmt.Errorf("%w: file is %d bytes, index describes %d", ErrFormat, size, payloadOff+int(payloadLen))
	}
	if nblocks > dirLen/4 {
		return nil, fmt.Errorf("%w: %d blocks cannot fit a %d-byte directory", ErrFormat, nblocks, dirLen)
	}

	idx := m.Bytes(0, idxEnd)
	if got, want := crc32.ChecksumIEEE(idx), binary.LittleEndian.Uint32(m.Bytes(idxEnd, 4)); got != want {
		return nil, fmt.Errorf("%w: index CRC mismatch (got %08x, want %08x)", ErrFormat, got, want)
	}

	out := &snapFileIndex[A]{
		proto:      proto,
		month:      int(month),
		count:      int(count),
		blockSize:  int(blockSize),
		payloadCRC: payloadCRC,
		payloadOff: payloadOff,
		payloadLen: int(payloadLen),
		mins:       make([]A, nblocks),
		maxs:       make([]A, nblocks),
		counts:     make([]int, nblocks),
		blens:      make([]int, nblocks),
	}
	dir := idx[hdrEnd:]
	dpos := 0
	total := 0
	var prevMin A
	for i := 0; i < int(nblocks); i++ {
		minDelta, n := netaddr.DecodeKeyUvarint[A](dir[dpos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated directory at block %d", ErrFormat, i)
		}
		dpos += n
		span, n := netaddr.DecodeKeyUvarint[A](dir[dpos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated directory at block %d", ErrFormat, i)
		}
		dpos += n
		cnt, n := binary.Uvarint(dir[dpos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated directory at block %d", ErrFormat, i)
		}
		dpos += n
		bl, n := binary.Uvarint(dir[dpos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated directory at block %d", ErrFormat, i)
		}
		dpos += n
		min := minDelta
		if i > 0 {
			min = netaddr.KeyAdd(prevMin, minDelta)
			if min.Compare(prevMin) < 0 {
				return nil, fmt.Errorf("%w: block %d min wraps the address space", ErrFormat, i)
			}
		}
		max := netaddr.KeyAdd(min, span)
		if max.Compare(min) < 0 {
			return nil, fmt.Errorf("%w: block %d max wraps the address space", ErrFormat, i)
		}
		if cnt > uint64(blockSize) || bl > uint64(payloadLen) {
			return nil, fmt.Errorf("%w: block %d directory entry out of range", ErrFormat, i)
		}
		out.mins[i] = min
		out.maxs[i] = max
		out.counts[i] = int(cnt)
		out.blens[i] = int(bl)
		total += int(cnt)
		prevMin = min
	}
	if dpos != len(dir) {
		return nil, fmt.Errorf("%w: directory has %d trailing bytes", ErrFormat, len(dir)-dpos)
	}
	if total != out.count {
		return nil, fmt.Errorf("%w: directory counts sum to %d, header says %d", ErrFormat, total, out.count)
	}
	return out, nil
}

// fileSource serves block extents from the payload region of an open
// snapshot file; it is the mmap/pread BlockSource behind lazy sets.
type fileSource struct {
	f    *mmapfile.File
	base int
	size int
}

func (s *fileSource) Bytes(off, n int) []byte { return s.f.Bytes(s.base+off, n) }
func (s *fileSource) Size() int               { return s.size }

// OpenSnapshotFile opens an IPv4 snapshot file lazily with the default
// decoded-block cache cap. See OpenSnapshotFileOf.
func OpenSnapshotFile(path string) (*Snapshot, error) {
	return OpenSnapshotFileOf[netaddr.Addr](path, 0)
}

// OpenSnapshotFileOf opens a snapshot file of family A. A TASSNAP2 file
// opens in O(blocks): the index is parsed and CRC-checked, the payload
// is mapped (pread on platforms without mmap) and blocks decode on
// first touch, cached in an LRU capped at cacheBlocks decoded blocks
// (0 means the addrset default). The returned snapshot is lazy: Addrs
// is nil, counting and selection run off the block index, and Close
// must be called to release the mapping. The payload is trusted after
// the index CRC passes — run VerifySnapshotFile first on files of
// doubtful provenance.
//
// A v1 file (TASSCNS/TASSCN6) is read eagerly as ReadSnapshotOf would,
// so callers can open either format through one entry point.
func OpenSnapshotFileOf[A netaddr.Key[A]](path string, cacheBlocks int) (*SnapshotOf[A], error) {
	m, err := mmapfile.Open(path)
	if err != nil {
		return nil, err
	}
	if int(m.Size()) >= 8 {
		var zero A
		v1 := snapMagic(zero.Width())
		if head := m.Bytes(0, 8); bytes.Equal(head, v1[:]) {
			// v1: one eager pass, as before this format existed.
			m.Close()
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return ReadSnapshotOf[A](f)
		}
	}
	idx, err := parseSnapFileIndex[A](m)
	if err != nil {
		m.Close()
		return nil, err
	}
	src := &fileSource{f: m, base: idx.payloadOff, size: idx.payloadLen}
	set, err := addrset.FromIndex(idx.mins, idx.maxs, idx.counts, idx.blens, idx.blockSize, src, cacheBlocks)
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return &SnapshotOf[A]{
		Protocol: idx.proto,
		Month:    idx.month,
		set:      set,
		lazy:     true,
		closer:   m,
	}, nil
}

// VerifySnapshotFile deep-checks a TASSNAP2 file of either family:
// index CRC, payload CRC, and a full decode of every block against the
// directory. It is the O(addresses) pass that makes the lazy open's
// trust in the payload safe for files of unknown provenance.
func VerifySnapshotFile(path string) error {
	m, err := mmapfile.Open(path)
	if err != nil {
		return err
	}
	defer m.Close()
	if int(m.Size()) < 9 {
		return fmt.Errorf("%w: not a TASSNAP2 file", ErrFormat)
	}
	if fam := m.Bytes(8, 1)[0]; fam == 6 {
		return verifySnapFile[netaddr.Addr6](m)
	}
	return verifySnapFile[netaddr.Addr](m)
}

func verifySnapFile[A netaddr.Key[A]](m *mmapfile.File) error {
	idx, err := parseSnapFileIndex[A](m)
	if err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	const chunk = 1 << 20
	for off := 0; off < idx.payloadLen; off += chunk {
		n := idx.payloadLen - off
		if n > chunk {
			n = chunk
		}
		crc.Write(m.Bytes(idx.payloadOff+off, n))
	}
	if got := crc.Sum32(); got != idx.payloadCRC {
		return fmt.Errorf("%w: payload CRC mismatch (got %08x, want %08x)", ErrFormat, got, idx.payloadCRC)
	}
	src := &fileSource{f: m, base: idx.payloadOff, size: idx.payloadLen}
	// Cache cap 1: CheckBlocks streams every block once, nothing worth
	// keeping resident.
	set, err := addrset.FromIndex(idx.mins, idx.maxs, idx.counts, idx.blens, idx.blockSize, src, 1)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if err := set.CheckBlocks(); err != nil {
		return fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return nil
}

// WriteSnapshotFile writes an IPv4 snapshot to path in TASSNAP2 format.
// See WriteSnapshotFileOf.
func WriteSnapshotFile(path string, s *Snapshot) error {
	return WriteSnapshotFileOf(path, s)
}

// WriteSnapshotFileOf writes a snapshot of any family to path in
// TASSNAP2 format, atomically (temp file + rename). The payload is
// re-encoded from the snapshot's set view into canonical
// fixed-population blocks, so overlay-carrying snapshots (ApplyDelta
// output) and lazy snapshots serialize to the same bytes as a freshly
// built equal snapshot. Memory stays O(blocks): the encode runs twice —
// once to size the directory and checksum the payload, once to stream
// the payload to disk — rather than buffering the payload.
func WriteSnapshotFileOf[A netaddr.Key[A]](path string, s *SnapshotOf[A]) error {
	set := s.Set()
	bsize := set.BlockSize()

	// Pass 1: directory + payload CRC, no payload retained.
	var (
		mins, maxs    []A
		counts, blens []int
		payloadLen    int
	)
	crc := crc32.NewIEEE()
	encodeSnapBlocks(set, bsize,
		func(min A) { mins = append(mins, min) },
		func(b []byte) { crc.Write(b); payloadLen += len(b) },
		func(max A, count, blen int) {
			maxs = append(maxs, max)
			counts = append(counts, count)
			blens = append(blens, blen)
		})

	var zero A
	var hdr bytes.Buffer
	hdr.Write(magic2[:])
	hdr.WriteByte(familyByte(zero.Width()))
	var vbuf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) { hdr.Write(vbuf[:binary.PutUvarint(vbuf[:], v)]) }
	putUvarint(uint64(len(s.Protocol)))
	hdr.WriteString(s.Protocol)
	putUvarint(uint64(s.Month))
	putUvarint(uint64(set.Len()))
	putUvarint(uint64(bsize))
	putUvarint(uint64(len(mins)))
	putUvarint(uint64(payloadLen))

	var dir bytes.Buffer
	kbuf := make([]byte, 0, 19)
	var prevMin A
	for i := range mins {
		minDelta := mins[i]
		if i > 0 {
			minDelta = netaddr.KeySub(mins[i], prevMin)
		}
		dir.Write(netaddr.AppendKeyUvarint(kbuf[:0], minDelta))
		dir.Write(netaddr.AppendKeyUvarint(kbuf[:0], netaddr.KeySub(maxs[i], mins[i])))
		dir.Write(vbuf[:binary.PutUvarint(vbuf[:], uint64(counts[i]))])
		dir.Write(vbuf[:binary.PutUvarint(vbuf[:], uint64(blens[i]))])
		prevMin = mins[i]
	}
	putUvarint(uint64(dir.Len()))
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc.Sum32())
	hdr.Write(crcb[:])
	hdr.Write(dir.Bytes())

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	bw := bufio.NewWriterSize(f, 1<<16)
	idxCRC := crc32.ChecksumIEEE(hdr.Bytes())
	binary.LittleEndian.PutUint32(crcb[:], idxCRC)
	var werr error
	write := func(b []byte) {
		if werr == nil {
			_, werr = bw.Write(b)
		}
	}
	write(hdr.Bytes())
	write(crcb[:])
	// Pass 2: stream the payload.
	encodeSnapBlocks(set, bsize, func(A) {}, write, func(A, int, int) {})
	if werr != nil {
		f.Close()
		return werr
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// encodeSnapBlocks walks set in ascending order, re-encoding it into
// fixed-population blocks of bsize addresses: startBlock fires with
// each block's first address, deltaBytes with every encoded delta, and
// endBlock with the block's last address, population, and encoded byte
// length. Two identical invocations produce identical byte streams —
// the property the two-pass file writer depends on.
func encodeSnapBlocks[A netaddr.Key[A]](set *addrset.SetOf[A], bsize int,
	startBlock func(min A), deltaBytes func(b []byte), endBlock func(max A, count, blen int)) {
	kbuf := make([]byte, 0, 19)
	var prev A
	inBlk, blen := 0, 0
	set.Walk(func(a A) bool {
		if inBlk == bsize {
			endBlock(prev, inBlk, blen)
			inBlk, blen = 0, 0
		}
		if inBlk == 0 {
			startBlock(a)
		} else {
			b := netaddr.AppendKeyUvarint(kbuf[:0], netaddr.KeySub(a, prev))
			deltaBytes(b)
			blen += len(b)
		}
		prev = a
		inBlk++
		return true
	})
	if inBlk > 0 {
		endBlock(prev, inBlk, blen)
	}
}

// ConvertSnapshotFile reads a v1 snapshot stream from r and writes it
// to path as TASSNAP2. It is the library half of `tass convert`.
func ConvertSnapshotFile[A netaddr.Key[A]](r io.Reader, path string) error {
	snap, err := ReadSnapshotOf[A](r)
	if err != nil {
		return err
	}
	return WriteSnapshotFileOf(path, snap)
}
