package census

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/mmapfile"
	"github.com/tass-scan/tass/internal/netaddr"
)

// TASSNAP — the indexed snapshot file format.
//
// Format v1 (TASSCNS/TASSCN6, census.go) is one long delta stream:
// reading it costs O(addresses) in time and memory before the first
// count can run. v2 prefixes the same delta-coded payload with a block
// directory, so opening costs O(blocks): the index is parsed and
// checksummed, the payload is mapped (or left on disk for pread) and
// blocks decode on first touch through the addrset lazy cache. v3 adds
// a CRC-32 per block to the directory, so payload corruption is
// detected at first decode and localized to one block — the unit
// `tass fsck` quarantines.
//
//	magic      [8]byte "TASSNAP2" or "TASSNAP3"
//	family     byte: 4 or 6
//	proto      uvarint length + bytes
//	month      uvarint
//	count      uvarint  total addresses
//	blockSize  uvarint  addresses per block (last block may hold fewer)
//	nblocks    uvarint
//	payloadLen uvarint
//	dirLen     uvarint  directory length in bytes
//	payloadCRC [4]byte  CRC-32 (IEEE) of the payload, little endian
//	directory  dirLen bytes: per block,
//	             minDelta  key uvarint (block 0 absolute, then delta
//	                       from the previous block's min)
//	             span      key uvarint (max - min)
//	             count_i   uvarint
//	             bytes_i   uvarint (encoded stream length)
//	             crc_i     [4]byte  (v3 only) CRC-32 (IEEE) of the
//	                       block's payload bytes, little endian
//	indexCRC   [4]byte  CRC-32 (IEEE) of everything above, little endian
//	payload    payloadLen bytes: per block, count_i-1 key-uvarint deltas
//
// The index CRC is verified at open (still O(blocks)); the payload CRC
// is only read by VerifySnapshotFile, keeping cold opens free of any
// O(addresses) work. A block payload corrupted after a successful open
// surfaces at first decode as a typed *addrset.BlockError — a per-block
// CRC mismatch on v3, or the decoded population/max disagreeing with
// the trusted directory on v2 — propagated or degraded around per the
// set's FaultPolicy, never a panic.
var (
	magic2 = [8]byte{'T', 'A', 'S', 'S', 'N', 'A', 'P', '2'}
	magic3 = [8]byte{'T', 'A', 'S', 'S', 'N', 'A', 'P', '3'}
)

// snapWriteVersion is the directory format WriteSnapshotFileOf emits:
// 3 (per-block CRCs) everywhere outside tests that pin 2 to exercise
// the backward-compatibility read path.
var snapWriteVersion = 3

func familyByte(width int) byte {
	if width == 32 {
		return 4
	}
	return 6
}

// snapFileIndex is a parsed v2/v3 header + directory.
type snapFileIndex[A netaddr.Key[A]] struct {
	version    int // 2 or 3
	proto      string
	month      int
	count      int
	blockSize  int
	payloadCRC uint32
	payloadOff int
	payloadLen int

	mins, maxs    []A
	counts, blens []int
	crcs          []uint32 // per-block payload CRCs; nil on v2
}

// parseSnapFileIndex reads and validates the header, directory and
// index CRC of an open v2/v3 file. It touches only the index prefix of
// the file — O(blocks) bytes — never the payload.
func parseSnapFileIndex[A netaddr.Key[A]](m *mmapfile.File) (*snapFileIndex[A], error) {
	size := int(m.Size())
	// The fixed header fits well under 4 KiB (proto <= 255 bytes, seven
	// uvarints, one CRC); grab that much, or the whole file if smaller.
	headLen := 4096
	if headLen > size {
		headLen = size
	}
	head, err := m.BytesAt(0, headLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	version := 0
	switch {
	case len(head) >= len(magic2)+1 && bytes.Equal(head[:8], magic2[:]):
		version = 2
	case len(head) >= len(magic3)+1 && bytes.Equal(head[:8], magic3[:]):
		version = 3
	default:
		return nil, fmt.Errorf("%w: not a TASSNAP2/TASSNAP3 file", ErrFormat)
	}
	var zero A
	if fam := head[8]; fam != familyByte(zero.Width()) {
		return nil, fmt.Errorf("%w: family %d, want %d", ErrFormat, head[8], familyByte(zero.Width()))
	}
	pos := 9
	next := func(what string) (uint64, error) {
		v, n := binary.Uvarint(head[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated header at %s", ErrFormat, what)
		}
		pos += n
		return v, nil
	}
	protoLen, err := next("proto length")
	if err != nil {
		return nil, err
	}
	if protoLen > 255 || pos+int(protoLen) > len(head) {
		return nil, fmt.Errorf("%w: protocol name length %d", ErrFormat, protoLen)
	}
	proto := string(head[pos : pos+int(protoLen)])
	pos += int(protoLen)
	month, err := next("month")
	if err != nil {
		return nil, err
	}
	count, err := next("count")
	if err != nil {
		return nil, err
	}
	blockSize, err := next("block size")
	if err != nil {
		return nil, err
	}
	nblocks, err := next("block count")
	if err != nil {
		return nil, err
	}
	payloadLen, err := next("payload length")
	if err != nil {
		return nil, err
	}
	dirLen, err := next("directory length")
	if err != nil {
		return nil, err
	}
	if pos+4 > len(head) {
		return nil, fmt.Errorf("%w: truncated header at payload CRC", ErrFormat)
	}
	payloadCRC := binary.LittleEndian.Uint32(head[pos:])
	pos += 4
	hdrEnd := pos

	if count > 1<<33 || blockSize == 0 || blockSize > 1<<20 {
		return nil, fmt.Errorf("%w: implausible count %d / block size %d", ErrFormat, count, blockSize)
	}
	// Every directory record is at least 4 bytes (four 1-byte fields) —
	// 8 on v3, which appends a fixed 4-byte CRC — so nblocks is bounded
	// by the directory it claims to describe, checked before any
	// nblocks-sized allocation.
	recMin := uint64(4)
	if version == 3 {
		recMin = 8
	}
	idxEnd := hdrEnd + int(dirLen)
	payloadOff := idxEnd + 4
	if dirLen > uint64(size) || payloadOff+int(payloadLen) != size {
		return nil, fmt.Errorf("%w: file is %d bytes, index describes %d", ErrFormat, size, payloadOff+int(payloadLen))
	}
	if nblocks > dirLen/recMin {
		return nil, fmt.Errorf("%w: %d blocks cannot fit a %d-byte directory", ErrFormat, nblocks, dirLen)
	}

	idx, err := m.BytesAt(0, idxEnd)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	crcb, err := m.BytesAt(idxEnd, 4)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if got, want := crc32.ChecksumIEEE(idx), binary.LittleEndian.Uint32(crcb); got != want {
		return nil, fmt.Errorf("%w: index CRC mismatch (got %08x, want %08x)", ErrFormat, got, want)
	}

	out := &snapFileIndex[A]{
		version:    version,
		proto:      proto,
		month:      int(month),
		count:      int(count),
		blockSize:  int(blockSize),
		payloadCRC: payloadCRC,
		payloadOff: payloadOff,
		payloadLen: int(payloadLen),
		mins:       make([]A, nblocks),
		maxs:       make([]A, nblocks),
		counts:     make([]int, nblocks),
		blens:      make([]int, nblocks),
	}
	if version == 3 {
		out.crcs = make([]uint32, nblocks)
	}
	dir := idx[hdrEnd:]
	dpos := 0
	total := 0
	var prevMin A
	for i := 0; i < int(nblocks); i++ {
		minDelta, n := netaddr.DecodeKeyUvarint[A](dir[dpos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated directory at block %d", ErrFormat, i)
		}
		dpos += n
		span, n := netaddr.DecodeKeyUvarint[A](dir[dpos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated directory at block %d", ErrFormat, i)
		}
		dpos += n
		cnt, n := binary.Uvarint(dir[dpos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated directory at block %d", ErrFormat, i)
		}
		dpos += n
		bl, n := binary.Uvarint(dir[dpos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated directory at block %d", ErrFormat, i)
		}
		dpos += n
		if version == 3 {
			if dpos+4 > len(dir) {
				return nil, fmt.Errorf("%w: truncated directory at block %d", ErrFormat, i)
			}
			out.crcs[i] = binary.LittleEndian.Uint32(dir[dpos:])
			dpos += 4
		}
		min := minDelta
		if i > 0 {
			min = netaddr.KeyAdd(prevMin, minDelta)
			if min.Compare(prevMin) < 0 {
				return nil, fmt.Errorf("%w: block %d min wraps the address space", ErrFormat, i)
			}
		}
		max := netaddr.KeyAdd(min, span)
		if max.Compare(min) < 0 {
			return nil, fmt.Errorf("%w: block %d max wraps the address space", ErrFormat, i)
		}
		if cnt > uint64(blockSize) || bl > uint64(payloadLen) {
			return nil, fmt.Errorf("%w: block %d directory entry out of range", ErrFormat, i)
		}
		out.mins[i] = min
		out.maxs[i] = max
		out.counts[i] = int(cnt)
		out.blens[i] = int(bl)
		total += int(cnt)
		prevMin = min
	}
	if dpos != len(dir) {
		return nil, fmt.Errorf("%w: directory has %d trailing bytes", ErrFormat, len(dir)-dpos)
	}
	if total != out.count {
		return nil, fmt.Errorf("%w: directory counts sum to %d, header says %d", ErrFormat, total, out.count)
	}
	return out, nil
}

// fileSource serves block extents from the payload region of an open
// snapshot file; it is the mmap/pread BlockSource behind lazy sets.
type fileSource struct {
	f    *mmapfile.File
	base int
	size int
}

func (s *fileSource) Bytes(off, n int) ([]byte, error) { return s.f.BytesAt(s.base+off, n) }
func (s *fileSource) Size() int                        { return s.size }

// blockCheckSource wraps a BlockSource with the v3 per-block CRCs:
// every whole-block extent read is checksummed against the (index-CRC
// protected) directory before the decoder sees a byte. The check runs
// at first decode — and again if the block is evicted and re-faulted —
// never at open, so cold opens stay O(blocks). Extents that are not
// exactly one block pass through unchecked; the addrset core only ever
// reads whole blocks.
type blockCheckSource struct {
	src  addrset.BlockSource
	offs []int // ascending block start offsets within the payload
	lens []int
	crcs []uint32
}

func (s *blockCheckSource) Bytes(off, n int) ([]byte, error) {
	b, err := s.src.Bytes(off, n)
	if err != nil {
		return nil, err
	}
	i := sort.SearchInts(s.offs, off)
	// Zero-length blocks (single-address) share their offset with the
	// next block; scan past them to the extent that matches.
	for i < len(s.offs) && s.offs[i] == off && s.lens[i] != n {
		i++
	}
	if i < len(s.offs) && s.offs[i] == off && s.lens[i] == n {
		if got := crc32.ChecksumIEEE(b); got != s.crcs[i] {
			return nil, fmt.Errorf("block CRC mismatch (got %08x, want %08x)", got, s.crcs[i])
		}
	}
	return b, nil
}

func (s *blockCheckSource) Size() int { return s.src.Size() }

// snapBlockSource builds the BlockSource for a parsed index: the raw
// payload extent server, wrapped with per-block CRC checking when the
// file carries v3 checksums.
func snapBlockSource[A netaddr.Key[A]](m *mmapfile.File, idx *snapFileIndex[A]) addrset.BlockSource {
	var src addrset.BlockSource = &fileSource{f: m, base: idx.payloadOff, size: idx.payloadLen}
	if idx.crcs == nil {
		return src
	}
	offs := make([]int, len(idx.blens))
	off := 0
	for i, bl := range idx.blens {
		offs[i] = off
		off += bl
	}
	return &blockCheckSource{src: src, offs: offs, lens: idx.blens, crcs: idx.crcs}
}

// OpenSnapshotFile opens an IPv4 snapshot file lazily with the default
// decoded-block cache cap. See OpenSnapshotFileOf.
func OpenSnapshotFile(path string) (*Snapshot, error) {
	return OpenSnapshotFileOf[netaddr.Addr](path, 0)
}

// OpenSnapshotFileOf opens a snapshot file of family A. A TASSNAP2/3
// file opens in O(blocks): the index is parsed and CRC-checked, the
// payload is mapped (pread on platforms without mmap) and blocks decode
// on first touch, cached in an LRU capped at cacheBlocks decoded blocks
// (0 means the addrset default). The returned snapshot is lazy: Addrs
// is nil, counting and selection run off the block index, and Close
// must be called to release the mapping.
//
// Payload integrity is checked lazily, per block, at first decode: a
// v3 file verifies each block's CRC against the directory, a v2 file
// falls back to checking the decoded population and max address against
// the index. Damage surfaces as a typed *addrset.BlockError through the
// snapshot's fault plumbing (StorageErr/StorageFaults, FaultPolicy) —
// run VerifySnapshotFile first for an eager whole-file check on files
// of doubtful provenance.
//
// A v1 file (TASSCNS/TASSCN6) is read eagerly as ReadSnapshotOf would,
// so callers can open either format through one entry point.
func OpenSnapshotFileOf[A netaddr.Key[A]](path string, cacheBlocks int) (*SnapshotOf[A], error) {
	m, err := mmapfile.Open(path)
	if err != nil {
		return nil, err
	}
	if int(m.Size()) >= 8 {
		var zero A
		v1 := snapMagic(zero.Width())
		if head, err := m.BytesAt(0, 8); err == nil && bytes.Equal(head, v1[:]) {
			// v1: one eager pass, as before this format existed.
			m.Close()
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return ReadSnapshotOf[A](f)
		}
	}
	idx, err := parseSnapFileIndex[A](m)
	if err != nil {
		m.Close()
		return nil, err
	}
	set, err := addrset.FromIndex(idx.mins, idx.maxs, idx.counts, idx.blens, idx.blockSize, snapBlockSource(m, idx), cacheBlocks)
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return &SnapshotOf[A]{
		Protocol: idx.proto,
		Month:    idx.month,
		set:      set,
		lazy:     true,
		closer:   m,
	}, nil
}

// VerifySnapshotFile deep-checks a snapshot file of any format and
// family. v2/v3 files get the full pass: index CRC, payload CRC, then a
// decode of every block against the directory (and, on v3, its block
// CRC). v1 files have no index to cross-check, so verification is one
// eager decode of the whole stream — the same validation ReadSnapshotOf
// applies. It is the O(addresses) pass that makes the lazy open's
// per-block trust safe for files of unknown provenance.
func VerifySnapshotFile(path string) error {
	m, err := mmapfile.Open(path)
	if err != nil {
		return err
	}
	defer m.Close()
	if int(m.Size()) < 9 {
		return fmt.Errorf("%w: not a snapshot file", ErrFormat)
	}
	head, err := m.BytesAt(0, 9)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if bytes.Equal(head[:8], magic[:]) || bytes.Equal(head[:8], magic6[:]) {
		return verifySnapV1(path, head[:8])
	}
	if head[8] == 6 {
		return verifySnapFile[netaddr.Addr6](m)
	}
	return verifySnapFile[netaddr.Addr](m)
}

// verifySnapV1 verifies a v1 stream file by decoding it in full.
func verifySnapV1(path string, magicBytes []byte) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if bytes.Equal(magicBytes, magic6[:]) {
		_, err = ReadSnapshotOf[netaddr.Addr6](f)
	} else {
		_, err = ReadSnapshotOf[netaddr.Addr](f)
	}
	return err
}

func verifySnapFile[A netaddr.Key[A]](m *mmapfile.File) error {
	idx, err := parseSnapFileIndex[A](m)
	if err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	const chunk = 1 << 20
	for off := 0; off < idx.payloadLen; off += chunk {
		n := idx.payloadLen - off
		if n > chunk {
			n = chunk
		}
		b, err := m.BytesAt(idx.payloadOff+off, n)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrFormat, err)
		}
		crc.Write(b)
	}
	if got := crc.Sum32(); got != idx.payloadCRC {
		return fmt.Errorf("%w: payload CRC mismatch (got %08x, want %08x)", ErrFormat, got, idx.payloadCRC)
	}
	// Cache cap 1: CheckBlocks streams every block once, nothing worth
	// keeping resident. The CRC-checking source makes CheckBlocks verify
	// each v3 block checksum along the way.
	set, err := addrset.FromIndex(idx.mins, idx.maxs, idx.counts, idx.blens, idx.blockSize, snapBlockSource(m, idx), 1)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if err := set.CheckBlocks(); err != nil {
		return fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return nil
}

// WriteSnapshotFile writes an IPv4 snapshot to path in TASSNAP3 format.
// See WriteSnapshotFileOf.
func WriteSnapshotFile(path string, s *Snapshot) error {
	return WriteSnapshotFileOf(path, s)
}

// WriteSnapshotFileOf writes a snapshot of any family to path in
// TASSNAP3 format, atomically (temp file + rename). The payload is
// re-encoded from the snapshot's set view into canonical
// fixed-population blocks, so overlay-carrying snapshots (ApplyDelta
// output) and lazy snapshots serialize to the same bytes as a freshly
// built equal snapshot. Memory stays O(blocks): the encode runs twice —
// once to size the directory and checksum the payload, once to stream
// the payload to disk — rather than buffering the payload.
func WriteSnapshotFileOf[A netaddr.Key[A]](path string, s *SnapshotOf[A]) error {
	set := s.Set()
	return writeSnapStream(path, s.Protocol, s.Month, set.BlockSize(), set.Walk)
}

// writeSnapStream writes the addresses yielded by walk — which must
// yield the same ascending sequence every time it is called — to path
// as a TASSNAP file (version snapWriteVersion). It is the writer behind
// both WriteSnapshotFileOf (walk = set.Walk) and snapshot repair (walk
// = the intact-blocks-only walk). The two encode passes are cross-
// checked: if the payload streamed in pass 2 diverges in length from
// the directory built in pass 1 (a non-deterministic walk — e.g. a
// storage fault that appeared mid-repair), the write fails instead of
// producing a file whose index lies about its payload.
func writeSnapStream[A netaddr.Key[A]](path, proto string, month, bsize int, walk func(func(A) bool)) error {
	// Pass 1: directory + payload CRC + per-block CRCs, no payload
	// retained.
	var (
		mins, maxs    []A
		counts, blens []int
		crcs          []uint32
		payloadLen    int
		total         int
	)
	crc := crc32.NewIEEE()
	bcrc := crc32.NewIEEE()
	encodeSnapBlocks(walk, bsize,
		func(min A) { mins = append(mins, min); bcrc.Reset() },
		func(b []byte) { crc.Write(b); bcrc.Write(b); payloadLen += len(b) },
		func(max A, count, blen int) {
			maxs = append(maxs, max)
			counts = append(counts, count)
			blens = append(blens, blen)
			crcs = append(crcs, bcrc.Sum32())
			total += count
		})

	version := snapWriteVersion
	magicV := magic3
	if version == 2 {
		magicV = magic2
	}
	var zero A
	var hdr bytes.Buffer
	hdr.Write(magicV[:])
	hdr.WriteByte(familyByte(zero.Width()))
	var vbuf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) { hdr.Write(vbuf[:binary.PutUvarint(vbuf[:], v)]) }
	putUvarint(uint64(len(proto)))
	hdr.WriteString(proto)
	putUvarint(uint64(month))
	putUvarint(uint64(total))
	putUvarint(uint64(bsize))
	putUvarint(uint64(len(mins)))
	putUvarint(uint64(payloadLen))

	var dir bytes.Buffer
	kbuf := make([]byte, 0, 19)
	var crcb [4]byte
	var prevMin A
	for i := range mins {
		minDelta := mins[i]
		if i > 0 {
			minDelta = netaddr.KeySub(mins[i], prevMin)
		}
		dir.Write(netaddr.AppendKeyUvarint(kbuf[:0], minDelta))
		dir.Write(netaddr.AppendKeyUvarint(kbuf[:0], netaddr.KeySub(maxs[i], mins[i])))
		dir.Write(vbuf[:binary.PutUvarint(vbuf[:], uint64(counts[i]))])
		dir.Write(vbuf[:binary.PutUvarint(vbuf[:], uint64(blens[i]))])
		if version >= 3 {
			binary.LittleEndian.PutUint32(crcb[:], crcs[i])
			dir.Write(crcb[:])
		}
		prevMin = mins[i]
	}
	putUvarint(uint64(dir.Len()))
	binary.LittleEndian.PutUint32(crcb[:], crc.Sum32())
	hdr.Write(crcb[:])
	hdr.Write(dir.Bytes())

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	bw := bufio.NewWriterSize(f, 1<<16)
	idxCRC := crc32.ChecksumIEEE(hdr.Bytes())
	binary.LittleEndian.PutUint32(crcb[:], idxCRC)
	var werr error
	written := 0
	write := func(b []byte) {
		if werr == nil {
			_, werr = bw.Write(b)
		}
	}
	write(hdr.Bytes())
	write(crcb[:])
	// Pass 2: stream the payload, counting bytes against pass 1.
	encodeSnapBlocks(walk, bsize, func(A) {}, func(b []byte) { write(b); written += len(b) }, func(A, int, int) {})
	if werr == nil && written != payloadLen {
		werr = fmt.Errorf("census: snapshot encode not deterministic: pass 1 sized %d payload bytes, pass 2 wrote %d", payloadLen, written)
	}
	if werr != nil {
		f.Close()
		return werr
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// encodeSnapBlocks consumes walk's ascending address sequence,
// re-encoding it into fixed-population blocks of bsize addresses:
// startBlock fires with each block's first address, deltaBytes with
// every encoded delta, and endBlock with the block's last address,
// population, and encoded byte length. Two invocations over the same
// walk produce identical byte streams — the property the two-pass file
// writer depends on.
func encodeSnapBlocks[A netaddr.Key[A]](walk func(func(A) bool), bsize int,
	startBlock func(min A), deltaBytes func(b []byte), endBlock func(max A, count, blen int)) {
	kbuf := make([]byte, 0, 19)
	var prev A
	inBlk, blen := 0, 0
	walk(func(a A) bool {
		if inBlk == bsize {
			endBlock(prev, inBlk, blen)
			inBlk, blen = 0, 0
		}
		if inBlk == 0 {
			startBlock(a)
		} else {
			b := netaddr.AppendKeyUvarint(kbuf[:0], netaddr.KeySub(a, prev))
			deltaBytes(b)
			blen += len(b)
		}
		prev = a
		inBlk++
		return true
	})
	if inBlk > 0 {
		endBlock(prev, inBlk, blen)
	}
}

// ConvertSnapshotFile reads a v1 snapshot stream from r and writes it
// to path as TASSNAP3. It is the library half of `tass convert`.
func ConvertSnapshotFile[A netaddr.Key[A]](r io.Reader, path string) error {
	snap, err := ReadSnapshotOf[A](r)
	if err != nil {
		return err
	}
	return WriteSnapshotFileOf(path, snap)
}
