// Package census stores full-scan observations: for each protocol and
// month, the sorted set of responsive IPv4 addresses. It plays the role of
// the censys.io snapshot archive in the paper — the ground truth that
// selection strategies are seeded from and evaluated against.
//
// Snapshots serialize to a compact binary format (varint delta coding of
// the sorted address set, typically ~1.5 bytes/host) so that a six-month,
// four-protocol series fits comfortably on disk and loads in milliseconds.
package census

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// Snapshot is one full-scan observation: every responsive address for one
// protocol in one measurement month. Addrs is sorted and duplicate-free.
type Snapshot struct {
	Protocol string
	Month    int
	Addrs    []netaddr.Addr
}

// NewSnapshot builds a snapshot from addrs, copying, sorting and
// de-duplicating the input.
func NewSnapshot(protocol string, month int, addrs []netaddr.Addr) *Snapshot {
	cp := make([]netaddr.Addr, len(addrs))
	copy(cp, addrs)
	SortAddrs(cp)
	w := 0
	for i, a := range cp {
		if i > 0 && cp[w-1] == a {
			continue
		}
		cp[w] = a
		w++
	}
	return &Snapshot{Protocol: protocol, Month: month, Addrs: cp[:w]}
}

// Hosts returns the number of responsive addresses.
func (s *Snapshot) Hosts() int { return len(s.Addrs) }

// Contains reports whether a responded in this snapshot.
func (s *Snapshot) Contains(a netaddr.Addr) bool {
	i := sort.Search(len(s.Addrs), func(i int) bool { return s.Addrs[i] >= a })
	return i < len(s.Addrs) && s.Addrs[i] == a
}

// CountByPrefix counts responsive addresses per partition prefix. The
// second result is the number of addresses outside the partition.
func (s *Snapshot) CountByPrefix(p rib.Partition) (counts []int, outside int) {
	return p.CountAddrs(s.Addrs)
}

// CountIn returns how many of the snapshot's addresses fall inside the
// partition (e.g. a TASS selection).
func (s *Snapshot) CountIn(p rib.Partition) int {
	counts, _ := p.CountAddrs(s.Addrs)
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// IntersectCount returns |a ∩ b| for two sorted address sets.
func IntersectCount(a, b []netaddr.Addr) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Binary format:
//
//	magic   [8]byte  "TASSCNS\x01"
//	proto   uvarint length + bytes
//	month   uvarint
//	count   uvarint
//	addrs   count uvarints: first value absolute, then deltas (>=1)
var magic = [8]byte{'T', 'A', 'S', 'S', 'C', 'N', 'S', 1}

// ErrFormat reports a malformed snapshot stream.
var ErrFormat = errors.New("census: malformed snapshot")

// WriteTo serializes the snapshot. It implements io.WriterTo.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	write := func(b []byte) error {
		m, err := bw.Write(b)
		n += int64(m)
		return err
	}
	if err := write(magic[:]); err != nil {
		return n, err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		return write(buf[:binary.PutUvarint(buf[:], v)])
	}
	if err := putUvarint(uint64(len(s.Protocol))); err != nil {
		return n, err
	}
	if err := write([]byte(s.Protocol)); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(s.Month)); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(len(s.Addrs))); err != nil {
		return n, err
	}
	prev := uint64(0)
	for i, a := range s.Addrs {
		v := uint64(a)
		if i > 0 {
			if v <= prev {
				return n, fmt.Errorf("%w: addresses not strictly ascending", ErrFormat)
			}
			if err := putUvarint(v - prev); err != nil {
				return n, err
			}
		} else {
			if err := putUvarint(v); err != nil {
				return n, err
			}
		}
		prev = v
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadSnapshot parses one snapshot from r. When r is already a
// *bufio.Reader it is used directly, so back-to-back snapshots in one
// stream are not disturbed by read-ahead.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("census: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, got[:])
	}
	protoLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	if protoLen > 255 {
		return nil, fmt.Errorf("%w: protocol name length %d", ErrFormat, protoLen)
	}
	proto := make([]byte, protoLen)
	if _, err := io.ReadFull(br, proto); err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	month, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("%w: impossible host count %d", ErrFormat, count)
	}
	addrs := make([]netaddr.Addr, count)
	prev := uint64(0)
	for i := range addrs {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("census: address %d: %w", i, err)
		}
		v := d
		if i > 0 {
			if d == 0 {
				return nil, fmt.Errorf("%w: zero delta", ErrFormat)
			}
			v = prev + d
		}
		if v > 0xFFFFFFFF {
			return nil, fmt.Errorf("%w: address overflow", ErrFormat)
		}
		addrs[i] = netaddr.Addr(v)
		prev = v
	}
	return &Snapshot{Protocol: string(proto), Month: int(month), Addrs: addrs}, nil
}

// Series is the monthly snapshot sequence for one protocol, ordered by
// month.
type Series struct {
	Protocol  string
	Snapshots []*Snapshot
}

// Months returns the number of snapshots in the series.
func (s *Series) Months() int { return len(s.Snapshots) }

// At returns the snapshot for the given month index.
func (s *Series) At(month int) *Snapshot { return s.Snapshots[month] }

// WriteTo serializes all snapshots back to back.
func (s *Series) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, snap := range s.Snapshots {
		n, err := snap.WriteTo(w)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadSeries parses back-to-back snapshots until EOF. All snapshots must
// belong to one protocol and be ordered by month.
func ReadSeries(r io.Reader) (*Series, error) {
	br := bufio.NewReader(r)
	s := &Series{}
	for {
		if _, err := br.Peek(1); errors.Is(err, io.EOF) {
			if len(s.Snapshots) == 0 {
				return nil, fmt.Errorf("%w: empty series", ErrFormat)
			}
			return s, nil
		}
		snap, err := ReadSnapshot(br)
		if err != nil {
			return nil, err
		}
		if s.Protocol == "" {
			s.Protocol = snap.Protocol
		} else if s.Protocol != snap.Protocol {
			return nil, fmt.Errorf("%w: mixed protocols %q and %q", ErrFormat, s.Protocol, snap.Protocol)
		}
		if n := len(s.Snapshots); n > 0 && s.Snapshots[n-1].Month >= snap.Month {
			return nil, fmt.Errorf("%w: months out of order", ErrFormat)
		}
		s.Snapshots = append(s.Snapshots, snap)
	}
}
