// Package census stores full-scan observations: for each protocol and
// month, the sorted set of responsive addresses. It plays the role of
// the censys.io snapshot archive in the paper — the ground truth that
// selection strategies are seeded from and evaluated against.
//
// Snapshots are generic over the address family (SnapshotOf); Snapshot
// is the IPv4 instantiation. They serialize to a compact binary format
// (varint delta coding of the sorted address set, typically ~1.5
// bytes/host for IPv4) so that a six-month, four-protocol series fits
// comfortably on disk and loads in milliseconds. The wire format is
// family-tagged through the magic ("TASSCNS" for IPv4, "TASSCN6" for
// IPv6), so a reader can never silently decode a snapshot of the wrong
// family; the IPv4 byte layout is unchanged from the pre-generic codec.
package census

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// SnapshotOf is one full-scan observation: every responsive address for
// one protocol in one measurement month. Addrs is sorted and
// duplicate-free.
//
// Snapshots are handled by pointer (the lazily built set view carries a
// lock); use NewSnapshot or a &Snapshot{...} literal.
type SnapshotOf[A netaddr.Key[A]] struct {
	Protocol string
	Month    int
	Addrs    []A

	setMu sync.Mutex
	set   *addrset.SetOf[A] // memoized block-indexed view of Addrs

	// lazy marks a snapshot whose addresses live only in set (typically
	// a lazily-decoded view over a TASSNAP2 file): Addrs stays nil and
	// every counting/serialization path routes through the set. Use
	// Materialize to obtain an Addrs-backed copy when a caller needs the
	// slice itself.
	lazy bool

	// closer releases the storage backing a lazy snapshot (the mapped
	// census file); nil otherwise.
	closer io.Closer

	// gen counts in-place mutations (Apply): identity-keyed caches
	// include it so counts memoized before a mutation are never served
	// afterwards. Snapshots that are never mutated stay at generation
	// 0. Atomic rather than setMu-guarded: cache lookups read it on
	// every hit and must not serialize behind a concurrent first-time
	// Set() build.
	gen atomic.Uint64
}

// Snapshot is the IPv4 instantiation of SnapshotOf.
type Snapshot = SnapshotOf[netaddr.Addr]

// Generation returns the snapshot's mutation generation: 0 for a
// freshly built snapshot, incremented by every in-place Apply. Caches
// keyed by snapshot identity must key on (pointer, generation) so an
// in-place delta application invalidates exactly the mutated
// snapshot's entries.
func (s *SnapshotOf[A]) Generation() uint64 { return s.gen.Load() }

// Set returns the block-indexed view of the snapshot's address set,
// building it on first use and memoizing it. Snapshots parsed by
// ReadSnapshot arrive with the view prebuilt (the codec decodes the
// wire delta stream straight into blocks). The returned set is
// immutable and safe for concurrent use.
func (s *SnapshotOf[A]) Set() *addrset.SetOf[A] {
	s.setMu.Lock()
	defer s.setMu.Unlock()
	if s.set == nil {
		s.set = addrset.FromSorted(s.Addrs, 0)
	}
	return s.set
}

// sortFamily sorts an address slice ascending, routing IPv4 to the
// radix SortAddrs (the dominant cost of snapshot construction) and
// other families to the comparator sort.
func sortFamily[A netaddr.Key[A]](addrs []A) {
	if v4, ok := any(addrs).([]netaddr.Addr); ok {
		SortAddrs(v4)
		return
	}
	netaddr.SortKeys(addrs)
}

// NewSnapshot builds an IPv4 snapshot from addrs, copying, sorting and
// de-duplicating the input. It stays concrete so untyped nil inputs
// keep compiling; NewSnapshotOf is the family-generic constructor.
func NewSnapshot(protocol string, month int, addrs []netaddr.Addr) *Snapshot {
	return NewSnapshotOf(protocol, month, addrs)
}

// NewSnapshotOf builds a snapshot from addrs of any family, copying,
// sorting and de-duplicating the input.
func NewSnapshotOf[A netaddr.Key[A]](protocol string, month int, addrs []A) *SnapshotOf[A] {
	cp := make([]A, len(addrs))
	copy(cp, addrs)
	sortFamily(cp)
	w := 0
	for i, a := range cp {
		if i > 0 && cp[w-1] == a {
			continue
		}
		cp[w] = a
		w++
	}
	return &SnapshotOf[A]{Protocol: protocol, Month: month, Addrs: cp[:w]}
}

// NewSnapshotSorted wraps an already sorted, duplicate-free address
// slice without copying; the snapshot takes ownership of addrs. When
// prebuildSet is true the block-indexed Set() view is built eagerly
// (one sequential encode pass) instead of lazily on first use, so
// snapshots handed straight to concurrent counting never contend on
// the lazy-build lock. It is the zero-copy fast path behind the churn
// extraction arena; callers must uphold the ordering invariant
// (violations surface as a panic from the set builder or as wrong
// counts downstream).
func NewSnapshotSorted[A netaddr.Key[A]](protocol string, month int, addrs []A, prebuildSet bool) *SnapshotOf[A] {
	s := &SnapshotOf[A]{Protocol: protocol, Month: month, Addrs: addrs}
	if prebuildSet {
		s.set = addrset.FromSorted(addrs, 0)
	}
	return s
}

// Hosts returns the number of responsive addresses.
func (s *SnapshotOf[A]) Hosts() int {
	if s.lazy {
		return s.Set().Len()
	}
	return len(s.Addrs)
}

// Lazy reports whether the snapshot's addresses live only behind the
// block-indexed set view (Addrs is nil); see OpenSnapshotFile.
func (s *SnapshotOf[A]) Lazy() bool { return s.lazy }

// Close releases the storage backing a lazy snapshot (the mapped census
// file). It is a no-op for in-memory snapshots. The snapshot must not
// be used after Close.
func (s *SnapshotOf[A]) Close() error {
	if s.closer == nil {
		return nil
	}
	c := s.closer
	s.closer = nil
	return c.Close()
}

// SetFaultPolicy sets how the snapshot's set view treats failed block
// reads (lazy snapshots only — eager snapshots never fault). FailFast,
// the default, makes StorageErr return the first fault so counting
// consumers refuse damaged results; Degrade keeps counting around
// damaged blocks and only records them (see StorageFaults). Set it
// before handing the snapshot to concurrent readers.
func (s *SnapshotOf[A]) SetFaultPolicy(p addrset.FaultPolicy) { s.Set().SetFaultPolicy(p) }

// StorageErr returns the storage fault a counting pass over this
// snapshot should surface: under FailFast the first block fault
// recorded so far (a *addrset.BlockError), under Degrade (or on a
// clean or eager snapshot) nil. Integrity-checking consumers call it
// after a pass over the set view.
func (s *SnapshotOf[A]) StorageErr() error {
	s.setMu.Lock()
	set := s.set
	s.setMu.Unlock()
	if set == nil {
		return nil
	}
	return set.ReadErr()
}

// StorageFaults returns every storage fault recorded against the
// snapshot's set view so far, one entry per damaged block, regardless
// of policy — under Degrade this is how a surviving consumer learns
// what its counts are missing.
func (s *SnapshotOf[A]) StorageFaults() []addrset.BlockError {
	s.setMu.Lock()
	set := s.set
	s.setMu.Unlock()
	if set == nil {
		return nil
	}
	return set.Faults()
}

// Materialize returns an Addrs-backed snapshot with the same contents:
// the receiver when it is already eager, otherwise a fully decoded copy
// (O(hosts) — the one operation a lazy snapshot cannot avoid paying in
// full). The copy shares the receiver's set view and stays valid only
// while the receiver is open.
func (s *SnapshotOf[A]) Materialize() *SnapshotOf[A] {
	if !s.lazy {
		return s
	}
	set := s.Set()
	return &SnapshotOf[A]{
		Protocol: s.Protocol,
		Month:    s.Month,
		Addrs:    set.AppendTo(make([]A, 0, set.Len())),
		set:      set,
	}
}

// addrsView returns the snapshot's addresses as a slice, decoding a
// lazy snapshot in full. Internal paths that genuinely need the slice
// (Diff's merge walk) go through here; counting paths must not.
func (s *SnapshotOf[A]) addrsView() []A {
	if s.lazy {
		set := s.Set()
		return set.AppendTo(make([]A, 0, set.Len()))
	}
	return s.Addrs
}

// Contains reports whether a responded in this snapshot.
func (s *SnapshotOf[A]) Contains(a A) bool {
	if s.lazy {
		return s.Set().Contains(a)
	}
	i := sort.Search(len(s.Addrs), func(i int) bool { return s.Addrs[i].Compare(a) >= 0 })
	return i < len(s.Addrs) && s.Addrs[i] == a
}

// CountByPrefix counts responsive addresses per partition prefix. The
// second result is the number of addresses outside the partition.
// Sparse partitions (few prefixes relative to the address count) are
// answered from the block index via per-prefix range counts; dense ones
// fall back to the merge walk, which wins when most addresses land in
// some prefix anyway (see DESIGN.md on the crossover).
func (s *SnapshotOf[A]) CountByPrefix(p rib.PartOf[A]) (counts []int, outside int) {
	if s.lazy || sparseFor(p.Len(), len(s.Addrs)) {
		return p.CountAddrsSet(s.Set())
	}
	return p.CountAddrs(s.Addrs)
}

// sparseFor reports whether the K-prefix/N-address shape favors the
// block-index range counts over the O(N+K) merge walk. A range count
// pays up to two boundary-block decodes per prefix (2·K·blocksize
// varints, each a few times the cost of the merge walk's compare), so
// the index only wins once that worst case sits clearly below N. The
// factor 8 is conservative: near the boundary both paths are within a
// small constant of each other either way (see DESIGN.md).
func sparseFor(prefixes, addrs int) bool {
	return prefixes*8*addrset.DefaultBlockSize < addrs
}

// CountIn returns how many of the snapshot's addresses fall inside the
// partition (e.g. a TASS selection). Neither path materializes the
// per-prefix count slice. Sparse selections — the reseed and hitrate
// shape: small K over large N — sum per-prefix range counts off the
// block index, two index lookups per prefix, O(K log B) instead of
// O(N+K); dense selections keep the merge walk, summing inline.
func (s *SnapshotOf[A]) CountIn(p rib.PartOf[A]) int {
	total := 0
	if s.lazy || sparseFor(p.Len(), len(s.Addrs)) {
		ctr := s.Set().Counter()
		for i := 0; i < p.Len(); i++ {
			total += ctr.Count(p.FirstAt(i), p.LastAt(i))
		}
		return total
	}
	if s4, ok := any(s).(*Snapshot); ok {
		return countIn32(s4, any(p).(rib.Partition))
	}
	i := 0
	for _, a := range s.Addrs {
		for i < p.Len() && p.LastAt(i).Compare(a) < 0 {
			i++
		}
		if i == p.Len() {
			break
		}
		if a.Compare(p.FirstAt(i)) >= 0 {
			total++
		}
	}
	return total
}

// countIn32 is the concrete IPv4 merge walk behind CountIn: it touches
// every snapshot address, so the inner compares must stay direct uint32
// operations rather than dictionary calls.
func countIn32(s *Snapshot, p rib.Partition) int {
	total := 0
	i := 0
	n := p.Len()
	for _, a := range s.Addrs {
		for i < n && p.LastAt(i) < a {
			i++
		}
		if i == n {
			break
		}
		if a >= p.FirstAt(i) {
			total++
		}
	}
	return total
}

// IntersectWith returns |s ∩ t|. Lopsided pairs (one snapshot far
// smaller than the other) use the galloping block-index intersection,
// which skips the large set's unique runs at block granularity;
// similar-sized pairs keep the element-wise merge, which wins when
// neither cursor can skip far (snapshots of adjacent months share most
// hosts).
func (s *SnapshotOf[A]) IntersectWith(t *SnapshotOf[A]) int {
	small, large := s, t
	if small.Hosts() > large.Hosts() {
		small, large = large, small
	}
	if s.lazy || t.lazy || small.Hosts()*16 < large.Hosts() {
		return small.Set().IntersectCount(large.Set())
	}
	return IntersectCount(s.Addrs, t.Addrs)
}

// IntersectCount returns |a ∩ b| for two sorted address sets.
func IntersectCount[A netaddr.Key[A]](a, b []A) int {
	if a4, ok := any(a).([]netaddr.Addr); ok {
		return intersectCount32(a4, any(b).([]netaddr.Addr))
	}
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch c := a[i].Compare(b[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func intersectCount32(a, b []netaddr.Addr) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Binary format:
//
//	magic   [8]byte  "TASSCNS\x01" (IPv4) or "TASSCN6\x01" (IPv6)
//	proto   uvarint length + bytes
//	month   uvarint
//	count   uvarint
//	addrs   count uvarints: first value absolute, then deltas (>=1)
//
// Address uvarints are LEB128 of the full family width: for IPv4 the
// bytes coincide with encoding/binary's PutUvarint, so pre-generic
// snapshot files read back unchanged; IPv6 deltas may span up to 19
// bytes.
var (
	magic  = [8]byte{'T', 'A', 'S', 'S', 'C', 'N', 'S', 1}
	magic6 = [8]byte{'T', 'A', 'S', 'S', 'C', 'N', '6', 1}
)

// snapMagic returns the snapshot magic for an address width.
func snapMagic(width int) [8]byte {
	if width == 32 {
		return magic
	}
	return magic6
}

// ErrFormat reports a malformed snapshot stream.
var ErrFormat = errors.New("census: malformed snapshot")

// WriteTo serializes the snapshot. It implements io.WriterTo.
func (s *SnapshotOf[A]) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	write := func(b []byte) error {
		m, err := bw.Write(b)
		n += int64(m)
		return err
	}
	var zero A
	m := snapMagic(zero.Width())
	if err := write(m[:]); err != nil {
		return n, err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		return write(buf[:binary.PutUvarint(buf[:], v)])
	}
	if err := putUvarint(uint64(len(s.Protocol))); err != nil {
		return n, err
	}
	if err := write([]byte(s.Protocol)); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(s.Month)); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(s.Hosts())); err != nil {
		return n, err
	}
	kbuf := make([]byte, 0, 19)
	prev := zero
	i := 0
	var werr error
	emit := func(a A) bool {
		v := a
		if i > 0 {
			if a.Compare(prev) <= 0 {
				werr = fmt.Errorf("%w: addresses not strictly ascending", ErrFormat)
				return false
			}
			v = netaddr.KeySub(a, prev)
		}
		if err := write(netaddr.AppendKeyUvarint(kbuf[:0], v)); err != nil {
			werr = err
			return false
		}
		prev = a
		i++
		return true
	}
	if s.lazy {
		// Stream straight off the block index: one block resident at a
		// time, never the whole census.
		s.Set().Walk(emit)
	} else {
		for _, a := range s.Addrs {
			if !emit(a) {
				break
			}
		}
	}
	if werr != nil {
		return n, werr
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadSnapshot parses one IPv4 snapshot from r. When r is already a
// *bufio.Reader it is used directly, so back-to-back snapshots in one
// stream are not disturbed by read-ahead.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	return ReadSnapshotOf[netaddr.Addr](r)
}

// ReadSnapshot6 parses one IPv6 snapshot from r.
func ReadSnapshot6(r io.Reader) (*SnapshotOf[netaddr.Addr6], error) {
	return ReadSnapshotOf[netaddr.Addr6](r)
}

// ReadSnapshotOf parses one snapshot of family A from r; a snapshot of
// the other family fails the magic check. When r is already a
// *bufio.Reader it is used directly, so back-to-back snapshots in one
// stream are not disturbed by read-ahead.
func ReadSnapshotOf[A netaddr.Key[A]](r io.Reader) (*SnapshotOf[A], error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var zero A
	want := snapMagic(zero.Width())
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("census: reading magic: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, got[:])
	}
	protoLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	if protoLen > 255 {
		return nil, fmt.Errorf("%w: protocol name length %d", ErrFormat, protoLen)
	}
	proto := make([]byte, protoLen)
	if _, err := io.ReadFull(br, proto); err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	month, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("%w: impossible host count %d", ErrFormat, count)
	}
	// Every address costs at least one byte on the wire, so a declared
	// count must be covered by at least that many remaining input bytes.
	// Peek as far as the read-ahead buffer allows before allocating
	// anything: a truncated header claiming millions of hosts fails here
	// instead of allocating and then erroring mid-decode.
	if count > 0 {
		want := int(count)
		if want > br.Size() {
			want = br.Size()
		}
		if peeked, _ := br.Peek(want); len(peeked) < want {
			return nil, fmt.Errorf("%w: declared %d hosts but only %d bytes remain",
				ErrFormat, count, len(peeked))
		}
	}
	// The count is attacker-controlled until the deltas actually decode:
	// cap the up-front allocation and grow while decoding, so a 9-byte
	// stream declaring 2^32 hosts cannot demand gigabytes.
	capHint := int(count)
	if capHint > maxAddrPrealloc {
		capHint = maxAddrPrealloc
	}
	addrs := make([]A, 0, capHint)
	// The wire format is the same ascending delta stream the block
	// layout stores, so the set view is encoded directly as the varints
	// decode — no intermediate pass over a materialized slice.
	sb := addrset.NewBuilderOf[A](0, capHint)
	prev := zero
	for i := 0; i < int(count); i++ {
		d, err := netaddr.ReadKeyUvarint[A](br)
		if err != nil {
			if errors.Is(err, netaddr.ErrOverflow) {
				return nil, fmt.Errorf("%w: address overflow", ErrFormat)
			}
			return nil, fmt.Errorf("census: address %d: %w", i, err)
		}
		v := d
		if i > 0 {
			if d == zero {
				return nil, fmt.Errorf("%w: zero delta", ErrFormat)
			}
			v = netaddr.KeyAdd(prev, d)
			// The delta fits the width, but the sum may still wrap past
			// the top of the address space.
			if v.Compare(prev) <= 0 {
				return nil, fmt.Errorf("%w: address overflow", ErrFormat)
			}
		}
		addrs = append(addrs, v)
		if err := sb.Append(v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		prev = v
	}
	return &SnapshotOf[A]{Protocol: string(proto), Month: int(month), Addrs: addrs, set: sb.Finish()}, nil
}

// maxAddrPrealloc caps the address-slice allocation made before any
// delta of the stream has decoded (1 MiB worth of IPv4 addresses).
const maxAddrPrealloc = 1 << 18

// SeriesOf is the monthly snapshot sequence for one protocol, ordered
// by month.
type SeriesOf[A netaddr.Key[A]] struct {
	Protocol  string
	Snapshots []*SnapshotOf[A]
}

// Series is the IPv4 instantiation of SeriesOf.
type Series = SeriesOf[netaddr.Addr]

// Months returns the number of snapshots in the series.
func (s *SeriesOf[A]) Months() int { return len(s.Snapshots) }

// At returns the snapshot for the given month index.
func (s *SeriesOf[A]) At(month int) *SnapshotOf[A] { return s.Snapshots[month] }

// WriteTo serializes all snapshots back to back.
func (s *SeriesOf[A]) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, snap := range s.Snapshots {
		n, err := snap.WriteTo(w)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadSeries parses back-to-back IPv4 snapshots until EOF.
func ReadSeries(r io.Reader) (*Series, error) {
	return ReadSeriesOf[netaddr.Addr](r)
}

// ReadSeriesOf parses back-to-back snapshots of family A until EOF. All
// snapshots must belong to one protocol and be ordered by month.
func ReadSeriesOf[A netaddr.Key[A]](r io.Reader) (*SeriesOf[A], error) {
	br := bufio.NewReader(r)
	s := &SeriesOf[A]{}
	for {
		if _, err := br.Peek(1); errors.Is(err, io.EOF) {
			if len(s.Snapshots) == 0 {
				return nil, fmt.Errorf("%w: empty series", ErrFormat)
			}
			return s, nil
		}
		snap, err := ReadSnapshotOf[A](br)
		if err != nil {
			return nil, err
		}
		if s.Protocol == "" {
			s.Protocol = snap.Protocol
		} else if s.Protocol != snap.Protocol {
			return nil, fmt.Errorf("%w: mixed protocols %q and %q", ErrFormat, s.Protocol, snap.Protocol)
		}
		if n := len(s.Snapshots); n > 0 && s.Snapshots[n-1].Month >= snap.Month {
			return nil, fmt.Errorf("%w: months out of order", ErrFormat)
		}
		s.Snapshots = append(s.Snapshots, snap)
	}
}
