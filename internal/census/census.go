// Package census stores full-scan observations: for each protocol and
// month, the sorted set of responsive IPv4 addresses. It plays the role of
// the censys.io snapshot archive in the paper — the ground truth that
// selection strategies are seeded from and evaluated against.
//
// Snapshots serialize to a compact binary format (varint delta coding of
// the sorted address set, typically ~1.5 bytes/host) so that a six-month,
// four-protocol series fits comfortably on disk and loads in milliseconds.
package census

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// Snapshot is one full-scan observation: every responsive address for one
// protocol in one measurement month. Addrs is sorted and duplicate-free.
//
// Snapshots are handled by pointer (the lazily built set view carries a
// lock); use NewSnapshot or a &Snapshot{...} literal.
type Snapshot struct {
	Protocol string
	Month    int
	Addrs    []netaddr.Addr

	setMu sync.Mutex
	set   *addrset.Set // memoized block-indexed view of Addrs

	// gen counts in-place mutations (Apply): identity-keyed caches
	// include it so counts memoized before a mutation are never served
	// afterwards. Snapshots that are never mutated stay at generation
	// 0. Atomic rather than setMu-guarded: cache lookups read it on
	// every hit and must not serialize behind a concurrent first-time
	// Set() build.
	gen atomic.Uint64
}

// Generation returns the snapshot's mutation generation: 0 for a
// freshly built snapshot, incremented by every in-place Apply. Caches
// keyed by snapshot identity must key on (pointer, generation) so an
// in-place delta application invalidates exactly the mutated
// snapshot's entries.
func (s *Snapshot) Generation() uint64 { return s.gen.Load() }

// Set returns the block-indexed view of the snapshot's address set,
// building it on first use and memoizing it. Snapshots parsed by
// ReadSnapshot arrive with the view prebuilt (the codec decodes the
// wire delta stream straight into blocks). The returned set is
// immutable and safe for concurrent use.
func (s *Snapshot) Set() *addrset.Set {
	s.setMu.Lock()
	defer s.setMu.Unlock()
	if s.set == nil {
		s.set = addrset.FromSorted(s.Addrs, 0)
	}
	return s.set
}

// NewSnapshot builds a snapshot from addrs, copying, sorting and
// de-duplicating the input.
func NewSnapshot(protocol string, month int, addrs []netaddr.Addr) *Snapshot {
	cp := make([]netaddr.Addr, len(addrs))
	copy(cp, addrs)
	SortAddrs(cp)
	w := 0
	for i, a := range cp {
		if i > 0 && cp[w-1] == a {
			continue
		}
		cp[w] = a
		w++
	}
	return &Snapshot{Protocol: protocol, Month: month, Addrs: cp[:w]}
}

// NewSnapshotSorted wraps an already sorted, duplicate-free address
// slice without copying; the snapshot takes ownership of addrs. When
// prebuildSet is true the block-indexed Set() view is built eagerly
// (one sequential encode pass) instead of lazily on first use, so
// snapshots handed straight to concurrent counting never contend on
// the lazy-build lock. It is the zero-copy fast path behind the churn
// extraction arena; callers must uphold the ordering invariant
// (violations surface as a panic from the set builder or as wrong
// counts downstream).
func NewSnapshotSorted(protocol string, month int, addrs []netaddr.Addr, prebuildSet bool) *Snapshot {
	s := &Snapshot{Protocol: protocol, Month: month, Addrs: addrs}
	if prebuildSet {
		s.set = addrset.FromSorted(addrs, 0)
	}
	return s
}

// Hosts returns the number of responsive addresses.
func (s *Snapshot) Hosts() int { return len(s.Addrs) }

// Contains reports whether a responded in this snapshot.
func (s *Snapshot) Contains(a netaddr.Addr) bool {
	i := sort.Search(len(s.Addrs), func(i int) bool { return s.Addrs[i] >= a })
	return i < len(s.Addrs) && s.Addrs[i] == a
}

// CountByPrefix counts responsive addresses per partition prefix. The
// second result is the number of addresses outside the partition.
// Sparse partitions (few prefixes relative to the address count) are
// answered from the block index via per-prefix range counts; dense ones
// fall back to the merge walk, which wins when most addresses land in
// some prefix anyway (see DESIGN.md on the crossover).
func (s *Snapshot) CountByPrefix(p rib.Partition) (counts []int, outside int) {
	if sparseFor(p.Len(), len(s.Addrs)) {
		return p.CountAddrsSet(s.Set())
	}
	return p.CountAddrs(s.Addrs)
}

// sparseFor reports whether the K-prefix/N-address shape favors the
// block-index range counts over the O(N+K) merge walk. A range count
// pays up to two boundary-block decodes per prefix (2·K·blocksize
// varints, each a few times the cost of the merge walk's compare), so
// the index only wins once that worst case sits clearly below N. The
// factor 8 is conservative: near the boundary both paths are within a
// small constant of each other either way (see DESIGN.md).
func sparseFor(prefixes, addrs int) bool {
	return prefixes*8*addrset.DefaultBlockSize < addrs
}

// CountIn returns how many of the snapshot's addresses fall inside the
// partition (e.g. a TASS selection). Neither path materializes the
// per-prefix count slice. Sparse selections — the reseed and hitrate
// shape: small K over large N — sum per-prefix range counts off the
// block index, two index lookups per prefix, O(K log B) instead of
// O(N+K); dense selections keep the merge walk, summing inline.
func (s *Snapshot) CountIn(p rib.Partition) int {
	total := 0
	if sparseFor(p.Len(), len(s.Addrs)) {
		ctr := s.Set().Counter()
		for i := 0; i < p.Len(); i++ {
			pr := p.Prefix(i)
			total += ctr.Count(pr.First(), pr.Last())
		}
		return total
	}
	i := 0
	for _, a := range s.Addrs {
		for i < p.Len() && p.Prefix(i).Last() < a {
			i++
		}
		if i == p.Len() {
			break
		}
		if a >= p.Prefix(i).First() {
			total++
		}
	}
	return total
}

// IntersectWith returns |s ∩ t|. Lopsided pairs (one snapshot far
// smaller than the other) use the galloping block-index intersection,
// which skips the large set's unique runs at block granularity;
// similar-sized pairs keep the element-wise merge, which wins when
// neither cursor can skip far (snapshots of adjacent months share most
// hosts).
func (s *Snapshot) IntersectWith(t *Snapshot) int {
	small, large := s, t
	if small.Hosts() > large.Hosts() {
		small, large = large, small
	}
	if small.Hosts()*16 < large.Hosts() {
		return small.Set().IntersectCount(large.Set())
	}
	return IntersectCount(s.Addrs, t.Addrs)
}

// IntersectCount returns |a ∩ b| for two sorted address sets.
func IntersectCount(a, b []netaddr.Addr) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Binary format:
//
//	magic   [8]byte  "TASSCNS\x01"
//	proto   uvarint length + bytes
//	month   uvarint
//	count   uvarint
//	addrs   count uvarints: first value absolute, then deltas (>=1)
var magic = [8]byte{'T', 'A', 'S', 'S', 'C', 'N', 'S', 1}

// ErrFormat reports a malformed snapshot stream.
var ErrFormat = errors.New("census: malformed snapshot")

// WriteTo serializes the snapshot. It implements io.WriterTo.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	write := func(b []byte) error {
		m, err := bw.Write(b)
		n += int64(m)
		return err
	}
	if err := write(magic[:]); err != nil {
		return n, err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		return write(buf[:binary.PutUvarint(buf[:], v)])
	}
	if err := putUvarint(uint64(len(s.Protocol))); err != nil {
		return n, err
	}
	if err := write([]byte(s.Protocol)); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(s.Month)); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(len(s.Addrs))); err != nil {
		return n, err
	}
	prev := uint64(0)
	for i, a := range s.Addrs {
		v := uint64(a)
		if i > 0 {
			if v <= prev {
				return n, fmt.Errorf("%w: addresses not strictly ascending", ErrFormat)
			}
			if err := putUvarint(v - prev); err != nil {
				return n, err
			}
		} else {
			if err := putUvarint(v); err != nil {
				return n, err
			}
		}
		prev = v
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadSnapshot parses one snapshot from r. When r is already a
// *bufio.Reader it is used directly, so back-to-back snapshots in one
// stream are not disturbed by read-ahead.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("census: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, got[:])
	}
	protoLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	if protoLen > 255 {
		return nil, fmt.Errorf("%w: protocol name length %d", ErrFormat, protoLen)
	}
	proto := make([]byte, protoLen)
	if _, err := io.ReadFull(br, proto); err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	month, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("%w: impossible host count %d", ErrFormat, count)
	}
	// The count is attacker-controlled until the deltas actually decode:
	// cap the up-front allocation and grow while decoding, so a 9-byte
	// stream declaring 2^32 hosts cannot demand gigabytes.
	capHint := int(count)
	if capHint > maxAddrPrealloc {
		capHint = maxAddrPrealloc
	}
	addrs := make([]netaddr.Addr, 0, capHint)
	// The wire format is the same ascending delta stream the block
	// layout stores, so the set view is encoded directly as the varints
	// decode — no intermediate pass over a materialized slice.
	sb := addrset.NewBuilder(0, capHint)
	prev := uint64(0)
	for i := 0; i < int(count); i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("census: address %d: %w", i, err)
		}
		v := d
		if i > 0 {
			if d == 0 {
				return nil, fmt.Errorf("%w: zero delta", ErrFormat)
			}
			v = prev + d
		}
		if v > 0xFFFFFFFF {
			return nil, fmt.Errorf("%w: address overflow", ErrFormat)
		}
		addrs = append(addrs, netaddr.Addr(v))
		if err := sb.Append(netaddr.Addr(v)); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		prev = v
	}
	return &Snapshot{Protocol: string(proto), Month: int(month), Addrs: addrs, set: sb.Finish()}, nil
}

// maxAddrPrealloc caps the address-slice allocation made before any
// delta of the stream has decoded (1 MiB worth of addresses).
const maxAddrPrealloc = 1 << 18

// Series is the monthly snapshot sequence for one protocol, ordered by
// month.
type Series struct {
	Protocol  string
	Snapshots []*Snapshot
}

// Months returns the number of snapshots in the series.
func (s *Series) Months() int { return len(s.Snapshots) }

// At returns the snapshot for the given month index.
func (s *Series) At(month int) *Snapshot { return s.Snapshots[month] }

// WriteTo serializes all snapshots back to back.
func (s *Series) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, snap := range s.Snapshots {
		n, err := snap.WriteTo(w)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadSeries parses back-to-back snapshots until EOF. All snapshots must
// belong to one protocol and be ordered by month.
func ReadSeries(r io.Reader) (*Series, error) {
	br := bufio.NewReader(r)
	s := &Series{}
	for {
		if _, err := br.Peek(1); errors.Is(err, io.EOF) {
			if len(s.Snapshots) == 0 {
				return nil, fmt.Errorf("%w: empty series", ErrFormat)
			}
			return s, nil
		}
		snap, err := ReadSnapshot(br)
		if err != nil {
			return nil, err
		}
		if s.Protocol == "" {
			s.Protocol = snap.Protocol
		} else if s.Protocol != snap.Protocol {
			return nil, fmt.Errorf("%w: mixed protocols %q and %q", ErrFormat, s.Protocol, snap.Protocol)
		}
		if n := len(s.Snapshots); n > 0 && s.Snapshots[n-1].Month >= snap.Month {
			return nil, fmt.Errorf("%w: months out of order", ErrFormat)
		}
		s.Snapshots = append(s.Snapshots, snap)
	}
}
