package census

import (
	"sync"
	"sync/atomic"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// CountCache memoizes per-prefix host counts by (snapshot, partition)
// identity. The phi-grid and the multi-figure experiment engine rank
// the same seed snapshot over the same universe again and again; with a
// shared cache each (snapshot, partition) pair is counted exactly once,
// concurrent requests for the same pair block on a single computation,
// and every later request is a map lookup.
//
// Identity is pointer identity: the *Snapshot and the backing array of
// the partition's prefix slice. Both are immutable by contract, so the
// cached counts can never go stale. A nil *CountCache is valid and
// simply computes every request (no memoization), which keeps call
// sites free of conditionals.
type CountCache struct {
	mu sync.Mutex
	m  map[countKey]*countEntry

	hits, misses atomic.Int64
}

// countKey identifies a (snapshot, partition) pair. Partitions are
// value types; their identity is the backing array of the prefix slice
// plus its length (Subset and the trie builders always allocate fresh
// arrays).
type countKey struct {
	snap *Snapshot
	part *netaddr.Prefix
	n    int
}

type countEntry struct {
	once    sync.Once
	counts  []int
	outside int
}

// NewCountCache returns an empty cache.
func NewCountCache() *CountCache {
	return &CountCache{m: make(map[countKey]*countEntry)}
}

func partKey(p rib.Partition) *netaddr.Prefix {
	ps := p.Prefixes()
	if len(ps) == 0 {
		return nil
	}
	return &ps[0]
}

// Counts returns, for each partition prefix, how many of the snapshot's
// addresses it contains, plus the number of addresses outside the
// partition. The first request for a pair computes via the sharded
// merge walk (workers as in CountAddrsSharded; 0 means GOMAXPROCS);
// subsequent requests return the memoized slice.
//
// The returned slice is shared across callers and must be treated as
// read-only.
func (c *CountCache) Counts(snap *Snapshot, p rib.Partition, workers int) (counts []int, outside int) {
	if c == nil {
		return CountAddrsSharded(snap.Addrs, p, workers)
	}
	key := countKey{snap: snap, part: partKey(p), n: p.Len()}
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &countEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		e.counts, e.outside = CountAddrsSharded(snap.Addrs, p, workers)
	})
	return e.counts, e.outside
}

// Stats reports cache traffic: hits is the number of Counts calls that
// found an existing entry, misses the number that created one.
func (c *CountCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
