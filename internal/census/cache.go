package census

import (
	"sync"
	"sync/atomic"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// CountCacheOf memoizes per-prefix host counts by (snapshot,
// generation, partition) identity. The phi-grid and the multi-figure
// experiment engine rank the same seed snapshot over the same universe
// again and again; with a shared cache each pair is counted exactly
// once, concurrent requests for the same pair block on a single
// computation, and every later request is a map lookup.
//
// Identity is pointer identity: the *SnapshotOf and the backing array
// of the partition's prefix slice, plus the snapshot's mutation
// generation. Snapshots and partitions are immutable by contract except
// through Snapshot.Apply, which bumps the generation — so cached counts
// can never go stale. A nil *CountCacheOf is valid and simply computes
// every request (no memoization), which keeps call sites free of
// conditionals.
//
// The cache is bounded: once it holds more than its entry cap the
// least-recently-used entry is evicted, so a long-running campaign that
// feeds a fresh snapshot into every cycle cannot grow it without limit.
// Eviction only ever costs a recomputation, never correctness.
type CountCacheOf[A netaddr.Key[A]] struct {
	mu         sync.Mutex
	m          map[countKey[A]]*countEntry[A]
	cap        int
	head, tail *countEntry[A] // LRU list: head is most recently used

	hits, misses atomic.Int64
}

// CountCache is the IPv4 instantiation of CountCacheOf.
type CountCache = CountCacheOf[netaddr.Addr]

// DefaultCountCacheEntries is the entry cap of NewCountCache. Each
// entry holds one int per partition prefix, so the default bounds the
// cache near cap × partition-size ints.
const DefaultCountCacheEntries = 4096

// countKey identifies a (snapshot, generation, partition) triple.
// Partitions are value types; their identity is the backing array of
// the prefix slice plus its length (Subset and the trie builders always
// allocate fresh arrays).
type countKey[A netaddr.Key[A]] struct {
	snap *SnapshotOf[A]
	gen  uint64
	part *netaddr.Pfx[A]
	n    int
}

type countEntry[A netaddr.Key[A]] struct {
	key        countKey[A]
	prev, next *countEntry[A]
	once       sync.Once
	counts     []int
	outside    int
}

// NewCountCache returns an empty IPv4 cache bounded at
// DefaultCountCacheEntries entries.
func NewCountCache() *CountCache { return NewCountCacheCap(DefaultCountCacheEntries) }

// NewCountCacheOf returns an empty cache for any address family,
// bounded at DefaultCountCacheEntries entries.
func NewCountCacheOf[A netaddr.Key[A]]() *CountCacheOf[A] {
	return NewCountCacheCapOf[A](DefaultCountCacheEntries)
}

// NewCountCacheCap returns an empty IPv4 cache evicting
// least-recently-used entries beyond maxEntries; maxEntries <= 0 means
// unbounded.
func NewCountCacheCap(maxEntries int) *CountCache {
	return NewCountCacheCapOf[netaddr.Addr](maxEntries)
}

// NewCountCacheCapOf is NewCountCacheCap for any address family.
func NewCountCacheCapOf[A netaddr.Key[A]](maxEntries int) *CountCacheOf[A] {
	return &CountCacheOf[A]{m: make(map[countKey[A]]*countEntry[A]), cap: maxEntries}
}

// Cap returns the entry cap (0 means unbounded).
func (c *CountCacheOf[A]) Cap() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// Len returns the number of resident entries.
func (c *CountCacheOf[A]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func partKey[A netaddr.Key[A]](p rib.PartOf[A]) *netaddr.Pfx[A] {
	ps := p.Prefixes()
	if len(ps) == 0 {
		return nil
	}
	return &ps[0]
}

// unlink removes e from the LRU list. Callers hold c.mu.
func (c *CountCacheOf[A]) unlink(e *countEntry[A]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry. Callers hold c.mu.
func (c *CountCacheOf[A]) pushFront(e *countEntry[A]) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Counts returns, for each partition prefix, how many of the snapshot's
// addresses it contains, plus the number of addresses outside the
// partition. The first request for a pair computes via the sharded
// merge walk (workers as in CountAddrsSharded; 0 means GOMAXPROCS);
// subsequent requests return the memoized slice.
//
// The returned slice is shared across callers and must be treated as
// read-only.
func (c *CountCacheOf[A]) Counts(snap *SnapshotOf[A], p rib.PartOf[A], workers int) (counts []int, outside int) {
	if c == nil {
		return snap.countsSharded(p, workers)
	}
	key := countKey[A]{snap: snap, gen: snap.Generation(), part: partKey(p), n: p.Len()}
	c.mu.Lock()
	e, ok := c.m[key]
	if ok {
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
	} else {
		e = &countEntry[A]{key: key}
		c.m[key] = e
		c.pushFront(e)
		if c.cap > 0 && len(c.m) > c.cap {
			evict := c.tail
			c.unlink(evict)
			delete(c.m, evict.key)
		}
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		e.counts, e.outside = snap.countsSharded(p, workers)
	})
	return e.counts, e.outside
}

// Stats reports cache traffic: hits is the number of Counts calls that
// found an existing entry, misses the number that created one
// (including entries later evicted).
func (c *CountCacheOf[A]) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
