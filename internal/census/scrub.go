package census

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/atomicfile"
	"github.com/tass-scan/tass/internal/mmapfile"
	"github.com/tass-scan/tass/internal/netaddr"
)

// BlockDamage is one undecodable block found by a snapshot scrub: its
// index, its absolute byte extent within the file, the address count
// the directory attributes to it (what a repair loses), and the fault.
type BlockDamage struct {
	Block    int
	Off, Len int // absolute byte extent within the file
	Lost     int // addresses the directory attributes to the block
	Err      error
}

// SnapshotScrub is the report of one ScrubSnapshotFile pass over a
// snapshot file.
type SnapshotScrub struct {
	Path   string
	Format string // "TASSNAP3", "TASSNAP2", or the v1 stream magic
	Blocks int
	Hosts  int // addresses decodable from intact blocks

	// PayloadCRCOK reports the whole-payload checksum. It can fail
	// while every block still decodes (v2 damage that preserves block
	// structure); repair then rewrites the file with fresh checksums.
	PayloadCRCOK bool

	// Damage lists every block that failed its checksum or decode.
	Damage []BlockDamage

	// IndexErr is non-nil when the header or block directory itself is
	// unusable (bad magic, index CRC mismatch, truncation) — nothing
	// can be localized and the file cannot be repaired in place. For a
	// v1 file it carries any decode error, since v1 has no structure
	// to localize damage with.
	IndexErr error
}

// Clean reports whether the scrub found nothing wrong.
func (r *SnapshotScrub) Clean() bool {
	return r.IndexErr == nil && len(r.Damage) == 0 && r.PayloadCRCOK
}

// ScrubSnapshotFile verifies a snapshot file block by block and reports
// every finding instead of stopping at the first, streaming with O(one
// block) resident memory. v2/v3 files are checked index-first (header,
// directory, index CRC), then payload CRC, then a decode of every block
// against the directory (and its per-block CRC on v3). v1 files decode
// in one eager pass. It is the read-only half of `tass fsck`.
func ScrubSnapshotFile(path string) (*SnapshotScrub, error) {
	m, err := mmapfile.Open(path)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	rep := &SnapshotScrub{Path: path}
	if int(m.Size()) < 9 {
		rep.Format = "unknown"
		rep.IndexErr = fmt.Errorf("%w: %d-byte file is not a snapshot", ErrFormat, m.Size())
		return rep, nil
	}
	head, err := m.BytesAt(0, 9)
	if err != nil {
		rep.Format = "unknown"
		rep.IndexErr = err
		return rep, nil
	}
	switch {
	case bytes.Equal(head[:8], magic[:]), bytes.Equal(head[:8], magic6[:]):
		rep.Format = "TASSNAP1"
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var hosts int
		if bytes.Equal(head[:8], magic6[:]) {
			var snap *SnapshotOf[netaddr.Addr6]
			snap, err = ReadSnapshotOf[netaddr.Addr6](f)
			if snap != nil {
				hosts = snap.Hosts()
			}
		} else {
			var snap *Snapshot
			snap, err = ReadSnapshotOf[netaddr.Addr](f)
			if snap != nil {
				hosts = snap.Hosts()
			}
		}
		rep.Hosts = hosts
		rep.IndexErr = err
		rep.PayloadCRCOK = err == nil
		return rep, nil
	case head[8] == 6:
		scrubSnap[netaddr.Addr6](m, rep)
	default:
		scrubSnap[netaddr.Addr](m, rep)
	}
	return rep, nil
}

func scrubSnap[A netaddr.Key[A]](m *mmapfile.File, rep *SnapshotScrub) {
	idx, err := parseSnapFileIndex[A](m)
	if err != nil {
		rep.Format = "TASSNAP2/3"
		rep.IndexErr = err
		return
	}
	rep.Format = "TASSNAP2"
	if idx.version == 3 {
		rep.Format = "TASSNAP3"
	}
	rep.Blocks = len(idx.mins)

	crc := crc32.NewIEEE()
	const chunk = 1 << 20
	crcReadable := true
	for off := 0; off < idx.payloadLen; off += chunk {
		n := idx.payloadLen - off
		if n > chunk {
			n = chunk
		}
		b, err := m.BytesAt(idx.payloadOff+off, n)
		if err != nil {
			crcReadable = false
			break
		}
		crc.Write(b)
	}
	rep.PayloadCRCOK = crcReadable && crc.Sum32() == idx.payloadCRC

	counts := append([]int(nil), idx.counts...)
	offs := make([]int, len(idx.blens))
	blens := append([]int(nil), idx.blens...)
	off := 0
	for i, bl := range blens {
		offs[i] = off
		off += bl
	}
	set, err := addrset.FromIndex(idx.mins, idx.maxs, idx.counts, idx.blens, idx.blockSize, snapBlockSource(m, idx), 1)
	if err != nil {
		rep.IndexErr = fmt.Errorf("%w: %v", ErrFormat, err)
		return
	}
	set.SetFaultPolicy(addrset.Degrade)
	set.WalkBlocks(func(bi int, addrs []A, err error) bool {
		if err == nil {
			for i := 1; i < len(addrs); i++ {
				if addrs[i].Compare(addrs[i-1]) < 0 {
					err = fmt.Errorf("block %d not ascending at %v", bi, addrs[i])
					break
				}
			}
		}
		if err != nil {
			rep.Damage = append(rep.Damage, BlockDamage{
				Block: bi,
				Off:   idx.payloadOff + offs[bi],
				Len:   blens[bi],
				Lost:  counts[bi],
				Err:   err,
			})
			return true
		}
		rep.Hosts += len(addrs)
		return true
	})
}

// SnapshotRepair reports what RepairSnapshotFile did.
type SnapshotRepair struct {
	Scrub *SnapshotScrub

	// Repaired is false when the file was already clean and left
	// untouched.
	Repaired bool

	// RecoveredHosts and LostAddrs partition the original population:
	// addresses re-derived into the fresh file vs. addresses in
	// quarantined blocks.
	RecoveredHosts int
	LostAddrs      int

	// QuarantinePath names the sidecar holding the damaged blocks' raw
	// bytes ("" when nothing was quarantined).
	QuarantinePath string
}

// quarantineRecord is one line of the quarantine sidecar: the damaged
// block's directory identity and its raw payload bytes, kept so a
// later forensic pass (or a better-equipped recovery) loses nothing
// the repair threw away.
type quarantineRecord struct {
	Quarantine string `json:"quarantine,omitempty"` // first line: "tass-snapshot"
	Source     string `json:"source,omitempty"`
	Format     string `json:"format,omitempty"`

	Block   int    `json:"block,omitempty"`
	Off     int    `json:"off,omitempty"`
	Len     int    `json:"len,omitempty"`
	Lost    int    `json:"lost,omitempty"`
	Err     string `json:"err,omitempty"`
	Data    string `json:"data,omitempty"` // base64 raw bytes
	ReadErr string `json:"read_err,omitempty"`
}

// RepairSnapshotFile scrubs path and, if damage is found, re-derives
// every intact block into a fresh file of the current write format,
// atomically replacing path; the damaged blocks' raw bytes are saved to
// path+".quarantine" first, so the repair destroys nothing. The
// repaired file is re-verified before RepairSnapshotFile returns. Files
// whose index (header, directory, index CRC) is itself damaged cannot
// be repaired in place — localization depends on a trusted directory —
// and return an error, as do v1 files with any damage.
func RepairSnapshotFile(path string) (*SnapshotRepair, error) {
	scrub, err := ScrubSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	res := &SnapshotRepair{Scrub: scrub}
	if scrub.IndexErr != nil {
		return res, fmt.Errorf("census: %s: index unusable, cannot repair in place: %w", path, scrub.IndexErr)
	}
	if scrub.Clean() {
		res.RecoveredHosts = scrub.Hosts
		return res, nil
	}
	if scrub.Format == "TASSNAP1" {
		return res, fmt.Errorf("census: %s: v1 stream files have no block structure to repair", path)
	}

	if len(scrub.Damage) > 0 {
		qpath, err := writeQuarantine(path, scrub)
		if err != nil {
			return res, fmt.Errorf("census: quarantine: %w", err)
		}
		res.QuarantinePath = qpath
	}

	m, err := mmapfile.Open(path)
	if err != nil {
		return res, err
	}
	defer m.Close()
	if err := repairSnap(m, path, scrub, res); err != nil {
		return res, err
	}
	if err := VerifySnapshotFile(path); err != nil {
		return res, fmt.Errorf("census: repaired file fails verification: %w", err)
	}
	res.Repaired = true
	return res, nil
}

func repairSnap(m *mmapfile.File, path string, scrub *SnapshotScrub, res *SnapshotRepair) error {
	fam, err := m.BytesAt(8, 1)
	if err != nil {
		return err
	}
	if fam[0] == 6 {
		return repairSnapOf[netaddr.Addr6](m, path, scrub, res)
	}
	return repairSnapOf[netaddr.Addr](m, path, scrub, res)
}

func repairSnapOf[A netaddr.Key[A]](m *mmapfile.File, path string, scrub *SnapshotScrub, res *SnapshotRepair) error {
	idx, err := parseSnapFileIndex[A](m)
	if err != nil {
		return err
	}
	set, err := addrset.FromIndex(idx.mins, idx.maxs, idx.counts, idx.blens, idx.blockSize, snapBlockSource(m, idx), 1)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrFormat, err)
	}
	set.SetFaultPolicy(addrset.Degrade)
	// The intact-only walk: damaged blocks are skipped deterministically
	// (their checksum or index mismatch reproduces on every decode), so
	// the writer's two passes agree; a fault that appears only mid-write
	// trips the writer's pass-1/pass-2 cross-check instead of producing
	// a lying file.
	recovered := 0
	walk := func(yield func(A) bool) {
		recovered = 0
		set.WalkBlocks(func(bi int, addrs []A, err error) bool {
			if err != nil {
				return true
			}
			for _, a := range addrs {
				if !yield(a) {
					return false
				}
			}
			recovered += len(addrs)
			return true
		})
	}
	if err := writeSnapStream(path, idx.proto, idx.month, idx.blockSize, walk); err != nil {
		return err
	}
	res.RecoveredHosts = recovered
	for _, d := range scrub.Damage {
		res.LostAddrs += d.Lost
	}
	return nil
}

// writeQuarantine saves the damaged blocks' raw bytes beside the file
// being repaired, one JSON record per line, before the repair rewrites
// it.
func writeQuarantine(path string, scrub *SnapshotScrub) (string, error) {
	m, err := mmapfile.Open(path)
	if err != nil {
		return "", err
	}
	defer m.Close()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(quarantineRecord{Quarantine: "tass-snapshot", Source: path, Format: scrub.Format}); err != nil {
		return "", err
	}
	for _, d := range scrub.Damage {
		rec := quarantineRecord{Block: d.Block, Off: d.Off, Len: d.Len, Lost: d.Lost}
		if d.Err != nil {
			rec.Err = d.Err.Error()
		}
		if d.Len > 0 {
			if raw, err := m.BytesAt(d.Off, d.Len); err == nil {
				rec.Data = base64.StdEncoding.EncodeToString(raw)
			} else {
				rec.ReadErr = err.Error()
			}
		}
		if err := enc.Encode(rec); err != nil {
			return "", err
		}
	}
	qpath := path + ".quarantine"
	if err := atomicfile.WriteFile(qpath, buf.Bytes(), 0o644); err != nil {
		return "", err
	}
	return qpath, nil
}
