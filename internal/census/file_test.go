package census

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// fileFixtureSnap builds a duplicate-free snapshot with census-shaped
// gaps (mostly small deltas, occasional large jumps).
func fileFixtureSnap(seed int64, hosts int) *Snapshot {
	rng := rand.New(rand.NewSource(seed))
	addrs := make([]netaddr.Addr, 0, hosts)
	v := uint32(rng.Intn(1 << 16))
	for len(addrs) < hosts {
		if rng.Intn(100) == 0 {
			v += uint32(rng.Intn(1 << 22))
		}
		v += 1 + uint32(rng.Intn(200))
		addrs = append(addrs, netaddr.Addr(v))
	}
	return NewSnapshot("https", 4, addrs)
}

func writeSnapFile(t *testing.T, s *Snapshot) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "census.snap2")
	if err := WriteSnapshotFile(path, s); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	return path
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	eager := fileFixtureSnap(1, 20000)
	path := writeSnapFile(t, eager)

	lazy, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatalf("OpenSnapshotFile: %v", err)
	}
	defer lazy.Close()

	if !lazy.Lazy() || lazy.Addrs != nil {
		t.Fatal("opened snapshot is not lazy")
	}
	if lazy.Protocol != eager.Protocol || lazy.Month != eager.Month {
		t.Fatalf("header changed: %q/%d", lazy.Protocol, lazy.Month)
	}
	if lazy.Hosts() != eager.Hosts() {
		t.Fatalf("Hosts = %d want %d", lazy.Hosts(), eager.Hosts())
	}
	if got := lazy.Set().AppendTo(nil); !slices.Equal(got, eager.Addrs) {
		t.Fatal("lazy set decodes to different addresses")
	}
	// The v1 serialization of the lazy snapshot must be byte-identical
	// to the eager one's.
	if !bytes.Equal(encodeSnapshot(t, lazy), encodeSnapshot(t, eager)) {
		t.Fatal("lazy WriteTo bytes differ from eager")
	}
	// Materialize recovers the slice exactly.
	if !slices.Equal(lazy.Materialize().Addrs, eager.Addrs) {
		t.Fatal("Materialize differs")
	}
}

func TestSnapshotFileV1Fallback(t *testing.T) {
	eager := fileFixtureSnap(2, 3000)
	path := filepath.Join(t.TempDir(), "census.v1")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eager.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatalf("OpenSnapshotFile(v1): %v", err)
	}
	defer snap.Close()
	if snap.Lazy() {
		t.Fatal("v1 file opened lazy")
	}
	if !slices.Equal(snap.Addrs, eager.Addrs) {
		t.Fatal("v1 fallback decodes differently")
	}
}

// TestSnapshotFileApplyDeltaRoundTrip is the acceptance criterion:
// TASSNAP2 round-trips ApplyDelta-mutated snapshots — both writing a
// mutated (overlay-carrying) snapshot and mutating an opened lazy one.
func TestSnapshotFileApplyDeltaRoundTrip(t *testing.T) {
	base := fileFixtureSnap(3, 10000)
	next := fileFixtureSnap(33, 10000)
	next.Protocol, next.Month = base.Protocol, base.Month+1
	d := base.Diff(next)

	// Build the overlay: force the set view first so ApplyDelta uses
	// the copy-on-write path when sparse enough, then write + reopen.
	base.Set()
	mutated, err := ApplyDelta(base, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	path := writeSnapFile(t, mutated)
	if err := VerifySnapshotFile(path); err != nil {
		t.Fatalf("VerifySnapshotFile: %v", err)
	}
	back, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if !slices.Equal(back.Set().AppendTo(nil), next.Addrs) {
		t.Fatal("mutated snapshot round-trip differs")
	}

	// Mutate the lazy snapshot itself and round-trip the result.
	d2 := next.Diff(base)
	d2.FromMonth, d2.ToMonth = back.Month, back.Month+1
	lazyMutated, err := ApplyDelta(back, d2)
	if err != nil {
		t.Fatalf("ApplyDelta(lazy): %v", err)
	}
	if !lazyMutated.Lazy() {
		t.Fatal("delta over lazy snapshot lost laziness")
	}
	if lazyMutated.Hosts() != base.Hosts() {
		t.Fatalf("lazy mutated Hosts = %d want %d", lazyMutated.Hosts(), base.Hosts())
	}
	path2 := filepath.Join(t.TempDir(), "mutated.snap2")
	if err := WriteSnapshotFileOf(path2, lazyMutated); err != nil {
		t.Fatal(err)
	}
	back2, err := OpenSnapshotFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	defer back2.Close()
	if !slices.Equal(back2.Set().AppendTo(nil), base.Addrs) {
		t.Fatal("lazy-mutated snapshot round-trip differs")
	}
}

func TestLazySnapshotCounting(t *testing.T) {
	eager := fileFixtureSnap(4, 30000)
	path := writeSnapFile(t, eager)
	lazy, err := OpenSnapshotFileOf[netaddr.Addr](path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer lazy.Close()

	// A partition with gaps: every other /20 across the populated span.
	var pfx []netaddr.Prefix
	last := eager.Addrs[len(eager.Addrs)-1]
	for base := uint32(0); netaddr.Addr(base) < last; base += 2 << 12 {
		pfx = append(pfx, netaddr.MustPrefixFrom(netaddr.Addr(base), 20))
	}
	p, err := rib.NewPartition(pfx)
	if err != nil {
		t.Fatal(err)
	}

	wantCounts, wantOutside := p.CountAddrs(eager.Addrs)
	for _, workers := range []int{1, 2, 8} {
		gotCounts, gotOutside := lazy.CountByPrefixSharded(p, workers)
		if gotOutside != wantOutside || !slices.Equal(gotCounts, wantCounts) {
			t.Fatalf("workers=%d: sharded lazy counts differ", workers)
		}
	}
	c1, o1 := lazy.CountByPrefix(p)
	if o1 != wantOutside || !slices.Equal(c1, wantCounts) {
		t.Fatal("lazy CountByPrefix differs")
	}
	if got, want := lazy.CountIn(p), eager.CountIn(p); got != want {
		t.Fatalf("lazy CountIn = %d want %d", got, want)
	}
	if got, want := lazy.IntersectWith(eager), eager.Hosts(); got != want {
		t.Fatalf("lazy IntersectWith = %d want %d", got, want)
	}
	cache := NewCountCache()
	cc, co := cache.Counts(lazy, p, 4)
	if co != wantOutside || !slices.Equal(cc, wantCounts) {
		t.Fatal("CountCache over lazy snapshot differs")
	}
}

// TestConvertSnapshotFile streams a v1 snapshot into the indexed format
// and checks the result is byte-identical to writing the decoded
// snapshot directly.
func TestConvertSnapshotFile(t *testing.T) {
	eager := fileFixtureSnap(8, 15000)
	v1 := encodeSnapshot(t, eager)

	dir := t.TempDir()
	converted := filepath.Join(dir, "converted.snap2")
	if err := ConvertSnapshotFile[netaddr.Addr](bytes.NewReader(v1), converted); err != nil {
		t.Fatalf("ConvertSnapshotFile: %v", err)
	}
	direct := writeSnapFile(t, eager)

	got, err := os.ReadFile(converted)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("converted file differs from directly written file")
	}
	if err := VerifySnapshotFile(converted); err != nil {
		t.Fatal(err)
	}
	// Garbage input is rejected with an error.
	if err := ConvertSnapshotFile[netaddr.Addr](bytes.NewReader([]byte("nope")), filepath.Join(dir, "bad.snap2")); err == nil {
		t.Fatal("garbage v1 stream converted")
	}
}

func TestVerifySnapshotFileDetectsCorruption(t *testing.T) {
	eager := fileFixtureSnap(5, 5000)
	path := writeSnapFile(t, eager)
	if err := VerifySnapshotFile(path); err != nil {
		t.Fatalf("pristine file failed verify: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte (near the end — safely inside the payload).
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-10] ^= 0x40
	badPath := filepath.Join(t.TempDir(), "bad.snap2")
	if err := os.WriteFile(badPath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshotFile(badPath); err == nil {
		t.Fatal("payload corruption passed verify")
	}
	// The lazy open itself must still succeed — the index is intact and
	// open never reads the payload.
	snap, err := OpenSnapshotFile(badPath)
	if err != nil {
		t.Fatalf("open with corrupt payload: %v", err)
	}
	snap.Close()

	// Flip one index byte: open must fail on the index CRC.
	corrupt = append([]byte(nil), raw...)
	corrupt[12] ^= 0x01
	if err := os.WriteFile(badPath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshotFile(badPath); err == nil {
		t.Fatal("index corruption passed open")
	}
}

func TestOpenSnapshotFileTruncated(t *testing.T) {
	eager := fileFixtureSnap(6, 2000)
	path := writeSnapFile(t, eager)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cutPath := filepath.Join(t.TempDir(), "cut.snap2")
	for _, cut := range []int{0, 1, 7, 8, 9, 15, 40, len(raw) / 2, len(raw) - 1} {
		if cut > len(raw) {
			continue
		}
		if err := os.WriteFile(cutPath, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if snap, err := OpenSnapshotFile(cutPath); err == nil {
			snap.Close()
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestSnapshotFileEmpty(t *testing.T) {
	path := writeSnapFile(t, NewSnapshot("none", 0, nil))
	snap, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if snap.Hosts() != 0 {
		t.Fatalf("Hosts = %d", snap.Hosts())
	}
	if err := VerifySnapshotFile(path); err != nil {
		t.Fatal(err)
	}
}

// FuzzSnapshotFileIndex feeds arbitrary bytes to the v2 open path: any
// input must either be rejected with an error or produce a snapshot
// whose set invariants hold — never a panic at open time and never an
// index-sized pathological allocation.
func FuzzSnapshotFileIndex(f *testing.F) {
	seedSnap := fileFixtureSnap(7, 500)
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.snap2")
	if err := WriteSnapshotFile(seedPath, seedSnap); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:9])
	f.Add(raw[:len(raw)/2])
	f.Add([]byte("TASSNAP2"))
	corrupt := append([]byte(nil), raw...)
	corrupt[10] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.snap2")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		snap, err := OpenSnapshotFile(path)
		if err != nil {
			return
		}
		defer snap.Close()
		// Index accepted: the deep check may still reject the payload,
		// but must do so with an error, not a decode panic.
		_ = VerifySnapshotFile(path)
	})
}
