package census

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/tass-scan/tass/internal/netaddr"
)

func TestSortAddrsMatchesStdlib(t *testing.T) {
	f := func(vals []uint32) bool {
		a := make([]netaddr.Addr, len(vals))
		b := make([]netaddr.Addr, len(vals))
		for i, v := range vals {
			a[i] = netaddr.Addr(v)
			b[i] = netaddr.Addr(v)
		}
		SortAddrs(a)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortAddrsLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := make([]netaddr.Addr, 200000)
	for i := range a {
		a[i] = netaddr.Addr(rng.Uint32())
	}
	SortAddrs(a)
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("unsorted at %d", i)
		}
	}
}

func TestSortAddrsSmallAndEmpty(t *testing.T) {
	SortAddrs(nil)
	one := []netaddr.Addr{7}
	SortAddrs(one)
	small := []netaddr.Addr{5, 3, 9, 1, 1}
	SortAddrs(small)
	for i := 1; i < len(small); i++ {
		if small[i] < small[i-1] {
			t.Fatalf("small input unsorted: %v", small)
		}
	}
}

func TestDiff(t *testing.T) {
	earlier := NewSnapshot("ftp", 0, addrs("1.0.0.1", "2.0.0.2", "3.0.0.3"))
	later := NewSnapshot("ftp", 1, addrs("2.0.0.2", "3.0.0.3", "4.0.0.4", "5.0.0.5"))
	d := Diff(earlier, later)
	if d.Kept != 2 || d.Lost != 1 || d.New != 2 {
		t.Fatalf("Diff = %+v", d)
	}
	if r := d.Retention(); r < 0.66 || r > 0.67 {
		t.Errorf("Retention = %v", r)
	}
	empty := Diff(NewSnapshot("x", 0, nil), NewSnapshot("x", 1, nil))
	if empty.Retention() != 0 {
		t.Error("empty retention")
	}
}

func TestDiffSelfIsIdentity(t *testing.T) {
	f := func(vals []uint32) bool {
		raw := make([]netaddr.Addr, len(vals))
		for i, v := range vals {
			raw[i] = netaddr.Addr(v)
		}
		s := NewSnapshot("p", 0, raw)
		d := Diff(s, s)
		return d.Kept == s.Hosts() && d.Lost == 0 && d.New == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSortAddrsRadix(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]netaddr.Addr, 1<<20)
	for i := range base {
		base[i] = netaddr.Addr(rng.Uint32())
	}
	work := make([]netaddr.Addr, len(base))
	b.SetBytes(int64(len(base) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		SortAddrs(work)
	}
}

// BenchmarkSortAddrsStdlib is the ablation partner of the radix sort:
// the comparison sort it replaces in snapshot construction.
func BenchmarkSortAddrsStdlib(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]netaddr.Addr, 1<<20)
	for i := range base {
		base[i] = netaddr.Addr(rng.Uint32())
	}
	work := make([]netaddr.Addr, len(base))
	b.SetBytes(int64(len(base) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		sort.Slice(work, func(x, y int) bool { return work[x] < work[y] })
	}
}
