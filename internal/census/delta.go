package census

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/netaddr"
)

// DeltaOf is the churn between two snapshots of one protocol as sorted
// address runs: the representation that makes a month (or a scan cycle)
// cost O(changed addresses) instead of O(universe). Born lists the
// addresses responsive only in the later snapshot, Died those
// responsive only in the earlier one; both are strictly ascending and
// disjoint. ApplyDelta(from, d) reconstructs the later snapshot
// exactly, so a series can be stored and shipped as one full snapshot
// plus a delta per month.
type DeltaOf[A netaddr.Key[A]] struct {
	Protocol           string
	FromMonth, ToMonth int
	Born, Died         []A
}

// Delta is the IPv4 instantiation of DeltaOf.
type Delta = DeltaOf[netaddr.Addr]

// Changed returns the total number of changed addresses.
func (d *DeltaOf[A]) Changed() int { return len(d.Born) + len(d.Died) }

// Result summarizes the delta as the §3.3 churn decomposition,
// relative to the earlier snapshot's host count.
func (d *DeltaOf[A]) Result(fromHosts int) DiffResult {
	return DiffResult{Kept: fromHosts - len(d.Died), Lost: len(d.Died), New: len(d.Born)}
}

// Diff returns the delta from s to later: the born/died address runs a
// single merge walk over both snapshots produces. Both snapshots must
// belong to one protocol.
func (s *SnapshotOf[A]) Diff(later *SnapshotOf[A]) *DeltaOf[A] {
	if s4, ok := any(s).(*Snapshot); ok {
		return any(diff32(s4, any(later).(*Snapshot))).(*DeltaOf[A])
	}
	d := &DeltaOf[A]{Protocol: s.Protocol, FromMonth: s.Month, ToMonth: later.Month}
	a, b := s.addrsView(), later.addrsView()
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := a[i].Compare(b[j]); {
		case c < 0:
			d.Died = append(d.Died, a[i])
			i++
		case c > 0:
			d.Born = append(d.Born, b[j])
			j++
		default:
			i++
			j++
		}
	}
	d.Died = append(d.Died, a[i:]...)
	d.Born = append(d.Born, b[j:]...)
	return d
}

// diff32 is the concrete IPv4 merge walk behind Diff: churn extraction
// walks two full snapshots element by element, so the compares must
// stay direct uint32 operations.
func diff32(s, later *Snapshot) *Delta {
	d := &Delta{Protocol: s.Protocol, FromMonth: s.Month, ToMonth: later.Month}
	a, b := s.addrsView(), later.addrsView()
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			d.Died = append(d.Died, a[i])
			i++
		case a[i] > b[j]:
			d.Born = append(d.Born, b[j])
			j++
		default:
			i++
			j++
		}
	}
	d.Died = append(d.Died, a[i:]...)
	d.Born = append(d.Born, b[j:]...)
	return d
}

// ApplyDelta reconstructs the later snapshot from an earlier one and
// the delta between them: ApplyDelta(a, a.Diff(b)) equals b exactly.
// The address slice is rebuilt by one merge pass; when the earlier
// snapshot's block-indexed set view has already been built and the
// delta is sparse relative to the block count, the new view is derived
// by the copy-on-write overlay apply (O(changed blocks)) instead of
// being re-encoded from scratch on first use.
//
// It errors when the delta does not fit the snapshot: protocol or month
// mismatch, a born address already present, or a died address missing.
func ApplyDelta[A netaddr.Key[A]](from *SnapshotOf[A], d *DeltaOf[A]) (*SnapshotOf[A], error) {
	addrs, set, err := applyDelta(from, d)
	if err != nil {
		return nil, err
	}
	// A delta applied to a lazy snapshot yields another lazy snapshot;
	// it reads through the parent's backing, so it stays valid only
	// while the parent remains open (the parent keeps owning the file).
	return &SnapshotOf[A]{Protocol: from.Protocol, Month: d.ToMonth, Addrs: addrs, set: set, lazy: from.lazy}, nil
}

// Apply is ApplyDelta in place: the receiver becomes the later
// snapshot and its generation counter advances, so count caches keyed
// by (snapshot, generation) stop serving the pre-mutation counts. The
// old address slice is released, not overwritten — callers that kept a
// reference keep consistent data. Apply must not race with readers of
// the snapshot.
func (s *SnapshotOf[A]) Apply(d *DeltaOf[A]) error {
	addrs, set, err := applyDelta(s, d)
	if err != nil {
		return err
	}
	s.setMu.Lock()
	s.Month = d.ToMonth
	s.Addrs = addrs
	s.set = set
	s.gen.Add(1)
	s.setMu.Unlock()
	return nil
}

func applyDelta[A netaddr.Key[A]](from *SnapshotOf[A], d *DeltaOf[A]) ([]A, *addrset.SetOf[A], error) {
	if d.Protocol != from.Protocol {
		return nil, nil, fmt.Errorf("census: delta protocol %q does not match snapshot %q", d.Protocol, from.Protocol)
	}
	if d.FromMonth != from.Month {
		return nil, nil, fmt.Errorf("census: delta from month %d does not match snapshot month %d", d.FromMonth, from.Month)
	}
	// A hand-assembled out-of-order run would otherwise merge into a
	// silently unsorted snapshot; the check costs O(changed), like the
	// merge itself.
	for _, run := range [2][]A{d.Born, d.Died} {
		for i := 1; i < len(run); i++ {
			if run[i].Compare(run[i-1]) <= 0 {
				return nil, nil, fmt.Errorf("%w: delta run not strictly ascending at %v", ErrFormat, run[i])
			}
		}
	}
	if from.lazy {
		// A lazy snapshot has no Addrs to merge into — the whole point
		// is never materializing them. The copy-on-write overlay apply
		// keeps the result lazy: untouched blocks stay byte-ranges into
		// the backing file, only churned blocks decode and re-encode.
		set, err := from.Set().ApplyDelta(d.Born, d.Died)
		if err != nil {
			return nil, nil, fmt.Errorf("census: %w", err)
		}
		return nil, set, nil
	}
	// Merge by delta events, not by base elements: the unchanged runs
	// between consecutive born/died addresses — almost everything, at
	// realistic churn — are block-copied, so the merge costs
	// O(changed · log n) searches plus one pass of memmove instead of a
	// branch per address.
	capHint := len(from.Addrs) + len(d.Born) - len(d.Died)
	if capHint < 0 {
		// More died addresses than the snapshot holds: the merge below
		// reports exactly which one is missing; the hint just must not
		// make make() panic first.
		capHint = 0
	}
	addrs := make([]A, 0, capHint)
	base, born, died := from.Addrs, d.Born, d.Died
	i, b, dd := 0, 0, 0
	for b < len(born) || dd < len(died) {
		var e A
		takeBorn := false
		if b < len(born) && (dd == len(died) || born[b].Compare(died[dd]) < 0) {
			e = born[b]
			takeBorn = true
		} else {
			e = died[dd]
		}
		p := netaddr.SeekKeys(base, i, e)
		addrs = append(addrs, base[i:p]...)
		i = p
		if takeBorn {
			if i < len(base) && base[i] == e {
				return nil, nil, fmt.Errorf("census: delta born %v already in snapshot", e)
			}
			addrs = append(addrs, e)
			b++
		} else {
			if i == len(base) || base[i] != e {
				return nil, nil, fmt.Errorf("census: delta died %v not in snapshot", e)
			}
			i++
			dd++
		}
	}
	addrs = append(addrs, base[i:]...)

	// Carry the block-indexed view over only when it exists and the
	// delta is sparse enough that the overlay apply beats rebuilding
	// lazily: a delta touching most blocks would pay decode+re-encode
	// of nearly everything just to hit the compaction threshold.
	from.setMu.Lock()
	prevSet := from.set
	from.setMu.Unlock()
	if prevSet != nil && d.Changed() < prevSet.Blocks()/2 {
		set, err := prevSet.ApplyDelta(d.Born, d.Died)
		if err != nil {
			return nil, nil, fmt.Errorf("census: %w", err)
		}
		return addrs, set, nil
	}
	return addrs, nil, nil
}

// Binary delta format, sharing the snapshot codec's conventions
// (including the family tag in the magic):
//
//	magic   [8]byte  "TASSDLT\x01" (IPv4) or "TASSDL6\x01" (IPv6)
//	proto   uvarint length + bytes
//	from    uvarint
//	to      uvarint
//	born    uvarint count, then count uvarints (first absolute, then deltas >= 1)
//	died    uvarint count, then count uvarints (first absolute, then deltas >= 1)
var (
	deltaMagic  = [8]byte{'T', 'A', 'S', 'S', 'D', 'L', 'T', 1}
	deltaMagic6 = [8]byte{'T', 'A', 'S', 'S', 'D', 'L', '6', 1}
)

// deltaMagicFor returns the delta magic for an address width.
func deltaMagicFor(width int) [8]byte {
	if width == 32 {
		return deltaMagic
	}
	return deltaMagic6
}

// WriteTo serializes the delta. It implements io.WriterTo.
func (d *DeltaOf[A]) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	write := func(b []byte) error {
		m, err := bw.Write(b)
		n += int64(m)
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		return write(buf[:binary.PutUvarint(buf[:], v)])
	}
	var zero A
	m := deltaMagicFor(zero.Width())
	if err := write(m[:]); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(len(d.Protocol))); err != nil {
		return n, err
	}
	if err := write([]byte(d.Protocol)); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(d.FromMonth)); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(d.ToMonth)); err != nil {
		return n, err
	}
	kbuf := make([]byte, 0, 19)
	for _, run := range [][]A{d.Born, d.Died} {
		if err := putUvarint(uint64(len(run))); err != nil {
			return n, err
		}
		prev := zero
		for i, a := range run {
			v := a
			if i > 0 {
				if a.Compare(prev) <= 0 {
					return n, fmt.Errorf("%w: delta addresses not strictly ascending", ErrFormat)
				}
				v = netaddr.KeySub(a, prev)
			}
			if err := write(netaddr.AppendKeyUvarint(kbuf[:0], v)); err != nil {
				return n, err
			}
			prev = a
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadDelta parses one IPv4 delta from r. When r is already a
// *bufio.Reader it is used directly, so back-to-back records in one
// stream are not disturbed by read-ahead.
func ReadDelta(r io.Reader) (*Delta, error) {
	return ReadDeltaOf[netaddr.Addr](r)
}

// ReadDeltaOf parses one delta of family A from r; a delta of the other
// family fails the magic check.
func ReadDeltaOf[A netaddr.Key[A]](r io.Reader) (*DeltaOf[A], error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var zero A
	want := deltaMagicFor(zero.Width())
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("census: reading delta magic: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("%w: bad delta magic %q", ErrFormat, got[:])
	}
	protoLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	if protoLen > 255 {
		return nil, fmt.Errorf("%w: protocol name length %d", ErrFormat, protoLen)
	}
	proto := make([]byte, protoLen)
	if _, err := io.ReadFull(br, proto); err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	from, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	to, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	d := &DeltaOf[A]{Protocol: string(proto), FromMonth: int(from), ToMonth: int(to)}
	for side := 0; side < 2; side++ {
		run, err := readAddrRun[A](br)
		if err != nil {
			return nil, err
		}
		if side == 0 {
			d.Born = run
		} else {
			d.Died = run
		}
	}
	// Born and died must be disjoint: check with one merge pass so a
	// parsed delta upholds the same invariants a Diff-produced one does.
	i, j := 0, 0
	for i < len(d.Born) && j < len(d.Died) {
		switch c := d.Born[i].Compare(d.Died[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			return nil, fmt.Errorf("%w: address %v both born and died", ErrFormat, d.Born[i])
		}
	}
	return d, nil
}

// readAddrRun decodes one length-prefixed strictly-ascending address
// run, with the same attacker-controlled-count allocation cap as the
// snapshot codec.
func readAddrRun[A netaddr.Key[A]](br *bufio.Reader) ([]A, error) {
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("%w: impossible address count %d", ErrFormat, count)
	}
	capHint := int(count)
	if capHint > maxAddrPrealloc {
		capHint = maxAddrPrealloc
	}
	addrs := make([]A, 0, capHint)
	var zero, prev A
	for i := 0; i < int(count); i++ {
		d, err := netaddr.ReadKeyUvarint[A](br)
		if err != nil {
			if errors.Is(err, netaddr.ErrOverflow) {
				return nil, fmt.Errorf("%w: address overflow", ErrFormat)
			}
			return nil, fmt.Errorf("census: delta address %d: %w", i, err)
		}
		v := d
		if i > 0 {
			if d == zero {
				return nil, fmt.Errorf("%w: zero delta", ErrFormat)
			}
			v = netaddr.KeyAdd(prev, d)
			if v.Compare(prev) <= 0 {
				return nil, fmt.Errorf("%w: address overflow", ErrFormat)
			}
		}
		addrs = append(addrs, v)
		prev = v
	}
	return addrs, nil
}
