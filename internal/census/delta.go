package census

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/netaddr"
)

// Delta is the churn between two snapshots of one protocol as sorted
// address runs: the representation that makes a month (or a scan cycle)
// cost O(changed addresses) instead of O(universe). Born lists the
// addresses responsive only in the later snapshot, Died those
// responsive only in the earlier one; both are strictly ascending and
// disjoint. ApplyDelta(from, d) reconstructs the later snapshot
// exactly, so a series can be stored and shipped as one full snapshot
// plus a delta per month.
type Delta struct {
	Protocol           string
	FromMonth, ToMonth int
	Born, Died         []netaddr.Addr
}

// Changed returns the total number of changed addresses.
func (d *Delta) Changed() int { return len(d.Born) + len(d.Died) }

// Result summarizes the delta as the §3.3 churn decomposition,
// relative to the earlier snapshot's host count.
func (d *Delta) Result(fromHosts int) DiffResult {
	return DiffResult{Kept: fromHosts - len(d.Died), Lost: len(d.Died), New: len(d.Born)}
}

// Diff returns the delta from s to later: the born/died address runs a
// single merge walk over both snapshots produces. Both snapshots must
// belong to one protocol.
func (s *Snapshot) Diff(later *Snapshot) *Delta {
	d := &Delta{Protocol: s.Protocol, FromMonth: s.Month, ToMonth: later.Month}
	a, b := s.Addrs, later.Addrs
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			d.Died = append(d.Died, a[i])
			i++
		case a[i] > b[j]:
			d.Born = append(d.Born, b[j])
			j++
		default:
			i++
			j++
		}
	}
	d.Died = append(d.Died, a[i:]...)
	d.Born = append(d.Born, b[j:]...)
	return d
}

// ApplyDelta reconstructs the later snapshot from an earlier one and
// the delta between them: ApplyDelta(a, a.Diff(b)) equals b exactly.
// The address slice is rebuilt by one merge pass; when the earlier
// snapshot's block-indexed set view has already been built and the
// delta is sparse relative to the block count, the new view is derived
// by the copy-on-write overlay apply (O(changed blocks)) instead of
// being re-encoded from scratch on first use.
//
// It errors when the delta does not fit the snapshot: protocol or month
// mismatch, a born address already present, or a died address missing.
func ApplyDelta(from *Snapshot, d *Delta) (*Snapshot, error) {
	addrs, set, err := applyDelta(from, d)
	if err != nil {
		return nil, err
	}
	return &Snapshot{Protocol: from.Protocol, Month: d.ToMonth, Addrs: addrs, set: set}, nil
}

// Apply is ApplyDelta in place: the receiver becomes the later
// snapshot and its generation counter advances, so count caches keyed
// by (snapshot, generation) stop serving the pre-mutation counts. The
// old address slice is released, not overwritten — callers that kept a
// reference keep consistent data. Apply must not race with readers of
// the snapshot.
func (s *Snapshot) Apply(d *Delta) error {
	addrs, set, err := applyDelta(s, d)
	if err != nil {
		return err
	}
	s.setMu.Lock()
	s.Month = d.ToMonth
	s.Addrs = addrs
	s.set = set
	s.gen.Add(1)
	s.setMu.Unlock()
	return nil
}

func applyDelta(from *Snapshot, d *Delta) ([]netaddr.Addr, *addrset.Set, error) {
	if d.Protocol != from.Protocol {
		return nil, nil, fmt.Errorf("census: delta protocol %q does not match snapshot %q", d.Protocol, from.Protocol)
	}
	if d.FromMonth != from.Month {
		return nil, nil, fmt.Errorf("census: delta from month %d does not match snapshot month %d", d.FromMonth, from.Month)
	}
	// A hand-assembled out-of-order run would otherwise merge into a
	// silently unsorted snapshot; the check costs O(changed), like the
	// merge itself.
	for _, run := range [2][]netaddr.Addr{d.Born, d.Died} {
		for i := 1; i < len(run); i++ {
			if run[i] <= run[i-1] {
				return nil, nil, fmt.Errorf("%w: delta run not strictly ascending at %v", ErrFormat, run[i])
			}
		}
	}
	// Merge by delta events, not by base elements: the unchanged runs
	// between consecutive born/died addresses — almost everything, at
	// realistic churn — are block-copied, so the merge costs
	// O(changed · log n) searches plus one pass of memmove instead of a
	// branch per address.
	capHint := len(from.Addrs) + len(d.Born) - len(d.Died)
	if capHint < 0 {
		// More died addresses than the snapshot holds: the merge below
		// reports exactly which one is missing; the hint just must not
		// make make() panic first.
		capHint = 0
	}
	addrs := make([]netaddr.Addr, 0, capHint)
	base, born, died := from.Addrs, d.Born, d.Died
	i, b, dd := 0, 0, 0
	for b < len(born) || dd < len(died) {
		var e netaddr.Addr
		takeBorn := false
		if b < len(born) && (dd == len(died) || born[b] < died[dd]) {
			e = born[b]
			takeBorn = true
		} else {
			e = died[dd]
		}
		p := netaddr.SeekAddrs(base, i, e)
		addrs = append(addrs, base[i:p]...)
		i = p
		if takeBorn {
			if i < len(base) && base[i] == e {
				return nil, nil, fmt.Errorf("census: delta born %v already in snapshot", e)
			}
			addrs = append(addrs, e)
			b++
		} else {
			if i == len(base) || base[i] != e {
				return nil, nil, fmt.Errorf("census: delta died %v not in snapshot", e)
			}
			i++
			dd++
		}
	}
	addrs = append(addrs, base[i:]...)

	// Carry the block-indexed view over only when it exists and the
	// delta is sparse enough that the overlay apply beats rebuilding
	// lazily: a delta touching most blocks would pay decode+re-encode
	// of nearly everything just to hit the compaction threshold.
	from.setMu.Lock()
	prevSet := from.set
	from.setMu.Unlock()
	if prevSet != nil && d.Changed() < prevSet.Blocks()/2 {
		set, err := prevSet.ApplyDelta(d.Born, d.Died)
		if err != nil {
			return nil, nil, fmt.Errorf("census: %w", err)
		}
		return addrs, set, nil
	}
	return addrs, nil, nil
}

// Binary delta format, sharing the snapshot codec's conventions:
//
//	magic   [8]byte  "TASSDLT\x01"
//	proto   uvarint length + bytes
//	from    uvarint
//	to      uvarint
//	born    uvarint count, then count uvarints (first absolute, then deltas >= 1)
//	died    uvarint count, then count uvarints (first absolute, then deltas >= 1)
var deltaMagic = [8]byte{'T', 'A', 'S', 'S', 'D', 'L', 'T', 1}

// WriteTo serializes the delta. It implements io.WriterTo.
func (d *Delta) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	write := func(b []byte) error {
		m, err := bw.Write(b)
		n += int64(m)
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		return write(buf[:binary.PutUvarint(buf[:], v)])
	}
	if err := write(deltaMagic[:]); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(len(d.Protocol))); err != nil {
		return n, err
	}
	if err := write([]byte(d.Protocol)); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(d.FromMonth)); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(d.ToMonth)); err != nil {
		return n, err
	}
	for _, run := range [][]netaddr.Addr{d.Born, d.Died} {
		if err := putUvarint(uint64(len(run))); err != nil {
			return n, err
		}
		prev := uint64(0)
		for i, a := range run {
			v := uint64(a)
			if i > 0 {
				if v <= prev {
					return n, fmt.Errorf("%w: delta addresses not strictly ascending", ErrFormat)
				}
				if err := putUvarint(v - prev); err != nil {
					return n, err
				}
			} else if err := putUvarint(v); err != nil {
				return n, err
			}
			prev = v
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadDelta parses one delta from r. When r is already a *bufio.Reader
// it is used directly, so back-to-back records in one stream are not
// disturbed by read-ahead.
func ReadDelta(r io.Reader) (*Delta, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("census: reading delta magic: %w", err)
	}
	if got != deltaMagic {
		return nil, fmt.Errorf("%w: bad delta magic %q", ErrFormat, got[:])
	}
	protoLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	if protoLen > 255 {
		return nil, fmt.Errorf("%w: protocol name length %d", ErrFormat, protoLen)
	}
	proto := make([]byte, protoLen)
	if _, err := io.ReadFull(br, proto); err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	from, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	to, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	d := &Delta{Protocol: string(proto), FromMonth: int(from), ToMonth: int(to)}
	for side := 0; side < 2; side++ {
		run, err := readAddrRun(br)
		if err != nil {
			return nil, err
		}
		if side == 0 {
			d.Born = run
		} else {
			d.Died = run
		}
	}
	// Born and died must be disjoint: check with one merge pass so a
	// parsed delta upholds the same invariants a Diff-produced one does.
	i, j := 0, 0
	for i < len(d.Born) && j < len(d.Died) {
		switch {
		case d.Born[i] < d.Died[j]:
			i++
		case d.Born[i] > d.Died[j]:
			j++
		default:
			return nil, fmt.Errorf("%w: address %v both born and died", ErrFormat, d.Born[i])
		}
	}
	return d, nil
}

// readAddrRun decodes one length-prefixed strictly-ascending address
// run, with the same attacker-controlled-count allocation cap as the
// snapshot codec.
func readAddrRun(br *bufio.Reader) ([]netaddr.Addr, error) {
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("%w: impossible address count %d", ErrFormat, count)
	}
	capHint := int(count)
	if capHint > maxAddrPrealloc {
		capHint = maxAddrPrealloc
	}
	addrs := make([]netaddr.Addr, 0, capHint)
	prev := uint64(0)
	for i := 0; i < int(count); i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("census: delta address %d: %w", i, err)
		}
		if i > 0 {
			if v == 0 {
				return nil, fmt.Errorf("%w: zero delta", ErrFormat)
			}
			v += prev
		}
		if v > 0xFFFFFFFF {
			return nil, fmt.Errorf("%w: address overflow", ErrFormat)
		}
		addrs = append(addrs, netaddr.Addr(v))
		prev = v
	}
	return addrs, nil
}
