package census

import (
	"bytes"
	"math/rand"
	"slices"
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
)

// randomSnapshot draws n distinct addresses in [0, span).
func randomSnapshot(rng *rand.Rand, protocol string, month, n int, span uint32) *Snapshot {
	seen := make(map[netaddr.Addr]bool, n)
	addrs := make([]netaddr.Addr, 0, n)
	for len(addrs) < n {
		a := netaddr.Addr(rng.Uint32() % span)
		if seen[a] {
			continue
		}
		seen[a] = true
		addrs = append(addrs, a)
	}
	return NewSnapshot(protocol, month, addrs)
}

// churned evolves a snapshot: each address survives with probability
// 1-pDie, and fresh addresses are born to keep the population roughly
// stationary.
func churned(rng *rand.Rand, s *Snapshot, month int, pDie float64, span uint32) *Snapshot {
	present := make(map[netaddr.Addr]bool, len(s.Addrs))
	var addrs []netaddr.Addr
	for _, a := range s.Addrs {
		present[a] = true
		if rng.Float64() >= pDie {
			addrs = append(addrs, a)
		}
	}
	for births := int(pDie * float64(len(s.Addrs))); births > 0; {
		a := netaddr.Addr(rng.Uint32() % span)
		if present[a] {
			continue
		}
		present[a] = true
		addrs = append(addrs, a)
		births--
	}
	return NewSnapshot(s.Protocol, month, addrs)
}

// TestApplyDeltaDiffIdentity is the property test of the delta
// pipeline: ApplyDelta(a, a.Diff(b)) == b on random snapshot pairs,
// including the empty and full-churn extremes.
func TestApplyDeltaDiffIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pairs := []struct {
		name string
		a, b *Snapshot
	}{
		{"both empty", NewSnapshot("x", 0, nil), NewSnapshot("x", 1, nil)},
		{"empty to full", NewSnapshot("x", 0, nil), randomSnapshot(rng, "x", 1, 500, 1<<24)},
		{"full to empty", randomSnapshot(rng, "x", 0, 500, 1<<24), NewSnapshot("x", 1, nil)},
	}
	for i := 0; i < 20; i++ {
		a := randomSnapshot(rng, "x", 0, 100+rng.Intn(3000), 1<<24)
		pairs = append(pairs,
			struct {
				name string
				a, b *Snapshot
			}{"random churn", a, churned(rng, a, 1, 0.05+0.4*rng.Float64(), 1<<24)})
	}
	// Full churn: disjoint populations.
	a := randomSnapshot(rng, "x", 0, 1000, 1<<20)
	full := make([]netaddr.Addr, len(a.Addrs))
	for i, aa := range a.Addrs {
		full[i] = aa + 1<<20
	}
	pairs = append(pairs, struct {
		name string
		a, b *Snapshot
	}{"full churn", a, NewSnapshot("x", 1, full)})

	for _, pc := range pairs {
		d := pc.a.Diff(pc.b)
		if d.FromMonth != pc.a.Month || d.ToMonth != pc.b.Month || d.Protocol != "x" {
			t.Fatalf("%s: bad delta header %+v", pc.name, d)
		}
		got, err := ApplyDelta(pc.a, d)
		if err != nil {
			t.Fatalf("%s: ApplyDelta: %v", pc.name, err)
		}
		if got.Month != pc.b.Month || !slices.Equal(got.Addrs, pc.b.Addrs) {
			t.Fatalf("%s: ApplyDelta∘Diff is not the identity (%d addrs, want %d)",
				pc.name, len(got.Addrs), len(pc.b.Addrs))
		}
		// The carried-over set view (when present) must agree with the
		// rebuilt one.
		if got.Set().Len() != len(pc.b.Addrs) {
			t.Fatalf("%s: set view has %d addrs, want %d", pc.name, got.Set().Len(), len(pc.b.Addrs))
		}
		if !slices.Equal(got.Set().AppendTo(nil), pc.b.Addrs) {
			t.Fatalf("%s: set view contents diverge", pc.name)
		}
	}
}

// TestApplyDeltaCarriesSetView pins the copy-on-write fast path: when
// the previous snapshot's set view exists and the delta is sparse, the
// next view is derived rather than rebuilt, and still counts exactly.
func TestApplyDeltaCarriesSetView(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSnapshot(rng, "x", 0, 20000, 1<<28)
	a.Set() // build the view the overlay applies onto
	b := churned(rng, a, 1, 0.002, 1<<28)
	got, err := ApplyDelta(a, a.Diff(b))
	if err != nil {
		t.Fatal(err)
	}
	got.setMu.Lock()
	carried := got.set != nil
	got.setMu.Unlock()
	if !carried {
		t.Fatal("sparse delta over a built view did not carry the set")
	}
	if !slices.Equal(got.Set().AppendTo(nil), b.Addrs) {
		t.Fatal("carried set view diverges from the merged addresses")
	}
}

func TestApplyDeltaRejectsMismatch(t *testing.T) {
	a := NewSnapshot("x", 0, []netaddr.Addr{1, 5, 9})
	cases := []struct {
		name string
		d    *Delta
	}{
		{"wrong protocol", &Delta{Protocol: "y", FromMonth: 0, ToMonth: 1}},
		{"wrong month", &Delta{Protocol: "x", FromMonth: 2, ToMonth: 3}},
		{"died missing", &Delta{Protocol: "x", ToMonth: 1, Died: []netaddr.Addr{4}}},
		{"born present", &Delta{Protocol: "x", ToMonth: 1, Born: []netaddr.Addr{5}}},
		// More died than the snapshot holds: must error, not panic on a
		// negative capacity hint (regression).
		{"died outnumbers snapshot", &Delta{Protocol: "x", ToMonth: 1, Died: []netaddr.Addr{1, 2, 5, 9, 11}}},
		// Out-of-order runs must error, not merge into an unsorted
		// snapshot (regression).
		{"born unsorted", &Delta{Protocol: "x", ToMonth: 1, Born: []netaddr.Addr{50, 10}}},
		{"died unsorted", &Delta{Protocol: "x", ToMonth: 1, Died: []netaddr.Addr{9, 5}}},
	}
	for _, tc := range cases {
		if _, err := ApplyDelta(a, tc.d); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestSnapshotApplyBumpsGeneration pins the in-place path: the
// generation advances so identity-keyed caches stop serving stale
// counts, and the old address slice stays intact for holders.
func TestSnapshotApplyBumpsGeneration(t *testing.T) {
	s := NewSnapshot("x", 0, []netaddr.Addr{1, 5, 9})
	old := s.Addrs
	if s.Generation() != 0 {
		t.Fatalf("fresh generation = %d", s.Generation())
	}
	d := &Delta{Protocol: "x", FromMonth: 0, ToMonth: 1, Born: []netaddr.Addr{7}, Died: []netaddr.Addr{5}}
	if err := s.Apply(d); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != 1 || s.Month != 1 {
		t.Fatalf("after Apply: generation %d month %d", s.Generation(), s.Month)
	}
	if !slices.Equal(s.Addrs, []netaddr.Addr{1, 7, 9}) {
		t.Fatalf("after Apply: addrs %v", s.Addrs)
	}
	if !slices.Equal(old, []netaddr.Addr{1, 5, 9}) {
		t.Fatalf("old slice mutated: %v", old)
	}
	if !slices.Equal(s.Set().AppendTo(nil), s.Addrs) {
		t.Fatal("set view out of sync after Apply")
	}
}

func encodeDelta(t testing.TB, d *Delta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSnapshot(rng, "ftp", 2, 4000, 1<<26)
	b := churned(rng, a, 3, 0.2, 1<<26)
	d := a.Diff(b)
	got, err := ReadDelta(bytes.NewReader(encodeDelta(t, d)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Protocol != d.Protocol || got.FromMonth != d.FromMonth || got.ToMonth != d.ToMonth ||
		!slices.Equal(got.Born, d.Born) || !slices.Equal(got.Died, d.Died) {
		t.Fatal("delta round trip diverged")
	}
	// An empty delta survives too.
	empty := &Delta{Protocol: "x", FromMonth: 0, ToMonth: 1}
	got, err = ReadDelta(bytes.NewReader(encodeDelta(t, empty)))
	if err != nil || len(got.Born) != 0 || len(got.Died) != 0 {
		t.Fatalf("empty delta round trip: %+v, %v", got, err)
	}
}

// FuzzDeltaCodec feeds arbitrary bytes to the delta reader. Any stream
// it accepts must satisfy the Delta invariants (strictly ascending,
// disjoint runs) and survive a write/read round trip unchanged; any
// stream it rejects must fail with an error, never a panic or a
// pathological allocation.
func FuzzDeltaCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("TASSDLT\x01"))
	f.Add(encodeDelta(f, &Delta{Protocol: "x", FromMonth: 0, ToMonth: 1}))
	f.Add(encodeDelta(f, &Delta{
		Protocol: "ftp", FromMonth: 3, ToMonth: 4,
		Born: []netaddr.Addr{1, 2, 0xFFFFFFFF},
		Died: []netaddr.Addr{5, 500},
	}))
	// Declared count far beyond the bytes that follow.
	f.Add(append([]byte("TASSDLT\x01"), 0x01, 'x', 0x00, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 0x01))
	// Address both born and died.
	f.Add(append([]byte("TASSDLT\x01"), 0x01, 'x', 0x00, 0x01, 0x01, 0x07, 0x01, 0x07))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDelta(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		check := func(side string, run []netaddr.Addr) {
			for i := 1; i < len(run); i++ {
				if run[i] <= run[i-1] {
					t.Fatalf("accepted non-ascending %s at %d", side, i)
				}
			}
		}
		check("born", d.Born)
		check("died", d.Died)
		i, j := 0, 0
		for i < len(d.Born) && j < len(d.Died) {
			switch {
			case d.Born[i] < d.Died[j]:
				i++
			case d.Born[i] > d.Died[j]:
				j++
			default:
				t.Fatalf("accepted overlapping runs at %v", d.Born[i])
			}
		}
		again, err := ReadDelta(bytes.NewReader(encodeDelta(t, d)))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if again.Protocol != d.Protocol || again.FromMonth != d.FromMonth || again.ToMonth != d.ToMonth ||
			!slices.Equal(again.Born, d.Born) || !slices.Equal(again.Died, d.Died) {
			t.Fatal("round trip changed the delta")
		}
	})
}
