package census

import (
	"bytes"
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
)

// encodeSnapshot is a test helper returning the wire bytes of a snapshot.
func encodeSnapshot(t testing.TB, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotCodec feeds arbitrary bytes to the snapshot reader. Any
// stream the reader accepts must satisfy the Snapshot invariants
// (strictly ascending addresses, consistent set view) and survive a
// write/read round trip unchanged; any stream it rejects must fail with
// an error, never a panic or a pathological allocation.
func FuzzSnapshotCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("TASSCNS\x01"))
	f.Add(encodeSnapshot(f, NewSnapshot("ftp", 3, nil)))
	f.Add(encodeSnapshot(f, NewSnapshot("http", 0, []netaddr.Addr{1, 2, 3, 500, 1 << 30, 0xFFFFFFFF})))
	// Declared count far beyond the bytes that follow (the 32 GiB
	// pre-allocation shape before the cap).
	f.Add(append([]byte("TASSCNS\x01"), 0x01, 'x', 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 0x01))
	// Zero delta (duplicate address on the wire).
	f.Add(append([]byte("TASSCNS\x01"), 0x01, 'x', 0x00, 0x02, 0x05, 0x00))
	// Truncated headers: the stream ends mid-field — inside the magic,
	// after a protocol length that promises more bytes than exist, after
	// the month with no count, and right after a declared count with no
	// addresses behind it (the shape the pre-allocation guard rejects by
	// peeking at the remaining input).
	f.Add([]byte("TASSC"))
	f.Add(append([]byte("TASSCNS\x01"), 0x04, 'h', 't'))
	f.Add(append([]byte("TASSCNS\x01"), 0x01, 'x', 0x07))
	f.Add(append([]byte("TASSCNS\x01"), 0x01, 'x', 0x00, 0x64))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		for i := 1; i < len(snap.Addrs); i++ {
			if snap.Addrs[i] <= snap.Addrs[i-1] {
				t.Fatalf("accepted non-ascending addrs at %d: %v <= %v", i, snap.Addrs[i], snap.Addrs[i-1])
			}
		}
		set := snap.Set()
		if set.Len() != len(snap.Addrs) {
			t.Fatalf("set view has %d addrs, slice has %d", set.Len(), len(snap.Addrs))
		}
		round := set.AppendTo(nil)
		for i := range round {
			if round[i] != snap.Addrs[i] {
				t.Fatalf("set view addr %d = %v, want %v", i, round[i], snap.Addrs[i])
			}
		}
		// Round trip: what we accepted must re-encode and re-read equal.
		again, err := ReadSnapshot(bytes.NewReader(encodeSnapshot(t, snap)))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if again.Protocol != snap.Protocol || again.Month != snap.Month || len(again.Addrs) != len(snap.Addrs) {
			t.Fatalf("round trip changed header: %+v vs %+v", again, snap)
		}
		for i := range snap.Addrs {
			if again.Addrs[i] != snap.Addrs[i] {
				t.Fatalf("round trip changed addr %d", i)
			}
		}
	})
}

// TestReadSnapshotHugeCountCheapFailure is the satellite regression: a
// tiny stream declaring 2^32 hosts must fail during decoding without
// first allocating a 32 GiB slice.
func TestReadSnapshotHugeCountCheapFailure(t *testing.T) {
	stream := append([]byte("TASSCNS\x01"),
		0x01, 'x', // protocol "x"
		0x00,                         // month 0
		0xFF, 0xFF, 0xFF, 0xFF, 0x0F, // count = 0xFFFFFFFF
		0x01, // one delta, then EOF
	)
	if _, err := ReadSnapshot(bytes.NewReader(stream)); err == nil {
		t.Fatal("truncated huge-count stream accepted")
	}
}
