package census

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

func addrs(ss ...string) []netaddr.Addr {
	out := make([]netaddr.Addr, len(ss))
	for i, s := range ss {
		out[i] = netaddr.MustParseAddr(s)
	}
	return out
}

func TestNewSnapshotSortsAndDedups(t *testing.T) {
	s := NewSnapshot("ftp", 0, addrs("10.0.0.2", "10.0.0.1", "10.0.0.2", "9.0.0.1"))
	if s.Hosts() != 3 {
		t.Fatalf("Hosts = %d", s.Hosts())
	}
	want := addrs("9.0.0.1", "10.0.0.1", "10.0.0.2")
	for i := range want {
		if s.Addrs[i] != want[i] {
			t.Fatalf("Addrs = %v", s.Addrs)
		}
	}
	if !s.Contains(netaddr.MustParseAddr("10.0.0.1")) {
		t.Error("Contains miss")
	}
	if s.Contains(netaddr.MustParseAddr("10.0.0.3")) {
		t.Error("Contains false positive")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	raw := make([]netaddr.Addr, 50000)
	for i := range raw {
		raw[i] = netaddr.Addr(rng.Uint32())
	}
	s := NewSnapshot("https", 4, raw)
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	// Delta coding should stay well under 5 bytes/host for random data.
	if perHost := float64(buf.Len()) / float64(s.Hosts()); perHost > 5 {
		t.Errorf("encoding uses %.1f bytes/host", perHost)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Protocol != "https" || back.Month != 4 || back.Hosts() != s.Hosts() {
		t.Fatalf("header: %+v", back)
	}
	for i := range s.Addrs {
		if back.Addrs[i] != s.Addrs[i] {
			t.Fatalf("addr %d: %v != %v", i, back.Addrs[i], s.Addrs[i])
		}
	}
}

func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(vals []uint32, month uint8) bool {
		raw := make([]netaddr.Addr, len(vals))
		for i, v := range vals {
			raw[i] = netaddr.Addr(v)
		}
		s := NewSnapshot("p", int(month), raw)
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			return false
		}
		back, err := ReadSnapshot(&buf)
		if err != nil || back.Hosts() != s.Hosts() {
			return false
		}
		for i := range s.Addrs {
			if back.Addrs[i] != s.Addrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("truncated magic must fail")
	}
	if _, err := ReadSnapshot(bytes.NewReader([]byte("XXXXXXXXrest"))); !errors.Is(err, ErrFormat) {
		t.Errorf("bad magic: %v", err)
	}
	// Valid header then truncated body.
	s := NewSnapshot("ftp", 0, addrs("1.2.3.4", "5.6.7.8"))
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, err := ReadSnapshot(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated body must fail")
	}
}

func TestWriteToRejectsUnsorted(t *testing.T) {
	s := &Snapshot{Protocol: "x", Addrs: addrs("2.0.0.0", "1.0.0.0")}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); !errors.Is(err, ErrFormat) {
		t.Errorf("unsorted write: %v", err)
	}
}

func TestSeriesRoundTrip(t *testing.T) {
	sr := &Series{Protocol: "ftp"}
	rng := rand.New(rand.NewSource(2))
	for m := 0; m < 7; m++ {
		raw := make([]netaddr.Addr, 1000)
		for i := range raw {
			raw[i] = netaddr.Addr(rng.Uint32())
		}
		sr.Snapshots = append(sr.Snapshots, NewSnapshot("ftp", m, raw))
	}
	var buf bytes.Buffer
	if _, err := sr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Protocol != "ftp" || back.Months() != 7 {
		t.Fatalf("series: %q, %d months", back.Protocol, back.Months())
	}
	for m := 0; m < 7; m++ {
		if back.At(m).Month != m || back.At(m).Hosts() != sr.At(m).Hosts() {
			t.Fatalf("month %d mismatch", m)
		}
	}
}

func TestReadSeriesErrors(t *testing.T) {
	if _, err := ReadSeries(bytes.NewReader(nil)); err == nil {
		t.Error("empty series must fail")
	}
	var buf bytes.Buffer
	a := NewSnapshot("ftp", 0, addrs("1.2.3.4"))
	b := NewSnapshot("http", 1, addrs("1.2.3.4"))
	a.WriteTo(&buf)
	b.WriteTo(&buf)
	if _, err := ReadSeries(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("mixed protocols must fail")
	}
	buf.Reset()
	a.WriteTo(&buf)
	a.WriteTo(&buf) // same month twice
	if _, err := ReadSeries(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("months out of order must fail")
	}
}

func TestCountByPrefixAndCountIn(t *testing.T) {
	part, err := rib.NewPartition([]netaddr.Prefix{
		netaddr.MustParsePrefix("10.0.0.0/8"),
		netaddr.MustParsePrefix("20.0.0.0/8"),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSnapshot("ftp", 0, addrs("10.0.0.1", "10.9.9.9", "20.1.1.1", "30.0.0.1"))
	counts, outside := s.CountByPrefix(part)
	if counts[0] != 2 || counts[1] != 1 || outside != 1 {
		t.Fatalf("counts %v outside %d", counts, outside)
	}
	if got := s.CountIn(part); got != 3 {
		t.Fatalf("CountIn = %d", got)
	}
}

func TestIntersectCount(t *testing.T) {
	a := addrs("1.0.0.0", "2.0.0.0", "3.0.0.0")
	b := addrs("2.0.0.0", "3.0.0.0", "4.0.0.0")
	if got := IntersectCount(a, b); got != 2 {
		t.Fatalf("IntersectCount = %d", got)
	}
	if got := IntersectCount(nil, b); got != 0 {
		t.Fatalf("IntersectCount(nil) = %d", got)
	}
}

func BenchmarkSnapshotEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	raw := make([]netaddr.Addr, 1<<20)
	for i := range raw {
		raw[i] = netaddr.Addr(rng.Uint32())
	}
	s := NewSnapshot("bench", 0, raw)
	b.SetBytes(int64(len(s.Addrs) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	raw := make([]netaddr.Addr, 1<<20)
	for i := range raw {
		raw[i] = netaddr.Addr(rng.Uint32())
	}
	s := NewSnapshot("bench", 0, raw)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(s.Addrs) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadSnapshot(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
