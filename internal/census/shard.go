package census

import (
	"runtime"
	"sort"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/par"
	"github.com/tass-scan/tass/internal/rib"
)

// CountAddrsSharded counts, for each prefix of p, how many of the sorted
// addresses it contains, fanning the merge walk out over up to workers
// goroutines (0 means GOMAXPROCS). The partition is split into
// contiguous prefix shards; each shard locates its address subrange by
// binary search and counts independently; outside is recovered as the
// total minus the per-shard sums. The result is identical to
// rib.Partition.CountAddrs at any worker count.
func CountAddrsSharded(addrs []netaddr.Addr, p rib.Partition, workers int) (counts []int, outside int) {
	n := p.Len()
	if n == 0 {
		return make([]int, 0), len(addrs)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Below a few thousand prefixes per shard the spawn overhead beats
	// the walk itself; fall back to the serial merge.
	const minShard = 2048
	shard := (n + workers - 1) / workers
	if shard < minShard {
		shard = minShard
	}
	if shard >= n || len(addrs) == 0 {
		return p.CountAddrs(addrs)
	}
	counts = make([]int, n)

	inside := make([]int, (n+shard-1)/shard)
	par.ForEachChunk(n, workers, shard, func(lo, hi int) {
		// Address subrange covered by prefixes [lo, hi).
		first := p.FirstAt(lo)
		last := p.LastAt(hi - 1)
		alo := sort.Search(len(addrs), func(i int) bool { return addrs[i] >= first })
		ahi := alo + sort.Search(len(addrs)-alo, func(i int) bool { return addrs[alo+i] > last })
		pi := lo
		got := 0
		for _, a := range addrs[alo:ahi] {
			for pi < hi && p.LastAt(pi) < a {
				pi++
			}
			if pi == hi {
				break
			}
			if a < p.FirstAt(pi) {
				continue // gap between shard prefixes
			}
			counts[pi]++
			got++
		}
		inside[lo/shard] = got
	})
	outside = len(addrs)
	for _, got := range inside {
		outside -= got
	}
	return counts, outside
}

// countShardedFamily routes a per-prefix count to the sharded IPv4
// merge walk or, for other families, to the serial partition count
// (IPv6 universes are hitlist-seeded and orders of magnitude smaller,
// so the fan-out has nothing to amortize yet).
func countShardedFamily[A netaddr.Key[A]](addrs []A, p rib.PartOf[A], workers int) (counts []int, outside int) {
	if a4, ok := any(addrs).([]netaddr.Addr); ok {
		c, o := CountAddrsSharded(a4, any(p).(rib.Partition), workers)
		return c, o
	}
	return p.CountAddrs(addrs)
}

// CountByPrefixSharded is Snapshot.CountByPrefix with the counting walk
// sharded over workers goroutines.
func (s *SnapshotOf[A]) CountByPrefixSharded(p rib.PartOf[A], workers int) (counts []int, outside int) {
	return s.countsSharded(p, workers)
}

// countsSharded routes a per-prefix count to the backing the snapshot
// actually has: lazy snapshots count off the block index (decoding only
// the boundary blocks each prefix touches), eager ones run the sharded
// merge walk over Addrs. Results are identical at any worker count and
// across backings — the golden-equality contract the selection stack
// relies on.
func (s *SnapshotOf[A]) countsSharded(p rib.PartOf[A], workers int) (counts []int, outside int) {
	if s.lazy {
		return countSetSharded(s.Set(), p, workers)
	}
	return countShardedFamily(s.Addrs, p, workers)
}

// countSetSharded counts per-prefix hosts against a block-indexed set,
// fanning contiguous prefix shards out over workers goroutines with one
// range Counter each. Per-prefix counts are independent range queries,
// so the result cannot depend on the shard layout.
func countSetSharded[A netaddr.Key[A]](set *addrset.SetOf[A], p rib.PartOf[A], workers int) (counts []int, outside int) {
	n := p.Len()
	if n == 0 {
		return make([]int, 0), set.Len()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	counts = make([]int, n)
	// Counters amortize block decodes across a run of ascending
	// prefixes; keep shards large enough that the amortization works.
	const minShard = 512
	shard := (n + workers - 1) / workers
	if shard < minShard {
		shard = minShard
	}
	inside := make([]int, (n+shard-1)/shard)
	par.ForEachChunk(n, workers, shard, func(lo, hi int) {
		ctr := set.Counter()
		got := 0
		for i := lo; i < hi; i++ {
			c := ctr.Count(p.FirstAt(i), p.LastAt(i))
			counts[i] = c
			got += c
		}
		inside[lo/shard] = got
	})
	outside = set.Len()
	for _, got := range inside {
		outside -= got
	}
	return counts, outside
}
