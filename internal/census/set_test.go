package census

import (
	"testing"
)

// TestCountInMatchesMergeWalk checks the set-backed CountIn against the
// merge walk on full and sparse partitions.
func TestCountInMatchesMergeWalk(t *testing.T) {
	part, addrs := shardFixture(t)
	snap := NewSnapshot("t", 0, addrs)

	for _, tc := range []struct {
		name    string
		indexes []int
	}{
		{"single", []int{0}},
		{"sparse", sparseIndexes(part.Len(), 50)},
		{"half", sparseIndexes(part.Len(), 2)},
		{"full", sparseIndexes(part.Len(), 1)},
	} {
		sub := part.Subset(tc.indexes)
		counts, _ := sub.CountAddrs(snap.Addrs)
		want := 0
		for _, c := range counts {
			want += c
		}
		if got := snap.CountIn(sub); got != want {
			t.Fatalf("%s: CountIn = %d, merge walk = %d", tc.name, got, want)
		}
	}
}

// sparseIndexes returns every stride-th index below n.
func sparseIndexes(n, stride int) []int {
	var out []int
	for i := 0; i < n; i += stride {
		out = append(out, i)
	}
	return out
}

// TestCountByPrefixSparsePathMatches forces both CountByPrefix paths
// (block-index range counts vs merge walk) and checks they agree.
func TestCountByPrefixSparsePathMatches(t *testing.T) {
	part, addrs := shardFixture(t)
	snap := NewSnapshot("t", 0, addrs)

	// The sparse subset takes the range-count path (few prefixes, many
	// addresses); compare it against the merge walk directly.
	sub := part.Subset(sparseIndexes(part.Len(), 100))
	if !sparseFor(sub.Len(), len(snap.Addrs)) {
		t.Fatalf("fixture not sparse: %d prefixes over %d addrs", sub.Len(), len(snap.Addrs))
	}
	gotCounts, gotOutside := snap.CountByPrefix(sub)
	wantCounts, wantOutside := sub.CountAddrs(snap.Addrs)
	if gotOutside != wantOutside {
		t.Fatalf("outside = %d, want %d", gotOutside, wantOutside)
	}
	for i := range wantCounts {
		if gotCounts[i] != wantCounts[i] {
			t.Fatalf("counts[%d] = %d, want %d", i, gotCounts[i], wantCounts[i])
		}
	}
}

// TestSetViewMemoized checks that the snapshot's set view is built once
// and matches the address slice.
func TestSetViewMemoized(t *testing.T) {
	_, addrs := shardFixture(t)
	snap := NewSnapshot("t", 0, addrs)
	s1 := snap.Set()
	s2 := snap.Set()
	if s1 != s2 {
		t.Fatal("Set() rebuilt the view")
	}
	if s1.Len() != len(snap.Addrs) {
		t.Fatalf("set Len = %d, want %d", s1.Len(), len(snap.Addrs))
	}
}

// TestIntersectCountSetMatchesMerge compares the galloping set
// intersection against the merge-walk IntersectCount on snapshot pairs,
// and checks IntersectWith agrees on both sides of its size heuristic.
func TestIntersectCountSetMatchesMerge(t *testing.T) {
	_, addrs := shardFixture(t)
	a := NewSnapshot("a", 0, addrs)
	similar := NewSnapshot("b", 0, addrs[:2*len(addrs)/3])
	tiny := NewSnapshot("c", 0, addrs[len(addrs)/2:len(addrs)/2+900])

	for _, b := range []*Snapshot{similar, tiny} {
		want := IntersectCount(a.Addrs, b.Addrs)
		if got := a.Set().IntersectCount(b.Set()); got != want {
			t.Fatalf("set IntersectCount = %d, merge = %d", got, want)
		}
		if got := a.IntersectWith(b); got != want {
			t.Fatalf("IntersectWith = %d, merge = %d", got, want)
		}
		if got := b.IntersectWith(a); got != want {
			t.Fatalf("reversed IntersectWith = %d, merge = %d", got, want)
		}
	}
}
