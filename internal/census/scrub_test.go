package census

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"github.com/tass-scan/tass/internal/addrset"
)

// flipByte XORs one byte of the file at path in place.
func flipByte(t *testing.T, path string, off int64, mask byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= mask
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func TestScrubCleanSnapshot(t *testing.T) {
	eager := fileFixtureSnap(21, 12000)
	path := writeSnapFile(t, eager)
	rep, err := ScrubSnapshotFile(path)
	if err != nil {
		t.Fatalf("ScrubSnapshotFile: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("clean file scrubbed dirty: %+v", rep)
	}
	if rep.Format != "TASSNAP3" {
		t.Fatalf("Format = %q want TASSNAP3", rep.Format)
	}
	if rep.Hosts != eager.Hosts() {
		t.Fatalf("Hosts = %d want %d", rep.Hosts, eager.Hosts())
	}
	if rep.Blocks == 0 {
		t.Fatal("Blocks = 0")
	}
}

func TestScrubAndRepairDamagedBlock(t *testing.T) {
	eager := fileFixtureSnap(22, 20000)
	path := writeSnapFile(t, eager)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// One flipped bit near the end of the file lands inside the last
	// payload block (the index is at the front).
	flipByte(t, path, st.Size()-10, 0x40)

	scrub, err := ScrubSnapshotFile(path)
	if err != nil {
		t.Fatalf("ScrubSnapshotFile: %v", err)
	}
	if scrub.Clean() {
		t.Fatal("corrupt file scrubbed clean")
	}
	if scrub.IndexErr != nil {
		t.Fatalf("index blamed for payload damage: %v", scrub.IndexErr)
	}
	if scrub.PayloadCRCOK {
		t.Fatal("payload CRC passed over flipped bit")
	}
	if len(scrub.Damage) == 0 {
		t.Fatal("no block damage reported")
	}
	lost := 0
	for _, d := range scrub.Damage {
		if d.Len <= 0 || d.Off <= 0 || int64(d.Off+d.Len) > st.Size() {
			t.Fatalf("damage extent [%d,%d) outside file", d.Off, d.Off+d.Len)
		}
		if d.Err == nil {
			t.Fatal("damage without an error")
		}
		lost += d.Lost
	}
	if scrub.Hosts+lost != eager.Hosts() {
		t.Fatalf("intact %d + lost %d != total %d", scrub.Hosts, lost, eager.Hosts())
	}

	rep, err := RepairSnapshotFile(path)
	if err != nil {
		t.Fatalf("RepairSnapshotFile: %v", err)
	}
	if !rep.Repaired {
		t.Fatal("damaged file not repaired")
	}
	if rep.RecoveredHosts != scrub.Hosts || rep.LostAddrs != lost {
		t.Fatalf("recovered %d / lost %d, want %d / %d",
			rep.RecoveredHosts, rep.LostAddrs, scrub.Hosts, lost)
	}
	if rep.QuarantinePath == "" {
		t.Fatal("no quarantine sidecar")
	}
	qraw, err := os.ReadFile(rep.QuarantinePath)
	if err != nil {
		t.Fatalf("quarantine sidecar: %v", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(qraw))
	if !sc.Scan() {
		t.Fatal("empty quarantine sidecar")
	}
	var head quarantineRecord
	if err := json.Unmarshal(sc.Bytes(), &head); err != nil || head.Quarantine != "tass-snapshot" {
		t.Fatalf("quarantine header %q: %v", sc.Text(), err)
	}
	recs := 0
	for sc.Scan() {
		var rec quarantineRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("quarantine record: %v", err)
		}
		if rec.Data == "" && rec.ReadErr == "" {
			t.Fatal("quarantine record lost the damaged bytes")
		}
		recs++
	}
	if recs != len(scrub.Damage) {
		t.Fatalf("%d quarantine records for %d damaged blocks", recs, len(scrub.Damage))
	}

	// The repaired file verifies end to end and holds exactly the
	// intact addresses (a subset of the original population).
	if err := VerifySnapshotFile(path); err != nil {
		t.Fatalf("repaired file fails verify: %v", err)
	}
	again, err := ScrubSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Clean() {
		t.Fatalf("repaired file scrubs dirty: %+v", again)
	}
	snap, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	got := snap.Set().AppendTo(nil)
	if len(got) != rep.RecoveredHosts {
		t.Fatalf("repaired file holds %d addrs, repair said %d", len(got), rep.RecoveredHosts)
	}
	i := 0
	for _, a := range got {
		for i < len(eager.Addrs) && eager.Addrs[i] != a {
			i++
		}
		if i == len(eager.Addrs) {
			t.Fatalf("repaired file invented address %v", a)
		}
	}
}

func TestRepairCleanFileIsNoop(t *testing.T) {
	eager := fileFixtureSnap(23, 4000)
	path := writeSnapFile(t, eager)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RepairSnapshotFile(path)
	if err != nil {
		t.Fatalf("RepairSnapshotFile(clean): %v", err)
	}
	if rep.Repaired {
		t.Fatal("clean file reported repaired")
	}
	if rep.RecoveredHosts != eager.Hosts() {
		t.Fatalf("RecoveredHosts = %d want %d", rep.RecoveredHosts, eager.Hosts())
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(before, after) {
		t.Fatal("no-op repair rewrote the file")
	}
}

func TestRepairUnusableIndex(t *testing.T) {
	eager := fileFixtureSnap(24, 3000)
	path := writeSnapFile(t, eager)
	flipByte(t, path, 12, 0x01) // inside the header/directory

	scrub, err := ScrubSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if scrub.IndexErr == nil {
		t.Fatal("index corruption not attributed to the index")
	}
	if _, err := RepairSnapshotFile(path); err == nil {
		t.Fatal("repaired a file with an unusable index")
	}
}

// TestVerifySnapshotFileV1 pins the satellite behavior: VerifySnapshotFile
// accepts a valid v1 stream file and rejects a damaged one.
func TestVerifySnapshotFileV1(t *testing.T) {
	eager := fileFixtureSnap(25, 2000)
	path := filepath.Join(t.TempDir(), "census.v1")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eager.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshotFile(path); err != nil {
		t.Fatalf("valid v1 file fails verify: %v", err)
	}
	scrub, err := ScrubSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !scrub.Clean() || scrub.Format != "TASSNAP1" || scrub.Hosts != eager.Hosts() {
		t.Fatalf("v1 scrub: %+v", scrub)
	}

	// Truncation is damage every v1 reader must catch (the stream has no
	// checksum, but the host count no longer matches the bytes).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.v1")
	if err := os.WriteFile(cut, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshotFile(cut); err == nil {
		t.Fatal("truncated v1 file passed verify")
	}
	scrub, err = ScrubSnapshotFile(cut)
	if err != nil {
		t.Fatal(err)
	}
	if scrub.IndexErr == nil {
		t.Fatal("truncated v1 scrubbed clean")
	}
	// v1 has no block structure: damage is unrepairable by design.
	if _, err := RepairSnapshotFile(cut); err == nil {
		t.Fatal("repaired a damaged v1 stream")
	}
}

// TestVerifyIndexOKPayloadCorrupt pins the split the lazy stack depends
// on: a payload flip leaves the index CRC valid, so open succeeds and the
// damage surfaces only at first decode — as a typed *addrset.BlockError —
// while the deep verify rejects the file.
func TestVerifyIndexOKPayloadCorrupt(t *testing.T) {
	eager := fileFixtureSnap(26, 8000)
	path := writeSnapFile(t, eager)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, path, st.Size()-5, 0x10)

	snap, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatalf("open after payload flip: %v", err)
	}
	defer snap.Close()
	if err := VerifySnapshotFile(path); err == nil {
		t.Fatal("payload flip passed deep verify")
	}
	err = snap.Set().CheckBlocks()
	if err == nil {
		t.Fatal("CheckBlocks missed the damaged block")
	}
	var be *addrset.BlockError
	if !errors.As(err, &be) {
		t.Fatalf("fault is %T, want *addrset.BlockError: %v", err, err)
	}
	// An ordinary read through the cache records the fault on the set's
	// ledger, where StorageErr/StorageFaults surface it.
	_ = snap.Set().AppendTo(nil)
	if err := snap.StorageErr(); err == nil {
		t.Fatal("StorageErr nil after a faulted read")
	}
	if len(snap.StorageFaults()) == 0 {
		t.Fatal("StorageFaults empty after a faulted read")
	}
}

// TestSnapshotFileV2Compat pins backward compatibility: files written in
// the CRC-less v2 format still open, verify, and decode identically.
func TestSnapshotFileV2Compat(t *testing.T) {
	defer func(v int) { snapWriteVersion = v }(snapWriteVersion)
	snapWriteVersion = 2

	eager := fileFixtureSnap(27, 9000)
	path := writeSnapFile(t, eager)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:8]) != "TASSNAP2" {
		t.Fatalf("magic %q want TASSNAP2", raw[:8])
	}
	if err := VerifySnapshotFile(path); err != nil {
		t.Fatalf("v2 file fails verify: %v", err)
	}
	snap, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if !slices.Equal(snap.Set().AppendTo(nil), eager.Addrs) {
		t.Fatal("v2 file decodes differently")
	}
	scrub, err := ScrubSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !scrub.Clean() || scrub.Format != "TASSNAP2" {
		t.Fatalf("v2 scrub: %+v", scrub)
	}
	// Repairing a damaged v2 file upgrades it to the current format.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, path, st.Size()-8, 0x20)
	snapWriteVersion = 3
	rep, err := RepairSnapshotFile(path)
	if err != nil {
		t.Fatalf("repairing damaged v2: %v", err)
	}
	if !rep.Repaired {
		t.Fatal("damaged v2 not repaired")
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:8]) != "TASSNAP3" {
		t.Fatalf("repair wrote %q, want an upgraded TASSNAP3", raw[:8])
	}
}

// FuzzSnapshotFileCorruption drives arbitrary mutations of a valid
// snapshot file through the whole degradation surface: open, scrub,
// degraded decode, and repair must never panic — every outcome is an
// error or a report.
func FuzzSnapshotFileCorruption(f *testing.F) {
	seedSnap := fileFixtureSnap(28, 600)
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.snap")
	if err := WriteSnapshotFile(seedPath, seedSnap); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	for _, off := range []int{9, 20, len(raw) / 2, len(raw) - 3} {
		corrupt := append([]byte(nil), raw...)
		corrupt[off] ^= 0x80
		f.Add(corrupt)
	}
	f.Add(raw[:len(raw)/3])
	v2 := func() []byte {
		defer func(v int) { snapWriteVersion = v }(snapWriteVersion)
		snapWriteVersion = 2
		p := filepath.Join(dir, "seed.snap2")
		if err := WriteSnapshotFile(p, seedSnap); err != nil {
			f.Fatal(err)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}()
	f.Add(v2)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.snap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		scrub, err := ScrubSnapshotFile(path)
		if err == nil && scrub.Clean() && scrub.IndexErr == nil {
			// A clean scrub promises a verifiable file.
			if verr := VerifySnapshotFile(path); verr != nil {
				t.Fatalf("scrub clean but verify failed: %v", verr)
			}
		}
		snap, oerr := OpenSnapshotFile(path)
		if oerr == nil {
			snap.SetFaultPolicy(addrset.Degrade)
			_ = snap.Set().AppendTo(nil) // must degrade, never panic
			snap.Close()
		}
		_, _ = RepairSnapshotFile(path) // errors allowed, panics are not
	})
}
