package census

import (
	"sync"
	"testing"

	"github.com/tass-scan/tass/internal/rib"
)

func TestCountCacheMatchesDirect(t *testing.T) {
	part, addrs := shardFixture(t)
	snap := NewSnapshot("t", 0, addrs)
	want, wantOutside := part.CountAddrs(snap.Addrs)

	cache := NewCountCache()
	for round := 0; round < 3; round++ {
		got, outside := cache.Counts(snap, part, 4)
		if outside != wantOutside {
			t.Fatalf("round %d: outside = %d, want %d", round, outside, wantOutside)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: counts[%d] = %d, want %d", round, i, got[i], want[i])
			}
		}
	}
	if hits, misses := cache.Stats(); hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 2/1", hits, misses)
	}
}

func TestCountCacheKeysByIdentity(t *testing.T) {
	part, addrs := shardFixture(t)
	snapA := NewSnapshot("a", 0, addrs)
	snapB := NewSnapshot("b", 0, addrs[:len(addrs)/2])
	sub := part.Subset([]int{0, 1, 2})

	cache := NewCountCache()
	cache.Counts(snapA, part, 1)
	cache.Counts(snapA, sub, 1)  // different partition: new entry
	cache.Counts(snapB, part, 1) // different snapshot: new entry
	cache.Counts(snapA, part, 1) // repeat: hit
	if hits, misses := cache.Stats(); hits != 1 || misses != 3 {
		t.Fatalf("stats = %d hits / %d misses, want 1/3", hits, misses)
	}

	// The cached result for the subset must be the subset's counts, not
	// the full partition's.
	got, _ := cache.Counts(snapA, sub, 1)
	want, _ := sub.CountAddrs(snapA.Addrs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("subset counts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCountCacheNilComputes(t *testing.T) {
	part, addrs := shardFixture(t)
	snap := NewSnapshot("t", 0, addrs)
	var cache *CountCache
	got, outside := cache.Counts(snap, part, 2)
	want, wantOutside := part.CountAddrs(snap.Addrs)
	if outside != wantOutside {
		t.Fatalf("nil cache outside = %d, want %d", outside, wantOutside)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nil cache counts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("nil cache stats = %d/%d", hits, misses)
	}
}

// TestCountCacheConcurrent hammers one (snapshot, partition) pair from
// many goroutines: the count must be computed once and every caller
// must see identical results (the race detector guards the rest).
func TestCountCacheConcurrent(t *testing.T) {
	part, addrs := shardFixture(t)
	snap := NewSnapshot("t", 0, addrs)
	cache := NewCountCache()
	want, _ := part.CountAddrs(snap.Addrs)

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _ := cache.Counts(snap, part, 2)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("concurrent counts[%d] = %d, want %d", i, got[i], want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	if hits, misses := cache.Stats(); misses != 1 || hits != 15 {
		t.Fatalf("stats = %d hits / %d misses, want 15/1", hits, misses)
	}
}

func TestCountCacheEmptyPartition(t *testing.T) {
	_, addrs := shardFixture(t)
	snap := NewSnapshot("t", 0, addrs)
	cache := NewCountCache()
	counts, outside := cache.Counts(snap, rib.Partition{}, 1)
	if len(counts) != 0 || outside != len(snap.Addrs) {
		t.Fatalf("empty partition: counts=%d outside=%d, want 0 and %d", len(counts), outside, len(snap.Addrs))
	}
}
