package census

import (
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

func lruPartition(t *testing.T) rib.Partition {
	t.Helper()
	p, err := rib.NewPartition([]netaddr.Prefix{
		netaddr.MustParsePrefix("10.0.0.0/8"),
		netaddr.MustParsePrefix("11.0.0.0/8"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCountCacheLRUEviction pins the bound: the cache never holds more
// than its cap, and the least-recently-used entry is the one recomputed
// after eviction.
func TestCountCacheLRUEviction(t *testing.T) {
	part := lruPartition(t)
	c := NewCountCacheCap(2)
	snaps := []*Snapshot{
		NewSnapshot("a", 0, []netaddr.Addr{netaddr.MustParseAddr("10.0.0.1")}),
		NewSnapshot("b", 0, []netaddr.Addr{netaddr.MustParseAddr("10.0.0.2")}),
		NewSnapshot("c", 0, []netaddr.Addr{netaddr.MustParseAddr("10.0.0.3")}),
	}
	c.Counts(snaps[0], part, 1)
	c.Counts(snaps[1], part, 1)
	c.Counts(snaps[0], part, 1) // refresh 0: 1 is now LRU
	c.Counts(snaps[2], part, 1) // evicts 1
	if n := c.Len(); n != 2 {
		t.Fatalf("cache holds %d entries, cap is 2", n)
	}
	hits0, misses0 := c.Stats()
	c.Counts(snaps[0], part, 1) // still resident
	if hits, _ := c.Stats(); hits != hits0+1 {
		t.Fatal("refreshed entry was evicted")
	}
	c.Counts(snaps[1], part, 1) // evicted: must recompute
	if _, misses := c.Stats(); misses != misses0+1 {
		t.Fatal("evicted entry was served from cache")
	}
}

// TestCountCacheGenerationInvalidates pins the generation tag: an
// in-place Apply must stop the cache from serving the pre-mutation
// counts for the same snapshot pointer.
func TestCountCacheGenerationInvalidates(t *testing.T) {
	part := lruPartition(t)
	c := NewCountCache()
	s := NewSnapshot("x", 0, []netaddr.Addr{
		netaddr.MustParseAddr("10.0.0.1"),
		netaddr.MustParseAddr("10.0.0.2"),
	})
	counts, _ := c.Counts(s, part, 1)
	if counts[0] != 2 {
		t.Fatalf("pre-mutation counts[0] = %d", counts[0])
	}
	err := s.Apply(&Delta{Protocol: "x", FromMonth: 0, ToMonth: 1,
		Born: []netaddr.Addr{netaddr.MustParseAddr("11.0.0.9")},
		Died: []netaddr.Addr{netaddr.MustParseAddr("10.0.0.2")}})
	if err != nil {
		t.Fatal(err)
	}
	counts, _ = c.Counts(s, part, 1)
	if counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("post-mutation counts = %v: stale entry served", counts)
	}
}
