// Package bgp implements the BGP-4 wire encodings the TASS pipeline needs
// to consume raw routing data: UPDATE path attributes (RFC 4271, with
// 4-octet AS support per RFC 6793) and NLRI prefix encoding. Parsing and
// serialization are symmetric (gopacket-style DecodeFromBytes/SerializeTo
// pairs) and round-trip tested.
//
// The package is deliberately scoped to what a RIB consumer needs: it
// does not implement the BGP state machine, only the data formats found
// inside MRT TABLE_DUMP_V2 and BGP4MP records.
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/tass-scan/tass/internal/netaddr"
)

// Path-attribute type codes (RFC 4271 §4.3, RFC 1997).
const (
	AttrTypeOrigin          = 1
	AttrTypeASPath          = 2
	AttrTypeNextHop         = 3
	AttrTypeMED             = 4
	AttrTypeLocalPref       = 5
	AttrTypeAtomicAggregate = 6
	AttrTypeAggregator      = 7
	AttrTypeCommunities     = 8
)

// Attribute flag bits.
const (
	FlagOptional   = 0x80
	FlagTransitive = 0x40
	FlagPartial    = 0x20
	FlagExtended   = 0x10 // 2-byte length
)

// ORIGIN values.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// AS_PATH segment types.
const (
	SegmentASSet      = 1
	SegmentASSequence = 2
)

// ErrTruncated reports attribute data shorter than its declared length.
var ErrTruncated = errors.New("bgp: truncated data")

// ErrMalformed reports structurally invalid attribute data.
var ErrMalformed = errors.New("bgp: malformed data")

// Segment is one AS_PATH segment.
type Segment struct {
	// Type is SegmentASSet or SegmentASSequence.
	Type uint8
	// ASNs lists the AS numbers of the segment.
	ASNs []uint32
}

// ASPath is a sequence of AS_PATH segments.
type ASPath []Segment

// Origin returns the originating AS: the last AS of the last
// AS_SEQUENCE segment (or, when the path ends in an AS_SET, the set is
// ambiguous and the first member is returned). ok is false for an empty
// path.
func (p ASPath) Origin() (uint32, bool) {
	if len(p) == 0 {
		return 0, false
	}
	last := p[len(p)-1]
	if len(last.ASNs) == 0 {
		return 0, false
	}
	if last.Type == SegmentASSequence {
		return last.ASNs[len(last.ASNs)-1], true
	}
	return last.ASNs[0], true
}

// Attributes is a parsed BGP UPDATE path-attribute block. Optional
// attributes use pointers so that absence is distinguishable from zero.
type Attributes struct {
	// Origin is the ORIGIN attribute value; nil when absent.
	Origin *uint8
	// ASPath is the AS_PATH attribute (empty when absent).
	ASPath ASPath
	// NextHop is the NEXT_HOP address; nil when absent.
	NextHop *netaddr.Addr
	// MED is MULTI_EXIT_DISC; nil when absent.
	MED *uint32
	// LocalPref is LOCAL_PREF; nil when absent.
	LocalPref *uint32
	// AtomicAggregate reports presence of ATOMIC_AGGREGATE.
	AtomicAggregate bool
	// Aggregator is the AGGREGATOR (AS, router-ID) pair; nil when absent.
	Aggregator *Aggregator
	// Communities lists RFC 1997 community values.
	Communities []uint32
	// Unknown keeps unrecognized attributes for round-tripping.
	Unknown []RawAttribute
}

// Aggregator is the AGGREGATOR attribute payload.
type Aggregator struct {
	AS       uint32
	RouterID uint32
}

// RawAttribute preserves an attribute this package does not interpret.
type RawAttribute struct {
	Flags uint8
	Type  uint8
	Value []byte
}

// OriginAS returns the originating AS of the route per the AS_PATH.
func (a *Attributes) OriginAS() (uint32, bool) { return a.ASPath.Origin() }

// ParseAttributes decodes a path-attribute block. as4 selects 4-octet AS
// numbers in AS_PATH and AGGREGATOR (always true inside TABLE_DUMP_V2 per
// RFC 6396 §4.3.4).
func ParseAttributes(data []byte, as4 bool) (*Attributes, error) {
	attrs := &Attributes{}
	for len(data) > 0 {
		if len(data) < 2 {
			return nil, fmt.Errorf("%w: attribute header", ErrTruncated)
		}
		flags, typ := data[0], data[1]
		var alen int
		var body []byte
		if flags&FlagExtended != 0 {
			if len(data) < 4 {
				return nil, fmt.Errorf("%w: extended length", ErrTruncated)
			}
			alen = int(binary.BigEndian.Uint16(data[2:4]))
			data = data[4:]
		} else {
			if len(data) < 3 {
				return nil, fmt.Errorf("%w: length", ErrTruncated)
			}
			alen = int(data[2])
			data = data[3:]
		}
		if len(data) < alen {
			return nil, fmt.Errorf("%w: attribute %d wants %d bytes, has %d",
				ErrTruncated, typ, alen, len(data))
		}
		body, data = data[:alen], data[alen:]

		switch typ {
		case AttrTypeOrigin:
			if len(body) != 1 {
				return nil, fmt.Errorf("%w: ORIGIN length %d", ErrMalformed, len(body))
			}
			v := body[0]
			if v > OriginIncomplete {
				return nil, fmt.Errorf("%w: ORIGIN value %d", ErrMalformed, v)
			}
			attrs.Origin = &v
		case AttrTypeASPath:
			path, err := parseASPath(body, as4)
			if err != nil {
				return nil, err
			}
			attrs.ASPath = path
		case AttrTypeNextHop:
			if len(body) != 4 {
				return nil, fmt.Errorf("%w: NEXT_HOP length %d", ErrMalformed, len(body))
			}
			v := netaddr.Addr(binary.BigEndian.Uint32(body))
			attrs.NextHop = &v
		case AttrTypeMED:
			v, err := parseU32(body, "MED")
			if err != nil {
				return nil, err
			}
			attrs.MED = &v
		case AttrTypeLocalPref:
			v, err := parseU32(body, "LOCAL_PREF")
			if err != nil {
				return nil, err
			}
			attrs.LocalPref = &v
		case AttrTypeAtomicAggregate:
			if len(body) != 0 {
				return nil, fmt.Errorf("%w: ATOMIC_AGGREGATE length %d", ErrMalformed, len(body))
			}
			attrs.AtomicAggregate = true
		case AttrTypeAggregator:
			agg, err := parseAggregator(body, as4)
			if err != nil {
				return nil, err
			}
			attrs.Aggregator = agg
		case AttrTypeCommunities:
			if len(body)%4 != 0 {
				return nil, fmt.Errorf("%w: COMMUNITIES length %d", ErrMalformed, len(body))
			}
			for i := 0; i < len(body); i += 4 {
				attrs.Communities = append(attrs.Communities,
					binary.BigEndian.Uint32(body[i:i+4]))
			}
		default:
			attrs.Unknown = append(attrs.Unknown, RawAttribute{
				Flags: flags, Type: typ, Value: append([]byte(nil), body...),
			})
		}
	}
	return attrs, nil
}

func parseU32(body []byte, what string) (uint32, error) {
	if len(body) != 4 {
		return 0, fmt.Errorf("%w: %s length %d", ErrMalformed, what, len(body))
	}
	return binary.BigEndian.Uint32(body), nil
}

func parseAggregator(body []byte, as4 bool) (*Aggregator, error) {
	want := 6
	if as4 {
		want = 8
	}
	if len(body) != want {
		return nil, fmt.Errorf("%w: AGGREGATOR length %d (as4=%v)", ErrMalformed, len(body), as4)
	}
	agg := &Aggregator{}
	if as4 {
		agg.AS = binary.BigEndian.Uint32(body[:4])
		agg.RouterID = binary.BigEndian.Uint32(body[4:])
	} else {
		agg.AS = uint32(binary.BigEndian.Uint16(body[:2]))
		agg.RouterID = binary.BigEndian.Uint32(body[2:])
	}
	return agg, nil
}

func parseASPath(body []byte, as4 bool) (ASPath, error) {
	asSize := 2
	if as4 {
		asSize = 4
	}
	var path ASPath
	for len(body) > 0 {
		if len(body) < 2 {
			return nil, fmt.Errorf("%w: AS_PATH segment header", ErrTruncated)
		}
		segType, count := body[0], int(body[1])
		if segType != SegmentASSet && segType != SegmentASSequence {
			return nil, fmt.Errorf("%w: AS_PATH segment type %d", ErrMalformed, segType)
		}
		body = body[2:]
		need := count * asSize
		if len(body) < need {
			return nil, fmt.Errorf("%w: AS_PATH segment wants %d bytes, has %d",
				ErrTruncated, need, len(body))
		}
		seg := Segment{Type: segType, ASNs: make([]uint32, count)}
		for i := 0; i < count; i++ {
			if as4 {
				seg.ASNs[i] = binary.BigEndian.Uint32(body[i*4:])
			} else {
				seg.ASNs[i] = uint32(binary.BigEndian.Uint16(body[i*2:]))
			}
		}
		body = body[need:]
		path = append(path, seg)
	}
	return path, nil
}

// Serialize encodes the attributes as a path-attribute block, the inverse
// of ParseAttributes. Attributes are emitted in type order; unknown
// attributes retain their original flags.
func (a *Attributes) Serialize(as4 bool) []byte {
	var out []byte
	emit := func(flags, typ uint8, body []byte) {
		if len(body) > 255 || flags&FlagExtended != 0 {
			flags |= FlagExtended
			out = append(out, flags, typ,
				byte(len(body)>>8), byte(len(body)))
		} else {
			out = append(out, flags, typ, byte(len(body)))
		}
		out = append(out, body...)
	}
	if a.Origin != nil {
		emit(FlagTransitive, AttrTypeOrigin, []byte{*a.Origin})
	}
	if len(a.ASPath) > 0 {
		var body []byte
		for _, seg := range a.ASPath {
			body = append(body, seg.Type, byte(len(seg.ASNs)))
			for _, asn := range seg.ASNs {
				if as4 {
					body = binary.BigEndian.AppendUint32(body, asn)
				} else {
					body = binary.BigEndian.AppendUint16(body, uint16(asn))
				}
			}
		}
		emit(FlagTransitive, AttrTypeASPath, body)
	}
	if a.NextHop != nil {
		emit(FlagTransitive, AttrTypeNextHop,
			binary.BigEndian.AppendUint32(nil, uint32(*a.NextHop)))
	}
	if a.MED != nil {
		emit(FlagOptional, AttrTypeMED, binary.BigEndian.AppendUint32(nil, *a.MED))
	}
	if a.LocalPref != nil {
		emit(FlagTransitive, AttrTypeLocalPref, binary.BigEndian.AppendUint32(nil, *a.LocalPref))
	}
	if a.AtomicAggregate {
		emit(FlagTransitive, AttrTypeAtomicAggregate, nil)
	}
	if a.Aggregator != nil {
		var body []byte
		if as4 {
			body = binary.BigEndian.AppendUint32(body, a.Aggregator.AS)
		} else {
			body = binary.BigEndian.AppendUint16(body, uint16(a.Aggregator.AS))
		}
		body = binary.BigEndian.AppendUint32(body, a.Aggregator.RouterID)
		emit(FlagOptional|FlagTransitive, AttrTypeAggregator, body)
	}
	if len(a.Communities) > 0 {
		var body []byte
		for _, c := range a.Communities {
			body = binary.BigEndian.AppendUint32(body, c)
		}
		emit(FlagOptional|FlagTransitive, AttrTypeCommunities, body)
	}
	for _, raw := range a.Unknown {
		emit(raw.Flags&^FlagExtended, raw.Type, raw.Value)
	}
	return out
}

// ParseNLRI decodes RFC 4271 §4.3 network-layer reachability information:
// a sequence of (length-in-bits, truncated prefix bytes) pairs.
func ParseNLRI(data []byte) ([]netaddr.Prefix, error) {
	var out []netaddr.Prefix
	for len(data) > 0 {
		bits := int(data[0])
		if bits > 32 {
			return nil, fmt.Errorf("%w: NLRI length %d", ErrMalformed, bits)
		}
		nbytes := (bits + 7) / 8
		if len(data) < 1+nbytes {
			return nil, fmt.Errorf("%w: NLRI body", ErrTruncated)
		}
		var v uint32
		for i := 0; i < nbytes; i++ {
			v |= uint32(data[1+i]) << (24 - 8*uint(i))
		}
		p, err := netaddr.PrefixFrom(netaddr.Addr(v), bits)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		if p.Addr() != netaddr.Addr(v) {
			return nil, fmt.Errorf("%w: NLRI %v has bits beyond /%d", ErrMalformed, netaddr.Addr(v), bits)
		}
		out = append(out, p)
		data = data[1+nbytes:]
	}
	return out, nil
}

// AppendNLRI encodes prefixes in NLRI notation, appending to dst.
func AppendNLRI(dst []byte, prefixes []netaddr.Prefix) []byte {
	for _, p := range prefixes {
		bits := p.Bits()
		dst = append(dst, byte(bits))
		v := uint32(p.Addr())
		for i := 0; i < (bits+7)/8; i++ {
			dst = append(dst, byte(v>>(24-8*uint(i))))
		}
	}
	return dst
}

// Update is a parsed BGP UPDATE message body.
type Update struct {
	Withdrawn  []netaddr.Prefix
	Attributes *Attributes
	NLRI       []netaddr.Prefix
}

// ParseUpdate decodes an UPDATE message body (without the 19-byte BGP
// message header).
func ParseUpdate(body []byte, as4 bool) (*Update, error) {
	if len(body) < 2 {
		return nil, fmt.Errorf("%w: withdrawn length", ErrTruncated)
	}
	wlen := int(binary.BigEndian.Uint16(body))
	body = body[2:]
	if len(body) < wlen {
		return nil, fmt.Errorf("%w: withdrawn routes", ErrTruncated)
	}
	withdrawn, err := ParseNLRI(body[:wlen])
	if err != nil {
		return nil, err
	}
	body = body[wlen:]
	if len(body) < 2 {
		return nil, fmt.Errorf("%w: attribute length", ErrTruncated)
	}
	alen := int(binary.BigEndian.Uint16(body))
	body = body[2:]
	if len(body) < alen {
		return nil, fmt.Errorf("%w: attributes", ErrTruncated)
	}
	attrs, err := ParseAttributes(body[:alen], as4)
	if err != nil {
		return nil, err
	}
	nlri, err := ParseNLRI(body[alen:])
	if err != nil {
		return nil, err
	}
	return &Update{Withdrawn: withdrawn, Attributes: attrs, NLRI: nlri}, nil
}

// Serialize encodes the UPDATE body, the inverse of ParseUpdate.
func (u *Update) Serialize(as4 bool) []byte {
	withdrawn := AppendNLRI(nil, u.Withdrawn)
	var attrs []byte
	if u.Attributes != nil {
		attrs = u.Attributes.Serialize(as4)
	}
	out := binary.BigEndian.AppendUint16(nil, uint16(len(withdrawn)))
	out = append(out, withdrawn...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(attrs)))
	out = append(out, attrs...)
	return AppendNLRI(out, u.NLRI)
}
