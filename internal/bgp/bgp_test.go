package bgp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
)

func u8p(v uint8) *uint8    { return &v }
func u32p(v uint32) *uint32 { return &v }

func sampleAttrs() *Attributes {
	nh := netaddr.MustParseAddr("203.0.113.1")
	return &Attributes{
		Origin: u8p(OriginIGP),
		ASPath: ASPath{
			{Type: SegmentASSequence, ASNs: []uint32{64500, 64501, 397212}},
			{Type: SegmentASSet, ASNs: []uint32{65001, 65002}},
		},
		NextHop:         &nh,
		MED:             u32p(100),
		LocalPref:       u32p(200),
		AtomicAggregate: true,
		Aggregator:      &Aggregator{AS: 64500, RouterID: 0x0A000001},
		Communities:     []uint32{64500<<16 | 666, 64500<<16 | 1},
	}
}

func TestAttributesRoundTrip(t *testing.T) {
	for _, as4 := range []bool{false, true} {
		in := sampleAttrs()
		if !as4 {
			in.ASPath[0].ASNs[2] = 23456 // AS_TRANS placeholder fits 2 bytes
		}
		wire := in.Serialize(as4)
		out, err := ParseAttributes(wire, as4)
		if err != nil {
			t.Fatalf("as4=%v: %v", as4, err)
		}
		if *out.Origin != *in.Origin {
			t.Errorf("as4=%v origin %d", as4, *out.Origin)
		}
		if len(out.ASPath) != 2 || len(out.ASPath[0].ASNs) != 3 {
			t.Fatalf("as4=%v path %+v", as4, out.ASPath)
		}
		for i, asn := range in.ASPath[0].ASNs {
			if out.ASPath[0].ASNs[i] != asn {
				t.Errorf("as4=%v path[0][%d] = %d, want %d", as4, i, out.ASPath[0].ASNs[i], asn)
			}
		}
		if *out.NextHop != *in.NextHop || *out.MED != 100 || *out.LocalPref != 200 {
			t.Errorf("as4=%v scalar attrs wrong", as4)
		}
		if !out.AtomicAggregate || out.Aggregator == nil || out.Aggregator.AS != 64500 {
			t.Errorf("as4=%v aggregate attrs wrong", as4)
		}
		if len(out.Communities) != 2 || out.Communities[0] != 64500<<16|666 {
			t.Errorf("as4=%v communities %v", as4, out.Communities)
		}
		// Round-trip stability: serialize(parse(x)) == x.
		if again := out.Serialize(as4); !bytes.Equal(again, wire) {
			t.Errorf("as4=%v: serialization not stable", as4)
		}
	}
}

func TestUnknownAttributePreserved(t *testing.T) {
	in := &Attributes{
		Origin:  u8p(OriginEGP),
		Unknown: []RawAttribute{{Flags: FlagOptional | FlagTransitive, Type: 99, Value: []byte{1, 2, 3}}},
	}
	out, err := ParseAttributes(in.Serialize(true), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Unknown) != 1 || out.Unknown[0].Type != 99 || !bytes.Equal(out.Unknown[0].Value, []byte{1, 2, 3}) {
		t.Fatalf("unknown attr %+v", out.Unknown)
	}
}

func TestExtendedLengthAttribute(t *testing.T) {
	// A community list longer than 255 bytes forces the extended-length
	// encoding.
	in := &Attributes{}
	for i := 0; i < 100; i++ {
		in.Communities = append(in.Communities, uint32(i))
	}
	wire := in.Serialize(true)
	out, err := ParseAttributes(wire, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Communities) != 100 {
		t.Fatalf("communities: %d", len(out.Communities))
	}
	if !bytes.Equal(out.Serialize(true), wire) {
		t.Error("extended-length round trip unstable")
	}
}

func TestOriginAS(t *testing.T) {
	cases := []struct {
		path ASPath
		want uint32
		ok   bool
	}{
		{ASPath{{Type: SegmentASSequence, ASNs: []uint32{1, 2, 3}}}, 3, true},
		{ASPath{{Type: SegmentASSequence, ASNs: []uint32{1}},
			{Type: SegmentASSet, ASNs: []uint32{7, 8}}}, 7, true},
		{ASPath{}, 0, false},
		{ASPath{{Type: SegmentASSequence, ASNs: nil}}, 0, false},
	}
	for i, c := range cases {
		got, ok := c.path.Origin()
		if got != c.want || ok != c.ok {
			t.Errorf("case %d: Origin = %d, %v; want %d, %v", i, got, ok, c.want, c.ok)
		}
	}
}

func TestParseAttributesErrors(t *testing.T) {
	cases := [][]byte{
		{0x40},                              // truncated header
		{0x40, AttrTypeOrigin},              // missing length
		{0x40, AttrTypeOrigin, 5, 0},        // length beyond data
		{0x40, AttrTypeOrigin, 2, 0, 0},     // bad ORIGIN length
		{0x40, AttrTypeOrigin, 1, 9},        // bad ORIGIN value
		{0x40, AttrTypeNextHop, 3, 1, 2, 3}, // bad NEXT_HOP length
		{0x40, AttrTypeASPath, 2, 9, 1},     // bad segment type
		{0x40, AttrTypeASPath, 3, 2, 2, 0},  // segment truncated
		{0x40, AttrTypeMED, 2, 0, 0},        // bad MED length
		{0x40, AttrTypeAtomicAggregate, 1, 0},
		{0x40, AttrTypeAggregator, 3, 0, 0, 0},
		{0xC0, AttrTypeCommunities, 3, 0, 0, 0},
		{0x50, AttrTypeOrigin, 0}, // extended flag, truncated length
	}
	for i, c := range cases {
		if _, err := ParseAttributes(c, true); err == nil {
			t.Errorf("case %d: accepted %v", i, c)
		}
	}
}

func TestNLRIRoundTrip(t *testing.T) {
	prefixes := []netaddr.Prefix{
		netaddr.MustParsePrefix("0.0.0.0/0"),
		netaddr.MustParsePrefix("10.0.0.0/8"),
		netaddr.MustParsePrefix("100.64.0.0/10"),
		netaddr.MustParsePrefix("192.0.2.0/24"),
		netaddr.MustParsePrefix("192.0.2.1/32"),
		netaddr.MustParsePrefix("128.0.0.0/1"),
	}
	wire := AppendNLRI(nil, prefixes)
	out, err := ParseNLRI(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(prefixes) {
		t.Fatalf("got %d prefixes", len(out))
	}
	for i := range prefixes {
		if out[i] != prefixes[i] {
			t.Errorf("prefix %d: %v != %v", i, out[i], prefixes[i])
		}
	}
}

func TestNLRIRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(20)
		in := make([]netaddr.Prefix, n)
		for i := range in {
			in[i] = netaddr.MustPrefixFrom(netaddr.Addr(rng.Uint32()), rng.Intn(33))
		}
		out, err := ParseNLRI(AppendNLRI(nil, in))
		if err != nil {
			t.Fatal(err)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("iter %d prefix %d: %v != %v", iter, i, out[i], in[i])
			}
		}
	}
}

func TestParseNLRIErrors(t *testing.T) {
	cases := [][]byte{
		{33},         // bits out of range
		{24, 1, 2},   // truncated body
		{8, 0x12, 0}, // trailing garbage is parsed as next NLRI: 0x12/8 then /0... actually {8,0x12} then {0} = 0.0.0.0/0: valid!
	}
	if _, err := ParseNLRI(cases[0]); !errors.Is(err, ErrMalformed) {
		t.Error("bits 33 accepted")
	}
	if _, err := ParseNLRI(cases[1]); !errors.Is(err, ErrTruncated) {
		t.Error("truncated body accepted")
	}
	if out, err := ParseNLRI(cases[2]); err != nil || len(out) != 2 {
		t.Errorf("valid trailing /0: %v, %v", out, err)
	}
	// Non-zero bits beyond the prefix length are malformed.
	if _, err := ParseNLRI([]byte{8, 0xFF, 0xFF}); err == nil {
		t.Error("NLRI with stray bits accepted")
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	in := &Update{
		Withdrawn: []netaddr.Prefix{netaddr.MustParsePrefix("198.51.100.0/24")},
		Attributes: &Attributes{
			Origin: u8p(OriginIGP),
			ASPath: ASPath{{Type: SegmentASSequence, ASNs: []uint32{64500, 65550}}},
		},
		NLRI: []netaddr.Prefix{
			netaddr.MustParsePrefix("203.0.113.0/24"),
			netaddr.MustParsePrefix("100.0.0.0/8"),
		},
	}
	out, err := ParseUpdate(in.Serialize(true), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Withdrawn) != 1 || out.Withdrawn[0] != in.Withdrawn[0] {
		t.Errorf("withdrawn %v", out.Withdrawn)
	}
	if len(out.NLRI) != 2 || out.NLRI[1] != in.NLRI[1] {
		t.Errorf("nlri %v", out.NLRI)
	}
	if asn, ok := out.Attributes.OriginAS(); !ok || asn != 65550 {
		t.Errorf("origin AS %d, %v", asn, ok)
	}
}

func TestParseUpdateErrors(t *testing.T) {
	cases := [][]byte{
		{},              // no withdrawn length
		{0, 5, 1},       // withdrawn truncated
		{0, 0},          // no attr length
		{0, 0, 0, 9, 1}, // attrs truncated
	}
	for i, c := range cases {
		if _, err := ParseUpdate(c, true); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func BenchmarkParseAttributes(b *testing.B) {
	wire := sampleAttrs().Serialize(true)
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseAttributes(wire, true); err != nil {
			b.Fatal(err)
		}
	}
}
