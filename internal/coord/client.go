package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Client is the worker side of the coordinator protocol: context-aware
// per-request timeouts and jittered exponential-backoff retries on
// everything transport-shaped (connection failures, 5xx). Semantic
// refusals — lease lost, unknown campaign — come back immediately as
// the package's sentinel errors; retrying those would never help.
type Client struct {
	// Base is the coordinator URL, e.g. "http://127.0.0.1:7070".
	Base string
	// HTTP is the underlying client; tests inject fault-injecting
	// transports here. Defaults to http.DefaultClient.
	HTTP *http.Client
	// Timeout bounds each request attempt (default 5s).
	Timeout time.Duration
	// MaxRetries is the attempt budget per call beyond the first
	// (default 6). With the default backoff that is roughly 6s of
	// patience — transient blips heal, real outages surface.
	MaxRetries int
	// BackoffBase and BackoffCap shape the retry schedule: attempt k
	// sleeps a uniformly jittered duration in (0, min(Cap, Base·2^k)]
	// (defaults 50ms and 2s). Full jitter keeps a worker fleet from
	// thundering back in lockstep after a coordinator restart.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed makes the jitter deterministic for tests (0 seeds from the
	// clock).
	Seed int64
	// Sleep is the backoff waiter, injectable for virtual-clock tests.
	// It must honor ctx. Defaults to a timer sleep.
	Sleep func(ctx context.Context, d time.Duration) error

	rngOnce sync.Once
	rngMu   sync.Mutex
	rng     *rand.Rand
}

// NewClient builds a client with default retry policy.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

// CreateCampaign registers a campaign with the coordinator.
func (cl *Client) CreateCampaign(ctx context.Context, spec CampaignSpec) error {
	return cl.call(ctx, http.MethodPost, "/v1/campaigns", spec, &struct{}{})
}

// Status fetches a campaign's current state.
func (cl *Client) Status(ctx context.Context, campaign string) (*Status, error) {
	var st Status
	if err := cl.call(ctx, http.MethodGet, "/v1/campaigns/"+campaign, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Acquire asks for a shard lease. done means the campaign is finished;
// a nil lease with done == false means nothing is free right now.
func (cl *Client) Acquire(ctx context.Context, campaign, worker string) (lease *Lease, done bool, err error) {
	var resp acquireResponse
	if err := cl.call(ctx, http.MethodPost, "/v1/campaigns/"+campaign+"/acquire",
		acquireRequest{Worker: worker}, &resp); err != nil {
		return nil, false, err
	}
	return resp.Lease, resp.Done, nil
}

// Heartbeat renews a lease with the worker's latest cumulative upload.
// ErrLeaseLost means the shard is no longer the worker's.
func (cl *Client) Heartbeat(ctx context.Context, campaign, leaseID string, up Upload) error {
	return cl.call(ctx, http.MethodPost,
		"/v1/campaigns/"+campaign+"/leases/"+leaseID+"/heartbeat", up, &heartbeatResponse{})
}

// Complete reports a shard finished with its final upload.
func (cl *Client) Complete(ctx context.Context, campaign, leaseID string, up Upload) error {
	return cl.call(ctx, http.MethodPost,
		"/v1/campaigns/"+campaign+"/leases/"+leaseID+"/complete", up, &struct{}{})
}

// call runs one request with retries. Transport errors and 5xx retry
// with backoff until the budget or ctx runs out; 4xx returns
// immediately, mapped back to sentinel errors where the status encodes
// one.
func (cl *Client) call(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("coord: encoding request: %w", err)
		}
	}
	maxRetries := cl.MaxRetries
	if maxRetries == 0 {
		maxRetries = 6
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (last attempt: %v)", err, lastErr)
			}
			return err
		}
		err := cl.attempt(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		if !retryable(err) || attempt >= maxRetries {
			return err
		}
		lastErr = err
		if err := cl.backoff(ctx, attempt); err != nil {
			return fmt.Errorf("%w (last attempt: %v)", err, lastErr)
		}
	}
}

// transientError marks a failure worth retrying.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

func retryable(err error) bool {
	_, ok := err.(*transientError)
	return ok
}

// attempt performs one HTTP exchange.
func (cl *Client) attempt(ctx context.Context, method, path string, body []byte, out any) error {
	timeout := cl.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, cl.Base+path, reader)
	if err != nil {
		return fmt.Errorf("coord: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	httpc := cl.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		// The parent context dying is a caller decision, not a blip.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &transientError{fmt.Errorf("coord: %s %s: %w", method, path, err)}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return &transientError{fmt.Errorf("coord: reading response: %w", err)}
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(data))
		var er errorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		// The body's error code pins the sentinel exactly; the status
		// mapping below is the fallback for coordinators that predate
		// it (404 alone cannot tell an unknown lease from an unknown
		// campaign).
		switch er.Code {
		case codeUnknownCampaign:
			return fmt.Errorf("%w: %s", ErrUnknownCampaign, msg)
		case codeUnknownLease:
			return fmt.Errorf("%w: %s", ErrUnknownLease, msg)
		case codeLeaseLost:
			return fmt.Errorf("%w: %s", ErrLeaseLost, msg)
		case codeCampaignExists:
			return fmt.Errorf("%w: %s", ErrCampaignExists, msg)
		}
		err := fmt.Errorf("coord: %s %s: %s (%s)", method, path, msg, resp.Status)
		switch {
		case resp.StatusCode == http.StatusGone:
			return fmt.Errorf("%w: %s", ErrLeaseLost, msg)
		case resp.StatusCode == http.StatusNotFound:
			return fmt.Errorf("%w: %s", ErrUnknownCampaign, msg)
		case resp.StatusCode == http.StatusConflict:
			return fmt.Errorf("%w: %s", ErrCampaignExists, msg)
		case resp.StatusCode >= 500:
			return &transientError{err}
		}
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return &transientError{fmt.Errorf("coord: decoding response: %w", err)}
	}
	return nil
}

// backoff sleeps the jittered exponential delay for the given attempt.
func (cl *Client) backoff(ctx context.Context, attempt int) error {
	base := cl.BackoffBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxDelay := cl.BackoffCap
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	d := base << uint(min(attempt, 20))
	if d <= 0 || d > maxDelay {
		d = maxDelay
	}
	cl.rngOnce.Do(func() {
		seed := cl.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		cl.rng = rand.New(rand.NewSource(seed))
	})
	cl.rngMu.Lock()
	jittered := time.Duration(cl.rng.Int63n(int64(d))) + 1
	cl.rngMu.Unlock()
	sleep := cl.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return sleep(ctx, jittered)
}
