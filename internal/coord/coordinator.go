package coord

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
	"github.com/tass-scan/tass/internal/scan"
)

// Shard lifecycle states. pending → leased → (expired → pending)* →
// done. A cycle completes when every shard is done; the campaign
// completes when the last cycle does (or a reseed selects nothing).
const (
	shardPending = "pending"
	shardLeased  = "leased"
	shardDone    = "done"
)

// shardState is one shard of the current cycle.
type shardState struct {
	State    string    `json:"state"`
	LeaseID  string    `json:"lease_id,omitempty"`
	Worker   string    `json:"worker,omitempty"`
	Deadline time.Time `json:"deadline,omitzero"`
	// Checkpoint is the cursor the shard's current or last holder most
	// recently uploaded; a re-lease hands it to the replacement.
	Checkpoint *scan.Checkpoint `json:"checkpoint,omitempty"`
	// Base accumulates results inherited from expired leases of this
	// shard; Current is the live lease's latest (cumulative) upload.
	// Both halves of an upload — cursor and results — commit together,
	// so Base∪Current is always consistent with Checkpoint.
	Base       []netaddr.Addr `json:"base,omitempty"`
	Current    []netaddr.Addr `json:"current,omitempty"`
	BaseProbed uint64         `json:"base_probed,omitempty"`
	BaseErrors uint64         `json:"base_errors,omitempty"`
	CurProbed  uint64         `json:"cur_probed,omitempty"`
	CurErrors  uint64         `json:"cur_errors,omitempty"`
}

// campaignState is the full durable state of one campaign. Exported
// fields persist; the partition caches rebuild on load.
type campaignState struct {
	Spec    CampaignSpec   `json:"spec"`
	Cycle   int            `json:"cycle"`
	Plan    []string       `json:"plan"`
	Done    bool           `json:"done"`
	Note    string         `json:"note,omitempty"`
	Shards  []*shardState  `json:"shards"`
	History []CycleSummary `json:"history,omitempty"`
	// Releases counts lease grants in the current cycle.
	Releases int `json:"releases,omitempty"`
	// Final is the last completed cycle's responsive set, kept so a
	// finished campaign's result outlives its shards.
	Final []netaddr.Addr `json:"final,omitempty"`

	universe rib.Partition // cached parse of Spec.Universe
	plan     rib.Partition // cached parse of Plan
}

// persistentState is the blob handed to the Store.
type persistentState struct {
	Version   int                       `json:"v"`
	NextLease uint64                    `json:"next_lease"`
	Campaigns map[string]*campaignState `json:"campaigns"`
}

// Coordinator owns the campaign state machines. Every public method is
// one atomic transition: validate, mutate, persist, reply. The clock is
// injectable so lease expiry is deterministic under test.
type Coordinator struct {
	mu        sync.Mutex
	store     Store
	now       func() time.Time
	nextLease uint64
	campaigns map[string]*campaignState
}

// NewCoordinator builds a coordinator over store, reloading any state a
// previous process saved there. A torn or corrupt store is a refusal,
// not a fresh start: silently dropping leases would double-probe every
// in-flight shard. now is the lease clock (nil = time.Now).
func NewCoordinator(store Store, now func() time.Time) (*Coordinator, error) {
	if now == nil {
		now = time.Now
	}
	c := &Coordinator{
		store:     store,
		now:       now,
		campaigns: map[string]*campaignState{},
	}
	data, err := store.Load()
	switch {
	case err == ErrNoState:
		return c, nil
	case err != nil:
		return nil, err
	}
	var st persistentState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("coord: decoding saved state: %w", err)
	}
	if st.Version > 1 {
		return nil, fmt.Errorf("coord: saved state version %d is newer than this binary", st.Version)
	}
	c.nextLease = st.NextLease
	for id, cs := range st.Campaigns {
		if cs.universe, err = parsePartition(cs.Spec.Universe); err != nil {
			return nil, fmt.Errorf("coord: campaign %s universe: %w", id, err)
		}
		if len(cs.Plan) > 0 {
			if cs.plan, err = parsePartition(cs.Plan); err != nil {
				return nil, fmt.Errorf("coord: campaign %s plan: %w", id, err)
			}
		}
		c.campaigns[id] = cs
	}
	return c, nil
}

// Campaigns lists the registered campaign IDs, sorted.
func (c *Coordinator) Campaigns() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.campaigns))
	for id := range c.campaigns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CreateCampaign validates and registers a campaign, persisting it
// before the call returns.
func (c *Coordinator) CreateCampaign(spec CampaignSpec) error {
	spec = spec.withDefaults()
	universe, targets, err := spec.validate()
	if err != nil {
		return err
	}
	plan := targets
	if plan.Len() == 0 {
		plan = universe
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.campaigns[spec.ID]; ok {
		return fmt.Errorf("%w: %s", ErrCampaignExists, spec.ID)
	}
	cs := &campaignState{
		Spec:     spec,
		Plan:     formatPartition(plan),
		Shards:   freshShards(spec.Shards),
		universe: universe,
		plan:     plan,
	}
	c.campaigns[spec.ID] = cs
	return c.saveLocked()
}

func freshShards(n int) []*shardState {
	out := make([]*shardState, n)
	for i := range out {
		out[i] = &shardState{State: shardPending}
	}
	return out
}

// Acquire leases a shard of campaign to worker. It returns (nil, true)
// when the campaign is finished, (nil, false) when every shard is
// currently leased or done — come back later — and a lease otherwise.
// Expired leases are reclaimed first, so a crashed worker's shard is
// handed out here, checkpoint attached.
func (c *Coordinator) Acquire(campaign, worker string) (*Lease, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.campaigns[campaign]
	if !ok {
		return nil, false, fmt.Errorf("%w: %s", ErrUnknownCampaign, campaign)
	}
	dirty := c.expireLocked(cs)
	if cs.Done {
		if dirty {
			if err := c.saveLocked(); err != nil {
				return nil, false, err
			}
		}
		return nil, true, nil
	}
	idx := -1
	for i, sh := range cs.Shards {
		if sh.State == shardPending {
			idx = i
			break
		}
	}
	if idx < 0 {
		if dirty {
			if err := c.saveLocked(); err != nil {
				return nil, false, err
			}
		}
		return nil, false, nil
	}
	sh := cs.Shards[idx]
	c.nextLease++
	sh.State = shardLeased
	sh.LeaseID = fmt.Sprintf("L%08d", c.nextLease)
	sh.Worker = worker
	sh.Deadline = c.now().Add(cs.Spec.LeaseTTL)
	cs.Releases++
	lease := &Lease{
		LeaseID:     sh.LeaseID,
		Campaign:    campaign,
		Cycle:       cs.Cycle,
		Shard:       idx,
		Shards:      cs.Spec.Shards,
		Workers:     cs.Spec.Workers,
		Seed:        cs.Spec.Seed + int64(cs.Cycle),
		Rate:        cs.Spec.Rate,
		Exclude:     append([]string(nil), cs.Spec.Exclude...),
		PrefixRate:  cs.Spec.PrefixRate,
		PrefixBurst: cs.Spec.PrefixBurst,
		ChunkProbes: cs.Spec.ChunkProbes,
		TTL:         cs.Spec.LeaseTTL,
		Plan:        cs.Plan,
		Checkpoint:  cloneCheckpoint(sh.Checkpoint),
	}
	if err := c.saveLocked(); err != nil {
		return nil, false, err
	}
	return lease, false, nil
}

// Heartbeat renews a lease and commits the holder's latest cumulative
// upload. It returns the new deadline; ErrLeaseLost means the worker no
// longer owns the shard (expired and possibly re-leased) and must stop.
func (c *Coordinator) Heartbeat(campaign, leaseID string, up Upload) (time.Time, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, sh, err := c.leaseShardLocked(campaign, leaseID)
	if err != nil {
		return time.Time{}, err
	}
	sh.Deadline = c.now().Add(cs.Spec.LeaseTTL)
	sh.Checkpoint = cloneCheckpoint(up.Checkpoint)
	sh.Current = append([]netaddr.Addr(nil), up.Responsive...)
	sh.CurProbed, sh.CurErrors = up.Probed, up.Errors
	if err := c.saveLocked(); err != nil {
		return time.Time{}, err
	}
	return sh.Deadline, nil
}

// Complete marks a leased shard finished with its final results. When it
// was the cycle's last shard the coordinator reseeds: merge all shards'
// responsive sets, select over the universe, and open the next cycle —
// or finish the campaign.
func (c *Coordinator) Complete(campaign, leaseID string, up Upload) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, sh, err := c.leaseShardLocked(campaign, leaseID)
	if err != nil {
		return err
	}
	prev := *sh
	sh.State = shardDone
	sh.LeaseID = ""
	sh.Deadline = time.Time{}
	sh.Checkpoint = nil
	sh.Current = append([]netaddr.Addr(nil), up.Responsive...)
	sh.CurProbed, sh.CurErrors = up.Probed, up.Errors
	for _, other := range cs.Shards {
		if other.State != shardDone {
			return c.saveLocked()
		}
	}
	if err := c.finishCycleLocked(cs); err != nil {
		// Roll the shard transition back: finishCycleLocked mutates
		// nothing on failure, so restoring the shard keeps the in-memory
		// state identical to the durable store, the lease stays owned by
		// this worker, and its retried Complete re-runs the whole
		// transition instead of being fenced off a wedged campaign.
		*sh = prev
		return err
	}
	return c.saveLocked()
}

// Status reports a campaign's externally visible state.
func (c *Coordinator) Status(campaign string) (*Status, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.campaigns[campaign]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCampaign, campaign)
	}
	c.expireLocked(cs)
	st := &Status{
		ID:      cs.Spec.ID,
		Cycle:   cs.Cycle,
		Cycles:  cs.Spec.Cycles,
		Done:    cs.Done,
		Note:    cs.Note,
		Plan:    append([]string(nil), cs.Plan...),
		History: append([]CycleSummary(nil), cs.History...),
	}
	for i, sh := range cs.Shards {
		st.Shards = append(st.Shards, ShardStatus{
			Index:     i,
			State:     sh.State,
			Worker:    sh.Worker,
			LeaseID:   sh.LeaseID,
			Deadline:  sh.Deadline,
			Resumable: sh.Checkpoint != nil,
		})
	}
	if cs.Done {
		st.Responsive = append([]netaddr.Addr(nil), cs.Final...)
	}
	return st, nil
}

// leaseShardLocked resolves a lease ID to its shard after reclaiming
// expired leases, enforcing fencing: a lease that expired (even if the
// shard has not been re-leased yet) is lost, not resurrected.
func (c *Coordinator) leaseShardLocked(campaign, leaseID string) (*campaignState, *shardState, error) {
	cs, ok := c.campaigns[campaign]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownCampaign, campaign)
	}
	c.expireLocked(cs)
	for _, sh := range cs.Shards {
		if sh.State == shardLeased && sh.LeaseID == leaseID {
			return cs, sh, nil
		}
	}
	if leaseID == "" || c.nextLease < leaseNumber(leaseID) {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownLease, leaseID)
	}
	return nil, nil, fmt.Errorf("%w: %s", ErrLeaseLost, leaseID)
}

// leaseNumber extracts the counter from a lease ID ("L%08d"); malformed
// IDs map to a number larger than any issued.
func leaseNumber(id string) uint64 {
	var n uint64
	if _, err := fmt.Sscanf(id, "L%d", &n); err != nil {
		return ^uint64(0)
	}
	return n
}

// expireLocked reclaims expired leases of one campaign: the shard goes
// back to pending with the last uploaded checkpoint attached and the
// lease's uploaded results folded into the shard's base set, so the
// next holder resumes exactly past everything already probed and no
// found address is lost. Reports whether state changed.
func (c *Coordinator) expireLocked(cs *campaignState) bool {
	now := c.now()
	dirty := false
	for _, sh := range cs.Shards {
		if sh.State != shardLeased || now.Before(sh.Deadline) {
			continue
		}
		sh.State = shardPending
		sh.LeaseID = ""
		sh.Worker = ""
		sh.Deadline = time.Time{}
		sh.Base = mergeAddrs(sh.Base, sh.Current)
		sh.Current = nil
		sh.BaseProbed += sh.CurProbed
		sh.BaseErrors += sh.CurErrors
		sh.CurProbed, sh.CurErrors = 0, 0
		dirty = true
	}
	return dirty
}

// finishCycleLocked merges the completed cycle's shard results, records
// the summary, and either reseeds the next cycle's plan (the paper's
// census→rank→select step, run centrally) or finishes the campaign.
// All-or-nothing: every fallible step runs before the first mutation,
// so a failed reseed leaves the campaign state exactly as it was and
// the caller can safely retry (or roll back its own transition).
func (c *Coordinator) finishCycleLocked(cs *campaignState) error {
	var responsive []netaddr.Addr
	var probed, errors uint64
	for _, sh := range cs.Shards {
		responsive = mergeAddrs(responsive, mergeAddrs(sh.Base, sh.Current))
		probed += sh.BaseProbed + sh.CurProbed
		errors += sh.BaseErrors + sh.CurErrors
	}
	snap := census.NewSnapshot(cs.Spec.Protocol, cs.Cycle, responsive)
	summary := CycleSummary{
		Cycle:      cs.Cycle,
		Plan:       len(cs.Plan),
		Probed:     probed,
		Errors:     errors,
		Responsive: snap.Hosts(),
		Releases:   cs.Releases,
	}
	last := cs.Cycle+1 >= cs.Spec.Cycles
	done, note := last, ""
	var nextPlan rib.Partition
	switch {
	case !last && len(responsive) == 0:
		// Nothing answered: there is no snapshot to select from, and the
		// next cycle would scan an empty plan forever. Finish early.
		done = true
		note = fmt.Sprintf("cycle %d found no responsive hosts; campaign finished early", cs.Cycle)
	case !last:
		sel, err := core.SelectCached(snap, cs.universe,
			core.Options{Phi: cs.Spec.Phi, MinDensity: cs.Spec.MinDensity}, 0, nil)
		if err != nil {
			return fmt.Errorf("coord: campaign %s cycle %d selection: %w", cs.Spec.ID, cs.Cycle, err)
		}
		summary.Selected = sel.K
		summary.SpaceShare = sel.SpaceShare
		nextPlan = sel.Partition()
		if nextPlan.Len() == 0 {
			done = true
			note = fmt.Sprintf("cycle %d selected no prefixes (no responsive hosts); campaign finished early", cs.Cycle)
		}
	}

	cs.Final = snap.Addrs
	cs.History = append(cs.History, summary)
	if done {
		cs.Done = true
		cs.Note = note
		return nil
	}
	cs.plan = nextPlan
	cs.Plan = formatPartition(nextPlan)
	cs.Cycle++
	cs.Shards = freshShards(cs.Spec.Shards)
	cs.Releases = 0
	return nil
}

// saveLocked serializes everything to the store; called under the lock
// after every mutation so the durable state never trails the replies
// workers have seen.
func (c *Coordinator) saveLocked() error {
	st := persistentState{
		Version:   1,
		NextLease: c.nextLease,
		Campaigns: c.campaigns,
	}
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("coord: encoding state: %w", err)
	}
	if err := c.store.Save(data); err != nil {
		return fmt.Errorf("coord: persisting state: %w", err)
	}
	return nil
}

// mergeAddrs unions two sorted address sets. Shards are disjoint and a
// lease's uploads are cumulative, so duplicates only arise when an
// expired-but-alive worker overlapped its replacement; the union keeps
// the accounting exactly-once regardless.
func mergeAddrs(a, b []netaddr.Addr) []netaddr.Addr {
	if len(a) == 0 {
		return append([]netaddr.Addr(nil), b...)
	}
	if len(b) == 0 {
		return a
	}
	out := make([]netaddr.Addr, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func cloneCheckpoint(cp *scan.Checkpoint) *scan.Checkpoint {
	if cp == nil {
		return nil
	}
	out := *cp
	out.Consumed = append([]uint64(nil), cp.Consumed...)
	if cp.ASProbed != nil {
		out.ASProbed = make(map[uint32]uint64, len(cp.ASProbed))
		for k, v := range cp.ASProbed {
			out.ASProbed[k] = v
		}
	}
	return &out
}
