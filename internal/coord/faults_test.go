package coord

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/scan"
)

// ---------------------------------------------------------------------
// Test harness: in-process transport, fault injection, probe accounting.
// ---------------------------------------------------------------------

// memTransport is an http.RoundTripper that serves every request
// in-process against a swappable handler — no sockets, no goroutine
// races on listeners. Faults are injected at the two places a real
// network fails: before the handler sees the request (connection
// refused, partition, dead coordinator) and after the handler ran but
// before the response arrives (lost response — the case that makes
// idempotency matter, because the coordinator DID apply the request).
type memTransport struct {
	mu      sync.Mutex
	handler http.Handler
	reqs    int
	fails   int
	// onRequest, when set, may reject a request before it reaches the
	// handler (simulated network failure).
	onRequest func(r *http.Request) error
	// dropResponse, when set, discards the response of the n-th request
	// after the handler processed it.
	dropResponse func(r *http.Request, n int) bool
}

func (t *memTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reqs++
	n := t.reqs
	if t.onRequest != nil {
		if err := t.onRequest(req); err != nil {
			t.fails++
			return nil, err
		}
	}
	if t.handler == nil {
		t.fails++
		return nil, fmt.Errorf("coord test: coordinator down")
	}
	rec := httptest.NewRecorder()
	t.handler.ServeHTTP(rec, req)
	if t.dropResponse != nil && t.dropResponse(req, n) {
		t.fails++
		return nil, fmt.Errorf("coord test: response lost")
	}
	return rec.Result(), nil
}

func (t *memTransport) failures() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fails
}

func newTestClient(tr *memTransport) *Client {
	return &Client{
		Base:  "http://coordinator",
		HTTP:  &http.Client{Transport: tr},
		Seed:  7,
		Sleep: func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}
}

// probeLog counts every probe per (cycle, address) — the exactly-once
// ledger the acceptance tests audit.
type probeLog struct {
	mu     sync.Mutex
	cycles map[int]map[netaddr.Addr]int
}

func newProbeLog() *probeLog {
	return &probeLog{cycles: map[int]map[netaddr.Addr]int{}}
}

func (l *probeLog) record(cycle int, addr netaddr.Addr) {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.cycles[cycle]
	if m == nil {
		m = map[netaddr.Addr]int{}
		l.cycles[cycle] = m
	}
	m[addr]++
}

func (l *probeLog) set(cycle int) map[netaddr.Addr]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[netaddr.Addr]int, len(l.cycles[cycle]))
	for a, n := range l.cycles[cycle] {
		out[a] = n
	}
	return out
}

// countingProber records every probe in the shared log, fires an
// optional per-probe hook (the kill trigger), and delegates to the
// deterministic simulation prober.
type countingProber struct {
	log     *probeLog
	cycle   int
	inner   scan.Prober
	onProbe func()
}

func (p *countingProber) Probe(ctx context.Context, addr netaddr.Addr) (scan.Result, error) {
	p.log.record(p.cycle, addr)
	if p.onProbe != nil {
		p.onProbe()
	}
	return p.inner.Probe(ctx, addr)
}

// eventLog captures worker progress lines for assertions.
type eventLog struct {
	mu    sync.Mutex
	lines []string
}

func (e *eventLog) f(format string, args ...any) {
	e.mu.Lock()
	e.lines = append(e.lines, fmt.Sprintf(format, args...))
	e.mu.Unlock()
}

func (e *eventLog) contains(sub string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, l := range e.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Ground truth shared by the single-node baseline and the distributed
// runs: a /24 universe with one dense and one sparse /26, probed by a
// per-cycle deterministic SimProber (loss depends only on the address
// and the cycle seed, never on probe order or which machine probes).
// ---------------------------------------------------------------------

func faultUniverse() []string {
	return []string{"203.0.113.0/26", "203.0.113.64/26", "203.0.113.128/26", "203.0.113.192/26"}
}

func faultTruth() []netaddr.Addr {
	base := netaddr.MustParseAddr("203.0.113.0")
	var out []netaddr.Addr
	for i := 0; i < 40; i++ { // dense first /26
		out = append(out, base+netaddr.Addr(i))
	}
	for i := 64; i < 69; i++ { // sparse second /26
		out = append(out, base+netaddr.Addr(i))
	}
	return out
}

func faultProberAt(cycle int) scan.Prober {
	p, err := scan.NewSimProber(faultTruth(), 0.1, 900+int64(cycle))
	if err != nil {
		panic(err)
	}
	return p
}

func faultSpec(shards, cycles int) CampaignSpec {
	return CampaignSpec{
		ID:          "camp",
		Universe:    faultUniverse(),
		Phi:         0.9,
		Cycles:      cycles,
		Shards:      shards,
		Workers:     2,
		Seed:        42,
		LeaseTTL:    30 * time.Second,
		ChunkProbes: 16,
	}
}

// runSingleNode produces the ground-truth result: the same campaign run
// by scan.Campaign on one machine, one process, no coordinator.
func runSingleNode(t *testing.T, cycles int) ([]scan.Cycle, *probeLog) {
	t.Helper()
	uni, err := parsePartition(faultUniverse())
	if err != nil {
		t.Fatal(err)
	}
	log := newProbeLog()
	camp := &scan.Campaign{
		Universe: uni,
		ProberAt: func(cycle int) scan.Prober {
			return &countingProber{log: log, cycle: cycle, inner: faultProberAt(cycle)}
		},
		Opts:    core.Options{Phi: 0.9},
		Workers: 2,
		Seed:    42,
	}
	got, err := camp.Run(context.Background(), cycles)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != cycles {
		t.Fatalf("single-node ran %d cycles, want %d", len(got), cycles)
	}
	return got, log
}

// assertMatchesSingleNode audits the distributed run against the
// single-node baseline: per cycle the exact probe set must match with
// every address probed exactly once, and the final responsive set must
// be identical.
func assertMatchesSingleNode(t *testing.T, st *Status, dist *probeLog, single []scan.Cycle, singleLog *probeLog) {
	t.Helper()
	if !st.Done {
		t.Fatalf("distributed campaign not done: %+v", st)
	}
	if len(st.History) != len(single) {
		t.Fatalf("distributed ran %d cycles, single-node %d", len(st.History), len(single))
	}
	for i, cyc := range single {
		want := singleLog.set(i)
		got := dist.set(i)
		if len(got) != len(want) {
			t.Errorf("cycle %d: distributed probed %d addresses, single-node %d", i, len(got), len(want))
		}
		for addr, n := range got {
			if n != 1 {
				t.Errorf("cycle %d: %v probed %d times, want exactly once", i, addr, n)
			}
			if want[addr] == 0 {
				t.Errorf("cycle %d: distributed probed %v, single-node did not", i, addr)
			}
		}
		for addr := range want {
			if got[addr] == 0 {
				t.Errorf("cycle %d: single-node probed %v, distributed did not", i, addr)
			}
		}
		if st.History[i].Probed != cyc.Report.Probed {
			t.Errorf("cycle %d: distributed probed count %d, single-node %d", i, st.History[i].Probed, cyc.Report.Probed)
		}
		if st.History[i].Responsive != len(cyc.Report.Responsive) {
			t.Errorf("cycle %d: distributed responsive %d, single-node %d", i, st.History[i].Responsive, len(cyc.Report.Responsive))
		}
	}
	final := single[len(single)-1].Report.Responsive
	if len(st.Responsive) != len(final) {
		t.Fatalf("final responsive: distributed %d, single-node %d", len(st.Responsive), len(final))
	}
	for i := range final {
		if st.Responsive[i] != final[i] {
			t.Fatalf("final responsive differs at %d: %v != %v", i, st.Responsive[i], final[i])
		}
	}
}

// ---------------------------------------------------------------------
// The fault-injection suite.
// ---------------------------------------------------------------------

// TestDistributedCampaignMatchesSingleNode is the no-fault baseline:
// two workers splitting every cycle over HTTP produce byte-identical
// results to scan.Campaign on one machine.
func TestDistributedCampaignMatchesSingleNode(t *testing.T) {
	const cycles = 3
	single, singleLog := runSingleNode(t, cycles)

	clk := newVClock()
	c := mustCoordinator(t, NewMemStore(), clk.Now)
	tr := &memTransport{handler: NewHandler(c)}
	if err := c.CreateCampaign(faultSpec(2, cycles)); err != nil {
		t.Fatal(err)
	}

	dist := newProbeLog()
	worker := func(id string) *Worker {
		return &Worker{
			Client:   newTestClient(tr),
			ID:       id,
			Campaign: "camp",
			ProberAt: func(cycle int) scan.Prober {
				return &countingProber{log: dist, cycle: cycle, inner: faultProberAt(cycle)}
			},
			Now: clk.Now,
			Sleep: func(ctx context.Context, d time.Duration) error {
				time.Sleep(100 * time.Microsecond)
				return ctx.Err()
			},
		}
	}
	errs := make(chan error, 2)
	go func() { errs <- worker("a").Run(context.Background()) }()
	go func() { errs <- worker("b").Run(context.Background()) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	st, err := c.Status("camp")
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesSingleNode(t, st, dist, single, singleLog)
	for i, h := range st.History {
		if h.Releases != 2 {
			t.Errorf("cycle %d: %d lease grants, want 2 (no failures injected)", i, h.Releases)
		}
	}
}

// TestWorkerKilledMidCycleExactlyOnce is acceptance criterion (a): a
// worker killed mid-cycle uploads its exact cursor in the dying gasp,
// its lease expires, the shard is re-leased to the survivor with that
// cursor attached, and the finished campaign's per-cycle probe sets
// equal the single-node run exactly — every address probed once,
// despite the crash.
func TestWorkerKilledMidCycleExactlyOnce(t *testing.T) {
	const cycles = 3
	single, singleLog := runSingleNode(t, cycles)

	clk := newVClock()
	c := mustCoordinator(t, NewMemStore(), clk.Now)
	tr := &memTransport{handler: NewHandler(c)}
	if err := c.CreateCampaign(faultSpec(2, cycles)); err != nil {
		t.Fatal(err)
	}

	dist := newProbeLog()
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	var aProbes atomic.Int64
	var aDead atomic.Bool

	// Worker a dies at its 40th probe of the campaign: mid-chunk, two
	// successful heartbeats behind it, half a shard to go.
	wa := &Worker{
		Client:   newTestClient(tr),
		ID:       "a",
		Campaign: "camp",
		ProberAt: func(cycle int) scan.Prober {
			return &countingProber{
				log: dist, cycle: cycle, inner: faultProberAt(cycle),
				onProbe: func() {
					if aProbes.Add(1) == 40 {
						cancelA()
					}
				},
			}
		},
		Now: clk.Now,
	}
	// Worker b survives. Its idle polls advance the virtual clock — but
	// only once a is dead, so the only lease that can ever expire under
	// it is the dead worker's.
	events := &eventLog{}
	wb := &Worker{
		Client:   newTestClient(tr),
		ID:       "b",
		Campaign: "camp",
		ProberAt: func(cycle int) scan.Prober {
			return &countingProber{log: dist, cycle: cycle, inner: faultProberAt(cycle)}
		},
		Now:     clk.Now,
		OnEvent: events.f,
		Sleep: func(ctx context.Context, d time.Duration) error {
			if aDead.Load() {
				clk.Advance(2 * time.Second)
			} else {
				time.Sleep(100 * time.Microsecond)
			}
			return ctx.Err()
		},
	}

	aErr := make(chan error, 1)
	bErr := make(chan error, 1)
	go func() {
		err := wa.Run(ctxA)
		aDead.Store(true)
		aErr <- err
	}()
	go func() { bErr <- wb.Run(context.Background()) }()

	if err := <-aErr; err != context.Canceled {
		t.Fatalf("killed worker returned %v, want context.Canceled", err)
	}
	if err := <-bErr; err != nil {
		t.Fatalf("surviving worker: %v", err)
	}

	st, err := c.Status("camp")
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesSingleNode(t, st, dist, single, singleLog)
	if st.History[0].Releases != 3 {
		t.Errorf("cycle 0 lease grants = %d, want 3 (two shards + one re-lease after the kill)", st.History[0].Releases)
	}
	if !events.contains("resume=true") {
		t.Error("survivor never received a resumable lease: the dead worker's cursor was not handed over")
	}
}

// TestCoordinatorCrashRestartMidCampaign is acceptance criterion (b):
// the coordinator is killed mid-cycle and a new process is started over
// the same durable state file. The worker — which kept scanning and
// buffering offline across the outage — reconnects, its original lease
// is still honored, and the campaign finishes with results identical to
// the single-node run.
func TestCoordinatorCrashRestartMidCampaign(t *testing.T) {
	const cycles = 2
	single, singleLog := runSingleNode(t, cycles)

	clk := newVClock()
	store := NewFileStore(t.TempDir() + "/state")
	c1 := mustCoordinator(t, store, clk.Now)
	tr := &memTransport{handler: NewHandler(c1)}
	if err := c1.CreateCampaign(faultSpec(1, cycles)); err != nil {
		t.Fatal(err)
	}

	// After the 3rd heartbeat the coordinator "crashes": requests fail
	// at the network layer. After 4 failed attempts a fresh coordinator
	// is built from the state file and takes over the same address.
	var hbSeen, downFails int
	var restarted atomic.Bool
	tr.onRequest = func(r *http.Request) error {
		if !strings.Contains(r.URL.Path, "/heartbeat") {
			return nil
		}
		hbSeen++
		if hbSeen <= 3 || restarted.Load() {
			return nil
		}
		downFails++
		if downFails >= 4 {
			c2, err := NewCoordinator(store, clk.Now)
			if err != nil {
				return fmt.Errorf("restart from durable store failed: %v", err)
			}
			tr.handler = NewHandler(c2)
			restarted.Store(true)
		}
		return fmt.Errorf("coord test: coordinator crashed")
	}

	dist := newProbeLog()
	events := &eventLog{}
	cl := newTestClient(tr)
	cl.MaxRetries = 1 // fail fast so the outage surfaces to the worker, not the retry loop
	w := &Worker{
		Client:   cl,
		ID:       "w",
		Campaign: "camp",
		ProberAt: func(cycle int) scan.Prober {
			return &countingProber{log: dist, cycle: cycle, inner: faultProberAt(cycle)}
		},
		Now:     clk.Now,
		OnEvent: events.f,
		Sleep: func(ctx context.Context, d time.Duration) error {
			return ctx.Err()
		},
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if !restarted.Load() {
		t.Fatal("the coordinator was never restarted; the fault did not fire")
	}
	if !events.contains("continuing offline") {
		t.Error("worker never degraded to offline scanning during the outage")
	}

	// The surviving coordinator (behind tr.handler) must hold the
	// completed campaign.
	st, err := cl.Status(context.Background(), "camp")
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesSingleNode(t, st, dist, single, singleLog)
	for i, h := range st.History {
		if h.Releases != 1 {
			t.Errorf("cycle %d lease grants = %d, want 1: the restart must honor the original lease, not re-issue the shard", i, h.Releases)
		}
	}
	if events.contains("lost") {
		t.Error("worker lost its lease across the coordinator restart")
	}
}

// TestFlakyTransportExactlyOnce runs a whole campaign over a transport
// that drops every 11th request before the coordinator sees it and
// loses every 7th response after the coordinator applied it. Client
// retries plus idempotent uploads plus lease fencing must still deliver
// exactly-once results.
func TestFlakyTransportExactlyOnce(t *testing.T) {
	const cycles = 2
	single, singleLog := runSingleNode(t, cycles)

	clk := newVClock()
	c := mustCoordinator(t, NewMemStore(), clk.Now)
	tr := &memTransport{handler: NewHandler(c)}
	var n atomic.Int64
	tr.onRequest = func(r *http.Request) error {
		if n.Add(1)%11 == 0 {
			return fmt.Errorf("coord test: request dropped")
		}
		return nil
	}
	tr.dropResponse = func(r *http.Request, reqNo int) bool {
		return reqNo%7 == 0
	}
	if err := c.CreateCampaign(faultSpec(2, cycles)); err != nil {
		t.Fatal(err)
	}

	dist := newProbeLog()
	// One worker: a lost acquire response orphans a lease, and only the
	// virtual clock (advanced during the worker's own idle polls, when
	// it holds nothing) can expire it — deterministic, no races with a
	// live peer's lease.
	w := &Worker{
		Client:   newTestClient(tr),
		ID:       "w",
		Campaign: "camp",
		ProberAt: func(cycle int) scan.Prober {
			return &countingProber{log: dist, cycle: cycle, inner: faultProberAt(cycle)}
		},
		Now: clk.Now,
		Sleep: func(ctx context.Context, d time.Duration) error {
			clk.Advance(2 * time.Second)
			return ctx.Err()
		},
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if tr.failures() == 0 {
		t.Fatal("no faults fired; the test proved nothing")
	}

	st, err := c.Status("camp")
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesSingleNode(t, st, dist, single, singleLog)
}

// TestCoordinatorRefusesTornStateFile is acceptance criterion (c) for
// the coordinator: a restart over a truncated state file must refuse to
// start, not silently begin with empty state and double-probe every
// in-flight shard.
func TestCoordinatorRefusesTornStateFile(t *testing.T) {
	path := t.TempDir() + "/state"
	c := mustCoordinator(t, NewFileStore(path), nil)
	if err := c.CreateCampaign(faultSpec(2, 2)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(NewFileStore(path), nil); err == nil {
		t.Fatal("coordinator started over a torn state file")
	} else if !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("torn state error %q does not refuse loading", err)
	}
}

// TestSlowChunkBackgroundRenewalKeepsLease guards against chunk-paced
// renewal starvation: with a slow prober (or a tight rate cap) a single
// chunk can take far longer than the lease TTL, and a worker that only
// heartbeats at chunk boundaries would lose every lease it touches and
// livelock the fleet. Each probe here advances the virtual clock by 5
// seconds — a 64-address shard spans 320 virtual seconds against a 30
// second TTL — and blocks until the coordinator's recorded lease
// deadline is comfortably ahead of the clock again, which only the
// background renewer can make true (the chunk budget is never reached).
func TestSlowChunkBackgroundRenewalKeepsLease(t *testing.T) {
	clk := newVClock()
	c := mustCoordinator(t, NewMemStore(), clk.Now)
	tr := &memTransport{handler: NewHandler(c)}
	var renewals atomic.Int64
	tr.dropResponse = func(r *http.Request, n int) bool {
		if strings.Contains(r.URL.Path, "/heartbeat") {
			renewals.Add(1)
		}
		return false
	}
	spec := CampaignSpec{
		ID:          "slow",
		Universe:    []string{"198.51.100.0/26"},
		Phi:         0.9,
		Cycles:      1,
		Shards:      1,
		Workers:     1,
		Seed:        3,
		LeaseTTL:    30 * time.Second,
		ChunkProbes: 4096, // never reached: renewals are the only heartbeats
	}
	if err := c.CreateCampaign(spec); err != nil {
		t.Fatal(err)
	}
	inner, err := scan.NewSimProber([]netaddr.Addr{netaddr.MustParseAddr("198.51.100.7")}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}

	dist := newProbeLog()
	events := &eventLog{}
	w := &Worker{
		Client:         newTestClient(tr),
		ID:             "w",
		Campaign:       "slow",
		HeartbeatEvery: time.Millisecond,
		Prober: &countingProber{
			log: dist, cycle: 0, inner: inner,
			onProbe: func() {
				clk.Advance(5 * time.Second)
				// Block until a renewal restores a >20s deadline margin.
				// The real-time grace bounds a broken implementation to a
				// failed audit instead of a hang.
				for grace := time.Now().Add(2 * time.Second); time.Now().Before(grace); {
					st, err := c.Status("slow")
					if err == nil && len(st.Shards) == 1 && st.Shards[0].State == shardLeased &&
						st.Shards[0].Deadline.Sub(clk.Now()) > 20*time.Second {
						return
					}
					time.Sleep(100 * time.Microsecond)
				}
			},
		},
		Now:     clk.Now,
		OnEvent: events.f,
		Sleep:   func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker: %v", err)
	}

	st, err := c.Status("slow")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatalf("campaign not done: %+v", st)
	}
	if st.History[0].Releases != 1 {
		t.Errorf("lease grants = %d, want 1: the slow chunk cost the worker its lease", st.History[0].Releases)
	}
	counts := dist.set(0)
	if len(counts) != 64 {
		t.Errorf("probed %d distinct addresses, want 64", len(counts))
	}
	for addr, n := range counts {
		if n != 1 {
			t.Errorf("%v probed %d times, want exactly once", addr, n)
		}
	}
	if renewals.Load() == 0 {
		t.Error("no background renewals fired; the test proved nothing")
	}
	if events.contains("lost") {
		t.Error("worker believed its lease lost during the slow chunk")
	}
}

// TestDistributedExclusionsEnforced: the campaign's operator blocklist
// travels in every lease, and a worker's local list layers on top — a
// fleet scan may never probe an address a single-node `tass scan
// -exclude` would have skipped.
func TestDistributedExclusionsEnforced(t *testing.T) {
	clk := newVClock()
	c := mustCoordinator(t, NewMemStore(), clk.Now)
	tr := &memTransport{handler: NewHandler(c)}
	spec := faultSpec(1, 2)
	spec.Exclude = []string{"203.0.113.192/26"} // campaign-wide
	if err := c.CreateCampaign(spec); err != nil {
		t.Fatal(err)
	}

	dist := newProbeLog()
	w := &Worker{
		Client:   newTestClient(tr),
		ID:       "w",
		Campaign: "camp",
		ProberAt: func(cycle int) scan.Prober {
			return &countingProber{log: dist, cycle: cycle, inner: faultProberAt(cycle)}
		},
		Exclude: []netaddr.Prefix{netaddr.MustParsePrefix("203.0.113.128/26")}, // worker-local
		Now:     clk.Now,
		Sleep: func(ctx context.Context, d time.Duration) error {
			clk.Advance(2 * time.Second)
			return ctx.Err()
		},
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker: %v", err)
	}

	st, err := c.Status("camp")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatalf("campaign not done: %+v", st)
	}
	blocked := []netaddr.Prefix{
		netaddr.MustParsePrefix("203.0.113.192/26"),
		netaddr.MustParsePrefix("203.0.113.128/26"),
	}
	probedAny := false
	for cycle := 0; cycle < 2; cycle++ {
		for addr := range dist.set(cycle) {
			probedAny = true
			for _, p := range blocked {
				if p.Contains(addr) {
					t.Errorf("cycle %d probed excluded address %v (in %v)", cycle, addr, p)
				}
			}
		}
	}
	if !probedAny {
		t.Fatal("nothing was probed; the exclusion test proved nothing")
	}
}

// TestWireErrorCodes: the HTTP protocol's body-level error codes keep
// sentinels apart even where statuses collide — a worker with a stale
// or bogus lease must see ErrUnknownLease / ErrLeaseLost, never a
// misdiagnosed ErrUnknownCampaign for a campaign that exists.
func TestWireErrorCodes(t *testing.T) {
	clk := newVClock()
	c := mustCoordinator(t, NewMemStore(), clk.Now)
	tr := &memTransport{handler: NewHandler(c)}
	if err := c.CreateCampaign(faultSpec(1, 1)); err != nil {
		t.Fatal(err)
	}
	cl := newTestClient(tr)
	ctx := context.Background()

	if _, err := cl.Status(ctx, "nope"); !errors.Is(err, ErrUnknownCampaign) {
		t.Errorf("unknown campaign err = %v, want ErrUnknownCampaign", err)
	}
	if err := cl.Heartbeat(ctx, "camp", "L99999999", Upload{}); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("never-issued lease err = %v, want ErrUnknownLease (campaign exists)", err)
	}
	lease, _, err := cl.Acquire(ctx, "camp", "w")
	if err != nil || lease == nil {
		t.Fatalf("acquire = %+v, %v", lease, err)
	}
	clk.Advance(31 * time.Second)
	if err := cl.Heartbeat(ctx, "camp", lease.LeaseID, Upload{}); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("expired lease err = %v, want ErrLeaseLost", err)
	}
	if err := cl.CreateCampaign(ctx, faultSpec(1, 1)); !errors.Is(err, ErrCampaignExists) {
		t.Errorf("duplicate create err = %v, want ErrCampaignExists", err)
	}
}
