package coord

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/scan"
)

// Worker is the fleet side of a distributed campaign: acquire a shard
// lease, scan it in checkpointable chunks, upload the cursor and
// results at every chunk boundary, complete, repeat until the campaign
// is done. A background renewer heartbeats the lease on a timer,
// independent of chunk boundaries, so a chunk that takes longer than
// the lease TTL (slow prober, tight rate cap) never costs the worker
// its shard.
//
// Failure posture: a worker that loses the coordinator does not abandon
// its shard — it keeps scanning and buffering results, retrying uploads
// at each chunk boundary, until either the coordinator comes back
// (reconnect, upload everything, continue) or the worker's local copy
// of the lease deadline passes without a successful renewal (the
// coordinator has certainly re-leased the shard by then; the worker
// discards its buffer and starts over with a fresh acquire). A
// rejected renewal (ErrLeaseLost) is an immediate stop: another worker
// owns the shard now, and uploading stale results would double-count.
type Worker struct {
	// Client talks to the coordinator (required).
	Client *Client
	// ID names this worker in leases and logs.
	ID string
	// Campaign is the campaign to work on (required).
	Campaign string
	// Prober performs the probes (required unless ProberAt is set).
	Prober scan.Prober
	// ProberAt, when set, supplies the prober per cycle (the simulation
	// hook, mirroring scan.Campaign.ProberAt).
	ProberAt func(cycle int) scan.Prober
	// Exclude lists prefixes this worker must never probe, layered on
	// top of the campaign-wide exclusion list carried in each lease.
	Exclude []netaddr.Prefix
	// HeartbeatEvery is the background lease-renewal cadence (default
	// TTL/3). Renewals re-send the last consistent upload — uploads are
	// cumulative and replace the previous one, so the replay is
	// idempotent.
	HeartbeatEvery time.Duration
	// Now is the worker's clock, injectable for deterministic tests
	// (default time.Now).
	Now func() time.Time
	// Sleep waits between polls when no shard is free, injectable for
	// tests (default timer sleep). Must honor ctx.
	Sleep func(ctx context.Context, d time.Duration) error
	// PollEvery is the idle-acquire poll interval (default 200ms).
	PollEvery time.Duration
	// OnEvent, when set, receives human-readable progress lines.
	OnEvent func(format string, args ...any)
}

// Run works the campaign until it is done or ctx is canceled. A
// coordinator outage during acquire is retried forever (the worker has
// nothing to lose and nowhere to be); ctx is the only way out.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil {
		return fmt.Errorf("coord: worker needs a client")
	}
	if w.Campaign == "" {
		return fmt.Errorf("coord: worker needs a campaign")
	}
	if w.Prober == nil && w.ProberAt == nil {
		return fmt.Errorf("coord: worker needs a prober")
	}
	for {
		lease, done, err := w.Client.Acquire(ctx, w.Campaign, w.ID)
		switch {
		case done:
			w.eventf("campaign %s done", w.Campaign)
			return nil
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.eventf("acquire failed (%v); retrying", err)
			if err := w.sleep(ctx, w.pollEvery()); err != nil {
				return err
			}
			continue
		case lease == nil:
			// Every shard is leased or done; poll until the cycle turns.
			if err := w.sleep(ctx, w.pollEvery()); err != nil {
				return err
			}
			continue
		}
		w.eventf("leased %s: cycle %d shard %d/%d (%d prefixes, resume=%v)",
			lease.LeaseID, lease.Cycle, lease.Shard, lease.Shards, len(lease.Plan), lease.Checkpoint != nil)
		if err := w.runLease(ctx, lease); err != nil {
			return err
		}
	}
}

// leaseHealth is the worker-side view of one held lease, shared between
// the chunk loop and the background renewer.
type leaseHealth struct {
	mu       sync.Mutex
	lastUp   Upload    // last consistent (chunk-boundary) upload
	deadline time.Time // local copy of the lease deadline
	fenced   bool      // the coordinator rejected the lease outright
}

func (h *leaseHealth) upload() Upload {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastUp
}

func (h *leaseHealth) commit(up Upload) {
	h.mu.Lock()
	h.lastUp = up
	h.mu.Unlock()
}

func (h *leaseHealth) renewed(d time.Time) {
	h.mu.Lock()
	h.deadline = d
	h.mu.Unlock()
}

func (h *leaseHealth) expiresAt() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.deadline
}

func (h *leaseHealth) markFenced() {
	h.mu.Lock()
	h.fenced = true
	h.mu.Unlock()
}

func (h *leaseHealth) isFenced() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fenced
}

// runLease scans one leased shard to completion (or abandonment). The
// returned error is only ever a dead context: lease-level failures are
// handled by abandoning the shard and letting Run re-acquire.
func (w *Worker) runLease(ctx context.Context, lease *Lease) error {
	plan, err := parsePartition(lease.Plan)
	if err != nil {
		// A malformed plan is a protocol bug, not a transient: abandon
		// the lease (it will expire) and surface loudly.
		w.eventf("lease %s: bad plan: %v", lease.LeaseID, err)
		return fmt.Errorf("coord: lease %s: bad plan: %w", lease.LeaseID, err)
	}
	exclude := append([]netaddr.Prefix(nil), w.Exclude...)
	for _, s := range lease.Exclude {
		p, err := netaddr.ParsePrefix(s)
		if err != nil {
			w.eventf("lease %s: bad exclusion %q: %v", lease.LeaseID, s, err)
			return fmt.Errorf("coord: lease %s: bad exclusion %q: %w", lease.LeaseID, s, err)
		}
		exclude = append(exclude, p)
	}
	prober := w.Prober
	if w.ProberAt != nil {
		prober = w.ProberAt(lease.Cycle)
	}
	scanner, err := scan.New(scan.Config{
		Targets:   plan,
		Prober:    prober,
		Rate:      lease.Rate,
		Workers:   lease.Workers,
		Seed:      lease.Seed,
		Shard:     lease.Shard,
		Shards:    lease.Shards,
		Exclude:   exclude,
		MaxProbes: lease.ChunkProbes,
		Politeness: scan.Politeness{
			PrefixRate:  lease.PrefixRate,
			PrefixBurst: lease.PrefixBurst,
		},
	})
	if err != nil {
		return fmt.Errorf("coord: lease %s: %w", lease.LeaseID, err)
	}
	if lease.Checkpoint != nil {
		if err := scanner.Resume(lease.Checkpoint); err != nil {
			return fmt.Errorf("coord: lease %s: %w", lease.LeaseID, err)
		}
	}

	// The worker's view of the lease, shared with the background
	// renewer. The initial upload carries the inherited checkpoint so a
	// renewal that fires before the first chunk boundary re-asserts the
	// cursor the coordinator already holds instead of clearing it.
	health := &leaseHealth{
		lastUp:   Upload{Checkpoint: lease.Checkpoint},
		deadline: w.now().Add(lease.TTL),
	}
	scanCtx, cancelScan := context.WithCancel(ctx)
	renewDone := make(chan struct{})
	go w.renewLoop(scanCtx, cancelScan, lease, health, renewDone)
	stopRenewer := func() {
		cancelScan()
		<-renewDone
	}
	defer stopRenewer()

	var responsive []netaddr.Addr
	var probed, nErrors uint64

	for {
		report, runErr := scanner.Run(scanCtx)
		if report != nil {
			responsive = mergeAddrs(responsive, report.Responsive)
			probed += report.Probed
			nErrors += report.Errors
		}
		cp := scanner.Checkpoint()
		up := Upload{Checkpoint: cp, Responsive: responsive, Probed: probed, Errors: nErrors}
		health.commit(up)

		if runErr != nil {
			if health.isFenced() && ctx.Err() == nil {
				// The renewer hit the fence and canceled the scan: the
				// shard has a new owner; every further probe would be
				// repeated by it. Discard and re-acquire.
				w.eventf("lease %s: lost; discarding buffered results", lease.LeaseID)
				return nil
			}
			// Canceled mid-chunk. The checkpoint still describes exactly
			// what was probed (the scanner rewinds drawn-but-unprobed
			// addresses), so one last upload hands the precise cursor to
			// whoever inherits the shard. The parent ctx is dead; give
			// the dying gasp its own short deadline.
			gctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			if err := w.Client.Heartbeat(gctx, lease.Campaign, lease.LeaseID, up); err != nil {
				w.eventf("lease %s: final checkpoint upload failed: %v", lease.LeaseID, err)
			} else {
				w.eventf("lease %s: interrupted; cursor uploaded", lease.LeaseID)
			}
			cancel()
			return runErr
		}

		if lease.ChunkProbes == 0 || report.Probed < lease.ChunkProbes {
			// The chunk under-ran its probe budget: the shard is
			// exhausted. (A chunk that exactly hit the budget at the end
			// of the shard just goes around once more and lands here
			// with 0 probed. A zero chunk size means the whole shard ran
			// unchunked — the background renewer alone keeps the lease
			// alive.)
			break
		}

		// Chunk boundary: renew the lease and publish the cursor.
		err := w.Client.Heartbeat(ctx, lease.Campaign, lease.LeaseID, up)
		switch {
		case err == nil:
			health.renewed(w.now().Add(lease.TTL))
		case errors.Is(err, ErrLeaseLost), errors.Is(err, ErrUnknownCampaign), errors.Is(err, ErrUnknownLease):
			// Fenced off: the shard has a new owner (or the campaign is
			// gone). Discard everything buffered — uploading it would
			// double-count against the replacement's work.
			w.eventf("lease %s: lost (%v); discarding buffered results", lease.LeaseID, err)
			return nil
		default:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Coordinator unreachable: degrade gracefully. Keep the
			// shard running and the results buffered; the next chunk
			// boundary retries. Only a locally expired lease stops us.
			if !w.now().Before(health.expiresAt()) {
				w.eventf("lease %s: coordinator away past lease deadline; abandoning shard", lease.LeaseID)
				return nil
			}
			w.eventf("lease %s: heartbeat failed (%v); continuing offline", lease.LeaseID, err)
		}

		if err := scanner.Resume(scanner.Checkpoint()); err != nil {
			return fmt.Errorf("coord: lease %s: %w", lease.LeaseID, err)
		}
	}

	// Shard complete. Stop the renewer first: a renewal in flight while
	// Complete lands would see the (correctly) dead lease and report it
	// lost. Then push the final upload until it lands, the lease is
	// fenced, or the worker's local deadline passes.
	stopRenewer()
	if health.isFenced() {
		w.eventf("lease %s: lost before completion; discarding", lease.LeaseID)
		return nil
	}
	up := Upload{Responsive: responsive, Probed: probed, Errors: nErrors}
	for {
		err := w.Client.Complete(ctx, lease.Campaign, lease.LeaseID, up)
		switch {
		case err == nil:
			w.eventf("lease %s: shard complete (%d probed, %d responsive)",
				lease.LeaseID, probed, len(responsive))
			return nil
		case errors.Is(err, ErrLeaseLost), errors.Is(err, ErrUnknownCampaign), errors.Is(err, ErrUnknownLease):
			w.eventf("lease %s: lost before completion (%v); discarding", lease.LeaseID, err)
			return nil
		default:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if !w.now().Before(health.expiresAt()) {
				w.eventf("lease %s: cannot report completion before deadline; abandoning", lease.LeaseID)
				return nil
			}
			w.eventf("lease %s: complete failed (%v); buffering and retrying", lease.LeaseID, err)
			if err := w.sleep(ctx, w.pollEvery()); err != nil {
				return err
			}
		}
	}
}

// renewLoop renews the lease on a real-time timer, decoupled from chunk
// boundaries: with the default TTL/3 cadence a chunk may take
// arbitrarily long (sequential TCP probes, a tight -rate cap) without
// the lease ever lapsing. Each renewal re-sends the last consistent
// upload, which the coordinator applies idempotently. A fenced renewal
// cancels the scan via cancelScan so the worker stops probing a shard
// it no longer owns; transient failures are left to the chunk loop's
// offline-deadline policy.
func (w *Worker) renewLoop(ctx context.Context, cancelScan context.CancelFunc, lease *Lease, health *leaseHealth, done chan<- struct{}) {
	defer close(done)
	interval := w.HeartbeatEvery
	if interval <= 0 {
		interval = lease.TTL / 3
	}
	if interval <= 0 {
		return
	}
	t := time.NewTimer(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		err := w.Client.Heartbeat(ctx, lease.Campaign, lease.LeaseID, health.upload())
		switch {
		case err == nil:
			health.renewed(w.now().Add(lease.TTL))
		case errors.Is(err, ErrLeaseLost), errors.Is(err, ErrUnknownCampaign), errors.Is(err, ErrUnknownLease):
			w.eventf("lease %s: renewal fenced (%v); stopping the scan", lease.LeaseID, err)
			health.markFenced()
			cancelScan()
			return
		}
		t.Reset(interval)
	}
}

func (w *Worker) now() time.Time {
	if w.Now != nil {
		return w.Now()
	}
	return time.Now()
}

func (w *Worker) pollEvery() time.Duration {
	if w.PollEvery > 0 {
		return w.PollEvery
	}
	return 200 * time.Millisecond
}

func (w *Worker) sleep(ctx context.Context, d time.Duration) error {
	if w.Sleep != nil {
		return w.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (w *Worker) eventf(format string, args ...any) {
	if w.OnEvent != nil {
		w.OnEvent(format, args...)
	}
}
