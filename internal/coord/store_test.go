package coord

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore()
	if _, err := s.Load(); err != ErrNoState {
		t.Fatalf("empty Load err = %v, want ErrNoState", err)
	}
	if err := s.Save([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("Load = %q", got)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state")
	s := NewFileStore(path)
	if _, err := s.Load(); err != ErrNoState {
		t.Fatalf("missing-file Load err = %v, want ErrNoState", err)
	}
	payload := []byte(`{"campaigns":{}}`)
	if err := s.Save(payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("Load = %q, want %q", got, payload)
	}
	// Overwrite: atomic replace, new payload wins.
	if err := s.Save([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if got, _ = s.Load(); string(got) != "second" {
		t.Fatalf("Load after overwrite = %q", got)
	}
}

// TestFileStoreRefusesTornAndCorrupt is the durable-state half of the
// torn-file acceptance criterion: every damaged variant of a state file
// must be refused at load, never half-trusted.
func TestFileStoreRefusesTornAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) *FileStore {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return NewFileStore(p)
	}
	good := NewFileStore(filepath.Join(dir, "good"))
	if err := good.Save([]byte(`{"v":1,"campaigns":{}}`)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "good"))
	if err != nil {
		t.Fatal(err)
	}

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-2] ^= 0x20 // corrupt a payload byte, keep length

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"no newline", []byte("tass-coord-state v1 len=2 crc32=00000000")},
		{"torn payload", raw[:len(raw)-3]},
		{"header only", raw[:len(raw)-len(`{"v":1,"campaigns":{}}`)]},
		{"flipped payload byte", flipped},
		{"wrong magic", []byte(strings.Replace(string(raw), "tass-coord-state", "mass-coord-state", 1))},
		{"future version", []byte(strings.Replace(string(raw), " v1 ", " v9 ", 1))},
		{"garbage", []byte("not a state file at all\njunk")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := write("bad-"+strings.ReplaceAll(tc.name, " ", "-"), tc.data)
			if data, err := s.Load(); err == nil {
				t.Fatalf("damaged state file loaded: %q", data)
			}
		})
	}
}
