package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// The wire protocol is plain HTTP+JSON:
//
//	POST /v1/campaigns                                  CampaignSpec → {}
//	GET  /v1/campaigns/{id}                             → Status
//	POST /v1/campaigns/{id}/acquire                     acquireRequest → acquireResponse
//	POST /v1/campaigns/{id}/leases/{lease}/heartbeat    Upload → heartbeatResponse
//	POST /v1/campaigns/{id}/leases/{lease}/complete     Upload → {}
//
// Semantic failures map to statuses plus a machine-readable `code`
// field in the JSON body that the client turns back into sentinel
// errors: 404 unknown campaign/lease (disambiguated by code), 410 lease
// lost, 409 duplicate campaign, 400 bad request. Anything
// transport-shaped (5xx, network) is retryable; 4xx is not.

type acquireRequest struct {
	Worker string `json:"worker"`
}

type acquireResponse struct {
	// Done means the campaign is finished: no more work, ever.
	Done bool `json:"done,omitempty"`
	// Lease is nil when no shard is free right now (and Done is false):
	// the worker should poll again shortly.
	Lease *Lease `json:"lease,omitempty"`
}

type heartbeatResponse struct {
	Deadline time.Time `json:"deadline"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Code names the sentinel error machine-readably; HTTP statuses
	// alone are ambiguous (unknown campaign and unknown lease are both
	// 404, and a worker diagnosing the wrong one would re-acquire
	// against a campaign it believes is gone).
	Code string `json:"code,omitempty"`
}

// Wire error codes, mapped from sentinels by writeError and back by the
// client.
const (
	codeUnknownCampaign = "unknown_campaign"
	codeUnknownLease    = "unknown_lease"
	codeLeaseLost       = "lease_lost"
	codeCampaignExists  = "campaign_exists"
)

// maxBodyBytes bounds request bodies: uploads carry address lists, not
// bulk data, and a malicious or confused client must not OOM the
// coordinator.
const maxBodyBytes = 64 << 20

// NewHandler exposes the coordinator over HTTP.
func NewHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec CampaignSpec
		if !decodeBody(w, r, &spec) {
			return
		}
		if err := c.CreateCampaign(spec); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("GET /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := c.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/campaigns/{id}/acquire", func(w http.ResponseWriter, r *http.Request) {
		var req acquireRequest
		if !decodeBody(w, r, &req) {
			return
		}
		lease, done, err := c.Acquire(r.PathValue("id"), req.Worker)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, acquireResponse{Done: done, Lease: lease})
	})
	mux.HandleFunc("POST /v1/campaigns/{id}/leases/{lease}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var up Upload
		if !decodeBody(w, r, &up) {
			return
		}
		deadline, err := c.Heartbeat(r.PathValue("id"), r.PathValue("lease"), up)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, heartbeatResponse{Deadline: deadline})
	})
	mux.HandleFunc("POST /v1/campaigns/{id}/leases/{lease}/complete", func(w http.ResponseWriter, r *http.Request) {
		var up Upload
		if !decodeBody(w, r, &up) {
			return
		}
		if err := c.Complete(r.PathValue("id"), r.PathValue("lease"), up); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	return mux
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("coord: bad request body: %v", err)})
		return false
	}
	return true
}

func writeError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, ""
	switch {
	case errors.Is(err, ErrUnknownCampaign):
		status, code = http.StatusNotFound, codeUnknownCampaign
	case errors.Is(err, ErrUnknownLease):
		status, code = http.StatusNotFound, codeUnknownLease
	case errors.Is(err, ErrLeaseLost):
		status, code = http.StatusGone, codeLeaseLost
	case errors.Is(err, ErrCampaignExists):
		status, code = http.StatusConflict, codeCampaignExists
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
