// Package coord makes the scan-campaign feedback loop fault-tolerant
// across a fleet: an HTTP+JSON coordinator owns the campaign state
// machine, workers own nothing but a lease.
//
// The unit of work is one shard of one scan cycle — the same ZMap-style
// cycle slice that scan.Config.Shard/Shards gives a single machine. A
// worker acquires a time-bounded lease on a shard, scans it in
// checkpointable chunks, renews the lease by uploading its cursor
// (scan.Checkpoint) plus the responsive addresses found so far, and
// finally marks the shard complete. A lease that is not renewed before
// its deadline — worker crash, network partition — is revoked, and the
// shard is re-leased to the next worker that asks, *with the dead
// worker's last uploaded checkpoint*: the replacement resumes exactly
// where the uploads stopped, so the cycle still probes each address
// exactly once. This is the local Scanner.Resume guarantee lifted to the
// fleet; lease fencing (upload tokens die with the lease) keeps a
// partitioned-but-alive worker from double-counting results it can no
// longer own.
//
// When every shard of a cycle is complete the coordinator merges the
// per-shard responsive sets into a census snapshot, runs the paper's
// re-selection over the campaign universe, and the next cycle's leases
// carry the tightened plan — scan.Campaign's loop, with the coordinator
// as the only stateful party.
//
// All coordinator state — campaigns, outstanding leases, uploaded
// cursors, partial cycles — persists through a pluggable Store after
// every mutation, so a coordinator crash loses nothing: the restarted
// process reloads the store and honors the leases its predecessor
// issued.
package coord

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
	"github.com/tass-scan/tass/internal/scan"
)

// Sentinel errors, mapped onto HTTP statuses by the handler and back
// into errors by the client.
var (
	// ErrUnknownCampaign means the campaign ID is not registered.
	ErrUnknownCampaign = errors.New("coord: unknown campaign")
	// ErrUnknownLease means the lease ID was never issued.
	ErrUnknownLease = errors.New("coord: unknown lease")
	// ErrLeaseLost means the lease expired or was superseded: the worker
	// no longer owns the shard and must discard its buffered results.
	ErrLeaseLost = errors.New("coord: lease lost")
	// ErrCampaignExists rejects a duplicate campaign ID.
	ErrCampaignExists = errors.New("coord: campaign already exists")
)

// CampaignSpec is the immutable configuration of a distributed campaign.
// Prefixes travel as CIDR strings so the spec is one self-describing
// JSON document on the wire and in the store.
type CampaignSpec struct {
	// ID names the campaign; all worker requests carry it.
	ID string `json:"id"`
	// Universe is the prefix partition selections are drawn from.
	Universe []string `json:"universe"`
	// Targets, when non-empty, is the cycle-0 scan plan; it defaults to
	// Universe (a full seed scan).
	Targets []string `json:"targets,omitempty"`
	// Phi is the host-coverage target φ for each re-selection.
	Phi float64 `json:"phi"`
	// MinDensity, when positive, stops each selection below the density
	// threshold.
	MinDensity float64 `json:"min_density,omitempty"`
	// Cycles is how many scan-and-reselect iterations to run.
	Cycles int `json:"cycles"`
	// Shards is how many leases each cycle is split into — the fleet's
	// parallelism. Every shard must complete before the cycle reseeds.
	Shards int `json:"shards"`
	// Workers is the scanner worker count used *inside* each leased
	// shard. It is fixed per campaign because the checkpoint cursor
	// layout depends on it: a shard checkpointed under W workers can
	// only be resumed under W workers, on any machine.
	Workers int `json:"workers"`
	// Seed is the cycle-0 permutation seed; cycle i uses Seed+i, exactly
	// like the single-node scan.Campaign.
	Seed int64 `json:"seed"`
	// Rate, when positive, caps each worker's probes per second.
	Rate float64 `json:"rate,omitempty"`
	// Exclude lists prefixes no worker may probe (the operator
	// blocklist), as CIDR strings. It travels in every lease, so a
	// fleet scan enforces the same exclusions as a single-node
	// `tass scan -exclude` — workers may layer their own local list on
	// top, but can never see less than the campaign's.
	Exclude []string `json:"exclude,omitempty"`
	// PrefixRate and PrefixBurst, when set, cap each worker's probes
	// per second into any single target prefix (the politeness layer's
	// per-prefix pacing). The per-AS knobs are not distributed: they
	// need a pfx2as origin mapping on every worker.
	PrefixRate  float64 `json:"prefix_rate,omitempty"`
	PrefixBurst int     `json:"prefix_burst,omitempty"`
	// LeaseTTL bounds how stale a silent worker can be before its shard
	// is re-leased (default 30s).
	LeaseTTL time.Duration `json:"lease_ttl"`
	// ChunkProbes is the checkpoint granularity: a worker uploads its
	// cursor after at most this many probes (default 256). It bounds
	// the work a replacement worker repeats after a hard crash.
	ChunkProbes uint64 `json:"chunk_probes"`
	// Protocol names the census snapshots built from scan results
	// (default "scan").
	Protocol string `json:"protocol,omitempty"`
}

// withDefaults fills the optional knobs.
func (s CampaignSpec) withDefaults() CampaignSpec {
	if s.Workers <= 0 {
		s.Workers = 4
	}
	if s.LeaseTTL <= 0 {
		s.LeaseTTL = 30 * time.Second
	}
	if s.ChunkProbes == 0 {
		s.ChunkProbes = 256
	}
	if s.Protocol == "" {
		s.Protocol = "scan"
	}
	return s
}

// validate checks the spec and returns the parsed universe and targets
// partitions.
func (s CampaignSpec) validate() (universe, targets rib.Partition, err error) {
	if s.ID == "" {
		return universe, targets, fmt.Errorf("coord: campaign needs an ID")
	}
	if s.Cycles <= 0 {
		return universe, targets, fmt.Errorf("coord: campaign needs at least one cycle")
	}
	if s.Shards <= 0 {
		return universe, targets, fmt.Errorf("coord: campaign needs at least one shard")
	}
	if s.Phi <= 0 || s.Phi > 1 {
		return universe, targets, fmt.Errorf("coord: φ must be in (0,1], got %v", s.Phi)
	}
	if universe, err = parsePartition(s.Universe); err != nil {
		return universe, targets, fmt.Errorf("coord: universe: %w", err)
	}
	if universe.Len() == 0 {
		return universe, targets, fmt.Errorf("coord: campaign needs a universe")
	}
	if len(s.Targets) > 0 {
		if targets, err = parsePartition(s.Targets); err != nil {
			return universe, targets, fmt.Errorf("coord: targets: %w", err)
		}
	}
	// Exclusions may overlap each other and the universe freely (they
	// form a trie, not a partition), but every entry must parse: a typo
	// discovered at lease time would stall the whole fleet.
	for _, x := range s.Exclude {
		if _, err := netaddr.ParsePrefix(x); err != nil {
			return universe, targets, fmt.Errorf("coord: exclusion %q: %w", x, err)
		}
	}
	if math.IsNaN(s.PrefixRate) || math.IsInf(s.PrefixRate, 0) || s.PrefixRate < 0 {
		return universe, targets, fmt.Errorf("coord: prefix rate must be finite and non-negative, got %v", s.PrefixRate)
	}
	return universe, targets, nil
}

// parsePartition parses CIDR strings into a disjoint partition.
func parsePartition(cidrs []string) (rib.Partition, error) {
	ps := make([]netaddr.Prefix, 0, len(cidrs))
	for _, s := range cidrs {
		p, err := netaddr.ParsePrefix(s)
		if err != nil {
			return rib.Partition{}, err
		}
		ps = append(ps, p)
	}
	return rib.NewPartition(ps)
}

// formatPartition renders a partition back to CIDR strings.
func formatPartition(p rib.Partition) []string {
	out := make([]string, p.Len())
	for i := 0; i < p.Len(); i++ {
		out[i] = p.Prefix(i).String()
	}
	return out
}

// Lease is one granted shard of one cycle: everything a worker needs to
// run its slice of the scan, plus the fencing token (LeaseID) that
// scopes its uploads.
type Lease struct {
	// LeaseID fences uploads: it dies when the lease expires or the
	// shard completes, so a late upload from a dead lease is rejected.
	LeaseID string `json:"lease_id"`
	// Campaign and Cycle locate the shard in the state machine.
	Campaign string `json:"campaign"`
	Cycle    int    `json:"cycle"`
	// Shard of Shards is the cycle slice, in scan.Config terms.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Workers is the scanner worker count the shard must run (and
	// resume) under.
	Workers int `json:"workers"`
	// Seed is this cycle's permutation seed (spec seed + cycle).
	Seed int64 `json:"seed"`
	// Rate caps the worker's probes per second (0 = unlimited).
	Rate float64 `json:"rate,omitempty"`
	// Exclude is the campaign's operator blocklist as CIDR strings; the
	// worker must never probe these, exactly like a single-node scan
	// with -exclude.
	Exclude []string `json:"exclude,omitempty"`
	// PrefixRate and PrefixBurst cap the worker's probes per second
	// into any single target prefix (0 = off).
	PrefixRate  float64 `json:"prefix_rate,omitempty"`
	PrefixBurst int     `json:"prefix_burst,omitempty"`
	// ChunkProbes is the checkpoint cadence the worker should scan at.
	ChunkProbes uint64 `json:"chunk_probes"`
	// TTL is the lease duration; the worker must renew (heartbeat)
	// before it elapses or the shard will be re-leased.
	TTL time.Duration `json:"ttl"`
	// Plan is the cycle's scan plan as CIDR strings.
	Plan []string `json:"plan"`
	// Checkpoint, when non-nil, is the cursor a previous (dead) holder
	// of this shard uploaded: the worker must Resume from it so the
	// cycle probes each address exactly once.
	Checkpoint *scan.Checkpoint `json:"checkpoint,omitempty"`
}

// Upload is the worker→coordinator payload of a heartbeat (partial) or
// completion (final): the cursor and everything found under this lease
// so far. Heartbeat uploads are cumulative per lease and replace the
// previous upload; the checkpoint and responsive set always describe
// the same consistent instant (a chunk boundary).
type Upload struct {
	// Checkpoint is the cursor at the chunk boundary (nil on Complete:
	// a finished shard has no cursor).
	Checkpoint *scan.Checkpoint `json:"checkpoint,omitempty"`
	// Responsive lists the open addresses this lease has found, sorted.
	Responsive []netaddr.Addr `json:"responsive"`
	// Probed and Errors count this lease's probes.
	Probed uint64 `json:"probed"`
	Errors uint64 `json:"errors"`
}

// CycleSummary records one completed distributed cycle.
type CycleSummary struct {
	Cycle      int     `json:"cycle"`
	Plan       int     `json:"plan_prefixes"`
	Probed     uint64  `json:"probed"`
	Errors     uint64  `json:"errors"`
	Responsive int     `json:"responsive"`
	Selected   int     `json:"selected"`
	SpaceShare float64 `json:"space_share"`
	// Releases counts lease grants for the cycle; more grants than
	// shards means at least one shard was re-leased after a failure.
	Releases int `json:"releases"`
}

// ShardStatus is the externally visible state of one shard.
type ShardStatus struct {
	Index    int       `json:"index"`
	State    string    `json:"state"` // "pending" | "leased" | "done"
	Worker   string    `json:"worker,omitempty"`
	LeaseID  string    `json:"lease_id,omitempty"`
	Deadline time.Time `json:"deadline,omitzero"`
	// Resumable reports whether a checkpoint is waiting for the next
	// holder.
	Resumable bool `json:"resumable,omitempty"`
}

// Status is the coordinator's answer to a campaign status query.
type Status struct {
	ID      string         `json:"id"`
	Cycle   int            `json:"cycle"`
	Cycles  int            `json:"cycles"`
	Done    bool           `json:"done"`
	Note    string         `json:"note,omitempty"`
	Plan    []string       `json:"plan"`
	Shards  []ShardStatus  `json:"shards"`
	History []CycleSummary `json:"history,omitempty"`
	// Responsive is the final cycle's responsive set, populated once the
	// campaign is done.
	Responsive []netaddr.Addr `json:"responsive,omitempty"`
}
