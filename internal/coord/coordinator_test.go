package coord

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/scan"
)

// vclock is a mutex-guarded virtual clock: lease expiry in these tests
// happens exactly when the test says so, never because a runner was
// slow.
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func newVClock() *vclock {
	return &vclock{t: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *vclock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *vclock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testSpec(id string) CampaignSpec {
	return CampaignSpec{
		ID:          id,
		Universe:    []string{"198.51.100.0/28", "198.51.100.16/28", "198.51.100.32/28", "198.51.100.48/28"},
		Phi:         0.9,
		Cycles:      2,
		Shards:      2,
		Workers:     2,
		Seed:        7,
		LeaseTTL:    30 * time.Second,
		ChunkProbes: 16,
	}
}

func mustCoordinator(t *testing.T, store Store, now func() time.Time) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(store, now)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCreateCampaignValidation(t *testing.T) {
	c := mustCoordinator(t, NewMemStore(), nil)
	cases := []struct {
		name string
		mut  func(*CampaignSpec)
	}{
		{"no id", func(s *CampaignSpec) { s.ID = "" }},
		{"no universe", func(s *CampaignSpec) { s.Universe = nil }},
		{"overlapping universe", func(s *CampaignSpec) { s.Universe = []string{"10.0.0.0/8", "10.1.0.0/16"} }},
		{"bad cidr", func(s *CampaignSpec) { s.Universe = []string{"not-a-prefix"} }},
		{"zero cycles", func(s *CampaignSpec) { s.Cycles = 0 }},
		{"zero shards", func(s *CampaignSpec) { s.Shards = 0 }},
		{"phi out of range", func(s *CampaignSpec) { s.Phi = 1.5 }},
	}
	for _, tc := range cases {
		spec := testSpec("v")
		tc.mut(&spec)
		if err := c.CreateCampaign(spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := c.CreateCampaign(testSpec("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateCampaign(testSpec("v")); !errors.Is(err, ErrCampaignExists) {
		t.Fatalf("duplicate create err = %v", err)
	}
}

// TestLeaseExpiryHandsCheckpointToReplacement is the heart of the
// fault-tolerance story: a lease that dies silently is re-issued to the
// next worker with the dead worker's last uploaded cursor and results.
func TestLeaseExpiryHandsCheckpointToReplacement(t *testing.T) {
	clk := newVClock()
	c := mustCoordinator(t, NewMemStore(), clk.Now)
	if err := c.CreateCampaign(testSpec("x")); err != nil {
		t.Fatal(err)
	}

	l1, done, err := c.Acquire("x", "worker-a")
	if err != nil || done || l1 == nil {
		t.Fatalf("acquire = %+v, %v, %v", l1, done, err)
	}
	if l1.Checkpoint != nil {
		t.Fatal("fresh shard came with a checkpoint")
	}

	// worker-a uploads a cursor, then goes silent.
	cp := &scan.Checkpoint{N: 64, Seed: 7, Shards: 2, Workers: 2, Consumed: []uint64{5, 6}, Shard: l1.Shard}
	found := []netaddr.Addr{netaddr.MustParseAddr("198.51.100.3")}
	if _, err := c.Heartbeat("x", l1.LeaseID, Upload{Checkpoint: cp, Responsive: found, Probed: 11, Errors: 1}); err != nil {
		t.Fatal(err)
	}

	// Before expiry the shard is not re-leasable: a second worker gets
	// the other shard, a third gets nothing.
	l2, _, err := c.Acquire("x", "worker-b")
	if err != nil || l2 == nil || l2.Shard == l1.Shard {
		t.Fatalf("second acquire = %+v, %v", l2, err)
	}
	l3, done, err := c.Acquire("x", "worker-c")
	if err != nil || done || l3 != nil {
		t.Fatalf("exhausted acquire = %+v, %v, %v", l3, done, err)
	}

	// Past the deadline worker-a's shard is re-issued — with its cursor.
	clk.Advance(31 * time.Second)
	l4, _, err := c.Acquire("x", "worker-c")
	if err != nil || l4 == nil {
		t.Fatalf("post-expiry acquire = %+v, %v", l4, err)
	}
	if l4.Shard != l1.Shard {
		t.Fatalf("re-lease got shard %d, want %d (worker-b's shard %d must not move)", l4.Shard, l1.Shard, l2.Shard)
	}
	if l4.Checkpoint == nil || l4.Checkpoint.Consumed[0] != 5 || l4.Checkpoint.Consumed[1] != 6 {
		t.Fatalf("re-lease checkpoint = %+v, want worker-a's cursor", l4.Checkpoint)
	}
	if l4.LeaseID == l1.LeaseID {
		t.Fatal("re-lease reused the dead lease ID: fencing impossible")
	}

	// The dead lease is fenced: worker-a coming back from the partition
	// must get ErrLeaseLost on every verb, and its buffered upload must
	// not be double-counted.
	if _, err := c.Heartbeat("x", l1.LeaseID, Upload{}); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale heartbeat err = %v, want ErrLeaseLost", err)
	}
	if err := c.Complete("x", l1.LeaseID, Upload{}); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale complete err = %v, want ErrLeaseLost", err)
	}
	// worker-b expired too (same clock) — advance was global. worker-b's
	// shard went back to pending; re-acquire works.
	if _, err := c.Heartbeat("x", l2.LeaseID, Upload{}); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("worker-b heartbeat err = %v, want ErrLeaseLost (also expired)", err)
	}

	// A lease ID never issued is unknown, not lost.
	if _, err := c.Heartbeat("x", "L99999999", Upload{}); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("unknown lease err = %v, want ErrUnknownLease", err)
	}
}

// TestRenewalKeepsLeaseAlive: heartbeats move the deadline; a renewed
// lease survives arbitrarily long.
func TestRenewalKeepsLeaseAlive(t *testing.T) {
	clk := newVClock()
	c := mustCoordinator(t, NewMemStore(), clk.Now)
	if err := c.CreateCampaign(testSpec("x")); err != nil {
		t.Fatal(err)
	}
	l, _, err := c.Acquire("x", "w")
	if err != nil || l == nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		clk.Advance(20 * time.Second) // inside the 30s TTL every time
		if _, err := c.Heartbeat("x", l.LeaseID, Upload{Probed: uint64(i)}); err != nil {
			t.Fatalf("renewal %d failed: %v", i, err)
		}
	}
	clk.Advance(31 * time.Second) // now let it lapse
	if _, err := c.Heartbeat("x", l.LeaseID, Upload{}); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("post-lapse heartbeat err = %v, want ErrLeaseLost", err)
	}
}

// TestCycleCompletionReseeds: completing every shard of a cycle merges
// results, runs the selection, and opens the next cycle on the
// tightened plan; the last cycle finishes the campaign.
func TestCycleCompletionReseeds(t *testing.T) {
	clk := newVClock()
	c := mustCoordinator(t, NewMemStore(), clk.Now)
	spec := testSpec("x") // 4 /28s, φ=0.9, 2 cycles, 2 shards
	if err := c.CreateCampaign(spec); err != nil {
		t.Fatal(err)
	}
	// All responsive hosts live in the first /28: the selection must
	// tighten the plan to (at least mostly) that prefix.
	dense := []netaddr.Addr{
		netaddr.MustParseAddr("198.51.100.1"),
		netaddr.MustParseAddr("198.51.100.2"),
		netaddr.MustParseAddr("198.51.100.3"),
		netaddr.MustParseAddr("198.51.100.4"),
	}
	la, _, _ := c.Acquire("x", "a")
	lb, _, _ := c.Acquire("x", "b")
	if la == nil || lb == nil {
		t.Fatal("acquires failed")
	}
	if err := c.Complete("x", la.LeaseID, Upload{Responsive: dense[:2], Probed: 32}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status("x")
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycle != 0 || len(st.History) != 0 {
		t.Fatalf("cycle advanced with a shard outstanding: %+v", st)
	}
	if err := c.Complete("x", lb.LeaseID, Upload{Responsive: dense[2:], Probed: 32}); err != nil {
		t.Fatal(err)
	}
	st, err = c.Status("x")
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycle != 1 {
		t.Fatalf("cycle = %d after full completion, want 1", st.Cycle)
	}
	if len(st.History) != 1 || st.History[0].Responsive != 4 || st.History[0].Probed != 64 {
		t.Fatalf("history = %+v", st.History)
	}
	if len(st.Plan) == 0 || len(st.Plan) >= 4 {
		t.Fatalf("cycle-1 plan %v, want a tightened selection", st.Plan)
	}
	for _, p := range st.Plan {
		if !strings.HasPrefix(p, "198.51.100.") {
			t.Fatalf("plan prefix %s outside universe", p)
		}
	}
	// Cycle 1 (the last): complete both shards, campaign done.
	la, _, _ = c.Acquire("x", "a")
	lb, _, _ = c.Acquire("x", "b")
	if la.Cycle != 1 || lb.Cycle != 1 {
		t.Fatalf("cycle-1 leases = %d, %d", la.Cycle, lb.Cycle)
	}
	if err := c.Complete("x", la.LeaseID, Upload{Responsive: dense[:1], Probed: 8}); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("x", lb.LeaseID, Upload{Responsive: dense[1:3], Probed: 8}); err != nil {
		t.Fatal(err)
	}
	st, _ = c.Status("x")
	if !st.Done {
		t.Fatalf("campaign not done: %+v", st)
	}
	if len(st.Responsive) != 3 {
		t.Fatalf("final responsive = %d, want 3", len(st.Responsive))
	}
	if _, done, err := c.Acquire("x", "a"); err != nil || !done {
		t.Fatalf("post-done acquire = done=%v err=%v", done, err)
	}
}

// TestCoordinatorRestartResumesLeases is acceptance criterion (b) at
// the state-machine level: a coordinator rebuilt from the durable store
// honors leases its predecessor issued, mid-campaign, mid-cycle.
func TestCoordinatorRestartResumesLeases(t *testing.T) {
	clk := newVClock()
	store := NewFileStore(t.TempDir() + "/state")
	c1 := mustCoordinator(t, store, clk.Now)
	if err := c1.CreateCampaign(testSpec("x")); err != nil {
		t.Fatal(err)
	}
	la, _, _ := c1.Acquire("x", "a")
	lb, _, _ := c1.Acquire("x", "b")
	cp := &scan.Checkpoint{N: 64, Seed: 7, Shard: la.Shard, Shards: 2, Workers: 2, Consumed: []uint64{3, 4}}
	if _, err := c1.Heartbeat("x", la.LeaseID, Upload{Checkpoint: cp, Probed: 7}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Complete("x", lb.LeaseID, Upload{
		Responsive: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.20")},
		Probed:     32,
	}); err != nil {
		t.Fatal(err)
	}

	// The process dies here. A new coordinator loads the same store.
	c2 := mustCoordinator(t, store, clk.Now)
	st, err := c2.Status("x")
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycle != 0 || st.Done {
		t.Fatalf("restarted status = %+v", st)
	}
	var leased, doneShards int
	for _, sh := range st.Shards {
		switch sh.State {
		case shardLeased:
			leased++
			if sh.LeaseID != la.LeaseID || sh.Worker != "a" || !sh.Resumable {
				t.Fatalf("restarted shard = %+v, want worker-a's live lease with cursor", sh)
			}
		case shardDone:
			doneShards++
		}
	}
	if leased != 1 || doneShards != 1 {
		t.Fatalf("restarted shards = %+v", st.Shards)
	}
	// worker-a never noticed the restart: its renewal lands on c2.
	if _, err := c2.Heartbeat("x", la.LeaseID, Upload{Checkpoint: cp, Probed: 9}); err != nil {
		t.Fatalf("heartbeat across restart: %v", err)
	}
	if err := c2.Complete("x", la.LeaseID, Upload{
		Responsive: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.5")},
		Probed:     32,
	}); err != nil {
		t.Fatalf("complete across restart: %v", err)
	}
	st, _ = c2.Status("x")
	if st.Cycle != 1 {
		t.Fatalf("cycle after restart-complete = %d, want 1", st.Cycle)
	}
	// Lease IDs keep counting up across the restart — no reuse, fencing
	// intact.
	lc, _, _ := c2.Acquire("x", "c")
	if lc == nil || lc.LeaseID == la.LeaseID || lc.LeaseID == lb.LeaseID {
		t.Fatalf("post-restart lease = %+v, reuses an old ID", lc)
	}
}

// TestEmptySelectionFinishesEarly: a cycle that finds nothing selects
// nothing; the campaign ends with a note instead of leasing an empty
// plan forever.
func TestEmptySelectionFinishesEarly(t *testing.T) {
	c := mustCoordinator(t, NewMemStore(), newVClock().Now)
	spec := testSpec("x")
	spec.Shards = 1
	if err := c.CreateCampaign(spec); err != nil {
		t.Fatal(err)
	}
	l, _, _ := c.Acquire("x", "a")
	if err := c.Complete("x", l.LeaseID, Upload{Probed: 64}); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Status("x")
	if !st.Done || st.Note == "" {
		t.Fatalf("empty-result campaign not finished early: %+v", st)
	}
}

// TestCompleteReseedFailureRollsBack: when the last shard of a cycle
// completes but reseeding the next cycle fails (here: every responsive
// host lies outside the universe, so the seeder has nothing to plan
// from), the coordinator must leave the shard exactly as it was — in
// memory AND in the durable store — so the worker's retry is not fenced
// off with ErrLeaseLost and the campaign cannot wedge.
func TestCompleteReseedFailureRollsBack(t *testing.T) {
	clk := newVClock()
	store := NewFileStore(filepath.Join(t.TempDir(), "coord.json"))
	c := mustCoordinator(t, store, clk.Now)
	if err := c.CreateCampaign(testSpec("x")); err != nil {
		t.Fatal(err)
	}
	la, _, err := c.Acquire("x", "wa")
	if err != nil || la == nil {
		t.Fatalf("acquire a: %+v, %v", la, err)
	}
	lb, _, err := c.Acquire("x", "wb")
	if err != nil || lb == nil {
		t.Fatalf("acquire b: %+v, %v", lb, err)
	}
	if err := c.Complete("x", la.LeaseID, Upload{Probed: 32}); err != nil {
		t.Fatalf("complete a: %v", err)
	}

	// Out-of-universe responsive host: cycle finishes, reseed cannot.
	bad := Upload{
		Responsive: []netaddr.Addr{netaddr.MustParseAddr("203.0.113.5")},
		Probed:     32,
	}
	if err := c.Complete("x", lb.LeaseID, bad); err == nil {
		t.Fatal("complete with un-seedable snapshot unexpectedly succeeded")
	}

	check := func(c *Coordinator, label string) {
		st, err := c.Status("x")
		if err != nil {
			t.Fatalf("%s: status: %v", label, err)
		}
		if st.Done || st.Cycle != 0 || len(st.History) != 0 {
			t.Fatalf("%s: cycle advanced despite reseed failure: %+v", label, st)
		}
		var sb *ShardStatus
		for i := range st.Shards {
			if st.Shards[i].Index == lb.Shard {
				sb = &st.Shards[i]
			}
		}
		if sb == nil || sb.State != shardLeased || sb.LeaseID != lb.LeaseID {
			t.Fatalf("%s: shard b not still leased under %s: %+v", label, lb.LeaseID, sb)
		}
	}
	check(c, "in-memory")
	// The durable store must agree: a restarted coordinator sees the
	// same pre-failure state.
	check(mustCoordinator(t, store, clk.Now), "restarted")

	// A corrected retry under the SAME lease succeeds and advances the
	// cycle — the failed attempt did not burn the lease.
	good := Upload{
		Responsive: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.2")},
		Probed:     32,
	}
	if err := c.Complete("x", lb.LeaseID, good); err != nil {
		t.Fatalf("retry complete: %v", err)
	}
	st, err := c.Status("x")
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycle != 1 || len(st.History) != 1 {
		t.Fatalf("retry did not advance cycle: %+v", st)
	}
}
