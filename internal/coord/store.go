package coord

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"github.com/tass-scan/tass/internal/atomicfile"
)

// ErrNoState is returned by Store.Load when nothing has been saved yet —
// a fresh coordinator, not an error.
var ErrNoState = errors.New("coord: no saved state")

// Store persists the coordinator's full state blob. Save must be atomic
// and durable: after it returns, a crashed-and-restarted coordinator
// must Load exactly this blob or a newer one, never a torn mixture.
type Store interface {
	Save(data []byte) error
	Load() ([]byte, error)
}

// MemStore keeps state in memory: the store for tests and for
// coordinators whose campaigns are disposable.
type MemStore struct {
	mu   sync.Mutex
	data []byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save implements Store.
func (m *MemStore) Save(data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = bytes.Clone(data)
	return nil
}

// Load implements Store.
func (m *MemStore) Load() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.data == nil {
		return nil, ErrNoState
	}
	return bytes.Clone(m.data), nil
}

// The file store's on-disk layout is a one-line text header followed by
// the raw payload:
//
//	tass-coord-state v1 len=<n> crc32=<hex>\n<payload>
//
// The header pins the format and version, and len+CRC detect every torn
// or bit-flipped file before a byte of campaign state is trusted. The
// write path is atomicfile (temp + fsync + rename), so the usual crash
// outcome is "old state or new state"; the header catches the unusual
// ones (filesystem truncation, partial sector, manual editing).
const (
	fileStoreMagic   = "tass-coord-state"
	fileStoreVersion = 1
)

// FileStore persists the coordinator state to one file.
type FileStore struct {
	path string
}

// NewFileStore builds a file-backed store at path. The file is created
// on first Save.
func NewFileStore(path string) *FileStore { return &FileStore{path: path} }

// Save implements Store: atomic replace with a checksummed header.
func (f *FileStore) Save(data []byte) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s v%d len=%d crc32=%08x\n",
		fileStoreMagic, fileStoreVersion, len(data), crc32.ChecksumIEEE(data))
	buf.Write(data)
	return atomicfile.WriteFile(f.path, buf.Bytes(), 0o644)
}

// Load implements Store: header and checksum verified, torn or corrupt
// files refused with an error naming the mismatch.
func (f *FileStore) Load() ([]byte, error) {
	raw, err := os.ReadFile(f.path)
	if os.IsNotExist(err) {
		return nil, ErrNoState
	}
	if err != nil {
		return nil, fmt.Errorf("coord: loading state: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("coord: state file %s is empty (torn save?)", f.path)
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("coord: state file %s: truncated header", f.path)
	}
	header, payload := string(raw[:nl]), raw[nl+1:]
	var version int
	var length int
	var sum uint32
	var magic string
	if _, err := fmt.Sscanf(header, "%s v%d len=%d crc32=%08x", &magic, &version, &length, &sum); err != nil {
		return nil, fmt.Errorf("coord: state file %s: malformed header %q", f.path, header)
	}
	if magic != fileStoreMagic {
		return nil, fmt.Errorf("coord: state file %s: magic %q is not %q", f.path, magic, fileStoreMagic)
	}
	if version > fileStoreVersion {
		return nil, fmt.Errorf("coord: state file %s: version %d is newer than this binary's %d", f.path, version, fileStoreVersion)
	}
	if len(payload) != length {
		return nil, fmt.Errorf("coord: state file %s: %d payload bytes, header says %d — file is torn, refusing to load", f.path, len(payload), length)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("coord: state file %s: checksum %08x, header says %08x — file is corrupt, refusing to load", f.path, got, sum)
	}
	return payload, nil
}
