package faultfs_test

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/coord"
	"github.com/tass-scan/tass/internal/faultfs"
	"github.com/tass-scan/tass/internal/netaddr"
)

// handSet builds a lazy set whose payload this test owns byte for byte:
// nblocks blocks of 4 addresses each, every delta 1, so block bi holds
// {1000bi+10 .. 1000bi+13} and its payload is the three bytes {1,1,1}
// at offset 3bi. Damage to any payload byte is caught by the decode's
// cross-check against the trusted index (the block no longer ends on
// its indexed max) — no checksums needed at this layer.
func handSet(t *testing.T, nblocks int, src func(payload []byte) addrset.BlockSource, cacheCap int) (*addrset.Set, []netaddr.Addr) {
	t.Helper()
	var (
		mins, maxs []netaddr.Addr
		counts     []int
		blens      []int
		payload    []byte
		all        []netaddr.Addr
	)
	for bi := 0; bi < nblocks; bi++ {
		min := netaddr.Addr(1000*bi + 10)
		mins = append(mins, min)
		maxs = append(maxs, min+3)
		counts = append(counts, 4)
		blens = append(blens, 3)
		payload = append(payload, 1, 1, 1)
		all = append(all, min, min+1, min+2, min+3)
	}
	set, err := addrset.FromIndex(mins, maxs, counts, blens, 4, src(payload), cacheCap)
	if err != nil {
		t.Fatalf("FromIndex: %v", err)
	}
	return set, all
}

func TestCorruptSourceDegrade(t *testing.T) {
	// Bit 6 of block 2's middle payload byte: delta 1 becomes 65, so the
	// block decodes ascending but misses its indexed max.
	set, all := handSet(t, 6, func(p []byte) addrset.BlockSource {
		return &faultfs.CorruptSource{Src: addrset.Bytes(p), Off: 3*2 + 1, Bit: 6}
	}, 4)
	set.SetFaultPolicy(addrset.Degrade)

	got := set.AppendTo(nil)
	want := slices.DeleteFunc(slices.Clone(all), func(a netaddr.Addr) bool {
		return a >= 2010 && a <= 2013 // block 2
	})
	if !slices.Equal(got, want) {
		t.Fatalf("degraded AppendTo = %v want %v", got, want)
	}
	if err := set.ReadErr(); err != nil {
		t.Fatalf("ReadErr under Degrade: %v", err)
	}
	faults := set.Faults()
	if len(faults) != 1 || faults[0].Block != 2 {
		t.Fatalf("Faults = %+v, want one fault on block 2", faults)
	}
	// A range covering the damaged block entirely counts it from the
	// trusted index — interior blocks never decode, so the count stays
	// exact even over damage.
	if got := set.CountRange(0, 1<<31); got != len(all) {
		t.Fatalf("interior-spanning CountRange = %d want %d", got, len(all))
	}
	// A range whose boundary lands inside the damaged block must decode
	// it, and degrades to counting it as empty.
	if got := set.CountRange(2011, 2012); got != 0 {
		t.Fatalf("boundary CountRange over damaged block = %d want 0", got)
	}
	// Repeated passes do not duplicate the fault record.
	if n := len(set.Faults()); n != 1 {
		t.Fatalf("fault recorded %d times, want 1 (deduplicated)", n)
	}
}

func TestCorruptSourceFailFast(t *testing.T) {
	set, all := handSet(t, 6, func(p []byte) addrset.BlockSource {
		return &faultfs.CorruptSource{Src: addrset.Bytes(p), Off: 3*2 + 1, Bit: 6}
	}, 4)

	// The range boundary lands inside block 2, forcing its decode.
	_, err := set.CountRangeErr(2011, all[len(all)-1])
	if err == nil {
		t.Fatal("FailFast count over damaged block succeeded")
	}
	var be *addrset.BlockError
	if !errors.As(err, &be) {
		t.Fatalf("fault is %T, want *addrset.BlockError: %v", err, err)
	}
	if be.Block != 2 {
		t.Fatalf("fault on block %d, want 2", be.Block)
	}
	if set.ReadErr() == nil {
		t.Fatal("ReadErr nil under FailFast after a fault")
	}
	// Ranges that never touch the damaged block still count exactly.
	if got, err := set.CountRangeErr(10, 1013); err != nil || got != 8 {
		t.Fatalf("CountRangeErr over intact blocks = %d, %v", got, err)
	}
}

// TestFlakySourceTransientFaultNotCached is the healing property: a read
// that fails once must not poison the block cache — the next read goes
// back to the source and succeeds.
func TestFlakySourceTransientFaultNotCached(t *testing.T) {
	flaky := &faultfs.FlakySource{Faults: map[int]error{1: io.ErrUnexpectedEOF}}
	set, all := handSet(t, 3, func(p []byte) addrset.BlockSource {
		flaky.Src = addrset.Bytes(p)
		return flaky
	}, 4)

	if _, err := set.CountRangeErr(all[0], all[3]); err == nil {
		t.Fatal("scripted transient fault not surfaced")
	}
	got, err := set.CountRangeErr(all[0], all[3])
	if err != nil {
		t.Fatalf("read after transient fault still failing: %v", err)
	}
	if got != 4 {
		t.Fatalf("healed CountRangeErr = %d want 4", got)
	}
	if flaky.Calls() != 2 {
		t.Fatalf("%d source reads, want 2 (failure evicted, not cached)", flaky.Calls())
	}
	// The transient fault stays on the ledger for post-pass inspection.
	if len(set.Faults()) != 1 {
		t.Fatalf("Faults = %+v, want the one transient fault", set.Faults())
	}
}

func TestStoreScriptedFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state")
	inner := coord.NewFileStore(path)
	st := &faultfs.Store{
		Inner:      inner,
		SaveFaults: map[int]error{3: io.ErrClosedPipe},
		LoadFaults: map[int]error{2: io.ErrUnexpectedEOF},
		TornSaves:  map[int]int{2: 10},
	}
	blob, err := json.Marshal(map[string]any{"cycle": 3, "shards": []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}

	// Call 1: clean round trip.
	if err := st.Save(blob); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load()
	if err != nil || !slices.Equal(got, blob) {
		t.Fatalf("clean round trip: %q, %v", got, err)
	}

	// Call 2: torn save persists a 10-byte prefix but reports success —
	// the blob is no longer valid JSON even though the store loads it.
	if err := st.Save(blob); err != nil {
		t.Fatalf("torn save must report success: %v", err)
	}
	if _, err := st.Load(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("scripted load fault not surfaced: %v", err)
	}
	torn, err := inner.Load()
	if err != nil {
		t.Fatalf("inner load after torn save: %v", err)
	}
	if len(torn) != 10 {
		t.Fatalf("torn save persisted %d bytes, want 10", len(torn))
	}
	if json.Valid(torn) {
		t.Fatal("torn blob still parses — fault did nothing")
	}

	// Call 3: scripted save fault, inner store untouched.
	if err := st.Save(blob); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("scripted save fault not surfaced: %v", err)
	}
	if again, err := inner.Load(); err != nil || len(again) != 10 {
		t.Fatalf("failed save reached the inner store: %d bytes, %v", len(again), err)
	}
	if st.Saves() != 3 || st.Loads() != 2 {
		t.Fatalf("Saves/Loads = %d/%d, want 3/2", st.Saves(), st.Loads())
	}
}

func TestFlipBitSelfInverse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	orig := []byte("hello, world")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := faultfs.FlipBit(path, 8*3+7); err != nil {
		t.Fatal(err)
	}
	flipped, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if flipped[3] != orig[3]^0x80 || slices.Equal(flipped, orig) {
		t.Fatalf("flip produced %q", flipped)
	}
	if err := faultfs.FlipBit(path, 8*3+7); err != nil {
		t.Fatal(err)
	}
	back, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(back, orig) {
		t.Fatalf("double flip is not identity: %q", back)
	}
	if err := faultfs.FlipBit(path, 8*int64(len(orig))); err == nil {
		t.Fatal("flip past EOF succeeded")
	}
}

func TestSweepBitsDeterministic(t *testing.T) {
	// Small files sweep exhaustively.
	small := faultfs.SweepBits(4, 100, 1)
	if len(small) != 32 {
		t.Fatalf("exhaustive sweep of 4 bytes has %d offsets, want 32", len(small))
	}
	for i, b := range small {
		if b != int64(i) {
			t.Fatalf("exhaustive sweep offset %d = %d", i, b)
		}
	}
	// Large files sample: seeded, unique, in range, reproducible.
	a := faultfs.SweepBits(1_000_000, 64, 7)
	b := faultfs.SweepBits(1_000_000, 64, 7)
	if !slices.Equal(a, b) {
		t.Fatal("same seed produced different sweeps")
	}
	if len(a) != 64 {
		t.Fatalf("sampled sweep has %d offsets, want 64", len(a))
	}
	seen := map[int64]bool{}
	for _, bit := range a {
		if bit < 0 || bit >= 8_000_000 {
			t.Fatalf("offset %d outside the file", bit)
		}
		if seen[bit] {
			t.Fatalf("offset %d drawn twice", bit)
		}
		seen[bit] = true
	}
	if c := faultfs.SweepBits(1_000_000, 64, 8); slices.Equal(a, c) {
		t.Fatal("different seeds produced identical sweeps")
	}
}
