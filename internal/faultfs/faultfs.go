// Package faultfs is the deterministic I/O fault-injection harness
// behind the storage-integrity tests: scripted wrappers for the three
// seams where the scanner touches disk — addrset.BlockSource (lazy
// census payload reads), io.ReaderAt (the mmapfile pread fallback) and
// coord.Store (coordinator state) — plus in-place file mutators (bit
// flips, truncation) and a seeded bit-offset sweep for chaos suites.
//
// Every fault is scripted by call index or byte offset, never drawn
// from an unseeded source, so a failing chaos case replays exactly: the
// suite name plus the seed pins down the whole fault sequence.
package faultfs

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"

	"github.com/tass-scan/tass/internal/addrset"
)

// StateStore is the coordinator persistence seam (structurally identical
// to coord.Store, declared here so this package sits below the whole
// stack — mmapfile's own tests import it, and importing coord would close
// an import cycle through census).
type StateStore interface {
	Save(data []byte) error
	Load() ([]byte, error)
}

// ReadFault scripts one faulty ReadAt call: the error to return and,
// when Short is positive, how many bytes to deliver before failing
// (a short read with progress — the shape a signal-interrupted pread
// or a mid-truncation race produces).
type ReadFault struct {
	Err   error
	Short int
}

// FlakyReaderAt wraps an io.ReaderAt with per-call scripted faults,
// keyed by 1-based ReadAt call number. Calls without a scripted fault
// pass through. It is how the mmapfile pread fallback's retry path is
// exercised without a real flaky disk.
type FlakyReaderAt struct {
	R io.ReaderAt
	// Faults maps the 1-based ReadAt call number to its fault.
	Faults map[int]ReadFault

	mu    sync.Mutex
	calls int
}

// Calls returns how many ReadAt calls the wrapper has seen.
func (f *FlakyReaderAt) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// ReadAt implements io.ReaderAt.
func (f *FlakyReaderAt) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	f.calls++
	fault, ok := f.Faults[f.calls]
	f.mu.Unlock()
	if !ok {
		return f.R.ReadAt(p, off)
	}
	if fault.Short > 0 {
		n := fault.Short
		if n > len(p) {
			n = len(p)
		}
		read, err := f.R.ReadAt(p[:n], off)
		if err != nil {
			return read, err
		}
		return read, fault.Err
	}
	return 0, fault.Err
}

// FlakySource wraps an addrset.BlockSource with per-call scripted
// errors, keyed by 1-based Bytes call number. Calls without a scripted
// fault pass through. Transient faults (an entry that fails once) test
// that the lazy block cache never caches a failure.
type FlakySource struct {
	Src addrset.BlockSource
	// Faults maps the 1-based Bytes call number to its error.
	Faults map[int]error

	mu    sync.Mutex
	calls int
}

// Calls returns how many Bytes calls the wrapper has seen.
func (s *FlakySource) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// Bytes implements addrset.BlockSource.
func (s *FlakySource) Bytes(off, n int) ([]byte, error) {
	s.mu.Lock()
	s.calls++
	err, ok := s.Faults[s.calls]
	s.mu.Unlock()
	if ok {
		return nil, err
	}
	return s.Src.Bytes(off, n)
}

// Size implements addrset.BlockSource.
func (s *FlakySource) Size() int { return s.Src.Size() }

// CorruptSource serves its inner source's bytes with persistent,
// deterministic damage: every read whose extent covers payload offset
// Off sees bit Bit of that byte flipped. The damaged copy is fresh on
// every read — the inner source's storage is never mutated — so the
// corruption behaves like a rotted disk sector: stable across reads,
// invisible to extents that do not cover it.
type CorruptSource struct {
	Src addrset.BlockSource
	Off int   // payload offset of the damaged byte
	Bit uint8 // 0-7: which bit of the byte is flipped
}

// Bytes implements addrset.BlockSource.
func (s *CorruptSource) Bytes(off, n int) ([]byte, error) {
	b, err := s.Src.Bytes(off, n)
	if err != nil {
		return nil, err
	}
	if s.Off < off || s.Off >= off+n {
		return b, nil
	}
	damaged := make([]byte, len(b))
	copy(damaged, b)
	damaged[s.Off-off] ^= 1 << (s.Bit & 7)
	return damaged, nil
}

// Size implements addrset.BlockSource.
func (s *CorruptSource) Size() int { return s.Src.Size() }

// Store wraps a coordinator state store with scripted faults, keyed by 1-based
// Save/Load call numbers. A TornSaves entry simulates the aftermath of
// a torn rename: the inner store persists only the first k bytes of
// the blob and the Save still reports success — the failure mode an
// fsynced-but-buggy filesystem hands a crashed coordinator.
type Store struct {
	Inner StateStore
	// SaveFaults and LoadFaults map 1-based call numbers to the error
	// that call returns (the inner store is not touched).
	SaveFaults map[int]error
	LoadFaults map[int]error
	// TornSaves maps 1-based Save call numbers to the byte count
	// actually persisted; the call itself reports success.
	TornSaves map[int]int

	mu           sync.Mutex
	saves, loads int
}

// Saves returns how many Save calls the wrapper has seen.
func (s *Store) Saves() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saves
}

// Loads returns how many Load calls the wrapper has seen.
func (s *Store) Loads() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loads
}

// Save implements coord.Store.
func (s *Store) Save(data []byte) error {
	s.mu.Lock()
	s.saves++
	call := s.saves
	s.mu.Unlock()
	if err, ok := s.SaveFaults[call]; ok {
		return err
	}
	if k, ok := s.TornSaves[call]; ok {
		if k > len(data) {
			k = len(data)
		}
		return s.Inner.Save(data[:k])
	}
	return s.Inner.Save(data)
}

// Load implements coord.Store.
func (s *Store) Load() ([]byte, error) {
	s.mu.Lock()
	s.loads++
	call := s.loads
	s.mu.Unlock()
	if err, ok := s.LoadFaults[call]; ok {
		return nil, err
	}
	return s.Inner.Load()
}

// FlipBit flips one bit of the file at path in place: bit is the
// absolute bit offset (byte bit/8, bit bit%8, LSB first). Flipping the
// same bit twice restores the file — the property the corruption
// sweeps use to reuse one file across thousands of cases.
func FlipBit(path string, bit int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], bit/8); err != nil {
		return fmt.Errorf("faultfs: flip bit %d: %w", bit, err)
	}
	b[0] ^= 1 << uint(bit%8)
	if _, err := f.WriteAt(b[:], bit/8); err != nil {
		return fmt.Errorf("faultfs: flip bit %d: %w", bit, err)
	}
	return nil
}

// Truncate shortens the file at path to n bytes.
func Truncate(path string, n int64) error {
	return os.Truncate(path, n)
}

// SweepBits returns the deterministic bit offsets a corruption sweep
// over an nbytes-long file should flip: every bit when the file holds
// at most max of them, otherwise max offsets drawn without repetition
// from a PRNG seeded with seed — so a failing case is replayed by its
// (seed, index) alone, and small fixtures still get exhaustive
// coverage.
func SweepBits(nbytes int64, max int, seed int64) []int64 {
	total := nbytes * 8
	if total <= int64(max) {
		out := make([]int64, total)
		for i := range out {
			out[i] = int64(i)
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int64]bool, max)
	out := make([]int64, 0, max)
	for len(out) < max {
		bit := rng.Int63n(total)
		if seen[bit] {
			continue
		}
		seen[bit] = true
		out = append(out, bit)
	}
	return out
}
