package faultfs_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/coord"
	"github.com/tass-scan/tass/internal/core"
	"github.com/tass-scan/tass/internal/faultfs"
	"github.com/tass-scan/tass/internal/fsck"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
	"github.com/tass-scan/tass/internal/scan"
)

// The chaos suite: every test sweeps deterministic single-bit flips over
// a valid on-disk artifact and asserts the stack's corruption contract —
// no code path panics, damage surfaces as a typed error or a degraded
// (and reported) result, and `tass fsck -repair` always converges to a
// verifiable file or a whole-file quarantine. A failing case is pinned
// by its bit offset alone.

func chaosSnapshot(t *testing.T, hosts int) *census.Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(1701))
	addrs := make([]netaddr.Addr, 0, hosts)
	v := uint32(10 << 24)
	for len(addrs) < hosts {
		v += 1 + uint32(rng.Intn(300))
		addrs = append(addrs, netaddr.Addr(v))
	}
	return census.NewSnapshot("https", 7, addrs)
}

// noPanic runs f, converting a panic into a test failure naming the case.
func noPanic(t *testing.T, label string, f func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: panic: %v", label, r)
		}
	}()
	f()
}

func TestChaosSnapshotBitSweep(t *testing.T) {
	snap := chaosSnapshot(t, 2500)
	dir := t.TempDir()
	path := filepath.Join(dir, "census.snap")
	if err := census.WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, bit := range faultfs.SweepBits(int64(len(raw)), 256, 1) {
		label := fmt.Sprintf("bit %d", bit)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultfs.FlipBit(path, bit); err != nil {
			t.Fatal(err)
		}
		noPanic(t, label, func() {
			// Reading the damaged file never panics: open either refuses
			// (typed error) or degrades around the damage and reports it.
			if s, err := census.OpenSnapshotFile(path); err == nil {
				s.SetFaultPolicy(addrset.Degrade)
				got := s.Set().AppendTo(nil)
				if len(got) > snap.Hosts() {
					t.Fatalf("%s: degraded read invented %d addresses", label, len(got)-snap.Hosts())
				}
				if len(got) < snap.Hosts() && len(s.StorageFaults()) == 0 {
					t.Fatalf("%s: %d addresses lost without a recorded fault", label, snap.Hosts()-len(got))
				}
				s.Close()
			}

			// fsck -repair converges: afterwards the path either verifies
			// end to end or was quarantined whole.
			res, err := fsck.Repair(path)
			if err != nil {
				t.Fatalf("%s: fsck repair: %v", label, err)
			}
			if _, err := os.Stat(path); err == nil {
				if verr := census.VerifySnapshotFile(path); verr != nil {
					t.Fatalf("%s: post-repair file fails verify: %v (fsck said %+v)", label, verr, res)
				}
			} else if res.QuarantinePath == "" {
				t.Fatalf("%s: file gone without a quarantine path", label)
			}
		})
		// Clear quarantine sidecars so the next case starts clean.
		os.Remove(path + ".quarantine")
	}
}

func TestChaosCheckpointBitSweep(t *testing.T) {
	defer func(f func(string)) { scan.LegacyCheckpointWarn = f }(scan.LegacyCheckpointWarn)
	scan.LegacyCheckpointWarn = func(string) {}

	cp := &scan.Checkpoint{
		N: 100000, Seed: 99, Shard: 1, Shards: 4, Workers: 2,
		Consumed: []uint64{1234, 5678},
		ASProbed: map[uint32]uint64{64500: 42},
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "scan.checkpoint")
	if err := scan.WriteCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, bit := range faultfs.SweepBits(int64(len(raw)), 2048, 2) {
		label := fmt.Sprintf("bit %d", bit)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultfs.FlipBit(path, bit); err != nil {
			t.Fatal(err)
		}
		noPanic(t, label, func() {
			// A flipped cursor file must never load as a different cursor:
			// either the checksum (or parse) refuses it, or — for flips
			// the format provably cannot hide — the load fails.
			if got, err := scan.ReadCheckpointFile(path); err == nil {
				if got.N != cp.N || got.Seed != cp.Seed || got.Shard != cp.Shard ||
					got.Workers != cp.Workers || len(got.Consumed) != len(cp.Consumed) {
					t.Fatalf("%s: corrupted checkpoint loaded as a different cursor: %+v", label, got)
				}
			}
			if _, err := fsck.Repair(path); err != nil {
				t.Fatalf("%s: fsck repair: %v", label, err)
			}
			// Post-repair the path is either loadable or quarantined whole.
			if _, err := os.Stat(path); err == nil {
				if _, lerr := scan.ReadCheckpointFile(path); lerr != nil {
					t.Fatalf("%s: post-repair checkpoint unreadable: %v", label, lerr)
				}
			} else if _, qerr := os.Stat(path + ".quarantine"); qerr != nil {
				t.Fatalf("%s: file gone without quarantine", label)
			}
		})
		os.Remove(path + ".quarantine")
	}
}

func TestChaosCoordStateBitSweep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "coord.state")
	payload := []byte(`{"campaign":"chaos","cycle":3,"shards":[0,1,2,3]}`)
	if err := coord.NewFileStore(path).Save(payload); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, bit := range faultfs.SweepBits(int64(len(raw)), 2048, 3) {
		label := fmt.Sprintf("bit %d", bit)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultfs.FlipBit(path, bit); err != nil {
			t.Fatal(err)
		}
		noPanic(t, label, func() {
			// The checksummed header must refuse every flip that changes
			// the payload; header flips fail their own parse.
			if got, err := coord.NewFileStore(path).Load(); err == nil {
				if string(got) != string(payload) {
					t.Fatalf("%s: corrupted state loaded as different payload: %q", label, got)
				}
			}
			if _, err := fsck.Repair(path); err != nil {
				t.Fatalf("%s: fsck repair: %v", label, err)
			}
			if _, err := os.Stat(path); err == nil {
				if _, lerr := coord.NewFileStore(path).Load(); lerr != nil {
					t.Fatalf("%s: post-repair state unreadable: %v", label, lerr)
				}
			} else if _, qerr := os.Stat(path + ".quarantine"); qerr != nil {
				t.Fatalf("%s: file gone without quarantine", label)
			}
		})
		os.Remove(path + ".quarantine")
	}
}

// findBlockZeroFlip scans candidate bit offsets of the snapshot file at
// path for one whose flip lands in block 0's payload: the index still
// parses (open succeeds) and the deep check blames block 0. The file is
// restored before returning; the search is deterministic for fixed file
// bytes.
func findBlockZeroFlip(t *testing.T, path string) int64 {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}()
	for off := int64(9); off < int64(len(raw)); off += 7 {
		bit := off * 8
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultfs.FlipBit(path, bit); err != nil {
			t.Fatal(err)
		}
		s, err := census.OpenSnapshotFile(path)
		if err != nil {
			continue
		}
		cerr := s.Set().CheckBlocks()
		s.Close()
		var be *addrset.BlockError
		if errors.As(cerr, &be) && be.Block == 0 {
			return bit
		}
	}
	t.Fatal("no candidate flip lands in block 0's payload")
	return 0
}

// TestSelectionOverDamagedSnapshot drives the top of the stack: target
// selection over a lazily-read snapshot with a damaged payload block
// fails loudly under FailFast and completes (reporting the skipped
// block) under Degrade.
func TestSelectionOverDamagedSnapshot(t *testing.T) {
	snap := chaosSnapshot(t, 4000)
	dir := t.TempDir()
	path := filepath.Join(dir, "census.snap")
	if err := census.WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside block 0's payload: the index stays trusted, the
	// block fails its checksum — and the /20 grid below guarantees a
	// counting boundary lands inside it, forcing the decode.
	if err := faultfs.FlipBit(path, findBlockZeroFlip(t, path)); err != nil {
		t.Fatal(err)
	}

	// A /20 grid over the populated span: prefix boundaries land inside
	// payload blocks, so counting decodes them instead of trusting the
	// directory.
	last := snap.Addrs[len(snap.Addrs)-1]
	var pfx []netaddr.Prefix
	for base := uint32(10 << 24); netaddr.Addr(base) <= last; base += 1 << 12 {
		pfx = append(pfx, netaddr.MustPrefixFrom(netaddr.Addr(base), 20))
	}
	part, err := rib.NewPartition(pfx)
	if err != nil {
		t.Fatal(err)
	}

	failfast, err := census.OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer failfast.Close()
	if _, err := core.SelectCached(failfast, part, core.Options{Phi: 1}, 2, census.NewCountCache()); err == nil {
		t.Fatal("selection over damaged snapshot succeeded under FailFast")
	}

	degraded, err := census.OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer degraded.Close()
	degraded.SetFaultPolicy(addrset.Degrade)
	sel, err := core.SelectCached(degraded, part, core.Options{Phi: 1}, 2, census.NewCountCache())
	if err != nil {
		t.Fatalf("degraded selection failed: %v", err)
	}
	if sel == nil || len(sel.Prefixes()) == 0 {
		t.Fatal("degraded selection selected nothing")
	}
	if len(degraded.StorageFaults()) == 0 {
		t.Fatal("degraded selection reported no storage faults")
	}
}
