// Package atomicfile writes files so that a crash at any instant leaves
// either the old contents or the new contents on disk, never a torn
// mixture and never nothing. It is the persistence primitive under every
// piece of durable scanner state: scan-cycle cursor files and the
// coordinator's campaign store.
//
// The sequence is the classic one: write the full payload to a temporary
// file in the destination directory, fsync the file, rename it over the
// destination, and fsync the directory so the rename itself is durable.
// Rename within one directory is atomic on POSIX filesystems, so readers
// (and crash recovery) only ever observe a complete file.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// testHookAfterWrite, when non-nil, runs after the temporary file is
// written and synced but before the rename — the crash window fault
// injection targets. Returning an error aborts the save (the temporary
// file is removed, the destination untouched).
var testHookAfterWrite func() error

// WriteFile atomically replaces path with data. On any error the
// previous contents of path are intact.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure from here on must not leave the temp file behind.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: %w", err)
	}
	if testHookAfterWrite != nil {
		if err := testHookAfterWrite(); err != nil {
			os.Remove(tmpName)
			return fmt.Errorf("atomicfile: %w", err)
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: %w", err)
	}
	return syncDir(dir)
}

// syncDir makes a completed rename durable. Some filesystems do not
// support fsync on directories; those errors are ignored — the rename is
// still atomic, only its durability window widens.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
