package atomicfile

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("read %q, want %q", got, "v2")
	}
}

// TestWriteFileInjectedFailureKeepsOriginal injects a failure in the
// crash window between temp-file write and rename: the destination must
// keep its previous contents and no temp litter may remain.
func TestWriteFileInjectedFailureKeepsOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cursor.json")
	if err := WriteFile(path, []byte("the only copy"), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("injected crash before rename")
	testHookAfterWrite = func() error { return boom }
	defer func() { testHookAfterWrite = nil }()

	err := WriteFile(path, []byte("half-written replacement"), 0o644)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("WriteFile error = %v, want injected failure", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("original destroyed: %v", rerr)
	}
	if string(got) != "the only copy" {
		t.Fatalf("original clobbered: %q", got)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

// TestWriteFileMissingDir fails cleanly without touching anything when
// the destination directory does not exist.
func TestWriteFileMissingDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "f")
	if err := WriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("WriteFile into missing directory succeeded")
	}
}
