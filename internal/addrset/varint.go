package addrset

import (
	"encoding/binary"
	"math/bits"

	"github.com/tass-scan/tass/internal/netaddr"
)

// Batch LEB128 decoding: the hot leaf of every lazy block fault.
//
// The scalar boundary decoder (binary.Uvarint in a loop) pays an
// unpredictable continuation-bit branch per byte plus shift bookkeeping
// per value. The batch kernel instead works on 8-byte windows: a window
// with no continuation bits at all is eight complete 1-byte values from
// a single load (the census-dominant case — dense blocks are almost all
// 1-byte deltas); otherwise the value's byte length comes from one
// trailing-zeros instruction on the inverted continuation-bit mask and
// its payload bits from a fixed three-step fold, with no per-byte loop.
// Either way the loads stay in one or two cache lines per block.

const contBits = 0x8080808080808080

// foldVarint compacts the 7-bit payload groups of a ≤8-byte LEB128
// value already masked to its length: three shift-mask-or steps merge
// adjacent groups pairwise (8→14, 14→28, 28→56 bits), branch-free.
func foldVarint(w uint64) uint64 {
	w &= 0x7f7f7f7f7f7f7f7f
	w = (w & 0x007f007f007f007f) | (w>>1)&0x3f803f803f803f80
	w = (w & 0x00003fff00003fff) | (w>>2)&0x0fffc0000fffc000
	return (w & 0x000000000fffffff) | (w>>4)&0x00fffffff0000000
}

// DecodeUvarints decodes exactly len(dst) LEB128 uvarints from src into
// dst and returns the number of bytes consumed, or -1 when src
// truncates before len(dst) values decode or a value overflows 64 bits.
// The bytes and values are identical to binary.Uvarint applied in a
// loop (differentially tested); only the decode strategy differs.
func DecodeUvarints(dst []uint64, src []byte) int {
	pos := 0
	i := 0
	// Window path: while a full 8-byte load fits, decode without a
	// per-byte loop. Values of 9–10 bytes (≥ 2^56, never produced by
	// census-shaped deltas) fall back to the scalar decoder.
	for i < len(dst) && pos+8 <= len(src) {
		w := binary.LittleEndian.Uint64(src[pos:])
		if w&contBits == 0 && i+8 <= len(dst) {
			// No continuation bit anywhere in the window: eight 1-byte
			// values from a single load — the dense-block fast path
			// (census deltas are 1 byte in the common case).
			dst[i+0] = w & 0x7f
			dst[i+1] = w >> 8 & 0x7f
			dst[i+2] = w >> 16 & 0x7f
			dst[i+3] = w >> 24 & 0x7f
			dst[i+4] = w >> 32 & 0x7f
			dst[i+5] = w >> 40 & 0x7f
			dst[i+6] = w >> 48 & 0x7f
			dst[i+7] = w >> 56
			i += 8
			pos += 8
			continue
		}
		if w&0x80 == 0 {
			dst[i] = w & 0x7f
			i++
			pos++
			continue
		}
		nc := ^w & contBits
		if nc == 0 {
			v, n := binary.Uvarint(src[pos:])
			if n <= 0 {
				return -1
			}
			dst[i] = v
			i++
			pos += n
			continue
		}
		// t isolates the value's terminator byte's continuation-bit
		// position; t|(t-1) is then the all-ones mask over exactly the
		// value's bytes.
		t := nc & -nc
		dst[i] = foldVarint(w & (t | (t - 1)))
		i++
		pos += bits.TrailingZeros64(nc)>>3 + 1
	}
	// Tail: fewer than 8 bytes remain; scalar per value.
	for i < len(dst) {
		v, n := binary.Uvarint(src[pos:])
		if n <= 0 {
			return -1
		}
		dst[i] = v
		i++
		pos += n
	}
	return pos
}

// decodeUvarintsScalar is the reference per-byte decoder DecodeUvarints
// is differentially tested against (and benchmarked as the baseline).
// Same contract.
func decodeUvarintsScalar(dst []uint64, src []byte) int {
	pos := 0
	for i := range dst {
		v, n := binary.Uvarint(src[pos:])
		if n <= 0 {
			return -1
		}
		dst[i] = v
		pos += n
	}
	return pos
}

// accumChunk is the per-call stack budget of appendAccum: deltas are
// decoded in chunks of this many values so the uint64 scratch stays on
// the stack regardless of block size.
const accumChunk = 128

// appendAccum decodes k uvarint deltas from stream through the batch
// kernel, accumulating them onto lo and appending each running sum to
// buf as a low-half value. It is the narrow-family (≤64-bit) block
// decode path; ok is false when the stream is truncated or malformed.
func appendAccum[A netaddr.Key[A]](buf []A, stream []byte, k int, lo uint64) ([]A, bool) {
	var z A
	var scratch [accumChunk]uint64
	pos := 0
	for k > 0 {
		c := k
		if c > accumChunk {
			c = accumChunk
		}
		n := DecodeUvarints(scratch[:c], stream[pos:])
		if n < 0 {
			return buf, false
		}
		pos += n
		for _, d := range scratch[:c] {
			lo += d
			buf = append(buf, z.FromHalves(0, lo))
		}
		k -= c
	}
	return buf, true
}
