// Package addrset provides an immutable, block-indexed sorted IPv4
// address set: the counting core every TASS operation reduces to.
//
// Addresses are delta-encoded (uvarint) into fixed-population blocks; a
// per-block skip index of [min, max, cumulativeCount] triples makes
// range counting O(log B + blocksize) instead of the O(N) touch-every-
// address merge walk, and lets set intersection gallop past runs that
// cannot match. The layout is the same delta stream the census binary
// codec uses on the wire, so snapshot loading can decode straight into
// blocks without materializing an intermediate address slice.
//
// A Set is immutable after construction and safe for concurrent use.
package addrset

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/tass-scan/tass/internal/netaddr"
)

// DefaultBlockSize is the per-block address population used when a
// Builder or FromSorted is given a zero block size. Range counting
// decodes at most the two boundary blocks per range, so a smaller
// block cheapens every count; 64 keeps the boundary work near one
// cache line of varint bytes while the skip index stays under half a
// byte per address.
//
// It may be tuned (e.g. by a CLI flag) before any sets are built; it
// must not be changed concurrently with set construction.
var DefaultBlockSize = 64

// Set is an immutable block-indexed sorted set of IPv4 addresses.
// The zero value is an empty set.
type Set struct {
	n     int // total addresses
	bsize int // addresses per block (last block may hold fewer)

	// Skip index, one entry per block.
	mins []netaddr.Addr // first address of block i
	maxs []netaddr.Addr // last address of block i
	offs []int          // byte offset of block i's delta stream in data
	cum  []int          // addresses before block i; len = blocks+1, cum[blocks] = n

	// data holds, per block, count(i)-1 uvarint deltas: the block's
	// first address lives in mins[i], each delta adds to the previous
	// address. Deltas may be 0 — duplicates are kept (multiset
	// semantics, matching the merge walk) — so blocks are ascending
	// but not necessarily strictly.
	data []byte

	// mods is the copy-on-write delta overlay: per-block delta streams
	// that override the contiguous data payload. A set freshly built by
	// a Builder has no overlay; ApplyDelta produces sets whose touched
	// blocks live here while untouched blocks keep sharing the parent's
	// data. Compact flattens the overlay back into one contiguous
	// payload (see delta.go for the policy).
	mods map[int][]byte
}

// blockStream returns block bi's delta stream: the overlay slice when
// the block has been rewritten by ApplyDelta, the shared contiguous
// payload otherwise. The stream holds blockLen(bi)-1 uvarint deltas
// (possibly followed by other blocks' bytes — decoders count, they do
// not measure).
func (s *Set) blockStream(bi int) []byte {
	if s.mods != nil {
		if b, ok := s.mods[bi]; ok {
			return b
		}
	}
	return s.data[s.offs[bi]:]
}

// FromSorted builds a Set from an ascending address slice. Duplicates
// are kept: the set mirrors the multiset counting semantics of the
// merge walk, so counts agree on any sorted input (census snapshots are
// duplicate-free anyway). blockSize 0 means DefaultBlockSize. It panics
// on unsorted input; use a Builder when the input needs validation.
func FromSorted(addrs []netaddr.Addr, blockSize int) *Set {
	b := NewBuilder(blockSize, len(addrs))
	for _, a := range addrs {
		if err := b.Append(a); err != nil {
			panic(fmt.Sprintf("addrset: FromSorted: %v", err))
		}
	}
	return b.Finish()
}

// Len returns the number of addresses in the set.
func (s *Set) Len() int { return s.n }

// BlockSize returns the per-block address population.
func (s *Set) BlockSize() int { return s.bsize }

// Blocks returns the number of index blocks.
func (s *Set) Blocks() int { return len(s.mins) }

// Bytes returns the memory footprint of the compressed payload (the
// delta stream plus any copy-on-write overlay, excluding the skip
// index). For a set produced by ApplyDelta the contiguous payload is
// shared with its parent, so summing Bytes across a delta chain counts
// the shared bytes repeatedly.
func (s *Set) Bytes() int {
	n := len(s.data)
	for _, stream := range s.mods {
		n += len(stream)
	}
	return n
}

// Min returns the smallest address; ok is false for an empty set.
func (s *Set) Min() (netaddr.Addr, bool) {
	if s.n == 0 {
		return 0, false
	}
	return s.mins[0], true
}

// Max returns the largest address; ok is false for an empty set.
func (s *Set) Max() (netaddr.Addr, bool) {
	if s.n == 0 {
		return 0, false
	}
	return s.maxs[len(s.maxs)-1], true
}

// blockLen returns the number of addresses in block bi.
func (s *Set) blockLen(bi int) int { return s.cum[bi+1] - s.cum[bi] }

// decodeBlock appends the addresses of block bi to buf and returns it.
// buf is reused across calls when cap allows.
func (s *Set) decodeBlock(bi int, buf []netaddr.Addr) []netaddr.Addr {
	buf = buf[:0]
	v := s.mins[bi]
	buf = append(buf, v)
	stream := s.blockStream(bi)
	pos := 0
	for k := 1; k < s.blockLen(bi); k++ {
		d, n := binary.Uvarint(stream[pos:])
		pos += n
		v += netaddr.Addr(d)
		buf = append(buf, v)
	}
	return buf
}

// Walk calls yield for every address in ascending order until yield
// returns false.
func (s *Set) Walk(yield func(netaddr.Addr) bool) {
	for bi := range s.mins {
		v := s.mins[bi]
		if !yield(v) {
			return
		}
		stream := s.blockStream(bi)
		pos := 0
		for k := 1; k < s.blockLen(bi); k++ {
			d, n := binary.Uvarint(stream[pos:])
			pos += n
			v += netaddr.Addr(d)
			if !yield(v) {
				return
			}
		}
	}
}

// AppendTo appends every address in ascending order to dst and returns
// the extended slice.
func (s *Set) AppendTo(dst []netaddr.Addr) []netaddr.Addr {
	if cap(dst)-len(dst) < s.n {
		grown := make([]netaddr.Addr, len(dst), len(dst)+s.n)
		copy(grown, dst)
		dst = grown
	}
	s.Walk(func(a netaddr.Addr) bool {
		dst = append(dst, a)
		return true
	})
	return dst
}

// Contains reports whether a is in the set.
func (s *Set) Contains(a netaddr.Addr) bool {
	// Rightmost block whose min is <= a.
	bi := sort.Search(len(s.mins), func(i int) bool { return s.mins[i] > a }) - 1
	if bi < 0 || a > s.maxs[bi] {
		return false
	}
	v := s.mins[bi]
	if v == a {
		return true
	}
	stream := s.blockStream(bi)
	pos := 0
	for k := 1; k < s.blockLen(bi); k++ {
		d, n := binary.Uvarint(stream[pos:])
		pos += n
		v += netaddr.Addr(d)
		if v >= a {
			return v == a
		}
	}
	return false
}

// CountRange returns the number of set addresses in the inclusive range
// [lo, hi]. Cost is O(log blocks + blocksize): interior blocks are
// counted from the cumulative index, only the two boundary blocks are
// decoded. For many ascending ranges (counting a partition), use a
// Counter, which replaces the binary search with a galloping hint and
// caches boundary-block decodes.
func (s *Set) CountRange(lo, hi netaddr.Addr) int {
	if s.n == 0 || lo > hi {
		return 0
	}
	c := s.Counter()
	return c.Count(lo, hi)
}

// Rank returns the number of set addresses strictly below a.
func (s *Set) Rank(a netaddr.Addr) int {
	if s.n == 0 || a == 0 {
		return 0
	}
	c := s.Counter()
	return c.Count(0, a-1)
}

// Counter counts ascending address ranges against the set using a
// moving block hint: ranges must be disjoint and ascending (each
// Count's lo must be greater than the previous Count's hi). Sorted
// disjoint partitions produce exactly this pattern. The counter caches the last decoded
// boundary block, so a full pass over K prefixes decodes each touched
// block once — total work is O(K log blocksize + touched blocks), never
// asymptotically worse than the merge walk.
//
// A Counter is single-goroutine state; create one per pass.
type Counter struct {
	s    *Set
	hint int            // first candidate block for the next boundary search
	bufI int            // index of the decoded block in buf, -1 if none
	buf  []netaddr.Addr // decoded block cache
}

// Counter returns a fresh range counter positioned at the start of the
// set.
func (s *Set) Counter() *Counter {
	return &Counter{s: s, bufI: -1}
}

// findBlock returns the first block index >= c.hint whose max is >= a
// (or > a when strict), galloping forward from the hint and finishing
// with a binary search inside the galloped window. Returns len(mins)
// when every remaining block ends below the bound.
func (c *Counter) findBlock(a netaddr.Addr, strict bool) int {
	maxs := c.s.maxs
	nb := len(maxs)
	above := func(m netaddr.Addr) bool {
		if strict {
			return m > a
		}
		return m >= a
	}
	lo := c.hint
	if lo >= nb {
		return nb
	}
	if above(maxs[lo]) {
		return lo
	}
	// Gallop: widen [lo, hi] until maxs[hi] clears a or we run off the end.
	step := 1
	hi := lo + step
	for hi < nb && !above(maxs[hi]) {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > nb {
		hi = nb
	}
	// Binary search in (lo, hi]: first index clearing the bound.
	return lo + 1 + sort.Search(hi-lo-1, func(i int) bool { return above(maxs[lo+1+i]) })
}

// rank returns the number of set addresses strictly below a (incl ==
// false) or at most a (incl == true), moving the hint forward. The
// block search uses the matching strictness so a run of duplicates that
// spans block boundaries is counted in full: for an inclusive rank,
// every block whose max equals a lies entirely at or below a and is
// counted from the cumulative index.
func (c *Counter) rank(a netaddr.Addr, incl bool) int {
	s := c.s
	bi := c.findBlock(a, incl)
	c.hint = bi
	if bi == len(s.mins) {
		return s.n
	}
	if a < s.mins[bi] {
		// Boundary falls in the gap before the block: nothing of it counts.
		return s.cum[bi]
	}
	if c.bufI != bi {
		c.buf = s.decodeBlock(bi, c.buf)
		c.bufI = bi
	}
	var k int
	if incl {
		k = sort.Search(len(c.buf), func(i int) bool { return c.buf[i] > a })
	} else {
		k = sort.Search(len(c.buf), func(i int) bool { return c.buf[i] >= a })
	}
	return s.cum[bi] + k
}

// Count returns the number of set addresses in [lo, hi]. lo must be >=
// the lo of the previous Count on this counter.
func (c *Counter) Count(lo, hi netaddr.Addr) int {
	if c.s.n == 0 || lo > hi {
		return 0
	}
	below := c.rank(lo, false)
	return c.rank(hi, true) - below
}

// IntersectCount returns |s ∩ t|. Both cursors gallop: a run of one set
// that lies entirely below the other's current address is skipped at
// block granularity through the [min, max] index, so sparse overlaps
// cost far less than the element-by-element merge.
func (s *Set) IntersectCount(t *Set) int {
	if s.n == 0 || t.n == 0 {
		return 0
	}
	a := s.iter()
	b := t.iter()
	n := 0
	for a.valid() && b.valid() {
		switch {
		case a.v < b.v:
			a.seek(b.v)
		case b.v < a.v:
			b.seek(a.v)
		default:
			n++
			a.next()
			b.next()
		}
	}
	return n
}

// iterator streams a Set in ascending order with galloping seek.
type iterator struct {
	s   *Set
	bi  int            // current block
	k   int            // index within buf
	v   netaddr.Addr   // current value (valid when bi < blocks)
	buf []netaddr.Addr // decoded current block
}

func (s *Set) iter() *iterator {
	it := &iterator{s: s}
	if s.n > 0 {
		it.buf = s.decodeBlock(0, nil)
		it.v = it.buf[0]
	} else {
		it.bi = len(s.mins)
	}
	return it
}

func (it *iterator) valid() bool { return it.bi < len(it.s.mins) }

func (it *iterator) loadBlock(bi int) {
	it.bi = bi
	if bi < len(it.s.mins) {
		it.buf = it.s.decodeBlock(bi, it.buf)
		it.k = 0
		it.v = it.buf[0]
	}
}

func (it *iterator) next() {
	it.k++
	if it.k < len(it.buf) {
		it.v = it.buf[it.k]
		return
	}
	it.loadBlock(it.bi + 1)
}

// seek advances the iterator to the first address >= x (x must be >=
// the current value). It gallops over whole blocks via the max index
// before decoding the landing block.
func (it *iterator) seek(x netaddr.Addr) {
	s := it.s
	if x <= s.maxs[it.bi] {
		// Stays in the current block: binary search forward from k.
		rest := it.buf[it.k:]
		j := sort.Search(len(rest), func(i int) bool { return rest[i] >= x })
		it.k += j
		if it.k < len(it.buf) {
			it.v = it.buf[it.k]
			return
		}
		it.loadBlock(it.bi + 1)
		return
	}
	// Gallop block index until the block max reaches x.
	nb := len(s.maxs)
	lo := it.bi
	step := 1
	hi := lo + step
	for hi < nb && s.maxs[hi] < x {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > nb {
		hi = nb
	}
	bi := lo + 1 + sort.Search(hi-lo-1, func(i int) bool { return s.maxs[lo+1+i] >= x })
	it.loadBlock(bi)
	if it.bi == nb {
		return
	}
	j := sort.Search(len(it.buf), func(i int) bool { return it.buf[i] >= x })
	it.k = j
	if j < len(it.buf) {
		it.v = it.buf[j]
		return
	}
	it.loadBlock(it.bi + 1)
}

// Builder assembles a Set from strictly ascending appends, encoding
// each address into the block layout as it arrives. It is the streaming
// half of the census codec fast path: wire deltas go straight into
// block deltas with no intermediate slice.
type Builder struct {
	bsize int
	set   Set
	prev  netaddr.Addr
	inBlk int // addresses in the block under construction
	buf   [binary.MaxVarintLen64]byte
}

// NewBuilder returns a Builder. blockSize 0 means DefaultBlockSize;
// sizeHint, when positive, pre-sizes the index and data buffers.
func NewBuilder(blockSize, sizeHint int) *Builder {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	b := &Builder{bsize: blockSize}
	b.set.bsize = blockSize
	if sizeHint > 0 {
		blocks := (sizeHint + blockSize - 1) / blockSize
		b.set.mins = make([]netaddr.Addr, 0, blocks)
		b.set.maxs = make([]netaddr.Addr, 0, blocks)
		b.set.offs = make([]int, 0, blocks)
		b.set.cum = make([]int, 0, blocks+1)
		// ~1.5 bytes per delta on census-shaped data; grown as needed.
		b.set.data = make([]byte, 0, sizeHint+sizeHint/2)
	}
	return b
}

// Append adds a to the set. Addresses must arrive in ascending order;
// duplicates are kept (multiset semantics).
func (b *Builder) Append(a netaddr.Addr) error {
	s := &b.set
	if s.n > 0 && a < b.prev {
		return fmt.Errorf("addrset: append %v after %v: not ascending", a, b.prev)
	}
	if b.inBlk == b.bsize {
		b.inBlk = 0
	}
	if b.inBlk == 0 {
		s.mins = append(s.mins, a)
		s.maxs = append(s.maxs, a)
		s.offs = append(s.offs, len(s.data))
		s.cum = append(s.cum, s.n)
	} else {
		s.data = append(s.data, b.buf[:binary.PutUvarint(b.buf[:], uint64(a-b.prev))]...)
		s.maxs[len(s.maxs)-1] = a
	}
	b.prev = a
	b.inBlk++
	s.n++
	return nil
}

// Finish seals and returns the set. The Builder must not be used
// afterwards.
func (b *Builder) Finish() *Set {
	b.set.cum = append(b.set.cum, b.set.n)
	return &b.set
}
