// Package addrset provides an immutable, block-indexed sorted address
// set: the counting core every TASS operation reduces to. It is generic
// over the address family (SetOf); Set is the IPv4 instantiation.
//
// Addresses are delta-encoded (LEB128 uvarint) into fixed-population
// blocks; a per-block skip index of [min, max, cumulativeCount] triples
// makes range counting O(log B + blocksize) instead of the O(N) touch-
// every-address merge walk, and lets set intersection gallop past runs
// that cannot match. The layout is the same delta stream the census
// binary codec uses on the wire, so snapshot loading can decode straight
// into blocks without materializing an intermediate address slice.
//
// Families up to 64 bits encode deltas with encoding/binary's uvarint;
// the 128-bit family extends the same LEB128 scheme to at most 19 bytes
// per delta (netaddr.AppendKeyUvarint), so the byte layout of IPv4 sets
// is unchanged by the generalization and IPv6 gaps wider than 2^64 —
// routine when a set spans distant /32s — still round-trip exactly.
//
// A Set is immutable after construction and safe for concurrent use.
package addrset

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"github.com/tass-scan/tass/internal/netaddr"
)

// DefaultBlockSize is the per-block address population used when a
// Builder or FromSorted is given a zero block size. Range counting
// decodes at most the two boundary blocks per range, so a smaller
// block cheapens every count; 64 keeps the boundary work near one
// cache line of varint bytes while the skip index stays under half a
// byte per address.
//
// It may be tuned (e.g. by a CLI flag) before any sets are built; it
// must not be changed concurrently with set construction.
var DefaultBlockSize = 64

// SetOf is an immutable block-indexed sorted set of addresses of
// family A. The zero value is an empty set.
type SetOf[A netaddr.Key[A]] struct {
	n     int // total addresses
	bsize int // addresses per block (last block may hold fewer)

	// Skip index, one entry per block.
	mins []A   // first address of block i
	maxs []A   // last address of block i
	offs []int // byte offset of block i's delta stream in data
	cum  []int // addresses before block i; len = blocks+1, cum[blocks] = n

	// data holds, per block, count(i)-1 uvarint deltas: the block's
	// first address lives in mins[i], each delta adds to the previous
	// address. Deltas may be 0 — duplicates are kept (multiset
	// semantics, matching the merge walk) — so blocks are ascending
	// but not necessarily strictly.
	data []byte

	// mods is the copy-on-write delta overlay: per-block delta streams
	// that override the contiguous data payload. A set freshly built by
	// a Builder has no overlay; ApplyDelta produces sets whose touched
	// blocks live here while untouched blocks keep sharing the parent's
	// data. Compact flattens the overlay back into one contiguous
	// payload (see delta.go for the policy).
	mods map[int][]byte

	// Lazy backing (see source.go). When src is non-nil the payload is
	// not in data: block bi's stream is src.Bytes(offs[bi], blens[bi]),
	// fetched and decoded on first touch through cache (an LRU with
	// single-flight faulting). mods still overrides src block-by-block,
	// so ApplyDelta overlays compose with lazy backings unchanged.
	src   BlockSource
	blens []int // per-block encoded byte length; nil unless src-backed
	cache *blockCache[A]

	// Storage-fault state (see source.go): policy selects FailFast or
	// Degrade, faults records each damaged block once. The set stays
	// logically immutable — fault state is bookkeeping about the
	// backing storage, mutated under faultMu so concurrent readers can
	// record faults safely.
	policy    FaultPolicy
	faultMu   sync.Mutex
	faults    []BlockError
	faultSeen map[int]bool
}

// Set is the IPv4 instantiation of SetOf.
type Set = SetOf[netaddr.Addr]

// narrow reports whether the family fits 64 bits, which selects the
// encoding/binary uvarint fast paths over the 128-bit LEB128 codec.
func narrow[A netaddr.Key[A]]() bool {
	var z A
	return z.Width() <= 64
}

// lo64 returns the low half of a; only meaningful for narrow families.
func lo64[A netaddr.Key[A]](a A) uint64 {
	_, lo := a.Halves()
	return lo
}

// blockStream returns block bi's delta stream: the overlay slice when
// the block has been rewritten by ApplyDelta, the shared contiguous
// payload otherwise. The stream holds blockLen(bi)-1 uvarint deltas
// (possibly followed by other blocks' bytes — decoders count, they do
// not measure). untrusted reports whether the bytes came from an
// external BlockSource, whose contents may have rotted since the index
// was verified — decoders of untrusted streams validate the result
// against the skip index. A source read failure returns the error.
func (s *SetOf[A]) blockStream(bi int) (stream []byte, untrusted bool, err error) {
	if s.mods != nil {
		if b, ok := s.mods[bi]; ok {
			return b, false, nil
		}
	}
	if s.src != nil {
		b, err := s.src.Bytes(s.offs[bi], s.blens[bi])
		return b, true, err
	}
	return s.data[s.offs[bi]:], false, nil
}

// FromSorted builds a Set from an ascending address slice. Duplicates
// are kept: the set mirrors the multiset counting semantics of the
// merge walk, so counts agree on any sorted input (census snapshots are
// duplicate-free anyway). blockSize 0 means DefaultBlockSize. It panics
// on unsorted input; use a Builder when the input needs validation.
func FromSorted[A netaddr.Key[A]](addrs []A, blockSize int) *SetOf[A] {
	b := NewBuilderOf[A](blockSize, len(addrs))
	for _, a := range addrs {
		if err := b.Append(a); err != nil {
			panic(fmt.Sprintf("addrset: FromSorted: %v", err))
		}
	}
	return b.Finish()
}

// Len returns the number of addresses in the set.
func (s *SetOf[A]) Len() int { return s.n }

// BlockSize returns the per-block address population.
func (s *SetOf[A]) BlockSize() int { return s.bsize }

// Blocks returns the number of index blocks.
func (s *SetOf[A]) Blocks() int { return len(s.mins) }

// Bytes returns the memory footprint of the compressed payload (the
// delta stream plus any copy-on-write overlay, excluding the skip
// index). For a set produced by ApplyDelta the contiguous payload is
// shared with its parent, so summing Bytes across a delta chain counts
// the shared bytes repeatedly. For a lazy set this is the source's
// payload size — bytes addressable, not bytes resident.
func (s *SetOf[A]) Bytes() int {
	n := len(s.data)
	if s.src != nil {
		n += s.src.Size()
	}
	for _, stream := range s.mods {
		n += len(stream)
	}
	return n
}

// Min returns the smallest address; ok is false for an empty set.
func (s *SetOf[A]) Min() (A, bool) {
	if s.n == 0 {
		var z A
		return z, false
	}
	return s.mins[0], true
}

// Max returns the largest address; ok is false for an empty set.
func (s *SetOf[A]) Max() (A, bool) {
	if s.n == 0 {
		var z A
		return z, false
	}
	return s.maxs[len(s.maxs)-1], true
}

// blockLen returns the number of addresses in block bi.
func (s *SetOf[A]) blockLen(bi int) int { return s.cum[bi+1] - s.cum[bi] }

// decodeBlock returns the addresses of block bi. On an eager set it
// decodes into buf (reused across calls when cap allows); on a lazy set
// it returns the cache's shared, immutable decoded slice — callers must
// treat the result as read-only either way. A failed read or decode is
// recorded on the set (once per block) and returned as a *BlockError.
func (s *SetOf[A]) decodeBlock(bi int, buf []A) ([]A, error) {
	var addrs []A
	var err error
	if s.cache != nil {
		addrs, err = s.cache.get(s, bi)
	} else {
		addrs, err = s.decodeBlockInto(bi, buf)
	}
	if err != nil {
		if be, ok := err.(*BlockError); ok {
			s.recordFault(be)
		}
		return nil, err
	}
	return addrs, nil
}

// decodeBlockInto appends the addresses of block bi to buf[:0] and
// returns it, bypassing the lazy cache (the cache itself decodes
// through here). Streams served by an external BlockSource are
// validated against the trusted skip index after decoding — population
// and last address must match — so silent payload corruption that
// still parses as varints is caught here instead of flowing into
// counts. Failures come back as a *BlockError naming the block and its
// byte extent.
func (s *SetOf[A]) decodeBlockInto(bi int, buf []A) ([]A, error) {
	buf = buf[:0]
	v := s.mins[bi]
	buf = append(buf, v)
	stream, untrusted, err := s.blockStream(bi)
	if err != nil {
		return nil, s.blockError(bi, err)
	}
	if narrow[A]() {
		// Fast path: batch varint kernel with 64-bit accumulation.
		out, ok := appendAccum(buf, stream, s.blockLen(bi)-1, lo64(v))
		if !ok {
			return nil, s.blockError(bi, fmt.Errorf("stream truncated or malformed"))
		}
		buf = out
	} else {
		pos := 0
		for k := 1; k < s.blockLen(bi); k++ {
			d, n := netaddr.DecodeKeyUvarint[A](stream[pos:])
			if n <= 0 || pos+n > len(stream) {
				return nil, s.blockError(bi, fmt.Errorf("stream truncated or malformed at delta %d", k))
			}
			pos += n
			v = netaddr.KeyAdd(v, d)
			buf = append(buf, v)
		}
	}
	if untrusted {
		if last := buf[len(buf)-1]; last != s.maxs[bi] {
			return nil, s.blockError(bi, fmt.Errorf("decodes to max %v, index says %v", last, s.maxs[bi]))
		}
	}
	return buf, nil
}

// blockError wraps a block failure in a *BlockError carrying the
// block's byte extent (zero extent for overlay or in-core blocks).
func (s *SetOf[A]) blockError(bi int, err error) *BlockError {
	be := &BlockError{Block: bi, Err: err}
	if s.blens != nil {
		be.Off, be.Len = s.offs[bi], s.blens[bi]
	}
	return be
}

// Walk calls yield for every address in ascending order until yield
// returns false. On a lazy set, blocks whose payload cannot be read or
// decoded are skipped — the fault is recorded (see Faults) and the walk
// continues with the next block; check ReadErr afterwards to surface
// faults under the FailFast policy.
func (s *SetOf[A]) Walk(yield func(A) bool) {
	if s.src != nil {
		// Lazy: decode through the cache, which checks untrusted
		// streams against the index and records faults.
		for bi := range s.mins {
			for _, a := range s.readBlock(bi, nil) {
				if !yield(a) {
					return
				}
			}
		}
		return
	}
	for bi := range s.mins {
		v := s.mins[bi]
		if !yield(v) {
			return
		}
		stream, _, _ := s.blockStream(bi)
		pos := 0
		for k := 1; k < s.blockLen(bi); k++ {
			d, n := netaddr.DecodeKeyUvarint[A](stream[pos:])
			pos += n
			v = netaddr.KeyAdd(v, d)
			if !yield(v) {
				return
			}
		}
	}
}

// WalkBlocks calls yield once per index block, in order, with the
// block's index and either its decoded addresses or the error that made
// it undecodable (addrs is nil exactly when err is non-nil), until
// yield returns false. It is the scrubber's primitive: unlike Walk it
// hands damage to the caller block by block instead of silently
// skipping, so a repair pass can re-derive the intact blocks and
// quarantine the rest. The addrs slice is only valid until the next
// yield.
func (s *SetOf[A]) WalkBlocks(yield func(bi int, addrs []A, err error) bool) {
	var buf []A
	for bi := range s.mins {
		addrs, err := s.decodeBlock(bi, buf)
		if err != nil {
			if !yield(bi, nil, err) {
				return
			}
			continue
		}
		if s.cache == nil {
			buf = addrs
		}
		if !yield(bi, addrs, nil) {
			return
		}
	}
}

// AppendTo appends every address in ascending order to dst and returns
// the extended slice.
func (s *SetOf[A]) AppendTo(dst []A) []A {
	if cap(dst)-len(dst) < s.n {
		grown := make([]A, len(dst), len(dst)+s.n)
		copy(grown, dst)
		dst = grown
	}
	s.Walk(func(a A) bool {
		dst = append(dst, a)
		return true
	})
	return dst
}

// Contains reports whether a is in the set. On a lazy set a damaged
// block reads as absent (the fault is recorded; see Faults/ReadErr).
func (s *SetOf[A]) Contains(a A) bool {
	// Rightmost block whose min is <= a.
	bi := sort.Search(len(s.mins), func(i int) bool { return s.mins[i].Compare(a) > 0 }) - 1
	if bi < 0 || a.Compare(s.maxs[bi]) > 0 {
		return false
	}
	v := s.mins[bi]
	if v == a {
		return true
	}
	if s.src != nil {
		buf := s.readBlock(bi, nil)
		k := sort.Search(len(buf), func(i int) bool { return buf[i].Compare(a) >= 0 })
		return k < len(buf) && buf[k] == a
	}
	stream, _, _ := s.blockStream(bi)
	pos := 0
	for k := 1; k < s.blockLen(bi); k++ {
		d, n := netaddr.DecodeKeyUvarint[A](stream[pos:])
		pos += n
		v = netaddr.KeyAdd(v, d)
		if v.Compare(a) >= 0 {
			return v == a
		}
	}
	return false
}

// CountRange returns the number of set addresses in the inclusive range
// [lo, hi]. Cost is O(log blocks + blocksize): interior blocks are
// counted from the cumulative index, only the two boundary blocks are
// decoded. For many ascending ranges (counting a partition), use a
// Counter, which replaces the binary search with a galloping hint and
// caches boundary-block decodes.
func (s *SetOf[A]) CountRange(lo, hi A) int {
	if s.n == 0 || lo.Compare(hi) > 0 {
		return 0
	}
	c := s.Counter()
	return c.Count(lo, hi)
}

// CountRangeErr is CountRange with the storage fault surfaced: the
// count plus the first block fault hit while resolving this range's
// boundaries (nil when the read was clean). Under the Degrade policy
// the count is the degraded result — damaged boundary blocks
// contribute nothing — and the error reports what was skipped either
// way, so callers choose their own posture per call.
func (s *SetOf[A]) CountRangeErr(lo, hi A) (int, error) {
	if s.n == 0 || lo.Compare(hi) > 0 {
		return 0, nil
	}
	c := s.Counter()
	n := c.Count(lo, hi)
	return n, c.Err()
}

// Rank returns the number of set addresses strictly below a.
func (s *SetOf[A]) Rank(a A) int {
	var z A
	if s.n == 0 || a == z {
		return 0
	}
	c := s.Counter()
	return c.Count(z, netaddr.KeyDec(a))
}

// CounterOf counts ascending address ranges against the set using a
// moving block hint: ranges must be disjoint and ascending (each
// Count's lo must be greater than the previous Count's hi). Sorted
// disjoint partitions produce exactly this pattern. The counter caches the last decoded
// boundary block, so a full pass over K prefixes decodes each touched
// block once — total work is O(K log blocksize + touched blocks), never
// asymptotically worse than the merge walk.
//
// A Counter is single-goroutine state; create one per pass.
type CounterOf[A netaddr.Key[A]] struct {
	s    *SetOf[A]
	hint int   // first candidate block for the next boundary search
	bufI int   // index of the decoded block in buf, -1 if none
	buf  []A   // decoded block cache
	err  error // first block fault hit by this counter's pass
}

// Err returns the first block fault this counter hit while decoding
// boundary blocks, or nil. A fault does not stop the pass: the damaged
// block contributes no addresses (interior blocks still count exactly
// from the index) and counting continues, so callers get the degraded
// total alongside the error and apply their own policy.
func (c *CounterOf[A]) Err() error { return c.err }

// Counter is the IPv4 instantiation of CounterOf.
type Counter = CounterOf[netaddr.Addr]

// Counter returns a fresh range counter positioned at the start of the
// set.
func (s *SetOf[A]) Counter() *CounterOf[A] {
	return &CounterOf[A]{s: s, bufI: -1}
}

// findBlock returns the first block index >= c.hint whose max is >= a
// (or > a when strict), galloping forward from the hint and finishing
// with a binary search inside the galloped window. Returns len(mins)
// when every remaining block ends below the bound.
func (c *CounterOf[A]) findBlock(a A, strict bool) int {
	maxs := c.s.maxs
	nb := len(maxs)
	above := func(m A) bool {
		if strict {
			return m.Compare(a) > 0
		}
		return m.Compare(a) >= 0
	}
	lo := c.hint
	if lo >= nb {
		return nb
	}
	if above(maxs[lo]) {
		return lo
	}
	// Gallop: widen [lo, hi] until maxs[hi] clears a or we run off the end.
	step := 1
	hi := lo + step
	for hi < nb && !above(maxs[hi]) {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > nb {
		hi = nb
	}
	// Binary search in (lo, hi]: first index clearing the bound.
	return lo + 1 + sort.Search(hi-lo-1, func(i int) bool { return above(maxs[lo+1+i]) })
}

// rank returns the number of set addresses strictly below a (incl ==
// false) or at most a (incl == true), moving the hint forward. The
// block search uses the matching strictness so a run of duplicates that
// spans block boundaries is counted in full: for an inclusive rank,
// every block whose max equals a lies entirely at or below a and is
// counted from the cumulative index.
func (c *CounterOf[A]) rank(a A, incl bool) int {
	s := c.s
	bi := c.findBlock(a, incl)
	c.hint = bi
	if bi == len(s.mins) {
		return s.n
	}
	if a.Compare(s.mins[bi]) < 0 {
		// Boundary falls in the gap before the block: nothing of it counts.
		return s.cum[bi]
	}
	if c.bufI != bi {
		dec, err := s.decodeBlock(bi, c.buf)
		if err != nil {
			// Damaged boundary block: it contributes no addresses to
			// this rank (cum[bi] counts everything before it). The
			// empty buffer is memoized like a decoded one so a range
			// whose other boundary lands in the same block does not
			// re-fault it.
			if c.err == nil {
				c.err = err
			}
			dec = c.buf[:0]
		}
		c.buf = dec
		c.bufI = bi
	}
	var k int
	if incl {
		k = sort.Search(len(c.buf), func(i int) bool { return c.buf[i].Compare(a) > 0 })
	} else {
		k = sort.Search(len(c.buf), func(i int) bool { return c.buf[i].Compare(a) >= 0 })
	}
	return s.cum[bi] + k
}

// Count returns the number of set addresses in [lo, hi]. lo must be >=
// the lo of the previous Count on this counter.
func (c *CounterOf[A]) Count(lo, hi A) int {
	if c.s.n == 0 || lo.Compare(hi) > 0 {
		return 0
	}
	below := c.rank(lo, false)
	return c.rank(hi, true) - below
}

// IntersectCount returns |s ∩ t|. Both cursors gallop: a run of one set
// that lies entirely below the other's current address is skipped at
// block granularity through the [min, max] index, so sparse overlaps
// cost far less than the element-by-element merge.
func (s *SetOf[A]) IntersectCount(t *SetOf[A]) int {
	if s.n == 0 || t.n == 0 {
		return 0
	}
	a := s.iter()
	b := t.iter()
	n := 0
	for a.valid() && b.valid() {
		switch c := a.v.Compare(b.v); {
		case c < 0:
			a.seek(b.v)
		case c > 0:
			b.seek(a.v)
		default:
			n++
			a.next()
			b.next()
		}
	}
	return n
}

// iterator streams a Set in ascending order with galloping seek.
type iterator[A netaddr.Key[A]] struct {
	s   *SetOf[A]
	bi  int // current block
	k   int // index within buf
	v   A   // current value (valid when bi < blocks)
	buf []A // decoded current block
}

func (s *SetOf[A]) iter() *iterator[A] {
	it := &iterator[A]{s: s}
	if s.n > 0 {
		it.loadBlock(0)
	} else {
		it.bi = len(s.mins)
	}
	return it
}

func (it *iterator[A]) valid() bool { return it.bi < len(it.s.mins) }

// loadBlock positions the iterator at the first readable block >= bi.
// Damaged blocks decode empty (fault recorded on the set) and are
// skipped, so a corrupt block drops out of the intersection instead of
// wedging or crashing the merge.
func (it *iterator[A]) loadBlock(bi int) {
	s := it.s
	for bi < len(s.mins) {
		buf := s.readBlock(bi, it.buf)
		if len(buf) > 0 {
			it.bi = bi
			it.buf = buf
			it.k = 0
			it.v = buf[0]
			return
		}
		bi++
	}
	it.bi = bi
}

func (it *iterator[A]) next() {
	it.k++
	if it.k < len(it.buf) {
		it.v = it.buf[it.k]
		return
	}
	it.loadBlock(it.bi + 1)
}

// seek advances the iterator to the first address >= x (x must be >=
// the current value). It gallops over whole blocks via the max index
// before decoding the landing block.
func (it *iterator[A]) seek(x A) {
	s := it.s
	if x.Compare(s.maxs[it.bi]) <= 0 {
		// Stays in the current block: binary search forward from k.
		rest := it.buf[it.k:]
		j := sort.Search(len(rest), func(i int) bool { return rest[i].Compare(x) >= 0 })
		it.k += j
		if it.k < len(it.buf) {
			it.v = it.buf[it.k]
			return
		}
		it.loadBlock(it.bi + 1)
		return
	}
	// Gallop block index until the block max reaches x.
	nb := len(s.maxs)
	lo := it.bi
	step := 1
	hi := lo + step
	for hi < nb && s.maxs[hi].Compare(x) < 0 {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > nb {
		hi = nb
	}
	bi := lo + 1 + sort.Search(hi-lo-1, func(i int) bool { return s.maxs[lo+1+i].Compare(x) >= 0 })
	it.loadBlock(bi)
	if it.bi == nb {
		return
	}
	j := sort.Search(len(it.buf), func(i int) bool { return it.buf[i].Compare(x) >= 0 })
	it.k = j
	if j < len(it.buf) {
		it.v = it.buf[j]
		return
	}
	it.loadBlock(it.bi + 1)
}

// BuilderOf assembles a Set from ascending appends, encoding each
// address into the block layout as it arrives. It is the streaming
// half of the census codec fast path: wire deltas go straight into
// block deltas with no intermediate slice.
type BuilderOf[A netaddr.Key[A]] struct {
	bsize int
	set   SetOf[A]
	prev  A
	inBlk int      // addresses in the block under construction
	buf   [19]byte // max LEB128 length of a 128-bit delta
}

// Builder is the IPv4 instantiation of BuilderOf.
type Builder = BuilderOf[netaddr.Addr]

// NewBuilder returns an IPv4 Builder. blockSize 0 means
// DefaultBlockSize; sizeHint, when positive, pre-sizes the index and
// data buffers. It exists alongside NewBuilderOf because the family
// cannot be inferred from integer arguments.
func NewBuilder(blockSize, sizeHint int) *Builder {
	return NewBuilderOf[netaddr.Addr](blockSize, sizeHint)
}

// NewBuilderOf returns a Builder for any address family. blockSize 0
// means DefaultBlockSize; sizeHint, when positive, pre-sizes the index
// and data buffers.
func NewBuilderOf[A netaddr.Key[A]](blockSize, sizeHint int) *BuilderOf[A] {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	b := &BuilderOf[A]{bsize: blockSize}
	b.set.bsize = blockSize
	if sizeHint > 0 {
		blocks := (sizeHint + blockSize - 1) / blockSize
		b.set.mins = make([]A, 0, blocks)
		b.set.maxs = make([]A, 0, blocks)
		b.set.offs = make([]int, 0, blocks)
		b.set.cum = make([]int, 0, blocks+1)
		// ~1.5 bytes per delta on census-shaped data; grown as needed.
		b.set.data = make([]byte, 0, sizeHint+sizeHint/2)
	}
	return b
}

// Append adds a to the set. Addresses must arrive in ascending order;
// duplicates are kept (multiset semantics).
func (b *BuilderOf[A]) Append(a A) error {
	s := &b.set
	if s.n > 0 && a.Compare(b.prev) < 0 {
		return fmt.Errorf("addrset: append %v after %v: not ascending", a, b.prev)
	}
	if b.inBlk == b.bsize {
		b.inBlk = 0
	}
	if b.inBlk == 0 {
		s.mins = append(s.mins, a)
		s.maxs = append(s.maxs, a)
		s.offs = append(s.offs, len(s.data))
		s.cum = append(s.cum, s.n)
	} else {
		if narrow[A]() {
			// Ascending appends keep the gap in the low half.
			gap := lo64(a) - lo64(b.prev)
			s.data = append(s.data, b.buf[:binary.PutUvarint(b.buf[:], gap)]...)
		} else {
			s.data = netaddr.AppendKeyUvarint(s.data, netaddr.KeySub(a, b.prev))
		}
		s.maxs[len(s.maxs)-1] = a
	}
	b.prev = a
	b.inBlk++
	s.n++
	return nil
}

// Finish seals and returns the set. The Builder must not be used
// afterwards.
func (b *BuilderOf[A]) Finish() *SetOf[A] {
	b.set.cum = append(b.set.cum, b.set.n)
	return &b.set
}
