package addrset

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
)

// randomSorted returns a strictly ascending address slice of roughly n
// entries drawn from [0, span).
func randomSorted(rng *rand.Rand, n int, span uint32) []netaddr.Addr {
	seen := make(map[netaddr.Addr]bool, n)
	for len(seen) < n {
		seen[netaddr.Addr(rng.Uint32()%span)] = true
	}
	out := make([]netaddr.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// countRangeRef is the brute-force reference for CountRange.
func countRangeRef(addrs []netaddr.Addr, lo, hi netaddr.Addr) int {
	n := 0
	for _, a := range addrs {
		if a >= lo && a <= hi {
			n++
		}
	}
	return n
}

// intersectRef is the merge-walk reference for IntersectCount.
func intersectRef(a, b []netaddr.Addr) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

var testBlockSizes = []int{1, 2, 3, 7, 16, 256}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bs := range testBlockSizes {
		for _, n := range []int{0, 1, 2, 5, 100, 1000} {
			addrs := randomSorted(rng, n, 1<<30)
			s := FromSorted(addrs, bs)
			if s.Len() != len(addrs) {
				t.Fatalf("bs=%d n=%d: Len = %d", bs, n, s.Len())
			}
			got := s.AppendTo(nil)
			if len(got) != len(addrs) {
				t.Fatalf("bs=%d n=%d: AppendTo returned %d addrs", bs, n, len(got))
			}
			for i := range got {
				if got[i] != addrs[i] {
					t.Fatalf("bs=%d n=%d: addr %d = %v, want %v", bs, n, i, got[i], addrs[i])
				}
			}
		}
	}
}

func TestCountRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, bs := range testBlockSizes {
		addrs := randomSorted(rng, 500, 1<<16) // dense: lots of block sharing
		s := FromSorted(addrs, bs)
		for trial := 0; trial < 500; trial++ {
			lo := netaddr.Addr(rng.Uint32() % (1 << 16))
			hi := lo + netaddr.Addr(rng.Uint32()%(1<<14))
			want := countRangeRef(addrs, lo, hi)
			if got := s.CountRange(lo, hi); got != want {
				t.Fatalf("bs=%d: CountRange(%v,%v) = %d, want %d", bs, lo, hi, got, want)
			}
		}
		// Degenerate and boundary ranges.
		if got := s.CountRange(5, 4); got != 0 {
			t.Fatalf("bs=%d: inverted range counted %d", bs, got)
		}
		if got := s.CountRange(0, ^netaddr.Addr(0)); got != len(addrs) {
			t.Fatalf("bs=%d: full range = %d, want %d", bs, got, len(addrs))
		}
		for _, a := range addrs {
			if got := s.CountRange(a, a); got != 1 {
				t.Fatalf("bs=%d: point range at %v = %d", bs, a, got)
			}
		}
	}
}

func TestCounterAscendingRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, bs := range testBlockSizes {
		addrs := randomSorted(rng, 800, 1<<20)
		s := FromSorted(addrs, bs)
		// Ascending disjoint ranges, the partition-count pattern.
		c := s.Counter()
		var lo netaddr.Addr
		for lo < 1<<20 {
			width := netaddr.Addr(1 + rng.Uint32()%(1<<12))
			hi := lo + width
			want := countRangeRef(addrs, lo, hi)
			if got := c.Count(lo, hi); got != want {
				t.Fatalf("bs=%d: Counter.Count(%v,%v) = %d, want %d", bs, lo, hi, got, want)
			}
			lo = hi + 1 + netaddr.Addr(rng.Uint32()%(1<<12))
		}
	}
}

func TestContains(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, bs := range testBlockSizes {
		addrs := randomSorted(rng, 300, 1<<16)
		s := FromSorted(addrs, bs)
		member := make(map[netaddr.Addr]bool, len(addrs))
		for _, a := range addrs {
			member[a] = true
			if !s.Contains(a) {
				t.Fatalf("bs=%d: Contains(%v) = false for member", bs, a)
			}
		}
		for trial := 0; trial < 1000; trial++ {
			a := netaddr.Addr(rng.Uint32() % (1 << 17))
			if s.Contains(a) != member[a] {
				t.Fatalf("bs=%d: Contains(%v) = %v, want %v", bs, a, !member[a], member[a])
			}
		}
	}
}

func TestIntersectCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shapes := []struct {
		na, nb int
		span   uint32
	}{
		{0, 100, 1 << 16},   // empty vs non-empty
		{100, 100, 1 << 12}, // dense overlap
		{1000, 20, 1 << 20}, // sparse b gallops a
		{20, 1000, 1 << 20}, // sparse a gallops b
		{500, 500, 1 << 28}, // little overlap
	}
	for _, bs := range testBlockSizes {
		for _, sh := range shapes {
			a := randomSorted(rng, sh.na, sh.span)
			b := randomSorted(rng, sh.nb, sh.span)
			want := intersectRef(a, b)
			sa, sb := FromSorted(a, bs), FromSorted(b, bs)
			if got := sa.IntersectCount(sb); got != want {
				t.Fatalf("bs=%d shape=%+v: IntersectCount = %d, want %d", bs, sh, got, want)
			}
			if got := sb.IntersectCount(sa); got != want {
				t.Fatalf("bs=%d shape=%+v: reversed IntersectCount = %d, want %d", bs, sh, got, want)
			}
			if got := sa.IntersectCount(sa); got != len(a) {
				t.Fatalf("bs=%d: self-intersect = %d, want %d", bs, got, len(a))
			}
		}
	}
}

func TestRankAndMinMax(t *testing.T) {
	addrs := []netaddr.Addr{10, 20, 30, 40, 50}
	s := FromSorted(addrs, 2)
	for i, a := range addrs {
		if got := s.Rank(a); got != i {
			t.Fatalf("Rank(%v) = %d, want %d", a, got, i)
		}
		if got := s.Rank(a + 1); got != i+1 {
			t.Fatalf("Rank(%v) = %d, want %d", a+1, got, i+1)
		}
	}
	if got := s.Rank(0); got != 0 {
		t.Fatalf("Rank(0) = %d", got)
	}
	if mn, ok := s.Min(); !ok || mn != 10 {
		t.Fatalf("Min = %v, %v", mn, ok)
	}
	if mx, ok := s.Max(); !ok || mx != 50 {
		t.Fatalf("Max = %v, %v", mx, ok)
	}
	var empty Set
	if _, ok := empty.Min(); ok {
		t.Fatal("empty Min ok")
	}
	if got := empty.CountRange(0, ^netaddr.Addr(0)); got != 0 {
		t.Fatalf("empty CountRange = %d", got)
	}
	if got := empty.IntersectCount(s); got != 0 {
		t.Fatalf("empty IntersectCount = %d", got)
	}
}

func TestBuilderRejectsDescending(t *testing.T) {
	b := NewBuilder(0, 0)
	if err := b.Append(5); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(4); err == nil {
		t.Fatal("descending accepted")
	}
	if err := b.Append(6); err != nil {
		t.Fatal(err)
	}
	s := b.Finish()
	if s.Len() != 2 || !s.Contains(5) || !s.Contains(6) {
		t.Fatalf("builder set wrong: len=%d", s.Len())
	}
}

func TestDuplicatesMultisetSemantics(t *testing.T) {
	// The merge walk counts duplicate addresses twice; the set mirrors
	// that so both paths agree on any sorted input.
	addrs := []netaddr.Addr{3, 5, 5, 5, 9, 9, 20}
	for _, bs := range testBlockSizes {
		s := FromSorted(addrs, bs)
		if s.Len() != len(addrs) {
			t.Fatalf("bs=%d: Len = %d, want %d", bs, s.Len(), len(addrs))
		}
		if got := s.CountRange(5, 9); got != 5 {
			t.Fatalf("bs=%d: CountRange(5,9) = %d, want 5", bs, got)
		}
		if got := s.Rank(5); got != 1 {
			t.Fatalf("bs=%d: Rank(5) = %d, want 1", bs, got)
		}
		if !s.Contains(5) || s.Contains(4) {
			t.Fatalf("bs=%d: Contains wrong", bs)
		}
		round := s.AppendTo(nil)
		for i := range round {
			if round[i] != addrs[i] {
				t.Fatalf("bs=%d: round trip %v", bs, round)
			}
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	s := FromSorted([]netaddr.Addr{1, 2, 3, 4, 5}, 2)
	var got []netaddr.Addr
	s.Walk(func(a netaddr.Addr) bool {
		got = append(got, a)
		return len(got) < 3
	})
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("Walk stopped at %v", got)
	}
}
