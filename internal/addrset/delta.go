package addrset

import (
	"fmt"
	"sort"

	"github.com/tass-scan/tass/internal/netaddr"
)

// ApplyDelta returns the set with the born addresses inserted and the
// died addresses removed. Both inputs must be strictly ascending; every
// born address must be absent from the set and every died address
// present (the census snapshot shape — duplicate-free deltas over a
// duplicate-free set).
//
// The result is a copy-on-write overlay over the receiver: only blocks
// the delta touches are decoded and re-encoded (into the mods overlay,
// split back to the block size when a block outgrows it), untouched
// blocks keep sharing the receiver's payload bytes and overlay entries.
// The skip index is rebuilt partially — entries before the first
// touched block are block-copied, the cumulative prefix sum is
// recomputed only from that block on. Cost is O(touched blocks ·
// blocksize + blocks) rather than O(n). When the overlay has grown past
// half the block count the result is compacted (flattened into one
// contiguous payload) before being returned, so chains of monthly
// deltas stay within a constant factor of a freshly built set.
//
// The receiver is not modified and remains valid; with an empty delta
// it is returned unchanged.
func (s *SetOf[A]) ApplyDelta(born, died []A) (*SetOf[A], error) {
	if err := checkStrictAscending(born, "born"); err != nil {
		return nil, err
	}
	if err := checkStrictAscending(died, "died"); err != nil {
		return nil, err
	}
	if len(born) == 0 && len(died) == 0 {
		return s, nil
	}
	if s.n == 0 {
		if len(died) > 0 {
			return nil, fmt.Errorf("addrset: delta died %v not in set", died[0])
		}
		return FromSorted(born, s.bsize), nil
	}

	nb := len(s.mins)
	out := &SetOf[A]{bsize: s.bsize, data: s.data, src: s.src, policy: s.policy}
	if s.src != nil {
		// Carried blocks keep reading the parent's source lazily, so
		// the child needs byte extents and its own decoded-block cache
		// (block indices renumber, the parent's cache keys don't map).
		out.blens = make([]int, 0, nb)
		cacheCap := 0
		if s.cache != nil {
			cacheCap = s.cache.cap
		}
		out.cache = newBlockCache[A](cacheCap)
	}

	// Partial index rebuild: blocks strictly before the first touched
	// one carry over verbatim — same indices, same streams, same
	// cumulative counts — so their index entries are block-copied and
	// the prefix sum is only recomputed from the first touched block on.
	first := nb
	if len(died) > 0 {
		if bi := blockOf(s, died[0]); bi < first {
			first = bi
		}
	}
	if len(born) > 0 {
		if bi := blockOf(s, born[0]); bi < first {
			first = bi
		}
	}
	grow := (len(born) + s.bsize - 1) / s.bsize
	out.mins = make([]A, first, nb+grow)
	out.maxs = make([]A, first, nb+grow)
	out.offs = make([]int, first, nb+grow)
	out.cum = make([]int, first+1, nb+grow+1)
	copy(out.mins, s.mins[:first])
	copy(out.maxs, s.maxs[:first])
	copy(out.offs, s.offs[:first])
	copy(out.cum, s.cum[:first+1])
	if out.blens != nil {
		out.blens = append(out.blens, s.blens[:first]...)
	}
	out.n = s.cum[first]
	out.mods = make(map[int][]byte, len(s.mods)+min(len(born)+len(died), nb-first))
	for bi, stream := range s.mods {
		if bi < first {
			out.mods[bi] = stream
		}
	}

	b, d := 0, 0
	var dec, merged []A
	for bi := first; bi < nb; bi++ {
		// Born addresses destined for this block: everything below the
		// next block's min (the last block takes all the rest). Died
		// addresses inside this block: everything at or below its max.
		bornHi := len(born)
		if bi+1 < nb {
			m := s.mins[bi+1]
			bornHi = b + sort.Search(len(born)-b, func(i int) bool { return born[b+i].Compare(m) >= 0 })
		}
		mx := s.maxs[bi]
		diedHi := d + sort.Search(len(died)-d, func(i int) bool { return died[d+i].Compare(mx) > 0 })
		if b == bornHi && d == diedHi {
			out.appendCarried(s, bi)
			continue
		}
		var err error
		dec, err = s.decodeBlock(bi, dec)
		if err != nil {
			// A delta cannot be applied over a block we cannot read:
			// merging against a damaged block would silently drop its
			// survivors. Propagate the typed fault.
			return nil, err
		}
		merged, err = mergeDelta(merged[:0], dec, born[b:bornHi], died[d:diedHi])
		if err != nil {
			return nil, err
		}
		b, d = bornHi, diedHi
		out.appendEncoded(merged)
	}
	if d < len(died) {
		return nil, fmt.Errorf("addrset: delta died %v not in set", died[d])
	}

	// Compaction policy: once the overlay covers more than half the
	// blocks, most lookups pay the map indirection and the shared
	// payload is mostly dead weight; flatten back to one contiguous
	// stream. Amortized over the >blocks/2 block rewrites that got us
	// here, the O(n) rebuild keeps ApplyDelta chains linear in churn.
	if len(out.mods)*2 > len(out.mins) {
		return out.Compact(), nil
	}
	return out, nil
}

// Compact flattens the copy-on-write overlay into a freshly encoded
// contiguous set (fixed-population blocks, no overlay). Sets without an
// overlay are returned unchanged.
func (s *SetOf[A]) Compact() *SetOf[A] {
	if len(s.mods) == 0 {
		return s
	}
	b := NewBuilderOf[A](s.bsize, s.n)
	s.Walk(func(a A) bool {
		// Walk yields ascending addresses, the only Append error.
		_ = b.Append(a)
		return true
	})
	return b.Finish()
}

// Overlay reports the size of the copy-on-write overlay: how many
// blocks have been rewritten by ApplyDelta since the last compaction.
func (s *SetOf[A]) Overlay() int { return len(s.mods) }

// blockOf returns the index of the rightmost block whose min is <= a
// (0 when a precedes every block): the block a lives in if present, or
// the block an insertion of a would rewrite.
func blockOf[A netaddr.Key[A]](s *SetOf[A], a A) int {
	bi := sort.Search(len(s.mins), func(i int) bool { return s.mins[i].Compare(a) > 0 }) - 1
	if bi < 0 {
		return 0
	}
	return bi
}

// appendCarried copies block bi of parent — index entry, stream
// (overlay or contiguous), population — as the receiver's next block.
func (o *SetOf[A]) appendCarried(parent *SetOf[A], bi int) {
	newBi := len(o.mins)
	o.mins = append(o.mins, parent.mins[bi])
	o.maxs = append(o.maxs, parent.maxs[bi])
	o.offs = append(o.offs, parent.offs[bi])
	if o.blens != nil {
		o.blens = append(o.blens, parent.blens[bi])
	}
	if parent.mods != nil {
		if stream, ok := parent.mods[bi]; ok {
			o.mods[newBi] = stream
		}
	}
	cnt := parent.blockLen(bi)
	o.n += cnt
	o.cum = append(o.cum, o.n)
}

// appendEncoded re-encodes a merged block's addresses into the overlay,
// splitting back to the block size when the merge outgrew it. Empty
// merges (every address died) emit no block at all.
func (o *SetOf[A]) appendEncoded(addrs []A) {
	for len(addrs) > 0 {
		n := min(o.bsize, len(addrs))
		blk := addrs[:n]
		addrs = addrs[n:]
		stream := make([]byte, 0, 2*n)
		prev := blk[0]
		for _, a := range blk[1:] {
			stream = netaddr.AppendKeyUvarint(stream, netaddr.KeySub(a, prev))
			prev = a
		}
		newBi := len(o.mins)
		o.mins = append(o.mins, blk[0])
		o.maxs = append(o.maxs, blk[n-1])
		o.offs = append(o.offs, 0) // unused: the stream lives in mods
		if o.blens != nil {
			// Keep indices aligned; the mods overlay wins in blockStream
			// so the extent is never read, but a zero would desync any
			// future flatten.
			o.blens = append(o.blens, len(stream))
		}
		o.mods[newBi] = stream
		o.n += n
		o.cum = append(o.cum, o.n)
	}
}

// mergeDelta merges base with born and removes died, appending to dst.
// All three inputs are ascending; born and died are confined to base's
// block range by the caller.
func mergeDelta[A netaddr.Key[A]](dst, base, born, died []A) ([]A, error) {
	b, d := 0, 0
	for _, a := range base {
		if d < len(died) && died[d].Compare(a) < 0 {
			return nil, fmt.Errorf("addrset: delta died %v not in set", died[d])
		}
		if d < len(died) && died[d] == a {
			d++
			continue
		}
		for b < len(born) && born[b].Compare(a) < 0 {
			dst = append(dst, born[b])
			b++
		}
		if b < len(born) && born[b] == a {
			return nil, fmt.Errorf("addrset: delta born %v already in set", born[b])
		}
		dst = append(dst, a)
	}
	if d < len(died) {
		return nil, fmt.Errorf("addrset: delta died %v not in set", died[d])
	}
	return append(dst, born[b:]...), nil
}

// checkStrictAscending validates a delta side: strictly ascending,
// duplicate-free.
func checkStrictAscending[A netaddr.Key[A]](addrs []A, side string) error {
	for i := 1; i < len(addrs); i++ {
		if addrs[i].Compare(addrs[i-1]) <= 0 {
			return fmt.Errorf("addrset: delta %s not strictly ascending at %v", side, addrs[i])
		}
	}
	return nil
}
