package addrset

import (
	"math/rand"
	"slices"
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
)

// applyReference computes the expected result of ApplyDelta on plain
// sorted slices.
func applyReference(base, born, died []netaddr.Addr) []netaddr.Addr {
	out := make([]netaddr.Addr, 0, len(base)+len(born))
	d := 0
	for _, a := range base {
		if d < len(died) && died[d] == a {
			d++
			continue
		}
		out = append(out, a)
	}
	out = append(out, born...)
	slices.Sort(out)
	return out
}

// randomDelta draws a delta from base: each address dies with
// probability pDie, and pBorn*len(base) fresh addresses (absent from
// base) are born.
func randomDelta(rng *rand.Rand, base []netaddr.Addr, pDie, pBorn float64, span uint32) (born, died []netaddr.Addr) {
	present := make(map[netaddr.Addr]bool, len(base))
	for _, a := range base {
		present[a] = true
	}
	for _, a := range base {
		if rng.Float64() < pDie {
			died = append(died, a)
		}
	}
	want := int(pBorn * float64(len(base)))
	seen := make(map[netaddr.Addr]bool)
	for len(born) < want {
		a := netaddr.Addr(rng.Uint32() % span)
		if present[a] || seen[a] {
			continue
		}
		seen[a] = true
		born = append(born, a)
	}
	slices.Sort(born)
	return born, died
}

func randomBase(rng *rand.Rand, n int, span uint32) []netaddr.Addr {
	seen := make(map[netaddr.Addr]bool, n)
	out := make([]netaddr.Addr, 0, n)
	for len(out) < n {
		a := netaddr.Addr(rng.Uint32() % span)
		if seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

// checkEqualSets verifies a set matches a sorted reference slice in
// contents, counts and random-range counting.
func checkEqualSets(t *testing.T, rng *rand.Rand, s *Set, want []netaddr.Addr) {
	t.Helper()
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	got := s.AppendTo(nil)
	if !slices.Equal(got, want) {
		t.Fatalf("contents diverge: got %d addrs, want %d", len(got), len(want))
	}
	for trial := 0; trial < 50; trial++ {
		lo := netaddr.Addr(rng.Uint32())
		hi := lo + netaddr.Addr(rng.Uint32()%(1<<24))
		if hi < lo {
			hi = ^netaddr.Addr(0)
		}
		wantN := 0
		for _, a := range want {
			if a >= lo && a <= hi {
				wantN++
			}
		}
		if gotN := s.CountRange(lo, hi); gotN != wantN {
			t.Fatalf("CountRange(%v, %v) = %d, want %d", lo, hi, gotN, wantN)
		}
	}
}

func TestApplyDeltaMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		base := randomBase(rng, 50+rng.Intn(2000), 1<<26)
		s := FromSorted(base, 32)
		born, died := randomDelta(rng, base, 0.1, 0.1, 1<<26)
		next, err := s.ApplyDelta(born, died)
		if err != nil {
			t.Fatalf("trial %d: ApplyDelta: %v", trial, err)
		}
		checkEqualSets(t, rng, next, applyReference(base, born, died))
		// The parent must be untouched by the copy-on-write apply.
		checkEqualSets(t, rng, s, base)
	}
}

func TestApplyDeltaChain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := randomBase(rng, 3000, 1<<24)
	s := FromSorted(base, 64)
	cur := base
	compacted := false
	for month := 0; month < 12; month++ {
		born, died := randomDelta(rng, cur, 0.05, 0.05, 1<<24)
		next, err := s.ApplyDelta(born, died)
		if err != nil {
			t.Fatalf("month %d: %v", month, err)
		}
		cur = applyReference(cur, born, died)
		checkEqualSets(t, rng, next, cur)
		if next.Overlay()*2 > next.Blocks() {
			t.Fatalf("month %d: overlay %d of %d blocks survived past the compaction threshold", month, next.Overlay(), next.Blocks())
		}
		if next.Overlay() == 0 && len(born)+len(died) > 0 {
			compacted = true
		}
		s = next
	}
	if !compacted {
		t.Fatal("a 12-month churn chain never hit the compaction threshold")
	}
}

func TestApplyDeltaEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := randomBase(rng, 500, 1<<20)
	s := FromSorted(base, 16)

	// Empty delta: the very same set comes back.
	same, err := s.ApplyDelta(nil, nil)
	if err != nil || same != s {
		t.Fatalf("empty delta: got (%p, %v), want the receiver back", same, err)
	}

	// Full churn: everything dies, a disjoint population is born.
	reborn := make([]netaddr.Addr, len(base))
	for i, a := range base {
		reborn[i] = a + 1<<20
	}
	next, err := s.ApplyDelta(reborn, base)
	if err != nil {
		t.Fatalf("full churn: %v", err)
	}
	checkEqualSets(t, rng, next, reborn)

	// Everything dies, nothing is born.
	empty, err := s.ApplyDelta(nil, base)
	if err != nil {
		t.Fatalf("all died: %v", err)
	}
	if empty.Len() != 0 {
		t.Fatalf("all died: %d addresses remain", empty.Len())
	}

	// Applying onto an empty set.
	fromEmpty, err := (&Set{bsize: 16}).ApplyDelta(base, nil)
	if err != nil {
		t.Fatalf("empty base: %v", err)
	}
	checkEqualSets(t, rng, fromEmpty, base)
}

func TestApplyDeltaRejectsBadInput(t *testing.T) {
	base := []netaddr.Addr{10, 20, 30, 40}
	s := FromSorted(base, 2)
	cases := []struct {
		name       string
		born, died []netaddr.Addr
	}{
		{"died absent (gap)", nil, []netaddr.Addr{25}},
		{"died absent (below)", nil, []netaddr.Addr{5}},
		{"died absent (above)", nil, []netaddr.Addr{50}},
		{"born present", []netaddr.Addr{20}, nil},
		{"born unsorted", []netaddr.Addr{7, 5}, nil},
		{"died duplicate", nil, []netaddr.Addr{20, 20}},
	}
	for _, tc := range cases {
		if _, err := s.ApplyDelta(tc.born, tc.died); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
