package addrset

import (
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
)

// Sets whose last member is the very top of the address space stress
// the delta coding (no address after it), Rank's a-1 step, and the
// counter's inclusive upper bound. Both families are pinned here.

func TestSetAtTopOfSpaceV4(t *testing.T) {
	max := netaddr.KeyMax[netaddr.Addr]()
	addrs := []netaddr.Addr{0, 7, 1 << 20, max - 1, max}
	s := FromSorted(addrs, 2) // tiny blocks: max sits on a block boundary path
	if !s.Contains(max) {
		t.Error("Contains(max) = false")
	}
	if got, ok := s.Max(); !ok || got != max {
		t.Errorf("Max() = %v, %v", got, ok)
	}
	if got := s.CountRange(max, max); got != 1 {
		t.Errorf("CountRange(max, max) = %d", got)
	}
	if got := s.CountRange(0, max); got != len(addrs) {
		t.Errorf("CountRange(0, max) = %d, want %d", got, len(addrs))
	}
	if got := s.CountRange(max-1, max); got != 2 {
		t.Errorf("CountRange(max-1, max) = %d", got)
	}
	if got := s.Rank(max); got != len(addrs)-1 {
		t.Errorf("Rank(max) = %d, want %d", got, len(addrs)-1)
	}
	// A set without max must not report it.
	s2 := FromSorted(addrs[:4], 2)
	if s2.Contains(max) {
		t.Error("Contains(max) = true on a set without it")
	}
	if got := s2.CountRange(max, max); got != 0 {
		t.Errorf("CountRange(max, max) = %d on a set without it", got)
	}
}

func TestSetAtTopOfSpaceV6(t *testing.T) {
	max := netaddr.KeyMax[netaddr.Addr6]()
	addrs := []netaddr.Addr6{
		{},
		{Hi: 1},
		{Hi: 1, Lo: ^uint64(0)}, // Lo all-ones mid-set: carry in the delta decode
		{Hi: ^uint64(0)},
		max,
	}
	s := FromSorted(addrs, 2)
	if !s.Contains(max) {
		t.Error("Contains(max6) = false")
	}
	if got := s.CountRange(max, max); got != 1 {
		t.Errorf("CountRange(max6, max6) = %d", got)
	}
	var zero netaddr.Addr6
	if got := s.CountRange(zero, max); got != len(addrs) {
		t.Errorf("CountRange(0, max6) = %d, want %d", got, len(addrs))
	}
	if got := s.Rank(max); got != len(addrs)-1 {
		t.Errorf("Rank(max6) = %d", got)
	}
}

func TestCounterPartitionEndingAtTop(t *testing.T) {
	// An ascending Counter pass whose final range is [240.0.0.0,
	// 255.255.255.255] — the class-E tail a real partition of the full
	// IPv4 space ends with.
	max := netaddr.KeyMax[netaddr.Addr]()
	addrs := []netaddr.Addr{10, 1 << 28, 0xF000_0001, max}
	s := FromSorted(addrs, 0)
	c := s.Counter()
	if got := c.Count(0, 1<<28-1); got != 1 {
		t.Errorf("first range = %d", got)
	}
	if got := c.Count(1<<28, 0xEFFF_FFFF); got != 1 {
		t.Errorf("middle range = %d", got)
	}
	if got := c.Count(0xF000_0000, max); got != 2 {
		t.Errorf("top range = %d, want 2", got)
	}
}
