package addrset

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tass-scan/tass/internal/netaddr"
)

// BlockSource is where a lazily-backed set's encoded payload lives.
// The set core never materializes the payload: every block fault asks
// the source for exactly that block's byte extent. Three backings
// exist: the set's own contiguous in-memory payload (no source at all —
// the historical fast path), Bytes over any in-core or mmap'd slice,
// and the census file source, which serves extents from an mmap'd
// TASSNAP2 payload or by pread on platforms without mmap.
//
// Sources must be safe for concurrent Bytes calls and must serve
// immutable data: the set retains and re-reads extents at any time.
type BlockSource interface {
	// Bytes returns the payload bytes [off, off+n). The returned slice
	// is read-only; it may alias the source's storage (mmap, in-core
	// slice) or be freshly read (pread fallback).
	Bytes(off, n int) []byte
	// Size returns the total payload length in bytes.
	Size() int
}

// Bytes is the in-core BlockSource: a payload that is already (or
// still) one byte slice — a decoded file region, an mmap'd window, a
// test fixture. Blocks stay varint-encoded inside it until first
// touched.
type Bytes []byte

// Bytes implements BlockSource by subslicing.
func (b Bytes) Bytes(off, n int) []byte { return b[off : off+n] }

// Size implements BlockSource.
func (b Bytes) Size() int { return len(b) }

// DefaultBlockCacheCap is the decoded-block residency bound of a lazy
// set when FromIndex is given a zero cache cap: at the default block
// size the cache tops out near cap×64 addresses. It may be tuned before
// sets are built.
var DefaultBlockCacheCap = 4096

// blockCache is the decoded-block LRU of one lazy set: block faults
// decode through it exactly once per residency (concurrent faults on a
// cold block share a single decode), and the least-recently-used
// decoded block is dropped once the cap is exceeded — so a full-census
// counting pass holds O(cap·blocksize) addresses resident, never the
// whole universe.
type blockCache[A netaddr.Key[A]] struct {
	mu         sync.Mutex
	cap        int
	m          map[int]*blockEntry[A]
	head, tail *blockEntry[A] // LRU list: head is most recently used

	decodes atomic.Int64
}

type blockEntry[A netaddr.Key[A]] struct {
	bi         int
	prev, next *blockEntry[A]
	once       sync.Once
	addrs      []A
}

func newBlockCache[A netaddr.Key[A]](cacheCap int) *blockCache[A] {
	if cacheCap <= 0 {
		cacheCap = DefaultBlockCacheCap
	}
	return &blockCache[A]{cap: cacheCap, m: make(map[int]*blockEntry[A])}
}

// unlink removes e from the LRU list. Callers hold c.mu.
func (c *blockCache[A]) unlink(e *blockEntry[A]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry. Callers hold c.mu.
func (c *blockCache[A]) pushFront(e *blockEntry[A]) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// get returns block bi's decoded addresses, faulting it in on first
// touch. The decode runs outside the cache lock under the entry's
// once, so concurrent faults on one cold block block on a single
// decode; eviction only drops the map reference — readers holding the
// (immutable) slice keep it alive.
func (c *blockCache[A]) get(s *SetOf[A], bi int) []A {
	c.mu.Lock()
	e, ok := c.m[bi]
	if ok {
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
	} else {
		e = &blockEntry[A]{bi: bi}
		c.m[bi] = e
		c.pushFront(e)
		if c.cap > 0 && len(c.m) > c.cap {
			evict := c.tail
			c.unlink(evict)
			delete(c.m, evict.bi)
		}
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.decodes.Add(1)
		e.addrs = s.decodeBlockInto(bi, make([]A, 0, s.blockLen(bi)))
	})
	return e.addrs
}

// len returns the resident entry count.
func (c *blockCache[A]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Lazy reports whether the set's payload lives behind a BlockSource
// (blocks decode on demand through the LRU cache) rather than in a
// contiguous in-memory slice.
func (s *SetOf[A]) Lazy() bool { return s.src != nil }

// ResidentBlocks returns the number of decoded blocks currently held by
// the lazy-decode cache (0 for an eager set): the working-set metric
// the huge-tier benchmarks record.
func (s *SetOf[A]) ResidentBlocks() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.len()
}

// Decodes returns how many block decodes the lazy cache has performed
// since construction (0 for an eager set). A cold counting pass decodes
// each touched block exactly once; re-touching resident blocks adds
// nothing.
func (s *SetOf[A]) Decodes() int64 {
	if s.cache == nil {
		return 0
	}
	return s.cache.decodes.Load()
}

// CheckBlocks fully decodes every block and validates it against the
// skip index: each block must decode without truncation, run ascending
// (multiset — equal neighbors allowed), and end exactly on its indexed
// max. It is the O(n) deep check behind census.VerifySnapshotFile —
// lazy reads trust the payload, so untrusted files go through this
// once up front.
func (s *SetOf[A]) CheckBlocks() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("addrset: %v", r)
		}
	}()
	var buf []A
	for bi := range s.mins {
		addrs := s.decodeBlockInto(bi, buf)
		buf = addrs
		for i := 1; i < len(addrs); i++ {
			if addrs[i].Compare(addrs[i-1]) < 0 {
				return fmt.Errorf("addrset: block %d not ascending at %v", bi, addrs[i])
			}
		}
		if last := addrs[len(addrs)-1]; last != s.maxs[bi] {
			return fmt.Errorf("addrset: block %d decodes to max %v, index says %v", bi, last, s.maxs[bi])
		}
	}
	return nil
}

// FromIndex assembles a lazily-decoded set from a prebuilt skip index
// over an encoded payload: per-block first/last addresses, address
// counts and encoded byte lengths, plus the BlockSource holding the
// concatenated block streams (each stream is counts[i]-1 uvarint deltas
// from mins[i] — the same layout Builder produces). The census TASSNAP2
// codec is the canonical caller: it decodes the file's block directory
// into these slices in O(blocks) and never touches the payload.
//
// FromIndex takes ownership of the index slices. cacheCap bounds the
// decoded-block LRU (0 means DefaultBlockCacheCap). The index is
// validated in O(blocks); the payload itself is trusted and only
// faulted on demand — a byte-corrupt stream surfaces as a panic at
// first decode, so untrusted files should be verified once (see
// census.VerifySnapshotFile) before lazy use.
func FromIndex[A netaddr.Key[A]](mins, maxs []A, counts, blens []int, bsize int, src BlockSource, cacheCap int) (*SetOf[A], error) {
	nb := len(mins)
	if len(maxs) != nb || len(counts) != nb || len(blens) != nb {
		return nil, fmt.Errorf("addrset: index slices disagree: %d mins, %d maxs, %d counts, %d blens",
			nb, len(maxs), len(counts), len(blens))
	}
	if bsize <= 0 {
		bsize = DefaultBlockSize
	}
	if src == nil {
		src = Bytes(nil)
	}
	s := &SetOf[A]{
		bsize: bsize,
		mins:  mins,
		maxs:  maxs,
		offs:  make([]int, nb),
		cum:   make([]int, nb+1),
		blens: make([]int, nb),
		src:   src,
	}
	off := 0
	for i := 0; i < nb; i++ {
		c, bl := counts[i], blens[i]
		if c < 1 || c > bsize {
			return nil, fmt.Errorf("addrset: block %d holds %d addresses (block size %d)", i, c, bsize)
		}
		// Every delta is 1–19 bytes; a block of c addresses encodes
		// c-1 of them.
		if bl < c-1 || bl > 19*(c-1) {
			return nil, fmt.Errorf("addrset: block %d: %d bytes cannot encode %d deltas", i, bl, c-1)
		}
		if mins[i].Compare(maxs[i]) > 0 {
			return nil, fmt.Errorf("addrset: block %d min %v above max %v", i, mins[i], maxs[i])
		}
		if c == 1 && mins[i] != maxs[i] {
			return nil, fmt.Errorf("addrset: single-address block %d spans %v-%v", i, mins[i], maxs[i])
		}
		if i > 0 && mins[i].Compare(maxs[i-1]) < 0 {
			return nil, fmt.Errorf("addrset: block %d min %v below previous max %v", i, mins[i], maxs[i-1])
		}
		s.offs[i] = off
		s.blens[i] = bl
		off += bl
		s.n += c
		s.cum[i+1] = s.n
	}
	if off != src.Size() {
		return nil, fmt.Errorf("addrset: index describes %d payload bytes, source holds %d", off, src.Size())
	}
	s.cache = newBlockCache[A](cacheCap)
	return s, nil
}
