package addrset

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tass-scan/tass/internal/netaddr"
)

// BlockSource is where a lazily-backed set's encoded payload lives.
// The set core never materializes the payload: every block fault asks
// the source for exactly that block's byte extent. Three backings
// exist: the set's own contiguous in-memory payload (no source at all —
// the historical fast path), Bytes over any in-core or mmap'd slice,
// and the census file source, which serves extents from an mmap'd
// TASSNAP2 payload or by pread on platforms without mmap.
//
// Reads can fail: a pread against a truncated file, a checksum
// mismatch in a corruption-detecting wrapper, a transient I/O error.
// Sources return the error instead of panicking; the set core wraps it
// in a *BlockError naming the block and byte extent, and the set's
// FaultPolicy decides whether the fault poisons the read or degrades
// it (see SetFaultPolicy).
//
// Sources must be safe for concurrent Bytes calls and must serve
// immutable data: the set retains and re-reads extents at any time.
type BlockSource interface {
	// Bytes returns the payload bytes [off, off+n). The returned slice
	// is read-only; it may alias the source's storage (mmap, in-core
	// slice) or be freshly read (pread fallback).
	Bytes(off, n int) ([]byte, error)
	// Size returns the total payload length in bytes.
	Size() int
}

// Bytes is the in-core BlockSource: a payload that is already (or
// still) one byte slice — a decoded file region, an mmap'd window, a
// test fixture. Blocks stay varint-encoded inside it until first
// touched.
type Bytes []byte

// Bytes implements BlockSource by subslicing.
func (b Bytes) Bytes(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > len(b) {
		return nil, fmt.Errorf("addrset: extent [%d,%d) outside %d-byte payload", off, off+n, len(b))
	}
	return b[off : off+n], nil
}

// Size implements BlockSource.
func (b Bytes) Size() int { return len(b) }

// BlockError is the typed fault of one lazy block read: the block that
// failed, the byte extent it occupies in the source payload, and the
// underlying cause (a source read error, a checksum mismatch, or a
// malformed delta stream). It localizes corruption to one block so a
// scrubber can quarantine exactly the damaged bytes.
type BlockError struct {
	// Block is the index of the failed block in the set's skip index.
	Block int
	// Off and Len are the block's byte extent within the source payload.
	Off, Len int
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *BlockError) Error() string {
	return fmt.Sprintf("addrset: block %d (payload bytes [%d,%d)): %v", e.Block, e.Off, e.Off+e.Len, e.Err)
}

// Unwrap returns the underlying cause.
func (e *BlockError) Unwrap() error { return e.Err }

// FaultPolicy selects what a lazy set does when a block read or decode
// fails: refuse the result or degrade around the damage. Faults are
// recorded either way (see Faults); the policy only decides whether
// consumers treat the result as an error.
type FaultPolicy int

const (
	// FailFast (the default) poisons reads: the first fault is recorded
	// and surfaced by ReadErr, and integrity-checking consumers
	// (selection, ranking, campaign reseeds) return it to their caller.
	FailFast FaultPolicy = iota
	// Degrade keeps counting: a damaged block contributes nothing to
	// boundary decodes (interior blocks still count exactly from the
	// CRC-verified index), the fault is recorded in Faults, and ReadErr
	// stays nil. Counts may undershoot by at most the population of the
	// damaged blocks that were touched as range boundaries.
	Degrade
)

// DefaultBlockCacheCap is the decoded-block residency bound of a lazy
// set when FromIndex is given a zero cache cap: at the default block
// size the cache tops out near cap×64 addresses. It may be tuned before
// sets are built.
var DefaultBlockCacheCap = 4096

// blockCache is the decoded-block LRU of one lazy set: block faults
// decode through it exactly once per residency (concurrent faults on a
// cold block share a single decode), and the least-recently-used
// decoded block is dropped once the cap is exceeded — so a full-census
// counting pass holds O(cap·blocksize) addresses resident, never the
// whole universe.
type blockCache[A netaddr.Key[A]] struct {
	mu         sync.Mutex
	cap        int
	m          map[int]*blockEntry[A]
	head, tail *blockEntry[A] // LRU list: head is most recently used

	decodes atomic.Int64
}

type blockEntry[A netaddr.Key[A]] struct {
	bi         int
	prev, next *blockEntry[A]
	once       sync.Once
	addrs      []A
	err        error
}

func newBlockCache[A netaddr.Key[A]](cacheCap int) *blockCache[A] {
	if cacheCap <= 0 {
		cacheCap = DefaultBlockCacheCap
	}
	return &blockCache[A]{cap: cacheCap, m: make(map[int]*blockEntry[A])}
}

// unlink removes e from the LRU list. Callers hold c.mu.
func (c *blockCache[A]) unlink(e *blockEntry[A]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry. Callers hold c.mu.
func (c *blockCache[A]) pushFront(e *blockEntry[A]) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// get returns block bi's decoded addresses, faulting it in on first
// touch. The decode runs outside the cache lock under the entry's
// once, so concurrent faults on one cold block block on a single
// decode; eviction only drops the map reference — readers holding the
// (immutable) slice keep it alive. A failed decode is never cached:
// the entry is dropped so a later touch retries, which heals faults
// that were transient (an interrupted pread) rather than data damage.
func (c *blockCache[A]) get(s *SetOf[A], bi int) ([]A, error) {
	c.mu.Lock()
	e, ok := c.m[bi]
	if ok {
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
	} else {
		e = &blockEntry[A]{bi: bi}
		c.m[bi] = e
		c.pushFront(e)
		if c.cap > 0 && len(c.m) > c.cap {
			evict := c.tail
			c.unlink(evict)
			delete(c.m, evict.bi)
		}
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.decodes.Add(1)
		e.addrs, e.err = s.decodeBlockInto(bi, make([]A, 0, s.blockLen(bi)))
	})
	if e.err != nil {
		c.mu.Lock()
		if c.m[bi] == e {
			c.unlink(e)
			delete(c.m, bi)
		}
		c.mu.Unlock()
		return nil, e.err
	}
	return e.addrs, nil
}

// len returns the resident entry count.
func (c *blockCache[A]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Lazy reports whether the set's payload lives behind a BlockSource
// (blocks decode on demand through the LRU cache) rather than in a
// contiguous in-memory slice.
func (s *SetOf[A]) Lazy() bool { return s.src != nil }

// ResidentBlocks returns the number of decoded blocks currently held by
// the lazy-decode cache (0 for an eager set): the working-set metric
// the huge-tier benchmarks record.
func (s *SetOf[A]) ResidentBlocks() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.len()
}

// Decodes returns how many block decodes the lazy cache has performed
// since construction (0 for an eager set). A cold counting pass decodes
// each touched block exactly once; re-touching resident blocks adds
// nothing.
func (s *SetOf[A]) Decodes() int64 {
	if s.cache == nil {
		return 0
	}
	return s.cache.decodes.Load()
}

// SetFaultPolicy sets how the set treats failed block reads; see
// FaultPolicy. The default is FailFast. Set it before handing the set
// to concurrent readers — the policy is not synchronized with in-flight
// reads.
func (s *SetOf[A]) SetFaultPolicy(p FaultPolicy) { s.policy = p }

// Policy returns the set's fault policy.
func (s *SetOf[A]) Policy() FaultPolicy { return s.policy }

// recordFault remembers a block fault, deduplicated by block index, so
// Faults reports each damaged block once no matter how many reads
// touched it.
func (s *SetOf[A]) recordFault(be *BlockError) {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if s.faultSeen == nil {
		s.faultSeen = make(map[int]bool)
	}
	if s.faultSeen[be.Block] {
		return
	}
	s.faultSeen[be.Block] = true
	s.faults = append(s.faults, *be)
}

// Faults returns the block faults recorded so far (deduplicated by
// block), in first-seen order. The slice is a copy. Faults are recorded
// under both policies; under Degrade this is how a surviving consumer
// learns what it skipped.
func (s *SetOf[A]) Faults() []BlockError {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if len(s.faults) == 0 {
		return nil
	}
	out := make([]BlockError, len(s.faults))
	copy(out, s.faults)
	return out
}

// ReadErr returns the error a fault-checking consumer should surface:
// under FailFast, the first recorded block fault; under Degrade, nil
// (the faults are still listed by Faults). Counting entry points in the
// census and selection layers call this after a pass over a lazy set
// and propagate the result.
func (s *SetOf[A]) ReadErr() error {
	if s.policy == Degrade {
		return nil
	}
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if len(s.faults) == 0 {
		return nil
	}
	e := s.faults[0]
	return &e
}

// readBlock decodes block bi through the cache (or directly on an eager
// set), recording any fault and returning an empty slice for a damaged
// block — the degraded-read primitive every non-error-returning
// consumer (Counter, iterator, Contains, Walk) is built on. Callers
// needing the error use decodeBlock.
func (s *SetOf[A]) readBlock(bi int, buf []A) []A {
	addrs, err := s.decodeBlock(bi, buf)
	if err != nil {
		return addrs[:0]
	}
	return addrs
}

// CheckBlocks fully decodes every block and validates it against the
// skip index: each block must decode without truncation, run ascending
// (multiset — equal neighbors allowed), and end exactly on its indexed
// max. It is the O(n) deep check behind census.VerifySnapshotFile —
// lazy reads trust the payload, so untrusted files go through this
// once up front.
func (s *SetOf[A]) CheckBlocks() error {
	var buf []A
	for bi := range s.mins {
		addrs, err := s.decodeBlockInto(bi, buf)
		if err != nil {
			return err
		}
		buf = addrs
		for i := 1; i < len(addrs); i++ {
			if addrs[i].Compare(addrs[i-1]) < 0 {
				return fmt.Errorf("addrset: block %d not ascending at %v", bi, addrs[i])
			}
		}
		if last := addrs[len(addrs)-1]; last != s.maxs[bi] {
			return fmt.Errorf("addrset: block %d decodes to max %v, index says %v", bi, last, s.maxs[bi])
		}
	}
	return nil
}

// FromIndex assembles a lazily-decoded set from a prebuilt skip index
// over an encoded payload: per-block first/last addresses, address
// counts and encoded byte lengths, plus the BlockSource holding the
// concatenated block streams (each stream is counts[i]-1 uvarint deltas
// from mins[i] — the same layout Builder produces). The census TASSNAP2
// codec is the canonical caller: it decodes the file's block directory
// into these slices in O(blocks) and never touches the payload.
//
// FromIndex takes ownership of the index slices. cacheCap bounds the
// decoded-block LRU (0 means DefaultBlockCacheCap). The index is
// validated in O(blocks); the payload itself is only faulted on demand.
// A corrupt block stream surfaces as a *BlockError at first decode —
// propagated or degraded around per the set's FaultPolicy — and every
// lazy decode is checked against the trusted index (population and max
// address), so payload damage is detected even without per-block
// checksums in the source.
func FromIndex[A netaddr.Key[A]](mins, maxs []A, counts, blens []int, bsize int, src BlockSource, cacheCap int) (*SetOf[A], error) {
	nb := len(mins)
	if len(maxs) != nb || len(counts) != nb || len(blens) != nb {
		return nil, fmt.Errorf("addrset: index slices disagree: %d mins, %d maxs, %d counts, %d blens",
			nb, len(maxs), len(counts), len(blens))
	}
	if bsize <= 0 {
		bsize = DefaultBlockSize
	}
	if src == nil {
		src = Bytes(nil)
	}
	s := &SetOf[A]{
		bsize: bsize,
		mins:  mins,
		maxs:  maxs,
		offs:  make([]int, nb),
		cum:   make([]int, nb+1),
		blens: make([]int, nb),
		src:   src,
	}
	off := 0
	for i := 0; i < nb; i++ {
		c, bl := counts[i], blens[i]
		if c < 1 || c > bsize {
			return nil, fmt.Errorf("addrset: block %d holds %d addresses (block size %d)", i, c, bsize)
		}
		// Every delta is 1–19 bytes; a block of c addresses encodes
		// c-1 of them.
		if bl < c-1 || bl > 19*(c-1) {
			return nil, fmt.Errorf("addrset: block %d: %d bytes cannot encode %d deltas", i, bl, c-1)
		}
		if mins[i].Compare(maxs[i]) > 0 {
			return nil, fmt.Errorf("addrset: block %d min %v above max %v", i, mins[i], maxs[i])
		}
		if c == 1 && mins[i] != maxs[i] {
			return nil, fmt.Errorf("addrset: single-address block %d spans %v-%v", i, mins[i], maxs[i])
		}
		if i > 0 && mins[i].Compare(maxs[i-1]) < 0 {
			return nil, fmt.Errorf("addrset: block %d min %v below previous max %v", i, mins[i], maxs[i-1])
		}
		s.offs[i] = off
		s.blens[i] = bl
		off += bl
		s.n += c
		s.cum[i+1] = s.n
	}
	if off != src.Size() {
		return nil, fmt.Errorf("addrset: index describes %d payload bytes, source holds %d", off, src.Size())
	}
	s.cache = newBlockCache[A](cacheCap)
	return s, nil
}
