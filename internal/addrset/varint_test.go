package addrset

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// encodeUvarints encodes vals with binary.PutUvarint — the ground-truth
// encoder both decoders must invert.
func encodeUvarints(vals []uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	out := make([]byte, 0, len(vals))
	for _, v := range vals {
		out = append(out, buf[:binary.PutUvarint(buf[:], v)]...)
	}
	return out
}

// varintEdgeValues covers every encoded length (1–10 bytes) and both
// sides of each length boundary.
func varintEdgeValues() []uint64 {
	vals := []uint64{0, 1, math.MaxUint64, math.MaxUint64 - 1}
	for g := 1; g <= 9; g++ {
		b := uint64(1) << (7 * g) // first value needing g+1 bytes
		vals = append(vals, b-1, b, b+1)
	}
	return vals
}

func checkDecoders(t *testing.T, vals []uint64, src []byte) {
	t.Helper()
	gotB := make([]uint64, len(vals))
	gotS := make([]uint64, len(vals))
	nB := DecodeUvarints(gotB, src)
	nS := decodeUvarintsScalar(gotS, src)
	if nB != nS {
		t.Fatalf("consumed bytes disagree: batch=%d scalar=%d (n=%d)", nB, nS, len(vals))
	}
	if nB < 0 {
		return
	}
	for i := range vals {
		if gotB[i] != gotS[i] || gotB[i] != vals[i] {
			t.Fatalf("value %d: batch=%d scalar=%d want=%d", i, gotB[i], gotS[i], vals[i])
		}
	}
}

func TestDecodeUvarintsEdges(t *testing.T) {
	edges := varintEdgeValues()
	// Every edge value alone, and the full edge sequence in order and
	// reversed (exercises window carry-over between long and short
	// values).
	for _, v := range edges {
		checkDecoders(t, []uint64{v}, encodeUvarints([]uint64{v}))
	}
	checkDecoders(t, edges, encodeUvarints(edges))
	rev := make([]uint64, len(edges))
	for i, v := range edges {
		rev[len(edges)-1-i] = v
	}
	checkDecoders(t, rev, encodeUvarints(rev))
}

func TestDecodeUvarintsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(200)
		vals := make([]uint64, n)
		for i := range vals {
			// Bias toward census-shaped small deltas but cover the full
			// 64-bit range: pick a random bit width first.
			w := rng.Intn(64) + 1
			vals[i] = rng.Uint64() >> (64 - w)
		}
		src := encodeUvarints(vals)
		checkDecoders(t, vals, src)

		// Trailing garbage after the requested count must not change
		// the decode or the consumed-byte count.
		padded := append(append([]byte{}, src...), 0xff, 0xff, 0x01, 0x00)
		got := make([]uint64, n)
		if c := DecodeUvarints(got, padded); c != len(src) {
			t.Fatalf("trial %d: consumed %d of padded stream, want %d", trial, c, len(src))
		}
	}
}

func TestDecodeUvarintsTruncated(t *testing.T) {
	vals := []uint64{1, 300, 1 << 40, math.MaxUint64, 7}
	src := encodeUvarints(vals)
	for cut := 0; cut < len(src); cut++ {
		dst := make([]uint64, len(vals))
		nB := DecodeUvarints(dst, src[:cut])
		nS := decodeUvarintsScalar(make([]uint64, len(vals)), src[:cut])
		if nB != nS {
			t.Fatalf("cut %d: batch=%d scalar=%d", cut, nB, nS)
		}
		if nB != -1 {
			t.Fatalf("cut %d: decoded %d values from truncated stream", cut, nB)
		}
	}
}

func TestDecodeUvarintsOverflow(t *testing.T) {
	// 11 continuation bytes: overflows uint64 in both decoders.
	src := bytes.Repeat([]byte{0x80}, 11)
	src = append(src, 0x01)
	if n := DecodeUvarints(make([]uint64, 1), src); n != -1 {
		t.Fatalf("batch accepted overflowing varint: %d", n)
	}
	if n := decodeUvarintsScalar(make([]uint64, 1), src); n != -1 {
		t.Fatalf("scalar accepted overflowing varint: %d", n)
	}
}

func TestDecodeUvarintsEmpty(t *testing.T) {
	if n := DecodeUvarints(nil, nil); n != 0 {
		t.Fatalf("empty decode consumed %d", n)
	}
	if n := DecodeUvarints(nil, []byte{0x05}); n != 0 {
		t.Fatalf("zero-count decode consumed %d", n)
	}
}

func FuzzDecodeUvarints(f *testing.F) {
	f.Add([]byte{0x00}, uint8(1))
	f.Add(encodeUvarints([]uint64{1, 300, 1 << 40, math.MaxUint64}), uint8(4))
	f.Add(bytes.Repeat([]byte{0x80}, 12), uint8(1))
	f.Fuzz(func(t *testing.T, src []byte, n uint8) {
		dstB := make([]uint64, n)
		dstS := make([]uint64, n)
		nB := DecodeUvarints(dstB, src)
		nS := decodeUvarintsScalar(dstS, src)
		if nB != nS {
			t.Fatalf("consumed: batch=%d scalar=%d", nB, nS)
		}
		if nB < 0 {
			return
		}
		for i := range dstB {
			if dstB[i] != dstS[i] {
				t.Fatalf("value %d: batch=%d scalar=%d", i, dstB[i], dstS[i])
			}
		}
	})
}
