package addrset

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
)

// lazyTwin rebuilds an eager, overlay-free set as a lazy one over the
// same payload bytes: identical index, Bytes source, given cache cap.
func lazyTwin(t *testing.T, s *Set, cacheCap int) *Set {
	t.Helper()
	if s.mods != nil {
		t.Fatal("lazyTwin wants an overlay-free set")
	}
	nb := s.Blocks()
	counts := make([]int, nb)
	blens := make([]int, nb)
	for i := 0; i < nb; i++ {
		counts[i] = s.blockLen(i)
		end := len(s.data)
		if i+1 < nb {
			end = s.offs[i+1]
		}
		blens[i] = end - s.offs[i]
	}
	lazy, err := FromIndex(
		append([]netaddr.Addr(nil), s.mins...),
		append([]netaddr.Addr(nil), s.maxs...),
		counts, blens, s.bsize, Bytes(s.data), cacheCap)
	if err != nil {
		t.Fatalf("FromIndex: %v", err)
	}
	return lazy
}

func randomAddrs(rng *rand.Rand, n int) []netaddr.Addr {
	addrs := make([]netaddr.Addr, n)
	v := uint32(rng.Intn(1000))
	for i := range addrs {
		addrs[i] = netaddr.Addr(v)
		v += uint32(rng.Intn(5000)) // gaps of 0 (duplicates) to 4999
	}
	return addrs
}

func TestLazyEqualsEager(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		addrs := randomAddrs(rng, 1+rng.Intn(3000))
		eager := FromSorted(addrs, 0)
		for _, cap := range []int{1, 3, 0} {
			lazy := lazyTwin(t, eager, cap)
			if !lazy.Lazy() || eager.Lazy() {
				t.Fatal("Lazy() misreports backing")
			}
			if lazy.Len() != eager.Len() || lazy.Blocks() != eager.Blocks() {
				t.Fatalf("shape mismatch: %d/%d vs %d/%d",
					lazy.Len(), lazy.Blocks(), eager.Len(), eager.Blocks())
			}
			if got, want := lazy.AppendTo(nil), eager.AppendTo(nil); len(got) != len(want) {
				t.Fatalf("AppendTo length %d want %d", len(got), len(want))
			} else {
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("AppendTo[%d] = %v want %v", i, got[i], want[i])
					}
				}
			}
			ce, cl := eager.Counter(), lazy.Counter()
			lo := netaddr.Addr(0)
			for lo < addrs[len(addrs)-1] {
				hi := lo + netaddr.Addr(rng.Intn(1<<14))
				if ge, gl := ce.Count(lo, hi), cl.Count(lo, hi); ge != gl {
					t.Fatalf("Count[%v,%v] eager=%d lazy=%d (cap %d)", lo, hi, ge, gl, cap)
				}
				lo = hi + 1 + netaddr.Addr(rng.Intn(1<<12))
			}
			for i := 0; i < 200; i++ {
				a := netaddr.Addr(rng.Intn(int(addrs[len(addrs)-1]) + 10))
				if eager.Contains(a) != lazy.Contains(a) {
					t.Fatalf("Contains(%v) disagrees", a)
				}
			}
			if ge, gl := eager.IntersectCount(eager), lazy.IntersectCount(eager); ge != gl {
				t.Fatalf("IntersectCount eager=%d lazy=%d", ge, gl)
			}
		}
	}
}

func TestLazyApplyDeltaEqualsEager(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		// Duplicate-free base so delta preconditions are easy to build.
		base := make([]netaddr.Addr, 0, 2000)
		v := uint32(0)
		for len(base) < 2000 {
			v += 1 + uint32(rng.Intn(4000))
			base = append(base, netaddr.Addr(v))
		}
		eager := FromSorted(base, 0)
		lazy := lazyTwin(t, eager, 4)

		var born, died []netaddr.Addr
		present := make(map[netaddr.Addr]bool, len(base))
		for _, a := range base {
			present[a] = true
			if rng.Intn(10) == 0 {
				died = append(died, a)
			}
		}
		for i := 0; i < 150; i++ {
			a := netaddr.Addr(rng.Intn(int(v) + 100000))
			if !present[a] {
				present[a] = true
				born = append(born, a)
			}
		}
		sortAddrs(born)

		we, err := eager.ApplyDelta(born, died)
		if err != nil {
			t.Fatalf("eager ApplyDelta: %v", err)
		}
		wl, err := lazy.ApplyDelta(born, died)
		if err != nil {
			t.Fatalf("lazy ApplyDelta: %v", err)
		}
		ge, gl := we.AppendTo(nil), wl.AppendTo(nil)
		if len(ge) != len(gl) {
			t.Fatalf("ApplyDelta lengths differ: %d vs %d", len(ge), len(gl))
		}
		for i := range ge {
			if ge[i] != gl[i] {
				t.Fatalf("ApplyDelta[%d] = %v want %v", i, gl[i], ge[i])
			}
		}
		// A second delta on the child exercises carried blens/mods.
		born2 := []netaddr.Addr{netaddr.Addr(v + 200000)}
		we2, err := we.ApplyDelta(born2, nil)
		if err != nil {
			t.Fatalf("eager second ApplyDelta: %v", err)
		}
		wl2, err := wl.ApplyDelta(born2, nil)
		if err != nil {
			t.Fatalf("lazy second ApplyDelta: %v", err)
		}
		if we2.Len() != wl2.Len() {
			t.Fatalf("second ApplyDelta lengths differ: %d vs %d", we2.Len(), wl2.Len())
		}
	}
}

func sortAddrs(a []netaddr.Addr) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestLazySingleflight faults the same cold block from 8 goroutines and
// checks it decodes exactly once. Run under -race in CI.
func TestLazySingleflight(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	addrs := randomAddrs(rng, 64) // exactly one default-size block
	eager := FromSorted(addrs, 0)
	lazy := lazyTwin(t, eager, 8)
	want := eager.CountRange(addrs[0], addrs[len(addrs)-1])

	var start, done sync.WaitGroup
	start.Add(1)
	for g := 0; g < 8; g++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			if got := lazy.CountRange(addrs[0], addrs[len(addrs)-1]); got != want {
				t.Errorf("CountRange = %d want %d", got, want)
			}
		}()
	}
	start.Done()
	done.Wait()
	if n := lazy.Decodes(); n != 1 {
		t.Fatalf("cold block decoded %d times, want 1 (singleflight)", n)
	}
	if n := lazy.ResidentBlocks(); n != 1 {
		t.Fatalf("ResidentBlocks = %d want 1", n)
	}
}

// TestLazyLRUEvictionUnderRead hammers a tiny cache from concurrent
// readers: counts must stay exact while blocks are evicted and
// re-faulted under their feet, and residency must respect the cap.
func TestLazyLRUEvictionUnderRead(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	addrs := randomAddrs(rng, 64*32) // 32 blocks
	eager := FromSorted(addrs, 0)
	lazy := lazyTwin(t, eager, 2) // thrashes constantly

	type rangeCase struct {
		lo, hi netaddr.Addr
		want   int
	}
	cases := make([]rangeCase, 64)
	for i := range cases {
		lo := addrs[rng.Intn(len(addrs))]
		hi := lo + netaddr.Addr(rng.Intn(1<<16))
		cases[i] = rangeCase{lo, hi, eager.CountRange(lo, hi)}
	}

	var done sync.WaitGroup
	for g := 0; g < 8; g++ {
		done.Add(1)
		go func(g int) {
			defer done.Done()
			for rep := 0; rep < 20; rep++ {
				for i, c := range cases {
					if got := lazy.CountRange(c.lo, c.hi); got != c.want {
						t.Errorf("g%d case %d: CountRange = %d want %d", g, i, got, c.want)
						return
					}
				}
			}
		}(g)
	}
	done.Wait()
	if n := lazy.ResidentBlocks(); n > 2 {
		t.Fatalf("ResidentBlocks = %d exceeds cap 2", n)
	}
	if lazy.Decodes() <= 32 {
		t.Logf("decodes = %d (no eviction pressure?)", lazy.Decodes())
	}
}

func TestFromIndexValidation(t *testing.T) {
	mk := func() ([]netaddr.Addr, []netaddr.Addr, []int, []int, BlockSource) {
		// Two valid blocks: {10, 11} and {20}.
		return []netaddr.Addr{10, 20}, []netaddr.Addr{11, 20},
			[]int{2, 1}, []int{1, 0}, Bytes([]byte{0x01})
	}

	mins, maxs, counts, blens, src := mk()
	if _, err := FromIndex(mins, maxs, counts, blens, 64, src, 0); err != nil {
		t.Fatalf("valid index rejected: %v", err)
	}

	mins, maxs, counts, blens, src = mk()
	counts[0] = 0
	if _, err := FromIndex(mins, maxs, counts, blens, 64, src, 0); err == nil {
		t.Fatal("zero-count block accepted")
	}

	mins, maxs, counts, blens, src = mk()
	counts[0] = 65
	if _, err := FromIndex(mins, maxs, counts, blens, 64, src, 0); err == nil {
		t.Fatal("over-populated block accepted")
	}

	mins, maxs, counts, blens, src = mk()
	blens[0] = 0
	if _, err := FromIndex(mins, maxs, counts, blens, 64, src, 0); err == nil {
		t.Fatal("impossible byte length accepted")
	}

	mins, maxs, counts, blens, src = mk()
	mins[1] = 5 // below previous max
	if _, err := FromIndex(mins, maxs, counts, blens, 64, src, 0); err == nil {
		t.Fatal("unsorted blocks accepted")
	}

	mins, maxs, counts, blens, _ = mk()
	if _, err := FromIndex(mins, maxs, counts, blens, 64, Bytes([]byte{0x01, 0x02}), 0); err == nil {
		t.Fatal("payload size mismatch accepted")
	}

	mins, maxs, counts, _, src = mk()
	if _, err := FromIndex(mins, maxs, counts, []int{1}, 64, src, 0); err == nil {
		t.Fatal("short blens accepted")
	}
}
