package rib

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/pfx2as"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

func entries(ss ...string) []Entry {
	out := make([]Entry, len(ss))
	for i, s := range ss {
		out[i] = Entry{Prefix: pfx(s), Origin: pfx2as.SingleOrigin(uint32(i + 1))}
	}
	return out
}

func TestTableSortDedup(t *testing.T) {
	tb := New(entries("10.0.0.0/8", "9.0.0.0/8", "10.0.0.0/8", "10.16.0.0/12"))
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
	got := tb.Prefixes()
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "10.16.0.0/12"}
	for i := range want {
		if got[i].String() != want[i] {
			t.Fatalf("Prefixes = %v", got)
		}
	}
	// Last duplicate's origin wins.
	if asn, _ := tb.Entries()[1].Origin.Primary(); asn != 3 {
		t.Errorf("dedup kept origin %d", asn)
	}
}

func TestLessSpecificsAndDeaggregated(t *testing.T) {
	tb := New(entries("100.0.0.0/8", "100.16.0.0/12", "203.0.113.0/24"))
	l := tb.LessSpecifics()
	if l.Len() != 2 {
		t.Fatalf("l-partition %v", l.Prefixes())
	}
	if l.AddressCount() != pfx("100.0.0.0/8").NumAddresses()+256 {
		t.Errorf("l space %d", l.AddressCount())
	}
	m := tb.Deaggregated()
	// /8 around /12 -> 5 pieces, plus the /24.
	if m.Len() != 6 {
		t.Fatalf("m-partition %v", m.Prefixes())
	}
	if m.AddressCount() != l.AddressCount() {
		t.Errorf("partitions must cover the same space: %d vs %d",
			m.AddressCount(), l.AddressCount())
	}
	if tb.AnnouncedSpace() != l.AddressCount() {
		t.Errorf("AnnouncedSpace = %d", tb.AnnouncedSpace())
	}
}

func TestStats(t *testing.T) {
	tb := New(entries(
		"100.0.0.0/8",    // l
		"100.16.0.0/12",  // m (inside /8)
		"100.16.0.0/16",  // m (nested)
		"203.0.113.0/24", // l
	))
	s := tb.Stats()
	if s.Prefixes != 4 || s.MoreSpecifics != 2 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.MoreShare != 0.5 {
		t.Errorf("MoreShare = %v", s.MoreShare)
	}
	wantMoreSpace := pfx("100.16.0.0/12").NumAddresses() // /16 nested inside /12
	if s.MoreSpace != wantMoreSpace {
		t.Errorf("MoreSpace = %d, want %d", s.MoreSpace, wantMoreSpace)
	}
	if s.Space != pfx("100.0.0.0/8").NumAddresses()+256 {
		t.Errorf("Space = %d", s.Space)
	}
}

func TestNewPartitionRejectsOverlap(t *testing.T) {
	if _, err := NewPartition([]netaddr.Prefix{pfx("10.0.0.0/8"), pfx("10.16.0.0/12")}); err == nil {
		t.Error("overlapping prefixes must be rejected")
	}
	p, err := NewPartition([]netaddr.Prefix{pfx("10.0.0.0/9"), pfx("10.128.0.0/9")})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.AddressCount() != 1<<24 {
		t.Errorf("partition %v space %d", p.Prefixes(), p.AddressCount())
	}
}

func TestPartitionFind(t *testing.T) {
	p, err := NewPartition([]netaddr.Prefix{
		pfx("10.0.0.0/8"), pfx("100.64.0.0/10"), pfx("203.0.113.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr string
		idx  int
		ok   bool
	}{
		{"10.1.2.3", 0, true},
		{"10.0.0.0", 0, true},
		{"10.255.255.255", 0, true},
		{"100.64.0.0", 1, true},
		{"100.127.255.255", 1, true},
		{"100.128.0.0", 0, false},
		{"203.0.113.77", 2, true},
		{"203.0.114.0", 0, false},
		{"9.255.255.255", 0, false},
		{"0.0.0.0", 0, false},
		{"255.255.255.255", 0, false},
	}
	for _, c := range cases {
		idx, ok := p.Find(netaddr.MustParseAddr(c.addr))
		if ok != c.ok || (ok && idx != c.idx) {
			t.Errorf("Find(%s) = %d, %v; want %d, %v", c.addr, idx, ok, c.idx, c.ok)
		}
	}
}

func TestCountAddrsAgainstFind(t *testing.T) {
	// CountAddrs (merge walk) must agree with per-address Find.
	rng := rand.New(rand.NewSource(3))
	var ps []netaddr.Prefix
	cursor := uint64(0)
	for cursor < 1<<32 && len(ps) < 200 {
		bits := 10 + rng.Intn(15)
		size := uint64(1) << (32 - uint(bits))
		cursor = (cursor + size - 1) / size * size // align
		if cursor+size > 1<<32 {
			break
		}
		if rng.Intn(3) > 0 { // leave gaps
			ps = append(ps, netaddr.MustPrefixFrom(netaddr.Addr(cursor), bits))
		}
		cursor += size * uint64(1+rng.Intn(4))
	}
	part, err := NewPartition(ps)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]netaddr.Addr, 5000)
	for i := range addrs {
		addrs[i] = netaddr.Addr(rng.Uint32())
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	counts, outside := part.CountAddrs(addrs)
	wantCounts := make([]int, part.Len())
	wantOutside := 0
	for _, a := range addrs {
		if i, ok := part.Find(a); ok {
			wantCounts[i]++
		} else {
			wantOutside++
		}
	}
	if outside != wantOutside {
		t.Fatalf("outside = %d, want %d", outside, wantOutside)
	}
	for i := range counts {
		if counts[i] != wantCounts[i] {
			t.Fatalf("counts[%d] = %d, want %d", i, counts[i], wantCounts[i])
		}
	}
}

// TestCountAddrsSetMatchesMergeWalk property-tests the block-index
// range-count path against the merge walk on random partitions and
// address sets (dense overlaps, gaps, outside addresses, duplicates).
func TestCountAddrsSetMatchesMergeWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var ps []netaddr.Prefix
		cursor := uint64(rng.Intn(1 << 20))
		for cursor < 1<<32 && len(ps) < 150 {
			bits := 8 + rng.Intn(17)
			size := uint64(1) << (32 - uint(bits))
			cursor = (cursor + size - 1) / size * size
			if cursor+size > 1<<32 {
				break
			}
			if rng.Intn(4) > 0 {
				ps = append(ps, netaddr.MustPrefixFrom(netaddr.Addr(cursor), bits))
			}
			cursor += size * uint64(1+rng.Intn(3))
		}
		part, err := NewPartition(ps)
		if err != nil {
			t.Fatal(err)
		}
		addrs := make([]netaddr.Addr, 2000)
		for i := range addrs {
			addrs[i] = netaddr.Addr(rng.Uint32())
		}
		addrs[10] = addrs[11] // keep a duplicate in play
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

		for _, bs := range []int{1, 16, 256} {
			set := addrset.FromSorted(addrs, bs)
			gotCounts, gotOutside := part.CountAddrsSet(set)
			wantCounts, wantOutside := part.CountAddrs(addrs)
			if gotOutside != wantOutside {
				t.Fatalf("trial %d bs=%d: outside = %d, want %d", trial, bs, gotOutside, wantOutside)
			}
			for i := range wantCounts {
				if gotCounts[i] != wantCounts[i] {
					t.Fatalf("trial %d bs=%d: counts[%d] = %d, want %d (prefix %v)",
						trial, bs, i, gotCounts[i], wantCounts[i], part.Prefix(i))
				}
			}
		}
	}
}

func TestSubset(t *testing.T) {
	p, _ := NewPartition([]netaddr.Prefix{
		pfx("10.0.0.0/8"), pfx("100.64.0.0/10"), pfx("203.0.113.0/24"),
	})
	s := p.Subset([]int{2, 0})
	if s.Len() != 2 {
		t.Fatalf("Subset len %d", s.Len())
	}
	if s.Prefix(0) != pfx("10.0.0.0/8") || s.Prefix(1) != pfx("203.0.113.0/24") {
		t.Errorf("Subset = %v", s.Prefixes())
	}
	if s.AddressCount() != pfx("10.0.0.0/8").NumAddresses()+256 {
		t.Errorf("Subset space %d", s.AddressCount())
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	tb := New(entries("10.0.0.0/8", "100.64.0.0/10"))
	back := FromRecords(tb.Records())
	if back.Len() != tb.Len() {
		t.Fatalf("round trip len %d", back.Len())
	}
	for i := range tb.Entries() {
		if back.Entries()[i].Prefix != tb.Entries()[i].Prefix {
			t.Fatal("prefix mismatch")
		}
	}
}

func BenchmarkCountAddrs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var ps []netaddr.Prefix
	for i := 0; i < 4096; i++ {
		ps = append(ps, netaddr.MustPrefixFrom(netaddr.Addr(uint32(i)<<20), 12))
	}
	part, err := NewPartition(ps)
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]netaddr.Addr, 1<<20)
	for i := range addrs {
		addrs[i] = netaddr.Addr(rng.Uint32())
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part.CountAddrs(addrs)
	}
}

// TestOriginsOf maps partition prefixes back to origin ASes: the most
// specific announcement wins, and prefixes no announcement covers map
// to origin 0.
func TestOriginsOf(t *testing.T) {
	// entries() assigns origin AS i+1 in order: 10/8 -> AS1, the
	// more-specific 10.1/16 -> AS2, 20/8 -> AS3.
	tb := New(entries("10.0.0.0/8", "10.1.0.0/16", "20.0.0.0/8"))
	part, err := NewPartition([]netaddr.Prefix{
		pfx("10.0.0.0/16"), // covered by 10/8 only
		pfx("10.1.2.0/24"), // inside the more-specific: AS2, not AS1
		pfx("20.5.0.0/16"), // covered by 20/8
		pfx("30.0.0.0/8"),  // unannounced
	})
	if err != nil {
		t.Fatal(err)
	}
	got := tb.OriginsOf(part)
	want := []uint32{1, 2, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("prefix %v -> AS%d, want AS%d", part.Prefix(i), got[i], want[i])
		}
	}
}
