package rib

import (
	"testing"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/netaddr"
)

// Partitions whose last prefix ends at the top of the address space
// exercise the cached range bounds (lasts[last] is all-ones, so
// last-first arithmetic runs against the widest ranges) and the
// counting walks' upper boundary. Pinned for both families.

func TestPartitionEndingAtTopV4(t *testing.T) {
	max := netaddr.KeyMax[netaddr.Addr]()
	part, err := NewPartition([]netaddr.Prefix{
		pfx("0.0.0.0/8"), pfx("128.0.0.0/2"), pfx("240.0.0.0/4"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := part.LastAt(2); got != max {
		t.Errorf("LastAt(last) = %v, want 255.255.255.255", got)
	}
	if got := part.AddressCount(); got != 1<<24+1<<30+1<<28 {
		t.Errorf("AddressCount = %d", got)
	}
	if i, ok := part.Find(max); !ok || i != 2 {
		t.Errorf("Find(max) = %d, %v", i, ok)
	}
	if _, ok := part.Find(netaddr.MustParseAddr("239.255.255.255")); ok {
		t.Error("Find just below the top prefix succeeded")
	}
	addrs := []netaddr.Addr{1, 0xF0000000, max}
	counts, outside := part.CountAddrs(addrs)
	if counts[2] != 2 || outside != 0 {
		t.Errorf("CountAddrs = %v, outside %d", counts, outside)
	}
	counts, outside = part.CountAddrsSet(addrset.FromSorted(addrs, 0))
	if counts[2] != 2 || outside != 0 {
		t.Errorf("CountAddrsSet = %v, outside %d", counts, outside)
	}
}

func TestPartitionEndingAtTopV6(t *testing.T) {
	max := netaddr.KeyMax[netaddr.Addr6]()
	top := netaddr.MustPfxFrom(netaddr.Addr6{Hi: 0xF000_0000_0000_0000}, 4)
	part, err := NewPartition([]netaddr.Prefix6{
		netaddr.MustPfxFrom(netaddr.Addr6{Hi: 0x2000 << 48}, 3), top,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := part.LastAt(1); got != max {
		t.Errorf("LastAt(last) = %v, want all-ones", got)
	}
	// Both prefixes are wider than 2^64 addresses: the total saturates.
	if got := part.AddressCount(); got != ^uint64(0) {
		t.Errorf("AddressCount = %d, want saturated", got)
	}
	if i, ok := part.Find(max); !ok || i != 1 {
		t.Errorf("Find(max6) = %d, %v", i, ok)
	}
	addrs := []netaddr.Addr6{{Hi: 0x2000 << 48, Lo: 1}, {Hi: ^uint64(0), Lo: 5}, max}
	counts, outside := part.CountAddrs(addrs)
	if counts[0] != 1 || counts[1] != 2 || outside != 0 {
		t.Errorf("CountAddrs = %v, outside %d", counts, outside)
	}
	counts, outside = part.CountAddrsSet(addrset.FromSorted(addrs, 0))
	if counts[0] != 1 || counts[1] != 2 || outside != 0 {
		t.Errorf("CountAddrsSet = %v, outside %d", counts, outside)
	}
}

// TestFullSpacePartition pins the widest possible universe: the /0
// root as a single partition element.
func TestFullSpacePartition(t *testing.T) {
	part, err := NewPartition([]netaddr.Prefix{{}})
	if err != nil {
		t.Fatal(err)
	}
	if got := part.AddressCount(); got != 1<<32 {
		t.Errorf("AddressCount = %d", got)
	}
	max := netaddr.KeyMax[netaddr.Addr]()
	for _, a := range []netaddr.Addr{0, 1 << 31, max} {
		if i, ok := part.Find(a); !ok || i != 0 {
			t.Errorf("Find(%v) = %d, %v", a, i, ok)
		}
	}
	counts, outside := part.CountAddrs([]netaddr.Addr{0, max})
	if counts[0] != 2 || outside != 0 {
		t.Errorf("CountAddrs = %v, outside %d", counts, outside)
	}
}
