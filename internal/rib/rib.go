// Package rib models an announced-prefix table (a BGP RIB reduced to its
// prefixes) and derives the two prefix universes the TASS paper compares:
//
//   - the l-prefix view: only less-specific (maximal) announced prefixes,
//   - the m-prefix view: the announced table deaggregated around its
//     more-specifics into a minimal disjoint partition (Figure 2).
//
// Both views are Partitions: sorted, pairwise-disjoint prefix sets that
// support O(log n) point location and O(n+m) bulk host counting, the two
// operations the selection algorithm and the evaluation harness live on.
package rib

import (
	"errors"
	"fmt"
	"sort"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/pfx2as"
	"github.com/tass-scan/tass/internal/trie"
)

// Entry is one announced prefix with its origin annotation.
type Entry struct {
	Prefix netaddr.Prefix
	Origin pfx2as.Origin
}

// Table is an announced-prefix table. Entries are kept sorted by
// (address, length); duplicates are collapsed (last origin wins).
type Table struct {
	entries []Entry

	// Lazily derived views.
	less  *Partition
	deagg *Partition
}

// New builds a Table from entries. The input is copied, sorted and
// de-duplicated.
func New(entries []Entry) *Table {
	es := make([]Entry, len(entries))
	copy(es, entries)
	sort.Slice(es, func(i, j int) bool { return es[i].Prefix.Compare(es[j].Prefix) < 0 })
	out := es[:0]
	for _, e := range es {
		if n := len(out); n > 0 && out[n-1].Prefix == e.Prefix {
			out[n-1].Origin = e.Origin
			continue
		}
		out = append(out, e)
	}
	return &Table{entries: out}
}

// FromRecords builds a Table from pfx2as records.
func FromRecords(records []pfx2as.Record) *Table {
	es := make([]Entry, len(records))
	for i, r := range records {
		es[i] = Entry{Prefix: r.Prefix, Origin: r.Origin}
	}
	return New(es)
}

// Records converts the table back into pfx2as records.
func (t *Table) Records() []pfx2as.Record {
	out := make([]pfx2as.Record, len(t.entries))
	for i, e := range t.entries {
		out[i] = pfx2as.Record{Prefix: e.Prefix, Origin: e.Origin}
	}
	return out
}

// Len returns the number of announced prefixes.
func (t *Table) Len() int { return len(t.entries) }

// Entries returns the sorted announced entries. The slice is shared; do
// not modify it.
func (t *Table) Entries() []Entry { return t.entries }

// Prefixes returns the announced prefixes in sorted order.
func (t *Table) Prefixes() []netaddr.Prefix {
	out := make([]netaddr.Prefix, len(t.entries))
	for i, e := range t.entries {
		out[i] = e.Prefix
	}
	return out
}

// LessSpecifics returns the l-prefix view: the maximal announced prefixes,
// with every prefix covered by another announcement dropped.
func (t *Table) LessSpecifics() Partition {
	if t.less == nil {
		p := mustPartition(trie.LessSpecificOnly(t.Prefixes()))
		t.less = &p
	}
	return *t.less
}

// Deaggregated returns the m-prefix view: the minimal disjoint partition
// produced by decomposing every l-prefix around its announced
// more-specifics (paper Figure 2).
func (t *Table) Deaggregated() Partition {
	if t.deagg == nil {
		p := mustPartition(trie.Deaggregate(t.Prefixes()))
		t.deagg = &p
	}
	return *t.deagg
}

// AnnouncedSpace returns the number of addresses covered by the table
// (the union of all announcements).
func (t *Table) AnnouncedSpace() uint64 {
	return t.LessSpecifics().AddressCount()
}

// Stats summarizes the aggregation structure of a table, mirroring the
// numbers the paper reports for the CAIDA dataset of 2015-09-07
// (595,644 prefixes, 54% more-specifics covering 34.4% of the space).
type Stats struct {
	Prefixes       int     // total announced prefixes
	MoreSpecifics  int     // prefixes covered by another announcement
	MoreShare      float64 // MoreSpecifics / Prefixes
	Space          uint64  // announced address space (union)
	MoreSpace      uint64  // space covered by more-specifics (union)
	MoreSpaceShare float64 // MoreSpace / Space
}

// Stats computes aggregation statistics for the table.
func (t *Table) Stats() Stats {
	tr := trie.New[struct{}]()
	for _, e := range t.entries {
		tr.Insert(e.Prefix, struct{}{})
	}
	var more []netaddr.Prefix
	for _, e := range t.entries {
		// A prefix is a more-specific iff some announcement strictly
		// contains it, i.e. iff its parent has an announced cover.
		if par, ok := e.Prefix.Parent(); ok {
			if _, _, found := tr.LookupPrefix(par); found {
				more = append(more, e.Prefix)
			}
		}
	}
	s := Stats{
		Prefixes:      len(t.entries),
		MoreSpecifics: len(more),
		Space:         t.AnnouncedSpace(),
	}
	if s.Prefixes > 0 {
		s.MoreShare = float64(s.MoreSpecifics) / float64(s.Prefixes)
	}
	moreUnion := mustPartition(trie.LessSpecificOnly(more))
	s.MoreSpace = moreUnion.AddressCount()
	if s.Space > 0 {
		s.MoreSpaceShare = float64(s.MoreSpace) / float64(s.Space)
	}
	return s
}

// Partition is a sorted, pairwise-disjoint set of prefixes: one of the
// paper's two scanning universes. The zero value is an empty partition.
type Partition struct {
	prefixes []netaddr.Prefix
	firsts   []netaddr.Addr // parallel cache of prefix network addresses
	space    uint64
}

// ErrNotPartition is returned by NewPartition when prefixes overlap.
var ErrNotPartition = errors.New("rib: prefixes overlap")

// NewPartition validates that ps is pairwise disjoint and builds a
// Partition. The input is copied and sorted.
func NewPartition(ps []netaddr.Prefix) (Partition, error) {
	cp := make([]netaddr.Prefix, len(ps))
	copy(cp, ps)
	netaddr.SortPrefixes(cp)
	for i := 1; i < len(cp); i++ {
		if cp[i-1].Overlaps(cp[i]) {
			return Partition{}, fmt.Errorf("%w: %v and %v", ErrNotPartition, cp[i-1], cp[i])
		}
	}
	return newPartitionSorted(cp), nil
}

func mustPartition(sorted []netaddr.Prefix) Partition {
	return newPartitionSorted(sorted)
}

func newPartitionSorted(sorted []netaddr.Prefix) Partition {
	firsts := make([]netaddr.Addr, len(sorted))
	var space uint64
	for i, p := range sorted {
		firsts[i] = p.First()
		space += p.NumAddresses()
	}
	return Partition{prefixes: sorted, firsts: firsts, space: space}
}

// Len returns the number of prefixes in the partition.
func (p Partition) Len() int { return len(p.prefixes) }

// Prefix returns the i-th prefix in sorted order.
func (p Partition) Prefix(i int) netaddr.Prefix { return p.prefixes[i] }

// Prefixes returns the sorted prefixes. The slice is shared; do not
// modify it.
func (p Partition) Prefixes() []netaddr.Prefix { return p.prefixes }

// AddressCount returns the total number of addresses covered.
func (p Partition) AddressCount() uint64 { return p.space }

// Find locates the partition prefix containing a and returns its index.
func (p Partition) Find(a netaddr.Addr) (int, bool) {
	// Rightmost prefix whose first address is <= a.
	i := sort.Search(len(p.firsts), func(i int) bool { return p.firsts[i] > a })
	if i == 0 {
		return 0, false
	}
	i--
	if p.prefixes[i].Contains(a) {
		return i, true
	}
	return 0, false
}

// CountAddrs counts, for each partition prefix, how many of the given
// addresses it contains. addrs must be sorted ascending. The returned
// slice is indexed like Prefix(i); the second result is the number of
// addresses that fell outside the partition.
func (p Partition) CountAddrs(addrs []netaddr.Addr) (counts []int, outside int) {
	counts = make([]int, len(p.prefixes))
	i := 0 // partition cursor
	for _, a := range addrs {
		for i < len(p.prefixes) && p.prefixes[i].Last() < a {
			i++
		}
		if i == len(p.prefixes) || a < p.prefixes[i].First() {
			outside++
			continue
		}
		counts[i]++
	}
	return counts, outside
}

// CountAddrsSet counts, for each partition prefix, how many addresses
// of the block-indexed set it contains, using one ascending range count
// per prefix. The counter gallops its block hint forward from prefix to
// prefix and decodes each boundary block at most once, so a K-prefix
// pass costs O(K log B + touched blocks) — sub-linear in the set size
// for sparse selections, where the O(N+K) merge walk re-touches every
// address. Results are identical to CountAddrs on the same addresses.
func (p Partition) CountAddrsSet(set *addrset.Set) (counts []int, outside int) {
	counts = make([]int, len(p.prefixes))
	ctr := set.Counter()
	inside := 0
	for i, pr := range p.prefixes {
		c := ctr.Count(pr.First(), pr.Last())
		counts[i] = c
		inside += c
	}
	return counts, set.Len() - inside
}

// Subset returns a new Partition containing the prefixes at the given
// indexes (e.g. a TASS selection). Indexes may be in any order.
func (p Partition) Subset(indexes []int) Partition {
	ps := make([]netaddr.Prefix, 0, len(indexes))
	for _, i := range indexes {
		ps = append(ps, p.prefixes[i])
	}
	netaddr.SortPrefixes(ps)
	return newPartitionSorted(ps)
}

// SubsetAscending returns the Partition of the prefixes at the given
// strictly ascending indexes. A partition's prefixes are sorted and
// pairwise disjoint, so any subset taken in index order already is too
// — no re-sort, no overlap check. It is the selection-construction hot
// path: an incremental reseed builds its scan plan with one pass here
// instead of a comparison sort over thousands of chosen prefixes.
func (p Partition) SubsetAscending(indexes []int32) Partition {
	ps := make([]netaddr.Prefix, 0, len(indexes))
	firsts := make([]netaddr.Addr, 0, len(indexes))
	var space uint64
	for _, i := range indexes {
		pr := p.prefixes[i]
		ps = append(ps, pr)
		firsts = append(firsts, pr.First())
		space += pr.NumAddresses()
	}
	return Partition{prefixes: ps, firsts: firsts, space: space}
}
